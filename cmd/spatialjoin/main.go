// Command spatialjoin runs one iterated spatial join — one technique on
// one workload — and prints the timing breakdown, the metric the paper
// reports per technique.
//
// Examples:
//
//	spatialjoin -technique grid                      # original Simple Grid, default workload
//	spatialjoin -technique grid-tuned -queriers 0.9  # the paper's winner, 90% query rate
//	spatialjoin -technique rtree -workload gaussian -hotspots 10
//	spatialjoin -list                                # show all techniques
//	spatialjoin -technique crtree -trace w.sjtr      # replay a recorded trace
//	spatialjoin -objects box -technique boxgrid-csr  # MBR workload, rectangle grid
//	spatialjoin -objects box -technique boxrtree     # MBR workload, STR box R-tree
//	spatialjoin -objects box -compare all            # box-join digest race
//	spatialjoin -technique auto                      # adaptive layout selection (internal/tune)
//	spatialjoin -objects box -technique boxauto      # adaptive cross-family box selection
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spatialjoin:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spatialjoin", flag.ContinueOnError)
	var (
		objects      = fs.String("objects", "point", "object class: point or box (MBR workloads)")
		extent       = fs.String("extent", "uniform", "box only: MBR side distribution, uniform or gaussian")
		minSide      = fs.Float64("min-side", workload.DefaultMinSide, "box only: minimum MBR side length")
		maxSide      = fs.Float64("max-side", workload.DefaultMaxSide, "box only: maximum MBR side length")
		techniqueKey = fs.String("technique", "grid-tuned", "technique key (see -list)")
		compare      = fs.String("compare", "", "comma-separated technique keys to race on one workload (or \"all\")")
		list         = fs.Bool("list", false, "list available techniques and exit")
		kind         = fs.String("workload", "uniform", "workload kind: uniform, gaussian or simulation")
		points       = fs.Int("points", workload.DefaultNumPoints, "number of moving objects")
		ticks        = fs.Int("ticks", 0, "number of ticks (0 = workload default)")
		space        = fs.Float64("space", workload.DefaultSpaceSize, "side length of the square space")
		speed        = fs.Float64("speed", workload.DefaultMaxSpeed, "maximum object speed per tick")
		querySize    = fs.Float64("query-size", workload.DefaultQuerySize, "side length of range queries")
		queriers     = fs.Float64("queriers", workload.DefaultQueriers, "fraction of objects querying per tick")
		updaters     = fs.Float64("updaters", workload.DefaultUpdaters, "fraction of objects updating per tick")
		hotspots     = fs.Int("hotspots", workload.DefaultHotspots, "hotspot count (gaussian only)")
		seed         = fs.Uint64("seed", 1, "workload random seed")
		tracePath    = fs.String("trace", "", "replay a recorded trace file instead of generating")
		parallel     = fs.Bool("parallel", false, "parallelize the tick pipeline over all CPUs")
		workers      = fs.Int("workers", 0, "worker goroutines for -parallel (0 = all CPUs; >1 implies -parallel)")
		perTick      = fs.Bool("per-tick", false, "print per-tick phase times")
		concurrent   = fs.Bool("concurrent", false, "service mode: epoch-published index, queries overlap updates, reports latency percentiles")
		readers      = fs.Int("readers", 0, "query worker goroutines for -concurrent (0 = all CPUs minus one)")
		shards       = fs.Int("shards", 0, "region-grid side for the sharded techniques (shard-auto/boxshard-auto): side^2 regions; 0 = tune shard-count ladder")
		debugAddr    = fs.String("debug-addr", "", "serve /debug/obs snapshots, histogram dumps and pprof on this address (e.g. 127.0.0.1:7171; enables instrumentation)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *objects != "point" && *objects != "box" {
		return fmt.Errorf("unknown object class %q (have point, box)", *objects)
	}
	boxMode := *objects == "box"

	// A nil registry keeps every instrument a nil-check no-op; -debug-addr
	// turns instrumentation on and exposes the live snapshot surface.
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.New()
		addr, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			return fmt.Errorf("debug endpoint: %w", err)
		}
		fmt.Printf("debug     : http://%s/debug/obs (also /debug/obs/hist, /debug/pprof/)\n", addr)
	}

	if *list {
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		if boxMode {
			for _, t := range bench.BoxTechniques() {
				fmt.Fprintf(w, "%s\t%s\n", t.Key, t.Description)
			}
		} else {
			for _, t := range bench.Techniques() {
				fmt.Fprintf(w, "%s\t%s\n", t.Key, t.Description)
			}
		}
		return w.Flush()
	}

	if boxMode {
		if *tracePath != "" {
			return fmt.Errorf("box workloads cannot replay point traces")
		}
		bcfg := workload.DefaultUniformBoxes()
		switch *extent {
		case "uniform":
			bcfg.Extent = workload.ExtentUniform
		case "gaussian":
			bcfg.Extent = workload.ExtentGaussian
		default:
			return fmt.Errorf("unknown extent kind %q (have uniform, gaussian)", *extent)
		}
		switch *kind {
		case "uniform":
		case "gaussian":
			bcfg.Config = workload.DefaultGaussian()
			bcfg.Hotspots = *hotspots
		case "simulation":
			bcfg.Config = workload.DefaultSimulation()
			bcfg.Hotspots = *hotspots
		default:
			return fmt.Errorf("unknown workload kind %q", *kind)
		}
		bcfg.Seed = *seed
		bcfg.NumPoints = *points
		bcfg.SpaceSize = float32(*space)
		bcfg.MaxSpeed = float32(*speed)
		bcfg.QuerySize = float32(*querySize)
		bcfg.Queriers = *queriers
		bcfg.Updaters = *updaters
		bcfg.MinSide = float32(*minSide)
		bcfg.MaxSide = float32(*maxSide)
		if *ticks > 0 {
			bcfg.Ticks = *ticks
		}
		if err := bcfg.Validate(); err != nil {
			return err
		}
		return runBoxMode(bcfg, *techniqueKey, *compare,
			*parallel || *workers > 1, *workers, *perTick, *concurrent, *readers, *shards, reg)
	}

	var techs []bench.NamedTechnique
	if *compare != "" {
		if *compare == "all" {
			techs = bench.Techniques()
		} else {
			for _, key := range strings.Split(*compare, ",") {
				t, err := bench.TechniqueByKey(strings.TrimSpace(key))
				if err != nil {
					return err
				}
				techs = append(techs, t)
			}
		}
	} else {
		t, err := bench.TechniqueByKey(*techniqueKey)
		if err != nil {
			return err
		}
		techs = []bench.NamedTechnique{t}
	}

	var trace *workload.Trace
	var wcfg workload.Config
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		trace, err = workload.ReadTrace(f)
		if err != nil {
			return err
		}
		wcfg = trace.Config
		fmt.Printf("replaying %s: %s, %d points, %d ticks\n",
			*tracePath, wcfg.Kind, wcfg.NumPoints, wcfg.Ticks)
	} else {
		wcfg = workload.DefaultUniform()
		switch *kind {
		case "uniform":
		case "gaussian":
			wcfg = workload.DefaultGaussian()
			wcfg.Hotspots = *hotspots
		case "simulation":
			wcfg = workload.DefaultSimulation()
			wcfg.Hotspots = *hotspots
		default:
			return fmt.Errorf("unknown workload kind %q", *kind)
		}
		wcfg.Seed = *seed
		wcfg.NumPoints = *points
		wcfg.SpaceSize = float32(*space)
		wcfg.MaxSpeed = float32(*speed)
		wcfg.QuerySize = float32(*querySize)
		wcfg.Queriers = *queriers
		wcfg.Updaters = *updaters
		if *ticks > 0 {
			wcfg.Ticks = *ticks
		}
		var err error
		trace, err = workload.Record(wcfg)
		if err != nil {
			return err
		}
	}

	opts := core.Options{KeepPerTick: *perTick, Obs: reg}
	fmt.Printf("workload  : %s, %d points, %d ticks, %.0f%% queriers, %.0f%% updaters\n",
		wcfg.Kind, wcfg.NumPoints, wcfg.Ticks, wcfg.Queriers*100, wcfg.Updaters*100)

	if *concurrent {
		if len(techs) != 1 {
			return fmt.Errorf("-concurrent runs a single technique; drop -compare")
		}
		t := techs[0]
		p := core.ParamsFor(wcfg)
		p.Shards = *shards
		if t.Key == "shard-auto" {
			// The sharded engine gets per-region epoch publication rather
			// than one stop-the-world wrapper around the whole router.
			x := shard.NewConcurrent(p, epoch.Options{})
			res := core.RunConcurrentSharded(x, workload.NewPlayer(trace), core.ConcurrentOptions{Readers: *readers, Obs: reg})
			return reportConcurrent(res)
		}
		x := epoch.NewIndex(func() core.Index {
			return t.Make(p)
		}, epoch.Options{})
		res := core.RunConcurrent(x, workload.NewPlayer(trace), core.ConcurrentOptions{Readers: *readers, Obs: reg})
		return reportConcurrent(res)
	}

	return raceReport(len(techs), *perTick, func(i int) (*core.Result, string) {
		p := core.ParamsFor(wcfg)
		p.Shards = *shards
		idx := techs[i].Make(p)
		if *parallel || *workers > 1 {
			return core.RunParallel(idx, workload.NewPlayer(trace), opts, *workers), techs[i].Key
		}
		return core.Run(idx, workload.NewPlayer(trace), opts), techs[i].Key
	})
}

// raceReport runs n techniques through run (which returns the result and
// the technique's CLI key) and prints either the single-technique
// breakdown or the comparison table, enforcing that every technique
// reports the identical (pairs, digest) join result. It is shared by
// the point and box modes so the race protocol cannot diverge.
func raceReport(n int, perTick bool, run func(i int) (*core.Result, string)) error {
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	var refPairs int64
	var refHash uint64
	var refKey string
	for i := 0; i < n; i++ {
		res, key := run(i)
		if n == 1 {
			fmt.Printf("technique : %s\n", res.Technique)
			fmt.Printf("avg/tick  : %.4fs  (build %.4fs, query %.4fs, update %.4fs)\n",
				res.AvgTick().Seconds(), res.AvgBuild().Seconds(),
				res.AvgQuery().Seconds(), res.AvgUpdate().Seconds())
			fmt.Printf("join      : %d pairs over %d queries, digest %#x\n", res.Pairs, res.Queries, res.Hash)
			if perTick {
				for ti, pt := range res.PerTick {
					fmt.Printf("tick %3d: build %.4fs query %.4fs update %.4fs\n",
						ti, pt.Build.Seconds(), pt.Query.Seconds(), pt.Update.Seconds())
				}
			}
			return nil
		}
		if i == 0 {
			refPairs, refHash, refKey = res.Pairs, res.Hash, key
			fmt.Fprintf(w, "technique\tavg/tick\tbuild\tquery\tupdate\tpairs\n")
		} else if res.Pairs != refPairs || res.Hash != refHash {
			return fmt.Errorf("%s disagrees with %s on the join result", res.Technique, refKey)
		}
		fmt.Fprintf(w, "%s\t%.4fs\t%.4fs\t%.4fs\t%.4fs\t%d\n",
			res.Technique, res.AvgTick().Seconds(), res.AvgBuild().Seconds(),
			res.AvgQuery().Seconds(), res.AvgUpdate().Seconds(), res.Pairs)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("join results verified identical across techniques")
	return nil
}

// reportConcurrent prints the service-mode run: latency percentiles
// under update load plus the epoch lifecycle counters. A non-zero
// violation count (a query observing an unpublished epoch) is an error.
func reportConcurrent(res *core.ConcurrentResult) error {
	fmt.Printf("technique : %s (concurrent, %d readers)\n", res.Technique, res.Readers)
	fmt.Printf("avg/tick  : %.4fs wall over %d ticks\n", res.AvgTick().Seconds(), res.Ticks)
	fmt.Printf("query lat : p50 %s  p95 %s  p99 %s  (under update load)\n",
		res.QueryP50, res.QueryP95, res.QueryP99)
	fmt.Printf("epochs    : %d published, %d degraded ticks, %d retries, %d panics contained, %d failed ticks\n",
		res.Stats.Epochs, res.Stats.Degraded, res.Stats.Retries,
		res.Stats.PanicsContained, res.FailedTicks)
	fmt.Printf("join      : %d pairs over %d queries (epoch-dependent; not digest-comparable)\n",
		res.Pairs, res.Queries)
	if res.Violations != 0 {
		return fmt.Errorf("%d queries observed an unpublished epoch", res.Violations)
	}
	fmt.Println("epoch consistency verified: every query observed exactly one published epoch")
	return nil
}

// runBoxMode runs the MBR workload: one technique or a digest race.
// Each technique gets a fresh generator from the same configuration, so
// all runs see the byte-identical stream.
func runBoxMode(bcfg workload.BoxConfig, techniqueKey, compare string, parallel bool, workers int, perTick bool, concurrent bool, readers int, shards int, reg *obs.Registry) error {
	var techs []bench.NamedBoxTechnique
	if compare != "" {
		if compare == "all" {
			techs = bench.BoxTechniques()
		} else {
			for _, key := range strings.Split(compare, ",") {
				t, err := bench.BoxTechniqueByKey(strings.TrimSpace(key))
				if err != nil {
					return err
				}
				techs = append(techs, t)
			}
		}
	} else {
		if techniqueKey == "grid-tuned" {
			// The point default has no box counterpart; default to the
			// rectangle grid.
			techniqueKey = "boxgrid-csr"
		}
		t, err := bench.BoxTechniqueByKey(techniqueKey)
		if err != nil {
			return err
		}
		techs = []bench.NamedBoxTechnique{t}
	}

	fmt.Printf("workload  : %s boxes (%s extents %g-%g), %d objects, %d ticks, %.0f%% queriers, %.0f%% updaters\n",
		bcfg.Kind, bcfg.Extent, bcfg.MinSide, bcfg.MaxSide,
		bcfg.NumPoints, bcfg.Ticks, bcfg.Queriers*100, bcfg.Updaters*100)

	if concurrent {
		if len(techs) != 1 {
			return fmt.Errorf("-concurrent runs a single technique; drop -compare")
		}
		t := techs[0]
		p := core.ParamsFor(bcfg.Config)
		p.Shards = shards
		if t.Key == "boxshard-auto" {
			x := shard.NewBoxConcurrent(p, epoch.Options{})
			res := core.RunBoxesConcurrentSharded(x, workload.MustNewBoxGenerator(bcfg),
				core.ConcurrentOptions{Readers: readers, Obs: reg})
			return reportConcurrent(res)
		}
		x := epoch.NewBoxIndex(func() core.BoxIndex {
			return t.Make(p)
		}, epoch.Options{})
		res := core.RunBoxesConcurrent(x, workload.MustNewBoxGenerator(bcfg),
			core.ConcurrentOptions{Readers: readers, Obs: reg})
		return reportConcurrent(res)
	}

	opts := core.Options{KeepPerTick: perTick, Obs: reg}
	// Each technique gets a fresh generator, so all runs see the
	// byte-identical stream.
	return raceReport(len(techs), perTick, func(i int) (*core.Result, string) {
		p := core.ParamsFor(bcfg.Config)
		p.Shards = shards
		idx := techs[i].Make(p)
		src := workload.MustNewBoxGenerator(bcfg)
		if parallel {
			return core.RunBoxesParallel(idx, src, opts, workers), techs[i].Key
		}
		return core.RunBoxes(idx, src, opts), techs[i].Key
	})
}
