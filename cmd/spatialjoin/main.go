// Command spatialjoin runs one iterated spatial join — one technique on
// one workload — and prints the timing breakdown, the metric the paper
// reports per technique.
//
// Examples:
//
//	spatialjoin -technique grid                      # original Simple Grid, default workload
//	spatialjoin -technique grid-tuned -queriers 0.9  # the paper's winner, 90% query rate
//	spatialjoin -technique rtree -workload gaussian -hotspots 10
//	spatialjoin -list                                # show all techniques
//	spatialjoin -technique crtree -trace w.sjtr      # replay a recorded trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spatialjoin:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spatialjoin", flag.ContinueOnError)
	var (
		techniqueKey = fs.String("technique", "grid-tuned", "technique key (see -list)")
		compare      = fs.String("compare", "", "comma-separated technique keys to race on one workload (or \"all\")")
		list         = fs.Bool("list", false, "list available techniques and exit")
		kind         = fs.String("workload", "uniform", "workload kind: uniform, gaussian or simulation")
		points       = fs.Int("points", workload.DefaultNumPoints, "number of moving objects")
		ticks        = fs.Int("ticks", 0, "number of ticks (0 = workload default)")
		space        = fs.Float64("space", workload.DefaultSpaceSize, "side length of the square space")
		speed        = fs.Float64("speed", workload.DefaultMaxSpeed, "maximum object speed per tick")
		querySize    = fs.Float64("query-size", workload.DefaultQuerySize, "side length of range queries")
		queriers     = fs.Float64("queriers", workload.DefaultQueriers, "fraction of objects querying per tick")
		updaters     = fs.Float64("updaters", workload.DefaultUpdaters, "fraction of objects updating per tick")
		hotspots     = fs.Int("hotspots", workload.DefaultHotspots, "hotspot count (gaussian only)")
		seed         = fs.Uint64("seed", 1, "workload random seed")
		tracePath    = fs.String("trace", "", "replay a recorded trace file instead of generating")
		parallel     = fs.Bool("parallel", false, "parallelize the tick pipeline over all CPUs")
		workers      = fs.Int("workers", 0, "worker goroutines for -parallel (0 = all CPUs; >1 implies -parallel)")
		perTick      = fs.Bool("per-tick", false, "print per-tick phase times")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		for _, t := range bench.Techniques() {
			fmt.Fprintf(w, "%s\t%s\n", t.Key, t.Description)
		}
		return w.Flush()
	}

	var techs []bench.NamedTechnique
	if *compare != "" {
		if *compare == "all" {
			techs = bench.Techniques()
		} else {
			for _, key := range strings.Split(*compare, ",") {
				t, err := bench.TechniqueByKey(strings.TrimSpace(key))
				if err != nil {
					return err
				}
				techs = append(techs, t)
			}
		}
	} else {
		t, err := bench.TechniqueByKey(*techniqueKey)
		if err != nil {
			return err
		}
		techs = []bench.NamedTechnique{t}
	}

	var trace *workload.Trace
	var wcfg workload.Config
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		trace, err = workload.ReadTrace(f)
		if err != nil {
			return err
		}
		wcfg = trace.Config
		fmt.Printf("replaying %s: %s, %d points, %d ticks\n",
			*tracePath, wcfg.Kind, wcfg.NumPoints, wcfg.Ticks)
	} else {
		wcfg = workload.DefaultUniform()
		switch *kind {
		case "uniform":
		case "gaussian":
			wcfg = workload.DefaultGaussian()
			wcfg.Hotspots = *hotspots
		case "simulation":
			wcfg = workload.DefaultSimulation()
			wcfg.Hotspots = *hotspots
		default:
			return fmt.Errorf("unknown workload kind %q", *kind)
		}
		wcfg.Seed = *seed
		wcfg.NumPoints = *points
		wcfg.SpaceSize = float32(*space)
		wcfg.MaxSpeed = float32(*speed)
		wcfg.QuerySize = float32(*querySize)
		wcfg.Queriers = *queriers
		wcfg.Updaters = *updaters
		if *ticks > 0 {
			wcfg.Ticks = *ticks
		}
		var err error
		trace, err = workload.Record(wcfg)
		if err != nil {
			return err
		}
	}

	opts := core.Options{KeepPerTick: *perTick}
	fmt.Printf("workload  : %s, %d points, %d ticks, %.0f%% queriers, %.0f%% updaters\n",
		wcfg.Kind, wcfg.NumPoints, wcfg.Ticks, wcfg.Queriers*100, wcfg.Updaters*100)

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	var refPairs int64
	var refHash uint64
	for i, tech := range techs {
		idx := tech.Make(core.Params{Bounds: wcfg.Bounds(), NumPoints: wcfg.NumPoints})
		var res *core.Result
		if *parallel || *workers > 1 {
			res = core.RunParallel(idx, workload.NewPlayer(trace), opts, *workers)
		} else {
			res = core.Run(idx, workload.NewPlayer(trace), opts)
		}
		if len(techs) == 1 {
			fmt.Printf("technique : %s\n", res.Technique)
			fmt.Printf("avg/tick  : %.4fs  (build %.4fs, query %.4fs, update %.4fs)\n",
				res.AvgTick().Seconds(), res.AvgBuild().Seconds(),
				res.AvgQuery().Seconds(), res.AvgUpdate().Seconds())
			fmt.Printf("join      : %d pairs over %d queries, digest %#x\n", res.Pairs, res.Queries, res.Hash)
			if *perTick {
				for ti, pt := range res.PerTick {
					fmt.Printf("tick %3d: build %.4fs query %.4fs update %.4fs\n",
						ti, pt.Build.Seconds(), pt.Query.Seconds(), pt.Update.Seconds())
				}
			}
			return nil
		}
		if i == 0 {
			refPairs, refHash = res.Pairs, res.Hash
			fmt.Fprintf(w, "technique\tavg/tick\tbuild\tquery\tupdate\tpairs\n")
		} else if res.Pairs != refPairs || res.Hash != refHash {
			return fmt.Errorf("%s disagrees with %s on the join result", res.Technique, techs[0].Key)
		}
		fmt.Fprintf(w, "%s\t%.4fs\t%.4fs\t%.4fs\t%.4fs\t%d\n",
			res.Technique, res.AvgTick().Seconds(), res.AvgBuild().Seconds(),
			res.AvgQuery().Seconds(), res.AvgUpdate().Seconds(), res.Pairs)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("join results verified identical across techniques")
	return nil
}
