package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

func TestListTechniques(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallUniform(t *testing.T) {
	err := run([]string{
		"-technique", "grid-tuned",
		"-points", "500", "-ticks", "3", "-space", "2000",
		"-query-size", "100", "-speed", "20",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallGaussianPerTickParallel(t *testing.T) {
	err := run([]string{
		"-technique", "rtree", "-workload", "gaussian", "-hotspots", "3",
		"-points", "500", "-ticks", "3", "-space", "2000",
		"-per-tick", "-parallel",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunEveryTechniqueKey(t *testing.T) {
	for _, key := range []string{"brute", "binsearch", "rtree", "crtree", "kdtrie",
		"grid", "grid-restructured", "grid-querying", "grid-bs", "grid-tuned", "grid-xy", "grid-intrusive", "auto"} {
		err := run([]string{
			"-technique", key,
			"-points", "300", "-ticks", "2", "-space", "1500",
		})
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
	}
}

func TestRejectsUnknownTechnique(t *testing.T) {
	if err := run([]string{"-technique", "btree"}); err == nil {
		t.Fatal("unknown technique accepted")
	}
}

func TestRejectsUnknownWorkload(t *testing.T) {
	if err := run([]string{"-workload", "zipf", "-points", "10", "-ticks", "2"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRejectsInvalidParameters(t *testing.T) {
	if err := run([]string{"-points", "0", "-ticks", "2"}); err == nil {
		t.Fatal("zero points accepted")
	}
	if err := run([]string{"-queriers", "1.5", "-points", "10", "-ticks", "2"}); err == nil {
		t.Fatal("querier fraction > 1 accepted")
	}
}

func TestReplayTraceFile(t *testing.T) {
	cfg := workload.DefaultUniform()
	cfg.NumPoints = 200
	cfg.Ticks = 2
	cfg.SpaceSize = 1000
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.sjtr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-technique", "grid-tuned", "-trace", path}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayMissingTraceFails(t *testing.T) {
	if err := run([]string{"-trace", "/nonexistent/file.sjtr"}); err == nil {
		t.Fatal("missing trace accepted")
	}
}

func TestCompareMode(t *testing.T) {
	err := run([]string{
		"-compare", "grid,grid-tuned,brute",
		"-points", "400", "-ticks", "2", "-space", "1500",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompareModeRejectsUnknownKey(t *testing.T) {
	err := run([]string{
		"-compare", "grid,unobtainium",
		"-points", "100", "-ticks", "2",
	})
	if err == nil {
		t.Fatal("unknown key in -compare accepted")
	}
}

func TestBoxModeCompare(t *testing.T) {
	err := run([]string{
		"-objects", "box", "-compare", "all",
		"-points", "400", "-ticks", "2", "-space", "1500",
		"-min-side", "10", "-max-side", "120",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBoxModeSingleTechniqueParallel(t *testing.T) {
	err := run([]string{
		"-objects", "box", "-technique", "boxgrid-csr",
		"-workload", "gaussian", "-hotspots", "3", "-extent", "gaussian",
		"-points", "400", "-ticks", "2", "-space", "1500",
		"-workers", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBoxModeAutoParallel(t *testing.T) {
	err := run([]string{
		"-objects", "box", "-technique", "boxauto",
		"-points", "400", "-ticks", "2", "-space", "1500",
		"-workers", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBoxModeRTreeParallel(t *testing.T) {
	err := run([]string{
		"-objects", "box", "-technique", "boxrtree",
		"-points", "400", "-ticks", "2", "-space", "1500",
		"-workers", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBoxModeList(t *testing.T) {
	if err := run([]string{"-objects", "box", "-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxModeRejects(t *testing.T) {
	if err := run([]string{"-objects", "box", "-trace", "w.sjtr"}); err == nil {
		t.Fatal("box mode accepted a point trace")
	}
	if err := run([]string{"-objects", "box", "-extent", "zipf", "-points", "10", "-ticks", "2"}); err == nil {
		t.Fatal("unknown extent kind accepted")
	}
	if err := run([]string{"-objects", "sphere"}); err == nil {
		t.Fatal("unknown object class accepted")
	}
	if err := run([]string{"-objects", "box", "-technique", "rtree", "-points", "10", "-ticks", "2"}); err == nil {
		t.Fatal("point technique accepted in box mode")
	}
}

func TestSimulationWorkloadKind(t *testing.T) {
	err := run([]string{
		"-technique", "kdtrie", "-workload", "simulation", "-hotspots", "4",
		"-points", "400", "-ticks", "3", "-space", "1500",
	})
	if err != nil {
		t.Fatal(err)
	}
}
