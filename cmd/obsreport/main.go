// Command obsreport renders internal/obs snapshots — the JSON served by
// a live process's /debug/obs endpoint — as human-readable reports.
//
// One snapshot gives the full instrument dump plus a per-tick phase
// breakdown (the driver's build/query/update spans, the epoch
// lifecycle spans, and the tuner's predicted-vs-observed residual when
// both sides are present). Two snapshots are diffed: counter and
// histogram deltas describe exactly the interval between the captures,
// which is how a steady-state rate is read off a long-running service.
//
// Examples:
//
//	curl -s http://127.0.0.1:7171/debug/obs > a.json
//	obsreport a.json                 # one capture, full report
//	sleep 10; curl -s http://127.0.0.1:7171/debug/obs > b.json
//	obsreport -diff a.json b.json    # rates over the 10s interval
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("obsreport", flag.ContinueOnError)
	diff := fs.Bool("diff", false, "diff two snapshots: report the interval between them")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *diff {
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff wants exactly two snapshot files, got %d", fs.NArg())
		}
		a, err := load(fs.Arg(0))
		if err != nil {
			return err
		}
		b, err := load(fs.Arg(1))
		if err != nil {
			return err
		}
		return writeDiff(w, a, b)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one snapshot file (or -diff a b), got %d", fs.NArg())
	}
	snap, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	return writeReport(w, snap)
}

// load reads one snapshot, "-" meaning stdin.
func load(path string) (*obs.Snapshot, error) {
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	snap := &obs.Snapshot{}
	if err := json.Unmarshal(raw, snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

// writeReport renders one snapshot: every instrument, then the derived
// phase breakdown.
func writeReport(w io.Writer, snap *obs.Snapshot) error {
	fmt.Fprintf(w, "snapshot taken %s, process uptime %s\n",
		time.Unix(0, snap.TakenUnixNs).UTC().Format(time.RFC3339),
		time.Duration(snap.UptimeNs))

	if len(snap.Labels) > 0 {
		fmt.Fprintf(w, "\nlabels:\n")
		for _, name := range sortedKeys(snap.Labels) {
			fmt.Fprintf(w, "  %s = %s\n", name, snap.Labels[name])
		}
	}
	if len(snap.Counters) > 0 {
		fmt.Fprintf(w, "\ncounters:\n")
		tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
		for _, name := range sortedKeys(snap.Counters) {
			fmt.Fprintf(tw, "  %s\t%d\n", name, snap.Counters[name])
		}
		tw.Flush()
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintf(w, "\ngauges:\n")
		tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
		for _, name := range sortedKeys(snap.Gauges) {
			fmt.Fprintf(tw, "  %s\t%d\n", name, snap.Gauges[name])
		}
		tw.Flush()
	}
	if len(snap.Histograms) > 0 {
		fmt.Fprintf(w, "\nhistograms:\n")
		tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  name\tcount\tmean\tp50\tp90\tp99\tmax\n")
		for _, name := range sortedKeys(snap.Histograms) {
			hs := snap.Histograms[name]
			fmt.Fprintf(tw, "  %s\t%d\t%s\t%s\t%s\t%s\t%s\n", name, hs.Count,
				ns(hs.Mean), ns(hs.P50), ns(hs.P90), ns(hs.P99), ns(float64(hs.Max)))
		}
		tw.Flush()
	}
	writePhases(w, snap)
	return nil
}

// phaseSets is the known span layout of the pipeline, grouped by the
// subsystem that records it (see internal/obs/README.md for the full
// instrument inventory).
var phaseSets = []struct {
	title  string
	phases []string
}{
	{"tick phases (stop-the-world driver)", []string{
		"core.tick.build_ns", "core.tick.query_ns", "core.tick.update_ns",
	}},
	{"concurrent driver phases", []string{
		"core.concurrent.tick_ns", "core.concurrent.apply_ns", "core.concurrent.query_ns",
	}},
	{"epoch lifecycle phases", []string{
		"epoch.apply_ns", "epoch.validate_ns", "epoch.publish_ns", "epoch.quiesce_ns",
	}},
}

// writePhases derives the per-phase breakdown from the span histograms
// present in the snapshot, plus the tuner residual when the prediction
// and the observed tick are both there.
func writePhases(w io.Writer, snap *obs.Snapshot) {
	for _, set := range phaseSets {
		var have []string
		for _, p := range set.phases {
			if hs, ok := snap.Histograms[p]; ok && hs.Count > 0 {
				have = append(have, p)
			}
		}
		if len(have) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n%s:\n", set.title)
		tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
		var total float64
		for _, p := range have {
			hs := snap.Histograms[p]
			fmt.Fprintf(tw, "  %s\tmean %s\tp99 %s\tx%d\n", p, ns(hs.Mean), ns(hs.P99), hs.Count)
			total += hs.Mean
		}
		fmt.Fprintf(tw, "  sum of phase means\t%s\t\t\n", ns(total))
		tw.Flush()
	}

	// Tuner residual: what the cost model predicted for a tick vs what
	// the driver's spans actually measured.
	pred, ok := snap.Gauges["tune.predicted_tick_ns"]
	if !ok || pred <= 0 {
		return
	}
	var observed float64
	for _, p := range phaseSets[0].phases {
		if hs, ok := snap.Histograms[p]; ok && hs.Count > 0 {
			observed += hs.Mean
		}
	}
	if observed <= 0 {
		return
	}
	fmt.Fprintf(w, "\ntune residual: predicted %s vs observed %s per tick (%+.1f%%)\n",
		ns(float64(pred)), ns(observed), (float64(pred)/observed-1)*100)
}

// writeDiff renders the interval between two snapshots of the same
// process: counter deltas, gauge movement, and histogram deltas.
func writeDiff(w io.Writer, a, b *obs.Snapshot) error {
	dt := time.Duration(b.UptimeNs - a.UptimeNs)
	if dt < 0 {
		return fmt.Errorf("snapshots are reversed (uptime went backwards by %s); pass the earlier capture first", -dt)
	}
	fmt.Fprintf(w, "interval: %s (uptime %s -> %s)\n",
		dt, time.Duration(a.UptimeNs), time.Duration(b.UptimeNs))

	names := map[string]bool{}
	for name := range a.Counters {
		names[name] = true
	}
	for name := range b.Counters {
		names[name] = true
	}
	if len(names) > 0 {
		fmt.Fprintf(w, "\ncounters (delta over interval):\n")
		tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
		for _, name := range sortedKeys(names) {
			d := b.Counters[name] - a.Counters[name]
			rate := ""
			if dt > 0 {
				rate = fmt.Sprintf("%.1f/s", float64(d)/dt.Seconds())
			}
			fmt.Fprintf(tw, "  %s\t%+d\t%s\n", name, d, rate)
		}
		tw.Flush()
	}

	gnames := map[string]bool{}
	for name := range a.Gauges {
		gnames[name] = true
	}
	for name := range b.Gauges {
		gnames[name] = true
	}
	if len(gnames) > 0 {
		fmt.Fprintf(w, "\ngauges (last value, movement):\n")
		tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
		for _, name := range sortedKeys(gnames) {
			fmt.Fprintf(tw, "  %s\t%d\t%+d\n", name, b.Gauges[name], b.Gauges[name]-a.Gauges[name])
		}
		tw.Flush()
	}

	hnames := map[string]bool{}
	for name := range a.Histograms {
		hnames[name] = true
	}
	for name := range b.Histograms {
		hnames[name] = true
	}
	if len(hnames) > 0 {
		fmt.Fprintf(w, "\nhistograms (interval count, interval mean):\n")
		tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
		for _, name := range sortedKeys(hnames) {
			ha, hb := a.Histograms[name], b.Histograms[name]
			dc := int64(hb.Count) - int64(ha.Count)
			mean := "-"
			if dc > 0 {
				mean = ns(float64(hb.Sum-ha.Sum) / float64(dc))
			}
			fmt.Fprintf(tw, "  %s\t%+d\t%s\n", name, dc, mean)
		}
		tw.Flush()
	}
	return nil
}

// ns renders a nanosecond quantity at a human scale. Non-duration
// histograms (fan-outs, batch sizes) read fine as raw small numbers
// because the unit suffix only kicks in past 1us.
func ns(v float64) string {
	switch {
	case v < 0:
		return "-"
	case v < 1e3:
		return fmt.Sprintf("%.0f", v)
	default:
		return time.Duration(v).Round(10 * time.Nanosecond).String()
	}
}

// sortedKeys returns the map's keys in sorted order, for stable output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
