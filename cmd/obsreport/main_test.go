package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// snapFile captures the registry and writes the snapshot JSON where the
// CLI will read it — the same bytes /debug/obs serves.
func snapFile(t *testing.T, r *obs.Registry, name string) string {
	t.Helper()
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportSingleSnapshot(t *testing.T) {
	r := obs.New()
	var now int64
	r.SetClock(func() int64 { return now })

	r.SetLabel("tune.choice", "csr/cps=64")
	r.Counter("core.queries").Add(12345)
	r.Gauge("core.concurrent.violations").Set(0)
	r.Gauge("tune.predicted_tick_ns").Set(3_000_000)
	for _, phase := range []string{"core.tick.build_ns", "core.tick.query_ns", "core.tick.update_ns"} {
		h := r.Histogram(phase)
		for i := 0; i < 8; i++ {
			now += 1_000_000 // 1ms per span under the fake clock
			h.Record(1_000_000)
		}
	}

	var out strings.Builder
	if err := run([]string{snapFile(t, r, "a.json")}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"tune.choice = csr/cps=64",
		"core.queries",
		"12345",
		"tick phases (stop-the-world driver)",
		"core.tick.build_ns",
		"x8",
		"tune residual:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	// Three 1ms phase means: the model's 3ms prediction matches the
	// observed tick exactly, so the residual reads +0.0%.
	if !strings.Contains(got, "+0.0%") {
		t.Errorf("tune residual should be +0.0%% for a perfect prediction:\n%s", got)
	}
}

func TestReportDiff(t *testing.T) {
	r := obs.New()
	var now int64
	r.SetClock(func() int64 { return now })

	c := r.Counter("epoch.epochs_published")
	h := r.Histogram("epoch.apply_ns")
	c.Add(10)
	h.Record(500)
	a := snapFile(t, r, "a.json")

	now += 2_000_000_000 // two seconds pass
	c.Add(40)
	h.Record(1500)
	h.Record(2500)
	b := snapFile(t, r, "b.json")

	var out strings.Builder
	if err := run([]string{"-diff", a, b}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"interval: 2s",
		"epoch.epochs_published",
		"+40",
		"20.0/s",
		"epoch.apply_ns",
		"+2",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff missing %q:\n%s", want, got)
		}
	}

	// Reversed order is a usage error, not a nonsense report.
	if err := run([]string{"-diff", b, a}, &out); err == nil {
		t.Fatal("reversed diff should fail")
	}
}

func TestReportArgErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Fatal("no arguments should fail")
	}
	if err := run([]string{"-diff", "only-one.json"}, &out); err == nil {
		t.Fatal("-diff with one file should fail")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing.json")}, &out); err == nil {
		t.Fatal("missing file should fail")
	}
}
