package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

func TestGenerateAndInspect(t *testing.T) {
	path := filepath.Join(t.TempDir(), "u.sjtr")
	err := run([]string{
		"-out", path,
		"-points", "300", "-ticks", "4", "-space", "2000",
	})
	if err != nil {
		t.Fatal(err)
	}
	// The file must be a loadable trace with the requested shape.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	trace, err := workload.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Config.NumPoints != 300 || trace.Config.Ticks != 4 {
		t.Fatalf("trace config = %+v", trace.Config)
	}
	if err := run([]string{"-inspect", path}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateGaussian(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.sjtr")
	err := run([]string{
		"-out", path, "-kind", "gaussian", "-hotspots", "3",
		"-points", "300", "-ticks", "3", "-space", "2000",
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	trace, err := workload.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Config.Kind != workload.Gaussian || trace.Config.Hotspots != 3 {
		t.Fatalf("trace config = %+v", trace.Config)
	}
}

func TestDeterministicOutput(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.sjtr")
	b := filepath.Join(dir, "b.sjtr")
	args := []string{"-points", "100", "-ticks", "2", "-space", "1000", "-seed", "9"}
	if err := run(append([]string{"-out", a}, args...)); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-out", b}, args...)); err != nil {
		t.Fatal(err)
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Fatal("same seed produced different trace files")
	}
}

func TestRequiresOutOrInspect(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -out accepted")
	}
}

func TestRejectsUnknownKind(t *testing.T) {
	if err := run([]string{"-out", filepath.Join(t.TempDir(), "x"), "-kind", "zipf"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestInspectGarbageFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-inspect", path}); err == nil {
		t.Fatal("garbage trace accepted")
	}
}
