// Command workloadgen records synthetic moving-object workloads to trace
// files (and inspects existing ones), so experiments can replay identical
// workloads across machines and runs.
//
// Examples:
//
//	workloadgen -out default.sjtr                       # Table 1 default uniform
//	workloadgen -out gauss.sjtr -kind gaussian -hotspots 10
//	workloadgen -inspect default.sjtr
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("workloadgen", flag.ContinueOnError)
	var (
		out       = fs.String("out", "", "output trace file")
		inspect   = fs.String("inspect", "", "trace file to inspect instead of generating")
		kind      = fs.String("kind", "uniform", "workload kind: uniform, gaussian or simulation")
		points    = fs.Int("points", workload.DefaultNumPoints, "number of moving objects")
		ticks     = fs.Int("ticks", 0, "number of ticks (0 = kind default)")
		space     = fs.Float64("space", workload.DefaultSpaceSize, "side length of the square space")
		speed     = fs.Float64("speed", workload.DefaultMaxSpeed, "maximum object speed per tick")
		querySize = fs.Float64("query-size", workload.DefaultQuerySize, "side length of range queries")
		queriers  = fs.Float64("queriers", workload.DefaultQueriers, "querier fraction")
		updaters  = fs.Float64("updaters", workload.DefaultUpdaters, "updater fraction")
		hotspots  = fs.Int("hotspots", workload.DefaultHotspots, "hotspot count (gaussian)")
		seed      = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *inspect != "" {
		return inspectTrace(*inspect)
	}
	if *out == "" {
		return fmt.Errorf("need -out FILE or -inspect FILE")
	}

	cfg := workload.DefaultUniform()
	switch *kind {
	case "uniform":
	case "gaussian":
		cfg = workload.DefaultGaussian()
		cfg.Hotspots = *hotspots
	case "simulation":
		cfg = workload.DefaultSimulation()
		cfg.Hotspots = *hotspots
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	cfg.Seed = *seed
	cfg.NumPoints = *points
	cfg.SpaceSize = float32(*space)
	cfg.MaxSpeed = float32(*speed)
	cfg.QuerySize = float32(*querySize)
	cfg.Queriers = *queriers
	cfg.Updaters = *updaters
	if *ticks > 0 {
		cfg.Ticks = *ticks
	}

	trace, err := workload.Record(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	n, err := trace.WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d bytes, checksum %#x\n", *out, n, trace.Checksum())
	printSummary(trace)
	return nil
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	trace, err := workload.ReadTrace(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: checksum %#x\n", path, trace.Checksum())
	printSummary(trace)
	return nil
}

func printSummary(trace *workload.Trace) {
	cfg := trace.Config
	fmt.Printf("kind=%s points=%d ticks=%d space=%.0f speed=%.0f query=%.0f queriers=%.0f%% updaters=%.0f%%",
		cfg.Kind, cfg.NumPoints, cfg.Ticks, cfg.SpaceSize, cfg.MaxSpeed, cfg.QuerySize,
		cfg.Queriers*100, cfg.Updaters*100)
	if cfg.Kind == workload.Gaussian {
		fmt.Printf(" hotspots=%d", cfg.Hotspots)
	}
	fmt.Println()
	var q, u stats.Agg
	for _, tt := range trace.Ticks {
		q.Add(float64(len(tt.Queriers)))
		u.Add(float64(len(tt.Updates)))
	}
	fmt.Printf("per tick: queries mean %.0f (min %.0f max %.0f), updates mean %.0f (min %.0f max %.0f)\n",
		q.Mean(), q.Min(), q.Max(), u.Mean(), u.Min(), u.Max())
}
