// Command sweep runs the grid-tuning parameter sweeps of Figures 1 and 5,
// or an arbitrary one-parameter sweep over any grid configuration — for
// point grids or, with -objects box, for the box indexes (whose
// structural parameter trades query work against replication or packing
// quality). Box sweeps select the structure with -boxlayout: the
// reference-point CSR grid (csr), the two-layer class-partitioned one
// (2l), or the STR box R-tree (rtree), and can vary either the
// structural parameter (-vary cps; for the R-tree this sweeps the
// fanout) or the query window extent (-vary qext, the rect x rect
// window-join selectivity sweep).
//
// Both object classes accept the adaptive selector (-layout auto /
// -boxlayout auto, backed by internal/tune): it samples each step's
// workload, picks the family + tuning from the calibrated cost model,
// and the sweep reports which structure it chose per step — the
// natural harness for watching the selector walk the decision surface
// as the query window (or mix) shifts. Because auto tunes its own
// structural parameter, it only supports -vary qext.
//
// Sweeps drain queries through the engines' buffered kernel by default;
// -querykernel emit|append|batch forces a specific kernel (emit is the
// classic per-result callback — useful for measuring what the buffered
// path buys at each sweep point).
//
// Examples:
//
//	sweep -experiment fig1b              # reproduce Figure 1b
//	sweep -vary cps -from 4 -to 128 -step 8 -layout inline -scan range -bs 20
//	sweep -vary qext -from 100 -to 1600 -step 300 -layout auto
//	sweep -objects box -vary cps -from 16 -to 128 -step 16
//	sweep -objects box -boxlayout 2l -vary qext -from 100 -to 1600 -step 300
//	sweep -objects box -boxlayout rtree -vary qext -from 100 -to 1600 -step 300
//	sweep -objects box -boxlayout rtree -vary cps -from 4 -to 64 -step 4
//	sweep -objects box -boxlayout auto -vary qext -from 100 -to 1600 -step 300
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/rtree"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		objects    = fs.String("objects", "point", "object class: point or box (box sweeps cps or qext of a rectangle grid)")
		experiment = fs.String("experiment", "", "predefined sweep: fig1a, fig1b, fig5a or fig5b")
		vary       = fs.String("vary", "", "custom sweep parameter: bs, cps, qext or shards (point), cps, qext or shards (box); shards sweeps the region-grid side of the sharded engine")
		from       = fs.Int("from", 4, "custom sweep start")
		to         = fs.Int("to", 32, "custom sweep end (inclusive)")
		step       = fs.Int("step", 4, "custom sweep step")
		layout     = fs.String("layout", "inline", "point structure: a grid layout ("+bench.PointLayoutKeys()+")")
		boxLayout  = fs.String("boxlayout", "csr", "box structure ("+bench.BoxLayoutKeys()+"): csr = reference-point grid, 2l = two-layer classed grid, rtree = STR box R-tree (-vary cps sweeps its fanout), auto = adaptive selector")
		scan       = fs.String("scan", "range", "query algorithm: full or range")
		bs         = fs.Int("bs", grid.RefactoredBS, "fixed bucket size (when varying cps)")
		cps        = fs.Int("cps", grid.OriginalCPS, "fixed cells per side (when varying bs or qext)")
		scale      = fs.Float64("scale", 0.1, "tick-count scale in (0,1]")
		seed       = fs.Uint64("seed", 1, "workload random seed")
		kernelKey  = fs.String("querykernel", "auto", "query kernel for the tick driver ("+bench.QueryKernelKeys()+"): emit = per-result callback, append = buffered, batch = multi-query")
		csv        = fs.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	kernel, kerr := bench.ParseQueryKernel(*kernelKey)
	if kerr != nil {
		return kerr
	}
	cpsSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "cps" {
			cpsSet = true
		}
	})
	cfg := bench.Config{Scale: *scale, Seed: *seed}
	if err := cfg.Validate(); err != nil {
		return err
	}
	switch *objects {
	case "point":
	case "box":
		if *experiment != "" {
			return fmt.Errorf("-objects box has no predefined experiments; use -vary cps or -vary qext")
		}
		if *vary != "cps" && *vary != "qext" && *vary != "shards" {
			return fmt.Errorf("-objects box sweeps cps, qext or shards (the rectangle grids have no buckets)")
		}
		if *vary != "shards" && !bench.KnownBoxLayout(*boxLayout) {
			return fmt.Errorf("unknown box layout %q (have %s)", *boxLayout, bench.BoxLayoutKeys())
		}
		if *boxLayout == "auto" && *vary != "qext" && *vary != "shards" {
			return fmt.Errorf("-boxlayout auto tunes its own structural parameter; sweep -vary qext instead")
		}
		if *step <= 0 || *from <= 0 || *to < *from {
			return fmt.Errorf("invalid sweep range [%d, %d] step %d", *from, *to, *step)
		}
		fixed := *cps
		if *boxLayout == "rtree" && *vary == "qext" && !cpsSet {
			// The fixed-parameter default is a grid granularity; the
			// R-tree's counterpart default is its tuned fanout. An
			// explicit -cps (even one equal to the default) is honoured
			// as the fanout.
			fixed = rtree.DefaultFanout
		}
		return runBoxSweep(*vary, *from, *to, *step, fixed, *boxLayout, *scale, *seed, kernel, *csv)
	default:
		return fmt.Errorf("unknown object class %q (have point, box)", *objects)
	}

	if *experiment != "" {
		e, ok := bench.ByID(*experiment)
		if !ok {
			return fmt.Errorf("unknown sweep experiment %q (have fig1a, fig1b, fig5a, fig5b)", *experiment)
		}
		art, err := e.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Println(e.Title)
		if *csv {
			fmt.Print(art.CSV())
		} else {
			fmt.Print(art.Format())
		}
		return nil
	}

	if *vary != "bs" && *vary != "cps" && *vary != "qext" && *vary != "shards" {
		return fmt.Errorf("need -experiment or -vary bs|cps|qext|shards")
	}
	if *layout == "auto" && *vary != "qext" && *vary != "shards" {
		return fmt.Errorf("-layout auto tunes bs and cps itself; sweep -vary qext instead")
	}
	if *step <= 0 || *from <= 0 || *to < *from {
		return fmt.Errorf("invalid sweep range [%d, %d] step %d", *from, *to, *step)
	}
	if *layout != "auto" && *vary != "shards" {
		if _, err := bench.ParsePointLayout(*layout); err != nil {
			return err
		}
	}
	if _, err := bench.ParseScan(*scan); err != nil {
		return err
	}

	wcfg := workload.DefaultUniform()
	wcfg.Seed = *seed
	wcfg.Ticks = int(float64(wcfg.Ticks)**scale + 0.5)
	if wcfg.Ticks < 2 {
		wcfg.Ticks = 2
	}
	var trace *workload.Trace
	var err error
	if *vary != "qext" {
		// The qext sweep re-records per step (the query shape is part of
		// the trace); parameter sweeps share one trace across steps.
		if trace, err = workload.Record(wcfg); err != nil {
			return err
		}
	}

	title := fmt.Sprintf("custom sweep: %s from %d to %d (layout=%s scan=%s)", *vary, *from, *to, *layout, *scan)
	if *vary == "shards" {
		title = fmt.Sprintf("custom sweep: region-grid side from %d to %d (sharded engine, per-region tuned inners)", *from, *to)
	}
	series := &stats.Series{
		Title:  title,
		XLabel: *vary,
		YLabel: "Avg. Time per Tick (s)",
	}
	var ys []float64
	for x := *from; x <= *to; x += *step {
		wc := wcfg
		bsv, cpsv := *bs, *cps
		switch *vary {
		case "bs":
			bsv = x
		case "cps":
			cpsv = x
		case "qext":
			wc.QuerySize = float32(x)
			if trace, err = workload.Record(wc); err != nil {
				return err
			}
		}
		var idx core.Index
		if *vary == "shards" {
			// x is the region-grid side: the sharded engine with x^2
			// regions, each inner index tuned per region (layout ignored).
			idx = shard.New(core.ParamsFor(wc), x)
		} else {
			idx, err = bench.NewPointLayout(*layout, *scan, bsv, cpsv, core.ParamsFor(wc))
			if err != nil {
				return err
			}
		}
		res := core.Run(idx, workload.NewPlayer(trace), core.Options{Kernel: kernel})
		series.Xs = append(series.Xs, float64(x))
		ys = append(ys, res.AvgTick().Seconds())
		if *layout == "auto" || *vary == "shards" {
			// idx.Name() carries the per-step decision after the run.
			fmt.Fprintf(os.Stderr, "%s=%d: %.4fs/tick (%s)\n", *vary, x, res.AvgTick().Seconds(), idx.Name())
		} else {
			fmt.Fprintf(os.Stderr, "%s=%d: %.4fs/tick\n", *vary, x, res.AvgTick().Seconds())
		}
	}
	if err := series.AddLine("Avg. Time per Tick (s)", ys); err != nil {
		return err
	}
	if best := stats.ArgminIndex(ys); best >= 0 {
		fmt.Fprintf(os.Stderr, "optimum: %s=%d (%.4fs/tick)\n", *vary, int(series.Xs[best]), ys[best])
	}
	if *csv {
		fmt.Print(series.CSV())
	} else {
		fmt.Print(series.Format())
	}
	return nil
}

// runBoxSweep sweeps one parameter of a box index over the default
// uniform box workload: the structural parameter (grid granularity —
// finer grids shrink per-cell scan work but replicate each MBR into more
// cells, with the replication factor reported per step — or the R-tree
// fanout) or the query window extent (the rect x rect window-join
// selectivity, where packing quality vs replication decides the winner).
func runBoxSweep(vary string, from, to, step, cps int, layout string, scale float64, seed uint64, kernel core.QueryKernel, csv bool) error {
	bcfg := workload.DefaultUniformBoxes()
	bcfg.Seed = seed
	bcfg.Ticks = int(float64(bcfg.Ticks)*scale + 0.5)
	if bcfg.Ticks < 2 {
		bcfg.Ticks = 2
	}

	name := "boxgrid-csr"
	switch {
	case vary == "shards":
		name = "boxshard"
	case layout == "2l":
		name = "boxgrid-2l"
	case layout == "rtree":
		name = "boxrtree-str"
		if vary == "cps" {
			vary = "fanout"
		}
	case layout == "auto":
		name = "boxauto"
	}
	series := &stats.Series{
		Title:  fmt.Sprintf("box index sweep: %s from %d to %d (%s, uniform boxes)", vary, from, to, name),
		XLabel: vary,
		YLabel: "Avg. Time per Tick (s)",
	}
	var ys []float64
	for x := from; x <= to; x += step {
		structural := cps
		if vary == "qext" {
			bcfg.QuerySize = float32(x)
		} else {
			structural = x
		}
		var bg core.BoxIndex
		var err error
		if vary == "shards" {
			// x is the region-grid side: the sharded box engine with x^2
			// regions (per-region tuned inners; -boxlayout ignored).
			bg = shard.NewBox(core.ParamsFor(bcfg.Config), x)
		} else {
			bg, err = bench.NewBoxLayout(layout, structural, core.ParamsFor(bcfg.Config))
			if err != nil {
				return err
			}
		}
		res := core.RunBoxes(bg, workload.MustNewBoxGenerator(bcfg), core.Options{Kernel: kernel})
		series.Xs = append(series.Xs, float64(x))
		ys = append(ys, res.AvgTick().Seconds())
		switch {
		case layout == "auto" || vary == "shards":
			// bg.Name() carries the per-step decision after the run.
			fmt.Fprintf(os.Stderr, "%s=%d: %.4fs/tick (%s)\n", vary, x, res.AvgTick().Seconds(), bg.Name())
		default:
			if rep, ok := bg.(interface{ ReplicationFactor() float64 }); ok {
				fmt.Fprintf(os.Stderr, "%s=%d: %.4fs/tick (replication %.2fx)\n",
					vary, x, res.AvgTick().Seconds(), rep.ReplicationFactor())
			} else {
				fmt.Fprintf(os.Stderr, "%s=%d: %.4fs/tick\n", vary, x, res.AvgTick().Seconds())
			}
		}
	}
	if err := series.AddLine("Avg. Time per Tick (s)", ys); err != nil {
		return err
	}
	if best := stats.ArgminIndex(ys); best >= 0 {
		fmt.Fprintf(os.Stderr, "optimum: %s=%d (%.4fs/tick)\n", vary, int(series.Xs[best]), ys[best])
	}
	if csv {
		fmt.Print(series.CSV())
	} else {
		fmt.Print(series.Format())
	}
	return nil
}
