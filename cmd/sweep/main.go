// Command sweep runs the grid-tuning parameter sweeps of Figures 1 and 5,
// or an arbitrary one-parameter sweep over any grid configuration — for
// point grids or, with -objects box, for the box indexes (whose
// structural parameter trades query work against replication or packing
// quality). Box sweeps select the structure with -boxlayout: the
// reference-point CSR grid (csr), the two-layer class-partitioned one
// (2l), or the STR box R-tree (rtree), and can vary either the
// structural parameter (-vary cps; for the R-tree this sweeps the
// fanout) or the query window extent (-vary qext, the rect x rect
// window-join selectivity sweep).
//
// Examples:
//
//	sweep -experiment fig1b              # reproduce Figure 1b
//	sweep -vary cps -from 4 -to 128 -step 8 -layout inline -scan range -bs 20
//	sweep -objects box -vary cps -from 16 -to 128 -step 16
//	sweep -objects box -boxlayout 2l -vary qext -from 100 -to 1600 -step 300
//	sweep -objects box -boxlayout rtree -vary qext -from 100 -to 1600 -step 300
//	sweep -objects box -boxlayout rtree -vary cps -from 4 -to 64 -step 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/rtree"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		objects    = fs.String("objects", "point", "object class: point or box (box sweeps cps or qext of a rectangle grid)")
		experiment = fs.String("experiment", "", "predefined sweep: fig1a, fig1b, fig5a or fig5b")
		vary       = fs.String("vary", "", "custom sweep parameter: bs or cps (point), cps or qext (box)")
		from       = fs.Int("from", 4, "custom sweep start")
		to         = fs.Int("to", 32, "custom sweep end (inclusive)")
		step       = fs.Int("step", 4, "custom sweep step")
		layout     = fs.String("layout", "inline", "grid layout: linked, inline, inline-xy, intrusive, csr or csr-xy")
		boxLayout  = fs.String("boxlayout", "csr", "box structure: csr (reference-point grid), 2l (two-layer classed grid) or rtree (STR box R-tree; -vary cps sweeps its fanout)")
		scan       = fs.String("scan", "range", "query algorithm: full or range")
		bs         = fs.Int("bs", grid.RefactoredBS, "fixed bucket size (when varying cps)")
		cps        = fs.Int("cps", grid.OriginalCPS, "fixed cells per side (when varying bs or qext)")
		scale      = fs.Float64("scale", 0.1, "tick-count scale in (0,1]")
		seed       = fs.Uint64("seed", 1, "workload random seed")
		csv        = fs.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cpsSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "cps" {
			cpsSet = true
		}
	})
	cfg := bench.Config{Scale: *scale, Seed: *seed}
	if err := cfg.Validate(); err != nil {
		return err
	}
	switch *objects {
	case "point":
	case "box":
		if *experiment != "" {
			return fmt.Errorf("-objects box has no predefined experiments; use -vary cps or -vary qext")
		}
		if *vary != "cps" && *vary != "qext" {
			return fmt.Errorf("-objects box sweeps cps or qext (the rectangle grids have no buckets)")
		}
		if *boxLayout != "csr" && *boxLayout != "2l" && *boxLayout != "rtree" {
			return fmt.Errorf("unknown box layout %q (have csr, 2l, rtree)", *boxLayout)
		}
		if *step <= 0 || *from <= 0 || *to < *from {
			return fmt.Errorf("invalid sweep range [%d, %d] step %d", *from, *to, *step)
		}
		fixed := *cps
		if *boxLayout == "rtree" && *vary == "qext" && !cpsSet {
			// The fixed-parameter default is a grid granularity; the
			// R-tree's counterpart default is its tuned fanout. An
			// explicit -cps (even one equal to the default) is honoured
			// as the fanout.
			fixed = rtree.DefaultFanout
		}
		return runBoxSweep(*vary, *from, *to, *step, fixed, *boxLayout, *scale, *seed, *csv)
	default:
		return fmt.Errorf("unknown object class %q (have point, box)", *objects)
	}

	if *experiment != "" {
		e, ok := bench.ByID(*experiment)
		if !ok {
			return fmt.Errorf("unknown sweep experiment %q (have fig1a, fig1b, fig5a, fig5b)", *experiment)
		}
		art, err := e.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Println(e.Title)
		if *csv {
			fmt.Print(art.CSV())
		} else {
			fmt.Print(art.Format())
		}
		return nil
	}

	if *vary != "bs" && *vary != "cps" {
		return fmt.Errorf("need -experiment or -vary bs|cps")
	}
	if *step <= 0 || *from <= 0 || *to < *from {
		return fmt.Errorf("invalid sweep range [%d, %d] step %d", *from, *to, *step)
	}
	var lay grid.Layout
	switch *layout {
	case "linked":
		lay = grid.LayoutLinked
	case "inline":
		lay = grid.LayoutInline
	case "inline-xy":
		lay = grid.LayoutInlineXY
	case "intrusive":
		lay = grid.LayoutIntrusive
	case "csr":
		lay = grid.LayoutCSR
	case "csr-xy":
		lay = grid.LayoutCSRXY
	default:
		return fmt.Errorf("unknown layout %q", *layout)
	}
	var sc grid.Scan
	switch *scan {
	case "full":
		sc = grid.ScanFull
	case "range":
		sc = grid.ScanRange
	default:
		return fmt.Errorf("unknown scan %q", *scan)
	}

	wcfg := workload.DefaultUniform()
	wcfg.Seed = *seed
	wcfg.Ticks = int(float64(wcfg.Ticks)**scale + 0.5)
	if wcfg.Ticks < 2 {
		wcfg.Ticks = 2
	}
	trace, err := workload.Record(wcfg)
	if err != nil {
		return err
	}

	series := &stats.Series{
		Title:  fmt.Sprintf("custom sweep: %s from %d to %d (layout=%s scan=%s)", *vary, *from, *to, *layout, *scan),
		XLabel: *vary,
		YLabel: "Avg. Time per Tick (s)",
	}
	var ys []float64
	for x := *from; x <= *to; x += *step {
		gc := grid.Config{Layout: lay, Scan: sc, BS: *bs, CPS: *cps}
		if *vary == "bs" {
			gc.BS = x
		} else {
			gc.CPS = x
		}
		g, err := grid.New(gc, wcfg.Bounds(), wcfg.NumPoints)
		if err != nil {
			return err
		}
		res := core.Run(g, workload.NewPlayer(trace), core.Options{})
		series.Xs = append(series.Xs, float64(x))
		ys = append(ys, res.AvgTick().Seconds())
		fmt.Fprintf(os.Stderr, "%s=%d: %.4fs/tick\n", *vary, x, res.AvgTick().Seconds())
	}
	if err := series.AddLine("Avg. Time per Tick (s)", ys); err != nil {
		return err
	}
	if best := stats.ArgminIndex(ys); best >= 0 {
		fmt.Fprintf(os.Stderr, "optimum: %s=%d (%.4fs/tick)\n", *vary, int(series.Xs[best]), ys[best])
	}
	if *csv {
		fmt.Print(series.CSV())
	} else {
		fmt.Print(series.Format())
	}
	return nil
}

func newBoxIndex(layout string, cps int, bcfg workload.BoxConfig) (core.BoxIndex, error) {
	switch layout {
	case "2l":
		return grid.NewBoxGrid2L(cps, bcfg.Bounds(), bcfg.NumPoints)
	case "rtree":
		// The box R-tree has no grid; the swept structural parameter is
		// its fanout.
		return rtree.NewBoxTree(cps)
	default:
		return grid.NewBoxGrid(cps, bcfg.Bounds(), bcfg.NumPoints)
	}
}

// runBoxSweep sweeps one parameter of a box index over the default
// uniform box workload: the structural parameter (grid granularity —
// finer grids shrink per-cell scan work but replicate each MBR into more
// cells, with the replication factor reported per step — or the R-tree
// fanout) or the query window extent (the rect x rect window-join
// selectivity, where packing quality vs replication decides the winner).
func runBoxSweep(vary string, from, to, step, cps int, layout string, scale float64, seed uint64, csv bool) error {
	bcfg := workload.DefaultUniformBoxes()
	bcfg.Seed = seed
	bcfg.Ticks = int(float64(bcfg.Ticks)*scale + 0.5)
	if bcfg.Ticks < 2 {
		bcfg.Ticks = 2
	}

	name := "boxgrid-csr"
	switch layout {
	case "2l":
		name = "boxgrid-2l"
	case "rtree":
		name = "boxrtree-str"
		if vary == "cps" {
			vary = "fanout"
		}
	}
	series := &stats.Series{
		Title:  fmt.Sprintf("box index sweep: %s from %d to %d (%s, uniform boxes)", vary, from, to, name),
		XLabel: vary,
		YLabel: "Avg. Time per Tick (s)",
	}
	var ys []float64
	for x := from; x <= to; x += step {
		structural := cps
		if vary == "qext" {
			bcfg.QuerySize = float32(x)
		} else {
			structural = x
		}
		bg, err := newBoxIndex(layout, structural, bcfg)
		if err != nil {
			return err
		}
		res := core.RunBoxes(bg, workload.MustNewBoxGenerator(bcfg), core.Options{})
		series.Xs = append(series.Xs, float64(x))
		ys = append(ys, res.AvgTick().Seconds())
		if rep, ok := bg.(interface{ ReplicationFactor() float64 }); ok {
			fmt.Fprintf(os.Stderr, "%s=%d: %.4fs/tick (replication %.2fx)\n",
				vary, x, res.AvgTick().Seconds(), rep.ReplicationFactor())
		} else {
			fmt.Fprintf(os.Stderr, "%s=%d: %.4fs/tick\n", vary, x, res.AvgTick().Seconds())
		}
	}
	if err := series.AddLine("Avg. Time per Tick (s)", ys); err != nil {
		return err
	}
	if best := stats.ArgminIndex(ys); best >= 0 {
		fmt.Fprintf(os.Stderr, "optimum: %s=%d (%.4fs/tick)\n", vary, int(series.Xs[best]), ys[best])
	}
	if csv {
		fmt.Print(series.CSV())
	} else {
		fmt.Print(series.Format())
	}
	return nil
}
