package main

import "testing"

func TestRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{},                            // neither -experiment nor -vary
		{"-experiment", "fig9z"},      // unknown experiment
		{"-vary", "fanout"},           // unknown parameter
		{"-vary", "bs", "-from", "0"}, // non-positive start
		{"-vary", "bs", "-step", "0"}, // zero step
		{"-vary", "bs", "-from", "9", "-to", "3"},                     // inverted range
		{"-vary", "cps", "-layout", "hash"},                           // unknown layout
		{"-vary", "cps", "-scan", "spiral"},                           // unknown scan
		{"-experiment", "fig1a", "-scale", "0"},                       // invalid scale
		{"-objects", "sphere", "-vary", "cps"},                        // unknown object class
		{"-objects", "box", "-vary", "bs"},                            // box grid has no buckets
		{"-objects", "box", "-experiment", "fig1a"},                   // no predefined box sweeps
		{"-objects", "box", "-vary", "cps", "-from", "9", "-to", "3"}, // inverted range
		{"-objects", "box", "-vary", "cps", "-boxlayout", "quadtree"}, // unknown box layout
		{"-vary", "cps", "-layout", "csr-xy", "-scan", "spiral"},      // csr-xy parses, scan does not
		{"-vary", "cps", "-layout", "auto"},                           // auto tunes cps itself
		{"-vary", "bs", "-layout", "auto"},                            // auto tunes bs itself
		{"-objects", "box", "-vary", "cps", "-boxlayout", "auto"},     // box auto tunes cps itself
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestBoxSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size data sweep")
	}
	err := run([]string{
		"-objects", "box", "-vary", "cps", "-from", "16", "-to", "48", "-step", "16",
		"-scale", "0.02", "-csv",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBoxQextSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size data sweep")
	}
	err := run([]string{
		"-objects", "box", "-boxlayout", "2l", "-vary", "qext",
		"-from", "200", "-to", "800", "-step", "300", "-cps", "64",
		"-scale", "0.02", "-csv",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBoxRTreeSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size data sweep")
	}
	err := run([]string{
		"-objects", "box", "-boxlayout", "rtree", "-vary", "qext",
		"-from", "200", "-to", "500", "-step", "300",
		"-scale", "0.02", "-csv",
	})
	if err != nil {
		t.Fatal(err)
	}
	// -vary cps sweeps the R-tree's fanout.
	err = run([]string{
		"-objects", "box", "-boxlayout", "rtree", "-vary", "cps",
		"-from", "8", "-to", "16", "-step", "8",
		"-scale", "0.02", "-csv",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAutoQextSweepsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size data sweep")
	}
	err := run([]string{
		"-vary", "qext", "-from", "200", "-to", "500", "-step", "300",
		"-layout", "auto", "-scale", "0.02", "-csv",
	})
	if err != nil {
		t.Fatal(err)
	}
	err = run([]string{
		"-objects", "box", "-boxlayout", "auto", "-vary", "qext",
		"-from", "200", "-to", "500", "-step", "300",
		"-scale", "0.02", "-csv",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCustomSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size data sweep")
	}
	err := run([]string{
		"-vary", "cps", "-from", "8", "-to", "24", "-step", "8",
		"-layout", "inline", "-scan", "range", "-bs", "8",
		"-scale", "0.02", "-csv",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPredefinedSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size data sweep")
	}
	if err := run([]string{"-experiment", "fig5a", "-scale", "0.02"}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkedFullSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size data sweep")
	}
	err := run([]string{
		"-vary", "bs", "-from", "4", "-to", "8", "-step", "4",
		"-layout", "linked", "-scan", "full", "-cps", "13",
		"-scale", "0.02",
	})
	if err != nil {
		t.Fatal(err)
	}
}
