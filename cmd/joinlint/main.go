// Command joinlint is the project's static-analysis multichecker: the
// four contract analyzers (capforward, containedgo, hotpath,
// determinism) plus the two compiler-probe gates (escape, BCE) from
// internal/joinlint, wired behind one CLI.
//
// Analyze (the default):
//
//	go run ./cmd/joinlint ./...
//	go run ./cmd/joinlint -analyzers capforward,hotpath ./internal/grid
//
// Compiler-probe gates (the escape gate proves every
// //joinlint:hotpath kernel allocation-free; the BCE gate pins the
// //joinlint:bce loops' bounds-check counts against the checked-in
// baseline):
//
//	go run ./cmd/joinlint -escapes -bce ./...
//	go run ./cmd/joinlint -escapes -bce -json ./...   # machine-readable summary
//	go run ./cmd/joinlint -bce -write-bce-baseline ./...  # regenerate the pin
//
// The binary also speaks the go vet -vettool protocol, so the analyzer
// suite runs under vet's caching and package iteration:
//
//	go build -o /tmp/joinlint ./cmd/joinlint
//	go vet -vettool=/tmp/joinlint ./...
//
// Exit status: 0 clean, 1 findings or gate failures, 2 usage/load
// errors.
package main

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/joinlint"
)

func main() {
	// The go vet protocol probes the tool before handing it a config:
	// -V=full must print an identity line, -flags the tool's flag set.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" {
			// The version doubles as the vet cache key, so it must
			// change whenever the tool's behavior does: hash the binary.
			fmt.Printf("joinlint version %s\n", selfID())
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(runVetTool(os.Args[1], os.Stderr))
	}
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("joinlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		escapes   = fs.Bool("escapes", false, "run the escape gate: every //joinlint:hotpath function must be free of heap escapes")
		bce       = fs.Bool("bce", false, "run the BCE gate: every //joinlint:bce function's bounds-check count must not exceed the baseline")
		jsonOut   = fs.Bool("json", false, "with -escapes/-bce, print the machine-readable per-function probe summary to stdout")
		baseline  = fs.String("bce-baseline", "internal/joinlint/bce_baseline.json", "BCE baseline file, relative to the module root")
		writeBase = fs.Bool("write-bce-baseline", false, "with -bce, regenerate the baseline instead of gating against it")
		analyzers = fs.String("analyzers", "", "comma-separated analyzer subset (default: all of capforward, containedgo, hotpath, determinism)")
		flagsMode = fs.Bool("flags", false, "print the vet-protocol flag description (internal: used by go vet)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *flagsMode {
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// The source importer resolves module-local import paths through
	// the go command relative to the working directory, so everything
	// runs from the module root; it also keeps compiler diagnostic
	// paths aligned with the collected annotations.
	root, err := joinlint.ModuleRoot("")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if err := os.Chdir(root); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *escapes || *bce {
		return runGates(root, patterns, *escapes, *bce, *jsonOut, *baseline, *writeBase, stdout, stderr)
	}

	sel, err := joinlint.ByName(splitList(*analyzers))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := joinlint.NewLoader().Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags := joinlint.RunAnalyzers(pkgs, sel)
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "joinlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func runGates(root string, patterns []string, escapes, bce, jsonOut bool, baselinePath string, writeBase bool, stdout, stderr io.Writer) int {
	report, err := joinlint.Probe(root, patterns, escapes, bce)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if jsonOut {
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		stdout.Write(buf.Bytes())
	}
	failed := false
	if escapes {
		errs := joinlint.EscapeGate(report)
		for _, e := range errs {
			fmt.Fprintln(stderr, e)
		}
		if len(errs) > 0 {
			failed = true
		} else {
			hot := 0
			for _, f := range report.Functions {
				if f.Hotpath {
					hot++
				}
			}
			fmt.Fprintf(stderr, "escape gate: %d hotpath function(s) allocation-free\n", hot)
		}
	}
	if bce {
		if writeBase {
			if err := joinlint.WriteBCEBaseline(baselinePath, report); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			fmt.Fprintf(stderr, "bce gate: baseline written to %s\n", baselinePath)
		} else {
			base, err := joinlint.LoadBCEBaseline(baselinePath)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			errs, improved := joinlint.BCEGate(report, base)
			for _, e := range errs {
				fmt.Fprintln(stderr, e)
			}
			for _, s := range improved {
				fmt.Fprintf(stderr, "bce gate: improvement: %s\n", s)
			}
			if len(errs) > 0 {
				failed = true
			} else {
				fmt.Fprintf(stderr, "bce gate: %d function(s) at or below baseline\n", countBCE(report))
			}
		}
	}
	if failed {
		return 1
	}
	return 0
}

func countBCE(r *joinlint.ProbeReport) int {
	n := 0
	for _, f := range r.Functions {
		if f.BCE {
			n++
		}
	}
	return n
}

// selfID returns a content hash of the running executable, or a fixed
// fallback when it cannot be read (go vet then just caches less well).
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unhashed"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unhashed"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unhashed"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
