package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/joinlint"
)

// keepCwd undoes run()'s chdir to the module root after each test.
func keepCwd(t *testing.T) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(cwd) })
}

func TestRunCleanPackages(t *testing.T) {
	keepCwd(t)
	var out, errb bytes.Buffer
	if code := run([]string{"./internal/core", "./internal/parutil"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, want 0\nstderr:\n%s", code, errb.String())
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	keepCwd(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch", "./internal/core"}, &out, &errb); code != 2 {
		t.Fatalf("run = %d, want 2 for unknown analyzer\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "nosuch") {
		t.Errorf("stderr does not name the unknown analyzer: %s", errb.String())
	}
}

func TestRunEscapeGateJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds annotated packages; skipped in -short")
	}
	keepCwd(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-escapes", "-json", "./internal/rtree"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, want 0\nstderr:\n%s", code, errb.String())
	}
	var report joinlint.ProbeReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("stdout is not the JSON summary: %v\n%s", err, out.String())
	}
	if len(report.Functions) == 0 {
		t.Fatal("JSON summary lists no annotated functions for ./internal/rtree")
	}
	for _, f := range report.Functions {
		if f.Hotpath && len(f.Escapes) != 0 {
			t.Errorf("%s: unexpected escapes %v", f.Key(), f.Escapes)
		}
	}
}

func TestRunBCEGate(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds annotated packages; skipped in -short")
	}
	keepCwd(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-bce", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, want 0\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "at or below baseline") {
		t.Errorf("missing gate summary in stderr: %s", errb.String())
	}
}

// TestVetToolProtocol builds the binary and drives it through the real
// go vet -vettool protocol over a clean package.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs go vet; skipped in -short")
	}
	keepCwd(t)
	root, err := joinlint.ModuleRoot("")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "joinlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/joinlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	version := exec.Command(bin, "-V=full")
	vout, err := version.Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.HasPrefix(string(vout), "joinlint version ") {
		t.Fatalf("-V=full output = %q", vout)
	}

	// internal/epoch matters here: its race/fuzz tests use raw
	// goroutines on purpose, and go vet hands the tool test-augmented
	// compile units — the vettool path must skip _test.go files just
	// like the standalone loader does.
	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/parutil", "./internal/geom", "./internal/epoch")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over clean packages failed: %v\n%s", err, out)
	}
}
