package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/joinlint"
)

// vetConfig is the per-package JSON config the go command hands a
// -vettool binary. Only the fields joinlint needs are decoded; the
// rest of the protocol (facts via PackageVetx) is unused because none
// of the analyzers exchange facts.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetTool analyzes the single package described by a go vet .cfg
// file. Unlike the standalone path, imports resolve through the
// compiler export data the go command already built (cfg.PackageFile),
// so no re-typechecking of dependencies happens. Exit 0 = clean,
// 2 = findings (the exit code go vet expects from a failing tool).
func runVetTool(cfgPath string, stderr io.Writer) int {
	cfg, err := loadVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// Test files are out of scope by design (race stress tests
	// legitimately use raw goroutines, oracles use maps), and the
	// standalone loader never sees them — but go vet hands the tool
	// test-augmented compile units. Drop them here so both modes agree.
	cfg.GoFiles = withoutTestFiles(cfg.GoFiles)
	if len(cfg.GoFiles) == 0 {
		// External test package (package foo_test): nothing in scope.
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
		return 0
	}
	pkg, err := typecheckVetPackage(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, err)
		return 1
	}
	// The go command requires the facts file to exist even when empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	diags := joinlint.RunAnalyzers([]*joinlint.Package{pkg}, joinlint.All())
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func loadVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("joinlint: parsing vet config %s: %w", path, err)
	}
	return cfg, nil
}

func typecheckVetPackage(cfg *vetConfig) (*joinlint.Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// lookup resolves an import path to the export data the go command
	// recorded in the config: vendoring/module indirections go through
	// ImportMap first, then PackageFile names the .a/export file.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("joinlint: no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, compiler, lookup),
		Sizes:    types.SizesFor(compiler, buildArch()),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &joinlint.Package{
		PkgPath: cfg.ImportPath,
		Dir:     cfg.Dir,
		Fset:    fset,
		Files:   files,
		Pkg:     tpkg,
		Info:    info,
	}, nil
}

func withoutTestFiles(names []string) []string {
	var out []string
	for _, name := range names {
		if !strings.HasSuffix(name, "_test.go") {
			out = append(out, name)
		}
	}
	return out
}

func buildArch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}
