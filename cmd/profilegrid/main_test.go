package main

import "testing"

func TestRejectsBadScale(t *testing.T) {
	for _, s := range []string{"0", "1.5"} {
		if err := run([]string{"-scale", s}); err == nil {
			t.Fatalf("scale %s accepted", s)
		}
	}
}

func TestRejectsBadKind(t *testing.T) {
	if err := run([]string{"-before-kind", "csr2l"}); err == nil {
		t.Fatal("unknown before-kind accepted")
	}
	if err := run([]string{"-after-kind", "hash"}); err == nil {
		t.Fatal("unknown after-kind accepted")
	}
}

func TestProfileIntrusiveKind(t *testing.T) {
	if testing.Short() {
		t.Skip("memory simulation run")
	}
	err := run([]string{
		"-points", "2000", "-scale", "0.02",
		"-before-kind", "refactored", "-before-bs", "20", "-before-cps", "64",
		"-after-kind", "intrusive", "-after-bs", "1", "-after-cps", "64",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProfileSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("memory simulation run")
	}
	err := run([]string{
		"-points", "3000", "-scale", "0.02", "-seed", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProfileCustomHierarchyAndTunings(t *testing.T) {
	if testing.Short() {
		t.Skip("memory simulation run")
	}
	err := run([]string{
		"-points", "2000", "-scale", "0.02",
		"-before-bs", "2", "-before-cps", "8",
		"-after-bs", "16", "-after-cps", "32",
		"-l1-kb", "16", "-l2-kb", "128", "-l3-mb", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadHierarchy(t *testing.T) {
	if testing.Short() {
		t.Skip("records a workload before failing")
	}
	// 48KB L1 with 8 ways and 64B lines gives a non-power-of-two set
	// count, which the simulator must reject.
	err := run([]string{"-points", "500", "-scale", "0.02", "-l1-kb", "48"})
	if err == nil {
		t.Fatal("invalid hierarchy accepted")
	}
}
