// Command profilegrid reproduces Table 3: the memory-hierarchy profile of
// Simple Grid before and after the re-implementation, measured on the
// simulated cache hierarchy (the substitute for the paper's CPU
// performance counters — see DESIGN.md).
//
// The two profiled configurations default to the paper's Before/After
// pair but both the tuning and the simulated layout are flags, so any
// kind pairing the simulator supports (original, refactored, intrusive,
// rtree — the STR R-tree, putting the study's grid-vs-R-tree axis on
// the same footing) can be profiled head to head.
//
// After the simulated profile, the same trace is replayed through the
// real implementations on the measuring host and the wall-clock query
// phase reported; -querykernel emit|append|batch selects the query
// kernel for that replay (the simulator itself counts memory accesses
// and cannot see the callback-vs-buffer difference).
//
// Examples:
//
//	profilegrid                          # paper configurations, scaled ticks
//	profilegrid -scale 1.0               # full 100-tick replay (slow)
//	profilegrid -before-cps 20 -after-cps 128
//	profilegrid -after-kind intrusive    # refactored vs handle-based u-grid
//	profilegrid -after-kind rtree -after-bs 16  # tuned grid vs STR R-tree
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/memsim"
	"repro/internal/rtree"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "profilegrid:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("profilegrid", flag.ContinueOnError)
	var (
		points     = fs.Int("points", workload.DefaultNumPoints, "number of moving objects")
		scale      = fs.Float64("scale", 0.1, "tick-count scale in (0,1]")
		seed       = fs.Uint64("seed", 1, "workload random seed")
		beforeBS   = fs.Int("before-bs", 4, "bucket size of the 'before' grid")
		beforeCPS  = fs.Int("before-cps", 13, "cells per side of the 'before' grid")
		beforeKind = fs.String("before-kind", "original", "simulated layout of the 'before' technique: original, refactored, intrusive or rtree (rtree reads the fanout from -before-bs)")
		afterBS    = fs.Int("after-bs", 20, "bucket size of the 'after' grid")
		afterCPS   = fs.Int("after-cps", 64, "cells per side of the 'after' grid")
		afterKind  = fs.String("after-kind", "refactored", "simulated layout of the 'after' technique: original, refactored, intrusive or rtree (rtree reads the fanout from -after-bs)")
		l1KB       = fs.Int("l1-kb", 32, "L1d size in KiB")
		l2KB       = fs.Int("l2-kb", 256, "L2 size in KiB")
		l3MB       = fs.Int("l3-mb", 8, "L3 size in MiB")
		kernelKey  = fs.String("querykernel", "auto", "query kernel for the host replay ("+bench.QueryKernelKeys()+"): emit = per-result callback, append = buffered, batch = multi-query")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("scale must be in (0,1], got %g", *scale)
	}
	kernel, kerr := bench.ParseQueryKernel(*kernelKey)
	if kerr != nil {
		return kerr
	}
	bKind, err := parseKind(*beforeKind)
	if err != nil {
		return err
	}
	aKind, err := parseKind(*afterKind)
	if err != nil {
		return err
	}

	wcfg := workload.DefaultUniform()
	wcfg.Seed = *seed
	wcfg.NumPoints = *points
	wcfg.Ticks = int(float64(wcfg.Ticks)**scale + 0.5)
	if wcfg.Ticks < 2 {
		wcfg.Ticks = 2
	}
	fmt.Fprintf(os.Stderr, "recording workload: %d points, %d ticks\n", wcfg.NumPoints, wcfg.Ticks)
	trace, err := workload.Record(wcfg)
	if err != nil {
		return err
	}

	hier := memsim.DefaultHierarchy()
	hier.L1.SizeBytes = *l1KB << 10
	hier.L2.SizeBytes = *l2KB << 10
	hier.L3.SizeBytes = *l3MB << 20

	before := memsim.GridSimConfig{Kind: bKind, BS: *beforeBS, CPS: *beforeCPS}
	after := memsim.GridSimConfig{Kind: aKind, BS: *afterBS, CPS: *afterCPS}

	fmt.Fprintf(os.Stderr, "profiling before (%s, bs=%d cps=%d)...\n", before.Kind, before.BS, before.CPS)
	bres, err := memsim.ProfileGrid(before, trace, hier, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "profiling after (%s, bs=%d cps=%d)...\n", after.Kind, after.BS, after.CPS)
	ares, err := memsim.ProfileGrid(after, trace, hier, 0)
	if err != nil {
		return err
	}
	if bres.Pairs != ares.Pairs {
		return fmt.Errorf("join results diverge: %d vs %d pairs", bres.Pairs, ares.Pairs)
	}

	table := stats.NewTable(
		fmt.Sprintf("Profiling (simulated %dKiB/%dKiB/%dMiB hierarchy): %d points, %d ticks",
			*l1KB, *l2KB, *l3MB, wcfg.NumPoints, wcfg.Ticks),
		"Simple Grid", "CPI", "Total INS", "L1 Misses", "L2 Misses", "L3 Misses",
	)
	addRow := func(name string, p memsim.Profile) {
		table.AddRow(name,
			fmt.Sprintf("%.2f", p.CPI),
			fmt.Sprintf("%d", p.Instructions),
			fmt.Sprintf("%d", p.L1Misses),
			fmt.Sprintf("%d", p.L2Misses),
			fmt.Sprintf("%d", p.L3Misses))
	}
	addRow("Before", bres.Profile)
	addRow("After", ares.Profile)
	fmt.Print(table.Format())
	b, a := bres.Profile, ares.Profile
	fmt.Printf("\nreductions: INS %.1fx, L1 %.1fx, L2 %.1fx, L3 %.1fx, CPI %.2f -> %.2f\n",
		safeRatio(float64(b.Instructions), float64(a.Instructions)),
		safeRatio(float64(b.L1Misses), float64(a.L1Misses)),
		safeRatio(float64(b.L2Misses), float64(a.L2Misses)),
		safeRatio(float64(b.L3Misses), float64(a.L3Misses)),
		b.CPI, a.CPI)
	fmt.Printf("join check: both implementations found %d pairs over %d queries\n", bres.Pairs, bres.Queries)

	// Host companion: the same trace replayed through the real
	// implementations on this machine's actual memory hierarchy, with
	// the selected query kernel. The simulator charges the buffered and
	// callback kernels identically (it counts accesses, not call
	// overhead), so this is where -querykernel emit vs append shows up.
	hBefore, err := hostIndex(bKind, *beforeBS, *beforeCPS, wcfg)
	if err != nil {
		return err
	}
	hAfter, err := hostIndex(aKind, *afterBS, *afterCPS, wcfg)
	if err != nil {
		return err
	}
	hb := core.Run(hBefore, workload.NewPlayer(trace), core.Options{Kernel: kernel})
	ha := core.Run(hAfter, workload.NewPlayer(trace), core.Options{Kernel: kernel})
	if hb.Pairs != ha.Pairs || hb.Hash != ha.Hash {
		return fmt.Errorf("host replay diverges: %d pairs (digest %#x) vs %d pairs (digest %#x)",
			hb.Pairs, hb.Hash, ha.Pairs, ha.Hash)
	}
	bq := perQueryNs(hb)
	aq := perQueryNs(ha)
	fmt.Printf("host replay (kernel=%s): query phase %.0f -> %.0f ns/query (%.2fx), tick %.4fs -> %.4fs\n",
		kernel, bq, aq, safeRatio(bq, aq), hb.AvgTick().Seconds(), ha.AvgTick().Seconds())
	return nil
}

// perQueryNs is the replay's average wall time per range query.
func perQueryNs(r *core.Result) float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.Totals.Query.Nanoseconds()) / float64(r.Queries)
}

// hostIndex maps a simulated grid kind to its real in-tree counterpart
// at the same tuning, for the host replay.
func hostIndex(k memsim.GridKind, bs, cps int, wcfg workload.Config) (core.Index, error) {
	switch k {
	case memsim.GridOriginal:
		return grid.New(grid.Config{Layout: grid.LayoutLinked, Scan: grid.ScanFull, BS: bs, CPS: cps}, wcfg.Bounds(), wcfg.NumPoints)
	case memsim.GridRefactored:
		return grid.New(grid.Config{Layout: grid.LayoutInline, Scan: grid.ScanRange, BS: bs, CPS: cps}, wcfg.Bounds(), wcfg.NumPoints)
	case memsim.GridIntrusive:
		return grid.New(grid.Config{Layout: grid.LayoutIntrusive, Scan: grid.ScanRange, BS: bs, CPS: cps}, wcfg.Bounds(), wcfg.NumPoints)
	case memsim.GridRTree:
		return rtree.New(bs)
	}
	return nil, fmt.Errorf("no host counterpart for simulated kind %v", k)
}

func parseKind(s string) (memsim.GridKind, error) {
	switch s {
	case "original":
		return memsim.GridOriginal, nil
	case "refactored":
		return memsim.GridRefactored, nil
	case "intrusive":
		return memsim.GridIntrusive, nil
	case "rtree":
		return memsim.GridRTree, nil
	}
	return 0, fmt.Errorf("unknown grid kind %q (have original, refactored, intrusive, rtree)", s)
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
