// Command experiments regenerates the paper's tables and figures.
//
// Each experiment prints the same rows/series the paper reports, as an
// aligned text table; -csv-dir additionally writes one CSV per artifact
// for plotting.
//
// Examples:
//
//	experiments -list
//	experiments -run fig2a -scale 0.1
//	experiments -run all -scale 1.0 -csv-dir results/   # full paper scale
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runIDs   = fs.String("run", "all", "comma-separated experiment IDs, \"all\" (paper artifacts) or \"extensions\"")
		list     = fs.Bool("list", false, "list experiments and exit")
		scale    = fs.Float64("scale", 0.1, "tick-count scale in (0,1]; 1.0 = paper parameters")
		seed     = fs.Uint64("seed", 1, "workload random seed")
		csvDir   = fs.String("csv-dir", "", "directory to write per-experiment CSVs into")
		parallel = fs.Bool("parallel", false, "parallelize query phases (not paper-faithful)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-7s %s\n", e.ID, e.Title)
		}
		for _, e := range bench.AllExtensions() {
			fmt.Printf("%-7s %s\n", e.ID, e.Title)
		}
		return nil
	}

	cfg := bench.Config{Scale: *scale, Seed: *seed, Parallel: *parallel}
	if err := cfg.Validate(); err != nil {
		return err
	}

	var selected []bench.Experiment
	switch *runIDs {
	case "all":
		selected = bench.All()
	case "extensions":
		selected = bench.AllExtensions()
	default:
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.ByID(id)
			if !ok {
				e, ok = bench.ExtensionByID(id)
			}
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, e)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	for _, e := range selected {
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		fmt.Printf("    paper shape: %s\n", e.PaperShape)
		start := time.Now()
		art, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("    completed in %.1fs (scale %.2f)\n\n", time.Since(start).Seconds(), *scale)
		fmt.Println(indent(art.Format(), "    "))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(art.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Printf("    wrote %s\n\n", path)
		}
	}
	return nil
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
