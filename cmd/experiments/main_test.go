package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRejectsBadScale(t *testing.T) {
	for _, s := range []string{"0", "-1", "2"} {
		if err := run([]string{"-run", "fig1a", "-scale", s}); err == nil {
			t.Fatalf("scale %s accepted", s)
		}
	}
}

func TestRunOneExperimentWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size data run")
	}
	dir := t.TempDir()
	if err := run([]string{"-run", "fig1a", "-scale", "0.02", "-csv-dir", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1a.csv"))
	if err != nil {
		t.Fatal(err)
	}
	csv := string(data)
	if !strings.HasPrefix(csv, "Entries per Bucket,") {
		t.Fatalf("CSV header: %q", csv[:40])
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 9 { // header + 8 bs values
		t.Fatalf("CSV rows wrong:\n%s", csv)
	}
}

func TestIndentHelper(t *testing.T) {
	got := indent("a\nb\n", "  ")
	if got != "  a\n  b" {
		t.Fatalf("indent = %q", got)
	}
}
