// Command gridbench measures the grid's three operations — Build, Query,
// Update — across physical layouts and emits the numbers as JSON, the
// machine-readable perf trajectory the CI smoke bench tracks
// (BENCH_grid.json). The point lineup compares the inline-bucket layout
// against the CSR layout and the coordinates-inlined CSR variant
// (csrxy); with -objects point,box the report additionally carries the
// "boxcsr" series (the CSR rectangle grid with reference-point dedup),
// the "boxcsr2l" series (the two-layer class-partitioned grid with
// inlined coordinates), the "boxrtree" series (the STR bulk-loaded box
// R-tree — the competing index family), and a one-pass "boxbrute" floor
// over the default MBR workload.
//
// Every measured structure is first checked against the brute-force
// oracle: the run fails if any contender's query digest diverges, so a
// perf number can never be reported for a structure that returns wrong
// results.
//
// The workload mirrors the paper's standard setting: the default uniform
// population with 50% queriers and 50% updaters per tick. Layouts are
// compared at the paper's tuned granularity (cps=64) and at a much finer
// grid (cps=256) where contiguity (and, for boxes, replication) matters
// most. -qext adds a rect x rect window-join series per query extent, so
// the class-partition win is visible across selectivities.
//
// Examples:
//
//	gridbench                          # defaults, JSON to stdout
//	gridbench -iters 100 -out BENCH_grid.json
//	gridbench -objects point,box       # include the box-join series
//	gridbench -objects box -qext 100,400,1600
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/rtree"
	"repro/internal/workload"
)

// opResult is one (layout, cps, op) timing. Qext is set only for the
// query-extent sweep series (-qext), where op is always "query".
type opResult struct {
	Layout  string  `json:"layout"`
	CPS     int     `json:"cps"`
	Op      string  `json:"op"`
	NsPerOp float64 `json:"ns_per_op"`
	Qext    float64 `json:"qext,omitempty"`
}

// report is the BENCH_grid.json schema.
type report struct {
	Tool    string     `json:"tool"`
	Points  int        `json:"points"`
	Iters   int        `json:"iters"`
	Results []opResult `json:"results"`
	// Summary ratios: inline time / csr time per operation and for the
	// acceptance-criterion pairing build+query, at each granularity.
	Speedups map[string]float64 `json:"csr_speedup_vs_inline"`
	// XYSpeedups compares the coordinates-inlined CSR against plain CSR
	// (csr time / csrxy time).
	XYSpeedups map[string]float64 `json:"csrxy_speedup_vs_csr,omitempty"`
	// Box2LSpeedups compares the two-layer classed rectangle grid against
	// the reference-point one (boxcsr time / boxcsr2l time).
	Box2LSpeedups map[string]float64 `json:"box2l_speedup_vs_boxcsr,omitempty"`
	// BoxRTreeVsBrute compares the STR box R-tree against the
	// brute-force oracle (boxbrute time / boxrtree time; query only —
	// the oracle has no build or update work to compare).
	BoxRTreeVsBrute map[string]float64 `json:"boxrtree_speedup_vs_boxbrute,omitempty"`
	// BoxRTreeVsBox2L compares the STR box R-tree against the two-layer
	// classed grid at each granularity (boxcsr2l time / boxrtree time) —
	// the grid-vs-R-tree axis of the study for extended objects.
	BoxRTreeVsBox2L map[string]float64 `json:"boxrtree_speedup_vs_box2l,omitempty"`
	// BoxReplication maps "cps=N" to the rectangle grid's replication
	// factor under the default box workload (present with -objects box).
	BoxReplication map[string]float64 `json:"box_replication,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gridbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gridbench", flag.ContinueOnError)
	var (
		iters   = fs.Int("iters", 100, "measured iterations per operation (like -benchtime=100x)")
		points  = fs.Int("points", workload.DefaultNumPoints, "number of objects")
		seed    = fs.Uint64("seed", 1, "workload random seed")
		out     = fs.String("out", "", "write JSON here instead of stdout")
		objects = fs.String("objects", "point", "comma-separated object classes to measure: point, box")
		qext    = fs.String("qext", "", "comma-separated query side lengths: adds a box window-join query series per extent")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *iters <= 0 {
		return fmt.Errorf("iters must be positive, got %d", *iters)
	}
	wantPoint, wantBox := false, false
	for _, o := range strings.Split(*objects, ",") {
		switch strings.TrimSpace(o) {
		case "point":
			wantPoint = true
		case "box":
			wantBox = true
		default:
			return fmt.Errorf("unknown object class %q (have point, box)", o)
		}
	}
	var qexts []float64
	if *qext != "" {
		if !wantBox {
			return fmt.Errorf("-qext is a box window-join sweep; add box to -objects")
		}
		for _, tok := range strings.Split(*qext, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("invalid query extent %q", tok)
			}
			qexts = append(qexts, v)
		}
	}

	wcfg := workload.DefaultUniform()
	wcfg.Seed = *seed
	wcfg.NumPoints = *points
	gen, err := workload.NewGenerator(wcfg)
	if err != nil {
		return err
	}
	pts := gen.Positions(nil)
	queriers := append([]uint32(nil), gen.Queriers()...)
	updates := append([]workload.Update(nil), gen.Updates()...)
	if len(queriers) == 0 || len(updates) == 0 {
		return fmt.Errorf("population %d yields %d queriers and %d updates per tick; raise -points",
			len(pts), len(queriers), len(updates))
	}

	rep := &report{
		Tool:     "cmd/gridbench",
		Points:   len(pts),
		Iters:    *iters,
		Speedups: map[string]float64{},
	}

	type contender struct {
		layout grid.Layout
		name   string
	}
	if wantPoint {
		// The oracle digest the layouts must reproduce before being timed.
		wantDigest := brutePointDigest(pts, queriers, wcfg.QuerySize)
		ops := map[string]map[string]float64{} // op+cps key -> layout -> ns/op
		for _, cps := range []int{64, 256} {
			for _, c := range []contender{
				{grid.LayoutInline, "inline"},
				{grid.LayoutCSR, "csr"},
				{grid.LayoutCSRXY, "csrxy"},
			} {
				gc := grid.Config{Layout: c.layout, Scan: grid.ScanRange, BS: grid.RefactoredBS, CPS: cps}
				g, err := grid.New(gc, wcfg.Bounds(), len(pts))
				if err != nil {
					return err
				}
				g.Build(pts)
				if got := pointDigest(g, pts, queriers, wcfg.QuerySize); got != wantDigest {
					return fmt.Errorf("layout %s at cps=%d diverges from the brute-force oracle (digest %#x, want %#x)",
						c.name, cps, got, wantDigest)
				}
				timings := measure(g, pts, queriers, updates, wcfg.QuerySize, *iters)
				for op, ns := range timings {
					rep.Results = append(rep.Results, opResult{Layout: c.name, CPS: cps, Op: op, NsPerOp: ns})
					key := fmt.Sprintf("%s/cps=%d", op, cps)
					if ops[key] == nil {
						ops[key] = map[string]float64{}
					}
					ops[key][c.name] = ns
				}
			}
		}
		rep.XYSpeedups = map[string]float64{}
		for _, cps := range []int{64, 256} {
			for _, op := range []string{"build", "query", "update"} {
				key := fmt.Sprintf("%s/cps=%d", op, cps)
				rep.Speedups[key] = ops[key]["inline"] / ops[key]["csr"]
				rep.XYSpeedups[key] = ops[key]["csr"] / ops[key]["csrxy"]
			}
			bq := fmt.Sprintf("build+query/cps=%d", cps)
			inline := ops[fmt.Sprintf("build/cps=%d", cps)]["inline"] + ops[fmt.Sprintf("query/cps=%d", cps)]["inline"]
			csr := ops[fmt.Sprintf("build/cps=%d", cps)]["csr"] + ops[fmt.Sprintf("query/cps=%d", cps)]["csr"]
			rep.Speedups[bq] = inline / csr
		}
	}

	if wantBox {
		bcfg := workload.DefaultUniformBoxes()
		bcfg.Seed = *seed
		bcfg.NumPoints = *points
		bgen, err := workload.NewBoxGenerator(bcfg)
		if err != nil {
			return err
		}
		rects := bgen.Rects(nil)
		boxQueriers := append([]uint32(nil), bgen.Queriers()...)
		boxUpdates := append([]workload.BoxUpdate(nil), bgen.Updates()...)
		if len(boxQueriers) == 0 || len(boxUpdates) == 0 {
			return fmt.Errorf("box population %d yields %d queriers and %d updates per tick; raise -points",
				len(rects), len(boxQueriers), len(boxUpdates))
		}
		wantDigest := bruteBoxDigest(rects, boxQueriers, bcfg.QuerySize)
		rep.BoxReplication = map[string]float64{}
		rep.Box2LSpeedups = map[string]float64{}
		boxOps := map[string]map[string]float64{} // op+cps key -> layout -> ns/op

		// Grid-independent contenders, measured once: the brute-force
		// floor (a single pass; its per-query cost is an average over
		// thousands of full scans already) and the STR box R-tree — the
		// second index family, whose overlap-free packing vs the grids'
		// replication is the axis of the study for extended objects.
		bruteNs := map[string]float64{}
		rtreeNs := map[string]float64{}
		for _, bc := range []boxContender{
			{"boxbrute", core.NewBruteForceBoxes()},
			{"boxrtree", rtree.MustNewBoxTree(rtree.DefaultFanout)},
		} {
			bc.index.Build(rects)
			if got := boxDigest(bc.index, rects, boxQueriers, bcfg.QuerySize); got != wantDigest {
				return fmt.Errorf("box technique %s diverges from the brute-force oracle (digest %#x, want %#x)",
					bc.name, got, wantDigest)
			}
			ops := *iters
			if bc.name == "boxbrute" {
				ops = 1
			}
			timings := measureBox(bc.index, rects, boxQueriers, boxUpdates, bcfg.QuerySize, ops)
			for op, ns := range timings {
				rep.Results = append(rep.Results, opResult{Layout: bc.name, Op: op, NsPerOp: ns})
				if bc.name == "boxbrute" {
					bruteNs[op] = ns
				} else {
					rtreeNs[op] = ns
				}
			}
			if bc.name == "boxrtree" {
				if len(qexts) > 0 {
					bc.index.Build(rects)
				}
				for _, ext := range qexts {
					ns := measureBoxQueries(bc.index, rects, boxQueriers, float32(ext), *iters)
					rep.Results = append(rep.Results, opResult{
						Layout: bc.name, Op: "query", NsPerOp: ns, Qext: ext,
					})
				}
			}
		}
		rep.BoxRTreeVsBrute = map[string]float64{"query": bruteNs["query"] / rtreeNs["query"]}
		rep.BoxRTreeVsBox2L = map[string]float64{}

		for _, cps := range []int{64, 256} {
			contenders := boxContenders(cps, bcfg.Bounds(), len(rects))
			for _, bc := range contenders {
				bc.index.Build(rects)
				if got := boxDigest(bc.index, rects, boxQueriers, bcfg.QuerySize); got != wantDigest {
					return fmt.Errorf("box layout %s at cps=%d diverges from the brute-force oracle (digest %#x, want %#x)",
						bc.name, cps, got, wantDigest)
				}
				timings := measureBox(bc.index, rects, boxQueriers, boxUpdates, bcfg.QuerySize, *iters)
				for op, ns := range timings {
					rep.Results = append(rep.Results, opResult{Layout: bc.name, CPS: cps, Op: op, NsPerOp: ns})
					key := fmt.Sprintf("%s/cps=%d", op, cps)
					if boxOps[key] == nil {
						boxOps[key] = map[string]float64{}
					}
					boxOps[key][bc.name] = ns
				}
				// The query-extent sweep: one window-join series per
				// extent, over a fresh build (measureBox's update phase
				// leaves the arena churned — swap-delete order, possible
				// overflow — that a steady-state tick query never sees).
				if len(qexts) > 0 {
					bc.index.Build(rects)
				}
				for _, ext := range qexts {
					ns := measureBoxQueries(bc.index, rects, boxQueriers, float32(ext), *iters)
					rep.Results = append(rep.Results, opResult{
						Layout: bc.name, CPS: cps, Op: "query", NsPerOp: ns, Qext: ext,
					})
				}
			}
			// Replication is a property of the (workload, granularity)
			// pair, not the structure — every contender replicates
			// identically, so report it once per cps off the first.
			rep.BoxReplication[fmt.Sprintf("cps=%d", cps)] = contenders[0].replication()
			for _, op := range []string{"build", "query", "update"} {
				key := fmt.Sprintf("%s/cps=%d", op, cps)
				rep.Box2LSpeedups[key] = boxOps[key]["boxcsr"] / boxOps[key]["boxcsr2l"]
				rep.BoxRTreeVsBox2L[key] = boxOps[key]["boxcsr2l"] / rtreeNs[op]
			}
			bq := fmt.Sprintf("build+query/cps=%d", cps)
			legacy := boxOps[fmt.Sprintf("build/cps=%d", cps)]["boxcsr"] + boxOps[fmt.Sprintf("query/cps=%d", cps)]["boxcsr"]
			classed := boxOps[fmt.Sprintf("build/cps=%d", cps)]["boxcsr2l"] + boxOps[fmt.Sprintf("query/cps=%d", cps)]["boxcsr2l"]
			rep.Box2LSpeedups[bq] = legacy / classed
			rep.BoxRTreeVsBox2L[bq] = classed / (rtreeNs["build"] + rtreeNs["query"])
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

type boxContender struct {
	name  string
	index core.BoxIndex
}

// replication reports the contender's replication factor (1 for
// structures that store each object exactly once).
func (bc boxContender) replication() float64 {
	if rep, ok := bc.index.(interface{ ReplicationFactor() float64 }); ok {
		return rep.ReplicationFactor()
	}
	return 1
}

func boxContenders(cps int, bounds geom.Rect, n int) []boxContender {
	return []boxContender{
		{"boxcsr", grid.MustNewBoxGrid(cps, bounds, n)},
		{"boxcsr2l", grid.MustNewBoxGrid2L(cps, bounds, n)},
	}
}

// brutePointDigest is the oracle: every (querier, point-in-range) pair,
// straight off the base table, folded with the driver's own digest
// construction (core.MixPair) so a divergence here is exactly a
// divergence there.
func brutePointDigest(pts []geom.Point, queriers []uint32, querySize float32) uint64 {
	var h uint64
	for _, q := range queriers {
		r := geom.Square(pts[q], querySize)
		for i := range pts {
			if pts[i].In(r) {
				h = core.MixPair(h, q, uint32(i))
			}
		}
	}
	return h
}

func pointDigest(g *grid.Grid, pts []geom.Point, queriers []uint32, querySize float32) uint64 {
	var h uint64
	for _, q := range queriers {
		g.Query(geom.Square(pts[q], querySize), func(id uint32) {
			h = core.MixPair(h, q, id)
		})
	}
	return h
}

// bruteBoxDigest is the rect x rect oracle: every (querier, intersecting
// MBR) pair.
func bruteBoxDigest(rects []geom.Rect, queriers []uint32, querySize float32) uint64 {
	var h uint64
	for _, q := range queriers {
		r := geom.Square(rects[q].Center(), querySize)
		for i := range rects {
			if rects[i].Intersects(r) {
				h = core.MixPair(h, q, uint32(i))
			}
		}
	}
	return h
}

func boxDigest(bg core.BoxIndex, rects []geom.Rect, queriers []uint32, querySize float32) uint64 {
	var h uint64
	for _, q := range queriers {
		bg.Query(geom.Square(rects[q].Center(), querySize), func(id uint32) {
			h = core.MixPair(h, q, id)
		})
	}
	return h
}

// measure times the three phases the way the driver's tick does: build
// over the snapshot, one query per querier, one move per updater (and
// back, so the population is iteration-invariant). Returned map keys are
// build/query/update; values are ns per operation (per build, per query,
// per update).
func measure(g *grid.Grid, pts []geom.Point, queriers []uint32, updates []workload.Update, querySize float32, iters int) map[string]float64 {
	// Warm up arenas so steady-state builds allocate nothing.
	g.Build(pts)

	start := time.Now()
	for i := 0; i < iters; i++ {
		g.Build(pts)
	}
	buildNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

	sink := 0
	emit := func(uint32) { sink++ }
	start = time.Now()
	for i := 0; i < iters; i++ {
		for _, q := range queriers {
			g.Query(geom.Square(pts[q], querySize), emit)
		}
	}
	queryNs := float64(time.Since(start).Nanoseconds()) / float64(iters*len(queriers))

	start = time.Now()
	for i := 0; i < iters; i++ {
		for _, u := range updates {
			g.Update(u.ID, pts[u.ID], u.Pos)
			g.Update(u.ID, u.Pos, pts[u.ID])
		}
	}
	// Each inner step performs two updates (there and back).
	updateNs := float64(time.Since(start).Nanoseconds()) / float64(2*iters*len(updates))

	if sink < 0 {
		panic("unreachable")
	}
	return map[string]float64{"build": buildNs, "query": queryNs, "update": updateNs}
}

// measureBox is measure for the rectangle grids: build over the MBR
// snapshot, one intersection query per querier, one MBR move per updater
// (and back).
func measureBox(bg core.BoxIndex, rects []geom.Rect, queriers []uint32, updates []workload.BoxUpdate, querySize float32, iters int) map[string]float64 {
	bg.Build(rects)

	start := time.Now()
	for i := 0; i < iters; i++ {
		bg.Build(rects)
	}
	buildNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

	queryNs := measureBoxQueries(bg, rects, queriers, querySize, iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		for _, u := range updates {
			bg.Update(u.ID, rects[u.ID], u.Rect)
			bg.Update(u.ID, u.Rect, rects[u.ID])
		}
	}
	updateNs := float64(time.Since(start).Nanoseconds()) / float64(2*iters*len(updates))

	return map[string]float64{"build": buildNs, "query": queryNs, "update": updateNs}
}

// measureBoxQueries times the query phase alone at the given window
// extent over a freshly built grid.
func measureBoxQueries(bg core.BoxIndex, rects []geom.Rect, queriers []uint32, querySize float32, iters int) float64 {
	sink := 0
	emit := func(uint32) { sink++ }
	start := time.Now()
	for i := 0; i < iters; i++ {
		for _, q := range queriers {
			bg.Query(geom.Square(rects[q].Center(), querySize), emit)
		}
	}
	if sink < 0 {
		panic("unreachable")
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters*len(queriers))
}
