// Command gridbench measures the grid's three operations — Build, Query,
// Update — across physical layouts and emits the numbers as JSON, the
// machine-readable perf trajectory the CI smoke bench tracks
// (BENCH_grid.json). The point lineup compares the inline-bucket layout
// against the CSR layout and the coordinates-inlined CSR variant
// (csrxy); with -objects point,box the report additionally carries the
// "boxcsr" series (the CSR rectangle grid with reference-point dedup),
// the "boxcsr2l" series (the two-layer class-partitioned grid with
// inlined coordinates), the "boxrtree" series (the STR bulk-loaded box
// R-tree — the competing index family), and a one-pass "boxbrute" floor
// over the default MBR workload.
//
// Every measured structure is first checked against the brute-force
// oracle: the run fails if any contender's query digest diverges, so a
// perf number can never be reported for a structure that returns wrong
// results.
//
// Each layout's query phase is measured twice — through the classic
// per-result callback (op "query") and through the buffered QueryAppend
// kernel the engines drain by default (op "query-append") — and the
// per-layout ratio lands in buffered_speedup_vs_emit, which CI gates
// for csr and boxcsr2l at the paper's tuned granularity.
//
// The workload mirrors the paper's standard setting: the default uniform
// population with 50% queriers and 50% updaters per tick. Layouts are
// compared at the paper's tuned granularity (cps=64) and at a much finer
// grid (cps=256) where contiguity (and, for boxes, replication) matters
// most. -qext adds a rect x rect window-join series per query extent, so
// the class-partition win is visible across selectivities.
//
// Both object classes additionally measure the adaptive selector
// (internal/tune, lineup keys auto/boxauto) under the same oracle
// digest gate, and -objects box runs three contrasting workloads
// (query-heavy small-extent, update-heavy, coarse-window join) where
// auto races every static family: the per-workload regret — auto's
// total tick time over the best static's — lands in the
// auto_regret_vs_best_static series, with the pick and the measured
// best recorded next to it in auto_choice.
//
// Examples:
//
//	gridbench                          # defaults, JSON to stdout
//	gridbench -iters 100 -out BENCH_grid.json
//	gridbench -objects point,box       # include the box-join series
//	gridbench -objects box -qext 100,400,1600
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/parutil"
	"repro/internal/rtree"
	"repro/internal/shard"
	"repro/internal/tune"
	"repro/internal/workload"
)

// opResult is one (layout, cps, op) timing. Qext is set only for the
// query-extent sweep series (-qext), where op is always "query";
// Workload is set only for the contrasting-workload regret series,
// whose rows are not part of the default-workload matrix. For the
// auto series, CPS carries the tuned structural parameter of whichever
// family was picked (grid cps, or R-tree fanout).
type opResult struct {
	Layout   string  `json:"layout"`
	CPS      int     `json:"cps"`
	Op       string  `json:"op"`
	NsPerOp  float64 `json:"ns_per_op"`
	Qext     float64 `json:"qext,omitempty"`
	Workload string  `json:"workload,omitempty"`
}

// benchMeta records the provenance of one BENCH_grid.json: toolchain,
// host parallelism, capture time, and (best-effort) the commit measured.
type benchMeta struct {
	GoVersion    string `json:"go_version"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	NumCPU       int    `json:"num_cpu"`
	TimestampUTC string `json:"timestamp_utc"`
	GitSHA       string `json:"git_sha,omitempty"`
}

// report is the BENCH_grid.json schema.
type report struct {
	Tool   string    `json:"tool"`
	Meta   benchMeta `json:"meta"`
	Points int       `json:"points"`
	Iters  int       `json:"iters"`
	// EffectiveCPUs is runtime.GOMAXPROCS on the measuring host. The
	// sharded series' parallel speedups are only meaningful when this is
	// comfortably above 1 — CI's scaling gate conditions on it.
	EffectiveCPUs int        `json:"effective_cpus"`
	Results       []opResult `json:"results"`
	// Summary ratios: inline time / csr time per operation and for the
	// acceptance-criterion pairing build+query, at each granularity.
	Speedups map[string]float64 `json:"csr_speedup_vs_inline"`
	// XYSpeedups compares the coordinates-inlined CSR against plain CSR
	// (csr time / csrxy time).
	XYSpeedups map[string]float64 `json:"csrxy_speedup_vs_csr,omitempty"`
	// Box2LSpeedups compares the two-layer classed rectangle grid against
	// the reference-point one (boxcsr time / boxcsr2l time).
	Box2LSpeedups map[string]float64 `json:"box2l_speedup_vs_boxcsr,omitempty"`
	// BoxRTreeVsBrute compares the STR box R-tree against the
	// brute-force oracle (boxbrute time / boxrtree time; query only —
	// the oracle has no build or update work to compare).
	BoxRTreeVsBrute map[string]float64 `json:"boxrtree_speedup_vs_boxbrute,omitempty"`
	// BoxRTreeVsBox2L compares the STR box R-tree against the two-layer
	// classed grid at each granularity (boxcsr2l time / boxrtree time) —
	// the grid-vs-R-tree axis of the study for extended objects.
	BoxRTreeVsBox2L map[string]float64 `json:"boxrtree_speedup_vs_box2l,omitempty"`
	// BoxReplication maps "cps=N" to the rectangle grid's replication
	// factor under the default box workload (present with -objects box).
	BoxReplication map[string]float64 `json:"box_replication,omitempty"`
	// BufferedSpeedup maps "layout/cps=N" (grids) or "boxrtree/fanout=N"
	// to the query-phase speedup of the buffered QueryAppend kernel over
	// the per-result callback kernel (emit ns / append ns) on the default
	// workload. Both kernels are digest-gated against the brute-force
	// oracle before being timed, so the ratio can never be bought with
	// wrong results. CI gates csr and boxcsr2l at cps=64 — the engines
	// drain buffered by default, so a regression here is a regression of
	// the default tick query phase.
	BufferedSpeedup map[string]float64 `json:"buffered_speedup_vs_emit,omitempty"`
	// AutoRegret maps a workload key to the adaptive selector's
	// measured regret vs the best static contender on that workload:
	// auto's total tick time (build + queries + updates) over the best
	// static's, minus 1. Negative = auto beat every static family it
	// was allowed to pick from (it may tune parameters the static
	// ladder does not include).
	AutoRegret map[string]float64 `json:"auto_regret_vs_best_static,omitempty"`
	// AutoChoices records, per workload key, what the selector picked
	// and which static contender actually measured best.
	AutoChoices map[string]string `json:"auto_choice,omitempty"`
	// Concurrent carries the service-mode series (-concurrent): per-query
	// latency percentiles measured while the epoch-published wrapper
	// applies the update stream concurrently, one row per object class.
	Concurrent []concurrentReport `json:"concurrent,omitempty"`
	// Sharded carries the region-sharded engine series: the sharded
	// router and the unsharded contenders measured under the same
	// parallel tick model (parallel build, queries striped across the
	// worker pool, batched updates) at -shard-workers workers.
	Sharded []shardedRow `json:"sharded,omitempty"`
	// ShardedSpeedup maps "point/tick@Nw" / "box/tick@Nw" to the sharded
	// engine's modelled tick throughput over the best unsharded
	// contender's under the same parallel model.
	ShardedSpeedup map[string]float64 `json:"sharded_speedup,omitempty"`
	// ObsOverheadPct maps the tuned layouts to the percentage cost of
	// running the stop-the-world driver with a live obs registry attached
	// vs none (interleaved min-of-rounds; both runs digest-gated against
	// each other). CI gates this at <= 5%.
	ObsOverheadPct map[string]float64 `json:"obs_overhead_pct,omitempty"`
}

// shardedRow is one contender of the sharded series. Side is the
// region-grid side for the sharded engine (0 for unsharded contenders);
// DuplicateEmits counts (querier, id) pairs reported more than once
// across the whole digest pass — any non-zero value is a cross-shard
// merge bug and the run fails before timing anyway.
type shardedRow struct {
	Layout         string  `json:"layout"`
	Side           int     `json:"side,omitempty"`
	Workers        int     `json:"workers"`
	BuildNs        float64 `json:"build_ns"`
	QueryNs        float64 `json:"query_ns"`
	UpdateNs       float64 `json:"update_ns"`
	TickNs         float64 `json:"tick_ns"`
	DuplicateEmits int     `json:"duplicate_emits"`
}

// concurrentReport is one epoch-published service-mode measurement. The
// baseline is the stop-the-world matrix's per-tick query phase (per-query
// ns x queriers per tick) for the same inner structure; P99VsTickPhase
// is the headline gate — a loaded query must never stall anywhere near a
// whole stop-the-world phase, i.e. the ratio stays well under 2.
type concurrentReport struct {
	Layout          string  `json:"layout"`
	Readers         int     `json:"readers"`
	Ticks           int     `json:"ticks"`
	QueryP50Ns      float64 `json:"concurrent_query_p50_ns"`
	QueryP95Ns      float64 `json:"concurrent_query_p95_ns"`
	QueryP99Ns      float64 `json:"concurrent_query_p99_ns"`
	TickQueryNs     float64 `json:"baseline_tick_query_ns"`
	P99VsTickPhase  float64 `json:"p99_vs_tick_query_phase"`
	EpochsPublished uint64  `json:"epochs_published"`
	DegradedTicks   uint64  `json:"degraded_ticks"`
	PanicsContained uint64  `json:"panics_contained"`
	FailedTicks     int     `json:"failed_ticks"`
	Violations      int64   `json:"violations"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gridbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gridbench", flag.ContinueOnError)
	var (
		iters   = fs.Int("iters", 100, "measured iterations per operation (like -benchtime=100x)")
		points  = fs.Int("points", workload.DefaultNumPoints, "number of objects")
		seed    = fs.Uint64("seed", 1, "workload random seed")
		out     = fs.String("out", "", "write JSON here instead of stdout")
		objects = fs.String("objects", "point", "comma-separated object classes to measure: point, box")
		qext    = fs.String("qext", "", "comma-separated query side lengths: adds a box window-join query series per extent")
		conc    = fs.Bool("concurrent", true, "measure the epoch-published service mode (query latency under update load)")
		cticks  = fs.Int("concurrent-ticks", 8, "ticks for the -concurrent measurement")
		readers = fs.Int("readers", 0, "query workers for -concurrent (0 = all CPUs minus one)")
		shards  = fs.Int("shards", 0, "region-grid side for the sharded series (0 = tune ladder picks)")
		sworker = fs.Int("shard-workers", 8, "worker pool for the sharded parallel tick series (0 disables the series)")
		dbgAddr = fs.String("debug-addr", "", "serve /debug/obs snapshots and pprof for the bench process on this address (instruments the -concurrent series)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The debug registry observes the service-mode series; the overhead
	// measurement below always uses its own private registries so the
	// number is the same with or without -debug-addr.
	var dbgReg *obs.Registry
	if *dbgAddr != "" {
		dbgReg = obs.New()
		addr, err := obs.Serve(*dbgAddr, dbgReg)
		if err != nil {
			return fmt.Errorf("debug endpoint: %w", err)
		}
		fmt.Fprintf(os.Stderr, "gridbench: debug endpoint on http://%s/debug/obs\n", addr)
	}
	if *iters <= 0 {
		return fmt.Errorf("iters must be positive, got %d", *iters)
	}
	wantPoint, wantBox := false, false
	for _, o := range strings.Split(*objects, ",") {
		switch strings.TrimSpace(o) {
		case "point":
			wantPoint = true
		case "box":
			wantBox = true
		default:
			return fmt.Errorf("unknown object class %q (have point, box)", o)
		}
	}
	var qexts []float64
	if *qext != "" {
		if !wantBox {
			return fmt.Errorf("-qext is a box window-join sweep; add box to -objects")
		}
		for _, tok := range strings.Split(*qext, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("invalid query extent %q", tok)
			}
			qexts = append(qexts, v)
		}
	}

	wcfg := workload.DefaultUniform()
	wcfg.Seed = *seed
	wcfg.NumPoints = *points
	gen, err := workload.NewGenerator(wcfg)
	if err != nil {
		return err
	}
	pts := gen.Positions(nil)
	queriers := append([]uint32(nil), gen.Queriers()...)
	updates := append([]workload.Update(nil), gen.Updates()...)
	if len(queriers) == 0 || len(updates) == 0 {
		return fmt.Errorf("population %d yields %d queriers and %d updates per tick; raise -points",
			len(pts), len(queriers), len(updates))
	}

	rep := &report{
		Tool: "cmd/gridbench",
		Meta: benchMeta{
			GoVersion:    runtime.Version(),
			GOMAXPROCS:   runtime.GOMAXPROCS(0),
			NumCPU:       runtime.NumCPU(),
			TimestampUTC: time.Now().UTC().Format(time.RFC3339),
			GitSHA:       gitSHA(),
		},
		Points:          len(pts),
		Iters:           *iters,
		EffectiveCPUs:   runtime.GOMAXPROCS(0),
		Speedups:        map[string]float64{},
		AutoRegret:      map[string]float64{},
		AutoChoices:     map[string]string{},
		BufferedSpeedup: map[string]float64{},
		ObsOverheadPct:  map[string]float64{},
	}

	type contender struct {
		layout grid.Layout
		name   string
	}
	if wantPoint {
		// The oracle digest the layouts must reproduce before being timed.
		wantDigest := brutePointDigest(pts, queriers, wcfg.QuerySize)
		ops := map[string]map[string]float64{} // op+cps key -> layout -> ns/op
		for _, cps := range []int{64, 256} {
			for _, c := range []contender{
				{grid.LayoutInline, "inline"},
				{grid.LayoutCSR, "csr"},
				{grid.LayoutCSRXY, "csrxy"},
			} {
				gc := grid.Config{Layout: c.layout, Scan: grid.ScanRange, BS: grid.RefactoredBS, CPS: cps}
				g, err := grid.New(gc, wcfg.Bounds(), len(pts))
				if err != nil {
					return err
				}
				g.Build(pts)
				if got := pointDigest(g, pts, queriers, wcfg.QuerySize); got != wantDigest {
					return fmt.Errorf("layout %s at cps=%d diverges from the brute-force oracle (digest %#x, want %#x)",
						c.name, cps, got, wantDigest)
				}
				timings := measure(g, pts, queriers, updates, wcfg.QuerySize, *iters)
				for op, ns := range timings {
					rep.Results = append(rep.Results, opResult{Layout: c.name, CPS: cps, Op: op, NsPerOp: ns})
					key := fmt.Sprintf("%s/cps=%d", op, cps)
					if ops[key] == nil {
						ops[key] = map[string]float64{}
					}
					ops[key][c.name] = ns
				}
				// The tick query phase both ways the driver drains it —
				// callback-with-digest-fold vs buffered-append-then-fold —
				// against the same oracle and over a fresh build (measure's
				// update phase churns bucket order). This paired measurement
				// is the emit-vs-append comparison the CI gate tracks.
				g.Build(pts)
				if got := pointAppendDigest(g, pts, queriers, wcfg.QuerySize); got != wantDigest {
					return fmt.Errorf("layout %s at cps=%d: buffered kernel diverges from the brute-force oracle (digest %#x, want %#x)",
						c.name, cps, got, wantDigest)
				}
				emitNs, appendNs := measureQueryKernels(g, pts, queriers, wcfg.QuerySize, *iters)
				rep.Results = append(rep.Results, opResult{Layout: c.name, CPS: cps, Op: "query-emit", NsPerOp: emitNs})
				rep.Results = append(rep.Results, opResult{Layout: c.name, CPS: cps, Op: "query-append", NsPerOp: appendNs})
				rep.BufferedSpeedup[fmt.Sprintf("%s/cps=%d", c.name, cps)] = emitNs / appendNs
			}
		}
		rep.XYSpeedups = map[string]float64{}
		for _, cps := range []int{64, 256} {
			for _, op := range []string{"build", "query", "update"} {
				key := fmt.Sprintf("%s/cps=%d", op, cps)
				rep.Speedups[key] = ops[key]["inline"] / ops[key]["csr"]
				rep.XYSpeedups[key] = ops[key]["csr"] / ops[key]["csrxy"]
			}
			bq := fmt.Sprintf("build+query/cps=%d", cps)
			inline := ops[fmt.Sprintf("build/cps=%d", cps)]["inline"] + ops[fmt.Sprintf("query/cps=%d", cps)]["inline"]
			csr := ops[fmt.Sprintf("build/cps=%d", cps)]["csr"] + ops[fmt.Sprintf("query/cps=%d", cps)]["csr"]
			rep.Speedups[bq] = inline / csr
		}

		// The adaptive selector, under the same digest gate, with its
		// regret vs the best contender of the static matrix above.
		auto := tune.NewAuto(core.ParamsFor(wcfg))
		auto.Build(pts)
		if got := pointDigest(auto, pts, queriers, wcfg.QuerySize); got != wantDigest {
			return fmt.Errorf("auto layout diverges from the brute-force oracle (digest %#x, want %#x)", got, wantDigest)
		}
		choice, _ := auto.Choice()
		autoOps := measure(auto, pts, queriers, updates, wcfg.QuerySize, *iters)
		for op, ns := range autoOps {
			rep.Results = append(rep.Results, opResult{Layout: "auto", CPS: choice.CPS, Op: op, NsPerOp: ns})
		}
		autoTotal := tickTotal(autoOps, len(queriers), len(updates))
		best, bestKey := math.Inf(1), ""
		for _, cps := range []int{64, 256} {
			for _, layout := range []string{"inline", "csr", "csrxy"} {
				t := tickTotal(map[string]float64{
					"build":  ops[fmt.Sprintf("build/cps=%d", cps)][layout],
					"query":  ops[fmt.Sprintf("query/cps=%d", cps)][layout],
					"update": ops[fmt.Sprintf("update/cps=%d", cps)][layout],
				}, len(queriers), len(updates))
				if t < best {
					best, bestKey = t, fmt.Sprintf("%s/cps=%d", layout, cps)
				}
			}
		}
		rep.AutoRegret["point-default"] = autoTotal/best - 1
		rep.AutoChoices["point-default"] = fmt.Sprintf("%s (best static %s)", choice, bestKey)

		// Service mode: the epoch-published wrapper over the tuned CSR
		// grid, queries overlapped with the update stream. The baseline is
		// the same structure's stop-the-world query phase from the matrix
		// above.
		if *conc && *cticks > 0 {
			cgen, err := workload.NewGenerator(wcfg)
			if err != nil {
				return err
			}
			x := epoch.NewIndex(func() core.Index {
				gc := grid.Config{Layout: grid.LayoutCSR, Scan: grid.ScanRange, BS: grid.RefactoredBS, CPS: 64}
				return grid.MustNew(gc, wcfg.Bounds(), len(pts))
			}, epoch.Options{})
			cres := core.RunConcurrent(x, cgen, core.ConcurrentOptions{Ticks: *cticks, Readers: *readers, Obs: dbgReg})
			if cres.Violations != 0 {
				return fmt.Errorf("concurrent point run: %d queries observed an unpublished epoch", cres.Violations)
			}
			tickQueryNs := ops["query/cps=64"]["csr"] * float64(len(queriers))
			rep.Concurrent = append(rep.Concurrent, concurrentRow("csr/cps=64", cres, tickQueryNs))
		}

		// Instrumentation overhead on the tuned point layout: the same
		// driver+structure+workload with a live registry vs none.
		ocfg := wcfg
		ocfg.Ticks = obsOverheadTicks
		pct, err := measureObsOverhead(func(reg *obs.Registry) (*core.Result, error) {
			gen, err := workload.NewGenerator(ocfg)
			if err != nil {
				return nil, err
			}
			gc := grid.Config{Layout: grid.LayoutCSR, Scan: grid.ScanRange, BS: grid.RefactoredBS, CPS: 64}
			return core.Run(grid.MustNew(gc, ocfg.Bounds(), ocfg.NumPoints), gen, core.Options{Obs: reg}), nil
		})
		if err != nil {
			return err
		}
		rep.ObsOverheadPct["csr/cps=64"] = pct

		// The region-sharded engine against the best unsharded
		// contenders, all under the same parallel tick model.
		if *sworker > 0 {
			if err := runShardedPoint(rep, wcfg, pts, queriers, updates, *iters, *shards, *sworker, wantDigest); err != nil {
				return err
			}
		}
	}

	if wantBox {
		bcfg := workload.DefaultUniformBoxes()
		bcfg.Seed = *seed
		bcfg.NumPoints = *points
		bgen, err := workload.NewBoxGenerator(bcfg)
		if err != nil {
			return err
		}
		rects := bgen.Rects(nil)
		boxQueriers := append([]uint32(nil), bgen.Queriers()...)
		boxUpdates := append([]workload.BoxUpdate(nil), bgen.Updates()...)
		if len(boxQueriers) == 0 || len(boxUpdates) == 0 {
			return fmt.Errorf("box population %d yields %d queriers and %d updates per tick; raise -points",
				len(rects), len(boxQueriers), len(boxUpdates))
		}
		wantDigest := bruteBoxDigest(rects, boxQueriers, bcfg.QuerySize)
		rep.BoxReplication = map[string]float64{}
		rep.Box2LSpeedups = map[string]float64{}
		boxOps := map[string]map[string]float64{} // op+cps key -> layout -> ns/op

		// Grid-independent contenders, measured once: the brute-force
		// floor (a single pass; its per-query cost is an average over
		// thousands of full scans already) and the STR box R-tree — the
		// second index family, whose overlap-free packing vs the grids'
		// replication is the axis of the study for extended objects.
		bruteNs := map[string]float64{}
		rtreeNs := map[string]float64{}
		for _, bc := range []boxContender{
			{"boxbrute", core.NewBruteForceBoxes()},
			{"boxrtree", rtree.MustNewBoxTree(rtree.DefaultFanout)},
		} {
			bc.index.Build(rects)
			if got := boxDigest(bc.index, rects, boxQueriers, bcfg.QuerySize); got != wantDigest {
				return fmt.Errorf("box technique %s diverges from the brute-force oracle (digest %#x, want %#x)",
					bc.name, got, wantDigest)
			}
			ops := *iters
			if bc.name == "boxbrute" {
				ops = 1
			}
			timings := measureBox(bc.index, rects, boxQueriers, boxUpdates, bcfg.QuerySize, ops)
			for op, ns := range timings {
				rep.Results = append(rep.Results, opResult{Layout: bc.name, Op: op, NsPerOp: ns})
				if bc.name == "boxbrute" {
					bruteNs[op] = ns
				} else {
					rtreeNs[op] = ns
				}
			}
			if bc.name == "boxrtree" {
				bc.index.Build(rects)
				if got := boxAppendDigest(bc.index, rects, boxQueriers, bcfg.QuerySize); got != wantDigest {
					return fmt.Errorf("boxrtree: buffered kernel diverges from the brute-force oracle (digest %#x, want %#x)",
						got, wantDigest)
				}
				emitNs, appendNs := measureBoxQueryKernels(bc.index, rects, boxQueriers, bcfg.QuerySize, *iters)
				rep.Results = append(rep.Results, opResult{Layout: bc.name, Op: "query-emit", NsPerOp: emitNs})
				rep.Results = append(rep.Results, opResult{Layout: bc.name, Op: "query-append", NsPerOp: appendNs})
				rep.BufferedSpeedup[fmt.Sprintf("boxrtree/fanout=%d", rtree.DefaultFanout)] = emitNs / appendNs
				for _, ext := range qexts {
					ns := measureBoxQueries(bc.index, rects, boxQueriers, float32(ext), *iters)
					rep.Results = append(rep.Results, opResult{
						Layout: bc.name, Op: "query", NsPerOp: ns, Qext: ext,
					})
				}
			}
		}
		rep.BoxRTreeVsBrute = map[string]float64{"query": bruteNs["query"] / rtreeNs["query"]}
		rep.BoxRTreeVsBox2L = map[string]float64{}

		for _, cps := range []int{64, 256} {
			contenders := boxContenders(cps, bcfg.Bounds(), len(rects))
			for _, bc := range contenders {
				bc.index.Build(rects)
				if got := boxDigest(bc.index, rects, boxQueriers, bcfg.QuerySize); got != wantDigest {
					return fmt.Errorf("box layout %s at cps=%d diverges from the brute-force oracle (digest %#x, want %#x)",
						bc.name, cps, got, wantDigest)
				}
				timings := measureBox(bc.index, rects, boxQueriers, boxUpdates, bcfg.QuerySize, *iters)
				for op, ns := range timings {
					rep.Results = append(rep.Results, opResult{Layout: bc.name, CPS: cps, Op: op, NsPerOp: ns})
					key := fmt.Sprintf("%s/cps=%d", op, cps)
					if boxOps[key] == nil {
						boxOps[key] = map[string]float64{}
					}
					boxOps[key][bc.name] = ns
				}
				// The buffered kernel over a fresh build (measureBox's
				// update phase leaves the arena churned — swap-delete
				// order, possible overflow — that a steady-state tick query
				// never sees), digest-gated like the callback kernel.
				bc.index.Build(rects)
				if got := boxAppendDigest(bc.index, rects, boxQueriers, bcfg.QuerySize); got != wantDigest {
					return fmt.Errorf("box layout %s at cps=%d: buffered kernel diverges from the brute-force oracle (digest %#x, want %#x)",
						bc.name, cps, got, wantDigest)
				}
				emitNs, appendNs := measureBoxQueryKernels(bc.index, rects, boxQueriers, bcfg.QuerySize, *iters)
				rep.Results = append(rep.Results, opResult{Layout: bc.name, CPS: cps, Op: "query-emit", NsPerOp: emitNs})
				rep.Results = append(rep.Results, opResult{Layout: bc.name, CPS: cps, Op: "query-append", NsPerOp: appendNs})
				rep.BufferedSpeedup[fmt.Sprintf("%s/cps=%d", bc.name, cps)] = emitNs / appendNs
				// The query-extent sweep: one window-join series per
				// extent, over the same fresh build.
				for _, ext := range qexts {
					ns := measureBoxQueries(bc.index, rects, boxQueriers, float32(ext), *iters)
					rep.Results = append(rep.Results, opResult{
						Layout: bc.name, CPS: cps, Op: "query", NsPerOp: ns, Qext: ext,
					})
				}
			}
			// Replication is a property of the (workload, granularity)
			// pair, not the structure — every contender replicates
			// identically, so report it once per cps off the first.
			rep.BoxReplication[fmt.Sprintf("cps=%d", cps)] = contenders[0].replication()
			for _, op := range []string{"build", "query", "update"} {
				key := fmt.Sprintf("%s/cps=%d", op, cps)
				rep.Box2LSpeedups[key] = boxOps[key]["boxcsr"] / boxOps[key]["boxcsr2l"]
				rep.BoxRTreeVsBox2L[key] = boxOps[key]["boxcsr2l"] / rtreeNs[op]
			}
			bq := fmt.Sprintf("build+query/cps=%d", cps)
			legacy := boxOps[fmt.Sprintf("build/cps=%d", cps)]["boxcsr"] + boxOps[fmt.Sprintf("query/cps=%d", cps)]["boxcsr"]
			classed := boxOps[fmt.Sprintf("build/cps=%d", cps)]["boxcsr2l"] + boxOps[fmt.Sprintf("query/cps=%d", cps)]["boxcsr2l"]
			rep.Box2LSpeedups[bq] = legacy / classed
			rep.BoxRTreeVsBox2L[bq] = classed / (rtreeNs["build"] + rtreeNs["query"])
		}

		// The adaptive cross-family selector on the default box
		// workload, digest-gated like every other contender, with its
		// regret vs the best static of the matrix above.
		auto := tune.NewAutoBox(core.ParamsFor(bcfg.Config))
		auto.Build(rects)
		if got := boxDigest(auto, rects, boxQueriers, bcfg.QuerySize); got != wantDigest {
			return fmt.Errorf("boxauto diverges from the brute-force oracle (digest %#x, want %#x)", got, wantDigest)
		}
		choice, _ := auto.Choice()
		autoOps := measureBox(auto, rects, boxQueriers, boxUpdates, bcfg.QuerySize, *iters)
		for op, ns := range autoOps {
			// Param() is the tuned structural parameter whatever the
			// family: grid cps, or fanout when the pick is the R-tree.
			rep.Results = append(rep.Results, opResult{Layout: "boxauto", CPS: choice.Param(), Op: op, NsPerOp: ns})
		}
		autoTotal := tickTotal(autoOps, len(boxQueriers), len(boxUpdates))
		best := tickTotal(rtreeNs, len(boxQueriers), len(boxUpdates))
		bestKey := fmt.Sprintf("boxrtree/fanout=%d", rtree.DefaultFanout)
		for _, cps := range []int{64, 256} {
			for _, layout := range []string{"boxcsr", "boxcsr2l"} {
				t := tickTotal(map[string]float64{
					"build":  boxOps[fmt.Sprintf("build/cps=%d", cps)][layout],
					"query":  boxOps[fmt.Sprintf("query/cps=%d", cps)][layout],
					"update": boxOps[fmt.Sprintf("update/cps=%d", cps)][layout],
				}, len(boxQueriers), len(boxUpdates))
				if t < best {
					best, bestKey = t, fmt.Sprintf("%s/cps=%d", layout, cps)
				}
			}
		}
		rep.AutoRegret["box-default"] = autoTotal/best - 1
		rep.AutoChoices["box-default"] = fmt.Sprintf("%s (best static %s)", choice, bestKey)

		// The three contrasting workloads of the adaptive-selection
		// acceptance criterion, each racing auto against every static
		// family at a reduced iteration count.
		if err := runAutoRegret(rep, *points, *seed, *iters); err != nil {
			return err
		}

		// Box service mode, over the two-layer classed grid.
		if *conc && *cticks > 0 {
			cgen, err := workload.NewBoxGenerator(bcfg)
			if err != nil {
				return err
			}
			x := epoch.NewBoxIndex(func() core.BoxIndex {
				return grid.MustNewBoxGrid2L(64, bcfg.Bounds(), len(rects))
			}, epoch.Options{})
			cres := core.RunBoxesConcurrent(x, cgen, core.ConcurrentOptions{Ticks: *cticks, Readers: *readers, Obs: dbgReg})
			if cres.Violations != 0 {
				return fmt.Errorf("concurrent box run: %d queries observed an unpublished epoch", cres.Violations)
			}
			tickQueryNs := boxOps["query/cps=64"]["boxcsr2l"] * float64(len(boxQueriers))
			rep.Concurrent = append(rep.Concurrent, concurrentRow("boxcsr2l/cps=64", cres, tickQueryNs))
		}

		// Instrumentation overhead on the tuned box layout, mirroring the
		// point-side measurement.
		obcfg := bcfg
		obcfg.Ticks = obsOverheadTicks
		pct, err := measureObsOverhead(func(reg *obs.Registry) (*core.Result, error) {
			gen, err := workload.NewBoxGenerator(obcfg)
			if err != nil {
				return nil, err
			}
			return core.RunBoxes(grid.MustNewBoxGrid2L(64, obcfg.Bounds(), obcfg.NumPoints), gen, core.Options{Obs: reg}), nil
		})
		if err != nil {
			return err
		}
		rep.ObsOverheadPct["boxcsr2l/cps=64"] = pct

		if *sworker > 0 {
			if err := runShardedBox(rep, bcfg, rects, boxQueriers, boxUpdates, *iters, *shards, *sworker, wantDigest); err != nil {
				return err
			}
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// obsOverheadTicks bounds the instrumented-vs-uninstrumented comparison
// runs: enough ticks for the per-tick phases to dominate driver setup,
// few enough that six full runs stay a small slice of the bench.
const obsOverheadTicks = 10

// gitSHA best-effort resolves the working tree's commit for the meta
// block; benches also run from exported trees, so failure is an empty
// field, not an error.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// measureObsOverhead runs the given driver closure with a live registry
// and with none, interleaved over several rounds, and returns the
// percentage overhead of the instrumented minimum over the plain
// minimum. Interleaving plus min-of-rounds keeps a thermal dip or a
// background burst during one variant's window from reading as (or
// masking) overhead. Every run must produce the identical join digest —
// instrumentation that changes results is a bug, not overhead.
func measureObsOverhead(run func(reg *obs.Registry) (*core.Result, error)) (float64, error) {
	const rounds = 3
	plainMin, instMin := math.Inf(1), math.Inf(1)
	var refPairs int64
	var refHash uint64
	for r := 0; r < rounds; r++ {
		plain, err := run(nil)
		if err != nil {
			return 0, err
		}
		inst, err := run(obs.New())
		if err != nil {
			return 0, err
		}
		if r == 0 {
			refPairs, refHash = plain.Pairs, plain.Hash
		}
		if plain.Pairs != refPairs || plain.Hash != refHash || inst.Pairs != refPairs || inst.Hash != refHash {
			return 0, fmt.Errorf("obs overhead: instrumented run diverges from uninstrumented (pairs %d vs %d, digest %#x vs %#x)",
				inst.Pairs, refPairs, inst.Hash, refHash)
		}
		total := func(res *core.Result) float64 {
			return float64((res.Totals.Build + res.Totals.Query + res.Totals.Update).Nanoseconds())
		}
		plainMin = math.Min(plainMin, total(plain))
		instMin = math.Min(instMin, total(inst))
	}
	return (instMin/plainMin - 1) * 100, nil
}

// concurrentRow folds a concurrent run into the report schema.
func concurrentRow(layout string, res *core.ConcurrentResult, tickQueryNs float64) concurrentReport {
	row := concurrentReport{
		Layout:          layout,
		Readers:         res.Readers,
		Ticks:           res.Ticks,
		QueryP50Ns:      float64(res.QueryP50.Nanoseconds()),
		QueryP95Ns:      float64(res.QueryP95.Nanoseconds()),
		QueryP99Ns:      float64(res.QueryP99.Nanoseconds()),
		TickQueryNs:     tickQueryNs,
		EpochsPublished: res.Stats.Epochs,
		DegradedTicks:   res.Stats.Degraded,
		PanicsContained: res.Stats.PanicsContained,
		FailedTicks:     res.FailedTicks,
		Violations:      res.Violations,
	}
	if tickQueryNs > 0 {
		row.P99VsTickPhase = row.QueryP99Ns / tickQueryNs
	}
	return row
}

// tickTotal combines per-op nanoseconds into one modelled tick: one
// build, the tick's queries, the tick's updates — the total the regret
// series compares structures on.
func tickTotal(ops map[string]float64, queries, updates int) float64 {
	return ops["build"] + float64(queries)*ops["query"] + float64(updates)*ops["update"]
}

// runAutoRegret measures the adaptive selector's regret on three
// contrasting box workloads — query-heavy with small extents,
// update-heavy, and a coarse-window join — against every static family
// at both benchmark granularities plus the default-fanout R-tree. Every
// contender (auto included) is digest-gated against the brute-force
// oracle on each workload before being timed.
func runAutoRegret(rep *report, points int, seed uint64, iters int) error {
	// The contrasting workloads sanity-check the selector, not the
	// micro-timings; a twentieth of the main matrix's iterations per
	// round (two interleaved rounds, see below) keeps the added wall
	// time in check.
	regretIters := iters / 20
	if regretIters < 1 {
		regretIters = 1
	}
	mk := func(mut func(*workload.BoxConfig)) workload.BoxConfig {
		c := workload.DefaultUniformBoxes()
		c.Seed = seed
		c.NumPoints = points
		mut(&c)
		return c
	}
	workloads := []struct {
		key string
		cfg workload.BoxConfig
	}{
		{"box-queryheavy-smallext", mk(func(c *workload.BoxConfig) {
			c.Queriers, c.Updaters = 0.9, 0.1
			c.MinSide, c.MaxSide = 20, 80
		})},
		{"box-updateheavy", mk(func(c *workload.BoxConfig) {
			c.Queriers, c.Updaters = 0.1, 0.9
		})},
		{"box-coarsejoin", mk(func(c *workload.BoxConfig) {
			c.QuerySize = 1600
		})},
	}
	statics := []struct {
		key    string
		layout string
		param  int
	}{
		{"boxcsr/cps=64", "csr", 64},
		{"boxcsr/cps=256", "csr", 256},
		{"boxcsr2l/cps=64", "2l", 64},
		{"boxcsr2l/cps=256", "2l", 256},
		{fmt.Sprintf("boxrtree/fanout=%d", rtree.DefaultFanout), "rtree", rtree.DefaultFanout},
	}
	// Regret compares contenders AGAINST EACH OTHER, so the measurement
	// rounds are interleaved across all of them (statics and auto
	// alike) with a per-contender minimum: a thermal dip or background
	// burst during one contender's dedicated window would otherwise
	// read as regret (or as a phantom win).
	const regretRounds = 2
	for _, wl := range workloads {
		gen, err := workload.NewBoxGenerator(wl.cfg)
		if err != nil {
			return err
		}
		rects := gen.Rects(nil)
		queriers := append([]uint32(nil), gen.Queriers()...)
		updates := append([]workload.BoxUpdate(nil), gen.Updates()...)
		if len(queriers) == 0 || len(updates) == 0 {
			return fmt.Errorf("%s: %d queriers and %d updates per tick; raise -points", wl.key, len(queriers), len(updates))
		}
		wantDigest := bruteBoxDigest(rects, queriers, wl.cfg.QuerySize)
		params := core.ParamsFor(wl.cfg.Config)

		auto := tune.NewAutoBox(params)
		type entry struct {
			key   string
			index core.BoxIndex
			total float64
			ops   map[string]float64
		}
		contenders := make([]*entry, 0, len(statics)+1)
		for _, st := range statics {
			idx, err := bench.NewBoxLayout(st.layout, st.param, params)
			if err != nil {
				return err
			}
			contenders = append(contenders, &entry{key: st.key, index: idx, total: math.Inf(1)})
		}
		contenders = append(contenders, &entry{key: "boxauto", index: auto, total: math.Inf(1)})

		for _, c := range contenders {
			c.index.Build(rects)
			if got := boxDigest(c.index, rects, queriers, wl.cfg.QuerySize); got != wantDigest {
				return fmt.Errorf("%s on %s diverges from the brute-force oracle (digest %#x, want %#x)",
					c.key, wl.key, got, wantDigest)
			}
		}
		for round := 0; round < regretRounds; round++ {
			for _, c := range contenders {
				ops := measureBox(c.index, rects, queriers, updates, wl.cfg.QuerySize, regretIters)
				if t := tickTotal(ops, len(queriers), len(updates)); t < c.total {
					c.total, c.ops = t, ops
				}
			}
		}

		best, bestKey := math.Inf(1), ""
		var autoEntry *entry
		for _, c := range contenders {
			if c.key == "boxauto" {
				autoEntry = c
				continue
			}
			if c.total < best {
				best, bestKey = c.total, c.key
			}
		}
		choice, _ := auto.Choice()
		for op, ns := range autoEntry.ops {
			rep.Results = append(rep.Results, opResult{
				Layout: "boxauto", CPS: choice.Param(), Op: op, NsPerOp: ns, Workload: wl.key,
			})
		}
		rep.AutoRegret[wl.key] = autoEntry.total/best - 1
		rep.AutoChoices[wl.key] = fmt.Sprintf("%s (best static %s)", choice, bestKey)
	}
	return nil
}

// runShardedPoint measures the sharded series for points: the
// region-sharded router against the unsharded contenders the main
// matrix found competitive, every one under the identical parallel tick
// model (parallel build when supported, queries striped across the
// worker pool, batched updates when supported) at the same worker
// count. Every contender — sharded included — passes the oracle digest
// gate plus an explicit duplicate-emission count before being timed.
func runShardedPoint(rep *report, wcfg workload.Config, pts []geom.Point, queriers []uint32, updates []workload.Update, iters, side, workers int, wantDigest uint64) error {
	if rep.ShardedSpeedup == nil {
		rep.ShardedSpeedup = map[string]float64{}
	}
	params := core.ParamsFor(wcfg)
	params.Shards = side
	mkGrid := func(layout grid.Layout) core.Index {
		return grid.MustNew(grid.Config{Layout: layout, Scan: grid.ScanRange, BS: grid.RefactoredBS, CPS: 64}, wcfg.Bounds(), len(pts))
	}
	contenders := []struct {
		name string
		idx  core.Index
	}{
		{"csr/cps=64", mkGrid(grid.LayoutCSR)},
		{"csrxy/cps=64", mkGrid(grid.LayoutCSRXY)},
		{"auto", tune.NewAuto(params)},
	}
	moves, back := pointMoves(pts, updates)
	best := math.Inf(1)
	for _, c := range contenders {
		c.idx.Build(pts)
		if got := pointDigest(c.idx, pts, queriers, wcfg.QuerySize); got != wantDigest {
			return fmt.Errorf("sharded series contender %s diverges from the brute-force oracle (digest %#x, want %#x)",
				c.name, got, wantDigest)
		}
		row := measureParallelTick(c.idx, pts, queriers, moves, back, wcfg.QuerySize, iters, workers)
		row.Layout = c.name
		rep.Sharded = append(rep.Sharded, row)
		if row.TickNs < best {
			best = row.TickNs
		}
	}
	sh := shard.NewAuto(params)
	sh.Build(pts)
	dups := countPointDuplicates(sh, pts, queriers, wcfg.QuerySize)
	if got := pointDigest(sh, pts, queriers, wcfg.QuerySize); got != wantDigest || dups != 0 {
		return fmt.Errorf("sharded point engine diverges from the brute-force oracle (digest %#x, want %#x; %d duplicate emissions)",
			got, wantDigest, dups)
	}
	row := measureParallelTick(sh, pts, queriers, moves, back, wcfg.QuerySize, iters, workers)
	row.Layout = "sharded"
	row.Side = sh.Side()
	rep.Sharded = append(rep.Sharded, row)
	rep.ShardedSpeedup[fmt.Sprintf("point/tick@%dw", workers)] = best / row.TickNs
	return nil
}

// runShardedBox is runShardedPoint over the MBR workload.
func runShardedBox(rep *report, bcfg workload.BoxConfig, rects []geom.Rect, queriers []uint32, updates []workload.BoxUpdate, iters, side, workers int, wantDigest uint64) error {
	if rep.ShardedSpeedup == nil {
		rep.ShardedSpeedup = map[string]float64{}
	}
	params := core.ParamsFor(bcfg.Config)
	params.Shards = side
	contenders := []struct {
		name string
		idx  core.BoxIndex
	}{
		{"boxcsr2l/cps=64", grid.MustNewBoxGrid2L(64, bcfg.Bounds(), len(rects))},
		{fmt.Sprintf("boxrtree/fanout=%d", rtree.DefaultFanout), rtree.MustNewBoxTree(rtree.DefaultFanout)},
		{"boxauto", tune.NewAutoBox(params)},
	}
	moves, back := boxMoves(rects, updates)
	best := math.Inf(1)
	for _, c := range contenders {
		c.idx.Build(rects)
		if got := boxDigest(c.idx, rects, queriers, bcfg.QuerySize); got != wantDigest {
			return fmt.Errorf("sharded series contender %s diverges from the brute-force oracle (digest %#x, want %#x)",
				c.name, got, wantDigest)
		}
		row := measureBoxParallelTick(c.idx, rects, queriers, moves, back, bcfg.QuerySize, iters, workers)
		row.Layout = c.name
		rep.Sharded = append(rep.Sharded, row)
		if row.TickNs < best {
			best = row.TickNs
		}
	}
	sh := shard.NewAutoBox(params)
	sh.Build(rects)
	dups := countBoxDuplicates(sh, rects, queriers, bcfg.QuerySize)
	if got := boxDigest(sh, rects, queriers, bcfg.QuerySize); got != wantDigest || dups != 0 {
		return fmt.Errorf("sharded box engine diverges from the brute-force oracle (digest %#x, want %#x; %d duplicate emissions)",
			got, wantDigest, dups)
	}
	row := measureBoxParallelTick(sh, rects, queriers, moves, back, bcfg.QuerySize, iters, workers)
	row.Layout = "boxsharded"
	row.Side = sh.Side()
	rep.Sharded = append(rep.Sharded, row)
	rep.ShardedSpeedup[fmt.Sprintf("box/tick@%dw", workers)] = best / row.TickNs
	return nil
}

// pointMoves converts one tick's updates into there-and-back move
// batches, so measured update phases leave the population invariant.
func pointMoves(pts []geom.Point, updates []workload.Update) (moves, back []geom.Move) {
	for _, u := range updates {
		moves = append(moves, geom.Move{ID: u.ID, Old: pts[u.ID], New: u.Pos})
		back = append(back, geom.Move{ID: u.ID, Old: u.Pos, New: pts[u.ID]})
	}
	return moves, back
}

func boxMoves(rects []geom.Rect, updates []workload.BoxUpdate) (moves, back []geom.BoxMove) {
	for _, u := range updates {
		moves = append(moves, geom.BoxMove{ID: u.ID, Old: rects[u.ID], New: u.Rect})
		back = append(back, geom.BoxMove{ID: u.ID, Old: u.Rect, New: rects[u.ID]})
	}
	return moves, back
}

// measureParallelTick times one modelled tick under the parallel
// regime: Build via the parallel path when the index offers one, the
// whole querier set striped across the worker pool in blocks (the
// parallel driver's schedule), and the tick's update batch through the
// bulk path when offered — exactly the phases RunParallel overlaps per
// tick, so TickNs compares engines on the throughput the sharded router
// is built for.
func measureParallelTick(idx core.Index, pts []geom.Point, queriers []uint32, moves, back []geom.Move, querySize float32, iters, workers int) shardedRow {
	idx.Build(pts) // warm arenas

	start := time.Now()
	for i := 0; i < iters; i++ {
		if pb, ok := idx.(core.ParallelBuilder); ok {
			pb.BuildParallel(pts, workers)
		} else {
			idx.Build(pts)
		}
	}
	buildNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

	queryTick := func() {
		var cursor atomic.Int64
		var g parutil.Group
		for w := 0; w < workers; w++ {
			g.Go(func() {
				sink := 0
				emit := func(uint32) { sink++ }
				for {
					lo := int(cursor.Add(64)) - 64
					if lo >= len(queriers) {
						break
					}
					hi := lo + 64
					if hi > len(queriers) {
						hi = len(queriers)
					}
					for _, q := range queriers[lo:hi] {
						idx.Query(geom.Square(pts[q], querySize), emit)
					}
				}
				if sink < 0 {
					panic("unreachable")
				}
			})
		}
		g.Wait()
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		queryTick()
	}
	queryNs := float64(time.Since(start).Nanoseconds()) / float64(iters*len(queriers))

	bu, hasBatch := idx.(core.BatchUpdater)
	start = time.Now()
	for i := 0; i < iters; i++ {
		if hasBatch && bu.CanBatchUpdates(len(moves)) {
			bu.UpdateBatch(moves, workers)
			bu.UpdateBatch(back, workers)
		} else {
			for _, m := range moves {
				idx.Update(m.ID, m.Old, m.New)
			}
			for _, m := range back {
				idx.Update(m.ID, m.Old, m.New)
			}
		}
	}
	updateNs := float64(time.Since(start).Nanoseconds()) / float64(2*iters*len(moves))

	return shardedRow{
		Workers:  workers,
		BuildNs:  buildNs,
		QueryNs:  queryNs,
		UpdateNs: updateNs,
		TickNs:   buildNs + float64(len(queriers))*queryNs + float64(len(moves))*updateNs,
	}
}

// measureBoxParallelTick is measureParallelTick for box indexes.
func measureBoxParallelTick(idx core.BoxIndex, rects []geom.Rect, queriers []uint32, moves, back []geom.BoxMove, querySize float32, iters, workers int) shardedRow {
	idx.Build(rects)

	start := time.Now()
	for i := 0; i < iters; i++ {
		if pb, ok := idx.(core.BoxParallelBuilder); ok {
			pb.BuildParallel(rects, workers)
		} else {
			idx.Build(rects)
		}
	}
	buildNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

	queryTick := func() {
		var cursor atomic.Int64
		var g parutil.Group
		for w := 0; w < workers; w++ {
			g.Go(func() {
				sink := 0
				emit := func(uint32) { sink++ }
				for {
					lo := int(cursor.Add(64)) - 64
					if lo >= len(queriers) {
						break
					}
					hi := lo + 64
					if hi > len(queriers) {
						hi = len(queriers)
					}
					for _, q := range queriers[lo:hi] {
						idx.Query(geom.Square(rects[q].Center(), querySize), emit)
					}
				}
				if sink < 0 {
					panic("unreachable")
				}
			})
		}
		g.Wait()
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		queryTick()
	}
	queryNs := float64(time.Since(start).Nanoseconds()) / float64(iters*len(queriers))

	bu, hasBatch := idx.(core.BoxBatchUpdater)
	start = time.Now()
	for i := 0; i < iters; i++ {
		if hasBatch && bu.CanBatchUpdates(len(moves)) {
			bu.UpdateBatch(moves, workers)
			bu.UpdateBatch(back, workers)
		} else {
			for _, m := range moves {
				idx.Update(m.ID, m.Old, m.New)
			}
			for _, m := range back {
				idx.Update(m.ID, m.Old, m.New)
			}
		}
	}
	updateNs := float64(time.Since(start).Nanoseconds()) / float64(2*iters*len(moves))

	return shardedRow{
		Workers:  workers,
		BuildNs:  buildNs,
		QueryNs:  queryNs,
		UpdateNs: updateNs,
		TickNs:   buildNs + float64(len(queriers))*queryNs + float64(len(moves))*updateNs,
	}
}

// countPointDuplicates counts excess emissions across the digest pass:
// a correct engine reports every (querier, id) pair at most once.
func countPointDuplicates(idx core.Index, pts []geom.Point, queriers []uint32, querySize float32) int {
	dups := 0
	seen := map[uint32]int{}
	for _, q := range queriers {
		clear(seen)
		idx.Query(geom.Square(pts[q], querySize), func(id uint32) { seen[id]++ })
		for _, c := range seen {
			if c > 1 {
				dups += c - 1
			}
		}
	}
	return dups
}

func countBoxDuplicates(idx core.BoxIndex, rects []geom.Rect, queriers []uint32, querySize float32) int {
	dups := 0
	seen := map[uint32]int{}
	for _, q := range queriers {
		clear(seen)
		idx.Query(geom.Square(rects[q].Center(), querySize), func(id uint32) { seen[id]++ })
		for _, c := range seen {
			if c > 1 {
				dups += c - 1
			}
		}
	}
	return dups
}

type boxContender struct {
	name  string
	index core.BoxIndex
}

// replication reports the contender's replication factor (1 for
// structures that store each object exactly once).
func (bc boxContender) replication() float64 {
	if rep, ok := bc.index.(interface{ ReplicationFactor() float64 }); ok {
		return rep.ReplicationFactor()
	}
	return 1
}

func boxContenders(cps int, bounds geom.Rect, n int) []boxContender {
	params := core.Params{Bounds: bounds, NumPoints: n}
	csr, err := bench.NewBoxLayout("csr", cps, params)
	if err != nil {
		panic(err)
	}
	twoLayer, err := bench.NewBoxLayout("2l", cps, params)
	if err != nil {
		panic(err)
	}
	return []boxContender{
		{"boxcsr", csr},
		{"boxcsr2l", twoLayer},
	}
}

// brutePointDigest is the oracle: every (querier, point-in-range) pair,
// straight off the base table, folded with the driver's own digest
// construction (core.MixPair) so a divergence here is exactly a
// divergence there.
func brutePointDigest(pts []geom.Point, queriers []uint32, querySize float32) uint64 {
	var h uint64
	for _, q := range queriers {
		r := geom.Square(pts[q], querySize)
		for i := range pts {
			if pts[i].In(r) {
				h = core.MixPair(h, q, uint32(i))
			}
		}
	}
	return h
}

// pointAppendDigest folds the buffered kernel's results with the exact
// digest construction of pointDigest, so emit and append are provably
// answering identically before their timings are compared.
func pointAppendDigest(g core.Index, pts []geom.Point, queriers []uint32, querySize float32) uint64 {
	qa := core.QueryAppendOf(g, g.Query)
	var h uint64
	var buf []uint32
	for _, q := range queriers {
		buf = qa(geom.Square(pts[q], querySize), buf[:0])
		for _, id := range buf {
			h = core.MixPair(h, q, id)
		}
	}
	return h
}

// boxAppendDigest is pointAppendDigest for box indexes.
func boxAppendDigest(bg core.BoxIndex, rects []geom.Rect, queriers []uint32, querySize float32) uint64 {
	qa := core.QueryAppendOf(bg, bg.Query)
	var h uint64
	var buf []uint32
	for _, q := range queriers {
		buf = qa(geom.Square(rects[q].Center(), querySize), buf[:0])
		for _, id := range buf {
			h = core.MixPair(h, q, id)
		}
	}
	return h
}

// benchSink defeats dead-code elimination of the kernel measurements'
// digest folds without perturbing the measured loops.
var benchSink uint64

// measureQueryKernels times the tick driver's query phase both ways it
// actually runs: the per-result callback exactly as runTicks' KernelEmit
// drains it (a closure folding pairs and MixPair per emission, with the
// accumulators captured by reference — the heap round-trip per result is
// the cost under test) and the buffered kernel exactly as KernelAppend
// drains it (QueryAppend into a reused buffer, then an inline fold loop
// that keeps the accumulators in registers). Returns ns per query for
// each; the caller digest-gates both kernels separately.
func measureQueryKernels(g core.Index, pts []geom.Point, queriers []uint32, querySize float32, iters int) (emitNs, appendNs float64) {
	var pairs int64
	var hash uint64
	var emitQ uint32
	emit := func(id uint32) {
		pairs++
		hash = core.MixPair(hash, emitQ, id)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		for _, q := range queriers {
			emitQ = q
			g.Query(geom.Square(pts[q], querySize), emit)
		}
	}
	emitNs = float64(time.Since(start).Nanoseconds()) / float64(iters*len(queriers))

	qa := core.QueryAppendOf(g, g.Query)
	var buf []uint32
	start = time.Now()
	for i := 0; i < iters; i++ {
		for _, q := range queriers {
			buf = qa(geom.Square(pts[q], querySize), buf[:0])
			for _, id := range buf {
				pairs++
				hash = core.MixPair(hash, q, id)
			}
		}
	}
	appendNs = float64(time.Since(start).Nanoseconds()) / float64(iters*len(queriers))
	benchSink += hash + uint64(pairs)
	return emitNs, appendNs
}

// measureBoxQueryKernels is measureQueryKernels for box indexes.
func measureBoxQueryKernels(bg core.BoxIndex, rects []geom.Rect, queriers []uint32, querySize float32, iters int) (emitNs, appendNs float64) {
	var pairs int64
	var hash uint64
	var emitQ uint32
	emit := func(id uint32) {
		pairs++
		hash = core.MixPair(hash, emitQ, id)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		for _, q := range queriers {
			emitQ = q
			bg.Query(geom.Square(rects[q].Center(), querySize), emit)
		}
	}
	emitNs = float64(time.Since(start).Nanoseconds()) / float64(iters*len(queriers))

	qa := core.QueryAppendOf(bg, bg.Query)
	var buf []uint32
	start = time.Now()
	for i := 0; i < iters; i++ {
		for _, q := range queriers {
			buf = qa(geom.Square(rects[q].Center(), querySize), buf[:0])
			for _, id := range buf {
				pairs++
				hash = core.MixPair(hash, q, id)
			}
		}
	}
	appendNs = float64(time.Since(start).Nanoseconds()) / float64(iters*len(queriers))
	benchSink += hash + uint64(pairs)
	return emitNs, appendNs
}

func pointDigest(g core.Index, pts []geom.Point, queriers []uint32, querySize float32) uint64 {
	var h uint64
	for _, q := range queriers {
		g.Query(geom.Square(pts[q], querySize), func(id uint32) {
			h = core.MixPair(h, q, id)
		})
	}
	return h
}

// bruteBoxDigest is the rect x rect oracle: every (querier, intersecting
// MBR) pair.
func bruteBoxDigest(rects []geom.Rect, queriers []uint32, querySize float32) uint64 {
	var h uint64
	for _, q := range queriers {
		r := geom.Square(rects[q].Center(), querySize)
		for i := range rects {
			if rects[i].Intersects(r) {
				h = core.MixPair(h, q, uint32(i))
			}
		}
	}
	return h
}

func boxDigest(bg core.BoxIndex, rects []geom.Rect, queriers []uint32, querySize float32) uint64 {
	var h uint64
	for _, q := range queriers {
		bg.Query(geom.Square(rects[q].Center(), querySize), func(id uint32) {
			h = core.MixPair(h, q, id)
		})
	}
	return h
}

// measure times the three phases the way the driver's tick does: build
// over the snapshot, one query per querier, one move per updater (and
// back, so the population is iteration-invariant). Returned map keys are
// build/query/update; values are ns per operation (per build, per query,
// per update).
func measure(g core.Index, pts []geom.Point, queriers []uint32, updates []workload.Update, querySize float32, iters int) map[string]float64 {
	// Warm up arenas so steady-state builds allocate nothing.
	g.Build(pts)

	start := time.Now()
	for i := 0; i < iters; i++ {
		g.Build(pts)
	}
	buildNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

	sink := 0
	emit := func(uint32) { sink++ }
	start = time.Now()
	for i := 0; i < iters; i++ {
		for _, q := range queriers {
			g.Query(geom.Square(pts[q], querySize), emit)
		}
	}
	queryNs := float64(time.Since(start).Nanoseconds()) / float64(iters*len(queriers))

	start = time.Now()
	for i := 0; i < iters; i++ {
		for _, u := range updates {
			g.Update(u.ID, pts[u.ID], u.Pos)
			g.Update(u.ID, u.Pos, pts[u.ID])
		}
	}
	// Each inner step performs two updates (there and back).
	updateNs := float64(time.Since(start).Nanoseconds()) / float64(2*iters*len(updates))

	if sink < 0 {
		panic("unreachable")
	}
	return map[string]float64{"build": buildNs, "query": queryNs, "update": updateNs}
}

// measureBox is measure for the rectangle grids: build over the MBR
// snapshot, one intersection query per querier, one MBR move per updater
// (and back).
func measureBox(bg core.BoxIndex, rects []geom.Rect, queriers []uint32, updates []workload.BoxUpdate, querySize float32, iters int) map[string]float64 {
	bg.Build(rects)

	start := time.Now()
	for i := 0; i < iters; i++ {
		bg.Build(rects)
	}
	buildNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

	queryNs := measureBoxQueries(bg, rects, queriers, querySize, iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		for _, u := range updates {
			bg.Update(u.ID, rects[u.ID], u.Rect)
			bg.Update(u.ID, u.Rect, rects[u.ID])
		}
	}
	updateNs := float64(time.Since(start).Nanoseconds()) / float64(2*iters*len(updates))

	return map[string]float64{"build": buildNs, "query": queryNs, "update": updateNs}
}

// measureBoxQueries times the query phase alone at the given window
// extent over a freshly built grid.
func measureBoxQueries(bg core.BoxIndex, rects []geom.Rect, queriers []uint32, querySize float32, iters int) float64 {
	sink := 0
	emit := func(uint32) { sink++ }
	start := time.Now()
	for i := 0; i < iters; i++ {
		for _, q := range queriers {
			bg.Query(geom.Square(rects[q].Center(), querySize), emit)
		}
	}
	if sink < 0 {
		panic("unreachable")
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters*len(queriers))
}
