// Command gridbench measures the grid's three operations — Build, Query,
// Update — for the inline-bucket layout against the CSR layout and emits
// the numbers as JSON, the machine-readable perf trajectory the CI smoke
// bench tracks (BENCH_grid.json). With -objects point,box the report
// additionally carries a "boxcsr" series: the CSR rectangle grid over
// the default MBR workload at the same granularities.
//
// The workload mirrors the paper's standard setting: the default uniform
// population with 50% queriers and 50% updaters per tick. Layouts are
// compared at the paper's tuned granularity (cps=64) and at a much finer
// grid (cps=256) where contiguity matters most.
//
// Examples:
//
//	gridbench                          # defaults, JSON to stdout
//	gridbench -iters 100 -out BENCH_grid.json
//	gridbench -objects point,box       # include the box-join series
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/workload"
)

// opResult is one (layout, cps, op) timing.
type opResult struct {
	Layout  string  `json:"layout"`
	CPS     int     `json:"cps"`
	Op      string  `json:"op"`
	NsPerOp float64 `json:"ns_per_op"`
}

// report is the BENCH_grid.json schema.
type report struct {
	Tool    string     `json:"tool"`
	Points  int        `json:"points"`
	Iters   int        `json:"iters"`
	Results []opResult `json:"results"`
	// Summary ratios: inline time / csr time per operation and for the
	// acceptance-criterion pairing build+query, at each granularity.
	Speedups map[string]float64 `json:"csr_speedup_vs_inline"`
	// BoxReplication maps "cps=N" to the rectangle grid's replication
	// factor under the default box workload (present with -objects box).
	BoxReplication map[string]float64 `json:"box_replication,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gridbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gridbench", flag.ContinueOnError)
	var (
		iters   = fs.Int("iters", 100, "measured iterations per operation (like -benchtime=100x)")
		points  = fs.Int("points", workload.DefaultNumPoints, "number of objects")
		seed    = fs.Uint64("seed", 1, "workload random seed")
		out     = fs.String("out", "", "write JSON here instead of stdout")
		objects = fs.String("objects", "point", "comma-separated object classes to measure: point, box")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *iters <= 0 {
		return fmt.Errorf("iters must be positive, got %d", *iters)
	}
	wantPoint, wantBox := false, false
	for _, o := range strings.Split(*objects, ",") {
		switch strings.TrimSpace(o) {
		case "point":
			wantPoint = true
		case "box":
			wantBox = true
		default:
			return fmt.Errorf("unknown object class %q (have point, box)", o)
		}
	}

	wcfg := workload.DefaultUniform()
	wcfg.Seed = *seed
	wcfg.NumPoints = *points
	gen, err := workload.NewGenerator(wcfg)
	if err != nil {
		return err
	}
	pts := gen.Positions(nil)
	queriers := append([]uint32(nil), gen.Queriers()...)
	updates := append([]workload.Update(nil), gen.Updates()...)
	if len(queriers) == 0 || len(updates) == 0 {
		return fmt.Errorf("population %d yields %d queriers and %d updates per tick; raise -points",
			len(pts), len(queriers), len(updates))
	}

	rep := &report{
		Tool:     "cmd/gridbench",
		Points:   len(pts),
		Iters:    *iters,
		Speedups: map[string]float64{},
	}

	type contender struct {
		layout grid.Layout
		name   string
	}
	if wantPoint {
		ops := map[string]map[string]float64{} // op+cps key -> layout -> ns/op
		for _, cps := range []int{64, 256} {
			for _, c := range []contender{
				{grid.LayoutInline, "inline"},
				{grid.LayoutCSR, "csr"},
			} {
				gc := grid.Config{Layout: c.layout, Scan: grid.ScanRange, BS: grid.RefactoredBS, CPS: cps}
				g, err := grid.New(gc, wcfg.Bounds(), len(pts))
				if err != nil {
					return err
				}
				timings := measure(g, pts, queriers, updates, wcfg.QuerySize, *iters)
				for op, ns := range timings {
					rep.Results = append(rep.Results, opResult{Layout: c.name, CPS: cps, Op: op, NsPerOp: ns})
					key := fmt.Sprintf("%s/cps=%d", op, cps)
					if ops[key] == nil {
						ops[key] = map[string]float64{}
					}
					ops[key][c.name] = ns
				}
			}
		}
		for _, cps := range []int{64, 256} {
			for _, op := range []string{"build", "query", "update"} {
				key := fmt.Sprintf("%s/cps=%d", op, cps)
				rep.Speedups[key] = ops[key]["inline"] / ops[key]["csr"]
			}
			bq := fmt.Sprintf("build+query/cps=%d", cps)
			inline := ops[fmt.Sprintf("build/cps=%d", cps)]["inline"] + ops[fmt.Sprintf("query/cps=%d", cps)]["inline"]
			csr := ops[fmt.Sprintf("build/cps=%d", cps)]["csr"] + ops[fmt.Sprintf("query/cps=%d", cps)]["csr"]
			rep.Speedups[bq] = inline / csr
		}
	}

	if wantBox {
		bcfg := workload.DefaultUniformBoxes()
		bcfg.Seed = *seed
		bcfg.NumPoints = *points
		bgen, err := workload.NewBoxGenerator(bcfg)
		if err != nil {
			return err
		}
		rects := bgen.Rects(nil)
		boxQueriers := append([]uint32(nil), bgen.Queriers()...)
		boxUpdates := append([]workload.BoxUpdate(nil), bgen.Updates()...)
		if len(boxQueriers) == 0 || len(boxUpdates) == 0 {
			return fmt.Errorf("box population %d yields %d queriers and %d updates per tick; raise -points",
				len(rects), len(boxQueriers), len(boxUpdates))
		}
		rep.BoxReplication = map[string]float64{}
		for _, cps := range []int{64, 256} {
			bg, err := grid.NewBoxGrid(cps, bcfg.Bounds(), len(rects))
			if err != nil {
				return err
			}
			timings := measureBox(bg, rects, boxQueriers, boxUpdates, bcfg.QuerySize, *iters)
			for op, ns := range timings {
				rep.Results = append(rep.Results, opResult{Layout: "boxcsr", CPS: cps, Op: op, NsPerOp: ns})
			}
			rep.BoxReplication[fmt.Sprintf("cps=%d", cps)] = bg.ReplicationFactor()
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// measure times the three phases the way the driver's tick does: build
// over the snapshot, one query per querier, one move per updater (and
// back, so the population is iteration-invariant). Returned map keys are
// build/query/update; values are ns per operation (per build, per query,
// per update).
func measure(g *grid.Grid, pts []geom.Point, queriers []uint32, updates []workload.Update, querySize float32, iters int) map[string]float64 {
	// Warm up arenas so steady-state builds allocate nothing.
	g.Build(pts)

	start := time.Now()
	for i := 0; i < iters; i++ {
		g.Build(pts)
	}
	buildNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

	sink := 0
	emit := func(uint32) { sink++ }
	start = time.Now()
	for i := 0; i < iters; i++ {
		for _, q := range queriers {
			g.Query(geom.Square(pts[q], querySize), emit)
		}
	}
	queryNs := float64(time.Since(start).Nanoseconds()) / float64(iters*len(queriers))

	start = time.Now()
	for i := 0; i < iters; i++ {
		for _, u := range updates {
			g.Update(u.ID, pts[u.ID], u.Pos)
			g.Update(u.ID, u.Pos, pts[u.ID])
		}
	}
	// Each inner step performs two updates (there and back).
	updateNs := float64(time.Since(start).Nanoseconds()) / float64(2*iters*len(updates))

	if sink < 0 {
		panic("unreachable")
	}
	return map[string]float64{"build": buildNs, "query": queryNs, "update": updateNs}
}

// measureBox is measure for the CSR rectangle grid: build over the MBR
// snapshot, one intersection query per querier, one MBR move per updater
// (and back).
func measureBox(bg *grid.BoxGrid, rects []geom.Rect, queriers []uint32, updates []workload.BoxUpdate, querySize float32, iters int) map[string]float64 {
	bg.Build(rects)

	start := time.Now()
	for i := 0; i < iters; i++ {
		bg.Build(rects)
	}
	buildNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

	sink := 0
	emit := func(uint32) { sink++ }
	start = time.Now()
	for i := 0; i < iters; i++ {
		for _, q := range queriers {
			bg.Query(geom.Square(rects[q].Center(), querySize), emit)
		}
	}
	queryNs := float64(time.Since(start).Nanoseconds()) / float64(iters*len(queriers))

	start = time.Now()
	for i := 0; i < iters; i++ {
		for _, u := range updates {
			bg.Update(u.ID, rects[u.ID], u.Rect)
			bg.Update(u.ID, u.Rect, rects[u.ID])
		}
	}
	updateNs := float64(time.Since(start).Nanoseconds()) / float64(2*iters*len(updates))

	if sink < 0 {
		panic("unreachable")
	}
	return map[string]float64{"build": buildNs, "query": queryNs, "update": updateNs}
}
