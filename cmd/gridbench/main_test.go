package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRejectsBadIters(t *testing.T) {
	if err := run([]string{"-iters", "0"}); err == nil {
		t.Fatal("iters=0 accepted")
	}
}

func TestEmitsValidJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("measured run")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-iters", "1", "-points", "5000", "-out", out}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Points   int                `json:"points"`
		Results  []json.RawMessage  `json:"results"`
		Speedups map[string]float64 `json:"csr_speedup_vs_inline"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Points != 5000 {
		t.Fatalf("points = %d", rep.Points)
	}
	// 2 layouts x 2 granularities x 3 ops.
	if len(rep.Results) != 12 {
		t.Fatalf("results = %d, want 12", len(rep.Results))
	}
	for _, key := range []string{"build+query/cps=64", "build+query/cps=256"} {
		if rep.Speedups[key] <= 0 {
			t.Fatalf("missing speedup %s", key)
		}
	}
}

func TestRejectsBadObjects(t *testing.T) {
	if err := run([]string{"-objects", "sphere"}); err == nil {
		t.Fatal("unknown object class accepted")
	}
}

func TestBoxSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("measured run")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-iters", "1", "-points", "5000", "-objects", "point,box", "-out", out}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Results []struct {
			Layout string `json:"layout"`
			Op     string `json:"op"`
		} `json:"results"`
		BoxReplication map[string]float64 `json:"box_replication"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	boxOps := 0
	for _, r := range rep.Results {
		if r.Layout == "boxcsr" {
			boxOps++
		}
	}
	// 2 granularities x 3 ops.
	if boxOps != 6 {
		t.Fatalf("boxcsr results = %d, want 6", boxOps)
	}
	for _, key := range []string{"cps=64", "cps=256"} {
		if rep.BoxReplication[key] < 1 {
			t.Fatalf("replication factor %s = %g, want >= 1", key, rep.BoxReplication[key])
		}
	}
}
