package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRejectsBadIters(t *testing.T) {
	if err := run([]string{"-iters", "0"}); err == nil {
		t.Fatal("iters=0 accepted")
	}
}

func TestEmitsValidJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("measured run")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-iters", "1", "-points", "5000", "-out", out}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Points   int                `json:"points"`
		Results  []json.RawMessage  `json:"results"`
		Speedups map[string]float64 `json:"csr_speedup_vs_inline"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Points != 5000 {
		t.Fatalf("points = %d", rep.Points)
	}
	// 2 layouts x 2 granularities x 3 ops.
	if len(rep.Results) != 12 {
		t.Fatalf("results = %d, want 12", len(rep.Results))
	}
	for _, key := range []string{"build+query/cps=64", "build+query/cps=256"} {
		if rep.Speedups[key] <= 0 {
			t.Fatalf("missing speedup %s", key)
		}
	}
}
