package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRejectsBadIters(t *testing.T) {
	if err := run([]string{"-iters", "0"}); err == nil {
		t.Fatal("iters=0 accepted")
	}
}

func TestEmitsValidJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("measured run")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-iters", "1", "-points", "5000", "-out", out}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Points   int                `json:"points"`
		Results  []json.RawMessage  `json:"results"`
		Speedups map[string]float64 `json:"csr_speedup_vs_inline"`
		Buffered map[string]float64 `json:"buffered_speedup_vs_emit"`
		Regret   map[string]float64 `json:"auto_regret_vs_best_static"`
		Choices  map[string]string  `json:"auto_choice"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Points != 5000 {
		t.Fatalf("points = %d", rep.Points)
	}
	// 3 layouts x 2 granularities x (3 ops + the query-emit/query-append
	// kernel pair), plus the auto series (3 ops).
	if len(rep.Results) != 33 {
		t.Fatalf("results = %d, want 33", len(rep.Results))
	}
	for _, key := range []string{"build+query/cps=64", "build+query/cps=256"} {
		if rep.Speedups[key] <= 0 {
			t.Fatalf("missing speedup %s", key)
		}
	}
	for _, key := range []string{"csr/cps=64", "csr/cps=256", "inline/cps=64"} {
		if rep.Buffered[key] <= 0 {
			t.Fatalf("missing buffered speedup %s", key)
		}
	}
	if _, ok := rep.Regret["point-default"]; !ok {
		t.Fatal("missing auto_regret_vs_best_static[point-default]")
	}
	if rep.Choices["point-default"] == "" {
		t.Fatal("missing auto_choice[point-default]")
	}
}

func TestRejectsBadObjects(t *testing.T) {
	if err := run([]string{"-objects", "sphere"}); err == nil {
		t.Fatal("unknown object class accepted")
	}
}

func TestBoxSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("measured run")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-iters", "1", "-points", "5000", "-objects", "point,box", "-out", out}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Results []struct {
			Layout   string  `json:"layout"`
			Op       string  `json:"op"`
			Qext     float64 `json:"qext"`
			Workload string  `json:"workload"`
		} `json:"results"`
		BoxReplication  map[string]float64 `json:"box_replication"`
		Buffered        map[string]float64 `json:"buffered_speedup_vs_emit"`
		Box2LSpeedups   map[string]float64 `json:"box2l_speedup_vs_boxcsr"`
		BoxRTreeVsBrute map[string]float64 `json:"boxrtree_speedup_vs_boxbrute"`
		BoxRTreeVsBox2L map[string]float64 `json:"boxrtree_speedup_vs_box2l"`
		Regret          map[string]float64 `json:"auto_regret_vs_best_static"`
		Choices         map[string]string  `json:"auto_choice"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	boxOps, box2LOps, rtreeOps, bruteOps, autoDefaultOps, autoWorkloadOps := 0, 0, 0, 0, 0, 0
	for _, r := range rep.Results {
		switch r.Layout {
		case "boxcsr":
			boxOps++
		case "boxcsr2l":
			box2LOps++
		case "boxrtree":
			rtreeOps++
		case "boxbrute":
			bruteOps++
		case "boxauto":
			if r.Workload == "" {
				autoDefaultOps++
			} else {
				autoWorkloadOps++
			}
		}
	}
	// 2 granularities x (3 ops + the query-emit/query-append kernel pair)
	// per box grid; the grid-independent R-tree gets 3 ops + the kernel
	// pair, brute force the 3 ops only.
	if boxOps != 10 || box2LOps != 10 {
		t.Fatalf("box results = %d boxcsr + %d boxcsr2l, want 10 + 10", boxOps, box2LOps)
	}
	if rtreeOps != 5 || bruteOps != 3 {
		t.Fatalf("box results = %d boxrtree + %d boxbrute, want 5 + 3", rtreeOps, bruteOps)
	}
	for _, key := range []string{"boxcsr2l/cps=64", "boxcsr/cps=64"} {
		if rep.Buffered[key] <= 0 {
			t.Fatalf("missing buffered speedup %s", key)
		}
	}
	// The adaptive selector: 3 ops on the default workload plus 3 ops
	// on each of the three contrasting regret workloads.
	if autoDefaultOps != 3 || autoWorkloadOps != 9 {
		t.Fatalf("box results = %d default + %d workload boxauto ops, want 3 + 9", autoDefaultOps, autoWorkloadOps)
	}
	for _, key := range []string{"box-default", "box-queryheavy-smallext", "box-updateheavy", "box-coarsejoin"} {
		if _, ok := rep.Regret[key]; !ok {
			t.Fatalf("missing auto_regret_vs_best_static[%s]", key)
		}
		if rep.Choices[key] == "" {
			t.Fatalf("missing auto_choice[%s]", key)
		}
	}
	for _, key := range []string{"cps=64", "cps=256"} {
		if rep.BoxReplication[key] < 1 {
			t.Fatalf("replication factor %s = %g, want >= 1", key, rep.BoxReplication[key])
		}
	}
	for _, key := range []string{"query/cps=64", "query/cps=256"} {
		if rep.Box2LSpeedups[key] <= 0 {
			t.Fatalf("missing box2l speedup %s", key)
		}
		if rep.BoxRTreeVsBox2L[key] <= 0 {
			t.Fatalf("missing boxrtree speedup %s", key)
		}
	}
	if rep.BoxRTreeVsBrute["query"] <= 1 {
		t.Fatalf("boxrtree query speedup vs brute = %g, want > 1",
			rep.BoxRTreeVsBrute["query"])
	}
}

func TestQextSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("measured run")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-iters", "1", "-points", "5000", "-objects", "box", "-qext", "200,800", "-out", out}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Results []struct {
			Layout string  `json:"layout"`
			Op     string  `json:"op"`
			Qext   float64 `json:"qext"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	// 2 grid layouts x 2 granularities x 2 extents, plus the
	// grid-independent R-tree x 2 extents, query op only.
	qextOps := 0
	for _, r := range rep.Results {
		if r.Qext != 0 {
			if r.Op != "query" {
				t.Fatalf("qext series carries op %q", r.Op)
			}
			qextOps++
		}
	}
	if qextOps != 10 {
		t.Fatalf("qext results = %d, want 10", qextOps)
	}
}

func TestQextRequiresBoxObjects(t *testing.T) {
	if err := run([]string{"-qext", "100"}); err == nil {
		t.Fatal("-qext without box objects accepted")
	}
	if err := run([]string{"-objects", "box", "-qext", "nope"}); err == nil {
		t.Fatal("malformed -qext accepted")
	}
}
