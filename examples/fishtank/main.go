// Fishtank: schooling-behaviour analytics on the simulation workload —
// the behavioural workload family of the original study (the paper
// reports the same trends on it but omits the plots for space).
//
// Fish form schools that drift coherently. Every tick the analytics ask
// two questions through the spatial index: how many neighbours does a
// sampled fish see (local density), and how many distinct schools pass
// through a fixed observation window. The example also demonstrates
// workload trace recording and replaying.
//
// Run with:
//
//	go run ./examples/fishtank
//	go run ./examples/fishtank -quick   # tiny smoke-test parameters
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/workload"
)

const (
	fish    = 12_000
	tank    = 8_000
	schools = 6
	ticks   = 25
)

func main() {
	quick := flag.Bool("quick", false, "tiny population and tick count (CI smoke run)")
	flag.Parse()
	fish, ticks := fish, ticks
	if *quick {
		fish, ticks = 900, 4
	}

	cfg := workload.DefaultSimulation()
	cfg.NumPoints = fish
	cfg.SpaceSize = tank
	cfg.Hotspots = schools
	cfg.Ticks = ticks
	cfg.QuerySize = 250
	cfg.Queriers = 0.1
	cfg.Updaters = 1 // everything swims

	// Record the workload once, then replay it — the identical stream
	// can later be replayed against other techniques or machines.
	trace, err := workload.Record(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d ticks (%d KiB serialized, checksum %#x)\n",
		ticks, buf.Len()/1024, trace.Checksum())
	replayed, err := workload.ReadTrace(&buf)
	if err != nil {
		log.Fatal(err)
	}
	if replayed.Checksum() != trace.Checksum() {
		log.Fatal("trace roundtrip corrupted the workload")
	}

	player := workload.NewPlayer(replayed)
	idx, err := grid.New(grid.CPSTuned(), cfg.Bounds(), cfg.NumPoints)
	if err != nil {
		log.Fatal(err)
	}

	window := geom.Square(geom.Pt(tank/2, tank/2), 1_500) // observation window
	snapshot := make([]geom.Point, fish)
	var densitySum, densitySamples float64
	for tick := 0; tick < ticks; tick++ {
		objs := player.Objects()
		for i := range objs {
			snapshot[i] = objs[i].Pos
		}
		idx.Build(snapshot)

		// Local density: neighbours seen by each sampled querier.
		for _, q := range player.Queriers() {
			n := 0
			idx.Query(player.QueryRect(q), func(uint32) { n++ })
			densitySum += float64(n - 1) // exclude self
			densitySamples++
		}

		// Window occupancy.
		occupancy := 0
		idx.Query(window, func(uint32) { occupancy++ })
		if tick%5 == 0 {
			fmt.Printf("tick %2d: %5d fish in the observation window\n", tick, occupancy)
		}

		batch := player.Updates()
		for _, u := range batch {
			idx.Update(u.ID, snapshot[u.ID], u.Pos)
		}
		player.ApplyUpdates(batch)
	}

	fmt.Printf("\nmean local density: %.1f neighbours within %.0f units\n",
		densitySum/densitySamples, cfg.QuerySize/2)
	uniformExpectation := float64(fish) * float64(cfg.QuerySize) * float64(cfg.QuerySize) /
		(float64(tank) * float64(tank))
	fmt.Printf("uniform expectation would be %.1f — schooling multiplies local density %.1fx\n",
		uniformExpectation, (densitySum/densitySamples)/uniformExpectation)
}
