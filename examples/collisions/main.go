// Collisions: broad-phase collision detection for a particle simulation,
// comparing two of the paper's techniques live on the same frames.
//
// Each frame, every particle must discover all particles within its
// interaction radius — exactly the iterated spatial self-join of the
// study (100% queriers). The example runs the same frames through the
// tuned Simple Grid and the STR R-tree and reports both timings,
// illustrating the paper's point that the implementation, not the
// abstract structure, decides the winner.
//
// Run with:
//
//	go run ./examples/collisions
//	go run ./examples/collisions -quick   # tiny smoke-test parameters
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/rtree"
	"repro/internal/workload"
)

const (
	particles = 8_000
	arena     = 4_000
	radius    = 50 // interaction radius -> query side 100
	frames    = 25
)

func main() {
	quick := flag.Bool("quick", false, "tiny population and frame count (CI smoke run)")
	flag.Parse()
	particles, frames := particles, frames
	if *quick {
		particles, frames = 600, 3
	}

	cfg := workload.DefaultUniform()
	cfg.NumPoints = particles
	cfg.SpaceSize = arena
	cfg.Ticks = frames
	cfg.QuerySize = 2 * radius
	cfg.Queriers = 1 // every particle checks for collisions
	cfg.Updaters = 1 // every particle moves
	cfg.MaxSpeed = 30

	// Record once so both techniques see byte-identical frames.
	trace, err := workload.Record(cfg)
	if err != nil {
		log.Fatal(err)
	}

	techniques := []core.Index{
		grid.MustNew(grid.CPSTuned(), cfg.Bounds(), cfg.NumPoints),
		rtree.MustNew(rtree.DefaultFanout),
	}

	fmt.Printf("broad phase: %d particles, %d frames, radius %d\n\n", particles, frames, radius)
	var refPairs int64
	var refHash uint64
	var gridSecs float64
	for i, idx := range techniques {
		res := core.Run(idx, workload.NewPlayer(trace), core.Options{})
		// Pairs include each particle finding itself; subtract the
		// reflexive pairs to get candidate collision pairs (counted
		// twice, once per endpoint).
		candidates := (res.Pairs - res.Queries) / 2
		fmt.Printf("%-22s %.4fs/frame  (%d candidate pairs/run)\n",
			idx.Name(), res.AvgTick().Seconds(), candidates)
		if i == 0 {
			refPairs, refHash = res.Pairs, res.Hash
			gridSecs = res.AvgTick().Seconds()
		} else {
			if res.Pairs != refPairs || res.Hash != refHash {
				log.Fatalf("%s disagrees with the grid on the collision set", idx.Name())
			}
			fmt.Printf("%-22s agreement verified; grid speedup %.2fx\n",
				"", res.AvgTick().Seconds()/gridSecs)
		}
	}

	// Narrow phase on the final frame: exact distance filtering of the
	// broad-phase candidates for one particle.
	player := workload.NewPlayer(trace)
	for player.Tick() < frames-1 {
		player.Queriers()
		player.ApplyUpdates(player.Updates())
	}
	g := grid.MustNew(grid.CPSTuned(), cfg.Bounds(), cfg.NumPoints)
	positions := snapshot(player)
	g.Build(positions)
	const probe = 0
	p := positions[probe]
	exact := 0
	g.Query(player.QueryRect(probe), func(id uint32) {
		if id == probe {
			return
		}
		dx := float64(positions[id].X - p.X)
		dy := float64(positions[id].Y - p.Y)
		if dx*dx+dy*dy <= radius*radius {
			exact++
		}
	})
	fmt.Printf("\nparticle %d finishes with %d exact contacts within radius %d\n", probe, exact, radius)
}

func snapshot(p *workload.Player) []geom.Point {
	objs := p.Objects()
	out := make([]geom.Point, len(objs))
	for i := range objs {
		out[i] = objs[i].Pos
	}
	return out
}
