// Trafficmonitor: a fleet-monitoring scenario on the Gaussian (hotspot)
// workload — the kind of application the paper's introduction motivates.
//
// Vehicles cluster around a handful of city hotspots. Every tick, each
// dispatcher (a fraction of the vehicles) asks "which vehicles are near
// me right now?" — a range query — and the system additionally watches a
// fixed set of congestion zones, alerting when a zone's population
// exceeds a threshold.
//
// Run with:
//
//	go run ./examples/trafficmonitor
//	go run ./examples/trafficmonitor -quick      # tiny smoke-test parameters
//	go run ./examples/trafficmonitor -shards 2   # region-sharded engine, 2x2 city regions
//
// With -shards N the city is split into an NxN lattice of regions
// (internal/shard), each region running its own independently tuned
// index over just its vehicles — the hotspot clustering means different
// regions can genuinely pick different structures — and the program
// prints each region's tuning decision.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/workload"
)

const (
	vehicles       = 20_000
	citySize       = 15_000 // metres
	hotspots       = 8
	ticks          = 30
	zoneSide       = 1_200 // congestion zone size
	congestedCount = 700   // alert threshold
)

func main() {
	quick := flag.Bool("quick", false, "tiny population and tick count (CI smoke run)")
	shards := flag.Int("shards", 0, "region-grid side for the sharded engine (0 = single tuned grid)")
	debugAddr := flag.String("debug-addr", "", "serve live /debug/obs snapshots and pprof on this address while the monitor runs")
	flag.Parse()
	vehicles, ticks := vehicles, ticks
	if *quick {
		vehicles, ticks = 1_200, 4
	}

	cfg := workload.DefaultGaussian()
	cfg.NumPoints = vehicles
	cfg.SpaceSize = citySize
	cfg.Hotspots = hotspots
	cfg.Ticks = ticks
	cfg.QuerySize = 600 // dispatchers look 300m in every direction
	cfg.Queriers = 0.2
	cfg.Updaters = 0.8 // traffic moves

	gen, err := workload.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A nil registry keeps every instrument below a no-op; -debug-addr
	// turns the monitor into a live-inspectable service.
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.New()
		addr, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("debug endpoint: http://%s/debug/obs\n", addr)
	}

	var idx core.Index
	var sharded *shard.Index
	if *shards > 0 {
		sharded = shard.New(core.ParamsFor(cfg), *shards)
		idx = sharded
	} else {
		g, err := grid.New(grid.CPSTuned(), cfg.Bounds(), cfg.NumPoints)
		if err != nil {
			log.Fatal(err)
		}
		idx = g
	}

	// Congestion zones: squares centred on the hotspots the generator
	// placed. In a deployment these would come from a map layer.
	zones := make([]geom.Rect, 0, len(gen.Hotspots()))
	for _, h := range gen.Hotspots() {
		zones = append(zones, geom.Square(h, zoneSide))
	}

	// Attach the instruments (fan-out histograms for the sharded engine,
	// query counters for the grid) and a per-tick wall-time histogram.
	obs.Instrument(idx, reg)
	tickHist := reg.Histogram("traffic.tick_ns")
	alertCount := reg.Counter("traffic.alerts")

	snapshot := make([]geom.Point, vehicles)
	var alerts, dispatcherPairs int
	for tick := 0; tick < ticks; tick++ {
		span := reg.Enter(tickHist)
		// Build phase: refresh and index the fleet's positions.
		objs := gen.Objects()
		for i := range objs {
			snapshot[i] = objs[i].Pos
		}
		idx.Build(snapshot)

		// Query phase, part 1: dispatcher proximity queries (the join).
		for _, q := range gen.Queriers() {
			idx.Query(gen.QueryRect(q), func(id uint32) { dispatcherPairs++ })
		}

		// Query phase, part 2: congestion sweep over the fixed zones.
		for zi, z := range zones {
			n := 0
			idx.Query(z, func(id uint32) { n++ })
			if n > congestedCount {
				alerts++
				alertCount.Inc()
				if alerts <= 5 {
					fmt.Printf("tick %2d: zone %d congested (%d vehicles)\n", tick, zi, n)
				}
			}
		}

		// Update phase: apply this tick's movements.
		batch := gen.Updates()
		for _, u := range batch {
			idx.Update(u.ID, snapshot[u.ID], u.Pos)
		}
		gen.ApplyUpdates(batch)
		reg.Exit(span)
	}

	if sharded != nil {
		// Each region tuned its inner index from its own sample of the
		// city; print the per-region decisions with their evidence.
		fmt.Printf("\nper-region tuning (%s):\n", sharded.Name())
		for _, ri := range sharded.Regions() {
			fmt.Printf("region (%d,%d): %d vehicles\n", ri.CX, ri.CY, ri.Live)
			fmt.Println(ri.Choice.Explain())
		}
	}

	fmt.Printf("\n%d ticks, %d vehicles, %d hotspots\n", ticks, vehicles, hotspots)
	fmt.Printf("dispatcher proximity pairs: %d\n", dispatcherPairs)
	fmt.Printf("congestion alerts: %d (threshold %d vehicles per %dm zone)\n",
		alerts, congestedCount, zoneSide)

	// Sanity: compare the final state against the oracle to show the
	// index returns exactly what a full scan would. Rebuild over the
	// post-run positions first — the framework's next build phase would
	// do the same before any further query.
	objs := gen.Objects()
	for i := range objs {
		snapshot[i] = objs[i].Pos
	}
	idx.Build(snapshot)
	oracle := core.NewBruteForce()
	oracle.Build(snapshot)
	for _, z := range zones {
		fast, slow := 0, 0
		idx.Query(z, func(uint32) { fast++ })
		oracle.Query(z, func(uint32) { slow++ })
		if fast != slow {
			log.Fatalf("index and oracle disagree: %d vs %d", fast, slow)
		}
	}
	fmt.Println("zone counts verified against the brute-force oracle")
}
