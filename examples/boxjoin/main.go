// Boxjoin: an MBR self-join over extended objects — the workload the
// non-point extension exists for.
//
// A fleet of delivery drones each occupies a rectangular airspace
// corridor (its MBR). Every frame, every drone must know which other
// corridors overlap its own: the classic spatial self-join over
// rectangles, the operation at the heart of R-tree join and partitioning
// papers. The example runs it two ways on identical MBRs:
//
//   - brute force: every drone tests every other (the oracle);
//   - the CSR rectangle grid: MBRs replicated per overlapped cell by a
//     counting-sort build, overlap pairs found by probing each drone's
//     own MBR, duplicates suppressed by the reference-point method.
//
// Both must find the identical pair set; the grid just gets there two
// orders of magnitude sooner.
//
// Run with:
//
//	go run ./examples/boxjoin
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/workload"
)

const (
	drones = 12_000
	space  = 22_000
	frames = 8
	cps    = 64
)

func main() {
	cfg := workload.DefaultUniformBoxes()
	cfg.NumPoints = drones
	cfg.SpaceSize = space
	cfg.Ticks = frames
	cfg.MinSide = 80  // smallest corridor
	cfg.MaxSide = 600 // largest corridor
	cfg.Queriers = 0  // the self-join probes every MBR itself
	cfg.Updaters = 0.4

	src, err := workload.NewBoxGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The two-layer classed rectangle grid: class sub-spans make interior
	// query cells test-free, the fastest BoxIndex in the lineup.
	bg := grid.MustNewBoxGrid2L(cps, cfg.Bounds(), drones)
	oracle := core.NewBruteForceBoxes()

	fmt.Printf("boxjoin: %d drone corridors (%g-%g units) over %d frames, grid %dx%d\n\n",
		drones, cfg.MinSide, cfg.MaxSide, frames, cps, cps)
	fmt.Printf("%8s  %12s  %12s  %10s  %s\n", "frame", "grid", "brute force", "overlaps", "check")

	var rects []geom.Rect
	var gridTotal, bruteTotal time.Duration
	for frame := 0; frame < frames; frame++ {
		rects = src.Rects(rects)

		// Self-join via the rectangle grid: build once, probe each MBR.
		start := time.Now()
		bg.Build(rects)
		gridPairs, gridSum := selfJoin(bg, rects)
		gridTime := time.Since(start)
		gridTotal += gridTime

		start = time.Now()
		oracle.Build(rects)
		brutePairs, bruteSum := selfJoin(oracle, rects)
		bruteTime := time.Since(start)
		bruteTotal += bruteTime

		check := "OK"
		if gridPairs != brutePairs || gridSum != bruteSum {
			check = "MISMATCH"
		}
		fmt.Printf("%8d  %12s  %12s  %10d  %s\n", frame, gridTime.Round(time.Microsecond),
			bruteTime.Round(time.Microsecond), gridPairs, check)
		if check != "OK" {
			log.Fatalf("frame %d: grid found %d pairs (sum %d), oracle %d (sum %d)",
				frame, gridPairs, gridSum, brutePairs, bruteSum)
		}

		// Advance the fleet.
		src.ApplyUpdates(src.Updates())
	}

	fmt.Printf("\nreplication factor: %.2f cells per corridor\n", bg.ReplicationFactor())
	fmt.Printf("totals: grid %s, brute force %s (%.0fx)\n",
		gridTotal.Round(time.Millisecond), bruteTotal.Round(time.Millisecond),
		float64(bruteTotal)/float64(gridTotal))
}

// selfJoin probes idx with every MBR and counts unordered overlap pairs
// (i < j), plus an order-independent checksum for the cross-check.
func selfJoin(idx core.BoxIndex, rects []geom.Rect) (pairs int64, sum uint64) {
	for i := range rects {
		q := uint32(i)
		idx.Query(rects[i], func(id uint32) {
			if id > q { // count each unordered pair once, skip self
				pairs++
				sum += uint64(q)*2654435761 + uint64(id)
			}
		})
	}
	return pairs, sum
}
