// Boxjoin: an MBR self-join over extended objects — the workload the
// non-point extension exists for.
//
// A fleet of delivery drones each occupies a rectangular airspace
// corridor (its MBR). Every frame, every drone must know which other
// corridors overlap its own: the classic spatial self-join over
// rectangles, the operation at the heart of R-tree join and partitioning
// papers. The example runs it three ways on identical MBRs:
//
//   - brute force: every drone tests every other (the oracle);
//
//   - the two-layer classed rectangle grid: MBRs replicated per
//     overlapped cell by a counting-sort build, interior query cells
//     emitted test-free thanks to the class partition;
//
//   - the STR-packed box R-tree: no replication, each corridor in
//     exactly one leaf of a bulk-loaded packing.
//
//   - the adaptive selector (internal/tune): samples the corridors on
//     its first build, prices every family with a calibrated cost
//     model, and becomes whichever structure it predicts fastest —
//     the example prints which one it picked and the statistics that
//     drove the decision.
//
// All four must find the identical pair set; the real indexes just get
// there orders of magnitude sooner — and which of them *wins* is the
// paper's "implementation matters" question in miniature, answered
// per-workload by the selector.
//
// Run with:
//
//	go run ./examples/boxjoin            # full size
//	go run ./examples/boxjoin -quick     # tiny smoke-test parameters
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/rtree"
	"repro/internal/tune"
	"repro/internal/workload"
)

const cps = 64

func main() {
	quick := flag.Bool("quick", false, "tiny population and frame count (CI smoke run)")
	flag.Parse()
	drones, frames := 12_000, 8
	if *quick {
		drones, frames = 800, 2
	}

	cfg := workload.DefaultUniformBoxes()
	cfg.NumPoints = drones
	cfg.SpaceSize = 22_000
	cfg.Ticks = frames
	cfg.MinSide = 80  // smallest corridor
	cfg.MaxSide = 600 // largest corridor
	cfg.Queriers = 0  // the self-join probes every MBR itself
	cfg.Updaters = 0.4

	src, err := workload.NewBoxGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The two-layer classed rectangle grid vs the STR box R-tree — the
	// grid-vs-R-tree pairing of the study — plus the adaptive selector
	// racing as its own contender, with brute force as oracle. The
	// self-join probes every corridor with its own MBR, so the hints
	// describe a 100%-querier tick with corridor-sized windows; and
	// because each frame rebuilds from scratch (motion enters through
	// the generator, never through Update calls), the update fraction
	// the index will see is zero.
	bg := grid.MustNewBoxGrid2L(cps, cfg.Bounds(), drones)
	bt := rtree.MustNewBoxTree(rtree.DefaultFanout)
	auto := tune.NewAutoBox(core.Params{
		Bounds:    cfg.Bounds(),
		NumPoints: drones,
		Hints: core.WorkloadHints{
			QuerySize: (cfg.MinSide + cfg.MaxSide) / 2,
			Queriers:  1,
			Updaters:  0,
			Ticks:     frames,
		},
	})
	oracle := core.NewBruteForceBoxes()

	// Fit the cost model before the race so frame 0 times the index,
	// not the once-per-process calibration microbenchmarks.
	calStart := time.Now()
	tune.Calibrate()
	fmt.Printf("boxjoin: %d drone corridors (%g-%g units) over %d frames, grid %dx%d, rtree fanout %d\n",
		drones, cfg.MinSide, cfg.MaxSide, frames, cps, cps, bt.Fanout())
	fmt.Printf("cost model calibrated in %s (once per process)\n\n", time.Since(calStart).Round(time.Millisecond))
	fmt.Printf("%8s  %12s  %12s  %12s  %12s  %10s  %s\n", "frame", "grid", "rtree", "auto", "brute force", "overlaps", "check")

	var rects []geom.Rect
	var gridTotal, rtreeTotal, autoTotal, bruteTotal time.Duration
	for frame := 0; frame < frames; frame++ {
		rects = src.Rects(rects)

		// Self-join per index: build once, probe each MBR.
		start := time.Now()
		bg.Build(rects)
		gridPairs, gridSum := selfJoin(bg, rects)
		gridTime := time.Since(start)
		gridTotal += gridTime

		start = time.Now()
		bt.Build(rects)
		rtreePairs, rtreeSum := selfJoin(bt, rects)
		rtreeTime := time.Since(start)
		rtreeTotal += rtreeTime

		start = time.Now()
		auto.Build(rects)
		autoPairs, autoSum := selfJoin(auto, rects)
		autoTime := time.Since(start)
		autoTotal += autoTime

		start = time.Now()
		oracle.Build(rects)
		brutePairs, bruteSum := selfJoin(oracle, rects)
		bruteTime := time.Since(start)
		bruteTotal += bruteTime

		check := "OK"
		if gridPairs != brutePairs || gridSum != bruteSum ||
			rtreePairs != brutePairs || rtreeSum != bruteSum ||
			autoPairs != brutePairs || autoSum != bruteSum {
			check = "MISMATCH"
		}
		fmt.Printf("%8d  %12s  %12s  %12s  %12s  %10d  %s\n", frame, gridTime.Round(time.Microsecond),
			rtreeTime.Round(time.Microsecond), autoTime.Round(time.Microsecond),
			bruteTime.Round(time.Microsecond), gridPairs, check)
		if check != "OK" {
			log.Fatalf("frame %d: grid (%d, %d), rtree (%d, %d), auto (%d, %d), oracle (%d, %d)",
				frame, gridPairs, gridSum, rtreePairs, rtreeSum, autoPairs, autoSum, brutePairs, bruteSum)
		}

		// Advance the fleet.
		src.ApplyUpdates(src.Updates())
	}

	choice, ok := auto.Choice()
	if !ok {
		log.Fatal("auto never selected a structure")
	}
	fmt.Printf("\nadaptive selector (what it saw and why it chose):\n%s\n", choice.Explain())
	fmt.Printf("\nreplication factor: %.2f cells per corridor (rtree: 1.00 by construction)\n",
		bg.ReplicationFactor())
	fmt.Printf("totals: grid %s, rtree %s, auto %s, brute force %s (grid %.0fx, rtree %.0fx, auto %.0fx vs brute)\n",
		gridTotal.Round(time.Millisecond), rtreeTotal.Round(time.Millisecond),
		autoTotal.Round(time.Millisecond), bruteTotal.Round(time.Millisecond),
		float64(bruteTotal)/float64(gridTotal), float64(bruteTotal)/float64(rtreeTotal),
		float64(bruteTotal)/float64(autoTotal))
	fmt.Println("all frames verified against brute force")
}

// selfJoin probes idx with every MBR and counts unordered overlap pairs
// (i < j), plus an order-independent checksum for the cross-check.
func selfJoin(idx core.BoxIndex, rects []geom.Rect) (pairs int64, sum uint64) {
	for i := range rects {
		q := uint32(i)
		idx.Query(rects[i], func(id uint32) {
			if id > q { // count each unordered pair once, skip self
				pairs++
				sum += uint64(q)*2654435761 + uint64(id)
			}
		})
	}
	return pairs, sum
}
