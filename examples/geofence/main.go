// Geofence: an enter/exit alerting service over moving objects.
//
// A logistics operator defines rectangular geofences (depots, restricted
// areas). Objects move continuously; the service must emit an event
// whenever an object enters or leaves a fence. The spatial index answers
// one range query per fence per sweep, and set differencing over
// consecutive sweeps yields the events.
//
// Unlike the paper's stop-the-world tick loop, this example runs the
// index as a service: the grid is wrapped in internal/epoch, so fence
// sweeps keep draining on the live epoch while each tick's update batch
// applies to the shadow copy in the background. Every fence query
// observes exactly one published epoch — never a half-applied batch —
// which is what makes the enter/exit diffs trustworthy.
//
// Run with:
//
//	go run ./examples/geofence
//	go run ./examples/geofence -quick   # tiny smoke-test parameters
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/parutil"
	"repro/internal/workload"
	"repro/internal/xrand"
)

const (
	objects = 15_000
	region  = 20_000
	fences  = 12
	ticks   = 40
)

func main() {
	quick := flag.Bool("quick", false, "tiny population and tick count (CI smoke run)")
	flag.Parse()
	objects, ticks := objects, ticks
	if *quick {
		objects, ticks = 1_500, 4
	}

	cfg := workload.DefaultUniform()
	cfg.NumPoints = objects
	cfg.SpaceSize = region
	cfg.Ticks = ticks
	cfg.Queriers = 0 // this service issues only fence queries
	cfg.Updaters = 0.6
	cfg.MaxSpeed = 300

	gen, err := workload.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Fixed fences, reproducibly random corners.
	r := xrand.New(7)
	fenceRects := make([]geom.Rect, fences)
	for i := range fenceRects {
		c := geom.Pt(r.Range(0, region), r.Range(0, region))
		fenceRects[i] = geom.Square(c, r.Range(400, 1600))
	}

	// The epoch-published wrapper around the paper's tuned grid: fence
	// queries stay lock-free on the live copy while ApplyBatch maintains
	// the shadow.
	x := epoch.NewIndex(func() core.Index {
		return grid.MustNew(grid.CPSTuned(), cfg.Bounds(), cfg.NumPoints)
	}, epoch.Options{})

	snapshot := make([]geom.Point, objects)
	objs := gen.Objects()
	for i := range objs {
		snapshot[i] = objs[i].Pos
	}
	x.Build(snapshot)

	inside := make([]map[uint32]bool, fences) // previous sweep's membership
	for i := range inside {
		inside[i] = map[uint32]bool{}
	}

	var enters, exits int
	// sweep runs one fence scan on whatever epoch is live and diffs it
	// against the previous sweep.
	sweep := func(tick int) {
		for fi, fence := range fenceRects {
			now := make(map[uint32]bool)
			x.Query(fence, func(id uint32) { now[id] = true })
			for id := range now {
				if !inside[fi][id] {
					enters++
					logEvent(tick, "ENTER", id, fi, enters+exits)
				}
			}
			for id := range inside[fi] {
				if !now[id] {
					exits++
					logEvent(tick, "EXIT", id, fi, enters+exits)
				}
			}
			inside[fi] = now
		}
	}

	sweeps, overlapped := 0, 0
	moves := make([]geom.Move, 0, objects)
	for tick := 0; tick < ticks; tick++ {
		gen.Queriers() // advance the (empty) query stream
		batch := gen.Updates()
		moves = moves[:0]
		for _, u := range batch {
			moves = append(moves, geom.Move{ID: u.ID, Old: snapshot[u.ID], New: u.Pos})
		}

		// Apply the tick's batch in the background; the alerting loop
		// keeps sweeping the live epoch while it lands. parutil.GoErr
		// contains a panicking apply instead of killing the service.
		done := parutil.GoErr(func() error { _, err := x.ApplyBatch(moves); return err })
		applying := true
		for applying {
			sweep(tick)
			sweeps++
			select {
			case err := <-done:
				if err != nil {
					log.Fatal(err)
				}
				applying = false
			default:
				overlapped++
			}
		}

		gen.ApplyUpdates(batch)
		for _, u := range batch {
			snapshot[u.ID] = u.Pos
		}
	}
	// One closing sweep on the final epoch, so the occupancy report
	// reflects every published batch.
	sweep(ticks)
	sweeps++

	st := x.Stats()
	fmt.Printf("\n%d ticks, %d objects, %d fences\n", ticks, objects, fences)
	fmt.Printf("events: %d enters, %d exits\n", enters, exits)
	fmt.Printf("service: %d sweeps (%d while a batch was applying), %d epochs published, %d degraded\n",
		sweeps, overlapped, st.Epochs, st.Degraded)

	// Final occupancy report, largest fences first.
	type occ struct {
		fence int
		count int
		area  float64
	}
	occs := make([]occ, fences)
	for fi := range fenceRects {
		occs[fi] = occ{fence: fi, count: len(inside[fi]), area: fenceRects[fi].Area()}
	}
	sort.Slice(occs, func(i, j int) bool { return occs[i].count > occs[j].count })
	fmt.Println("final occupancy (top 5):")
	for _, o := range occs[:5] {
		fmt.Printf("  fence %2d: %4d objects in %.1f km^2\n", o.fence, o.count, o.area/1e6)
	}
}

func logEvent(tick int, kind string, id uint32, fence, total int) {
	// Print only the first handful so the output stays readable.
	if total <= 8 {
		fmt.Printf("tick %2d: %-5s object %5d fence %d\n", tick, kind, id, fence)
	}
}
