// Geofence: an enter/exit alerting service over moving objects.
//
// A logistics operator defines rectangular geofences (depots, restricted
// areas). Objects move continuously; every tick the service must emit an
// event whenever an object enters or leaves a fence. The spatial index
// answers one range query per fence per tick, and simple set differencing
// over consecutive ticks yields the events — a direct application of the
// study's query pattern with fence-centred rather than object-centred
// queries.
//
// Run with:
//
//	go run ./examples/geofence
//	go run ./examples/geofence -quick   # tiny smoke-test parameters
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/workload"
	"repro/internal/xrand"
)

const (
	objects = 15_000
	region  = 20_000
	fences  = 12
	ticks   = 40
)

func main() {
	quick := flag.Bool("quick", false, "tiny population and tick count (CI smoke run)")
	flag.Parse()
	objects, ticks := objects, ticks
	if *quick {
		objects, ticks = 1_500, 4
	}

	cfg := workload.DefaultUniform()
	cfg.NumPoints = objects
	cfg.SpaceSize = region
	cfg.Ticks = ticks
	cfg.Queriers = 0 // this service issues only fence queries
	cfg.Updaters = 0.6
	cfg.MaxSpeed = 300

	gen, err := workload.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Fixed fences, reproducibly random corners.
	r := xrand.New(7)
	fenceRects := make([]geom.Rect, fences)
	for i := range fenceRects {
		c := geom.Pt(r.Range(0, region), r.Range(0, region))
		fenceRects[i] = geom.Square(c, r.Range(400, 1600))
	}

	idx, err := grid.New(grid.CPSTuned(), cfg.Bounds(), cfg.NumPoints)
	if err != nil {
		log.Fatal(err)
	}

	inside := make([]map[uint32]bool, fences) // previous tick's membership
	for i := range inside {
		inside[i] = map[uint32]bool{}
	}
	snapshot := make([]geom.Point, objects)

	var enters, exits int
	for tick := 0; tick < ticks; tick++ {
		objs := gen.Objects()
		for i := range objs {
			snapshot[i] = objs[i].Pos
		}
		idx.Build(snapshot)

		for fi, fence := range fenceRects {
			now := make(map[uint32]bool)
			idx.Query(fence, func(id uint32) { now[id] = true })
			for id := range now {
				if !inside[fi][id] {
					enters++
					logEvent(tick, "ENTER", id, fi, enters+exits)
				}
			}
			for id := range inside[fi] {
				if !now[id] {
					exits++
					logEvent(tick, "EXIT", id, fi, enters+exits)
				}
			}
			inside[fi] = now
		}

		gen.Queriers() // advance the (empty) query stream
		batch := gen.Updates()
		for _, u := range batch {
			idx.Update(u.ID, snapshot[u.ID], u.Pos)
		}
		gen.ApplyUpdates(batch)
	}

	fmt.Printf("\n%d ticks, %d objects, %d fences\n", ticks, objects, fences)
	fmt.Printf("events: %d enters, %d exits\n", enters, exits)

	// Final occupancy report, largest fences first.
	type occ struct {
		fence int
		count int
		area  float64
	}
	occs := make([]occ, fences)
	for fi := range fenceRects {
		occs[fi] = occ{fence: fi, count: len(inside[fi]), area: fenceRects[fi].Area()}
	}
	sort.Slice(occs, func(i, j int) bool { return occs[i].count > occs[j].count })
	fmt.Println("final occupancy (top 5):")
	for _, o := range occs[:5] {
		fmt.Printf("  fence %2d: %4d objects in %.1f km^2\n", o.fence, o.count, o.area/1e6)
	}
}

func logEvent(tick int, kind string, id uint32, fence, total int) {
	// Print only the first handful so the output stays readable.
	if total <= 8 {
		fmt.Printf("tick %2d: %-5s object %5d fence %d\n", tick, kind, id, fence)
	}
}
