// Package examples holds no library code — each subdirectory is a
// runnable main. This test RUNS every example binary with its -quick
// parameters and asserts a zero exit and the expected closing output,
// so API drift in the library breaks the build here instead of on the
// first user who copies an example. CI used to only compile these; the
// PR 2 box-API redesign showed that compiling alone lets behavioural
// breakage through silently.
package examples

import (
	"os/exec"
	"strings"
	"testing"
)

// smokeRuns maps each example directory to lines its -quick run must
// print — the final verification or summary lines, so a crash, a
// mismatch, or an early exit all fail the assertion. geofence runs on
// the epoch-published wrapper, so its service line also proves the
// concurrent publication path works end to end.
var smokeRuns = map[string][]string{
	"quickstart":     {"objects within the central 500x500 square after the run:"},
	"boxjoin":        {"all frames verified against brute force"},
	"collisions":     {"agreement verified"},
	"geofence":       {"final occupancy (top 5):", "epochs published"},
	"fishtank":       {"mean local density:"},
	"trafficmonitor": {"zone counts verified against the brute-force oracle"},
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run per example")
	}
	for dir, wants := range smokeRuns {
		t.Run(dir, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./"+dir, "-quick")
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./%s -quick failed: %v\n%s", dir, err, out)
			}
			for _, want := range wants {
				if !strings.Contains(string(out), want) {
					t.Fatalf("go run ./%s -quick output lacks %q:\n%s", dir, want, out)
				}
			}
		})
	}
}
