// Quickstart: the smallest complete use of the library.
//
// It builds the paper's winning index (the tuned, refactored Simple
// Grid) over a uniform moving-object workload, runs one iterated spatial
// join, and prints the phase breakdown — the numbers Table 2 reports.
//
// Run with:
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -quick   # tiny smoke-test parameters
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "tiny population and tick count (CI smoke run)")
	flag.Parse()

	// 1. A workload: 10K objects in a 10K x 10K space, 20 ticks, half of
	// the objects querying and half updating per tick (a scaled-down
	// version of the paper's Table 1 defaults).
	cfg := workload.DefaultUniform()
	cfg.NumPoints = 10_000
	cfg.SpaceSize = 10_000
	cfg.Ticks = 20
	if *quick {
		cfg.NumPoints = 1_000
		cfg.Ticks = 3
	}

	gen, err := workload.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. An index: the fully tuned refactored Simple Grid — inline
	// buckets (bs=20), fine 64x64 directory, Algorithm 2 range scan.
	idx, err := grid.New(grid.CPSTuned(), cfg.Bounds(), cfg.NumPoints)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The iterated join: per tick, rebuild the index over the current
	// snapshot, answer every querier's range query, apply updates.
	res := core.Run(idx, gen, core.Options{})
	fmt.Println(res)
	fmt.Printf("  build  %.4fs/tick\n", res.AvgBuild().Seconds())
	fmt.Printf("  query  %.4fs/tick over %d queries\n", res.AvgQuery().Seconds(), res.Queries)
	fmt.Printf("  update %.4fs/tick over %d updates\n", res.AvgUpdate().Seconds(), res.Updates)

	// 4. The index is an ordinary range-query structure too: ask a
	// one-off question about the final state.
	idx.Build(snapshot(gen))
	center := geom.Square(geom.Pt(5_000, 5_000), 500)
	count := 0
	idx.Query(center, func(id uint32) { count++ })
	fmt.Printf("objects within the central 500x500 square after the run: %d\n", count)
}

func snapshot(gen *workload.Generator) []geom.Point {
	return gen.Positions(nil)
}
