package memsim

import (
	"testing"

	"repro/internal/xrand"
)

func BenchmarkCacheAccessHit(b *testing.B) {
	c, _ := NewCache(DefaultHierarchy().L1)
	c.Access(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(1)
	}
}

func BenchmarkCacheAccessRandom(b *testing.B) {
	c, _ := NewCache(DefaultHierarchy().L1)
	r := xrand.New(1)
	lines := make([]uint64, 4096)
	for i := range lines {
		lines[i] = uint64(r.Intn(1 << 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(lines[i&4095])
	}
}

func BenchmarkHierarchyTouch(b *testing.B) {
	h := MustNewHierarchy(DefaultHierarchy())
	r := xrand.New(2)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1 << 22))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Read(addrs[i&4095], 8)
	}
}
