package memsim

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func tinyCache() CacheConfig {
	// 4 sets x 2 ways x 64B lines = 512 bytes.
	return CacheConfig{Name: "tiny", SizeBytes: 512, Ways: 2, LineBytes: 64}
}

func TestCacheConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{Name: "zero", SizeBytes: 0, Ways: 2, LineBytes: 64},
		{Name: "ways", SizeBytes: 512, Ways: 0, LineBytes: 64},
		{Name: "line", SizeBytes: 512, Ways: 2, LineBytes: 48},
		{Name: "indivisible", SizeBytes: 500, Ways: 2, LineBytes: 64},
		{Name: "sets", SizeBytes: 3 * 2 * 64, Ways: 2, LineBytes: 64},
	}
	for _, cfg := range bad {
		if _, err := NewCache(cfg); err == nil {
			t.Errorf("config %q accepted", cfg.Name)
		}
	}
	if _, err := NewCache(tinyCache()); err != nil {
		t.Fatal(err)
	}
}

func TestCacheColdMissThenHit(t *testing.T) {
	c, _ := NewCache(tinyCache())
	if c.Access(0) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0) {
		t.Fatal("second access must hit")
	}
	if c.Accesses() != 2 || c.Misses() != 1 {
		t.Fatalf("accesses=%d misses=%d", c.Accesses(), c.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, _ := NewCache(tinyCache()) // 4 sets, 2 ways
	// Lines 0, 4, 8 all map to set 0. With 2 ways, accessing 0,4,8
	// evicts 0.
	c.Access(0)
	c.Access(4)
	c.Access(8)
	if c.Access(0) {
		t.Fatal("line 0 must have been evicted (LRU)")
	}
	// Now set 0 holds {0, 8}; touching 8 keeps it resident.
	if !c.Access(8) {
		t.Fatal("line 8 must be resident")
	}
}

func TestCacheLRURecency(t *testing.T) {
	c, _ := NewCache(tinyCache())
	c.Access(0)
	c.Access(4)
	c.Access(0) // 0 becomes MRU
	c.Access(8) // evicts 4, not 0
	if !c.Access(0) {
		t.Fatal("recently used line 0 was evicted")
	}
	if c.Access(4) {
		t.Fatal("line 4 must have been the LRU victim")
	}
}

func TestCacheSetsIsolated(t *testing.T) {
	c, _ := NewCache(tinyCache())
	// Lines 0..3 map to distinct sets; none should evict another.
	for line := uint64(0); line < 4; line++ {
		c.Access(line)
	}
	for line := uint64(0); line < 4; line++ {
		if !c.Access(line) {
			t.Fatalf("line %d evicted despite distinct sets", line)
		}
	}
}

func TestCacheReset(t *testing.T) {
	c, _ := NewCache(tinyCache())
	c.Access(1)
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Fatal("counters survived reset")
	}
	if c.Access(1) {
		t.Fatal("contents survived reset")
	}
}

func TestPropCacheHitRatioSane(t *testing.T) {
	f := func(seed uint64) bool {
		c, _ := NewCache(tinyCache())
		r := xrand.New(seed)
		for i := 0; i < 1000; i++ {
			c.Access(uint64(r.Intn(64)))
		}
		return c.Misses() <= c.Accesses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	// A working set no larger than the cache must stop missing after the
	// first pass (with power-of-two strides there is no conflict issue
	// here: 8 lines over 4 sets x 2 ways map perfectly).
	c, _ := NewCache(tinyCache())
	for pass := 0; pass < 10; pass++ {
		for line := uint64(0); line < 8; line++ {
			c.Access(line)
		}
	}
	if c.Misses() != 8 {
		t.Fatalf("misses = %d, want 8 cold misses only", c.Misses())
	}
}

func TestHierarchyMissCascade(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchy())
	h.Read(0, 8)
	p := h.Report()
	if p.L1Misses != 1 || p.L2Misses != 1 || p.L3Misses != 1 {
		t.Fatalf("cold read must miss all levels: %+v", p)
	}
	h.Read(0, 8)
	p = h.Report()
	if p.L1Misses != 1 {
		t.Fatalf("warm read must hit L1: %+v", p)
	}
}

func TestHierarchySpanningTouch(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchy())
	// 130 bytes starting at 0 spans 3 lines (0..63, 64..127, 128..191).
	h.Read(0, 130)
	if p := h.Report(); p.L1Misses != 3 {
		t.Fatalf("spanning touch: %d L1 misses, want 3", p.L1Misses)
	}
	h2 := MustNewHierarchy(DefaultHierarchy())
	// 2 bytes crossing a line boundary touches 2 lines.
	h2.Read(63, 2)
	if p := h2.Report(); p.L1Misses != 2 {
		t.Fatalf("boundary touch: %d L1 misses, want 2", p.L1Misses)
	}
	h3 := MustNewHierarchy(DefaultHierarchy())
	h3.Read(0, 0)
	if p := h3.Report(); p.L1Misses != 0 {
		t.Fatal("zero-size touch must not access")
	}
}

func TestHierarchyCPIModel(t *testing.T) {
	cfg := DefaultHierarchy()
	h := MustNewHierarchy(cfg)
	h.Exec(1000)
	p := h.Report()
	if p.CPI != cfg.BaseCPI {
		t.Fatalf("miss-free CPI = %g, want %g", p.CPI, cfg.BaseCPI)
	}
	// One DRAM access on top raises CPI by MemCycles/1000.
	h.Read(1<<30, 8)
	p = h.Report()
	want := cfg.BaseCPI + cfg.MemCycles/1000
	if p.CPI < want*0.999 || p.CPI > want*1.001 {
		t.Fatalf("CPI = %g, want %g", p.CPI, want)
	}
}

func TestHierarchyZeroInstructionCPI(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchy())
	if p := h.Report(); p.CPI != 0 {
		t.Fatalf("CPI without instructions = %g", p.CPI)
	}
}

func TestHierarchyInclusionOfMissCounts(t *testing.T) {
	// L2 misses can never exceed L1 misses, L3 never exceed L2: lower
	// levels are only consulted on upper-level misses.
	h := MustNewHierarchy(DefaultHierarchy())
	r := xrand.New(3)
	for i := 0; i < 100000; i++ {
		h.Read(uint64(r.Intn(1<<22)), 8)
	}
	p := h.Report()
	if p.L2Misses > p.L1Misses || p.L3Misses > p.L2Misses {
		t.Fatalf("miss ordering violated: %+v", p)
	}
	if p.L1Misses == 0 {
		t.Fatal("random 4MiB working set must miss L1 sometimes")
	}
}

func TestHierarchyLocalityVisible(t *testing.T) {
	// Sequential streaming over 1 MiB must miss far less than random
	// access over the same footprint: 8-byte sequential touches share
	// lines.
	seq := MustNewHierarchy(DefaultHierarchy())
	for addr := uint64(0); addr < 1<<20; addr += 8 {
		seq.Read(addr, 8)
	}
	rnd := MustNewHierarchy(DefaultHierarchy())
	r := xrand.New(7)
	for i := 0; i < (1<<20)/8; i++ {
		rnd.Read(uint64(r.Intn(1<<20)), 8)
	}
	ps, pr := seq.Report(), rnd.Report()
	if ps.L1Misses*4 > pr.L1Misses {
		t.Fatalf("sequential (%d misses) must beat random (%d misses) by >= 4x",
			ps.L1Misses, pr.L1Misses)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchy())
	h.Read(0, 64)
	h.Exec(10)
	h.Reset()
	p := h.Report()
	if p.Instructions != 0 || p.L1Misses != 0 {
		t.Fatalf("reset left counters: %+v", p)
	}
}

func TestProfileString(t *testing.T) {
	p := Profile{CPI: 1.5, Instructions: 100, L1Misses: 3, L2Misses: 2, L3Misses: 1}
	s := p.String()
	if s == "" {
		t.Fatal("empty profile string")
	}
}
