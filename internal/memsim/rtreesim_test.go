package memsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rtree"
	"repro/internal/workload"
)

// TestRTreeSimMatchesRealRTree is the functional anchor of the R-tree
// simulation: the instrumented replay must compute the exact same join
// result as the real STR R-tree run by the real driver.
func TestRTreeSimMatchesRealRTree(t *testing.T) {
	cfg := simTestConfig()
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ProfileGrid(GridSimConfig{Kind: GridRTree, BS: rtree.DefaultFanout},
		trace, DefaultHierarchy(), 0)
	if err != nil {
		t.Fatal(err)
	}
	real := core.Run(rtree.MustNew(rtree.DefaultFanout), workload.NewPlayer(trace), core.Options{})
	if res.Pairs != real.Pairs {
		t.Fatalf("simulated R-tree found %d pairs, real one %d", res.Pairs, real.Pairs)
	}
	if res.Queries != real.Queries {
		t.Fatalf("simulated %d queries, real %d", res.Queries, real.Queries)
	}
	if res.Profile.Instructions == 0 || res.Profile.L1Misses == 0 {
		t.Fatalf("empty profile: %+v", res.Profile)
	}
}

// TestRTreeSimAgreesWithGridSim pins the cross-technique comparison the
// new kind exists for: both simulated techniques must report the
// identical join over the same trace.
func TestRTreeSimAgreesWithGridSim(t *testing.T) {
	cfg := simTestConfig()
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := ProfileGrid(GridSimConfig{Kind: GridRTree, BS: 16}, trace, DefaultHierarchy(), 0)
	if err != nil {
		t.Fatal(err)
	}
	gres, err := ProfileGrid(PaperAfter(), trace, DefaultHierarchy(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rres.Pairs != gres.Pairs {
		t.Fatalf("rtree sim found %d pairs, grid sim %d", rres.Pairs, gres.Pairs)
	}
}

func TestRTreeSimConfigValidation(t *testing.T) {
	if err := (GridSimConfig{Kind: GridRTree, BS: 1}).Validate(); err == nil {
		t.Fatal("fanout 1 accepted")
	}
	// CPS is ignored for the R-tree kind; zero must be fine.
	if err := (GridSimConfig{Kind: GridRTree, BS: 16}).Validate(); err != nil {
		t.Fatal(err)
	}
	if GridRTree.String() != "rtree" {
		t.Fatalf("String() = %q", GridRTree.String())
	}
}
