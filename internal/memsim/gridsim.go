package memsim

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/workload"
)

// GridKind selects which Simple Grid implementation is simulated.
type GridKind int

const (
	// GridOriginal is the Figure 3a structure with the Algorithm 1
	// full-directory query scan — the "Before" row of Table 3.
	GridOriginal GridKind = iota
	// GridRefactored is the Figure 3b structure with the Algorithm 2
	// range scan — the "After" row of Table 3.
	GridRefactored
	// GridIntrusive is the handle-based u-grid layout (one 12-byte node
	// per object, O(1) updates) with the Algorithm 2 range scan; not a
	// Table 3 row, but the hardware-level completion of the update-path
	// ablation (bench extension "ext-handles").
	GridIntrusive
	// GridRTree is not a grid at all: the static STR-packed R-tree
	// (internal/rtree, simulated in rtreesim.go), so the profiler can
	// put the study's grid-vs-R-tree axis on Table-3 footing. BS is the
	// fanout; CPS is ignored.
	GridRTree
)

// String implements fmt.Stringer.
func (k GridKind) String() string {
	switch k {
	case GridOriginal:
		return "original"
	case GridIntrusive:
		return "intrusive"
	case GridRTree:
		return "rtree"
	default:
		return "refactored"
	}
}

// GridSimConfig fixes the simulated implementation and its tuning.
type GridSimConfig struct {
	Kind GridKind
	BS   int
	CPS  int
}

// PaperBefore is the configuration of Table 3's "Before" row: the
// original implementation at its own optimum (bs=4, cps=13).
func PaperBefore() GridSimConfig { return GridSimConfig{Kind: GridOriginal, BS: 4, CPS: 13} }

// PaperAfter is the configuration of Table 3's "After" row: the
// refactored implementation at its optimum (bs=20, cps=64).
func PaperAfter() GridSimConfig { return GridSimConfig{Kind: GridRefactored, BS: 20, CPS: 64} }

// Validate reports the first problem with the configuration, or nil.
func (c GridSimConfig) Validate() error {
	if c.Kind == GridRTree {
		if c.BS < 2 {
			return fmt.Errorf("memsim: rtree fanout (bs) must be >= 2, got %d", c.BS)
		}
		return nil
	}
	if c.BS <= 0 || c.CPS <= 0 {
		return fmt.Errorf("memsim: bs and cps must be positive, got bs=%d cps=%d", c.BS, c.CPS)
	}
	if c.Kind != GridOriginal && c.Kind != GridRefactored && c.Kind != GridIntrusive {
		return fmt.Errorf("memsim: unknown grid kind %d", int(c.Kind))
	}
	return nil
}

// Object sizes of the C++ implementations the paper analyses
// (Section 3.1): 16-byte directory cells with a counter, 32-byte buckets
// and 24-byte doubly-linked entry nodes before; 8-byte pointer-only cells
// and buckets holding 8-byte entry references inline after. The base
// table stores two 4-byte coordinates per point.
const (
	origCellBytes   = 16
	origBucketBytes = 32
	origNodeBytes   = 24
	refCellBytes    = 8
	refBucketHeader = 16
	refEntryBytes   = 8
	pointBytes      = 8
	intrNodeBytes   = 12 // prev, next, cell as 32-bit ints
	intrCellBytes   = 4  // head object ID per cell
)

// Instruction cost model (instructions per abstract operation). The
// absolute values are calibrated to the order of magnitude a compiled
// implementation needs; Table 3's message lives in the ratios, which are
// driven by how often each operation runs, not by these constants.
const (
	insCellVisit   = 10 // getCell + rectangle construction + predicate
	insBucketHop   = 4  // load next pointer, compare
	insNodeHop     = 5  // doubly-linked node traversal step
	insEntryScan   = 2  // advance within an inline entry array
	insPointTest   = 8  // load coordinates, two comparisons, branch
	insEmit        = 2  // report a result
	insQuerySetup  = 12 // query rectangle normalization
	insRangeSetup  = 16 // Algorithm 2 cell-range computation (divisions)
	insInsert      = 18 // cell lookup, bucket head maintenance
	insRemoveBase  = 12 // cell lookup and list fix-up on removal
	insSnapshotPer = 2  // per-point snapshot refresh (streaming copy)
)

// simGrid replays grid operations against the cache hierarchy. It keeps
// a functional shadow of the structure (so traversals are exact, not
// statistical) and threads every memory touch through h.
type simGrid struct {
	cfg      GridSimConfig
	h        *Hierarchy
	bounds   geom.Rect
	cellSize float32
	invCell  float32

	pts       []geom.Point
	baseAddr  uint64
	dirAddr   uint64
	nodesAddr uint64 // intrusive layout: node arena base

	heap uint64 // bump allocator cursor

	// original layout shadow
	oCells []oCell
	oFree  *oNode
	oFreeB *oBucket

	// refactored layout shadow
	rCells []*rBucket
	rFree  *rBucket

	// intrusive layout shadow: one node per object ID
	iCells []int32
	iNodes []iNode
}

// iNode mirrors internal/grid's intrusive node for the simulation.
type iNode struct {
	prev, next int32
	cell       int32
}

// intrNilID terminates simulated intrusive lists.
const intrNilID = int32(-1)

type oNode struct {
	addr       uint64
	prev, next *oNode
	id         uint32
}

type oBucket struct {
	addr  uint64
	next  *oBucket
	count int
	head  *oNode
}

type oCell struct {
	count int
	head  *oBucket
}

type rBucket struct {
	addr uint64
	next *rBucket
	ids  []uint32
}

func newSimGrid(cfg GridSimConfig, h *Hierarchy, bounds geom.Rect, numPoints int) *simGrid {
	g := &simGrid{
		cfg:      cfg,
		h:        h,
		bounds:   bounds,
		cellSize: bounds.Width() / float32(cfg.CPS),
	}
	g.invCell = 1 / g.cellSize
	cells := cfg.CPS * cfg.CPS
	g.baseAddr = g.alloc(uint64(numPoints) * pointBytes)
	switch cfg.Kind {
	case GridOriginal:
		g.dirAddr = g.alloc(uint64(cells) * origCellBytes)
		g.oCells = make([]oCell, cells)
	case GridIntrusive:
		g.dirAddr = g.alloc(uint64(cells) * intrCellBytes)
		g.nodesAddr = g.alloc(uint64(numPoints) * intrNodeBytes)
		g.iCells = make([]int32, cells)
		g.iNodes = make([]iNode, numPoints)
	default:
		g.dirAddr = g.alloc(uint64(cells) * refCellBytes)
		g.rCells = make([]*rBucket, cells)
	}
	return g
}

// alloc hands out 16-byte-aligned synthetic addresses.
func (g *simGrid) alloc(size uint64) uint64 {
	addr := g.heap
	g.heap += (size + 15) &^ 15
	return addr
}

func (g *simGrid) axisCell(d float32) int {
	// Clamp in float space before truncating, mirroring the real grid's
	// cellMapper: out-of-range float -> int conversion is
	// implementation-specific and would clamp far-out coordinates to the
	// wrong side.
	f := d * g.invCell
	if !(f > 0) {
		return 0
	}
	if f >= float32(g.cfg.CPS) {
		return g.cfg.CPS - 1
	}
	return int(f)
}

func (g *simGrid) cellIndexFor(p geom.Point) int {
	return g.axisCell(p.Y-g.bounds.MinY)*g.cfg.CPS + g.axisCell(p.X-g.bounds.MinX)
}

func (g *simGrid) cellRect(cx, cy int) geom.Rect {
	x0 := g.bounds.MinX + float32(cx)*g.cellSize
	y0 := g.bounds.MinY + float32(cy)*g.cellSize
	return geom.Rect{MinX: x0, MinY: y0, MaxX: x0 + g.cellSize, MaxY: y0 + g.cellSize}
}

func (g *simGrid) cellAddr(c int) uint64 {
	return g.dirAddr + uint64(c)*uint64(cellBytes(g.cfg.Kind))
}

// nodeAddr returns the simulated address of intrusive node id.
func (g *simGrid) nodeAddr(id int32) uint64 {
	return g.nodesAddr + uint64(id)*intrNodeBytes
}

// build mirrors Grid.Build: refresh the snapshot (streaming write of the
// base table) and insert every point. Shadow structures are reset but
// simulated addresses are NOT re-randomized: like the real
// implementations, arenas are reused tick over tick.
func (g *simGrid) build(pts []geom.Point) {
	g.pts = pts
	g.h.Write(g.baseAddr, uint64(len(pts))*pointBytes)
	g.h.Exec(len(pts) * insSnapshotPer)
	switch g.cfg.Kind {
	case GridOriginal:
		for i := range g.oCells {
			g.oCells[i] = oCell{}
		}
		g.oFree, g.oFreeB = nil, nil
	case GridIntrusive:
		for i := range g.iCells {
			g.iCells[i] = intrNilID
		}
		for i := range g.iNodes {
			g.iNodes[i] = iNode{prev: intrNilID, next: intrNilID, cell: intrNilID}
		}
	default:
		for i := range g.rCells {
			g.rCells[i] = nil
		}
		g.rFree = nil
	}
	for i := range pts {
		g.insert(uint32(i), pts[i])
	}
}

func (g *simGrid) insert(id uint32, p geom.Point) {
	c := g.cellIndexFor(p)
	g.h.Exec(insInsert)
	g.h.Read(g.cellAddr(c), uint64(cellBytes(g.cfg.Kind)))
	switch g.cfg.Kind {
	case GridOriginal:
		g.insertOriginal(c, id)
	case GridIntrusive:
		g.insertIntrusive(c, id)
	default:
		g.insertRefactored(c, id)
	}
	g.h.Write(g.cellAddr(c), uint64(cellBytes(g.cfg.Kind)))
}

func (g *simGrid) insertIntrusive(c int, id uint32) {
	head := g.iCells[c]
	g.iNodes[id] = iNode{prev: intrNilID, next: head, cell: int32(c)}
	g.h.Write(g.nodeAddr(int32(id)), intrNodeBytes)
	if head != intrNilID {
		g.iNodes[head].prev = int32(id)
		g.h.Write(g.nodeAddr(head), intrNodeBytes)
	}
	g.iCells[c] = int32(id)
}

func cellBytes(k GridKind) int {
	switch k {
	case GridOriginal:
		return origCellBytes
	case GridIntrusive:
		return intrCellBytes
	default:
		return refCellBytes
	}
}

func (g *simGrid) insertOriginal(c int, id uint32) {
	cell := &g.oCells[c]
	b := cell.head
	if b == nil || b.count >= g.cfg.BS {
		nb := g.allocOBucket()
		nb.next = b
		nb.count = 0
		nb.head = nil
		cell.head = nb
		g.h.Write(nb.addr, origBucketBytes)
		b = nb
	} else {
		g.h.Read(b.addr, origBucketBytes)
	}
	n := g.allocONode()
	n.id = id
	n.prev = nil
	n.next = b.head
	g.h.Write(n.addr, origNodeBytes)
	if b.head != nil {
		b.head.prev = n
		g.h.Write(b.head.addr, origNodeBytes)
	}
	b.head = n
	b.count++
	cell.count++
	g.h.Write(b.addr, origBucketBytes)
}

func (g *simGrid) allocONode() *oNode {
	if n := g.oFree; n != nil {
		g.oFree = n.next
		return n
	}
	return &oNode{addr: g.alloc(origNodeBytes)}
}

func (g *simGrid) allocOBucket() *oBucket {
	if b := g.oFreeB; b != nil {
		g.oFreeB = b.next
		return b
	}
	return &oBucket{addr: g.alloc(origBucketBytes)}
}

func (g *simGrid) insertRefactored(c int, id uint32) {
	head := g.rCells[c]
	if head == nil || len(head.ids) >= g.cfg.BS {
		nb := g.allocRBucket()
		nb.next = head
		nb.ids = nb.ids[:0]
		g.rCells[c] = nb
		g.h.Write(nb.addr, refBucketHeader)
		head = nb
	} else {
		g.h.Read(head.addr, refBucketHeader)
	}
	g.h.Write(head.addr+refBucketHeader+uint64(len(head.ids))*refEntryBytes, refEntryBytes)
	head.ids = append(head.ids, id)
	g.h.Write(head.addr, refBucketHeader) // count update
}

func (g *simGrid) allocRBucket() *rBucket {
	if b := g.rFree; b != nil {
		g.rFree = b.next
		return b
	}
	return &rBucket{
		addr: g.alloc(refBucketHeader + uint64(g.cfg.BS)*refEntryBytes),
		ids:  make([]uint32, 0, g.cfg.BS),
	}
}

func (g *simGrid) remove(id uint32, p geom.Point) {
	c := g.cellIndexFor(p)
	g.h.Exec(insRemoveBase)
	g.h.Read(g.cellAddr(c), uint64(cellBytes(g.cfg.Kind)))
	switch g.cfg.Kind {
	case GridOriginal:
		g.removeOriginal(c, id)
	case GridIntrusive:
		g.removeIntrusive(id)
	default:
		g.removeRefactored(c, id)
	}
	g.h.Write(g.cellAddr(c), uint64(cellBytes(g.cfg.Kind)))
}

// removeIntrusive is the O(1) handle unlink: the node arena is indexed
// by object ID, so no search happens — the operation Table 2's original
// update numbers imply.
func (g *simGrid) removeIntrusive(id uint32) {
	n := g.iNodes[id]
	g.h.Read(g.nodeAddr(int32(id)), intrNodeBytes)
	if n.cell == intrNilID {
		panic(fmt.Sprintf("memsim: remove of unknown entry %d", id))
	}
	if n.prev != intrNilID {
		g.iNodes[n.prev].next = n.next
		g.h.Write(g.nodeAddr(n.prev), intrNodeBytes)
	} else {
		g.iCells[n.cell] = n.next
	}
	if n.next != intrNilID {
		g.iNodes[n.next].prev = n.prev
		g.h.Write(g.nodeAddr(n.next), intrNodeBytes)
	}
	g.iNodes[id] = iNode{prev: intrNilID, next: intrNilID, cell: intrNilID}
	g.h.Write(g.nodeAddr(int32(id)), intrNodeBytes)
}

func (g *simGrid) removeOriginal(c int, id uint32) {
	cell := &g.oCells[c]
	var prevB *oBucket
	for b := cell.head; b != nil; b = b.next {
		g.h.Read(b.addr, origBucketBytes)
		g.h.Exec(insBucketHop)
		for n := b.head; n != nil; n = n.next {
			g.h.Read(n.addr, origNodeBytes)
			g.h.Exec(insNodeHop)
			if n.id != id {
				continue
			}
			if n.prev != nil {
				n.prev.next = n.next
				g.h.Write(n.prev.addr, origNodeBytes)
			} else {
				b.head = n.next
			}
			if n.next != nil {
				n.next.prev = n.prev
				g.h.Write(n.next.addr, origNodeBytes)
			}
			n.next = g.oFree
			g.oFree = n
			b.count--
			cell.count--
			g.h.Write(b.addr, origBucketBytes)
			if b.count == 0 {
				if prevB != nil {
					prevB.next = b.next
					g.h.Write(prevB.addr, origBucketBytes)
				} else {
					cell.head = b.next
				}
				b.next = g.oFreeB
				g.oFreeB = b
			}
			return
		}
		prevB = b
	}
	panic(fmt.Sprintf("memsim: remove of unknown entry %d", id))
}

func (g *simGrid) removeRefactored(c int, id uint32) {
	head := g.rCells[c]
	for b := head; b != nil; b = b.next {
		g.h.Read(b.addr, refBucketHeader)
		g.h.Exec(insBucketHop)
		g.h.Read(b.addr+refBucketHeader, uint64(len(b.ids))*refEntryBytes)
		for j, v := range b.ids {
			g.h.Exec(insEntryScan)
			if v != id {
				continue
			}
			hn := len(head.ids) - 1
			b.ids[j] = head.ids[hn]
			g.h.Read(head.addr+refBucketHeader+uint64(hn)*refEntryBytes, refEntryBytes)
			g.h.Write(b.addr+refBucketHeader+uint64(j)*refEntryBytes, refEntryBytes)
			head.ids = head.ids[:hn]
			g.h.Write(head.addr, refBucketHeader)
			if hn == 0 {
				g.rCells[c] = head.next
				head.next = g.rFree
				g.rFree = head
			}
			return
		}
	}
	panic(fmt.Sprintf("memsim: remove of unknown entry %d", id))
}

// query mirrors the variant's range query and returns the result count.
func (g *simGrid) query(r geom.Rect) int {
	g.h.Exec(insQuerySetup)
	if g.cfg.Kind == GridOriginal {
		return g.queryFullScan(r)
	}
	return g.queryRangeScan(r)
}

// queryFullScan is Algorithm 1 over the original structure.
func (g *simGrid) queryFullScan(r geom.Rect) int {
	found := 0
	cps := g.cfg.CPS
	for cy := 0; cy < cps; cy++ {
		for cx := 0; cx < cps; cx++ {
			c := cy*cps + cx
			g.h.Exec(insCellVisit)
			g.h.Read(g.cellAddr(c), origCellBytes)
			cell := g.cellRect(cx, cy)
			if r.ContainsRect(cell) {
				found += g.scanCellOriginal(c, nil)
			} else if r.Intersects(cell) {
				found += g.scanCellOriginal(c, &r)
			}
		}
	}
	return found
}

// queryRangeScan is Algorithm 2 over the refactored structure.
func (g *simGrid) queryRangeScan(r geom.Rect) int {
	g.h.Exec(insRangeSetup)
	found := 0
	cps := g.cfg.CPS
	xmin := g.axisCell(r.MinX - g.bounds.MinX)
	xmax := g.axisCell(r.MaxX - g.bounds.MinX)
	ymin := g.axisCell(r.MinY - g.bounds.MinY)
	ymax := g.axisCell(r.MaxY - g.bounds.MinY)
	for cy := ymin; cy <= ymax; cy++ {
		for cx := xmin; cx <= xmax; cx++ {
			c := cy*cps + cx
			g.h.Exec(insCellVisit)
			g.h.Read(g.cellAddr(c), uint64(cellBytes(g.cfg.Kind)))
			cell := g.cellRect(cx, cy)
			scan := g.scanCellRefactored
			if g.cfg.Kind == GridIntrusive {
				scan = g.scanCellIntrusive
			}
			if r.ContainsRect(cell) {
				found += scan(c, nil)
			} else if r.Intersects(cell) {
				found += scan(c, &r)
			}
		}
	}
	return found
}

// scanCellIntrusive walks cell c's intrusive list: one scattered node
// read per entry (the locality price of the O(1)-update design).
func (g *simGrid) scanCellIntrusive(c int, filter *geom.Rect) int {
	found := 0
	for id := g.iCells[c]; id != intrNilID; id = g.iNodes[id].next {
		g.h.Read(g.nodeAddr(id), intrNodeBytes)
		g.h.Exec(insNodeHop)
		if filter != nil {
			g.h.Read(g.baseAddr+uint64(id)*pointBytes, pointBytes)
			g.h.Exec(insPointTest)
			if !g.pts[id].In(*filter) {
				continue
			}
		}
		g.h.Exec(insEmit)
		found++
	}
	return found
}

// scanCellOriginal walks cell c's buckets and nodes; with a non-nil
// filter each entry's coordinates are fetched from the base table and
// tested.
func (g *simGrid) scanCellOriginal(c int, filter *geom.Rect) int {
	found := 0
	for b := g.oCells[c].head; b != nil; b = b.next {
		g.h.Read(b.addr, origBucketBytes)
		g.h.Exec(insBucketHop)
		for n := b.head; n != nil; n = n.next {
			g.h.Read(n.addr, origNodeBytes)
			g.h.Exec(insNodeHop)
			if filter != nil {
				g.h.Read(g.baseAddr+uint64(n.id)*pointBytes, pointBytes)
				g.h.Exec(insPointTest)
				if !g.pts[n.id].In(*filter) {
					continue
				}
			}
			g.h.Exec(insEmit)
			found++
		}
	}
	return found
}

// scanCellRefactored walks cell c's buckets, reading each bucket's entry
// run as one contiguous span.
func (g *simGrid) scanCellRefactored(c int, filter *geom.Rect) int {
	found := 0
	for b := g.rCells[c]; b != nil; b = b.next {
		g.h.Read(b.addr, refBucketHeader)
		g.h.Exec(insBucketHop)
		g.h.Read(b.addr+refBucketHeader, uint64(len(b.ids))*refEntryBytes)
		for _, id := range b.ids {
			g.h.Exec(insEntryScan)
			if filter != nil {
				g.h.Read(g.baseAddr+uint64(id)*pointBytes, pointBytes)
				g.h.Exec(insPointTest)
				if !g.pts[id].In(*filter) {
					continue
				}
			}
			g.h.Exec(insEmit)
			found++
		}
	}
	return found
}

// ProfileResult couples the hardware profile with the join statistics of
// the replayed run, so callers can verify both implementations computed
// the same join while disagreeing on cost.
type ProfileResult struct {
	Profile Profile
	Pairs   int64
	Queries int64
	Updates int64
}

// simIndex is the slice of the simulated-technique API the replay
// drives, implemented by simGrid and simRTree.
type simIndex interface {
	build(pts []geom.Point)
	query(r geom.Rect) int
	remove(id uint32, p geom.Point)
	insert(id uint32, p geom.Point)
}

// ProfileGrid replays the trace's full build/query/update cycle on the
// simulated implementation and returns the profile — one Table 3 row.
// ticks caps the replay (0 = all recorded ticks).
func ProfileGrid(cfg GridSimConfig, trace *workload.Trace, hcfg HierarchyConfig, ticks int) (ProfileResult, error) {
	if err := cfg.Validate(); err != nil {
		return ProfileResult{}, err
	}
	h, err := NewHierarchy(hcfg)
	if err != nil {
		return ProfileResult{}, err
	}
	if ticks <= 0 || ticks > len(trace.Ticks) {
		ticks = len(trace.Ticks)
	}
	bounds := trace.Config.Bounds()
	var g simIndex
	if cfg.Kind == GridRTree {
		g = newSimRTree(cfg.BS, h, len(trace.Initial))
	} else {
		g = newSimGrid(cfg, h, bounds, len(trace.Initial))
	}
	player := workload.NewPlayer(trace)
	snapshot := make([]geom.Point, len(trace.Initial))
	var res ProfileResult
	for t := 0; t < ticks; t++ {
		objs := player.Objects()
		for i := range objs {
			snapshot[i] = objs[i].Pos
		}
		g.build(snapshot)
		for _, q := range player.Queriers() {
			res.Pairs += int64(g.query(player.QueryRect(q)))
			res.Queries++
		}
		batch := player.Updates()
		for _, u := range batch {
			g.remove(u.ID, snapshot[u.ID])
			g.insert(u.ID, u.Pos)
			res.Updates++
		}
		player.ApplyUpdates(batch)
	}
	res.Profile = h.Report()
	return res, nil
}
