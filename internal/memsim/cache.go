// Package memsim is the hardware-profiling substitute for the paper's
// Table 3. The original study read CPI, instruction counts, and L1/L2/L3
// data cache misses from the CPU's performance counters; a pure-Go
// reproduction has no such counters, so this package provides a
// trace-driven memory-hierarchy simulator instead: a three-level
// set-associative LRU cache model plus a simple instruction/CPI cost
// model. Instrumented re-implementations of the Simple Grid (gridsim.go)
// replay the paper's default workload through it, before and after the
// re-implementation, which preserves exactly the comparison Table 3
// makes — how many memory touches and instructions each implementation
// needs — without claiming cycle accuracy.
package memsim

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
}

// Validate reports the first problem with the configuration, or nil.
func (c CacheConfig) Validate() error {
	switch {
	case c.SizeBytes <= 0:
		return fmt.Errorf("memsim: %s size must be positive", c.Name)
	case c.Ways <= 0:
		return fmt.Errorf("memsim: %s associativity must be positive", c.Name)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("memsim: %s line size must be a positive power of two, got %d", c.Name, c.LineBytes)
	case c.SizeBytes%(c.Ways*c.LineBytes) != 0:
		return fmt.Errorf("memsim: %s size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.LineBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("memsim: %s set count %d must be a power of two", c.Name, sets)
	}
	return nil
}

// Cache is a set-associative cache with true-LRU replacement. Tags store
// the full line number; a zero slot means empty (line numbers are offset
// by 1 to keep 0 free).
type Cache struct {
	cfg       CacheConfig
	sets      int
	setMask   uint64
	lineShift uint
	tags      []uint64 // sets*ways, ordered most- to least-recently used per set
	accesses  uint64
	misses    uint64
}

// NewCache builds a cache from the configuration.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	c := &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   uint64(sets - 1),
		lineShift: log2(uint64(cfg.LineBytes)),
		tags:      make([]uint64, sets*cfg.Ways),
	}
	return c, nil
}

func log2(v uint64) uint {
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}

// Access touches the cache line containing the given line number and
// reports whether it hit. On a miss the line is installed, evicting the
// set's least-recently-used entry.
func (c *Cache) Access(line uint64) bool {
	c.accesses++
	tag := line + 1 // keep 0 as the empty marker
	set := int(line&c.setMask) * c.cfg.Ways
	ways := c.tags[set : set+c.cfg.Ways]
	for i, t := range ways {
		if t == tag {
			// Move to front (most recently used).
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			return true
		}
	}
	c.misses++
	copy(ways[1:], ways[:len(ways)-1])
	ways[0] = tag
	return false
}

// LineShift returns log2 of the line size.
func (c *Cache) LineShift() uint { return c.lineShift }

// Accesses returns the number of accesses so far.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of misses so far.
func (c *Cache) Misses() uint64 { return c.misses }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	c.accesses, c.misses = 0, 0
}

// HierarchyConfig describes the simulated machine: three cache levels and
// the latency model used to derive CPI.
type HierarchyConfig struct {
	L1, L2, L3 CacheConfig
	// BaseCPI is the cycles-per-instruction of a miss-free execution
	// (superscalar cores retire several instructions per cycle).
	BaseCPI float64
	// Latencies in cycles charged per miss serviced at each point.
	L2HitCycles float64
	L3HitCycles float64
	MemCycles   float64
}

// DefaultHierarchy models the paper's quad-core Intel i7 (Sandy
// Bridge-class): 32 KiB 8-way L1d, 256 KiB 8-way L2, 8 MiB 16-way L3,
// 64-byte lines.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1:          CacheConfig{Name: "L1d", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L2:          CacheConfig{Name: "L2", SizeBytes: 256 << 10, Ways: 8, LineBytes: 64},
		L3:          CacheConfig{Name: "L3", SizeBytes: 8 << 20, Ways: 16, LineBytes: 64},
		BaseCPI:     0.4,
		L2HitCycles: 12,
		L3HitCycles: 40,
		MemCycles:   180,
	}
}

// Hierarchy threads accesses through the three levels (inclusive,
// write-allocate, writes modelled like reads for miss accounting, as PMU
// data-cache-miss counters do).
type Hierarchy struct {
	cfg          HierarchyConfig
	l1, l2, l3   *Cache
	instructions uint64
	memAccesses  uint64
}

// NewHierarchy builds the simulated machine.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1, err := NewCache(cfg.L1)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache(cfg.L2)
	if err != nil {
		return nil, err
	}
	l3, err := NewCache(cfg.L3)
	if err != nil {
		return nil, err
	}
	if l1.lineShift != l2.lineShift || l2.lineShift != l3.lineShift {
		return nil, fmt.Errorf("memsim: all levels must share one line size")
	}
	return &Hierarchy{cfg: cfg, l1: l1, l2: l2, l3: l3}, nil
}

// MustNewHierarchy is NewHierarchy for known-good configurations.
func MustNewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Touch accesses [addr, addr+size) once, line by line.
func (h *Hierarchy) Touch(addr, size uint64) {
	if size == 0 {
		return
	}
	first := addr >> h.l1.lineShift
	last := (addr + size - 1) >> h.l1.lineShift
	for line := first; line <= last; line++ {
		if h.l1.Access(line) {
			continue
		}
		if h.l2.Access(line) {
			continue
		}
		if h.l3.Access(line) {
			continue
		}
		h.memAccesses++
	}
}

// Read and Write both count as data accesses; PMU miss counters make the
// same simplification. Separate names keep call sites self-documenting.
func (h *Hierarchy) Read(addr, size uint64) { h.Touch(addr, size) }

// Write models a write-allocate store.
func (h *Hierarchy) Write(addr, size uint64) { h.Touch(addr, size) }

// Exec accounts n executed instructions.
func (h *Hierarchy) Exec(n int) { h.instructions += uint64(n) }

// Instructions returns the executed-instruction count.
func (h *Hierarchy) Instructions() uint64 { return h.instructions }

// Profile is the Table 3 row: CPI, total instructions, and data cache
// misses per level.
type Profile struct {
	CPI          float64
	Instructions uint64
	L1Misses     uint64
	L2Misses     uint64
	L3Misses     uint64
}

// Report derives the profile from the counters: every instruction costs
// BaseCPI cycles, every L1 miss serviced by L2 adds L2HitCycles, and so
// on down the hierarchy.
func (h *Hierarchy) Report() Profile {
	l1m, l2m, l3m := h.l1.Misses(), h.l2.Misses(), h.l3.Misses()
	cycles := float64(h.instructions) * h.cfg.BaseCPI
	cycles += float64(l1m-l2m) * h.cfg.L2HitCycles // L1 misses that hit in L2
	cycles += float64(l2m-l3m) * h.cfg.L3HitCycles // L2 misses that hit in L3
	cycles += float64(l3m) * h.cfg.MemCycles       // misses all the way to DRAM
	cpi := 0.0
	if h.instructions > 0 {
		cpi = cycles / float64(h.instructions)
	}
	return Profile{
		CPI:          cpi,
		Instructions: h.instructions,
		L1Misses:     l1m,
		L2Misses:     l2m,
		L3Misses:     l3m,
	}
}

// Reset clears all counters and cache contents.
func (h *Hierarchy) Reset() {
	h.l1.Reset()
	h.l2.Reset()
	h.l3.Reset()
	h.instructions = 0
	h.memAccesses = 0
}

// String summarizes a profile on one line.
func (p Profile) String() string {
	return fmt.Sprintf("CPI %.2f, %d ins, misses L1 %d / L2 %d / L3 %d",
		p.CPI, p.Instructions, p.L1Misses, p.L2Misses, p.L3Misses)
}
