package memsim

import (
	"math"

	"repro/internal/geom"
	"repro/internal/sortutil"
)

// This file simulates the study's other technique family on the cache
// hierarchy: the static STR-packed R-tree (internal/rtree), so
// profilegrid can put grid-vs-R-tree on the same Table-3 footing the
// paper puts its grid before/after pair. Like gridsim, the simulator
// keeps a functional shadow of the structure — the per-tick STR bulk
// load (radix sorts, slab sorts, leaf packing) and the query traversal
// are replayed access by access, so result counts are exact, not
// statistical.
//
// Simulated object sizes mirror the real implementation: flat node
// records of 28 bytes (four float32 MBR edges, first, count, leaf flag),
// a 4-byte entry reference per point in leaf order, and the 4-byte key
// and scratch arrays of the radix sort.
const (
	rtreeNodeBytes = 28
	keyBytes       = 4
	entryBytes     = 4
)

// Instruction costs of the R-tree's abstract operations, on the same
// scale as the grid's (the profile's message lives in the ratios).
const (
	insKeyFill     = 3 // load coordinate, order-preserving bit fiddle, store
	insSortCount   = 3 // per element per counting sweep: load key, bucket add
	insSortScatter = 5 // per element per executed pass: load, bucket, store
	insNodePack    = 6 // MBR stretch + node field writes, per packed entry
	insNodeVisit   = 9 // node fetch, rectangle intersection test, stack push
)

// simRNode mirrors rtree's flat node record.
type simRNode struct {
	mbr   geom.Rect
	first int32
	count int32
	leaf  bool
}

// simRTree replays STR R-tree operations against the cache hierarchy.
type simRTree struct {
	h      *Hierarchy
	fanout int
	pts    []geom.Point

	heap        uint64
	baseAddr    uint64
	entriesAddr uint64
	keysAddr    uint64
	scratchAddr uint64
	nodesAddr   uint64

	entries []uint32
	keys    []uint32
	scratch []uint32
	nodes   []simRNode
	root    int
}

func newSimRTree(fanout int, h *Hierarchy, numPoints int) *simRTree {
	g := &simRTree{h: h, fanout: fanout, root: -1}
	g.baseAddr = g.alloc(uint64(numPoints) * pointBytes)
	g.entriesAddr = g.alloc(uint64(numPoints) * entryBytes)
	g.keysAddr = g.alloc(uint64(numPoints) * keyBytes)
	g.scratchAddr = g.alloc(uint64(numPoints) * entryBytes)
	// Fully packed levels sum to < n/(f-1) nodes above the leaves.
	maxNodes := numPoints/max(1, fanout-1) + numPoints/max(1, fanout) + 4
	g.nodesAddr = g.alloc(uint64(maxNodes) * rtreeNodeBytes)
	g.entries = make([]uint32, numPoints)
	g.keys = make([]uint32, numPoints)
	g.scratch = make([]uint32, numPoints)
	return g
}

// alloc hands out 16-byte-aligned synthetic addresses.
func (g *simRTree) alloc(size uint64) uint64 {
	addr := g.heap
	g.heap += (size + 15) &^ 15
	return addr
}

func (g *simRTree) nodeAddr(ni int) uint64 { return g.nodesAddr + uint64(ni)*rtreeNodeBytes }

// simSort shadows sortutil.ByKey32 over ids (a slice of the entry array
// starting at element offset idsOff), threading every memory touch: the
// counting sweep reads the run and one key per element, and each
// executed pass re-reads the run, chases the per-element key, and
// scatters into the ping-pong buffer. Skipped passes (all keys sharing
// a byte) cost nothing, exactly like the real sort.
func (g *simRTree) simSort(ids []uint32, idsOff int) {
	n := len(ids)
	if n < 2 {
		return
	}
	srcAddr := g.entriesAddr + uint64(idsOff)*entryBytes
	dstAddr := g.scratchAddr
	src, dst := ids, g.scratch[:n]

	var counts [4][256]int
	g.h.Read(srcAddr, uint64(n)*entryBytes)
	for _, id := range src {
		g.h.Read(g.keysAddr+uint64(id)*keyBytes, keyBytes)
		k := g.keys[id]
		counts[0][k&0xff]++
		counts[1][k>>8&0xff]++
		counts[2][k>>16&0xff]++
		counts[3][k>>24]++
	}
	g.h.Exec(n * insSortCount)

	for pass := 0; pass < 4; pass++ {
		c := &counts[pass]
		shift := 8 * uint(pass)
		if c[g.keys[src[0]]>>shift&0xff] == n {
			continue
		}
		pos := 0
		var offsets [256]int
		for b := 0; b < 256; b++ {
			offsets[b] = pos
			pos += c[b]
		}
		g.h.Read(srcAddr, uint64(n)*entryBytes)
		for _, id := range src {
			g.h.Read(g.keysAddr+uint64(id)*keyBytes, keyBytes)
			b := g.keys[id] >> shift & 0xff
			g.h.Write(dstAddr+uint64(offsets[b])*entryBytes, entryBytes)
			dst[offsets[b]] = id
			offsets[b]++
		}
		g.h.Exec(n * insSortScatter)
		src, dst = dst, src
		srcAddr, dstAddr = dstAddr, srcAddr
	}
	if &src[0] != &ids[0] {
		g.h.Read(srcAddr, uint64(n)*entryBytes)
		g.h.Write(dstAddr, uint64(n)*entryBytes)
		copy(ids, src)
	}
}

// fillKeys streams the base table into the key array with the given
// coordinate extractor.
func (g *simRTree) fillKeys(coord func(geom.Point) float32) {
	n := len(g.pts)
	for i, p := range g.pts {
		g.keys[i] = sortutil.Float32Key(coord(p))
	}
	g.h.Read(g.baseAddr, uint64(n)*pointBytes)
	g.h.Write(g.keysAddr, uint64(n)*keyBytes)
	g.h.Exec(n * insKeyFill)
}

// build mirrors rtree.Tree.Build: snapshot refresh, x sort, per-slab y
// sorts, leaf packing over the tiled entry order, then upper levels
// packed over node centres.
func (g *simRTree) build(pts []geom.Point) {
	g.pts = pts
	n := len(pts)
	g.h.Write(g.baseAddr, uint64(n)*pointBytes)
	g.h.Exec(n * insSnapshotPer)
	g.nodes = g.nodes[:0]
	g.root = -1
	if n == 0 {
		return
	}

	for i := range g.entries[:n] {
		g.entries[i] = uint32(i)
	}
	g.h.Write(g.entriesAddr, uint64(n)*entryBytes)
	g.fillKeys(func(p geom.Point) float32 { return p.X })
	g.simSort(g.entries[:n], 0)

	leaves := (n + g.fanout - 1) / g.fanout
	slabs := int(math.Ceil(math.Sqrt(float64(leaves))))
	slabSize := slabs * g.fanout
	g.fillKeys(func(p geom.Point) float32 { return p.Y })
	for start := 0; start < n; start += slabSize {
		end := min(start+slabSize, n)
		g.simSort(g.entries[start:end], start)
	}

	// Leaf packing: stream the entry run, chase each point, emit the
	// node record.
	for start := 0; start < n; start += g.fanout {
		end := min(start+g.fanout, n)
		g.h.Read(g.entriesAddr+uint64(start)*entryBytes, uint64(end-start)*entryBytes)
		mbr := g.pts[g.entries[start]].Rect()
		g.h.Read(g.baseAddr+uint64(g.entries[start])*pointBytes, pointBytes)
		for _, id := range g.entries[start+1 : end] {
			g.h.Read(g.baseAddr+uint64(id)*pointBytes, pointBytes)
			mbr = mbr.Stretch(g.pts[id])
		}
		g.h.Exec((end - start) * insNodePack)
		g.h.Write(g.nodeAddr(len(g.nodes)), rtreeNodeBytes)
		g.nodes = append(g.nodes, simRNode{mbr: mbr, first: int32(start), count: int32(end - start), leaf: true})
	}

	levelStart, levelCount := 0, len(g.nodes)
	for levelCount > 1 {
		nextStart := len(g.nodes)
		g.packLevel(levelStart, levelCount)
		levelStart, levelCount = nextStart, len(g.nodes)-nextStart
	}
	g.root = len(g.nodes) - 1
}

// packLevel packs one upper level, STR-tiling the child level by node
// centres. Upper levels hold n/fanout of the data, so the tiling sorts
// are charged as bulk sweeps over the level's node records rather than
// replayed element by element.
func (g *simRTree) packLevel(start, count int) {
	level := g.nodes[start : start+count]
	idx := make([]uint32, count)
	keys := make([]uint32, count)
	for i := range idx {
		idx[i] = uint32(i)
	}
	for i, nd := range level {
		keys[i] = sortutil.Float32Key(nd.mbr.Center().X)
	}
	// Centre-x sweep + sort traffic: read every node record, rewrite the
	// (local, small) index array per executed pass.
	g.h.Read(g.nodeAddr(start), uint64(count)*rtreeNodeBytes)
	g.h.Exec(count * (insKeyFill + insSortScatter))
	scratch := make([]uint32, count)
	sortutil.ByKey32(idx, keys, scratch)

	parents := (count + g.fanout - 1) / g.fanout
	slabs := int(math.Ceil(math.Sqrt(float64(parents))))
	slabSize := slabs * g.fanout
	for i, nd := range level {
		keys[i] = sortutil.Float32Key(nd.mbr.Center().Y)
	}
	g.h.Read(g.nodeAddr(start), uint64(count)*rtreeNodeBytes)
	g.h.Exec(count * (insKeyFill + insSortScatter))
	for s := 0; s < count; s += slabSize {
		e := min(s+slabSize, count)
		sortutil.ByKey32(idx[s:e], keys, scratch)
	}

	reordered := make([]simRNode, count)
	for i, j := range idx {
		reordered[i] = level[j]
	}
	copy(level, reordered)
	g.h.Read(g.nodeAddr(start), uint64(count)*rtreeNodeBytes)
	g.h.Write(g.nodeAddr(start), uint64(count)*rtreeNodeBytes)

	for s := 0; s < count; s += g.fanout {
		e := min(s+g.fanout, count)
		mbr := level[s].mbr
		for _, nd := range level[s+1 : e] {
			mbr = mbr.Union(nd.mbr)
		}
		g.h.Exec((e - s) * insNodePack)
		g.h.Write(g.nodeAddr(len(g.nodes)), rtreeNodeBytes)
		g.nodes = append(g.nodes, simRNode{mbr: mbr, first: int32(start + s), count: int32(e - s)})
	}
}

// query mirrors rtree.Tree.Query: a traversal from the root, reporting
// leaf runs without per-point tests when the leaf MBR is contained in
// r. The root's record fetch is charged here; every other node's fetch
// and intersection test is charged exactly once, by the parent's child
// scan in queryNode — descending into a child costs nothing extra.
func (g *simRTree) query(r geom.Rect) int {
	g.h.Exec(insQuerySetup)
	if g.root < 0 {
		return 0
	}
	g.h.Read(g.nodeAddr(g.root), rtreeNodeBytes)
	g.h.Exec(insNodeVisit)
	return g.queryNode(g.root, r)
}

// queryNode reports node ni's subtree. The caller has already charged
// ni's own record fetch and visit.
func (g *simRTree) queryNode(ni int, r geom.Rect) int {
	nd := &g.nodes[ni]
	found := 0
	if nd.leaf {
		g.h.Read(g.entriesAddr+uint64(nd.first)*entryBytes, uint64(nd.count)*entryBytes)
		if r.ContainsRect(nd.mbr) {
			g.h.Exec(int(nd.count) * insEmit)
			return int(nd.count)
		}
		for _, id := range g.entries[nd.first : nd.first+int32(nd.count)] {
			g.h.Read(g.baseAddr+uint64(id)*pointBytes, pointBytes)
			g.h.Exec(insPointTest)
			if g.pts[id].In(r) {
				g.h.Exec(insEmit)
				found++
			}
		}
		return found
	}
	for c := nd.first; c < nd.first+nd.count; c++ {
		g.h.Read(g.nodeAddr(int(c)), rtreeNodeBytes)
		g.h.Exec(insNodeVisit)
		if r.Intersects(g.nodes[c].mbr) {
			found += g.queryNode(int(c), r)
		}
	}
	return found
}

// remove implements simIndex: the static R-tree buffers nothing — the
// move is picked up by the next per-tick rebuild, exactly like the real
// technique's no-op Update.
func (g *simRTree) remove(id uint32, p geom.Point) {}

// insert implements simIndex; see remove.
func (g *simRTree) insert(id uint32, p geom.Point) {}
