package memsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/workload"
)

func simTestConfig() workload.Config {
	cfg := workload.DefaultUniform()
	cfg.NumPoints = 1500
	cfg.Ticks = 4
	cfg.SpaceSize = 4000
	cfg.MaxSpeed = 60
	cfg.QuerySize = 200
	return cfg
}

func TestGridSimConfigValidation(t *testing.T) {
	bad := []GridSimConfig{
		{Kind: GridOriginal, BS: 0, CPS: 13},
		{Kind: GridOriginal, BS: 4, CPS: 0},
		{Kind: GridKind(7), BS: 4, CPS: 13},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := PaperBefore().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := PaperAfter().Validate(); err != nil {
		t.Fatal(err)
	}
	if PaperBefore().Kind.String() != "original" || PaperAfter().Kind.String() != "refactored" {
		t.Fatal("kind names wrong")
	}
}

func TestPaperConfigsMatchTunings(t *testing.T) {
	b, a := PaperBefore(), PaperAfter()
	if b.BS != 4 || b.CPS != 13 {
		t.Fatalf("before = %+v, want bs=4 cps=13", b)
	}
	if a.BS != 20 || a.CPS != 64 {
		t.Fatalf("after = %+v, want bs=20 cps=64", a)
	}
}

// TestSimulatedJoinMatchesRealGrid is the functional anchor of the whole
// simulation: the instrumented replay must compute the exact same join
// result (pair count) as the real grid implementation run by the real
// driver. If this holds, the simulated access trace corresponds to a
// correct execution, not an approximation of one.
func TestSimulatedJoinMatchesRealGrid(t *testing.T) {
	cfg := simTestConfig()
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		sim  GridSimConfig
		real grid.Config
	}{
		{PaperBefore(), grid.Original()},
		{PaperAfter(), grid.CPSTuned()},
		{GridSimConfig{Kind: GridRefactored, BS: 4, CPS: 13}, grid.Querying()},
	}
	for _, c := range cases {
		simRes, err := ProfileGrid(c.sim, trace, DefaultHierarchy(), 0)
		if err != nil {
			t.Fatal(err)
		}
		g := grid.MustNew(c.real, cfg.Bounds(), cfg.NumPoints)
		realRes := core.Run(g, workload.NewPlayer(trace), core.Options{})
		if simRes.Pairs != realRes.Pairs {
			t.Fatalf("%v/%s: simulated join found %d pairs, real grid %d",
				c.sim.Kind, c.real.DisplayName(), simRes.Pairs, realRes.Pairs)
		}
		if simRes.Queries != realRes.Queries || simRes.Updates != realRes.Updates {
			t.Fatalf("%v: query/update counts diverge", c.sim.Kind)
		}
	}
}

func TestProfileBeforeVsAfterShape(t *testing.T) {
	// The Table 3 shape needs a working set larger than the simulated L2,
	// like the paper's 50K-point default: at toy sizes the original's
	// whole structure is cache-resident and its CPI is artificially low.
	// 20K points at the paper's density keep the node arena (~480 KiB)
	// beyond L2 while the test stays fast.
	cfg := workload.DefaultUniform()
	cfg.NumPoints = 20000
	cfg.SpaceSize = 14000
	cfg.Ticks = 2
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before, err := ProfileGrid(PaperBefore(), trace, DefaultHierarchy(), 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := ProfileGrid(PaperAfter(), trace, DefaultHierarchy(), 0)
	if err != nil {
		t.Fatal(err)
	}
	bp, ap := before.Profile, after.Profile
	if bp.Instructions < 2*ap.Instructions {
		t.Errorf("instructions: before %d, after %d — want >= 2x reduction",
			bp.Instructions, ap.Instructions)
	}
	if bp.L1Misses < 2*ap.L1Misses {
		t.Errorf("L1 misses: before %d, after %d — want >= 2x reduction",
			bp.L1Misses, ap.L1Misses)
	}
	if ap.CPI > bp.CPI*1.05 {
		t.Errorf("CPI regressed: before %.3f, after %.3f", bp.CPI, ap.CPI)
	}
}

func TestProfileTickCap(t *testing.T) {
	cfg := simTestConfig()
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	one, err := ProfileGrid(PaperAfter(), trace, DefaultHierarchy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	all, err := ProfileGrid(PaperAfter(), trace, DefaultHierarchy(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if one.Profile.Instructions >= all.Profile.Instructions {
		t.Fatal("capping ticks must reduce instruction count")
	}
	if one.Queries == 0 || one.Queries >= all.Queries {
		t.Fatalf("tick cap not applied to queries: %d vs %d", one.Queries, all.Queries)
	}
}

func TestProfileRejectsBadConfig(t *testing.T) {
	cfg := simTestConfig()
	cfg.Ticks = 1
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileGrid(GridSimConfig{BS: 0, CPS: 1}, trace, DefaultHierarchy(), 0); err == nil {
		t.Fatal("bad grid config accepted")
	}
	bad := DefaultHierarchy()
	bad.L1.SizeBytes = 7
	if _, err := ProfileGrid(PaperAfter(), trace, bad, 0); err == nil {
		t.Fatal("bad hierarchy accepted")
	}
}

func TestOriginalScansWholeDirectory(t *testing.T) {
	// The instruction gap between cps=13 full scan and cps=64 range scan
	// must reflect the directory scan: with queries much smaller than
	// cells, the original visits all cps^2 cells per query.
	cfg := simTestConfig()
	cfg.Ticks = 2
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := ProfileGrid(GridSimConfig{Kind: GridOriginal, BS: 4, CPS: 30}, trace, DefaultHierarchy(), 0)
	if err != nil {
		t.Fatal(err)
	}
	small, err := ProfileGrid(GridSimConfig{Kind: GridOriginal, BS: 4, CPS: 5}, trace, DefaultHierarchy(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// 30x30=900 vs 5x5=25 cells: the per-query directory walk must make
	// the fine grid far more instruction-hungry under Algorithm 1.
	if full.Profile.Instructions < small.Profile.Instructions {
		t.Fatalf("full scan over 900 cells (%d ins) should cost more than over 25 (%d ins)",
			full.Profile.Instructions, small.Profile.Instructions)
	}
	if full.Pairs != small.Pairs {
		t.Fatal("grid granularity must not change the join result")
	}
}

func TestIntrusiveSimMatchesRealGrid(t *testing.T) {
	cfg := simTestConfig()
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := GridSimConfig{Kind: GridIntrusive, BS: 1, CPS: 64}
	simRes, err := ProfileGrid(sim, trace, DefaultHierarchy(), 0)
	if err != nil {
		t.Fatal(err)
	}
	gc := grid.CPSTuned()
	gc.Layout = grid.LayoutIntrusive
	g := grid.MustNew(gc, cfg.Bounds(), cfg.NumPoints)
	realRes := core.Run(g, workload.NewPlayer(trace), core.Options{})
	if simRes.Pairs != realRes.Pairs {
		t.Fatalf("intrusive sim found %d pairs, real grid %d", simRes.Pairs, realRes.Pairs)
	}
	if GridIntrusive.String() != "intrusive" {
		t.Fatal("kind name wrong")
	}
}

func TestIntrusiveSimUpdateCheaperThanOriginal(t *testing.T) {
	// The handle design's point: per-update memory traffic must be far
	// below the original's list search. Compare instruction counts of a
	// pure-update workload (no queries).
	cfg := simTestConfig()
	cfg.Queriers = 0
	cfg.Updaters = 1
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := ProfileGrid(GridSimConfig{Kind: GridOriginal, BS: 4, CPS: 13}, trace, DefaultHierarchy(), 0)
	if err != nil {
		t.Fatal(err)
	}
	intr, err := ProfileGrid(GridSimConfig{Kind: GridIntrusive, BS: 1, CPS: 13}, trace, DefaultHierarchy(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if intr.Profile.Instructions >= orig.Profile.Instructions {
		t.Fatalf("intrusive updates (%d ins) must beat list-search updates (%d ins)",
			intr.Profile.Instructions, orig.Profile.Instructions)
	}
}
