package geom

// Z-order (Morton) linearization. The linearized KD-trie of Dittrich et
// al. maps each point to a fixed-depth kd-partition code; with axes split
// alternately and in half, that code is exactly the bit interleaving of
// the point's quantized x and y coordinates. These helpers implement the
// interleaving and its inverse for up to 32 bits per axis.

// InterleaveBits spreads the low 32 bits of x into the even bit positions
// of the result, i.e. bit i of x moves to bit 2i.
func InterleaveBits(x uint32) uint64 {
	v := uint64(x)
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// DeinterleaveBits is the inverse of InterleaveBits: it collects the even
// bit positions of v into a compact 32-bit value.
func DeinterleaveBits(v uint64) uint32 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0f0f0f0f0f0f0f0f
	v = (v | v>>4) & 0x00ff00ff00ff00ff
	v = (v | v>>8) & 0x0000ffff0000ffff
	v = (v | v>>16) & 0x00000000ffffffff
	return uint32(v)
}

// MortonEncode interleaves x and y (x occupying the even bits) to form a
// Z-order code. Codes compare in Z-curve order.
func MortonEncode(x, y uint32) uint64 {
	return InterleaveBits(x) | InterleaveBits(y)<<1
}

// MortonDecode splits a Z-order code back into its x and y components.
func MortonDecode(code uint64) (x, y uint32) {
	return DeinterleaveBits(code), DeinterleaveBits(code >> 1)
}

// Quantizer maps float coordinates in a bounding space onto the integer
// lattice [0, 2^bits). It is shared by the KD-trie (cell codes) and the
// CR-tree (relative MBR quantization is a per-node variant of the same
// idea).
type Quantizer struct {
	bounds Rect
	bits   uint
	scaleX float64
	scaleY float64
}

// NewQuantizer builds a quantizer for the given space with the given
// resolution. bits must be in [1, 32].
func NewQuantizer(bounds Rect, bits uint) *Quantizer {
	if bits < 1 || bits > 32 {
		panic("geom: quantizer bits out of range [1,32]")
	}
	cells := float64(uint64(1) << bits)
	w := float64(bounds.Width())
	h := float64(bounds.Height())
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	return &Quantizer{
		bounds: bounds,
		bits:   bits,
		scaleX: cells / w,
		scaleY: cells / h,
	}
}

// Bits returns the per-axis resolution in bits.
func (q *Quantizer) Bits() uint { return q.bits }

// Bounds returns the space the quantizer was built over.
func (q *Quantizer) Bounds() Rect { return q.bounds }

// Cell returns the lattice coordinates of p, clamped into range so that
// points on (or numerically just outside) the space boundary land in the
// outermost cells rather than out of bounds.
func (q *Quantizer) Cell(p Point) (cx, cy uint32) {
	limit := (uint64(1) << q.bits) - 1
	fx := (float64(p.X) - float64(q.bounds.MinX)) * q.scaleX
	fy := (float64(p.Y) - float64(q.bounds.MinY)) * q.scaleY
	return clampu(fx, limit), clampu(fy, limit)
}

// Code returns the Z-order code of the cell containing p.
func (q *Quantizer) Code(p Point) uint64 {
	cx, cy := q.Cell(p)
	return MortonEncode(cx, cy)
}

// CellRect returns the spatial extent of lattice cell (cx, cy).
func (q *Quantizer) CellRect(cx, cy uint32) Rect {
	invX := 1 / q.scaleX
	invY := 1 / q.scaleY
	x0 := float64(q.bounds.MinX) + float64(cx)*invX
	y0 := float64(q.bounds.MinY) + float64(cy)*invY
	return Rect{
		MinX: float32(x0),
		MinY: float32(y0),
		MaxX: float32(x0 + invX),
		MaxY: float32(y0 + invY),
	}
}

// CellRange returns the half-open lattice ranges [x0,x1], [y0,y1] of cells
// overlapped by r (clamped to the space). Both bounds are inclusive.
func (q *Quantizer) CellRange(r Rect) (x0, y0, x1, y1 uint32) {
	lo := r.Clip(q.bounds)
	x0, y0 = q.Cell(Point{X: lo.MinX, Y: lo.MinY})
	x1, y1 = q.Cell(Point{X: lo.MaxX, Y: lo.MaxY})
	return x0, y0, x1, y1
}

func clampu(v float64, limit uint64) uint32 {
	if v < 0 {
		return 0
	}
	u := uint64(v)
	if u > limit {
		u = limit
	}
	return uint32(u)
}
