package geom

import (
	"testing"
	"testing/quick"
)

func TestHilbertKnownOrder1(t *testing.T) {
	// The order-1 curve visits (0,0), (0,1), (1,1), (1,0).
	cases := []struct {
		x, y uint32
		d    uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{1, 1, 2},
		{1, 0, 3},
	}
	for _, c := range cases {
		if got := HilbertEncode(1, c.x, c.y); got != c.d {
			t.Errorf("HilbertEncode(1, %d, %d) = %d, want %d", c.x, c.y, got, c.d)
		}
	}
}

func TestHilbertCoversOrder3Exactly(t *testing.T) {
	// On an 8x8 grid, distances must be a bijection onto [0, 64).
	seen := make([]bool, 64)
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			d := HilbertEncode(3, x, y)
			if d >= 64 {
				t.Fatalf("(%d,%d) -> %d out of range", x, y, d)
			}
			if seen[d] {
				t.Fatalf("distance %d hit twice", d)
			}
			seen[d] = true
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// Consecutive curve positions must be lattice neighbours — the
	// locality property Z-order lacks.
	const order = 4
	prevX, prevY := HilbertDecode(order, 0)
	for d := uint64(1); d < 1<<(2*order); d++ {
		x, y := HilbertDecode(order, d)
		dx := int64(x) - int64(prevX)
		dy := int64(y) - int64(prevY)
		if dx*dx+dy*dy != 1 {
			t.Fatalf("positions %d and %d are not adjacent: (%d,%d) -> (%d,%d)",
				d-1, d, prevX, prevY, x, y)
		}
		prevX, prevY = x, y
	}
}

func TestPropHilbertRoundtrip(t *testing.T) {
	const order = 12
	mask := uint32(1<<order - 1)
	f := func(x, y uint32) bool {
		x &= mask
		y &= mask
		gx, gy := HilbertDecode(order, HilbertEncode(order, x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertFullOrderRoundtrip(t *testing.T) {
	// Spot-check the maximum order used by the quantizer (16 bits/axis
	// covers every kdtrie configuration).
	const order = 16
	for _, c := range [][2]uint32{{0, 0}, {65535, 65535}, {12345, 54321}, {1, 65534}} {
		d := HilbertEncode(order, c[0], c[1])
		x, y := HilbertDecode(order, d)
		if x != c[0] || y != c[1] {
			t.Fatalf("roundtrip (%d,%d) -> %d -> (%d,%d)", c[0], c[1], d, x, y)
		}
	}
}
