package geom

// Hilbert curve encoding. The linearized KD-trie uses Z-order (bit
// interleaving) because that is what the kd-split derivation yields, but
// the Hilbert curve is the classic alternative with strictly better
// locality (no long diagonal jumps). The repository implements both so
// the choice of linearization can be ablated (bench extension
// "ext-hilbert"); the conversion below is the standard iterative
// rotate-and-flip construction.

// HilbertEncode maps lattice cell (x, y) on a 2^order x 2^order grid to
// its distance along the Hilbert curve. order must be in [1, 32].
func HilbertEncode(order uint, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = hilbertRot(s, x, y, rx, ry)
	}
	return d
}

// HilbertDecode is the inverse of HilbertEncode.
func HilbertDecode(order uint, d uint64) (x, y uint32) {
	t := d
	for s := uint32(1); s < uint32(1)<<order; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & (uint32(t) ^ rx)
		x, y = hilbertRot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// hilbertRot rotates/flips the quadrant so the curve orientation is
// preserved across recursion levels.
func hilbertRot(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}
