package geom

import (
	"testing"
	"testing/quick"
)

func TestPointIn(t *testing.T) {
	r := R(0, 0, 10, 10)
	cases := []struct {
		name string
		p    Point
		want bool
	}{
		{"interior", Pt(5, 5), true},
		{"lower-left corner", Pt(0, 0), true},
		{"upper-right corner", Pt(10, 10), true},
		{"on left edge", Pt(0, 5), true},
		{"on top edge", Pt(5, 10), true},
		{"left of", Pt(-0.001, 5), false},
		{"right of", Pt(10.001, 5), false},
		{"below", Pt(5, -0.001), false},
		{"above", Pt(5, 10.001), false},
		{"far away", Pt(100, 100), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.p.In(r); got != c.want {
				t.Errorf("%v.In(%v) = %v, want %v", c.p, r, got, c.want)
			}
			if got := r.Contains(c.p); got != c.want {
				t.Errorf("%v.Contains(%v) = %v, want %v", r, c.p, got, c.want)
			}
		})
	}
}

func TestRNormalizesCorners(t *testing.T) {
	r := R(10, 20, 0, 5)
	want := Rect{MinX: 0, MinY: 5, MaxX: 10, MaxY: 20}
	if r != want {
		t.Fatalf("R(10,20,0,5) = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Fatal("normalized rect should be valid")
	}
}

func TestSquare(t *testing.T) {
	r := Square(Pt(100, 200), 50)
	want := Rect{MinX: 75, MinY: 175, MaxX: 125, MaxY: 225}
	if r != want {
		t.Fatalf("Square = %v, want %v", r, want)
	}
	if r.Width() != 50 || r.Height() != 50 {
		t.Fatalf("Square dims = %g x %g, want 50 x 50", r.Width(), r.Height())
	}
	if c := r.Center(); c != Pt(100, 200) {
		t.Fatalf("Square center = %v, want (100,200)", c)
	}
}

func TestIntersects(t *testing.T) {
	a := R(0, 0, 10, 10)
	cases := []struct {
		name string
		b    Rect
		want bool
	}{
		{"identical", a, true},
		{"contained", R(2, 2, 8, 8), true},
		{"containing", R(-5, -5, 15, 15), true},
		{"overlap corner", R(8, 8, 12, 12), true},
		{"touch edge", R(10, 0, 20, 10), true},
		{"touch corner", R(10, 10, 20, 20), true},
		{"disjoint right", R(10.5, 0, 20, 10), false},
		{"disjoint above", R(0, 11, 10, 20), false},
		{"disjoint diagonal", R(11, 11, 20, 20), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := a.Intersects(c.b); got != c.want {
				t.Errorf("%v.Intersects(%v) = %v, want %v", a, c.b, got, c.want)
			}
			if got := c.b.Intersects(a); got != c.want {
				t.Errorf("intersection must be symmetric: %v vs %v", c.b, a)
			}
		})
	}
}

func TestContainsRect(t *testing.T) {
	a := R(0, 0, 10, 10)
	cases := []struct {
		name string
		b    Rect
		want bool
	}{
		{"identical", a, true},
		{"strictly inside", R(1, 1, 9, 9), true},
		{"sharing an edge", R(0, 1, 9, 9), true},
		{"poking out right", R(5, 5, 11, 9), false},
		{"containing", R(-1, -1, 11, 11), false},
		{"disjoint", R(20, 20, 30, 30), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := a.ContainsRect(c.b); got != c.want {
				t.Errorf("%v.ContainsRect(%v) = %v, want %v", a, c.b, got, c.want)
			}
		})
	}
}

func TestIntersectionAndUnion(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	got, ok := a.Intersection(b)
	if !ok || got != R(5, 5, 10, 10) {
		t.Fatalf("Intersection = %v (ok=%v), want [5,10]x[5,10]", got, ok)
	}
	if u := a.Union(b); u != R(0, 0, 15, 15) {
		t.Fatalf("Union = %v, want [0,15]x[0,15]", u)
	}
	if _, ok := a.Intersection(R(20, 20, 30, 30)); ok {
		t.Fatal("disjoint rects must not intersect")
	}
}

func TestPointRect(t *testing.T) {
	p := Pt(3, -4)
	r := p.Rect()
	if r != R(3, -4, 3, -4) {
		t.Fatalf("Point.Rect = %v, want degenerate rect at %v", r, p)
	}
	if !r.Valid() || r.Area() != 0 {
		t.Fatalf("Point.Rect must be a valid zero-area rect, got %v", r)
	}
	if !p.In(r) {
		t.Fatalf("point must lie in its own degenerate rect")
	}
}

func TestStretch(t *testing.T) {
	base := R(0, 0, 10, 10)
	cases := []struct {
		name string
		p    Point
		want Rect
	}{
		{"inside is identity", Pt(5, 5), base},
		{"on corner is identity", Pt(10, 10), base},
		{"left", Pt(-2, 5), R(-2, 0, 10, 10)},
		{"right", Pt(12, 5), R(0, 0, 12, 10)},
		{"below", Pt(5, -3), R(0, -3, 10, 10)},
		{"above", Pt(5, 14), R(0, 0, 10, 14)},
		{"diagonal", Pt(-1, 13), R(-1, 0, 10, 13)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := base.Stretch(c.p)
			if got != c.want {
				t.Errorf("%v.Stretch(%v) = %v, want %v", base, c.p, got, c.want)
			}
			if !c.p.In(got) {
				t.Errorf("stretched rect %v must contain %v", got, c.p)
			}
			if !got.ContainsRect(base) {
				t.Errorf("stretched rect %v must contain the original %v", got, base)
			}
			// Stretch agrees with Union of the degenerate point rect.
			if u := base.Union(c.p.Rect()); u != got {
				t.Errorf("Stretch %v disagrees with Union %v", got, u)
			}
		})
	}
}

func TestRectOf(t *testing.T) {
	pts := []Point{Pt(3, 7), Pt(-1, 2), Pt(5, 0)}
	if got := RectOf(pts); got != R(-1, 0, 5, 7) {
		t.Fatalf("RectOf = %v, want [-1,5]x[0,7]", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RectOf(nil) must panic")
		}
	}()
	RectOf(nil)
}

func TestClip(t *testing.T) {
	b := R(0, 0, 10, 10)
	if got := R(-5, 3, 5, 20).Clip(b); got != R(0, 3, 5, 10) {
		t.Fatalf("Clip = %v, want [0,5]x[3,10]", got)
	}
	// Fully outside: degenerates onto the boundary but stays valid.
	if got := R(20, 20, 30, 30).Clip(b); !got.Valid() {
		t.Fatalf("Clip of outside rect must stay valid, got %v", got)
	}
}

func TestExpand(t *testing.T) {
	if got := R(2, 2, 4, 4).Expand(1); got != R(1, 1, 5, 5) {
		t.Fatalf("Expand(1) = %v", got)
	}
	if got := R(2, 2, 6, 6).Expand(-1); got != R(3, 3, 5, 5) {
		t.Fatalf("Expand(-1) = %v", got)
	}
}

// normRect builds a valid rect from four arbitrary floats, for property
// tests.
func normRect(x1, y1, x2, y2 float32) Rect { return R(x1, y1, x2, y2) }

func TestPropIntersectionSymmetricAndSound(t *testing.T) {
	f := func(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2 float32) bool {
		a := normRect(ax1, ay1, ax2, ay2)
		b := normRect(bx1, by1, bx2, by2)
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		inter, ok := a.Intersection(b)
		if ok != a.Intersects(b) {
			return false
		}
		if ok {
			// The intersection must lie inside both.
			if !a.ContainsRect(inter) || !b.ContainsRect(inter) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropUnionContainsBoth(t *testing.T) {
	f := func(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2 float32) bool {
		a := normRect(ax1, ay1, ax2, ay2)
		b := normRect(bx1, by1, bx2, by2)
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropContainsRectImpliesIntersects(t *testing.T) {
	f := func(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2 float32) bool {
		a := normRect(ax1, ay1, ax2, ay2)
		b := normRect(bx1, by1, bx2, by2)
		if a.ContainsRect(b) && !a.Intersects(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropPointInImpliesRectIntersects(t *testing.T) {
	f := func(x, y, ax1, ay1, ax2, ay2 float32) bool {
		p := Pt(x, y)
		a := normRect(ax1, ay1, ax2, ay2)
		if p.In(a) {
			// A rect containing p must intersect the degenerate rect at p.
			return a.Intersects(Rect{MinX: x, MinY: y, MaxX: x, MaxY: y})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
