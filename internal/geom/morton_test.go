package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInterleaveRoundtrip(t *testing.T) {
	cases := []uint32{0, 1, 2, 0xff, 0xffff, 0xdeadbeef, 0xffffffff}
	for _, x := range cases {
		if got := DeinterleaveBits(InterleaveBits(x)); got != x {
			t.Errorf("roundtrip(%#x) = %#x", x, got)
		}
	}
}

func TestMortonKnownValues(t *testing.T) {
	// Z-order of the 2x2 lattice: (0,0)=0 (1,0)=1 (0,1)=2 (1,1)=3.
	cases := []struct {
		x, y uint32
		want uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{0, 2, 8},
		{3, 3, 15},
		{0xffffffff, 0, 0x5555555555555555},
		{0, 0xffffffff, 0xaaaaaaaaaaaaaaaa},
		{0xffffffff, 0xffffffff, 0xffffffffffffffff},
	}
	for _, c := range cases {
		if got := MortonEncode(c.x, c.y); got != c.want {
			t.Errorf("MortonEncode(%d,%d) = %#x, want %#x", c.x, c.y, got, c.want)
		}
	}
}

func TestPropMortonRoundtrip(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := MortonDecode(MortonEncode(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMortonMonotoneInPrefix(t *testing.T) {
	// Within one row or column, codes must increase with the coordinate.
	f := func(x, y uint32) bool {
		if x == 0xffffffff || y == 0xffffffff {
			return true
		}
		return MortonEncode(x, y) < MortonEncode(x+1, y) &&
			MortonEncode(x, y) < MortonEncode(x, y+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizerCell(t *testing.T) {
	q := NewQuantizer(R(0, 0, 100, 100), 2) // 4x4 lattice, cells of 25
	cases := []struct {
		p      Point
		cx, cy uint32
	}{
		{Pt(0, 0), 0, 0},
		{Pt(24.9, 24.9), 0, 0},
		{Pt(25, 0), 1, 0},
		{Pt(99.9, 99.9), 3, 3},
		{Pt(100, 100), 3, 3}, // boundary clamps into last cell
		{Pt(-5, 120), 0, 3},  // outside clamps
		{Pt(50, 75), 2, 3},
	}
	for _, c := range cases {
		cx, cy := q.Cell(c.p)
		if cx != c.cx || cy != c.cy {
			t.Errorf("Cell(%v) = (%d,%d), want (%d,%d)", c.p, cx, cy, c.cx, c.cy)
		}
	}
}

func TestQuantizerCellRectInverse(t *testing.T) {
	q := NewQuantizer(R(0, 0, 128, 128), 4)
	for cx := uint32(0); cx < 16; cx++ {
		for cy := uint32(0); cy < 16; cy++ {
			r := q.CellRect(cx, cy)
			gotX, gotY := q.Cell(r.Center())
			if gotX != cx || gotY != cy {
				t.Fatalf("cell (%d,%d) rect %v center maps to (%d,%d)", cx, cy, r, gotX, gotY)
			}
		}
	}
}

func TestQuantizerCellRange(t *testing.T) {
	q := NewQuantizer(R(0, 0, 100, 100), 2)
	x0, y0, x1, y1 := q.CellRange(R(10, 30, 60, 80))
	if x0 != 0 || x1 != 2 || y0 != 1 || y1 != 3 {
		t.Fatalf("CellRange = (%d,%d)-(%d,%d), want (0,1)-(2,3)", x0, y0, x1, y1)
	}
	// Query poking outside the space clamps to the boundary cells.
	x0, y0, x1, y1 = q.CellRange(R(-50, -50, 200, 10))
	if x0 != 0 || y0 != 0 || x1 != 3 || y1 != 0 {
		t.Fatalf("clamped CellRange = (%d,%d)-(%d,%d), want (0,0)-(3,0)", x0, y0, x1, y1)
	}
}

func TestPropQuantizerCellWithinRange(t *testing.T) {
	q := NewQuantizer(R(0, 0, 1000, 1000), 6)
	f := func(x, y float32) bool {
		// Constrain to the space via wrap-around.
		p := Pt(absMod(x, 1000), absMod(y, 1000))
		cx, cy := q.Cell(p)
		if cx > 63 || cy > 63 {
			return false
		}
		// The cell rect must contain the point (up to the clamped edge).
		r := q.CellRect(cx, cy)
		return p.In(r.Expand(1e-3))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func absMod(v, m float32) float32 {
	r := float32(math.Mod(math.Abs(float64(v)), float64(m)))
	if r >= m || math.IsNaN(float64(r)) {
		return 0
	}
	return r
}

func TestNewQuantizerPanicsOnBadBits(t *testing.T) {
	for _, bits := range []uint{0, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewQuantizer(bits=%d) must panic", bits)
				}
			}()
			NewQuantizer(R(0, 0, 1, 1), bits)
		}()
	}
}
