// Package geom provides the two-dimensional geometric primitives used by
// every spatial join technique in this repository: points, axis-aligned
// rectangles, the containment/intersection predicates the join algorithms
// are built from, and Z-order (Morton) linearization for the KD-trie.
//
// Coordinates are float32 throughout. The paper's setting assumes raw
// location data encoded as two 4-byte values per point, and the memory
// footprint arguments in its Section 3.1 depend on that size, so the
// choice is load-bearing rather than cosmetic.
package geom

import "fmt"

// Point is a two-dimensional point. It is deliberately a small value type
// (8 bytes) so that slices of points pack densely into cache lines.
type Point struct {
	X, Y float32
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float32) Point { return Point{X: x, Y: y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// In reports whether p lies inside r. Containment follows the half-open
// convention used by the original framework: the lower edges are inclusive
// and the upper edges are inclusive as well, because range queries in the
// workload are closed rectangles centred on objects.
func (p Point) In(r Rect) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float32) Point { return Point{X: p.X + dx, Y: p.Y + dy} }

// Rect returns the degenerate rectangle covering exactly p. It is the
// seed value for MBR accumulation via Rect.Stretch.
func (p Point) Rect() Rect {
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

// Move describes one object relocation: the entry identified by ID leaves
// position Old and arrives at position New. It is the unit of the batched
// update path (core.BatchUpdater); it lives here so index packages can
// implement that interface without importing the driver.
type Move struct {
	ID  uint32
	Old Point
	New Point
}

// BoxMove is Move for extended objects: the MBR identified by ID leaves
// extent Old and arrives at extent New. It is the unit of the batched
// box-update path (core.BoxBatchUpdater).
type BoxMove struct {
	ID  uint32
	Old Rect
	New Rect
}

// Rect is an axis-aligned rectangle given by its lower-left (MinX, MinY)
// and upper-right (MaxX, MaxY) corners, matching the Region2D arguments of
// the paper's Algorithms 1 and 2.
type Rect struct {
	MinX, MinY, MaxX, MaxY float32
}

// R constructs a Rect, swapping coordinates if they arrive unordered so
// that the result is always well formed.
func R(x1, y1, x2, y2 float32) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

// Square returns the axis-aligned square of side `side` centred at c. This
// is the query shape issued by queriers in the workload (Query Size in
// Table 1 is the side length).
func Square(c Point, side float32) Rect {
	h := side / 2
	return Rect{MinX: c.X - h, MinY: c.Y - h, MaxX: c.X + h, MaxY: c.Y + h}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g, %g]x[%g, %g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Valid reports whether r is well formed (non-inverted on both axes).
func (r Rect) Valid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// Width returns the extent of r along the x axis.
func (r Rect) Width() float32 { return r.MaxX - r.MinX }

// Height returns the extent of r along the y axis.
func (r Rect) Height() float32 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return float64(r.Width()) * float64(r.Height()) }

// Center returns the centre point of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Contains reports whether p lies inside r (closed on all edges).
func (r Rect) Contains(p Point) bool { return p.In(r) }

// ContainsRect reports whether r fully contains s. Used by the grid query
// algorithms to decide whether a cell's points can be reported without
// per-point checks (line 5 of Algorithm 1).
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point (closed
// rectangles, so touching edges intersect).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersection returns the overlap of r and s and whether it is non-empty.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	out := Rect{
		MinX: maxf(r.MinX, s.MinX),
		MinY: maxf(r.MinY, s.MinY),
		MaxX: minf(r.MaxX, s.MaxX),
		MaxY: minf(r.MaxY, s.MaxY),
	}
	return out, out.Valid()
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: minf(r.MinX, s.MinX),
		MinY: minf(r.MinY, s.MinY),
		MaxX: maxf(r.MaxX, s.MaxX),
		MaxY: maxf(r.MaxY, s.MaxY),
	}
}

// Expand grows r by d on every side. A negative d shrinks it.
func (r Rect) Expand(d float32) Rect {
	return Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
}

// Clip returns r clipped to the bounds b. If they do not overlap the
// result is a degenerate rectangle on the nearest edge of b.
func (r Rect) Clip(b Rect) Rect {
	out := Rect{
		MinX: clampf(r.MinX, b.MinX, b.MaxX),
		MinY: clampf(r.MinY, b.MinY, b.MaxY),
		MaxX: clampf(r.MaxX, b.MinX, b.MaxX),
		MaxY: clampf(r.MaxY, b.MinY, b.MaxY),
	}
	return out
}

// RectOf returns the minimum bounding rectangle of pts. It panics when pts
// is empty: an MBR of nothing has no meaningful value, and callers in this
// repository always have at least one point per node.
func RectOf(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: RectOf of empty point set")
	}
	r := pts[0].Rect()
	for _, p := range pts[1:] {
		r = r.Stretch(p)
	}
	return r
}

// Stretch returns r grown just enough to contain p. It is the inner step
// of every MBR-accumulation loop (RectOf here, leaf packing in the
// R-tree variants), centralized so the min/max comparisons are written
// once.
func (r Rect) Stretch(p Point) Rect {
	if p.X < r.MinX {
		r.MinX = p.X
	}
	if p.X > r.MaxX {
		r.MaxX = p.X
	}
	if p.Y < r.MinY {
		r.MinY = p.Y
	}
	if p.Y > r.MaxY {
		r.MaxY = p.Y
	}
	return r
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

func clampf(v, lo, hi float32) float32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
