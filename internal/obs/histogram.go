package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bucket geometry: values 0..7 get exact unit buckets, every
// later power-of-two octave splits into 2^histSubBits sub-buckets, so
// the relative bucket width is bounded by 2^-histSubBits = 12.5%
// everywhere. Everything at or above 2^histMaxExp ns (~73 minutes)
// lands in one overflow bucket.
const (
	histSubBits    = 3
	histSubCount   = 1 << histSubBits
	histMaxExp     = 42
	histNumBuckets = histSubCount + (histMaxExp-histSubBits)*histSubCount + 1
)

// Histogram is a fixed-bucket log-scale distribution of non-negative
// int64 observations (nanoseconds by convention). Memory is constant:
// histNumBuckets atomic words, never a sample list. The zero value is
// ready to use; a nil *Histogram is the disabled no-op.
// Concurrency-safe; every Record is one bucket add, one count add, one
// sum add, and a max CAS.
type Histogram struct {
	buckets [histNumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

// NewHistogram returns a standalone histogram (see NewCounter).
func NewHistogram() *Histogram { return &Histogram{} }

// Record folds one observation in. Negative values clamp to zero.
//
//joinlint:hotpath
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[histBucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// histBucket maps a non-negative value to its bucket index.
func histBucket(v int64) int {
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	e := bits.Len64(u) - 1
	if e >= histMaxExp {
		return histNumBuckets - 1
	}
	mant := int((u >> (uint(e) - histSubBits)) & (histSubCount - 1))
	return histSubCount + (e-histSubBits)*histSubCount + mant
}

// BucketBounds returns bucket i's half-open value range [lo, hi).
func BucketBounds(i int) (lo, hi int64) {
	switch {
	case i < histSubCount:
		return int64(i), int64(i) + 1
	case i >= histNumBuckets-1:
		return int64(1) << histMaxExp, math.MaxInt64
	default:
		k := i - histSubCount
		e := histSubBits + k/histSubCount
		width := int64(1) << (uint(e) - histSubBits)
		lo = int64(1)<<uint(e) + int64(k%histSubCount)*width
		return lo, lo + width
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest recorded observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the p-quantile (0 <= p <= 1) as the midpoint of
// the bucket holding the corresponding order statistic — the same rank
// convention as stats.Percentile, so on a dense sample the estimate
// lands within one bucket width of the exact-sample value. Returns 0
// when empty. The bucket scan is not atomic across buckets; under
// concurrent recording the estimate is a sample of a moving
// distribution, which is what a live endpoint wants anyway.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	var counts [histNumBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return quantileOf(&counts, total, p)
}

// quantileOf locates the bucket of order statistic p*(total-1) in a
// counts snapshot and returns its midpoint.
func quantileOf(counts *[histNumBuckets]uint64, total uint64, p float64) float64 {
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(total-1))
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum > rank {
			lo, hi := BucketBounds(i)
			if hi == math.MaxInt64 {
				return float64(lo)
			}
			return float64(lo+hi) / 2
		}
	}
	lo, _ := BucketBounds(histNumBuckets - 1)
	return float64(lo)
}
