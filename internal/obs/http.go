package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"

	"repro/internal/parutil"
)

// Handler serves the debug surface for a registry:
//
//	/debug/obs          — full Snapshot as JSON (expvar-style)
//	/debug/obs/hist     — plain-text per-phase histogram dump
//	                      (?name=prefix filters by instrument name)
//	/debug/pprof/...    — the standard runtime profiles
//
// The registry may be nil; the endpoint then serves empty snapshots,
// which keeps -debug-addr usable even when instrumentation is off.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/obs/hist", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeHistDump(w, r.Snapshot(), req.URL.Query().Get("name"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "debug endpoints: /debug/obs /debug/obs/hist /debug/pprof/")
	})
	return mux
}

// writeHistDump renders every histogram whose name has the given prefix
// as a log-scale bar chart of its non-empty buckets.
func writeHistDump(w io.Writer, snap *Snapshot, prefix string) {
	names := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		hs := snap.Histograms[name]
		fmt.Fprintf(w, "%s: count=%d mean=%.0f p50=%.0f p90=%.0f p99=%.0f max=%d\n",
			name, hs.Count, hs.Mean, hs.P50, hs.P90, hs.P99, hs.Max)
		var peak uint64
		for _, b := range hs.Buckets {
			if b.Count > peak {
				peak = b.Count
			}
		}
		for _, b := range hs.Buckets {
			bar := int(b.Count * 40 / peak)
			if b.Count > 0 && bar == 0 {
				bar = 1
			}
			hi := fmt.Sprintf("%d", b.Hi)
			if b.Hi < 0 {
				hi = "inf"
			}
			fmt.Fprintf(w, "  [%12d, %12s) %10d %s\n", b.Lo, hi, b.Count, strings.Repeat("#", bar))
		}
	}
}

// Serve starts the debug endpoint on addr (":0" picks a free port) and
// returns the bound address. The listener runs until the process exits;
// this is a debug surface, not a managed server, so there is no Stop —
// callers that need lifecycle control should mount Handler themselves.
func Serve(addr string, r *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Handler(r)}
	parutil.GoErr(func() error { return srv.Serve(ln) })
	return ln.Addr().String(), nil
}
