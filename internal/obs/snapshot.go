package obs

import (
	"math"
	"time"
)

// Snapshot is the registry's JSON-serializable state at one instant:
// what /debug/obs serves and what cmd/obsreport diffs. Maps are
// rendered with sorted keys by encoding/json, so two snapshots of the
// same registry diff cleanly as text too.
type Snapshot struct {
	// TakenUnixNs is the wall-clock capture time (Unix nanoseconds).
	TakenUnixNs int64 `json:"taken_unix_ns"`
	// UptimeNs is the registry clock at capture — the span timebase.
	UptimeNs   int64                   `json:"uptime_ns"`
	Labels     map[string]string       `json:"labels,omitempty"`
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// HistSnapshot summarizes one histogram: moments, quantile estimates,
// and the non-empty buckets.
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	// Buckets holds only buckets with at least one observation.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one non-empty histogram bucket: the half-open value range
// [Lo, Hi) and its observation count. Hi is -1 for the overflow bucket
// (an unbounded upper edge has no JSON-friendly int64).
type Bucket struct {
	Lo    int64  `json:"lo"`
	Hi    int64  `json:"hi"`
	Count uint64 `json:"count"`
}

// Snapshot captures the registry. Nil registries snapshot as an empty
// (but valid) Snapshot. Counters and histograms are read with atomic
// loads but not frozen: a snapshot taken mid-run is a consistent-enough
// live view, not a barrier.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{
		TakenUnixNs: time.Now().UnixNano(),
		Labels:      map[string]string{},
		Counters:    map[string]int64{},
		Gauges:      map[string]int64{},
		Histograms:  map[string]HistSnapshot{},
	}
	if r == nil {
		return snap
	}
	snap.UptimeNs = r.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.labels) {
		snap.Labels[name] = r.labels[name]
	}
	for _, name := range sortedKeys(r.counters) {
		snap.Counters[name] = r.counters[name].Value()
	}
	for _, name := range sortedKeys(r.gauges) {
		snap.Gauges[name] = r.gauges[name].Value()
	}
	for _, name := range sortedKeys(r.hists) {
		snap.Histograms[name] = r.hists[name].snapshot()
	}
	return snap
}

// snapshot summarizes the histogram off one pass over the buckets, so
// the quantiles and the bucket list describe the same counts.
func (h *Histogram) snapshot() HistSnapshot {
	var counts [histNumBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	hs := HistSnapshot{
		Count: total,
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		P50:   quantileOf(&counts, total, 0.50),
		P90:   quantileOf(&counts, total, 0.90),
		P99:   quantileOf(&counts, total, 0.99),
	}
	if total > 0 {
		hs.Mean = float64(hs.Sum) / float64(total)
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		if hi == math.MaxInt64 {
			hi = -1
		}
		hs.Buckets = append(hs.Buckets, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return hs
}
