package obs

import (
	"sync/atomic"
	"unsafe"
)

// counterShards is the stripe count of a Counter. Eight 64-byte lines
// (512 B per counter) is enough to keep the tick drivers' worker pools
// from bouncing one line; counters are few, so the footprint is noise.
const counterShards = 8

// counterShard is one cache-line-padded stripe.
type counterShard struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonic (or at least sum-semantic) event counter
// striped across padded cache lines. The zero value is ready to use;
// a nil *Counter is the disabled no-op. Concurrency-safe.
type Counter struct {
	shards [counterShards]counterShard
}

// NewCounter returns a standalone counter, for components that must
// count regardless of whether a registry is attached (e.g. the epoch
// wrapper's lifecycle stats).
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
//
//joinlint:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Add folds n into the counter. The stripe is picked from the calling
// goroutine's stack address: stacks live in distinct spans, so
// concurrent workers land on distinct stripes with high probability
// while a single caller always hits the same (warm) line. The
// pointer-to-uintptr conversion does not escape b.
//
//joinlint:hotpath
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	var b byte
	i := (uintptr(unsafe.Pointer(&b)) >> 10) % counterShards
	c.shards[i].v.Add(n)
}

// Value sums the stripes. Each stripe load is atomic; the sum is exact
// once writers are quiesced and a live lower bound otherwise.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a last-write-wins instantaneous value (workers in flight,
// current shard side). Padded like a counter stripe; a nil *Gauge is
// the disabled no-op. Concurrency-safe.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// NewGauge returns a standalone gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores the value.
//
//joinlint:hotpath
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add folds a delta into the gauge.
//
//joinlint:hotpath
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
