package obs

import "testing"

// The hot-path contract (ISSUE 10 satellite): Record/Inc/Set and span
// enter-exit allocate nothing, on an ENABLED registry and on a disabled
// (nil) one, and the suite runs under -race in CI so the race
// instrumentation cannot hide an allocation either.

func requireZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(200, fn); avg != 0 {
		t.Errorf("%s: %.2f allocs/op, want 0", name, avg)
	}
}

func TestEnabledInstrumentsAllocationFree(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	requireZeroAllocs(t, "Counter.Inc", func() { c.Inc() })
	requireZeroAllocs(t, "Counter.Add", func() { c.Add(3) })
	requireZeroAllocs(t, "Gauge.Set", func() { g.Set(7) })
	requireZeroAllocs(t, "Gauge.Add", func() { g.Add(1) })
	requireZeroAllocs(t, "Histogram.Record", func() { h.Record(12345) })
	requireZeroAllocs(t, "Registry.Now", func() { _ = r.Now() })
	requireZeroAllocs(t, "span enter-exit", func() { r.Exit(r.Enter(h)) })
}

func TestDisabledInstrumentsAllocationFree(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	requireZeroAllocs(t, "Counter.Inc", func() { c.Inc() })
	requireZeroAllocs(t, "Counter.Add", func() { c.Add(3) })
	requireZeroAllocs(t, "Gauge.Set", func() { g.Set(7) })
	requireZeroAllocs(t, "Gauge.Add", func() { g.Add(1) })
	requireZeroAllocs(t, "Histogram.Record", func() { h.Record(12345) })
	requireZeroAllocs(t, "Registry.Now", func() { _ = r.Now() })
	requireZeroAllocs(t, "span enter-exit", func() { r.Exit(r.Enter(h)) })
}

// Benchmarks back the "disabled registry is a nil check, ~1-2ns" claim;
// run with: go test ./internal/obs/ -run - -bench Disabled
func BenchmarkDisabledCounterInc(b *testing.B) {
	var r *Registry
	c := r.Counter("c")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledCounterInc(b *testing.B) {
	c := New().Counter("c")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledHistogramRecord(b *testing.B) {
	h := New().Histogram("h")
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}
