package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterSumsAcrossStripes(t *testing.T) {
	c := NewCounter()
	for i := 0; i < 1000; i++ {
		c.Inc()
	}
	c.Add(500)
	if got := c.Value(); got != 1500 {
		t.Fatalf("Value() = %d, want 1500", got)
	}
}

func TestNilInstrumentsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil instruments: %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(3)
	g.Set(7)
	g.Add(1)
	h.Record(42)
	r.Exit(r.Enter(h))
	r.SetLabel("k", "v")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments accumulated state")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := New()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name, different counters")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name, different histograms")
	}
	r.Counter("a").Add(2)
	r.Counter("a").Inc()
	if got := r.Counter("a").Value(); got != 3 {
		t.Fatalf("shared counter = %d, want 3", got)
	}
}

func TestSpanRecordsElapsedClock(t *testing.T) {
	r := New()
	var now int64
	r.SetClock(func() int64 { return now })
	h := r.Histogram("span_ns")
	sp := r.Enter(h)
	now += 1000
	r.Exit(sp)
	if got := h.Count(); got != 1 {
		t.Fatalf("span recorded %d observations, want 1", got)
	}
	if got := h.Sum(); got != 1000 {
		t.Fatalf("span recorded %d ns, want 1000", got)
	}
}

func TestHistogramBucketGeometry(t *testing.T) {
	// Every representable value must land in a bucket whose bounds
	// contain it, and bucket indexes must be monotone in the value.
	vals := []int64{0, 1, 7, 8, 9, 15, 16, 100, 1023, 1024, 1 << 20, 1<<42 - 1, 1 << 42, math.MaxInt64}
	prev := -1
	for _, v := range vals {
		i := histBucket(v)
		lo, hi := BucketBounds(i)
		if v < lo || (v >= hi && hi != math.MaxInt64) {
			t.Fatalf("value %d in bucket %d with bounds [%d, %d)", v, i, lo, hi)
		}
		if i < prev {
			t.Fatalf("bucket index not monotone at value %d: %d < %d", v, i, prev)
		}
		prev = i
	}
	// Relative bucket width stays under 2^-histSubBits beyond the exact
	// range.
	for i := histSubCount; i < histNumBuckets-1; i++ {
		lo, hi := BucketBounds(i)
		if width := hi - lo; width > lo>>histSubBits {
			t.Fatalf("bucket %d [%d, %d): width %d above %d", i, lo, hi, width, lo>>histSubBits)
		}
	}
}

// TestHistogramQuantileAgreesWithExact is the bounded-latency contract
// (ISSUE 10 satellite): the histogram's quantile estimate must land
// within one bucket width of the exact-sample percentile the concurrent
// driver reports on short runs.
func TestHistogramQuantileAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	samples := make([]float64, 0, 100000)
	for i := 0; i < 100000; i++ {
		// Log-normal-ish latencies around ~30µs with a heavy tail.
		v := int64(30000 * math.Exp(rng.NormFloat64()))
		h.Record(v)
		samples = append(samples, float64(v))
	}
	sort.Float64s(samples)
	for _, p := range []float64{0.50, 0.90, 0.95, 0.99} {
		pos := p * float64(len(samples)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		exact := samples[lo]
		if lo+1 < len(samples) {
			exact = samples[lo]*(1-frac) + samples[lo+1]*frac
		}
		est := h.Quantile(p)
		bLo, bHi := BucketBounds(histBucket(int64(exact)))
		width := float64(bHi - bLo)
		if math.Abs(est-exact) > width {
			t.Errorf("p%.0f: estimate %.0f vs exact %.0f differs by more than one bucket width %.0f",
				p*100, est, exact, width)
		}
	}
}

// TestHistogramConcurrentHammer drives one histogram from 8 goroutines
// and requires exact total-count accounting (ISSUE 10 satellite).
func TestHistogramConcurrentHammer(t *testing.T) {
	const goroutines = 8
	const perG = 50000
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		g := g
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(int64(g*1000 + i%997))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count() = %d, want %d", got, goroutines*perG)
	}
	var bucketTotal uint64
	for _, b := range h.snapshot().Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != goroutines*perG {
		t.Fatalf("bucket counts sum to %d, want %d", bucketTotal, goroutines*perG)
	}
}

func TestCounterConcurrentHammer(t *testing.T) {
	const goroutines = 8
	const perG = 100000
	c := NewCounter()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("Value() = %d, want %d", got, goroutines*perG)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := New()
	r.Counter("epoch.epochs_published").Add(12)
	r.Gauge("shard.side").Set(4)
	r.SetLabel("tune.choice", "csr/cps=64")
	h := r.Histogram("core.tick.build_ns")
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["epoch.epochs_published"] != 12 {
		t.Fatalf("counter lost in round trip: %+v", snap.Counters)
	}
	if snap.Gauges["shard.side"] != 4 {
		t.Fatalf("gauge lost in round trip: %+v", snap.Gauges)
	}
	if snap.Labels["tune.choice"] != "csr/cps=64" {
		t.Fatalf("label lost in round trip: %+v", snap.Labels)
	}
	hs := snap.Histograms["core.tick.build_ns"]
	if hs.Count != 100 || hs.Sum != 5050000 || hs.Max != 100000 {
		t.Fatalf("histogram summary wrong after round trip: %+v", hs)
	}
	if len(hs.Buckets) == 0 {
		t.Fatal("histogram buckets missing from snapshot")
	}
}

func TestDebugEndpointServesSnapshotAndHistDump(t *testing.T) {
	r := New()
	r.Counter("core.ticks").Add(3)
	r.Histogram("core.tick.query_ns").Record(12345)
	addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 5 * time.Second}

	resp, err := client.Get("http://" + addr + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Counters["core.ticks"] != 3 {
		t.Fatalf("endpoint snapshot missing counter: %+v", snap.Counters)
	}
	if snap.Histograms["core.tick.query_ns"].Count != 1 {
		t.Fatalf("endpoint snapshot missing histogram: %+v", snap.Histograms)
	}

	resp, err = client.Get("http://" + addr + "/debug/obs/hist?name=core.tick")
	if err != nil {
		t.Fatal(err)
	}
	dump, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(string(dump), "core.tick.query_ns") {
		t.Fatalf("hist dump lacks histogram header:\n%s", dump)
	}

	resp, err = client.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint status %d", resp.StatusCode)
	}
}
