// Package obs is the engine's instrumentation layer: a registry of
// padded sharded counters, gauges, and fixed-bucket log-scale latency
// histograms, plus phase spans timed by a caller-supplied clock hook and
// an opt-in HTTP debug endpoint (see http.go).
//
// # Hot-path contract
//
// Every instrument mutation — Counter.Inc/Add, Gauge.Set/Add,
// Histogram.Record, Registry.Enter/Exit — is annotated
// //joinlint:hotpath and proven allocation-free by the escape gate, so
// the kernels and drivers may call them on their innermost paths. All
// hot methods are nil-receiver no-ops: a disabled registry (nil
// *Registry) hands out nil instruments, and a mutation on a nil
// instrument compiles down to a pointer test and a return. Disabling
// observability therefore costs one predictable branch per call site,
// not a build tag.
//
// # Clock
//
// Spans never read time.Now on the hot path (the hotpath analyzer
// rejects it); they sample the registry's clock hook, a monotonic
// nanosecond counter installed at New and replaceable via SetClock for
// deterministic tests.
//
// # Naming
//
// Instrument names are dot-separated, prefixed by the owning subsystem
// ("core.tick.build_ns", "epoch.epochs_published", "shard.query_fanout",
// "tune.predicted_tick_ns"). Duration-valued instruments carry an _ns
// suffix. Requesting a name twice returns the same instrument, so
// independent components (e.g. the per-region epoch wrappers of a
// sharded engine) aggregate into one series by construction.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Registry owns a process's instruments. The zero registry is not
// usable; construct with New. A nil *Registry is the disabled state:
// every accessor returns a nil instrument and every mutation no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	labels   map[string]string

	// clock is the monotonic nanosecond hook spans sample; it exists so
	// hot-path spans need no time.Now (and so tests can step time by
	// hand).
	clock func() int64
	start time.Time
}

// New returns an enabled registry whose clock reads the monotonic
// nanoseconds since New.
func New() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		labels:   make(map[string]string),
		start:    time.Now(),
	}
	start := r.start
	r.clock = func() int64 { return int64(time.Since(start)) }
	return r
}

// SetClock replaces the span clock hook (monotonic nanoseconds).
// Intended for tests; not safe concurrently with spans in flight.
func (r *Registry) SetClock(clock func() int64) {
	if r == nil || clock == nil {
		return
	}
	r.clock = clock
}

// Now samples the registry clock (0 when disabled). Exported so callers
// timing multi-instrument sections can share one clock read.
//
//joinlint:hotpath
func (r *Registry) Now() int64 {
	if r == nil {
		return 0
	}
	return r.clock()
}

// Counter returns the named counter, creating it on first request.
// Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = NewCounter()
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first request. Returns
// nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = NewGauge()
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first request.
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// SetLabel records a static string fact ("tune.choice" → the selected
// family). Labels are snapshot metadata, not hot-path instruments.
func (r *Registry) SetLabel(name, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.labels[name] = value
}

// Span is an open phase measurement: the histogram it will feed and the
// clock value at entry. The zero Span (from a disabled registry) exits
// as a no-op. Spans are plain values — passing them allocates nothing.
type Span struct {
	h  *Histogram
	t0 int64
}

// Enter opens a span against h at the current clock. Nil registry or
// nil histogram yields the inert zero span.
//
//joinlint:hotpath
func (r *Registry) Enter(h *Histogram) Span {
	if r == nil || h == nil {
		return Span{}
	}
	return Span{h: h, t0: r.clock()}
}

// Exit closes the span, recording the elapsed clock into its histogram.
//
//joinlint:hotpath
func (r *Registry) Exit(s Span) {
	if r == nil || s.h == nil {
		return
	}
	s.h.Record(r.clock() - s.t0)
}

// Instrumentable is implemented by indexes and wrappers that accept
// instrumentation after construction. Instrument must be called before
// the component is used (drivers call it ahead of Build); implementations
// need not support late or concurrent re-instrumentation.
type Instrumentable interface {
	Instrument(*Registry)
}

// Instrument offers the registry to x when x accepts one. A nil
// registry is not offered: components keep their standalone instruments.
func Instrument(x any, r *Registry) {
	if r == nil {
		return
	}
	if in, ok := x.(Instrumentable); ok {
		in.Instrument(r)
	}
}

// sortedKeys returns m's keys in deterministic order for snapshots.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
