package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/geom"
)

// Source is the per-tick event stream the join driver consumes. Both the
// live Generator and the replaying Player implement it, so experiments can
// run either from a seed or from a recorded trace file.
type Source interface {
	// Config returns the workload parameters.
	Config() Config
	// Objects exposes the current base table (read-only for callers).
	Objects() []Object
	// Queriers returns the IDs querying this tick (slice reused per tick).
	Queriers() []uint32
	// QueryRect returns the range query of the given querier.
	QueryRect(id uint32) geom.Rect
	// Updates returns this tick's update batch, advancing the tick. The
	// batch is not yet applied to the base table.
	Updates() []Update
	// ApplyUpdates installs a batch at the end of the tick.
	ApplyUpdates([]Update)
}

var (
	_ Source = (*Generator)(nil)
	_ Source = (*Player)(nil)
)

// TickTrace is the recorded event stream of a single tick.
type TickTrace struct {
	Queriers []uint32
	Updates  []Update
}

// Trace is a fully materialized workload: the initial population plus the
// query and update stream of every tick. Traces make cross-technique
// comparisons bit-identical and allow workloads to be generated once and
// replayed many times (cmd/workloadgen).
type Trace struct {
	Config  Config
	Initial []Object
	Ticks   []TickTrace
}

// Record runs a generator for cfg.Ticks ticks and materializes the whole
// stream.
func Record(cfg Config) (*Trace, error) {
	g, err := NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	t := &Trace{
		Config:  cfg,
		Initial: append([]Object(nil), g.Objects()...),
		Ticks:   make([]TickTrace, 0, cfg.Ticks),
	}
	for i := 0; i < cfg.Ticks; i++ {
		tt := TickTrace{
			Queriers: append([]uint32(nil), g.Queriers()...),
			Updates:  append([]Update(nil), g.Updates()...),
		}
		g.ApplyUpdates(tt.Updates)
		t.Ticks = append(t.Ticks, tt)
	}
	return t, nil
}

// Player replays a recorded trace through the Source interface.
type Player struct {
	trace   *Trace
	objects []Object
	tick    int
}

// NewPlayer returns a Player positioned at tick 0 of the trace. The trace
// itself is never mutated, so several players can share one trace (though
// each player must be used from a single goroutine).
func NewPlayer(t *Trace) *Player {
	return &Player{
		trace:   t,
		objects: append([]Object(nil), t.Initial...),
	}
}

// Reset rewinds the player to tick 0.
func (p *Player) Reset() {
	p.objects = append(p.objects[:0], p.trace.Initial...)
	p.tick = 0
}

// Config implements Source.
func (p *Player) Config() Config { return p.trace.Config }

// Objects implements Source.
func (p *Player) Objects() []Object { return p.objects }

// Tick returns the index of the next tick to be replayed.
func (p *Player) Tick() int { return p.tick }

// Queriers implements Source.
func (p *Player) Queriers() []uint32 {
	if p.tick >= len(p.trace.Ticks) {
		return nil
	}
	return p.trace.Ticks[p.tick].Queriers
}

// QueryRect implements Source.
func (p *Player) QueryRect(id uint32) geom.Rect {
	return geom.Square(p.objects[id].Pos, p.trace.Config.QuerySize)
}

// Updates implements Source.
func (p *Player) Updates() []Update {
	if p.tick >= len(p.trace.Ticks) {
		return nil
	}
	u := p.trace.Ticks[p.tick].Updates
	p.tick++
	return u
}

// ApplyUpdates implements Source.
func (p *Player) ApplyUpdates(batch []Update) {
	for _, u := range batch {
		p.objects[u.ID] = Object{Pos: u.Pos, Vel: u.Vel}
	}
}

// Binary trace format (little endian):
//
//	magic "SJTR" | version u16 | Config | numObjects u32 | objects |
//	numTicks u32 | per tick: numQueriers u32, ids | numUpdates u32, updates
//
// The format is versioned so future extensions (e.g. per-tick metadata)
// remain loadable.
const (
	traceMagic   = "SJTR"
	traceVersion = 1
)

// WriteTo serializes the trace. It implements io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16)}
	write := func(v any) {
		if cw.err == nil {
			cw.err = binary.Write(cw, binary.LittleEndian, v)
		}
	}
	if _, err := cw.Write([]byte(traceMagic)); err != nil {
		return cw.n, err
	}
	write(uint16(traceVersion))
	writeConfig(write, t.Config)
	write(uint32(len(t.Initial)))
	for _, o := range t.Initial {
		writeObject(write, o)
	}
	write(uint32(len(t.Ticks)))
	for _, tt := range t.Ticks {
		write(uint32(len(tt.Queriers)))
		for _, q := range tt.Queriers {
			write(q)
		}
		write(uint32(len(tt.Updates)))
		for _, u := range tt.Updates {
			write(u.ID)
			writeObject(write, Object{Pos: u.Pos, Vel: u.Vel})
		}
	}
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("workload: reading trace magic: %w", err)
	}
	if string(magic[:]) != traceMagic {
		return nil, fmt.Errorf("workload: bad trace magic %q", magic[:])
	}
	var rerr error
	read := func(v any) {
		if rerr == nil {
			rerr = binary.Read(br, binary.LittleEndian, v)
		}
	}
	var version uint16
	read(&version)
	if rerr == nil && version != traceVersion {
		return nil, fmt.Errorf("workload: unsupported trace version %d", version)
	}
	t := &Trace{}
	t.Config = readConfig(read)
	var n uint32
	read(&n)
	if rerr != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", rerr)
	}
	if int(n) > maxTraceObjects {
		return nil, fmt.Errorf("workload: implausible object count %d", n)
	}
	t.Initial = make([]Object, n)
	for i := range t.Initial {
		t.Initial[i] = readObject(read)
	}
	var ticks uint32
	read(&ticks)
	if rerr != nil {
		return nil, fmt.Errorf("workload: reading trace objects: %w", rerr)
	}
	if int(ticks) > maxTraceTicks {
		return nil, fmt.Errorf("workload: implausible tick count %d", ticks)
	}
	t.Ticks = make([]TickTrace, ticks)
	for i := range t.Ticks {
		var nq uint32
		read(&nq)
		if rerr == nil && nq > n {
			return nil, fmt.Errorf("workload: tick %d has %d queriers for %d objects", i, nq, n)
		}
		qs := make([]uint32, nq)
		for j := range qs {
			read(&qs[j])
		}
		var nu uint32
		read(&nu)
		if rerr == nil && nu > n {
			return nil, fmt.Errorf("workload: tick %d has %d updates for %d objects", i, nu, n)
		}
		us := make([]Update, nu)
		for j := range us {
			read(&us[j].ID)
			o := readObject(read)
			us[j].Pos, us[j].Vel = o.Pos, o.Vel
		}
		t.Ticks[i] = TickTrace{Queriers: qs, Updates: us}
		if rerr != nil {
			return nil, fmt.Errorf("workload: reading tick %d: %w", i, rerr)
		}
	}
	return t, rerr
}

const (
	maxTraceObjects = 1 << 28
	maxTraceTicks   = 1 << 24
)

func writeConfig(write func(any), c Config) {
	write(uint8(c.Kind))
	write(c.Seed)
	write(uint32(c.Ticks))
	write(uint32(c.NumPoints))
	write(c.SpaceSize)
	write(c.MaxSpeed)
	write(c.QuerySize)
	write(c.Queriers)
	write(c.Updaters)
	write(uint32(c.Hotspots))
	write(c.HotspotSigma)
}

func readConfig(read func(any)) Config {
	var c Config
	var kind uint8
	var ticks, points, hotspots uint32
	read(&kind)
	read(&c.Seed)
	read(&ticks)
	read(&points)
	read(&c.SpaceSize)
	read(&c.MaxSpeed)
	read(&c.QuerySize)
	read(&c.Queriers)
	read(&c.Updaters)
	read(&hotspots)
	read(&c.HotspotSigma)
	c.Kind = Kind(kind)
	c.Ticks = int(ticks)
	c.NumPoints = int(points)
	c.Hotspots = int(hotspots)
	return c
}

func writeObject(write func(any), o Object) {
	write(o.Pos.X)
	write(o.Pos.Y)
	write(o.Vel.X)
	write(o.Vel.Y)
}

func readObject(read func(any)) Object {
	var o Object
	read(&o.Pos.X)
	read(&o.Pos.Y)
	read(&o.Vel.X)
	read(&o.Vel.Y)
	return o
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
	return n, err
}

// Checksum computes an order-independent digest over the trace's initial
// state, used by tests to confirm that identical seeds produce identical
// workloads.
func (t *Trace) Checksum() uint64 {
	var h uint64 = 14695981039346656037
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, o := range t.Initial {
		mix(uint64(math.Float32bits(o.Pos.X)))
		mix(uint64(math.Float32bits(o.Pos.Y)))
	}
	for _, tt := range t.Ticks {
		mix(uint64(len(tt.Queriers))<<32 | uint64(len(tt.Updates)))
		for _, q := range tt.Queriers {
			mix(uint64(q))
		}
		for _, u := range tt.Updates {
			mix(uint64(u.ID))
			mix(uint64(math.Float32bits(u.Pos.X))<<32 | uint64(math.Float32bits(u.Pos.Y)))
		}
	}
	return h
}
