package workload

import (
	"testing"

	"repro/internal/geom"
)

func testBoxConfig() BoxConfig {
	cfg := DefaultUniformBoxes()
	cfg.NumPoints = 600
	cfg.Ticks = 8
	cfg.SpaceSize = 2000
	cfg.MaxSpeed = 40
	cfg.QuerySize = 120
	cfg.MinSide = 10
	cfg.MaxSide = 200
	return cfg
}

func TestBoxConfigValidate(t *testing.T) {
	good := testBoxConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*BoxConfig)
	}{
		{"negative MinSide", func(c *BoxConfig) { c.MinSide = -1 }},
		{"MaxSide below MinSide", func(c *BoxConfig) { c.MinSide = 50; c.MaxSide = 10 }},
		{"MaxSide beyond space", func(c *BoxConfig) { c.MaxSide = c.SpaceSize * 2 }},
		{"unknown extent kind", func(c *BoxConfig) { c.Extent = ExtentKind(99) }},
		{"bad embedded config", func(c *BoxConfig) { c.NumPoints = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testBoxConfig()
			tc.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("want validation error, got nil")
			}
		})
	}
}

// TestBoxGeneratorDeterminism: two generators from the same config must
// produce identical rect snapshots, query streams, and update batches.
func TestBoxGeneratorDeterminism(t *testing.T) {
	for _, cfg := range []BoxConfig{testBoxConfig(), func() BoxConfig {
		c := testBoxConfig()
		c.Config.Kind = Gaussian
		c.Hotspots = 4
		c.Extent = ExtentGaussian
		return c
	}()} {
		t.Run(cfg.Kind.String()+"/"+cfg.Extent.String(), func(t *testing.T) {
			a := MustNewBoxGenerator(cfg)
			b := MustNewBoxGenerator(cfg)
			for tick := 0; tick < cfg.Ticks; tick++ {
				ra := a.Rects(nil)
				rb := b.Rects(nil)
				for i := range ra {
					if ra[i] != rb[i] {
						t.Fatalf("tick %d: rect %d differs: %v vs %v", tick, i, ra[i], rb[i])
					}
				}
				qa, qb := a.Queriers(), b.Queriers()
				if len(qa) != len(qb) {
					t.Fatalf("tick %d: querier counts differ", tick)
				}
				ua, ub := a.Updates(), b.Updates()
				if len(ua) != len(ub) {
					t.Fatalf("tick %d: update counts differ", tick)
				}
				for i := range ua {
					if ua[i] != ub[i] {
						t.Fatalf("tick %d: update %d differs", tick, i)
					}
				}
				a.ApplyUpdates(ua)
				b.ApplyUpdates(ub)
			}
		})
	}
}

// TestBoxGeneratorExtents: every MBR's sides stay within the configured
// bounds and ride along unchanged as the object moves.
func TestBoxGeneratorExtents(t *testing.T) {
	for _, extent := range []ExtentKind{ExtentUniform, ExtentGaussian} {
		t.Run(extent.String(), func(t *testing.T) {
			cfg := testBoxConfig()
			cfg.Extent = extent
			bg := MustNewBoxGenerator(cfg)
			initial := bg.Rects(nil)
			widths := make([]float32, len(initial))
			heights := make([]float32, len(initial))
			for i, r := range initial {
				widths[i], heights[i] = r.Width(), r.Height()
				const tol = 1e-3
				if r.Width() < cfg.MinSide-tol || r.Width() > cfg.MaxSide+tol {
					t.Fatalf("rect %d width %g outside [%g, %g]", i, r.Width(), cfg.MinSide, cfg.MaxSide)
				}
				if r.Height() < cfg.MinSide-tol || r.Height() > cfg.MaxSide+tol {
					t.Fatalf("rect %d height %g outside [%g, %g]", i, r.Height(), cfg.MinSide, cfg.MaxSide)
				}
			}
			for tick := 0; tick < 4; tick++ {
				bg.Queriers()
				bg.ApplyUpdates(bg.Updates())
			}
			// Extents are stored as half-widths; the reconstructed side
			// (pos+h)-(pos-h) picks up an ulp of rounding as the centre
			// moves, so compare with a small tolerance.
			const drift = 1e-2
			for i, r := range bg.Rects(nil) {
				if dw := r.Width() - widths[i]; dw > drift || dw < -drift {
					t.Fatalf("rect %d width changed while moving: %g -> %g", i, widths[i], r.Width())
				}
				if dh := r.Height() - heights[i]; dh > drift || dh < -drift {
					t.Fatalf("rect %d height changed while moving: %g -> %g", i, heights[i], r.Height())
				}
			}
		})
	}
}

// TestBoxGeneratorTracksCentres: the box stream's MBR centres are the
// inner point generator's positions, so point and box workloads with the
// same seed share kinematics exactly.
func TestBoxGeneratorTracksCentres(t *testing.T) {
	cfg := testBoxConfig()
	bg := MustNewBoxGenerator(cfg)
	pg := MustNewGenerator(cfg.Config)
	for tick := 0; tick < 4; tick++ {
		rects := bg.Rects(nil)
		for i, o := range pg.Objects() {
			c := rects[i].Center()
			// Centres reconstruct exactly: Min/Max are pos -+ half, so
			// (Min+Max)/2 rounds back to pos when half extents are
			// representable; allow an ulp of slack anyway.
			if dx := c.X - o.Pos.X; dx > 1e-2 || dx < -1e-2 {
				t.Fatalf("tick %d: rect %d centre x %g, point %g", tick, i, c.X, o.Pos.X)
			}
			if dy := c.Y - o.Pos.Y; dy > 1e-2 || dy < -1e-2 {
				t.Fatalf("tick %d: rect %d centre y %g, point %g", tick, i, c.Y, o.Pos.Y)
			}
		}
		if bq, pq := bg.Queriers(), pg.Queriers(); len(bq) != len(pq) {
			t.Fatalf("tick %d: querier streams diverge", tick)
		}
		bu := bg.Updates()
		pu := pg.Updates()
		if len(bu) != len(pu) {
			t.Fatalf("tick %d: update streams diverge", tick)
		}
		for i := range bu {
			if bu[i].ID != pu[i].ID || bu[i].Pos != pu[i].Pos {
				t.Fatalf("tick %d: update %d diverges", tick, i)
			}
		}
		bg.ApplyUpdates(bu)
		pg.ApplyUpdates(pu)
	}
}

// TestBoxSourceRefreshShards: sharded refresh covers exactly the
// requested range.
func TestBoxSourceRefreshShards(t *testing.T) {
	cfg := testBoxConfig()
	bg := MustNewBoxGenerator(cfg)
	want := bg.Rects(nil)
	got := make([]geom.Rect, cfg.NumPoints)
	for lo := 0; lo < len(got); lo += 100 {
		hi := lo + 100
		if hi > len(got) {
			hi = len(got)
		}
		bg.RefreshRects(got, lo, hi)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sharded refresh differs at %d", i)
		}
	}
}
