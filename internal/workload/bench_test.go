package workload

import "testing"

func BenchmarkGeneratorTick(b *testing.B) {
	for _, kind := range []Kind{Uniform, Gaussian, Simulation} {
		b.Run(kind.String(), func(b *testing.B) {
			cfg := DefaultUniform()
			cfg.Kind = kind
			if kind != Uniform {
				cfg.Hotspots = 100
			}
			g := MustNewGenerator(cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Queriers()
				g.ApplyUpdates(g.Updates())
			}
		})
	}
}

func BenchmarkTraceRecord(b *testing.B) {
	cfg := DefaultUniform()
	cfg.Ticks = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Record(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
