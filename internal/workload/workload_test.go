package workload

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// smallUniform returns a fast test configuration.
func smallUniform() Config {
	cfg := DefaultUniform()
	cfg.NumPoints = 500
	cfg.Ticks = 10
	cfg.SpaceSize = 1000
	cfg.MaxSpeed = 20
	cfg.QuerySize = 50
	return cfg
}

func smallGaussian() Config {
	cfg := smallUniform()
	cfg.Kind = Gaussian
	cfg.Hotspots = 5
	return cfg
}

func TestValidate(t *testing.T) {
	good := smallUniform()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []struct {
		name string
		mod  func(*Config)
	}{
		{"zero ticks", func(c *Config) { c.Ticks = 0 }},
		{"negative points", func(c *Config) { c.NumPoints = -1 }},
		{"zero space", func(c *Config) { c.SpaceSize = 0 }},
		{"negative speed", func(c *Config) { c.MaxSpeed = -1 }},
		{"zero query size", func(c *Config) { c.QuerySize = 0 }},
		{"queriers > 1", func(c *Config) { c.Queriers = 1.5 }},
		{"negative queriers", func(c *Config) { c.Queriers = -0.1 }},
		{"updaters > 1", func(c *Config) { c.Updaters = 2 }},
		{"gaussian without hotspots", func(c *Config) { c.Kind = Gaussian; c.Hotspots = 0 }},
		{"unknown kind", func(c *Config) { c.Kind = Kind(42) }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			cfg := good
			m.mod(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("invalid config accepted")
			}
			if _, err := NewGenerator(cfg); err == nil {
				t.Fatal("NewGenerator accepted invalid config")
			}
		})
	}
}

func TestDefaultsMatchTable1(t *testing.T) {
	u := DefaultUniform()
	if u.Ticks != 100 || u.NumPoints != 50000 || u.SpaceSize != 22000 ||
		u.MaxSpeed != 200 || u.QuerySize != 400 || u.Queriers != 0.5 || u.Updaters != 0.5 {
		t.Fatalf("uniform defaults diverge from Table 1: %+v", u)
	}
	g := DefaultGaussian()
	if g.Ticks != 120 || g.NumPoints != 50000 || g.SpaceSize != 22000 || g.Kind != Gaussian {
		t.Fatalf("gaussian defaults diverge from Table 1: %+v", g)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInitialPlacementInBounds(t *testing.T) {
	for _, cfg := range []Config{smallUniform(), smallGaussian()} {
		g := MustNewGenerator(cfg)
		bounds := cfg.Bounds()
		for i, o := range g.Objects() {
			if !o.Pos.In(bounds) {
				t.Fatalf("%v: object %d at %v outside %v", cfg.Kind, i, o.Pos, bounds)
			}
		}
	}
}

func TestObjectsStayInBoundsOverTime(t *testing.T) {
	for _, cfg := range []Config{smallUniform(), smallGaussian()} {
		g := MustNewGenerator(cfg)
		bounds := cfg.Bounds()
		for tick := 0; tick < cfg.Ticks; tick++ {
			g.Queriers()
			batch := g.Updates()
			for _, u := range batch {
				if !u.Pos.In(bounds) {
					t.Fatalf("%v tick %d: update moves %d to %v outside %v",
						cfg.Kind, tick, u.ID, u.Pos, bounds)
				}
			}
			g.ApplyUpdates(batch)
		}
	}
}

func TestSpeedLimitRespected(t *testing.T) {
	cfg := smallUniform()
	g := MustNewGenerator(cfg)
	for i, o := range g.Objects() {
		s := math.Hypot(float64(o.Vel.X), float64(o.Vel.Y))
		if s > float64(cfg.MaxSpeed)*1.0001 {
			t.Fatalf("object %d speed %g exceeds max %g", i, s, cfg.MaxSpeed)
		}
	}
	// Displacement per update must not exceed MaxSpeed either (reflection
	// preserves magnitude).
	for tick := 0; tick < cfg.Ticks; tick++ {
		g.Queriers()
		objs := g.Objects()
		batch := g.Updates()
		for _, u := range batch {
			old := objs[u.ID].Pos
			d := math.Hypot(float64(u.Pos.X-old.X), float64(u.Pos.Y-old.Y))
			if d > float64(cfg.MaxSpeed)*1.0001 {
				t.Fatalf("tick %d: object %d moved %g > max speed %g", tick, u.ID, d, cfg.MaxSpeed)
			}
		}
		g.ApplyUpdates(batch)
	}
}

func TestQuerierFraction(t *testing.T) {
	cfg := smallUniform()
	cfg.NumPoints = 2000
	cfg.Ticks = 50
	g := MustNewGenerator(cfg)
	total := 0
	for tick := 0; tick < cfg.Ticks; tick++ {
		total += len(g.Queriers())
		g.ApplyUpdates(g.Updates())
	}
	want := float64(cfg.NumPoints) * float64(cfg.Ticks) * cfg.Queriers
	got := float64(total)
	if got < want*0.95 || got > want*1.05 {
		t.Fatalf("querier count %g, want about %g", got, want)
	}
	if g.TotalQueriers() != int64(total) {
		t.Fatalf("TotalQueriers = %d, want %d", g.TotalQueriers(), total)
	}
}

func TestUpdaterFraction(t *testing.T) {
	cfg := smallUniform()
	cfg.NumPoints = 2000
	cfg.Ticks = 50
	g := MustNewGenerator(cfg)
	total := 0
	for tick := 0; tick < cfg.Ticks; tick++ {
		g.Queriers()
		batch := g.Updates()
		total += len(batch)
		g.ApplyUpdates(batch)
	}
	want := float64(cfg.NumPoints) * float64(cfg.Ticks) * cfg.Updaters
	got := float64(total)
	if got < want*0.95 || got > want*1.05 {
		t.Fatalf("update count %g, want about %g", got, want)
	}
}

func TestZeroFractions(t *testing.T) {
	cfg := smallUniform()
	cfg.Queriers = 0
	cfg.Updaters = 0
	g := MustNewGenerator(cfg)
	if len(g.Queriers()) != 0 {
		t.Fatal("no queriers expected")
	}
	if len(g.Updates()) != 0 {
		t.Fatal("no updates expected")
	}
	if g.Tick() != 1 {
		t.Fatalf("tick must advance even without updates, got %d", g.Tick())
	}
}

func TestQueryRectShape(t *testing.T) {
	cfg := smallUniform()
	g := MustNewGenerator(cfg)
	for id := uint32(0); id < 10; id++ {
		r := g.QueryRect(id)
		// Width can be off by a ULP when the centre coordinate is large.
		const eps = 1e-3
		if math.Abs(float64(r.Width()-cfg.QuerySize)) > eps || math.Abs(float64(r.Height()-cfg.QuerySize)) > eps {
			t.Fatalf("query %d is %gx%g, want %gx%g", id, r.Width(), r.Height(), cfg.QuerySize, cfg.QuerySize)
		}
		if c := r.Center(); math.Abs(float64(c.X-g.Objects()[id].Pos.X)) > 0.01 {
			t.Fatalf("query %d not centred on object: %v vs %v", id, c, g.Objects()[id].Pos)
		}
	}
}

func TestDeterminismAcrossGenerators(t *testing.T) {
	cfg := smallUniform()
	a := MustNewGenerator(cfg)
	b := MustNewGenerator(cfg)
	for tick := 0; tick < cfg.Ticks; tick++ {
		qa, qb := a.Queriers(), b.Queriers()
		if len(qa) != len(qb) {
			t.Fatalf("tick %d: querier counts differ", tick)
		}
		for i := range qa {
			if qa[i] != qb[i] {
				t.Fatalf("tick %d: querier %d differs", tick, i)
			}
		}
		ua, ub := a.Updates(), b.Updates()
		if len(ua) != len(ub) {
			t.Fatalf("tick %d: update counts differ", tick)
		}
		for i := range ua {
			if ua[i] != ub[i] {
				t.Fatalf("tick %d: update %d differs: %+v vs %+v", tick, i, ua[i], ub[i])
			}
		}
		a.ApplyUpdates(ua)
		b.ApplyUpdates(ub)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := smallUniform()
	a := MustNewGenerator(cfg)
	cfg.Seed = 2
	b := MustNewGenerator(cfg)
	same := 0
	for i := range a.Objects() {
		if a.Objects()[i].Pos == b.Objects()[i].Pos {
			same++
		}
	}
	if same > len(a.Objects())/100 {
		t.Fatalf("seeds 1 and 2 share %d placements", same)
	}
}

func TestGaussianClustersAroundHotspots(t *testing.T) {
	cfg := smallGaussian()
	cfg.NumPoints = 5000
	g := MustNewGenerator(cfg)
	hs := g.Hotspots()
	if len(hs) != cfg.Hotspots {
		t.Fatalf("hotspot count = %d, want %d", len(hs), cfg.Hotspots)
	}
	// Most objects should be within 3 sigma of some hotspot.
	sigma := float64(cfg.SpaceSize) * defaultHotspotSigma
	near := 0
	for _, o := range g.Objects() {
		for _, h := range hs {
			d := math.Hypot(float64(o.Pos.X-h.X), float64(o.Pos.Y-h.Y))
			if d <= 3.5*sigma {
				near++
				break
			}
		}
	}
	frac := float64(near) / float64(len(g.Objects()))
	if frac < 0.9 {
		t.Fatalf("only %.0f%% of objects near a hotspot", frac*100)
	}
	// And they must not be uniform: the mean distance to the nearest
	// hotspot must be far below the uniform expectation (~ spaceSize/4
	// for 5 hotspots).
	var sum float64
	for _, o := range g.Objects() {
		best := math.Inf(1)
		for _, h := range hs {
			d := math.Hypot(float64(o.Pos.X-h.X), float64(o.Pos.Y-h.Y))
			if d < best {
				best = d
			}
		}
		sum += best
	}
	mean := sum / float64(len(g.Objects()))
	if mean > float64(cfg.SpaceSize)/8 {
		t.Fatalf("mean nearest-hotspot distance %g too large for a clustered workload", mean)
	}
}

func TestUniformCoversSpace(t *testing.T) {
	cfg := smallUniform()
	cfg.NumPoints = 10000
	g := MustNewGenerator(cfg)
	// Split the space into a 4x4 lattice; every cell should hold roughly
	// 1/16 of the points.
	var counts [16]int
	cell := cfg.SpaceSize / 4
	for _, o := range g.Objects() {
		cx := int(o.Pos.X / cell)
		cy := int(o.Pos.Y / cell)
		if cx > 3 {
			cx = 3
		}
		if cy > 3 {
			cy = 3
		}
		counts[cy*4+cx]++
	}
	want := cfg.NumPoints / 16
	for i, c := range counts {
		if c < want*7/10 || c > want*13/10 {
			t.Fatalf("cell %d has %d points, want about %d", i, c, want)
		}
	}
}

func TestApplyUpdatesDeferred(t *testing.T) {
	cfg := smallUniform()
	cfg.Updaters = 1 // every object updates
	g := MustNewGenerator(cfg)
	before := append([]Object(nil), g.Objects()...)
	batch := g.Updates()
	// Until ApplyUpdates, the base table must be unchanged.
	for i := range before {
		if g.Objects()[i] != before[i] {
			t.Fatalf("object %d changed before ApplyUpdates", i)
		}
	}
	g.ApplyUpdates(batch)
	changed := 0
	for i := range before {
		if g.Objects()[i].Pos != before[i].Pos {
			changed++
		}
	}
	if changed < len(before)/2 {
		t.Fatalf("only %d/%d objects moved after applying full update batch", changed, len(before))
	}
}

func TestKindString(t *testing.T) {
	if Uniform.String() != "uniform" || Gaussian.String() != "gaussian" {
		t.Fatal("Kind.String broken")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must still format")
	}
}

func TestBounds(t *testing.T) {
	cfg := smallUniform()
	b := cfg.Bounds()
	if b != (geom.Rect{MinX: 0, MinY: 0, MaxX: cfg.SpaceSize, MaxY: cfg.SpaceSize}) {
		t.Fatalf("Bounds = %v", b)
	}
}
