package workload

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// This file extends the moving-object workloads from points to extended
// objects: every object carries a rectangular extent (an MBR) whose
// centre moves exactly like the point workloads' objects. The related
// systems the ROADMAP targets (two-layer space-oriented partitioning,
// parallel in-memory spatial joins) all join rectangles; this generator
// opens those workloads while reusing the paper's kinematics unchanged.

// ExtentKind selects the distribution MBR side lengths are drawn from.
type ExtentKind int

const (
	// ExtentUniform draws each side length uniformly from
	// [MinSide, MaxSide]; width and height are independent, so objects
	// are genuine rectangles, not squares.
	ExtentUniform ExtentKind = iota
	// ExtentGaussian draws each side length normally with mean
	// (MinSide+MaxSide)/2 and sigma (MaxSide-MinSide)/6, clamped to
	// [MinSide, MaxSide] (the 3-sigma range), giving a size population
	// concentrated around the mean with rare extremes.
	ExtentGaussian
)

// String implements fmt.Stringer.
func (k ExtentKind) String() string {
	switch k {
	case ExtentUniform:
		return "uniform"
	case ExtentGaussian:
		return "gaussian"
	default:
		return fmt.Sprintf("ExtentKind(%d)", int(k))
	}
}

// Default extent bounds: at the paper's 22,000-unit space and cps=64
// (cell side ~344) the mean 150-unit side replicates each MBR into ~2
// cells, the regime the two-layer partitioning literature studies.
const (
	DefaultMinSide = 50
	DefaultMaxSide = 250
)

// BoxConfig parameterizes an MBR workload: the embedded Config drives
// the object centres (placement, movement, query and update selection)
// exactly as for points, and the extent fields fix the per-object
// rectangle sizes, drawn once at placement time and carried unchanged as
// the object moves.
type BoxConfig struct {
	Config
	// Extent selects the side-length distribution.
	Extent ExtentKind
	// MinSide and MaxSide bound the per-axis MBR side lengths.
	MinSide, MaxSide float32
}

// DefaultUniformBoxes returns the default uniform box workload: uniform
// centres and movement, uniform extents.
func DefaultUniformBoxes() BoxConfig {
	return BoxConfig{
		Config:  DefaultUniform(),
		Extent:  ExtentUniform,
		MinSide: DefaultMinSide,
		MaxSide: DefaultMaxSide,
	}
}

// DefaultGaussianBoxes returns the default Gaussian box workload:
// hotspot-clustered centres, Gaussian extents.
func DefaultGaussianBoxes() BoxConfig {
	return BoxConfig{
		Config:  DefaultGaussian(),
		Extent:  ExtentGaussian,
		MinSide: DefaultMinSide,
		MaxSide: DefaultMaxSide,
	}
}

// Validate reports the first problem with the configuration, or nil.
func (c BoxConfig) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	switch {
	case c.Extent != ExtentUniform && c.Extent != ExtentGaussian:
		return fmt.Errorf("workload: unknown extent kind %d", int(c.Extent))
	case c.MinSide < 0:
		return fmt.Errorf("workload: MinSide must be non-negative, got %g", c.MinSide)
	case c.MaxSide < c.MinSide:
		return fmt.Errorf("workload: MaxSide %g below MinSide %g", c.MaxSide, c.MinSide)
	case c.MaxSide > c.SpaceSize:
		return fmt.Errorf("workload: MaxSide %g exceeds SpaceSize %g", c.MaxSide, c.SpaceSize)
	}
	return nil
}

// BoxUpdate is one entry of a tick's box update batch: object ID's MBR
// moves to Rect. Pos and Vel carry the underlying kinematic state (the
// MBR centre and its velocity) so the base table round-trips exactly.
type BoxUpdate struct {
	ID   uint32
	Rect geom.Rect
	Pos  geom.Point
	Vel  geom.Point
}

// BoxSource is the per-tick event stream the box join driver consumes —
// the Source contract with the object geometry widened to rectangles.
type BoxSource interface {
	// Config returns the kinematic workload parameters (tick count,
	// bounds, query/update fractions).
	Config() Config
	// NumBoxes returns the number of objects.
	NumBoxes() int
	// RefreshRects writes the current MBR of every object in [lo, hi)
	// into dst[lo:hi]; the driver calls it (possibly per shard) to
	// refresh the per-tick snapshot box indexes are built over.
	RefreshRects(dst []geom.Rect, lo, hi int)
	// Queriers returns the IDs querying this tick (slice reused per
	// tick).
	Queriers() []uint32
	// QueryRect returns the range query of the given querier.
	QueryRect(id uint32) geom.Rect
	// Updates returns this tick's update batch, advancing the tick. The
	// batch is not yet applied to the base table.
	Updates() []BoxUpdate
	// ApplyUpdates installs a batch at the end of the tick.
	ApplyUpdates([]BoxUpdate)
}

var _ BoxSource = (*BoxGenerator)(nil)

// extentSeedSalt decorrelates the extent stream from the three streams
// the inner point generator splits off the same seed.
const extentSeedSalt = 0xb0c5a5d1e7f3909d

// BoxGenerator produces a moving-MBR workload. It wraps the point
// Generator — centres are exactly the point workload for the embedded
// Config, byte for byte — and attaches a fixed half-extent per object,
// drawn from its own random stream so the point streams are untouched.
type BoxGenerator struct {
	cfg          BoxConfig
	gen          *Generator
	halfW, halfH []float32
	boxBuf       []BoxUpdate
	ptBuf        []Update
}

// NewBoxGenerator creates a box generator and places the initial
// population.
func NewBoxGenerator(cfg BoxConfig) (*BoxGenerator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gen, err := NewGenerator(cfg.Config)
	if err != nil {
		return nil, err
	}
	bg := &BoxGenerator{
		cfg:   cfg,
		gen:   gen,
		halfW: make([]float32, cfg.NumPoints),
		halfH: make([]float32, cfg.NumPoints),
	}
	r := xrand.New(cfg.Seed ^ extentSeedSalt)
	for i := range bg.halfW {
		bg.halfW[i] = bg.drawSide(r) / 2
		bg.halfH[i] = bg.drawSide(r) / 2
	}
	return bg, nil
}

// MustNewBoxGenerator is NewBoxGenerator for known-good configurations;
// it panics on error.
func MustNewBoxGenerator(cfg BoxConfig) *BoxGenerator {
	bg, err := NewBoxGenerator(cfg)
	if err != nil {
		panic(err)
	}
	return bg
}

func (bg *BoxGenerator) drawSide(r *xrand.Rand) float32 {
	switch bg.cfg.Extent {
	case ExtentGaussian:
		mean := (bg.cfg.MinSide + bg.cfg.MaxSide) / 2
		sigma := (bg.cfg.MaxSide - bg.cfg.MinSide) / 6
		s := r.Norm(mean, sigma)
		if s < bg.cfg.MinSide {
			return bg.cfg.MinSide
		}
		if s > bg.cfg.MaxSide {
			return bg.cfg.MaxSide
		}
		return s
	default:
		return r.Range(bg.cfg.MinSide, bg.cfg.MaxSide)
	}
}

// BoxConfig returns the full box configuration.
func (bg *BoxGenerator) BoxConfig() BoxConfig { return bg.cfg }

// Config implements BoxSource.
func (bg *BoxGenerator) Config() Config { return bg.cfg.Config }

// NumBoxes implements BoxSource.
func (bg *BoxGenerator) NumBoxes() int { return bg.cfg.NumPoints }

// rectAt is the MBR of object id centred at pos.
func (bg *BoxGenerator) rectAt(id uint32, pos geom.Point) geom.Rect {
	hw, hh := bg.halfW[id], bg.halfH[id]
	return geom.Rect{MinX: pos.X - hw, MinY: pos.Y - hh, MaxX: pos.X + hw, MaxY: pos.Y + hh}
}

// RectOf returns the current MBR of object id.
func (bg *BoxGenerator) RectOf(id uint32) geom.Rect {
	return bg.rectAt(id, bg.gen.Objects()[id].Pos)
}

// RefreshRects implements BoxSource.
func (bg *BoxGenerator) RefreshRects(dst []geom.Rect, lo, hi int) {
	objs := bg.gen.Objects()
	for i := lo; i < hi; i++ {
		dst[i] = bg.rectAt(uint32(i), objs[i].Pos)
	}
}

// Rects appends the current MBR of every object to dst and returns it —
// the per-tick snapshot box indexes are built over.
func (bg *BoxGenerator) Rects(dst []geom.Rect) []geom.Rect {
	if cap(dst) < bg.cfg.NumPoints {
		dst = make([]geom.Rect, bg.cfg.NumPoints)
	}
	dst = dst[:bg.cfg.NumPoints]
	bg.RefreshRects(dst, 0, len(dst))
	return dst
}

// Queriers implements BoxSource.
func (bg *BoxGenerator) Queriers() []uint32 { return bg.gen.Queriers() }

// QueryRect implements BoxSource: the square of side QuerySize centred
// on the object's centre, the direct generalization of the point
// workload's query shape (a point in the square becomes an MBR
// intersecting it).
func (bg *BoxGenerator) QueryRect(id uint32) geom.Rect { return bg.gen.QueryRect(id) }

// Updates implements BoxSource: the inner point generator moves the
// centres and the extents ride along unchanged.
func (bg *BoxGenerator) Updates() []BoxUpdate {
	pt := bg.gen.Updates()
	bg.boxBuf = bg.boxBuf[:0]
	for _, u := range pt {
		bg.boxBuf = append(bg.boxBuf, BoxUpdate{
			ID:   u.ID,
			Rect: bg.rectAt(u.ID, u.Pos),
			Pos:  u.Pos,
			Vel:  u.Vel,
		})
	}
	return bg.boxBuf
}

// ApplyUpdates implements BoxSource.
func (bg *BoxGenerator) ApplyUpdates(batch []BoxUpdate) {
	bg.ptBuf = bg.ptBuf[:0]
	for _, u := range batch {
		bg.ptBuf = append(bg.ptBuf, Update{ID: u.ID, Pos: u.Pos, Vel: u.Vel})
	}
	bg.gen.ApplyUpdates(bg.ptBuf)
}

// Tick returns the index of the next tick to be generated.
func (bg *BoxGenerator) Tick() int { return bg.gen.Tick() }
