package workload

import (
	"math"
	"testing"
)

func smallSimulation() Config {
	cfg := DefaultSimulation()
	cfg.NumPoints = 1000
	cfg.Ticks = 20
	cfg.SpaceSize = 2000
	cfg.MaxSpeed = 40
	cfg.QuerySize = 100
	cfg.Hotspots = 4
	return cfg
}

func TestSimulationDefaults(t *testing.T) {
	cfg := DefaultSimulation()
	if cfg.Kind != Simulation || cfg.Hotspots != DefaultSchools {
		t.Fatalf("defaults = %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if Simulation.String() != "simulation" {
		t.Fatal("kind name wrong")
	}
}

func TestSimulationNeedsSchools(t *testing.T) {
	cfg := smallSimulation()
	cfg.Hotspots = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero schools accepted")
	}
}

func TestSimulationStaysInBounds(t *testing.T) {
	cfg := smallSimulation()
	g := MustNewGenerator(cfg)
	bounds := cfg.Bounds()
	for tick := 0; tick < cfg.Ticks; tick++ {
		g.Queriers()
		batch := g.Updates()
		for _, u := range batch {
			if !u.Pos.In(bounds) {
				t.Fatalf("tick %d: object %d escapes to %v", tick, u.ID, u.Pos)
			}
		}
		g.ApplyUpdates(batch)
		for i, c := range g.Schools() {
			if !c.In(bounds) {
				t.Fatalf("tick %d: school %d centre escapes to %v", tick, i, c)
			}
		}
	}
}

func TestSimulationSchoolsCohere(t *testing.T) {
	// After many ticks of full updating, objects must remain much closer
	// to their nearest school centre than uniform placement would put
	// them — the point of the flocking rule.
	cfg := smallSimulation()
	cfg.Updaters = 1
	cfg.Ticks = 40
	g := MustNewGenerator(cfg)
	for tick := 0; tick < cfg.Ticks; tick++ {
		g.Queriers()
		g.ApplyUpdates(g.Updates())
	}
	centers := g.Schools()
	var sum float64
	for _, o := range g.Objects() {
		best := math.Inf(1)
		for _, c := range centers {
			d := math.Hypot(float64(o.Pos.X-c.X), float64(o.Pos.Y-c.Y))
			if d < best {
				best = d
			}
		}
		sum += best
	}
	mean := sum / float64(len(g.Objects()))
	// Uniform expectation for 4 random centres in a 2000-square is on
	// the order of several hundred; coherent schools stay tight.
	if mean > float64(cfg.SpaceSize)/6 {
		t.Fatalf("mean distance to nearest school %g — schools not cohering", mean)
	}
}

func TestSimulationSchoolsActuallyMove(t *testing.T) {
	cfg := smallSimulation()
	g := MustNewGenerator(cfg)
	initial := make([]float64, 0, len(g.Schools()))
	for _, c := range g.Schools() {
		initial = append(initial, float64(c.X), float64(c.Y))
	}
	for tick := 0; tick < 20; tick++ {
		g.Queriers()
		g.ApplyUpdates(g.Updates())
	}
	moved := 0
	for i, c := range g.Schools() {
		dx := float64(c.X) - initial[2*i]
		dy := float64(c.Y) - initial[2*i+1]
		if math.Hypot(dx, dy) > float64(cfg.MaxSpeed) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no school centre moved; the workload is static")
	}
}

func TestSimulationDeterministicAndSerializable(t *testing.T) {
	cfg := smallSimulation()
	cfg.Ticks = 6
	a, err := Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum() != b.Checksum() {
		t.Fatal("simulation workload not deterministic")
	}
}

func TestSimulationUniformGeneratorHasNoSchools(t *testing.T) {
	g := MustNewGenerator(smallUniform())
	if g.Schools() != nil {
		t.Fatal("uniform generator reports schools")
	}
}
