package workload

import (
	"repro/internal/geom"
	"repro/internal/xrand"
)

// The simulation workload. Besides the synthetic uniform/Gaussian
// workloads, the original study evaluated "simulation workloads" driven
// by a behavioural fish-school model; the paper reports that its
// findings hold there too but omits the plots for space. This file
// provides the closest synthetic equivalent: objects organized into
// schools that drift coherently through the space.
//
// Each school has a centre that performs a smooth random walk (bouncing
// off the space boundary). A member's update pulls it toward its
// school's centre (cohesion), aligns it with the school's drift
// (alignment), and adds individual jitter (separation noise) — the three
// classic flocking terms, reduced to centre/velocity form so no
// neighbour queries are needed inside the generator itself (the join
// under test is the thing that answers neighbour queries; the generator
// must not depend on one).

// simulationState carries the school dynamics of a Simulation-kind
// generator.
type simulationState struct {
	centers  []geom.Point
	drifts   []geom.Point
	memberOf []int
}

// DefaultSchools is the school count used when Config.Hotspots is unset
// for Simulation workloads (schools reuse the Hotspots knob: both mean
// "number of moving clusters").
const DefaultSchools = 20

// DefaultSimulation returns the default fish-school workload: Table 1
// defaults with coherent group movement.
func DefaultSimulation() Config {
	cfg := DefaultUniform()
	cfg.Kind = Simulation
	cfg.Hotspots = DefaultSchools
	return cfg
}

func (g *Generator) placeSimulation(r *xrand.Rand) {
	schools := g.cfg.Hotspots
	st := &simulationState{
		centers:  make([]geom.Point, schools),
		drifts:   make([]geom.Point, schools),
		memberOf: make([]int, len(g.objects)),
	}
	g.sim = st
	for i := range st.centers {
		st.centers[i] = geom.Pt(r.Range(0, g.cfg.SpaceSize), r.Range(0, g.cfg.SpaceSize))
		st.drifts[i] = g.randomVelocity(r)
	}
	for i := range g.objects {
		s := r.Intn(schools)
		st.memberOf[i] = s
		g.objects[i] = Object{
			Pos: g.clamp(geom.Pt(
				r.Norm(st.centers[s].X, g.sigma),
				r.Norm(st.centers[s].Y, g.sigma),
			)),
			Vel: g.schoolVelocity(r, s),
		}
	}
}

// schoolVelocity blends the school drift (alignment) with individual
// jitter, capped at MaxSpeed.
func (g *Generator) schoolVelocity(r *xrand.Rand, school int) geom.Point {
	d := g.sim.drifts[school]
	jitter := g.cfg.MaxSpeed / 6
	return g.limitSpeed(geom.Pt(
		d.X+r.Norm(0, jitter),
		d.Y+r.Norm(0, jitter),
	))
}

// simulationVelocity is the per-update rule: alignment + cohesion +
// jitter.
func (g *Generator) simulationVelocity(r *xrand.Rand, i int) geom.Point {
	st := g.sim
	s := st.memberOf[i]
	o := g.objects[i]
	d := st.drifts[s]
	c := st.centers[s]
	jitter := g.cfg.MaxSpeed / 6
	// Cohesion: a weak spring toward the school centre keeps the group
	// together without collapsing it.
	vx := d.X + 0.05*(c.X-o.Pos.X) + r.Norm(0, jitter)
	vy := d.Y + 0.05*(c.Y-o.Pos.Y) + r.Norm(0, jitter)
	return g.limitSpeed(geom.Pt(vx, vy))
}

// advanceSchools moves every school centre one tick: drift plus a small
// random turn, reflecting at the boundary. Called once per tick from
// Updates.
func (g *Generator) advanceSchools(r *xrand.Rand) {
	st := g.sim
	for i := range st.centers {
		turn := g.cfg.MaxSpeed / 10
		st.drifts[i] = g.limitSpeed(geom.Pt(
			st.drifts[i].X+r.Norm(0, turn),
			st.drifts[i].Y+r.Norm(0, turn),
		))
		pos := st.centers[i].Add(st.drifts[i].X, st.drifts[i].Y)
		s := g.cfg.SpaceSize
		if pos.X < 0 {
			pos.X, st.drifts[i].X = -pos.X, -st.drifts[i].X
		}
		if pos.X >= s {
			pos.X, st.drifts[i].X = 2*nextBelow(s)-pos.X, -st.drifts[i].X
		}
		if pos.Y < 0 {
			pos.Y, st.drifts[i].Y = -pos.Y, -st.drifts[i].Y
		}
		if pos.Y >= s {
			pos.Y, st.drifts[i].Y = 2*nextBelow(s)-pos.Y, -st.drifts[i].Y
		}
		st.centers[i] = g.clamp(pos)
	}
}

// Schools returns the current school centres (nil unless the workload is
// Simulation-kind).
func (g *Generator) Schools() []geom.Point {
	if g.sim == nil {
		return nil
	}
	return g.sim.centers
}
