// Package workload implements the synthetic moving-object workloads of the
// paper's Table 1, following the COST benchmark design of Chen, Jensen &
// Lin (PVLDB 2008) that both the original study and the reproduction use.
//
// Processing is modelled in discrete time-steps called ticks. Each tick
// consists of two non-overlapping phases:
//
//   - query phase: a fraction of the objects (% Queriers) issue square
//     range queries centred on their own position;
//   - update phase: a fraction of the objects (% Updaters) issue updates
//     that may change their velocity and position.
//
// Objects can only read the state of other objects as of the previous
// tick; all updates are applied at the end of the tick. The driver in
// internal/core enforces this by snapshotting positions before the query
// phase and applying the update batch afterwards.
//
// Two spatial distributions are provided. In the uniform workload objects
// are placed at random locations and their speeds and directions are
// chosen at random. In the Gaussian workload objects cluster around a
// fixed set of hotspots and their movements follow a Gaussian-like
// distribution around the hotspot they belong to.
package workload

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// Kind selects the spatial and movement distribution of a workload.
type Kind int

const (
	// Uniform places objects uniformly at random and moves them with
	// uniformly random velocities (Table 1, "Uniform" column).
	Uniform Kind = iota
	// Gaussian places objects around a fixed set of hotspots with
	// normally distributed offsets and Gaussian-like movement (Table 1,
	// "Gaussian" column).
	Gaussian
	// Simulation is the behavioural workload of the original study
	// (fish-school movement): objects form schools that drift coherently
	// through the space. The paper omits its plots for space but reports
	// the same trends; see simulation.go.
	Simulation
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Gaussian:
		return "gaussian"
	case Simulation:
		return "simulation"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config carries the workload parameters of the paper's Table 1. The zero
// value is not useful; start from DefaultUniform or DefaultGaussian.
type Config struct {
	Kind      Kind
	Seed      uint64
	Ticks     int     // number of ticks to generate
	NumPoints int     // number of moving objects
	SpaceSize float32 // side length of the square space (e.g. 22_000)
	MaxSpeed  float32 // maximum displacement per tick
	QuerySize float32 // side length of the square range queries
	Queriers  float64 // fraction of objects issuing a query each tick
	Updaters  float64 // fraction of objects issuing an update each tick
	Hotspots  int     // Gaussian only: number of hotspots
	// HotspotSigma is the standard deviation of object placement around a
	// hotspot, as a fraction of SpaceSize. Zero selects the default 1/20.
	HotspotSigma float64
}

// Defaults from Table 1 (bold values). The Gaussian workload fixes the
// update fraction to the default 50% of the framework: Table 1 lists "%
// Updaters" as N/A for Gaussian because it is not varied there, not
// because updates do not happen.
const (
	DefaultTicks        = 100
	DefaultGaussTicks   = 120
	DefaultNumPoints    = 50_000
	DefaultSpaceSize    = 22_000
	DefaultMaxSpeed     = 200
	DefaultQuerySize    = 400
	DefaultQueriers     = 0.5
	DefaultUpdaters     = 0.5
	DefaultHotspots     = 100
	defaultHotspotSigma = 0.05
)

// DefaultUniform returns the default uniform workload configuration.
func DefaultUniform() Config {
	return Config{
		Kind:      Uniform,
		Seed:      1,
		Ticks:     DefaultTicks,
		NumPoints: DefaultNumPoints,
		SpaceSize: DefaultSpaceSize,
		MaxSpeed:  DefaultMaxSpeed,
		QuerySize: DefaultQuerySize,
		Queriers:  DefaultQueriers,
		Updaters:  DefaultUpdaters,
	}
}

// DefaultGaussian returns the default Gaussian (hotspot) workload
// configuration.
func DefaultGaussian() Config {
	cfg := DefaultUniform()
	cfg.Kind = Gaussian
	cfg.Ticks = DefaultGaussTicks
	cfg.Hotspots = DefaultHotspots
	return cfg
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.Ticks <= 0:
		return fmt.Errorf("workload: Ticks must be positive, got %d", c.Ticks)
	case c.NumPoints <= 0:
		return fmt.Errorf("workload: NumPoints must be positive, got %d", c.NumPoints)
	case c.SpaceSize <= 0:
		return fmt.Errorf("workload: SpaceSize must be positive, got %g", c.SpaceSize)
	case c.MaxSpeed < 0:
		return fmt.Errorf("workload: MaxSpeed must be non-negative, got %g", c.MaxSpeed)
	case c.QuerySize <= 0:
		return fmt.Errorf("workload: QuerySize must be positive, got %g", c.QuerySize)
	case c.Queriers < 0 || c.Queriers > 1:
		return fmt.Errorf("workload: Queriers must be in [0,1], got %g", c.Queriers)
	case c.Updaters < 0 || c.Updaters > 1:
		return fmt.Errorf("workload: Updaters must be in [0,1], got %g", c.Updaters)
	case (c.Kind == Gaussian || c.Kind == Simulation) && c.Hotspots <= 0:
		return fmt.Errorf("workload: %s workload needs Hotspots > 0, got %d", c.Kind, c.Hotspots)
	case c.Kind != Uniform && c.Kind != Gaussian && c.Kind != Simulation:
		return fmt.Errorf("workload: unknown kind %d", int(c.Kind))
	}
	return nil
}

// Bounds returns the spatial extent of the workload's data space.
func (c Config) Bounds() geom.Rect {
	return geom.Rect{MinX: 0, MinY: 0, MaxX: c.SpaceSize, MaxY: c.SpaceSize}
}

// Object is the full state of one moving object: its position and its
// current velocity vector (displacement per tick).
type Object struct {
	Pos geom.Point
	Vel geom.Point
}

// Update is one entry of a tick's update batch: object ID moves to Pos
// with new velocity Vel. Old state is implicit (the driver owns the base
// table).
type Update struct {
	ID  uint32
	Pos geom.Point
	Vel geom.Point
}

// Generator produces the per-tick query and update streams for a
// configuration. It owns independent random streams for placement,
// querier selection, and movement, so varying one parameter leaves the
// other streams untouched — exactly what the paper's parameter sweeps
// need to compare like with like.
type Generator struct {
	cfg      Config
	objects  []Object
	hotspots []geom.Point
	homes    []int // Gaussian: hotspot index each object belongs to

	queryRand  *xrand.Rand
	moveRand   *xrand.Rand
	tick       int
	queryBuf   []uint32
	updateBuf  []Update
	sigma      float32
	queryCount int64
	sim        *simulationState
}

// NewGenerator creates a generator and places the initial population.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed)
	placeRand := root.Split()
	g := &Generator{
		cfg:       cfg,
		queryRand: root.Split(),
		moveRand:  root.Split(),
		objects:   make([]Object, cfg.NumPoints),
	}
	g.sigma = float32(cfg.HotspotSigma)
	if g.sigma == 0 {
		g.sigma = defaultHotspotSigma
	}
	g.sigma *= cfg.SpaceSize

	switch cfg.Kind {
	case Uniform:
		g.placeUniform(placeRand)
	case Gaussian:
		g.placeGaussian(placeRand)
	case Simulation:
		g.placeSimulation(placeRand)
	}
	return g, nil
}

// MustNewGenerator is NewGenerator for known-good configurations (tests,
// examples, benchmarks); it panics on error.
func MustNewGenerator(cfg Config) *Generator {
	g, err := NewGenerator(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Generator) placeUniform(r *xrand.Rand) {
	for i := range g.objects {
		g.objects[i] = Object{
			Pos: geom.Pt(r.Range(0, g.cfg.SpaceSize), r.Range(0, g.cfg.SpaceSize)),
			Vel: g.randomVelocity(r),
		}
	}
}

func (g *Generator) placeGaussian(r *xrand.Rand) {
	g.hotspots = make([]geom.Point, g.cfg.Hotspots)
	for i := range g.hotspots {
		g.hotspots[i] = geom.Pt(r.Range(0, g.cfg.SpaceSize), r.Range(0, g.cfg.SpaceSize))
	}
	g.homes = make([]int, len(g.objects))
	for i := range g.objects {
		h := r.Intn(len(g.hotspots))
		g.homes[i] = h
		g.objects[i] = Object{
			Pos: g.clamp(geom.Pt(
				r.Norm(g.hotspots[h].X, g.sigma),
				r.Norm(g.hotspots[h].Y, g.sigma),
			)),
			Vel: g.gaussVelocity(r, i),
		}
	}
}

// randomVelocity draws a uniformly random direction and a uniformly
// random speed in [0, MaxSpeed].
func (g *Generator) randomVelocity(r *xrand.Rand) geom.Point {
	angle := r.Float64() * 2 * math.Pi
	speed := r.Range(0, g.cfg.MaxSpeed)
	return geom.Pt(speed*float32(math.Cos(angle)), speed*float32(math.Sin(angle)))
}

// gaussVelocity draws a Gaussian-like movement step: a normal perturbation
// biased back toward the object's hotspot so the cluster is stationary in
// distribution.
func (g *Generator) gaussVelocity(r *xrand.Rand, i int) geom.Point {
	h := g.hotspots[g.homes[i]]
	o := g.objects[i]
	scale := g.cfg.MaxSpeed / 3
	vx := r.Norm(0, scale) + 0.1*(h.X-o.Pos.X)
	vy := r.Norm(0, scale) + 0.1*(h.Y-o.Pos.Y)
	return g.limitSpeed(geom.Pt(vx, vy))
}

func (g *Generator) limitSpeed(v geom.Point) geom.Point {
	s := math.Hypot(float64(v.X), float64(v.Y))
	if max := float64(g.cfg.MaxSpeed); s > max && s > 0 {
		k := float32(max / s)
		return geom.Pt(v.X*k, v.Y*k)
	}
	return v
}

func (g *Generator) clamp(p geom.Point) geom.Point {
	s := g.cfg.SpaceSize
	if p.X < 0 {
		p.X = 0
	}
	if p.X >= s {
		p.X = nextBelow(s)
	}
	if p.Y < 0 {
		p.Y = 0
	}
	if p.Y >= s {
		p.Y = nextBelow(s)
	}
	return p
}

// nextBelow returns the largest float32 strictly less than s.
func nextBelow(s float32) float32 {
	return math.Nextafter32(s, -math.MaxFloat32)
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Objects exposes the current object table. The driver treats it as the
// base data that secondary indexes reference by ID; callers must not
// mutate it except through ApplyUpdates.
func (g *Generator) Objects() []Object { return g.objects }

// Positions appends the current position of every object to dst and
// returns it. The result is the per-tick snapshot indexes are built over.
func (g *Generator) Positions(dst []geom.Point) []geom.Point {
	if cap(dst) < len(g.objects) {
		dst = make([]geom.Point, len(g.objects))
	}
	dst = dst[:len(g.objects)]
	for i := range g.objects {
		dst[i] = g.objects[i].Pos
	}
	return dst
}

// Hotspots returns the hotspot locations (nil for uniform workloads).
func (g *Generator) Hotspots() []geom.Point { return g.hotspots }

// Tick returns the index of the next tick to be generated.
func (g *Generator) Tick() int { return g.tick }

// Queriers returns the IDs of the objects issuing a range query this
// tick. The returned slice is reused across ticks.
//
// Selection is Bernoulli per object with probability cfg.Queriers, drawn
// from the dedicated query stream, matching the benchmark's "% Queriers"
// semantics in expectation.
func (g *Generator) Queriers() []uint32 {
	g.queryBuf = g.queryBuf[:0]
	if g.cfg.Queriers <= 0 {
		return g.queryBuf
	}
	for i := range g.objects {
		if g.queryRand.Bool(g.cfg.Queriers) {
			g.queryBuf = append(g.queryBuf, uint32(i))
		}
	}
	g.queryCount += int64(len(g.queryBuf))
	return g.queryBuf
}

// QueryRect returns the range query issued by object id: the square of
// side QuerySize centred on the object's current position.
func (g *Generator) QueryRect(id uint32) geom.Rect {
	return geom.Square(g.objects[id].Pos, g.cfg.QuerySize)
}

// Updates computes this tick's update batch: each selected object moves
// by its velocity (bouncing off the space boundary) and, with probability
// 1/2, draws a fresh velocity — "each update may change an object's
// velocity or position". The returned slice is reused across ticks and
// the batch is NOT yet applied; call ApplyUpdates after the query phase.
func (g *Generator) Updates() []Update {
	g.updateBuf = g.updateBuf[:0]
	if g.cfg.Kind == Simulation {
		g.advanceSchools(g.moveRand)
	}
	if g.cfg.Updaters <= 0 {
		g.tick++
		return g.updateBuf
	}
	for i := range g.objects {
		if !g.moveRand.Bool(g.cfg.Updaters) {
			continue
		}
		o := g.objects[i]
		pos, vel := g.step(o)
		if g.moveRand.Bool(0.5) {
			switch g.cfg.Kind {
			case Gaussian:
				vel = g.gaussVelocity(g.moveRand, i)
			case Simulation:
				vel = g.simulationVelocity(g.moveRand, i)
			default:
				vel = g.randomVelocity(g.moveRand)
			}
		}
		g.updateBuf = append(g.updateBuf, Update{ID: uint32(i), Pos: pos, Vel: vel})
	}
	g.tick++
	return g.updateBuf
}

// step advances one object by its velocity, reflecting at the boundary.
func (g *Generator) step(o Object) (pos, vel geom.Point) {
	pos = o.Pos.Add(o.Vel.X, o.Vel.Y)
	vel = o.Vel
	s := g.cfg.SpaceSize
	if pos.X < 0 {
		pos.X, vel.X = -pos.X, -vel.X
	}
	if pos.X >= s {
		pos.X, vel.X = 2*nextBelow(s)-pos.X, -vel.X
	}
	if pos.Y < 0 {
		pos.Y, vel.Y = -pos.Y, -vel.Y
	}
	if pos.Y >= s {
		pos.Y, vel.Y = 2*nextBelow(s)-pos.Y, -vel.Y
	}
	return g.clamp(pos), vel
}

// ApplyUpdates installs an update batch into the base table. The driver
// calls this at the end of the tick so queries in the same tick saw the
// previous state.
func (g *Generator) ApplyUpdates(batch []Update) {
	for _, u := range batch {
		g.objects[u.ID] = Object{Pos: u.Pos, Vel: u.Vel}
	}
}

// TotalQueriers reports how many queries have been issued so far, for
// sanity checks on selection fractions.
func (g *Generator) TotalQueriers() int64 { return g.queryCount }
