package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecordMatchesGenerator(t *testing.T) {
	cfg := smallUniform()
	tr, err := Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ticks) != cfg.Ticks {
		t.Fatalf("recorded %d ticks, want %d", len(tr.Ticks), cfg.Ticks)
	}
	if len(tr.Initial) != cfg.NumPoints {
		t.Fatalf("recorded %d objects, want %d", len(tr.Initial), cfg.NumPoints)
	}

	// Replaying the trace must follow the generator exactly.
	g := MustNewGenerator(cfg)
	p := NewPlayer(tr)
	for tick := 0; tick < cfg.Ticks; tick++ {
		gq, pq := g.Queriers(), p.Queriers()
		if len(gq) != len(pq) {
			t.Fatalf("tick %d: querier counts %d vs %d", tick, len(gq), len(pq))
		}
		for i := range gq {
			if gq[i] != pq[i] {
				t.Fatalf("tick %d: querier %d: %d vs %d", tick, i, gq[i], pq[i])
			}
			if g.QueryRect(gq[i]) != p.QueryRect(pq[i]) {
				t.Fatalf("tick %d: query rects differ for %d", tick, gq[i])
			}
		}
		gu, pu := g.Updates(), p.Updates()
		if len(gu) != len(pu) {
			t.Fatalf("tick %d: update counts differ", tick)
		}
		for i := range gu {
			if gu[i] != pu[i] {
				t.Fatalf("tick %d: update %d differs", tick, i)
			}
		}
		g.ApplyUpdates(gu)
		p.ApplyUpdates(pu)
	}
}

func TestPlayerReset(t *testing.T) {
	cfg := smallUniform()
	cfg.Ticks = 5
	tr, err := Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlayer(tr)
	first := append([]uint32(nil), p.Queriers()...)
	p.ApplyUpdates(p.Updates())
	p.Queriers()
	p.ApplyUpdates(p.Updates())
	p.Reset()
	if p.Tick() != 0 {
		t.Fatalf("tick after reset = %d", p.Tick())
	}
	again := p.Queriers()
	if len(again) != len(first) {
		t.Fatalf("replay after reset differs: %d vs %d queriers", len(again), len(first))
	}
	for i := range again {
		if again[i] != first[i] {
			t.Fatalf("replay after reset differs at %d", i)
		}
	}
	// Initial object table must be restored too.
	for i := range tr.Initial {
		if p.Objects()[i] != tr.Initial[i] {
			t.Fatalf("object %d not restored on reset", i)
		}
	}
}

func TestPlayerExhaustion(t *testing.T) {
	cfg := smallUniform()
	cfg.Ticks = 2
	tr, err := Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlayer(tr)
	for i := 0; i < 2; i++ {
		p.Queriers()
		p.ApplyUpdates(p.Updates())
	}
	if q := p.Queriers(); len(q) != 0 {
		t.Fatalf("exhausted player returned %d queriers", len(q))
	}
	if u := p.Updates(); len(u) != 0 {
		t.Fatalf("exhausted player returned %d updates", len(u))
	}
}

func TestTraceSerializationRoundtrip(t *testing.T) {
	for _, cfg := range []Config{smallUniform(), smallGaussian()} {
		tr, err := Record(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		n, err := tr.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Config != tr.Config {
			t.Fatalf("config roundtrip: %+v vs %+v", got.Config, tr.Config)
		}
		if got.Checksum() != tr.Checksum() {
			t.Fatal("checksum mismatch after roundtrip")
		}
		if len(got.Ticks) != len(tr.Ticks) {
			t.Fatalf("tick counts differ")
		}
		for i := range tr.Ticks {
			a, b := tr.Ticks[i], got.Ticks[i]
			if len(a.Queriers) != len(b.Queriers) || len(a.Updates) != len(b.Updates) {
				t.Fatalf("tick %d shape differs", i)
			}
			for j := range a.Updates {
				if a.Updates[j] != b.Updates[j] {
					t.Fatalf("tick %d update %d differs", i, j)
				}
			}
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"short magic", "SJ"},
		{"wrong magic", "XXXX0123456789"},
		{"truncated after magic", "SJTR"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadTrace(strings.NewReader(c.data)); err == nil {
				t.Fatal("garbage accepted")
			}
		})
	}
}

func TestReadTraceRejectsWrongVersion(t *testing.T) {
	cfg := smallUniform()
	cfg.Ticks = 1
	cfg.NumPoints = 2
	tr, err := Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 0xff // corrupt version
	if _, err := ReadTrace(bytes.NewReader(data)); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestReadTraceRejectsTruncation(t *testing.T) {
	cfg := smallUniform()
	cfg.Ticks = 3
	cfg.NumPoints = 50
	tr, err := Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{10, len(data) / 2, len(data) - 1} {
		if _, err := ReadTrace(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestChecksumDistinguishesSeeds(t *testing.T) {
	cfg := smallUniform()
	cfg.Ticks = 3
	a, err := Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum() == b.Checksum() {
		t.Fatal("different seeds produced identical checksums")
	}
}
