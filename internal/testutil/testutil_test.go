package testutil

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

var bounds = geom.R(0, 0, 1000, 1000)

func TestPatternsProduceInBoundsPoints(t *testing.T) {
	r := xrand.New(1)
	for _, pat := range PointPatterns() {
		pts := pat.Gen(r, 500, bounds)
		if len(pts) != 500 {
			t.Fatalf("%s: generated %d points", pat.Name, len(pts))
		}
		for i, p := range pts {
			if !p.In(bounds) {
				t.Fatalf("%s: point %d at %v outside bounds", pat.Name, i, p)
			}
		}
	}
}

func TestPatternsAreDistinctive(t *testing.T) {
	r := xrand.New(2)
	// Vertical pattern: all x equal.
	vert := PointPatterns()[4]
	if vert.Name != "collinear-vertical" {
		t.Fatalf("pattern order changed: %s", vert.Name)
	}
	pts := vert.Gen(r, 100, bounds)
	for _, p := range pts[1:] {
		if p.X != pts[0].X {
			t.Fatal("vertical pattern not vertical")
		}
	}
	// Colocated: at most 7 distinct locations.
	colo := PointPatterns()[5]
	pts = colo.Gen(r, 500, bounds)
	distinct := map[geom.Point]bool{}
	for _, p := range pts {
		distinct[p] = true
	}
	if len(distinct) > 7 {
		t.Fatalf("colocated pattern has %d distinct spots", len(distinct))
	}
	// Skewed corner: most points in the bottom-left decile box.
	skew := PointPatterns()[7]
	pts = skew.Gen(r, 1000, bounds)
	inCorner := 0
	corner := geom.R(0, 0, 100, 100)
	for _, p := range pts {
		if p.In(corner) {
			inCorner++
		}
	}
	if inCorner < 800 {
		t.Fatalf("skewed pattern only %d/1000 in corner", inCorner)
	}
}

func TestQueriesIncludeAdversarialShapes(t *testing.T) {
	r := xrand.New(3)
	qs := Queries(r, 20, bounds)
	if len(qs) != 25 {
		t.Fatalf("query count = %d", len(qs))
	}
	var zeroArea, outside, covering bool
	for _, q := range qs {
		if !q.Valid() {
			t.Fatalf("invalid query %v", q)
		}
		if q.Area() == 0 {
			zeroArea = true
		}
		if !q.Intersects(bounds) {
			outside = true
		}
		if q.ContainsRect(bounds) {
			covering = true
		}
	}
	if !zeroArea || !outside || !covering {
		t.Fatalf("query set missing adversarial shapes: zero=%v outside=%v covering=%v",
			zeroArea, outside, covering)
	}
}

// perfectIndex is a correct reference implementation.
type perfectIndex struct{ pts []geom.Point }

func (ix *perfectIndex) Build(pts []geom.Point) { ix.pts = pts }
func (ix *perfectIndex) Query(r geom.Rect, emit func(uint32)) {
	for i := range ix.pts {
		if ix.pts[i].In(r) {
			emit(uint32(i))
		}
	}
}

// brokenIndex drops one matching result per query (off-by-one bugs are
// the classic failure the checker exists for).
type brokenIndex struct{ perfectIndex }

func (ix *brokenIndex) Query(r geom.Rect, emit func(uint32)) {
	skipped := false
	for i := range ix.pts {
		if ix.pts[i].In(r) {
			if !skipped {
				skipped = true
				continue
			}
			emit(uint32(i))
		}
	}
}

// duplicatingIndex emits every result twice.
type duplicatingIndex struct{ perfectIndex }

func (ix *duplicatingIndex) Query(r geom.Rect, emit func(uint32)) {
	for i := range ix.pts {
		if ix.pts[i].In(r) {
			emit(uint32(i))
			emit(uint32(i))
		}
	}
}

func TestCheckerAcceptsCorrectIndex(t *testing.T) {
	if f := CheckAgainstOracle(&perfectIndex{}, 4, 300, bounds); f != nil {
		t.Fatalf("perfect index rejected: %v", f)
	}
}

func TestCheckerCatchesMissingResults(t *testing.T) {
	f := CheckAgainstOracle(&brokenIndex{}, 4, 300, bounds)
	if f == nil {
		t.Fatal("broken index accepted")
	}
	if len(f.Missing) == 0 {
		t.Fatalf("failure lacks missing IDs: %v", f)
	}
	if !strings.Contains(f.Error(), "missing") {
		t.Fatalf("failure message unhelpful: %v", f)
	}
}

func TestCheckerCatchesDuplicates(t *testing.T) {
	f := CheckAgainstOracle(&duplicatingIndex{}, 4, 300, bounds)
	if f == nil {
		t.Fatal("duplicating index accepted")
	}
	if len(f.Extra) == 0 {
		t.Fatalf("failure lacks extra IDs: %v", f)
	}
}
