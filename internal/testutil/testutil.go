// Package testutil provides the shared test fixtures for the index
// packages: adversarial point-set patterns, query-set generators, and a
// differential checker that validates any core.Index against the
// brute-force oracle.
//
// The patterns are chosen to stress the places spatial indexes
// historically break: points exactly on partition boundaries, heavy
// duplication, degenerate (collinear) distributions, extreme corners,
// and queries that are empty, zero-area, sliver-thin, or larger than the
// space.
package testutil

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// PointPattern names a point-set shape.
type PointPattern struct {
	Name string
	Gen  func(r *xrand.Rand, n int, bounds geom.Rect) []geom.Point
}

// PointPatterns returns the standard adversarial point distributions.
func PointPatterns() []PointPattern {
	return []PointPattern{
		{"uniform", genUniform},
		{"gaussian-clusters", genClusters},
		{"grid-aligned", genGridAligned},
		{"collinear-diagonal", genDiagonal},
		{"collinear-vertical", genVertical},
		{"colocated", genColocated},
		{"corners", genCorners},
		{"skewed-corner", genSkewedCorner},
	}
}

func genUniform(r *xrand.Rand, n int, b geom.Rect) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(r.Range(b.MinX, b.MaxX), r.Range(b.MinY, b.MaxY))
	}
	return pts
}

func genClusters(r *xrand.Rand, n int, b geom.Rect) []geom.Point {
	const clusters = 5
	centers := make([]geom.Point, clusters)
	for i := range centers {
		centers[i] = geom.Pt(r.Range(b.MinX, b.MaxX), r.Range(b.MinY, b.MaxY))
	}
	sigma := b.Width() / 40
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[r.Intn(clusters)]
		pts[i] = clampPt(geom.Pt(r.Norm(c.X, sigma), r.Norm(c.Y, sigma)), b)
	}
	return pts
}

// genGridAligned places points exactly on a lattice whose pitch matches
// common cps values, so many points sit exactly on cell boundaries.
func genGridAligned(r *xrand.Rand, n int, b geom.Rect) []geom.Point {
	const lattice = 13
	stepX := b.Width() / lattice
	stepY := b.Height() / lattice
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(
			b.MinX+float32(r.Intn(lattice+1))*stepX,
			b.MinY+float32(r.Intn(lattice+1))*stepY,
		)
		pts[i] = clampPt(pts[i], b)
	}
	return pts
}

func genDiagonal(r *xrand.Rand, n int, b geom.Rect) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		t := r.Float32()
		pts[i] = geom.Pt(b.MinX+t*b.Width(), b.MinY+t*b.Height())
	}
	return pts
}

func genVertical(r *xrand.Rand, n int, b geom.Rect) []geom.Point {
	x := b.MinX + b.Width()/2
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(x, r.Range(b.MinY, b.MaxY))
	}
	return pts
}

func genColocated(r *xrand.Rand, n int, b geom.Rect) []geom.Point {
	// A handful of distinct locations shared by many points.
	const spots = 7
	locs := genUniform(r, spots, b)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = locs[r.Intn(spots)]
	}
	return pts
}

func genCorners(r *xrand.Rand, n int, b geom.Rect) []geom.Point {
	corners := []geom.Point{
		{X: b.MinX, Y: b.MinY},
		{X: b.MaxX, Y: b.MinY},
		{X: b.MinX, Y: b.MaxY},
		{X: b.MaxX, Y: b.MaxY},
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = corners[r.Intn(len(corners))]
	}
	return pts
}

func genSkewedCorner(r *xrand.Rand, n int, b geom.Rect) []geom.Point {
	// 90% of the mass in the bottom-left 1% of the area.
	pts := make([]geom.Point, n)
	for i := range pts {
		if r.Bool(0.9) {
			pts[i] = geom.Pt(
				r.Range(b.MinX, b.MinX+b.Width()/10),
				r.Range(b.MinY, b.MinY+b.Height()/10),
			)
		} else {
			pts[i] = geom.Pt(r.Range(b.MinX, b.MaxX), r.Range(b.MinY, b.MaxY))
		}
	}
	return pts
}

func clampPt(p geom.Point, b geom.Rect) geom.Point {
	if p.X < b.MinX {
		p.X = b.MinX
	}
	if p.X > b.MaxX {
		p.X = b.MaxX
	}
	if p.Y < b.MinY {
		p.Y = b.MinY
	}
	if p.Y > b.MaxY {
		p.Y = b.MaxY
	}
	return p
}

// Queries generates a mixed adversarial query set over the bounds:
// random squares, slivers, zero-area points, space-covering boxes, and
// rectangles straddling the space boundary.
func Queries(r *xrand.Rand, count int, b geom.Rect) []geom.Rect {
	qs := make([]geom.Rect, 0, count+5)
	for i := 0; i < count; i++ {
		c := geom.Pt(r.Range(b.MinX, b.MaxX), r.Range(b.MinY, b.MaxY))
		switch i % 4 {
		case 0: // ordinary square
			qs = append(qs, geom.Square(c, r.Range(1, b.Width()/4)))
		case 1: // thin horizontal sliver
			qs = append(qs, geom.R(b.MinX, c.Y, b.MaxX, c.Y+1))
		case 2: // thin vertical sliver
			qs = append(qs, geom.R(c.X, b.MinY, c.X+1, b.MaxY))
		case 3: // straddles the boundary
			qs = append(qs, geom.Square(geom.Pt(b.MinX, c.Y), b.Width()/8))
		}
	}
	center := b.Center()
	qs = append(qs,
		geom.R(center.X, center.Y, center.X, center.Y), // zero-area
		b,                   // exactly the space
		b.Expand(b.Width()), // much larger than the space
		geom.R(b.MaxX+1, b.MaxY+1, b.MaxX+10, b.MaxY+10), // fully outside
		geom.R(b.MinX, b.MinY, b.MinX, b.MaxY),           // left edge line
	)
	return qs
}

// QueryIndex is the minimal index surface the checker needs (a subset of
// core.Index, restated here to keep testutil dependency-light).
type QueryIndex interface {
	Build(pts []geom.Point)
	Query(r geom.Rect, emit func(id uint32))
}

// Failure describes one differential mismatch.
type Failure struct {
	Pattern string
	Query   geom.Rect
	Missing []uint32
	Extra   []uint32
}

// Error renders the failure.
func (f *Failure) Error() string {
	return fmt.Sprintf("pattern %q query %v: %d missing, %d extra (missing %v, extra %v)",
		f.Pattern, f.Query, len(f.Missing), len(f.Extra), trunc(f.Missing), trunc(f.Extra))
}

func trunc(ids []uint32) []uint32 {
	if len(ids) > 8 {
		return ids[:8]
	}
	return ids
}

// CheckAgainstOracle builds idx over every pattern and compares every
// query's result set with a brute-force scan. It returns the first
// mismatch, or nil. Duplicate emissions count as mismatches.
func CheckAgainstOracle(idx QueryIndex, seed uint64, n int, bounds geom.Rect) *Failure {
	r := xrand.New(seed)
	for _, pat := range PointPatterns() {
		pts := pat.Gen(r, n, bounds)
		idx.Build(pts)
		for _, q := range Queries(r, 24, bounds) {
			want := make(map[uint32]bool)
			for i := range pts {
				if pts[i].In(q) {
					want[uint32(i)] = true
				}
			}
			got := make(map[uint32]int)
			idx.Query(q, func(id uint32) { got[id]++ })
			var missing, extra []uint32
			for id := range want {
				if got[id] != 1 {
					if got[id] == 0 {
						missing = append(missing, id)
					} else {
						extra = append(extra, id) // duplicate emission
					}
				}
			}
			for id := range got {
				if !want[id] {
					extra = append(extra, id)
				}
			}
			if len(missing) > 0 || len(extra) > 0 {
				return &Failure{Pattern: pat.Name, Query: q, Missing: missing, Extra: extra}
			}
		}
	}
	return nil
}
