package epoch

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/faultutil"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/rtree"
	"repro/internal/tune"
	"repro/internal/xrand"
)

var testBounds = geom.R(0, 0, 1000, 1000)

// pointFamilies are the inner point indexes the wrapper is exercised
// over — the digest-gated lineup of the sequential drivers.
func pointFamilies(n int) map[string]func() core.Index {
	p := core.Params{Bounds: testBounds, NumPoints: n}
	return map[string]func() core.Index{
		"inline": func() core.Index { return grid.MustNew(grid.CPSTuned(), testBounds, n) },
		"csr":    func() core.Index { return grid.MustNew(grid.CSR(), testBounds, n) },
		"csrxy":  func() core.Index { return grid.MustNew(grid.CSRXY(), testBounds, n) },
		"auto":   func() core.Index { return tune.NewAuto(p) },
	}
}

// boxFamilies are the inner box indexes.
func boxFamilies(n int) map[string]func() core.BoxIndex {
	p := core.Params{Bounds: testBounds, NumPoints: n}
	return map[string]func() core.BoxIndex{
		"boxcsr":   func() core.BoxIndex { return grid.MustNewBoxGrid(32, testBounds, n) },
		"boxcsr2l": func() core.BoxIndex { return grid.MustNewBoxGrid2L(32, testBounds, n) },
		"boxrtree": func() core.BoxIndex { return rtree.MustNewBoxTree(16) },
		"boxauto":  func() core.BoxIndex { return tune.NewAutoBox(p) },
	}
}

func randomPoints(r *xrand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(r.Range(testBounds.MinX, testBounds.MaxX), r.Range(testBounds.MinY, testBounds.MaxY))
	}
	return pts
}

func randomBoxes(r *xrand.Rand, n int) []geom.Rect {
	out := make([]geom.Rect, n)
	for i := range out {
		cx := r.Range(testBounds.MinX, testBounds.MaxX)
		cy := r.Range(testBounds.MinY, testBounds.MaxY)
		hw := r.Range(0, 30) / 2
		hh := r.Range(0, 30) / 2
		out[i] = geom.Rect{MinX: cx - hw, MinY: cy - hh, MaxX: cx + hw, MaxY: cy + hh}
	}
	return out
}

// randomMoves moves k distinct random objects of the oracle base table,
// without applying them (the caller owns both sides).
func randomMoves(r *xrand.Rand, oracle []geom.Point, k int) []geom.Move {
	perm := r.Perm(len(oracle))
	moves := make([]geom.Move, 0, k)
	for _, id := range perm[:k] {
		moves = append(moves, geom.Move{
			ID:  uint32(id),
			Old: oracle[id],
			New: geom.Pt(r.Range(testBounds.MinX, testBounds.MaxX), r.Range(testBounds.MinY, testBounds.MaxY)),
		})
	}
	return moves
}

func randomBoxMoves(r *xrand.Rand, oracle []geom.Rect, k int) []geom.BoxMove {
	perm := r.Perm(len(oracle))
	nr := randomBoxes(r, k)
	moves := make([]geom.BoxMove, 0, k)
	for j, id := range perm[:k] {
		moves = append(moves, geom.BoxMove{ID: uint32(id), Old: oracle[id], New: nr[j]})
	}
	return moves
}

func applyOracle(oracle []geom.Point, moves []geom.Move) {
	for _, m := range moves {
		oracle[m.ID] = m.New
	}
}

func applyBoxOracle(oracle []geom.Rect, moves []geom.BoxMove) {
	for _, m := range moves {
		oracle[m.ID] = m.New
	}
}

func collectPoints(x *Index, r geom.Rect) (map[uint32]bool, uint64, uint64) {
	got := make(map[uint32]bool)
	e, d := x.Query(r, func(id uint32) { got[id] = true })
	return got, e, d
}

// TestEpochMatchesBruteForce is the digest gate: across families and
// ticks, every query on the published epoch must match the brute-force
// oracle, and the published digest must match the oracle fold chain.
func TestEpochMatchesBruteForce(t *testing.T) {
	const n, ticks, batch = 2000, 8, 300
	for name, mk := range pointFamilies(n) {
		t.Run(name, func(t *testing.T) {
			r := xrand.New(11)
			oracle := randomPoints(r, n)
			x := NewIndex(mk, Options{})
			x.Build(oracle)
			wantDigest := SnapshotDigestPoints(oracle)
			for tick := 0; tick < ticks; tick++ {
				moves := randomMoves(r, oracle, batch)
				epoch, err := x.ApplyBatch(moves)
				if err != nil {
					t.Fatalf("tick %d: %v", tick, err)
				}
				if epoch != uint64(tick)+1 {
					t.Fatalf("tick %d published epoch %d", tick, epoch)
				}
				applyOracle(oracle, moves)
				wantDigest = FoldMoves(wantDigest, moves)
				for q := 0; q < 20; q++ {
					rect := geom.Square(geom.Pt(
						r.Range(testBounds.MinX, testBounds.MaxX),
						r.Range(testBounds.MinY, testBounds.MaxY)), 60)
					got, e, d := collectPoints(x, rect)
					if e != epoch || d != wantDigest {
						t.Fatalf("query saw epoch %d digest %x, want %d/%x", e, d, epoch, wantDigest)
					}
					for i := range oracle {
						if oracle[i].In(rect) != got[uint32(i)] {
							t.Fatalf("tick %d: id %d membership mismatch in %v", tick, i, rect)
						}
					}
				}
			}
			if s := x.Stats(); s.Epochs != ticks || s.Degraded != 0 || s.PanicsContained != 0 {
				t.Fatalf("clean run stats: %+v", s)
			}
		})
	}
}

// TestEpochBoxMatchesBruteForce is the digest gate for the box wrapper.
func TestEpochBoxMatchesBruteForce(t *testing.T) {
	const n, ticks, batch = 1500, 6, 200
	for name, mk := range boxFamilies(n) {
		t.Run(name, func(t *testing.T) {
			r := xrand.New(13)
			oracle := randomBoxes(r, n)
			x := NewBoxIndex(mk, Options{})
			x.Build(oracle)
			wantDigest := SnapshotDigestBoxes(oracle)
			for tick := 0; tick < ticks; tick++ {
				moves := randomBoxMoves(r, oracle, batch)
				if _, err := x.ApplyBatch(moves); err != nil {
					t.Fatalf("tick %d: %v", tick, err)
				}
				applyBoxOracle(oracle, moves)
				wantDigest = FoldBoxMoves(wantDigest, moves)
				for q := 0; q < 15; q++ {
					rect := geom.Square(geom.Pt(
						r.Range(testBounds.MinX, testBounds.MaxX),
						r.Range(testBounds.MinY, testBounds.MaxY)), 80)
					got := make(map[uint32]bool)
					e, d := x.Query(rect, func(id uint32) { got[id] = true })
					if e != uint64(tick)+1 || d != wantDigest {
						t.Fatalf("query saw epoch %d digest %x, want %d/%x", e, d, tick+1, wantDigest)
					}
					for i := range oracle {
						if oracle[i].Intersects(rect) != got[uint32(i)] {
							t.Fatalf("tick %d: id %d membership mismatch in %v", tick, i, rect)
						}
					}
				}
			}
		})
	}
}

// faultRound runs one wrapper through ticks with an armed injector and
// verifies: no process crash (trivially), every successful tick's
// queries exactly match the oracle, failed ticks keep serving the prior
// oracle state, and the batch replays cleanly once the fault budget is
// spent.
func faultRound(t *testing.T, spec string, opts Options, wantDegraded, wantErr bool) Stats {
	t.Helper()
	const n, batch = 1200, 250
	r := xrand.New(29)
	oracle := randomPoints(r, n)
	published := append([]geom.Point(nil), oracle...)
	opts.Injector = faultutil.MustNew(5, spec)
	x := NewIndex(pointFamilies(n)["csr"], opts)
	x.Build(oracle)
	wantDigest := SnapshotDigestPoints(oracle)

	var pending []geom.Move
	sawErr := false
	for tick := 0; tick < 6; tick++ {
		moves := append(pending, randomMoves(r, published, batch)...)
		pending = nil
		epoch, err := x.ApplyBatch(moves)
		if err != nil {
			// Contained failure: the batch was not applied; the prior
			// epoch must keep serving and the batch replays next tick.
			sawErr = true
			pending = moves
		} else {
			applyOracle(published, moves)
			wantDigest = FoldMoves(wantDigest, moves)
			_ = epoch
		}
		// Every query agrees with the published oracle state.
		for q := 0; q < 10; q++ {
			rect := geom.Square(geom.Pt(
				r.Range(testBounds.MinX, testBounds.MaxX),
				r.Range(testBounds.MinY, testBounds.MaxY)), 70)
			got, _, d := collectPoints(x, rect)
			if d != wantDigest {
				t.Fatalf("tick %d: query digest %x, want %x", tick, d, wantDigest)
			}
			for i := range published {
				if published[i].In(rect) != got[uint32(i)] {
					t.Fatalf("tick %d: id %d membership mismatch after fault", tick, i)
				}
			}
		}
	}
	if len(pending) != 0 {
		t.Fatalf("batch never recovered: %d moves still pending", len(pending))
	}
	s := x.Stats()
	if wantDegraded && s.Degraded == 0 {
		t.Fatalf("spec %q: expected degradation, stats %+v", spec, s)
	}
	if !wantDegraded && s.Degraded != 0 {
		t.Fatalf("spec %q: unexpected degradation, stats %+v", spec, s)
	}
	if wantErr != sawErr {
		t.Fatalf("spec %q: sawErr=%v, want %v (stats %+v)", spec, sawErr, wantErr, s)
	}
	return s
}

// TestFaultMatrix injects every mode at every pipeline site and demands
// graceful degradation: the wrapper keeps serving a valid epoch, the
// inner invariants hold (validate runs CheckInvariants before every
// publish), and the batch eventually lands.
func TestFaultMatrix(t *testing.T) {
	t.Run("apply panic recovers in-tick", func(t *testing.T) {
		s := faultRound(t, "apply:panic*1", Options{}, true, false)
		if s.PanicsContained == 0 || s.Retries == 0 {
			t.Fatalf("stats %+v", s)
		}
	})
	t.Run("apply torn caught by probes", func(t *testing.T) {
		faultRound(t, "apply:torn*1", Options{}, true, false)
	})
	t.Run("apply delay is harmless", func(t *testing.T) {
		faultRound(t, "apply:delay:2ms*2", Options{}, false, false)
	})
	t.Run("swap panic retries publish", func(t *testing.T) {
		s := faultRound(t, "swap:panic*1", Options{}, true, false)
		if s.PanicsContained == 0 {
			t.Fatalf("stats %+v", s)
		}
	})
	t.Run("swap delay is harmless", func(t *testing.T) {
		faultRound(t, "swap:delay:2ms*2", Options{}, false, false)
	})
	t.Run("rebuild panics too then recovers", func(t *testing.T) {
		s := faultRound(t, "apply:panic*1, build:panic*1", Options{}, true, false)
		if s.PanicsContained < 2 {
			t.Fatalf("stats %+v", s)
		}
	})
	t.Run("torn rebuild caught then recovers", func(t *testing.T) {
		faultRound(t, "apply:torn*1, build:torn*1", Options{}, true, false)
	})
	t.Run("exhausted retries serve last good epoch", func(t *testing.T) {
		// Tick 0 burns both attempts (incremental apply panics, the
		// rebuild retry panics too) and fails outright; tick 1's merged
		// batch spends the last build fault on its first attempt and
		// lands on the retry.
		s := faultRound(t, "apply:panic*1, build:panic*2", Options{MaxRetries: 1}, true, true)
		if s.PanicsContained != 3 {
			t.Fatalf("stats %+v", s)
		}
	})
}

// TestExactlyOneEpochVisiblePerQuery hammers queries concurrently with
// publishes and asserts every query's (epoch, digest) pair matches the
// oracle fold chain for exactly that epoch — no query ever observes a
// blend of two epochs or an unpublished digest.
func TestExactlyOneEpochVisiblePerQuery(t *testing.T) {
	const n, ticks, batch, readers = 1500, 30, 200, 4
	r := xrand.New(31)
	oracle := randomPoints(r, n)
	x := NewIndex(pointFamilies(n)["csr"], Options{})
	x.Build(oracle)

	// digests[e] is the oracle digest of epoch e, appended before each
	// publish so readers can look theirs up.
	var mu sync.Mutex
	digests := []uint64{SnapshotDigestPoints(oracle)}

	var stop atomic.Bool
	var bad atomic.Pointer[string]
	var g sync.WaitGroup
	for w := 0; w < readers; w++ {
		w := w
		g.Add(1)
		go func() {
			defer g.Done()
			rr := xrand.New(100 + uint64(w))
			for !stop.Load() {
				rect := geom.Square(geom.Pt(
					rr.Range(testBounds.MinX, testBounds.MaxX),
					rr.Range(testBounds.MinY, testBounds.MaxY)), 50)
				e, d := x.Query(rect, func(uint32) {})
				mu.Lock()
				known := uint64(len(digests))
				var want uint64
				if e < known {
					want = digests[e]
				}
				mu.Unlock()
				if e >= known || d != want {
					msg := "query observed unpublished epoch/digest"
					bad.CompareAndSwap(nil, &msg)
					return
				}
			}
		}()
	}
	wantDigest := digests[0]
	for tick := 0; tick < ticks; tick++ {
		moves := randomMoves(r, oracle, batch)
		wantDigest = FoldMoves(wantDigest, moves)
		mu.Lock()
		digests = append(digests, wantDigest)
		mu.Unlock()
		if _, err := x.ApplyBatch(moves); err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		applyOracle(oracle, moves)
	}
	stop.Store(true)
	g.Wait()
	if m := bad.Load(); m != nil {
		t.Fatal(*m)
	}
}

// TestApplyBeforeBuild and name plumbing.
func TestApplyBeforeBuildFails(t *testing.T) {
	x := NewIndex(pointFamilies(10)["csr"], Options{})
	if _, err := x.ApplyBatch(nil); err == nil || !strings.Contains(err.Error(), "before Build") {
		t.Fatalf("err = %v", err)
	}
	if x.Name() != "epoch" {
		t.Fatalf("pre-build name %q", x.Name())
	}
	x.Build(randomPoints(xrand.New(1), 10))
	if !strings.Contains(x.Name(), "epoch(") {
		t.Fatalf("post-build name %q", x.Name())
	}
	if x.Len() != 10 {
		t.Fatalf("Len = %d", x.Len())
	}
}
