package epoch

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/faultutil"
	"repro/internal/geom"
	"repro/internal/xrand"
)

// FuzzEpochQueryDuringUpdate interleaves query goroutines with
// ApplyBatch/swap cycles under fuzzer-chosen seeds, batch sizes, and
// fault schedules, asserting the publication contract: every query's
// digest matches exactly one published epoch's oracle digest, and that
// epoch is one of the (at most two) epochs adjacent to the query's
// execution window — never a blend, never an unpublished state.
func FuzzEpochQueryDuringUpdate(f *testing.F) {
	f.Add(uint64(1), uint16(64), uint8(6), false)
	f.Add(uint64(42), uint16(200), uint8(10), false)
	f.Add(uint64(7), uint16(1), uint8(3), true)
	f.Add(uint64(99), uint16(500), uint8(8), true)
	f.Fuzz(func(t *testing.T, seed uint64, batch uint16, ticks uint8, injectFaults bool) {
		const n, readers = 600, 3
		if batch == 0 {
			batch = 1
		}
		if int(batch) > n {
			batch = n
		}
		if ticks == 0 {
			ticks = 1
		}
		if ticks > 12 {
			ticks = 12
		}
		r := xrand.New(seed)
		oracle := randomPoints(r, n)
		opts := Options{}
		if injectFaults {
			opts.Injector = faultutil.MustNew(seed, "apply:torn@0.3, swap:panic*1@0.2")
		}
		x := NewIndex(pointFamilies(n)["csr"], opts)
		x.Build(oracle)

		// digests[e] is epoch e's oracle digest, appended before the
		// corresponding publish.
		var mu sync.Mutex
		digests := []uint64{SnapshotDigestPoints(oracle)}
		lookup := func(e uint64) (uint64, uint64, bool) {
			mu.Lock()
			defer mu.Unlock()
			if e >= uint64(len(digests)) {
				return 0, 0, false
			}
			return digests[e], uint64(len(digests)) - 1, true
		}

		var stop atomic.Bool
		var g sync.WaitGroup
		errc := make(chan string, readers)
		for w := 0; w < readers; w++ {
			w := w
			g.Add(1)
			go func() {
				defer g.Done()
				rr := xrand.New(seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15)
				for !stop.Load() {
					// Epochs published strictly before the query began.
					mu.Lock()
					before := uint64(len(digests)) - 1
					mu.Unlock()
					rect := geom.Square(geom.Pt(
						rr.Range(testBounds.MinX, testBounds.MaxX),
						rr.Range(testBounds.MinY, testBounds.MaxY)), 50)
					e, d := x.Query(rect, func(uint32) {})
					want, _, ok := lookup(e)
					if !ok || want != d {
						errc <- "query digest does not match any published epoch"
						return
					}
					// The observed epoch must be adjacent to the query
					// window: at most one epoch older than the newest
					// published when the query began (the swap target),
					// and no older than... any published epoch is legal
					// if the writer lagged, but it can never EXCEED what
					// the oracle has announced, and it can never regress
					// below the epoch live when the query started minus
					// the one concurrent swap.
					if e+1 < before {
						// The pin protocol reads the CURRENT live buffer;
						// with one writer, at most one publish can race
						// the pin, so the query can lag the announced
						// head by at most one epoch.
						errc <- "query observed an epoch older than the adjacent pair"
						return
					}
				}
			}()
		}
		digest := digests[0]
		failed := false
		for tick := 0; tick < int(ticks) && !failed; tick++ {
			moves := randomMoves(r, oracle, int(batch))
			digest = FoldMoves(digest, moves)
			mu.Lock()
			digests = append(digests, digest)
			mu.Unlock()
			if _, err := x.ApplyBatch(moves); err != nil {
				// A fault schedule that exhausts retries is a legal
				// outcome; roll the oracle back and stop publishing.
				mu.Lock()
				digests = digests[:len(digests)-1]
				mu.Unlock()
				digest = digests[len(digests)-1]
				failed = true
				continue
			}
			applyOracle(oracle, moves)
		}
		stop.Store(true)
		g.Wait()
		close(errc)
		for msg := range errc {
			t.Fatal(msg)
		}
	})
}
