package epoch

import (
	"math"

	"repro/internal/geom"
)

// The epoch digest is a chained fold over the stream of published
// state: epoch 0 hashes the build snapshot in id order, and each
// published batch folds its moves in batch order on top of the previous
// epoch's digest. The fold functions are exported so tests can compute
// oracle digests independently and assert that every query observed
// exactly one published epoch.

// mix64 is the splitmix64 finalizer — the avalanche step the folds
// chain through.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hashPoint(p geom.Point) uint64 {
	return mix64(uint64(math.Float32bits(p.X))<<32 | uint64(math.Float32bits(p.Y)))
}

func hashRect(r geom.Rect) uint64 {
	lo := uint64(math.Float32bits(r.MinX))<<32 | uint64(math.Float32bits(r.MinY))
	hi := uint64(math.Float32bits(r.MaxX))<<32 | uint64(math.Float32bits(r.MaxY))
	return mix64(mix64(lo) ^ hi)
}

// SnapshotDigestPoints is the epoch-0 digest of a point snapshot.
//
//joinlint:deterministic
func SnapshotDigestPoints(pts []geom.Point) uint64 {
	d := uint64(len(pts))
	for i := range pts {
		d = mix64(d ^ (uint64(i) + 1) ^ hashPoint(pts[i]))
	}
	return d
}

// SnapshotDigestBoxes is the epoch-0 digest of a box snapshot.
//
//joinlint:deterministic
func SnapshotDigestBoxes(rects []geom.Rect) uint64 {
	d := uint64(len(rects))
	for i := range rects {
		d = mix64(d ^ (uint64(i) + 1) ^ hashRect(rects[i]))
	}
	return d
}

// FoldMoves chains one published point batch onto a digest.
//
//joinlint:deterministic
func FoldMoves(d uint64, moves []geom.Move) uint64 {
	d = mix64(d ^ uint64(len(moves)))
	for i := range moves {
		d = mix64(d ^ (uint64(moves[i].ID) + 1) ^ hashPoint(moves[i].New))
	}
	return d
}

// FoldBoxMoves chains one published box batch onto a digest.
//
//joinlint:deterministic
func FoldBoxMoves(d uint64, moves []geom.BoxMove) uint64 {
	d = mix64(d ^ uint64(len(moves)))
	for i := range moves {
		d = mix64(d ^ (uint64(moves[i].ID) + 1) ^ hashRect(moves[i].New))
	}
	return d
}

// CompositeDigest folds a set of shard-local epoch digests into one
// composite value, position-salted so permuting the shards changes the
// result. A region-sharded engine (internal/shard) publishes each shard
// independently — there is no single epoch whose digest covers the whole
// engine — so its composite state is summarized by folding the live
// per-shard digests in shard order. Deterministic given the per-shard
// values, which are themselves deterministic given the routed batches.
//
//joinlint:deterministic
func CompositeDigest(parts []uint64) uint64 {
	d := uint64(len(parts))
	for i, p := range parts {
		d = mix64(d ^ (uint64(i) + 1) ^ p)
	}
	return d
}
