package epoch

import (
	"repro/internal/core"
	"repro/internal/geom"
)

// The wrappers satisfy the concurrent driver's contracts.
var (
	_ core.EpochIndex         = (*Index)(nil)
	_ core.EpochBoxIndex      = (*BoxIndex)(nil)
	_ core.Counter            = (*Index)(nil)
	_ core.Counter            = (*BoxIndex)(nil)
	_ core.EpochQueryAppender = (*Index)(nil)
	_ core.EpochQueryAppender = (*BoxIndex)(nil)
)

// Index is the epoch-published wrapper around a point index: a
// core.Index whose queries drain lock-free on the live epoch while
// ApplyBatch maintains the shadow. See the package comment for the
// protocol.
type Index struct {
	pub[geom.Point, geom.Move]
	newInner func() core.Index
}

// NewIndex wraps the point index family produced by newInner. The
// factory is invoked once per buffer at Build — the two buffers need
// independent inner indexes — so it must return fresh instances, as all
// core.Factory implementations do.
func NewIndex(newInner func() core.Index, opts Options) *Index {
	x := &Index{newInner: newInner}
	x.opts = opts.withDefaults()
	x.ins = newIns()
	x.moveID = func(m geom.Move) uint32 { return m.ID }
	x.moveNew = func(m geom.Move) geom.Point { return m.New }
	x.fold = FoldMoves
	x.probePresent = func(ops indexOps[geom.Point], m geom.Move) bool {
		if ops.owns != nil && !ops.owns(m.New) {
			// The inner is a region shard that does not own the new
			// position: the move is an emigration and the id must be GONE
			// from this shard's query results at its new position.
			return !pointAt(ops, m.New, m.ID)
		}
		return pointAt(ops, m.New, m.ID)
	}
	x.probeAbsent = func(ops indexOps[geom.Point], m geom.Move) bool {
		if m.Old == m.New {
			return true
		}
		return !pointAt(ops, m.Old, m.ID)
	}
	return x
}

// PointOwner is implemented by region-sharded point indexes
// (internal/shard): the index holds and reports only the objects whose
// position falls in its region, so the wrapper's membership probes must
// condition presence on ownership of the probed position.
type PointOwner interface {
	OwnsPoint(p geom.Point) bool
}

// pointAt reports whether the index emits id for an exact-point query
// at p.
func pointAt(ops indexOps[geom.Point], p geom.Point, id uint32) bool {
	found := false
	ops.query(p.Rect(), func(got uint32) {
		if got == id {
			found = true
		}
	})
	return found
}

func newPointBuffer(idx core.Index, n int) *buffer[geom.Point] {
	b := &buffer[geom.Point]{snap: make([]geom.Point, n)}
	b.ops = indexOps[geom.Point]{
		name:        idx.Name,
		build:       idx.Build,
		update:      idx.Update,
		query:       idx.Query,
		queryAppend: core.QueryAppendOf(idx, idx.Query),
	}
	if c, ok := idx.(core.Counter); ok {
		b.ops.length = c.Len
	} else {
		b.ops.length = func() int { return len(b.snap) }
	}
	if ic, ok := idx.(core.InvariantChecker); ok {
		b.ops.check = ic.CheckInvariants
	}
	if ro, ok := idx.(PointOwner); ok {
		b.ops.owns = ro.OwnsPoint
	}
	return b
}

// Name reports the wrapped family ("epoch(...)" around the inner name,
// once a Build has instantiated it).
func (x *Index) Name() string {
	if b := x.live.Load(); b != nil {
		return "epoch(" + b.ops.name() + ")"
	}
	return "epoch"
}

// Build initializes both buffers from the snapshot and publishes
// epoch 0. Each buffer copies pts into its own private snapshot, so the
// caller's slice is never aliased by a published epoch.
func (x *Index) Build(pts []geom.Point) {
	a := newPointBuffer(x.newInner(), len(pts))
	b := newPointBuffer(x.newInner(), len(pts))
	copy(a.snap, pts)
	copy(b.snap, pts)
	x.build(a, b, SnapshotDigestPoints(pts))
}

// ApplyBatch applies one tick of moves to the shadow and publishes it,
// returning the new epoch. On error the batch is NOT applied: the last
// good epoch keeps serving, and the caller may merge the batch into the
// next tick's ApplyBatch (the wrapper sources each move's old position
// from its own snapshot, so merged batches replay safely).
func (x *Index) ApplyBatch(moves []geom.Move) (uint64, error) {
	return x.applyBatch(moves)
}

// Query implements core.EpochIndex: one lock-free probe on the live
// epoch, returning the epoch number and consistency digest it observed.
func (x *Index) Query(r geom.Rect, emit func(id uint32)) (uint64, uint64) {
	return x.query(r, emit)
}

// QueryAppend implements core.EpochQueryAppender: the buffered variant
// of Query. The whole inner scan runs under one epoch pin, so buf holds
// a consistent single-epoch result set.
func (x *Index) QueryAppend(r geom.Rect, buf []uint32) ([]uint32, uint64, uint64) {
	return x.queryAppend(r, buf)
}

// Epoch returns the live epoch number and digest.
func (x *Index) Epoch() (uint64, uint64) { return x.epochNow() }

// Stats returns the lifecycle counters.
func (x *Index) Stats() Stats { return x.stats() }

// Len implements core.Counter for the live epoch.
func (x *Index) Len() int {
	b := x.pin()
	if b == nil {
		return 0
	}
	defer b.active.Add(-1)
	return b.ops.length()
}
