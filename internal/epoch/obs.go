package epoch

import "repro/internal/obs"

// ins is the wrapper's instrument set, replacing the former ad-hoc
// atomic counters. The standalone counters always exist (the
// constructors create them) and are the exact per-wrapper source of
// truth behind Stats(). Instrument additionally binds the shared
// registry series — which aggregate across every wrapper attached to
// the same registry, e.g. all shards of a sharded engine — and the
// maintenance-phase span histograms. Registry fields no-op while nil,
// and every increment below is on the writer's cold path (once per
// tick, retry, or contained panic), so the double count costs nothing
// measurable.
type ins struct {
	reg *obs.Registry

	// Per-wrapper lifecycle counters backing Stats().
	epochs, degraded, retries, panics *obs.Counter

	// Registry-shared lifecycle series.
	rEpochs, rDegraded, rRetries, rPanics *obs.Counter

	// Maintenance-phase spans of applyBatch.
	apply, validate, publish, quiesce *obs.Histogram
}

func newIns() ins {
	return ins{
		epochs:   obs.NewCounter(),
		degraded: obs.NewCounter(),
		retries:  obs.NewCounter(),
		panics:   obs.NewCounter(),
	}
}

// bind attaches the shared registry series. Call before Build; the
// wrapper does not support re-instrumentation with readers in flight.
func (i *ins) bind(r *obs.Registry) {
	if r == nil {
		return
	}
	i.reg = r
	i.rEpochs = r.Counter("epoch.epochs_published")
	i.rDegraded = r.Counter("epoch.degraded_ticks")
	i.rRetries = r.Counter("epoch.publish_retries")
	i.rPanics = r.Counter("epoch.panics_contained")
	i.apply = r.Histogram("epoch.apply_ns")
	i.validate = r.Histogram("epoch.validate_ns")
	i.publish = r.Histogram("epoch.publish_ns")
	i.quiesce = r.Histogram("epoch.quiesce_ns")
}

func (i *ins) publishedEpoch(degraded bool) {
	i.epochs.Inc()
	i.rEpochs.Inc()
	if degraded {
		i.degraded.Inc()
		i.rDegraded.Inc()
	}
}

func (i *ins) exhaustedRetries() {
	i.degraded.Inc()
	i.rDegraded.Inc()
}

func (i *ins) retried() {
	i.retries.Inc()
	i.rRetries.Inc()
}

func (i *ins) containedPanic() {
	i.panics.Inc()
	i.rPanics.Inc()
}

// Instrument implements obs.Instrumentable (promoted to Index and
// BoxIndex): it binds the wrapper's lifecycle events to the shared
// "epoch.*" registry series and enables the maintenance-phase span
// histograms. The concurrent drivers call this ahead of Build.
func (x *pub[P, M]) Instrument(r *obs.Registry) { x.ins.bind(r) }
