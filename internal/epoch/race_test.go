package epoch

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/faultutil"
	"repro/internal/geom"
	"repro/internal/xrand"
)

// TestRaceStressPointFamilies drives concurrent readers against the
// publish loop for every point family. Run under -race this is the
// wrapper's data-race gate; the assertions also re-check the pin
// protocol (a reader's digest always names a published epoch).
func TestRaceStressPointFamilies(t *testing.T) {
	const n, ticks, batch, readers = 1200, 20, 150, 4
	for name, mk := range pointFamilies(n) {
		t.Run(name, func(t *testing.T) {
			r := xrand.New(17)
			oracle := randomPoints(r, n)
			x := NewIndex(mk, Options{})
			x.Build(oracle)

			var mu sync.Mutex
			digests := map[uint64]uint64{0: SnapshotDigestPoints(oracle)}

			var stop atomic.Bool
			var violations atomic.Int64
			var g sync.WaitGroup
			for w := 0; w < readers; w++ {
				w := w
				g.Add(1)
				go func() {
					defer g.Done()
					rr := xrand.New(200 + uint64(w))
					for !stop.Load() {
						rect := geom.Square(geom.Pt(
							rr.Range(testBounds.MinX, testBounds.MaxX),
							rr.Range(testBounds.MinY, testBounds.MaxY)), 40)
						e, d := x.Query(rect, func(uint32) {})
						mu.Lock()
						want, ok := digests[e]
						mu.Unlock()
						if !ok || want != d {
							violations.Add(1)
							return
						}
					}
				}()
			}
			digest := digests[0]
			for tick := 0; tick < ticks; tick++ {
				moves := randomMoves(r, oracle, batch)
				digest = FoldMoves(digest, moves)
				mu.Lock()
				digests[uint64(tick)+1] = digest
				mu.Unlock()
				if _, err := x.ApplyBatch(moves); err != nil {
					t.Fatalf("tick %d: %v", tick, err)
				}
				applyOracle(oracle, moves)
			}
			stop.Store(true)
			g.Wait()
			if v := violations.Load(); v != 0 {
				t.Fatalf("%d queries observed an unpublished epoch", v)
			}
		})
	}
}

// TestRaceStressBoxFamilies is the box-side race gate.
func TestRaceStressBoxFamilies(t *testing.T) {
	const n, ticks, batch, readers = 1000, 15, 120, 4
	for name, mk := range boxFamilies(n) {
		t.Run(name, func(t *testing.T) {
			r := xrand.New(19)
			oracle := randomBoxes(r, n)
			x := NewBoxIndex(mk, Options{})
			x.Build(oracle)

			var mu sync.Mutex
			digests := map[uint64]uint64{0: SnapshotDigestBoxes(oracle)}

			var stop atomic.Bool
			var violations atomic.Int64
			var g sync.WaitGroup
			for w := 0; w < readers; w++ {
				w := w
				g.Add(1)
				go func() {
					defer g.Done()
					rr := xrand.New(300 + uint64(w))
					for !stop.Load() {
						rect := geom.Square(geom.Pt(
							rr.Range(testBounds.MinX, testBounds.MaxX),
							rr.Range(testBounds.MinY, testBounds.MaxY)), 60)
						e, d := x.Query(rect, func(uint32) {})
						mu.Lock()
						want, ok := digests[e]
						mu.Unlock()
						if !ok || want != d {
							violations.Add(1)
							return
						}
					}
				}()
			}
			digest := digests[0]
			for tick := 0; tick < ticks; tick++ {
				moves := randomBoxMoves(r, oracle, batch)
				digest = FoldBoxMoves(digest, moves)
				mu.Lock()
				digests[uint64(tick)+1] = digest
				mu.Unlock()
				if _, err := x.ApplyBatch(moves); err != nil {
					t.Fatalf("tick %d: %v", tick, err)
				}
				applyBoxOracle(oracle, moves)
			}
			stop.Store(true)
			g.Wait()
			if v := violations.Load(); v != 0 {
				t.Fatalf("%d queries observed an unpublished epoch", v)
			}
		})
	}
}

// TestRaceStressUnderFaults drives readers while every tick degrades
// through an injected fault: queries must stay on valid epochs
// throughout the recovery churn.
func TestRaceStressUnderFaults(t *testing.T) {
	const n, ticks, batch, readers = 1000, 12, 150, 3
	r := xrand.New(23)
	oracle := randomPoints(r, n)
	// Fire a mix of faults on roughly half the visits, forever armed.
	x := NewIndex(pointFamilies(n)["csr"], Options{
		Injector: faultutil.MustNew(9, "apply:torn@0.4, swap:delay:200us@0.3"),
	})
	x.Build(oracle)

	var mu sync.Mutex
	digests := map[uint64]uint64{0: SnapshotDigestPoints(oracle)}

	var stop atomic.Bool
	var violations atomic.Int64
	var g sync.WaitGroup
	for w := 0; w < readers; w++ {
		w := w
		g.Add(1)
		go func() {
			defer g.Done()
			rr := xrand.New(400 + uint64(w))
			for !stop.Load() {
				rect := geom.Square(geom.Pt(
					rr.Range(testBounds.MinX, testBounds.MaxX),
					rr.Range(testBounds.MinY, testBounds.MaxY)), 40)
				e, d := x.Query(rect, func(uint32) {})
				mu.Lock()
				want, ok := digests[e]
				mu.Unlock()
				if !ok || want != d {
					violations.Add(1)
					return
				}
			}
		}()
	}
	digest := digests[0]
	for tick := 0; tick < ticks; tick++ {
		moves := randomMoves(r, oracle, batch)
		digest = FoldMoves(digest, moves)
		mu.Lock()
		digests[uint64(tick)+1] = digest
		mu.Unlock()
		if _, err := x.ApplyBatch(moves); err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		applyOracle(oracle, moves)
	}
	stop.Store(true)
	g.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d queries observed an unpublished epoch", v)
	}
}
