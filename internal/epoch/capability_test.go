package epoch

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/xrand"
)

// The epoch wrapper publishes immutable snapshots, so its buffered
// kernel has an extended shape — QueryAppend additionally reports the
// (epoch, digest) the scan observed. These tests pin the capability at
// runtime (the wrapper must remain a core.EpochQueryAppender behind the
// core.EpochIndex / core.EpochBoxIndex contracts), check that the
// buffered scan sees the same result set AND the same epoch pin as the
// callback scan, and hold the zero-allocation promise at steady state.

func capabilityRects(r *xrand.Rand, n int, ext float32) []geom.Rect {
	rects := make([]geom.Rect, n)
	for i := range rects {
		c := geom.Pt(r.Float32()*testBounds.MaxX, r.Float32()*testBounds.MaxY)
		rects[i] = geom.Square(c, ext)
	}
	return rects
}

func assertEpochAppendAgrees(t *testing.T, name string,
	query func(r geom.Rect, emit func(id uint32)) (uint64, uint64),
	queryAppend func(r geom.Rect, buf []uint32) ([]uint32, uint64, uint64),
	rects []geom.Rect) {
	t.Helper()
	var buf []uint32
	for i, r := range rects {
		var want uint64
		wantN := 0
		wantEp, wantDg := query(r, func(id uint32) { want = core.MixPair(want, 0, id); wantN++ })
		var ep, dg uint64
		buf, ep, dg = queryAppend(r, buf[:0])
		var got uint64
		for _, id := range buf {
			got = core.MixPair(got, 0, id)
		}
		if got != want || len(buf) != wantN {
			t.Fatalf("%s query %d: QueryAppend digest %x (%d ids), Query digest %x (%d ids)",
				name, i, got, len(buf), want, wantN)
		}
		if ep != wantEp || dg != wantDg {
			t.Fatalf("%s query %d: QueryAppend observed epoch %d/%x, Query observed %d/%x",
				name, i, ep, dg, wantEp, wantDg)
		}
	}

	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		buf, _, _ = queryAppend(rects[i%len(rects)], buf[:0])
		i++
	})
	if allocs != 0 {
		t.Errorf("%s: QueryAppend allocates %.1f times per query at steady state, want 0", name, allocs)
	}
}

func TestIndexForwardsEpochQueryAppender(t *testing.T) {
	const n = 2000
	r := xrand.New(21)
	for name, mk := range pointFamilies(n) {
		t.Run(name, func(t *testing.T) {
			var x core.EpochIndex = NewIndex(mk, Options{})
			qa, ok := x.(core.EpochQueryAppender)
			if !ok {
				t.Fatalf("%T does not forward core.EpochQueryAppender", x)
			}
			pts := randomPoints(r, n)
			x.Build(pts)
			// A published batch moves the epoch off zero, so the
			// observation check is not vacuous.
			if _, err := x.ApplyBatch(randomMoves(r, pts, 200)); err != nil {
				t.Fatal(err)
			}
			assertEpochAppendAgrees(t, x.Name(), x.Query, qa.QueryAppend, capabilityRects(r, 40, 120))
		})
	}
}

func TestBoxIndexForwardsEpochQueryAppender(t *testing.T) {
	const n = 2000
	r := xrand.New(22)
	for name, mk := range boxFamilies(n) {
		t.Run(name, func(t *testing.T) {
			var x core.EpochBoxIndex = NewBoxIndex(mk, Options{})
			qa, ok := x.(core.EpochQueryAppender)
			if !ok {
				t.Fatalf("%T does not forward core.EpochQueryAppender", x)
			}
			boxes := randomBoxes(r, n)
			x.Build(boxes)
			if _, err := x.ApplyBatch(randomBoxMoves(r, boxes, 200)); err != nil {
				t.Fatal(err)
			}
			assertEpochAppendAgrees(t, x.Name(), x.Query, qa.QueryAppend, capabilityRects(r, 40, 120))
		})
	}
}
