package epoch

import (
	"repro/internal/core"
	"repro/internal/geom"
)

// BoxIndex is the epoch-published wrapper around a box (MBR) index —
// Index's counterpart over core.BoxIndex. See the package comment for
// the protocol.
type BoxIndex struct {
	pub[geom.Rect, geom.BoxMove]
	newInner func() core.BoxIndex
}

// NewBoxIndex wraps the box index family produced by newInner. The
// factory is invoked once per buffer at Build, so it must return fresh
// instances.
func NewBoxIndex(newInner func() core.BoxIndex, opts Options) *BoxIndex {
	x := &BoxIndex{newInner: newInner}
	x.opts = opts.withDefaults()
	x.ins = newIns()
	x.moveID = func(m geom.BoxMove) uint32 { return m.ID }
	x.moveNew = func(m geom.BoxMove) geom.Rect { return m.New }
	x.fold = FoldBoxMoves
	x.probePresent = func(ops indexOps[geom.Rect], m geom.BoxMove) bool {
		if ops.owns != nil && !ops.owns(m.New) {
			// Region shard that is not the reference owner of the new
			// rectangle: a self-query must NOT report the id from here
			// (some other shard owns the reference point and reports it).
			return !boxAt(ops, m.New, m.ID)
		}
		return boxAt(ops, m.New, m.ID)
	}
	// Absence at the old rectangle is only assertable when old and new
	// are disjoint: an intersecting query cannot distinguish "still
	// stored at old" from "stored at new, which also intersects old".
	x.probeAbsent = func(ops indexOps[geom.Rect], m geom.BoxMove) bool {
		if m.Old.Intersects(m.New) {
			return true
		}
		return !boxAt(ops, m.Old, m.ID)
	}
	return x
}

// RectOwner is implemented by region-sharded box indexes
// (internal/shard): replicas exist in every overlapped shard but only
// the shard owning the reference point of a self-query (the rectangle's
// min corner) reports the object, so the wrapper's membership probes
// must condition presence on that ownership.
type RectOwner interface {
	OwnsRect(r geom.Rect) bool
}

// boxAt reports whether the index emits id for a query of rect r.
func boxAt(ops indexOps[geom.Rect], r geom.Rect, id uint32) bool {
	found := false
	ops.query(r, func(got uint32) {
		if got == id {
			found = true
		}
	})
	return found
}

func newBoxBuffer(idx core.BoxIndex, n int) *buffer[geom.Rect] {
	b := &buffer[geom.Rect]{snap: make([]geom.Rect, n)}
	b.ops = indexOps[geom.Rect]{
		name:        idx.Name,
		build:       idx.Build,
		update:      idx.Update,
		query:       idx.Query,
		queryAppend: core.QueryAppendOf(idx, idx.Query),
	}
	if c, ok := idx.(core.Counter); ok {
		b.ops.length = c.Len
	} else {
		b.ops.length = func() int { return len(b.snap) }
	}
	if ic, ok := idx.(core.InvariantChecker); ok {
		b.ops.check = ic.CheckInvariants
	}
	if ro, ok := idx.(RectOwner); ok {
		b.ops.owns = ro.OwnsRect
	}
	return b
}

// Name reports the wrapped family.
func (x *BoxIndex) Name() string {
	if b := x.live.Load(); b != nil {
		return "epoch(" + b.ops.name() + ")"
	}
	return "epoch"
}

// Build initializes both buffers from the snapshot and publishes
// epoch 0.
func (x *BoxIndex) Build(rects []geom.Rect) {
	a := newBoxBuffer(x.newInner(), len(rects))
	b := newBoxBuffer(x.newInner(), len(rects))
	copy(a.snap, rects)
	copy(b.snap, rects)
	x.build(a, b, SnapshotDigestBoxes(rects))
}

// ApplyBatch applies one tick of box moves to the shadow and publishes
// it, returning the new epoch. Error semantics match Index.ApplyBatch.
func (x *BoxIndex) ApplyBatch(moves []geom.BoxMove) (uint64, error) {
	return x.applyBatch(moves)
}

// Query implements core.EpochBoxIndex: one lock-free probe on the live
// epoch, returning the epoch number and consistency digest it observed.
func (x *BoxIndex) Query(r geom.Rect, emit func(id uint32)) (uint64, uint64) {
	return x.query(r, emit)
}

// QueryAppend implements core.EpochQueryAppender: the buffered variant
// of Query, scanning under one epoch pin.
func (x *BoxIndex) QueryAppend(r geom.Rect, buf []uint32) ([]uint32, uint64, uint64) {
	return x.queryAppend(r, buf)
}

// Epoch returns the live epoch number and digest.
func (x *BoxIndex) Epoch() (uint64, uint64) { return x.epochNow() }

// Stats returns the lifecycle counters.
func (x *BoxIndex) Stats() Stats { return x.stats() }

// Len implements core.Counter for the live epoch.
func (x *BoxIndex) Len() int {
	b := x.pin()
	if b == nil {
		return 0
	}
	defer b.active.Add(-1)
	return b.ops.length()
}
