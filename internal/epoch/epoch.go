// Package epoch wraps any core.Index/core.BoxIndex in an epoch-published
// double buffer so queries drain lock-free on an immutable live copy
// while the tick's update batch applies to a shadow copy, which is then
// atomically swapped in behind a quiesce barrier.
//
// # Publication protocol
//
// The wrapper owns two buffers, each holding an independent inner index
// plus a private base-table snapshot the index filters against. An
// atomic pointer names the live buffer. Readers pin it:
//
//	b := live.Load(); b.active++            // announce
//	if live.Load() != b { b.active--; retry } // confirm
//
// The writer applies the batch to the shadow, validates it, publishes
// with live.Store(shadow), and then quiesces — spins until the old
// buffer's active count drains to zero — before the old buffer may be
// touched again as the next shadow. Under Go's sequentially consistent
// atomics a reader either confirms its pin before the store (the writer
// waits for it) or re-checks after it (and retries onto the new live
// buffer), so no query ever observes a buffer under mutation: exactly
// one epoch is visible per query.
//
// Because publishing leaves the new shadow one batch behind the new
// live, the writer carries the published batch and replays it into the
// shadow at the start of the next tick (the catch-up protocol).
//
// # Consistency digests
//
// Every epoch carries a digest folded from the stream of published
// state: epoch 0 digests the build snapshot, and epoch n+1 folds epoch
// n's digest with the tick's batch (see Fold*). Queries return their
// epoch's digest, so a test oracle that folds the same batches can
// assert any query observed exactly one published epoch — never a blend.
//
// # Validation, failure, and degradation
//
// Before publishing, the wrapper validates the shadow: the inner
// index's own CheckInvariants (when implemented), a cardinality check,
// and sampled membership probes across the batch (always including the
// last move, so a torn prefix-only apply is caught). A validation
// failure or a contained panic (the apply/build/swap stages recover
// panics, including parutil.WorkerPanic from parallel inner paths) puts
// the tick into degradation: queries keep draining on the last good
// epoch, the shadow is rebuilt from the live snapshot plus the pending
// batches, and the publish is retried under exponential backoff capped
// at Options.MaxBackoff for up to Options.MaxRetries attempts. Every
// degraded tick, retry, and contained panic is counted in Stats. If all
// retries fail, ApplyBatch returns the error, the live epoch stays
// valid and served, and the shadow is marked dirty so the next tick
// starts from a full rebuild.
package epoch

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultutil"
	"repro/internal/geom"
)

// Default degradation policy: up to 4 publish attempts with 1ms, 2ms,
// 4ms backoff between them, capped at 20ms.
const (
	defaultMaxRetries = 3
	defaultBackoff    = time.Millisecond
	defaultMaxBackoff = 20 * time.Millisecond
	// maxProbes bounds the sampled membership probes per validation.
	maxProbes = 16
)

// Options configures a wrapper. The zero value is production-ready:
// no fault injection and the default retry/backoff policy.
type Options struct {
	// Injector, when non-nil, fires configured faults at the "apply",
	// "build", and "swap" sites of the maintenance pipeline.
	Injector *faultutil.Injector
	// MaxRetries is the number of publish retries after a failed
	// attempt (default 3, so 4 attempts total).
	MaxRetries int
	// Backoff is the sleep before the first retry; it doubles per
	// retry (default 1ms).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 20ms).
	MaxBackoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxRetries <= 0 {
		o.MaxRetries = defaultMaxRetries
	}
	if o.Backoff <= 0 {
		o.Backoff = defaultBackoff
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = defaultMaxBackoff
	}
	return o
}

// Stats counts the wrapper's lifecycle events: published epochs,
// degraded ticks, publish retries, and contained panics. It aliases
// core.EpochStats so the wrappers satisfy core.EpochIndex /
// core.EpochBoxIndex without core importing this package.
type Stats = core.EpochStats

// indexOps is the closure vtable the concrete wrappers build around an
// inner core.Index or core.BoxIndex, erasing the interface difference
// so the publication machinery exists once.
type indexOps[P any] struct {
	name   func() string
	build  func(snap []P)
	update func(id uint32, old, new P)
	query  func(r geom.Rect, emit func(id uint32))
	// queryAppend is the buffered query kernel (core.QueryAppendOf over
	// the inner index: native when the inner supports it).
	queryAppend func(r geom.Rect, buf []uint32) []uint32
	length      func() int
	// check is the inner CheckInvariants, nil when unsupported.
	check func() error
	// owns is non-nil for region-sharded inners (PointOwner/RectOwner):
	// the index reports only the objects whose geometry it owns, so the
	// membership probes condition presence on ownership.
	owns func(p P) bool
}

// buffer is one of the two publication targets: an inner index plus the
// private snapshot it filters against, stamped with its epoch.
type buffer[P any] struct {
	ops    indexOps[P]
	snap   []P
	epoch  uint64
	digest uint64
	// active counts pinned readers; the writer quiesces on it after a
	// swap before reusing the buffer as shadow.
	active atomic.Int64
}

// pub is the generic epoch publisher. P is the object geometry, M the
// move record.
type pub[P any, M any] struct {
	// mu serializes writers (Build/ApplyBatch); queries never take it.
	mu     sync.Mutex
	live   atomic.Pointer[buffer[P]]
	shadow *buffer[P]
	// carry is the batch published in live but not yet replayed into
	// shadow (the catch-up protocol).
	carry []M
	// dirty marks the shadow unusable for incremental catch-up (a
	// failed tick left it in an unknown state): the next apply rebuilds.
	dirty bool
	opts  Options

	// ins holds the lifecycle counters (always present, backing Stats)
	// and the optional registry-shared series and phase spans (obs.go).
	ins ins

	// Geometry-specific hooks bound by the concrete constructors.
	moveID  func(m M) uint32
	moveNew func(m M) P
	// fold chains the epoch digest over one batch.
	fold func(d uint64, moves []M) uint64
	// probePresent queries ops for the id at its post-move geometry.
	// probeAbsent reports whether the id is detectably gone from its
	// pre-move geometry (false when the two overlap and absence cannot
	// be asserted).
	probePresent func(ops indexOps[P], m M) bool
	probeAbsent  func(ops indexOps[P], m M) bool
}

// build initializes both buffers from the snapshot (epoch 0). The
// concrete Build methods copy pts into each buffer's private snapshot
// and pass the two prepared buffers here.
func (x *pub[P, M]) build(a, b *buffer[P], digest uint64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	a.ops.build(a.snap)
	b.ops.build(b.snap)
	a.epoch, b.epoch = 0, 0
	a.digest, b.digest = digest, digest
	x.shadow = b
	x.carry = nil
	x.dirty = false
	x.live.Store(a)
}

// pin acquires a read lease on the live buffer.
func (x *pub[P, M]) pin() *buffer[P] {
	for {
		b := x.live.Load()
		if b == nil {
			return nil
		}
		b.active.Add(1)
		if x.live.Load() == b {
			return b
		}
		b.active.Add(-1)
	}
}

// query drains one query on the live epoch, returning the epoch number
// and digest it observed. Lock-free against the writer.
func (x *pub[P, M]) query(r geom.Rect, emit func(id uint32)) (uint64, uint64) {
	b := x.pin()
	if b == nil {
		return 0, 0
	}
	defer b.active.Add(-1)
	b.ops.query(r, emit)
	return b.epoch, b.digest
}

// queryAppend drains one buffered query on the live epoch, returning the
// appended buffer plus the epoch number and digest it observed. The
// entire inner scan runs under one pin, so the buffer's contents are a
// consistent view of a single epoch.
func (x *pub[P, M]) queryAppend(r geom.Rect, buf []uint32) ([]uint32, uint64, uint64) {
	b := x.pin()
	if b == nil {
		return buf, 0, 0
	}
	defer b.active.Add(-1)
	buf = b.ops.queryAppend(r, buf)
	return buf, b.epoch, b.digest
}

// contained runs fn, converting a panic (including re-panicked worker
// panics) into an error and counting it.
func (x *pub[P, M]) contained(fn func()) (err error) {
	defer func() {
		if v := recover(); v != nil {
			x.ins.containedPanic()
			if e, ok := v.(error); ok {
				err = fmt.Errorf("epoch: contained panic: %w", e)
			} else {
				err = fmt.Errorf("epoch: contained panic: %v", v)
			}
		}
	}()
	fn()
	return nil
}

// fire visits a fault-injection site, honouring a torn-write request by
// reporting the truncated batch length to apply.
func (x *pub[P, M]) fire(site string, n int) int {
	if x.opts.Injector.Fire(site) == faultutil.FaultTorn {
		return n / 2
	}
	return n
}

// applyIncremental replays carry and applies the batch move by move,
// keeping the buffer's index and snapshot coherent at every step. The
// "apply" fault site fires once per batch; a torn fault truncates the
// applied suffix (both index and snapshot, so the tear is only
// detectable by validation — exactly the failure it simulates).
func (x *pub[P, M]) applyIncremental(sh *buffer[P], moves []M) error {
	return x.contained(func() {
		for _, m := range x.carry {
			id := x.moveID(m)
			old := sh.snap[id]
			sh.ops.update(id, old, x.moveNew(m))
			sh.snap[id] = x.moveNew(m)
		}
		n := x.fire("apply", len(moves))
		for _, m := range moves[:n] {
			id := x.moveID(m)
			old := sh.snap[id]
			sh.ops.update(id, old, x.moveNew(m))
			sh.snap[id] = x.moveNew(m)
		}
	})
}

// applyRebuild recovers the shadow from scratch: live snapshot plus the
// pending batches folded in by plain assignment, then a full inner
// build. The "build" fault site fires here.
func (x *pub[P, M]) applyRebuild(sh, live *buffer[P], moves []M) error {
	return x.contained(func() {
		copy(sh.snap, live.snap)
		for _, m := range x.carry {
			sh.snap[x.moveID(m)] = x.moveNew(m)
		}
		n := x.fire("build", len(moves))
		for _, m := range moves[:n] {
			sh.snap[x.moveID(m)] = x.moveNew(m)
		}
		sh.ops.build(sh.snap)
	})
}

// validate audits the shadow before publication: cardinality, the inner
// structure's own invariants, and sampled membership probes over the
// batch (first, last, and a stride through the middle).
func (x *pub[P, M]) validate(sh *buffer[P], moves []M) error {
	if got, want := sh.ops.length(), len(sh.snap); got != want {
		return fmt.Errorf("epoch: shadow holds %d entries, snapshot has %d", got, want)
	}
	if sh.ops.check != nil {
		if err := sh.ops.check(); err != nil {
			return fmt.Errorf("epoch: shadow invariants: %w", err)
		}
	}
	if len(moves) == 0 {
		return nil
	}
	// A merged or replayed batch may move the same id twice; only its
	// final move describes the published position, so probes skip
	// superseded moves.
	lastOf := make(map[uint32]int, len(moves))
	for i, m := range moves {
		lastOf[x.moveID(m)] = i
	}
	stride := 1
	if len(moves) > maxProbes {
		stride = len(moves) / maxProbes
	}
	probe := func(i int) error {
		m := moves[i]
		if lastOf[x.moveID(m)] != i {
			return nil
		}
		if !x.probePresent(sh.ops, m) {
			return fmt.Errorf("epoch: move %d/%d (id %d) not found at its new position",
				i, len(moves), x.moveID(m))
		}
		if !x.probeAbsent(sh.ops, m) {
			return fmt.Errorf("epoch: move %d/%d (id %d) still present at its old position",
				i, len(moves), x.moveID(m))
		}
		return nil
	}
	// The last move first: it is the one a torn prefix-only apply loses.
	if err := probe(len(moves) - 1); err != nil {
		return err
	}
	for i := 0; i < len(moves)-1; i += stride {
		if err := probe(i); err != nil {
			return err
		}
	}
	return nil
}

// applyBatch is the writer tick: catch up the shadow, apply the batch,
// validate, publish, quiesce. On failure it degrades per the package
// comment. Returns the published epoch.
func (x *pub[P, M]) applyBatch(moves []M) (uint64, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	live := x.live.Load()
	if live == nil {
		return 0, fmt.Errorf("epoch: ApplyBatch before Build")
	}
	sh := x.shadow

	applied := false
	failed := false
	var lastErr error
	for attempt := 0; ; attempt++ {
		if !applied {
			var err error
			as := x.ins.reg.Enter(x.ins.apply)
			if x.dirty {
				err = x.applyRebuild(sh, live, moves)
			} else {
				err = x.applyIncremental(sh, moves)
				// Whatever happens next, the shadow can no longer be
				// caught up incrementally except by this tick's success.
				x.dirty = true
			}
			x.ins.reg.Exit(as)
			if err == nil {
				vs := x.ins.reg.Enter(x.ins.validate)
				err = x.validate(sh, moves)
				x.ins.reg.Exit(vs)
			}
			if err == nil {
				applied = true
			} else {
				lastErr = err
			}
		}
		if applied {
			ps := x.ins.reg.Enter(x.ins.publish)
			err := x.contained(func() { x.fire("swap", 0) })
			if err == nil {
				sh.epoch = live.epoch + 1
				sh.digest = x.fold(live.digest, moves)
				x.live.Store(sh)
			}
			x.ins.reg.Exit(ps)
			if err == nil {
				// Quiesce: wait out readers still pinned to the old
				// buffer before it may be mutated as the next shadow.
				qs := x.ins.reg.Enter(x.ins.quiesce)
				for live.active.Load() != 0 {
					runtime.Gosched()
				}
				x.ins.reg.Exit(qs)
				x.shadow = live
				x.carry = append(x.carry[:0], moves...)
				x.dirty = false
				x.ins.publishedEpoch(failed)
				return sh.epoch, nil
			}
			lastErr = err
		}
		failed = true
		if attempt >= x.opts.MaxRetries {
			x.ins.exhaustedRetries()
			return live.epoch, fmt.Errorf("epoch: publish failed after %d attempts, serving epoch %d: %w",
				attempt+1, live.epoch, lastErr)
		}
		x.ins.retried()
		backoff := x.opts.Backoff << uint(attempt)
		if backoff > x.opts.MaxBackoff {
			backoff = x.opts.MaxBackoff
		}
		time.Sleep(backoff)
	}
}

// stats returns a snapshot of the lifecycle counters.
func (x *pub[P, M]) stats() Stats {
	return Stats{
		Epochs:          uint64(x.ins.epochs.Value()),
		Degraded:        uint64(x.ins.degraded.Value()),
		Retries:         uint64(x.ins.retries.Value()),
		PanicsContained: uint64(x.ins.panics.Value()),
	}
}

// epochNow returns the live epoch number and digest.
func (x *pub[P, M]) epochNow() (uint64, uint64) {
	b := x.live.Load()
	if b == nil {
		return 0, 0
	}
	return b.epoch, b.digest
}
