package core

// SetMaxExactLatSamples shrinks the concurrent drivers' exact latency
// sample cap so external driver tests can force the bounded histogram
// percentile path on small workloads. Returns a restore func.
func SetMaxExactLatSamples(n int) (restore func()) {
	old := maxExactLatSamples
	maxExactLatSamples = n
	return func() { maxExactLatSamples = old }
}
