package core

import (
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/workload"
)

// RunBoxes executes the iterated spatial join of a box index over an MBR
// workload: the same three-phase tick loop as Run, with the object
// geometry widened from points to rectangles. A join pair (q, id) means
// object id's MBR intersects the range query of querier q; the result
// digest is directly comparable across BoxIndex implementations.
func RunBoxes(idx BoxIndex, src workload.BoxSource, opts Options) *Result {
	obs.Instrument(idx, opts.Obs)
	return runTicks(boxEngine(idx, src), opts)
}

// RunBoxesParallel is RunParallel for box indexes: every phase of the
// tick fans out over the given number of worker goroutines (0 selects
// GOMAXPROCS), with queriers scheduled by the Morton code of their MBR
// centre. The result digest matches RunBoxes bit for bit.
func RunBoxesParallel(idx BoxIndex, src workload.BoxSource, opts Options, workers int) *Result {
	obs.Instrument(idx, opts.Obs)
	return runTicksParallel(boxEngine(idx, src), opts, workers)
}

// boxEngine binds a box index and an MBR workload into the generic tick
// engine.
func boxEngine(idx BoxIndex, src workload.BoxSource) *engine[geom.Rect] {
	cfg := src.Config()
	e := &engine[geom.Rect]{
		name:        idx.Name(),
		ticks:       cfg.Ticks,
		n:           src.NumBoxes(),
		bounds:      cfg.Bounds(),
		refresh:     src.RefreshRects,
		build:       idx.Build,
		query:       idx.Query,
		queryAppend: QueryAppendOf(idx, idx.Query),
		queryBatch:  QueryBatchOf(idx, idx.Query),
		queriers:    src.Queriers,
		queryRect:   src.QueryRect,
		center:      geom.Rect.Center,
	}
	if builder, ok := idx.(BoxParallelBuilder); ok {
		e.buildParallel = builder.BuildParallel
	}
	batcher, _ := idx.(BoxBatchUpdater)
	var moves []geom.BoxMove
	e.updatePhase = func(snap []geom.Rect, workers int) int {
		batch := src.Updates()
		if workers > 1 && batcher != nil && batcher.CanBatchUpdates(len(batch)) {
			moves = moves[:0]
			for _, u := range batch {
				moves = append(moves, geom.BoxMove{ID: u.ID, Old: snap[u.ID], New: u.Rect})
			}
			batcher.UpdateBatch(moves, workers)
		} else {
			for _, u := range batch {
				idx.Update(u.ID, snap[u.ID], u.Rect)
			}
		}
		src.ApplyUpdates(batch)
		return len(batch)
	}
	return e
}
