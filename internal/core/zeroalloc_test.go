package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// The brute-force baselines implement the buffered kernels natively
// too, so the lineup's oracle measurements are apples-to-apples with
// the indexes: zero allocations per query once the caller's buffer has
// reached the workload's high-water mark.

func zeroAllocRects(rng *xrand.Rand, n int, space, ext float32) []geom.Rect {
	rects := make([]geom.Rect, n)
	for i := range rects {
		c := geom.Point{X: rng.Float32() * space, Y: rng.Float32() * space}
		rects[i] = geom.Square(c, ext)
	}
	return rects
}

func assertZeroAllocAppend(t *testing.T, name string, qa func(r geom.Rect, buf []uint32) []uint32, rects []geom.Rect) {
	t.Helper()
	var buf []uint32
	for _, r := range rects {
		buf = qa(r, buf[:0])
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		buf = qa(rects[i%len(rects)], buf[:0])
		i++
	})
	if allocs != 0 {
		t.Errorf("%s: QueryAppend allocates %.1f times per query at steady state, want 0", name, allocs)
	}
}

func TestBruteForceQueryAppendZeroAlloc(t *testing.T) {
	const space = 4000
	rng := xrand.New(3)
	pts := make([]geom.Point, 3000)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float32() * space, Y: rng.Float32() * space}
	}
	b := NewBruteForce()
	b.Build(pts)
	assertZeroAllocAppend(t, b.Name(), b.QueryAppend, zeroAllocRects(rng, 50, space, 200))
}

func TestBruteForceBoxesQueryAppendZeroAlloc(t *testing.T) {
	const space = 4000
	rng := xrand.New(5)
	boxes := make([]geom.Rect, 3000)
	for i := range boxes {
		c := geom.Point{X: rng.Float32() * space, Y: rng.Float32() * space}
		boxes[i] = geom.Square(c, 1+rng.Float32()*40)
	}
	b := NewBruteForceBoxes()
	b.Build(boxes)
	assertZeroAllocAppend(t, b.Name(), b.QueryAppend, zeroAllocRects(rng, 50, space, 200))
}
