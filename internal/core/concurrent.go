package core

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/parutil"
	"repro/internal/workload"
)

// This file holds the concurrent tick driver: queries drain against an
// epoch-published index while the tick's update batch applies in the
// background, measuring per-query latency under update load. It is the
// service-mode counterpart of the stop-the-world loop in engine.go,
// where each tick's phases run strictly one after another.

// EpochStats counts an epoch-published wrapper's lifecycle events (see
// internal/epoch, whose Stats type aliases this one). All fields are
// monotonic.
type EpochStats struct {
	// Epochs is the number of successfully published epochs (swaps),
	// not counting the initial build (epoch 0).
	Epochs uint64
	// Degraded counts ticks that entered degradation (at least one
	// failed apply/validate/swap attempt).
	Degraded uint64
	// Retries counts publish retry attempts across all ticks.
	Retries uint64
	// PanicsContained counts panics recovered at the containment
	// barrier.
	PanicsContained uint64
}

// EpochIndex is the epoch-published point index contract the concurrent
// driver runs against (implemented by epoch.Index). Queries are safe to
// call concurrently with ApplyBatch; ApplyBatch itself is single-writer.
type EpochIndex interface {
	Name() string
	// Build initializes the wrapper over the snapshot and publishes
	// epoch 0.
	Build(pts []geom.Point)
	// ApplyBatch applies one tick of moves and publishes the next
	// epoch. On error the batch was NOT applied: the previous epoch
	// stays live and the caller may merge the batch into the next tick.
	ApplyBatch(moves []geom.Move) (uint64, error)
	// Query probes the live epoch, returning the epoch number and
	// consistency digest the query observed.
	Query(r geom.Rect, emit func(id uint32)) (epoch, digest uint64)
	// Epoch returns the live epoch number and digest.
	Epoch() (uint64, uint64)
	Stats() EpochStats
}

// EpochBoxIndex is EpochIndex over rectangles (implemented by
// epoch.BoxIndex).
type EpochBoxIndex interface {
	Name() string
	Build(rects []geom.Rect)
	ApplyBatch(moves []geom.BoxMove) (uint64, error)
	Query(r geom.Rect, emit func(id uint32)) (epoch, digest uint64)
	Epoch() (uint64, uint64)
	Stats() EpochStats
}

// ConcurrentOptions tunes a RunConcurrent.
type ConcurrentOptions struct {
	// Ticks caps the number of ticks executed; 0 means the workload's
	// configured tick count.
	Ticks int
	// Readers is the number of query worker goroutines draining each
	// tick's queriers; 0 selects GOMAXPROCS-1 (one core is left for the
	// updater), minimum 1.
	Readers int
	// Obs, when non-nil, receives the concurrent driver's instruments
	// (per-query latency, apply/tick spans, violation gauge) and is
	// offered to the epoch wrapper before Build, which adds the
	// epoch/shard/tune series. Nil disables instrumentation; per-query
	// latency percentiles are then still bounded-memory via a private
	// histogram.
	Obs *obs.Registry
}

// ConcurrentResult aggregates a concurrent run. Join pairs and the hash
// are reported for sanity but are NOT comparable across runs: a query
// legitimately observes either of the two epochs adjacent to its
// execution window, so the result depends on scheduling. The epoch
// consistency contract is what is checked instead (Violations).
type ConcurrentResult struct {
	Technique string
	Ticks     int
	Readers   int
	Elapsed   time.Duration

	Queries int64
	Updates int64
	Pairs   int64
	Hash    uint64

	// QueryP50/P95/P99 are per-query latency percentiles measured while
	// the update stream applies concurrently.
	QueryP50, QueryP95, QueryP99 time.Duration

	// FailedTicks counts ticks whose batch exhausted the wrapper's
	// retries and carried over into the next tick.
	FailedTicks int
	// Violations counts queries whose (epoch, digest) pair did not
	// match a published epoch. Any non-zero value is a bug.
	Violations int64

	Stats EpochStats
}

// AvgTick returns the average wall time per tick.
func (r *ConcurrentResult) AvgTick() time.Duration {
	if r.Ticks == 0 {
		return 0
	}
	return r.Elapsed / time.Duration(r.Ticks)
}

// concurrentEngine adapts one object class to the concurrent tick loop,
// mirroring engine[P] for the stop-the-world drivers.
type concurrentEngine[M any] struct {
	name      string
	ticks     int
	queriers  func() []uint32
	queryRect func(q uint32) geom.Rect
	// fetchBatch advances the workload one tick and converts its update
	// batch to index moves WITHOUT applying it to the base table.
	fetchBatch func() []M
	// commitBatch installs the fetched batch into the base table; called
	// after the tick's queries have drained, preserving the framework's
	// "queries read the previous tick's state" contract.
	commitBatch func()
	apply       func(moves []M) (uint64, error)
	// queryAppend drains one query into the caller's reused buffer,
	// returning the (epoch, digest) observation — the buffered kernel
	// every reader worker runs (native via EpochQueryAppender, else the
	// callback adapter built by epochAppendOf).
	queryAppend func(r geom.Rect, buf []uint32) ([]uint32, uint64, uint64)
	epochNow    func() (uint64, uint64)
	stats       func() EpochStats
}

// epochAppendOf returns the buffered query kernel of an epoch-published
// index: the native QueryAppend when the wrapper implements
// EpochQueryAppender, else an adapter over the callback Query.
func epochAppendOf(x any, query func(r geom.Rect, emit func(id uint32)) (uint64, uint64)) func(r geom.Rect, buf []uint32) ([]uint32, uint64, uint64) {
	if qa, ok := x.(EpochQueryAppender); ok {
		return qa.QueryAppend
	}
	return func(r geom.Rect, buf []uint32) ([]uint32, uint64, uint64) {
		ep, dg := query(r, func(id uint32) { buf = append(buf, id) })
		return buf, ep, dg
	}
}

// runConcurrent overlaps each tick's query drain with its update batch:
// one updater goroutine calls ApplyBatch while reader workers claim
// blocks of the querier stream through an atomic cursor. Per-query
// latencies are collected for the percentile series, and every query's
// (epoch, digest) observation is checked against the published oracle.
func runConcurrent[M any](e *concurrentEngine[M], opts ConcurrentOptions) *ConcurrentResult {
	readers := opts.Readers
	if readers <= 0 {
		readers = runtime.GOMAXPROCS(0) - 1
	}
	if readers < 1 {
		readers = 1
	}
	ticks := e.ticks
	if opts.Ticks > 0 && opts.Ticks < ticks {
		ticks = opts.Ticks
	}
	res := &ConcurrentResult{Technique: e.name, Ticks: ticks, Readers: readers}
	co := newConcObs(opts.Obs)
	latHist := co.latHist()

	// Per-reader state, merged after the run. lat keeps exact latency
	// samples up to maxExactLatSamples and feeds the shared histogram
	// beyond that (bounded memory on long runs). seen records every
	// distinct (epoch, digest) observation; a same-epoch digest
	// mismatch is a violation counted immediately.
	type readerState struct {
		lat   latRecorder
		seen  map[uint64]uint64
		pairs int64
		hash  uint64
		bad   int64
	}
	states := make([]*readerState, readers)
	for w := range states {
		states[w] = &readerState{
			lat:  latRecorder{hist: latHist},
			seen: make(map[uint64]uint64, ticks+1),
		}
	}

	// oracle holds the digest of every published epoch, recorded by the
	// (single-threaded) driver after each successful publish; readers
	// are verified against it after the run, so publish/observe ordering
	// cannot race.
	oracle := make(map[uint64]uint64, ticks+1)
	ep, dg := e.epochNow()
	oracle[ep] = dg

	var pending []M
	start := time.Now()
	for t := 0; t < ticks; t++ {
		ts := co.reg.Enter(co.tick)
		queriers := e.queriers()
		batch := e.fetchBatch()
		moves := batch
		if len(pending) > 0 {
			moves = append(pending, batch...)
		}

		// parutil.GoErr contains an updater panic as a failed tick (the
		// readers must drain and the loop must carry the batch) instead of
		// letting a raw goroutine kill the process.
		mv := moves
		updDone := parutil.GoErr(func() error {
			sp := co.reg.Enter(co.apply)
			_, err := e.apply(mv)
			co.reg.Exit(sp)
			return err
		})

		var cursor atomic.Int64
		var g parutil.Group
		for w := 0; w < readers; w++ {
			st := states[w]
			g.Go(func() {
				// The result buffer lives per worker per tick and is
				// reused across every query the worker drains, so the
				// steady state allocates nothing on the hot path.
				var buf []uint32
				for {
					lo := int(cursor.Add(queryBlock)) - queryBlock
					if lo >= len(queriers) {
						break
					}
					hi := lo + queryBlock
					if hi > len(queriers) {
						hi = len(queriers)
					}
					for _, q := range queriers[lo:hi] {
						r := e.queryRect(q)
						qs := time.Now()
						var qe, qd uint64
						buf, qe, qd = e.queryAppend(r, buf[:0])
						for _, id := range buf {
							st.pairs++
							st.hash = MixPair(st.hash, q, id)
						}
						st.lat.record(time.Since(qs))
						if prev, ok := st.seen[qe]; ok && prev != qd {
							st.bad++
						} else {
							st.seen[qe] = qd
						}
					}
				}
			})
		}
		g.Wait()
		err := <-updDone
		e.commitBatch()
		if err != nil {
			res.FailedTicks++
			co.failed.Inc()
			// Copy: moves may alias fetchBatch's reused buffer, which the
			// next tick overwrites.
			pending = append([]M(nil), moves...)
		} else {
			pending = nil
			ep, dg := e.epochNow()
			oracle[ep] = dg
		}
		res.Queries += int64(len(queriers))
		res.Updates += int64(len(batch))
		co.ticks.Inc()
		co.queries.Add(int64(len(queriers)))
		co.updates.Add(int64(len(batch)))
		co.reg.Exit(ts)
	}
	res.Elapsed = time.Since(start)

	recs := make([]*latRecorder, 0, readers)
	for _, st := range states {
		res.Pairs += st.pairs
		res.Hash += st.hash
		res.Violations += st.bad
		for e, d := range st.seen {
			if want, ok := oracle[e]; !ok || want != d {
				res.Violations++
			}
		}
		recs = append(recs, &st.lat)
	}
	res.QueryP50, res.QueryP95, res.QueryP99 = latPercentiles(recs, latHist)
	co.violations.Set(res.Violations)
	res.Stats = e.stats()
	return res
}

// RunConcurrent executes the iterated spatial join of an epoch-published
// point index over src with queries and updates overlapped per tick.
// The index is built once from the initial snapshot (epoch 0) and then
// maintained incrementally — the service-mode regime the epoch wrapper
// exists for — rather than rebuilt per tick.
func RunConcurrent(x EpochIndex, src workload.Source, opts ConcurrentOptions) *ConcurrentResult {
	obs.Instrument(x, opts.Obs)
	cfg := src.Config()
	snap := make([]geom.Point, len(src.Objects()))
	refreshSnapshot(snap, src.Objects())
	x.Build(snap)

	var batch []workload.Update
	var moves []geom.Move
	e := &concurrentEngine[geom.Move]{
		name:      x.Name(),
		ticks:     cfg.Ticks,
		queriers:  src.Queriers,
		queryRect: src.QueryRect,
		fetchBatch: func() []geom.Move {
			batch = src.Updates()
			moves = moves[:0]
			for _, u := range batch {
				moves = append(moves, geom.Move{ID: u.ID, Old: snap[u.ID], New: u.Pos})
			}
			return moves
		},
		commitBatch: func() {
			src.ApplyUpdates(batch)
			for _, u := range batch {
				snap[u.ID] = u.Pos
			}
		},
		apply:       x.ApplyBatch,
		queryAppend: epochAppendOf(x, x.Query),
		epochNow:    x.Epoch,
		stats:       x.Stats,
	}
	return runConcurrent(e, opts)
}

// RunBoxesConcurrent is RunConcurrent for epoch-published box indexes.
func RunBoxesConcurrent(x EpochBoxIndex, src workload.BoxSource, opts ConcurrentOptions) *ConcurrentResult {
	obs.Instrument(x, opts.Obs)
	cfg := src.Config()
	snap := make([]geom.Rect, src.NumBoxes())
	src.RefreshRects(snap, 0, len(snap))
	x.Build(snap)

	var batch []workload.BoxUpdate
	var moves []geom.BoxMove
	e := &concurrentEngine[geom.BoxMove]{
		name:      x.Name(),
		ticks:     cfg.Ticks,
		queriers:  src.Queriers,
		queryRect: src.QueryRect,
		fetchBatch: func() []geom.BoxMove {
			batch = src.Updates()
			moves = moves[:0]
			for _, u := range batch {
				moves = append(moves, geom.BoxMove{ID: u.ID, Old: snap[u.ID], New: u.Rect})
			}
			return moves
		},
		commitBatch: func() {
			src.ApplyUpdates(batch)
			for _, u := range batch {
				snap[u.ID] = u.Rect
			}
		},
		apply:       x.ApplyBatch,
		queryAppend: epochAppendOf(x, x.Query),
		epochNow:    x.Epoch,
		stats:       x.Stats,
	}
	return runConcurrent(e, opts)
}
