package core_test

// Driver-level observability tests (ISSUE 10): instrumentation must be
// invisible in the result digest and visible in the registry.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/workload"
)

func obsTestConfig() workload.Config {
	cfg := workload.DefaultUniform()
	cfg.NumPoints = 1500
	cfg.Ticks = 4
	cfg.SpaceSize = 2000
	cfg.MaxSpeed = 40
	cfg.QuerySize = 150
	return cfg
}

// TestInstrumentedRunDigestIdentical is the digest-matrix half of the
// ISSUE 10 test satellite: the same workload driven with and without a
// registry attached must produce bit-identical (Pairs, Hash) across
// sequential and parallel drivers and across point and box engines.
func TestInstrumentedRunDigestIdentical(t *testing.T) {
	cfg := obsTestConfig()

	type runCase struct {
		name string
		run  func(o core.Options) *core.Result
	}
	cases := []runCase{
		{"point/seq", func(o core.Options) *core.Result {
			src, err := workload.NewGenerator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return core.Run(grid.MustNew(grid.CSR(), cfg.Bounds(), cfg.NumPoints), src, o)
		}},
		{"point/parallel", func(o core.Options) *core.Result {
			src, err := workload.NewGenerator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return core.RunParallel(grid.MustNew(grid.CSR(), cfg.Bounds(), cfg.NumPoints), src, o, 4)
		}},
		{"box/seq", func(o core.Options) *core.Result {
			bcfg := workload.DefaultUniformBoxes()
			bcfg.NumPoints = 1000
			bcfg.Ticks = 3
			src, err := workload.NewBoxGenerator(bcfg)
			if err != nil {
				t.Fatal(err)
			}
			return core.RunBoxes(grid.MustNewBoxGrid2L(16, bcfg.Bounds(), bcfg.NumPoints), src, o)
		}},
	}
	for _, tc := range cases {
		plain := tc.run(core.Options{})
		reg := obs.New()
		instr := tc.run(core.Options{Obs: reg})
		if plain.Pairs != instr.Pairs || plain.Hash != instr.Hash {
			t.Errorf("%s: instrumented run diverged: (%d, %#x) vs (%d, %#x)",
				tc.name, plain.Pairs, plain.Hash, instr.Pairs, instr.Hash)
		}
		snap := reg.Snapshot()
		for _, h := range []string{"core.tick.build_ns", "core.tick.query_ns", "core.tick.update_ns"} {
			hs, ok := snap.Histograms[h]
			if !ok || hs.Count != uint64(instr.Ticks) {
				t.Errorf("%s: histogram %s has count %d, want %d ticks", tc.name, h, hs.Count, instr.Ticks)
			}
		}
		if got := snap.Counters["core.queries"]; got != instr.Queries {
			t.Errorf("%s: core.queries counter = %d, want %d", tc.name, got, instr.Queries)
		}
		if got := snap.Counters["core.pairs"]; got != instr.Pairs {
			t.Errorf("%s: core.pairs counter = %d, want %d", tc.name, got, instr.Pairs)
		}
	}
}

// TestRunConcurrentInstrumented drives the epoch-published concurrent
// loop with a registry: the per-query latency histogram must account
// for every query, the epoch lifecycle series must match Stats(), and
// the contract (violations == 0) must hold while instrumented.
func TestRunConcurrentInstrumented(t *testing.T) {
	cfg := concurrentTestConfig()
	src, err := workload.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := newEpochGrid(cfg)
	reg := obs.New()
	res := core.RunConcurrent(x, src, core.ConcurrentOptions{Readers: 3, Obs: reg})
	if res.Violations != 0 || res.FailedTicks != 0 {
		t.Fatalf("instrumented run broke the contract: %+v", res)
	}
	snap := reg.Snapshot()
	if got := snap.Histograms["core.concurrent.query_ns"].Count; got != uint64(res.Queries) {
		t.Fatalf("query_ns histogram holds %d observations, want %d", got, res.Queries)
	}
	if got := snap.Histograms["core.concurrent.apply_ns"].Count; got != uint64(res.Ticks) {
		t.Fatalf("apply_ns histogram holds %d observations, want %d ticks", got, res.Ticks)
	}
	if got := snap.Counters["epoch.epochs_published"]; got != int64(res.Stats.Epochs) {
		t.Fatalf("epoch.epochs_published = %d, registry-backed Stats says %d", got, res.Stats.Epochs)
	}
	if got := snap.Gauges["core.concurrent.violations"]; got != 0 {
		t.Fatalf("violations gauge = %d, want 0", got)
	}
	if _, ok := snap.Histograms["epoch.validate_ns"]; !ok {
		t.Fatal("epoch.validate_ns span histogram missing from snapshot")
	}
}

// TestRunConcurrentBoundedLatencyPath forces the exact-sample cap down
// so the run overflows into the histogram percentile path end to end:
// the series must stay well-formed and the contract intact.
func TestRunConcurrentBoundedLatencyPath(t *testing.T) {
	restore := core.SetMaxExactLatSamples(16)
	defer restore()

	cfg := concurrentTestConfig()
	src, err := workload.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := newEpochGrid(cfg)
	res := core.RunConcurrent(x, src, core.ConcurrentOptions{Readers: 3})
	if res.Violations != 0 {
		t.Fatalf("%d violations on the histogram-percentile path", res.Violations)
	}
	if res.QueryP50 <= 0 || res.QueryP50 > res.QueryP95 || res.QueryP95 > res.QueryP99 {
		t.Fatalf("malformed latency series from histogram path: p50=%v p95=%v p99=%v",
			res.QueryP50, res.QueryP95, res.QueryP99)
	}
}
