package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// TestLatRecorderBoundedAgreement is the ISSUE 10 satellite contract at
// the driver level: once readers overflow the exact-sample cap, the
// percentiles come from the shared histogram, in bounded memory, and
// agree with the exact-sample interpolation within one bucket width.
func TestLatRecorderBoundedAgreement(t *testing.T) {
	old := maxExactLatSamples
	maxExactLatSamples = 64
	defer func() { maxExactLatSamples = old }()

	rng := xrand.New(7)
	hist := obs.NewHistogram()
	recs := []*latRecorder{{hist: hist}, {hist: hist}, {hist: hist}}
	var all []float64
	for i := 0; i < 30000; i++ {
		// Latency-shaped draws: tens of microseconds with a heavy tail.
		d := time.Duration(20000 * math.Exp(float64(rng.Float32()*3)))
		recs[i%len(recs)].record(d)
		all = append(all, float64(d))
	}

	var dropped int64
	for _, l := range recs {
		dropped += l.dropped
		if len(l.samples) > 64 {
			t.Fatalf("recorder retained %d exact samples past the cap", len(l.samples))
		}
	}
	if dropped == 0 {
		t.Fatal("test did not overflow the exact-sample cap")
	}

	p50, p95, p99 := latPercentiles(recs, hist)
	exact := stats.Percentiles(all, 0.50, 0.95, 0.99)
	for i, got := range []time.Duration{p50, p95, p99} {
		lo, hi := obs.BucketBounds(histBucketOf(int64(exact[i])))
		width := float64(hi - lo)
		if math.Abs(float64(got)-exact[i]) > width {
			t.Errorf("percentile %d: histogram %v vs exact %.0fns differs by more than one bucket width %.0f",
				i, got, exact[i], width)
		}
	}
}

// histBucketOf finds the bucket whose bounds contain v by scanning the
// exported geometry (the test must not reach into obs internals).
func histBucketOf(v int64) int {
	for i := 0; ; i++ {
		lo, hi := obs.BucketBounds(i)
		if v >= lo && (v < hi || hi == math.MaxInt64) {
			return i
		}
	}
}

// TestLatRecorderExactPathUnderCap pins the short-run behavior: below
// the cap nothing is dropped and the percentiles are the exact
// interpolated ones, bit for bit.
func TestLatRecorderExactPathUnderCap(t *testing.T) {
	hist := obs.NewHistogram()
	recs := []*latRecorder{{hist: hist}, {hist: hist}}
	var all []float64
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i * 1000)
		recs[i%2].record(d)
		all = append(all, float64(d))
	}
	p50, p95, p99 := latPercentiles(recs, hist)
	exact := stats.Percentiles(all, 0.50, 0.95, 0.99)
	if float64(p50) != exact[0] || float64(p95) != exact[1] || float64(p99) != exact[2] {
		t.Fatalf("exact path diverged: got (%v %v %v), want (%.0f %.0f %.0f)",
			p50, p95, p99, exact[0], exact[1], exact[2])
	}
}
