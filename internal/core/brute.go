package core

import "repro/internal/geom"

// BruteForce is the reference technique: no index at all, every query
// scans the whole snapshot. It is not part of the paper's lineup; it
// exists as the correctness oracle the real techniques are validated
// against, and as a floor for sanity-checking speedups.
type BruteForce struct {
	pts []geom.Point
}

// NewBruteForce returns the oracle technique.
func NewBruteForce() *BruteForce { return &BruteForce{} }

// Name implements Index.
func (b *BruteForce) Name() string { return "Brute Force" }

// Build implements Index by retaining the snapshot.
func (b *BruteForce) Build(pts []geom.Point) { b.pts = pts }

// Query implements Index with a full scan.
func (b *BruteForce) Query(r geom.Rect, emit func(id uint32)) {
	for i := range b.pts {
		if b.pts[i].In(r) {
			emit(uint32(i))
		}
	}
}

// Update implements Index; the snapshot refresh covers it.
func (b *BruteForce) Update(id uint32, old, new geom.Point) {}

// Len implements Counter.
func (b *BruteForce) Len() int { return len(b.pts) }
