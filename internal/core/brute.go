package core

import "repro/internal/geom"

// BruteForce is the reference technique: no index at all, every query
// scans the whole snapshot. It is not part of the paper's lineup; it
// exists as the correctness oracle the real techniques are validated
// against, and as a floor for sanity-checking speedups.
type BruteForce struct {
	pts []geom.Point
}

// NewBruteForce returns the oracle technique.
func NewBruteForce() *BruteForce { return &BruteForce{} }

// Name implements Index.
func (b *BruteForce) Name() string { return "Brute Force" }

// Build implements Index by retaining the snapshot.
func (b *BruteForce) Build(pts []geom.Point) { b.pts = pts }

// Query implements Index with a full scan.
func (b *BruteForce) Query(r geom.Rect, emit func(id uint32)) {
	for i := range b.pts {
		if b.pts[i].In(r) {
			emit(uint32(i))
		}
	}
}

// QueryAppend implements QueryAppender with the same full scan, free of
// the per-result indirect call.
//
//joinlint:hotpath
func (b *BruteForce) QueryAppend(r geom.Rect, buf []uint32) []uint32 {
	for i := range b.pts {
		if b.pts[i].In(r) {
			buf = append(buf, uint32(i))
		}
	}
	return buf
}

// QueryBatch implements BatchQuerier (the scan has no per-query setup
// to amortize, so the batch kernel is the append kernel in a loop).
func (b *BruteForce) QueryBatch(rects []geom.Rect, offsets, buf []uint32) ([]uint32, []uint32) {
	return AppendBatch(b.QueryAppend, rects, offsets, buf)
}

// Update implements Index; the snapshot refresh covers it.
func (b *BruteForce) Update(id uint32, old, new geom.Point) {}

// Len implements Counter.
func (b *BruteForce) Len() int { return len(b.pts) }

// BruteForceBoxes is the box-join oracle: no index, every query scans
// every MBR with a nested-loop intersection test. Trivially
// duplicate-free, it is the reference all BoxIndex implementations are
// validated against.
type BruteForceBoxes struct {
	rects []geom.Rect
}

// NewBruteForceBoxes returns the box oracle technique.
func NewBruteForceBoxes() *BruteForceBoxes { return &BruteForceBoxes{} }

// Name implements BoxIndex.
func (b *BruteForceBoxes) Name() string { return "Brute Force Boxes" }

// Build implements BoxIndex by retaining the snapshot.
func (b *BruteForceBoxes) Build(rects []geom.Rect) { b.rects = rects }

// Query implements BoxIndex with a full nested-loop scan.
func (b *BruteForceBoxes) Query(r geom.Rect, emit func(id uint32)) {
	for i := range b.rects {
		if b.rects[i].Intersects(r) {
			emit(uint32(i))
		}
	}
}

// QueryAppend implements QueryAppender.
//
//joinlint:hotpath
func (b *BruteForceBoxes) QueryAppend(r geom.Rect, buf []uint32) []uint32 {
	for i := range b.rects {
		if b.rects[i].Intersects(r) {
			buf = append(buf, uint32(i))
		}
	}
	return buf
}

// QueryBatch implements BatchQuerier.
func (b *BruteForceBoxes) QueryBatch(rects []geom.Rect, offsets, buf []uint32) ([]uint32, []uint32) {
	return AppendBatch(b.QueryAppend, rects, offsets, buf)
}

// Update implements BoxIndex; the snapshot refresh covers it.
func (b *BruteForceBoxes) Update(id uint32, old, new geom.Rect) {}

// Len implements Counter.
func (b *BruteForceBoxes) Len() int { return len(b.rects) }
