package core

import (
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Options tunes a Run.
type Options struct {
	// Ticks caps the number of ticks executed; 0 means the workload's
	// configured tick count.
	Ticks int
	// KeepPerTick retains per-tick phase timings in the result (used by
	// convergence analyses; costs O(ticks) memory).
	KeepPerTick bool
	// CollectPairs, when non-nil, receives every join pair. Used by
	// correctness tests; leave nil in benchmarks (emission then only
	// counts and checksums). Forces the emit kernel.
	CollectPairs func(querier, found uint32)
	// Kernel selects the query kernel: the zero value (KernelAuto)
	// drains queries through the buffered QueryAppend path, KernelEmit
	// forces the classic per-result callback, KernelBatch the
	// multi-query path. The result digest is identical across kernels.
	Kernel QueryKernel
	// Obs, when non-nil, receives per-tick phase histograms and driver
	// counters, and is offered to the index under test (obs.Instrument)
	// before Build. Nil disables instrumentation at nil-check cost; the
	// result digest is identical either way.
	Obs *obs.Registry
}

// PhaseTimes is a build/query/update wall-time triple.
type PhaseTimes struct {
	Build, Query, Update time.Duration
}

// Total returns the sum of the three phases.
func (p PhaseTimes) Total() time.Duration { return p.Build + p.Query + p.Update }

func (p *PhaseTimes) add(q PhaseTimes) {
	p.Build += q.Build
	p.Query += q.Query
	p.Update += q.Update
}

// Result aggregates a Run: totals, counts, and a result checksum that is
// independent of emission order, so two techniques agree on the join
// result iff (Pairs, Hash) match.
type Result struct {
	Technique string
	Ticks     int
	Totals    PhaseTimes
	PerTick   []PhaseTimes

	Pairs   int64 // join result cardinality over all ticks
	Hash    uint64
	Queries int64 // number of range queries issued
	Updates int64 // number of updates applied
}

// AvgTick returns the average wall time per tick (all phases), the
// paper's headline metric ("Avg. Time per Tick").
func (r *Result) AvgTick() time.Duration {
	if r.Ticks == 0 {
		return 0
	}
	return r.Totals.Total() / time.Duration(r.Ticks)
}

// AvgBuild returns average build time per tick.
func (r *Result) AvgBuild() time.Duration { return r.avg(r.Totals.Build) }

// AvgQuery returns average query time per tick.
func (r *Result) AvgQuery() time.Duration { return r.avg(r.Totals.Query) }

// AvgUpdate returns average update time per tick.
func (r *Result) AvgUpdate() time.Duration { return r.avg(r.Totals.Update) }

func (r *Result) avg(d time.Duration) time.Duration {
	if r.Ticks == 0 {
		return 0
	}
	return d / time.Duration(r.Ticks)
}

// String summarizes the result on one line.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %d ticks, avg %.4fs/tick (build %.4f query %.4f update %.4f), %d pairs",
		r.Technique, r.Ticks, r.AvgTick().Seconds(),
		r.AvgBuild().Seconds(), r.AvgQuery().Seconds(), r.AvgUpdate().Seconds(), r.Pairs)
}

// MixPair folds one (querier, found) pair into an order-independent
// checksum: each pair is hashed individually and combined by addition, a
// commutative monoid, so emission order cannot affect the digest.
// Exported so out-of-driver oracle checks (cmd/gridbench) share the
// exact digest construction rather than re-deriving it.
func MixPair(h uint64, querier, found uint32) uint64 {
	v := uint64(querier)<<32 | uint64(found)
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return h + v
}

// ParamsFor derives the factory parameters — space bounds, population,
// and workload hints — from a workload configuration. All the command-
// line tools construct their Params through it so adaptive factories
// see the same view of the workload everywhere.
func ParamsFor(cfg workload.Config) Params {
	return Params{
		Bounds:    cfg.Bounds(),
		NumPoints: cfg.NumPoints,
		Hints: WorkloadHints{
			QuerySize: cfg.QuerySize,
			Queriers:  cfg.Queriers,
			Updaters:  cfg.Updaters,
			Ticks:     cfg.Ticks,
		},
	}
}

// Run executes the iterated spatial join of idx over src and returns the
// timing breakdown and result digest.
//
// Per tick it performs exactly the framework's three phases:
//
//  1. build: refresh the position snapshot from the base table and call
//     idx.Build over it;
//  2. query: for every querier q, probe idx with the square query centred
//     on q and fold all reported IDs into the result;
//  3. update: fetch the tick's update batch, notify the index of each
//     move, and apply the batch to the base table at the very end, so
//     queries only ever saw the previous tick's state.
func Run(idx Index, src workload.Source, opts Options) *Result {
	obs.Instrument(idx, opts.Obs)
	return runTicks(pointEngine(idx, src), opts)
}

// pointEngine binds a point index and a point workload into the generic
// tick engine.
func pointEngine(idx Index, src workload.Source) *engine[geom.Point] {
	cfg := src.Config()
	e := &engine[geom.Point]{
		name:   idx.Name(),
		ticks:  cfg.Ticks,
		n:      len(src.Objects()),
		bounds: cfg.Bounds(),
		refresh: func(dst []geom.Point, lo, hi int) {
			refreshSnapshot(dst[lo:hi], src.Objects()[lo:hi])
		},
		build:       idx.Build,
		query:       idx.Query,
		queryAppend: QueryAppendOf(idx, idx.Query),
		queryBatch:  QueryBatchOf(idx, idx.Query),
		queriers:    src.Queriers,
		queryRect:   src.QueryRect,
		center:      func(p geom.Point) geom.Point { return p },
	}
	if builder, ok := idx.(ParallelBuilder); ok {
		e.buildParallel = builder.BuildParallel
	}
	batcher, _ := idx.(BatchUpdater)
	var moves []geom.Move
	e.updatePhase = func(snap []geom.Point, workers int) int {
		batch := src.Updates()
		if workers > 1 && batcher != nil && batcher.CanBatchUpdates(len(batch)) {
			moves = moves[:0]
			for _, u := range batch {
				moves = append(moves, geom.Move{ID: u.ID, Old: snap[u.ID], New: u.Pos})
			}
			batcher.UpdateBatch(moves, workers)
		} else {
			for _, u := range batch {
				idx.Update(u.ID, snap[u.ID], u.Pos)
			}
		}
		src.ApplyUpdates(batch)
		return len(batch)
	}
	return e
}

func refreshSnapshot(dst []geom.Point, objs []workload.Object) {
	for i := range objs {
		dst[i] = objs[i].Pos
	}
}
