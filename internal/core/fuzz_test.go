package core

import (
	"testing"

	"repro/internal/workload"
)

// FuzzTechniquesAgree drives the whole lineup with fuzzer-chosen
// workload parameters and fails if any technique's join digest diverges
// from the brute-force oracle. Run as a plain test it covers the seed
// corpus; `go test -fuzz=FuzzTechniquesAgree ./internal/core` explores
// further.
func FuzzTechniquesAgree(f *testing.F) {
	f.Add(uint64(1), uint16(300), uint8(128), uint8(128), uint8(0))
	f.Add(uint64(7), uint16(50), uint8(255), uint8(10), uint8(1))
	f.Add(uint64(42), uint16(900), uint8(1), uint8(200), uint8(1))
	f.Add(uint64(99), uint16(2), uint8(50), uint8(50), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, nPoints uint16, qFrac, uFrac, kindByte uint8) {
		if nPoints == 0 {
			return
		}
		cfg := workload.Config{
			Kind:      workload.Uniform,
			Seed:      seed,
			Ticks:     3,
			NumPoints: int(nPoints),
			SpaceSize: 2000,
			MaxSpeed:  50,
			QuerySize: 150,
			Queriers:  float64(qFrac) / 255,
			Updaters:  float64(uFrac) / 255,
		}
		if kindByte%2 == 1 {
			cfg.Kind = workload.Gaussian
			cfg.Hotspots = 1 + int(seed%5)
		}
		trace, err := workload.Record(cfg)
		if err != nil {
			t.Fatalf("config rejected: %v (%+v)", err, cfg)
		}
		var refPairs int64
		var refHash uint64
		for i, idx := range lineup(cfg) {
			res := Run(idx, workload.NewPlayer(trace), Options{})
			if i == 0 {
				refPairs, refHash = res.Pairs, res.Hash
				continue
			}
			if res.Pairs != refPairs || res.Hash != refHash {
				t.Fatalf("%s digest (%d, %#x) != oracle (%d, %#x) on seed=%d n=%d q=%d u=%d kind=%d",
					idx.Name(), res.Pairs, res.Hash, refPairs, refHash,
					seed, nPoints, qFrac, uFrac, kindByte)
			}
		}
	})
}
