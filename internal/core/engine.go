package core

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/parutil"
	"repro/internal/sortutil"
)

// This file holds the tick engine: the framework's three-phase loop,
// generic over the object class P — geom.Point for the paper's point
// workloads, geom.Rect for the MBR workloads of the non-point extension.
// Run/RunParallel and RunBoxes/RunBoxesParallel are thin adapters that
// bind an (index, source) pair into an engine; the phase structure,
// timing, digesting, and the parallel schedule live here exactly once.

// mortonBits is the per-axis resolution of the querier scheduling codes.
// 16 bits is far finer than any grid the study uses, so queriers that
// sort together share cells at every granularity.
const mortonBits = 16

// queryBlock is the unit of the work-stealing querier schedule: workers
// claim contiguous blocks of the Morton-sorted querier order, so each
// block's queries touch neighbouring cells while the atomic cursor keeps
// the load balanced under spatial skew.
const queryBlock = 64

// parallelRefreshMin gates the parallel snapshot refresh; below this the
// copy is memory-bandwidth-trivial and goroutine fork/join dominates.
const parallelRefreshMin = 1 << 14

// padded keeps each worker's accumulator on its own cache line. Workers
// accumulate into locals and write here once per tick, but without the
// padding those final writes (and the main goroutine's reads) still
// false-share 16-byte neighbours.
type padded struct {
	pairs int64
	hash  uint64
	_     [48]byte
}

// engine adapts one object class to the tick loop. Every hook is
// mandatory except buildParallel (nil when the index has no sharded
// build).
type engine[P any] struct {
	name   string
	ticks  int       // the workload's configured tick count
	n      int       // number of objects (snapshot length)
	bounds geom.Rect // data space, for the Morton querier schedule

	// refresh copies the current base-table geometry of objects
	// [lo, hi) into dst[lo:hi]; the parallel driver calls it per shard.
	refresh func(dst []P, lo, hi int)
	// build / buildParallel (re)construct the index over the snapshot.
	build         func(snap []P)
	buildParallel func(snap []P, workers int)
	// query probes the index once via the callback kernel; queryAppend
	// and queryBatch are the buffered kernels (bound through
	// QueryAppendOf/QueryBatchOf, so they are never nil — native when
	// the index implements the capability, adapted otherwise).
	query       func(r geom.Rect, emit func(id uint32))
	queryAppend func(r geom.Rect, buf []uint32) []uint32
	queryBatch  func(rects []geom.Rect, offsets, buf []uint32) ([]uint32, []uint32)
	// queriers / queryRect expose the tick's query stream.
	queriers  func() []uint32
	queryRect func(q uint32) geom.Rect
	// center maps an object's geometry to the point its queries are
	// scheduled by (identity for points, MBR centre for boxes).
	center func(p P) geom.Point
	// updatePhase runs the whole update phase: fetch the tick's batch,
	// notify the index of every move (batched across workers when the
	// index supports it and workers > 1), and apply the batch to the
	// base table. Returns the number of updates.
	updatePhase func(snap []P, workers int) int
}

// clampTicks resolves the Options tick cap against the workload's count.
func (e *engine[P]) clampTicks(opts Options) int {
	ticks := opts.Ticks
	if ticks <= 0 || ticks > e.ticks {
		ticks = e.ticks
	}
	return ticks
}

// runTicks is the sequential driver: per tick one build, one probe per
// querier, one update phase, timed separately (the framework of Sowell et
// al. that the paper's experiments run inside).
func runTicks[P any](e *engine[P], opts Options) *Result {
	ticks := e.clampTicks(opts)
	res := &Result{Technique: e.name, Ticks: ticks}
	if opts.KeepPerTick {
		res.PerTick = make([]PhaseTimes, 0, ticks)
	}
	to := newTickObs(opts.Obs)

	snapshot := make([]P, e.n)

	pairs := int64(0)
	hash := uint64(0)
	kernel := opts.Kernel
	if opts.CollectPairs != nil {
		// Pair collection observes individual emissions in order; it
		// stays on the callback route regardless of the requested kernel.
		kernel = KernelEmit
	}
	var emitQ uint32
	emit := func(id uint32) {
		pairs++
		hash = MixPair(hash, emitQ, id)
	}
	if opts.CollectPairs != nil {
		collect := opts.CollectPairs
		emit = func(id uint32) {
			pairs++
			hash = MixPair(hash, emitQ, id)
			collect(emitQ, id)
		}
	}
	var buf, offsets []uint32
	var rects []geom.Rect

	for t := 0; t < ticks; t++ {
		var pt PhaseTimes

		start := time.Now()
		e.refresh(snapshot, 0, len(snapshot))
		e.build(snapshot)
		pt.Build = time.Since(start)

		start = time.Now()
		queriers := e.queriers()
		switch kernel {
		case KernelEmit:
			for _, q := range queriers {
				emitQ = q
				e.query(e.queryRect(q), emit)
			}
		case KernelBatch:
			rects = rects[:0]
			for _, q := range queriers {
				rects = append(rects, e.queryRect(q))
			}
			offsets, buf = e.queryBatch(rects, offsets, buf)
			for i, q := range queriers {
				for _, id := range buf[offsets[i]:offsets[i+1]] {
					pairs++
					hash = MixPair(hash, q, id)
				}
			}
		default: // KernelAuto, KernelAppend: the buffered drain
			for _, q := range queriers {
				buf = e.queryAppend(e.queryRect(q), buf[:0])
				for _, id := range buf {
					pairs++
					hash = MixPair(hash, q, id)
				}
			}
		}
		pt.Query = time.Since(start)
		res.Queries += int64(len(queriers))

		start = time.Now()
		updates := int64(e.updatePhase(snapshot, 1))
		res.Updates += updates
		pt.Update = time.Since(start)

		to.tick(pt, int64(len(queriers)), updates)
		res.Totals.add(pt)
		if opts.KeepPerTick {
			res.PerTick = append(res.PerTick, pt)
		}
	}
	res.Pairs = pairs
	res.Hash = hash
	to.pairs.Add(pairs)
	return res
}

// runTicksParallel fans every phase of the tick out over worker
// goroutines. This is an extension beyond the paper, whose study is
// single-threaded.
//
//   - build: the snapshot refresh is copied in parallel shards, and
//     indexes with a parallel build hook (the CSR grids) build by sharded
//     counting sort; others build sequentially as in runTicks.
//   - query: the static index is immutable between build and the first
//     update, so queriers partition trivially. Queriers are sorted by the
//     Morton code of their scheduling position and workers claim
//     contiguous blocks of that order through an atomic cursor: each
//     worker sweeps the grid in cache-friendly Z-order while skew cannot
//     idle anyone.
//   - update: the update phase receives the worker count and batches
//     across workers when the index supports it.
//
// The order-independent result digest makes the outcome comparable with
// sequential runs bit for bit.
func runTicksParallel[P any](e *engine[P], opts Options, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return runTicks(e, opts)
	}
	if opts.CollectPairs != nil {
		// Pair collection is inherently ordered; fall back to the
		// sequential driver rather than interleave callbacks.
		return runTicks(e, opts)
	}
	ticks := e.clampTicks(opts)
	res := &Result{Technique: e.name, Ticks: ticks}
	if opts.KeepPerTick {
		res.PerTick = make([]PhaseTimes, 0, ticks)
	}
	to := newTickObs(opts.Obs)
	snapshot := make([]P, e.n)

	quant := geom.NewQuantizer(e.bounds, mortonBits)
	// At 16 bits per axis a Morton code fits in 32 bits, so the cheaper
	// 4-pass radix sort applies.
	codes := make([]uint32, e.n)
	order := make([]uint32, 0, e.n)
	scratch := make([]uint32, e.n)

	parts := make([]padded, workers)

	for t := 0; t < ticks; t++ {
		var pt PhaseTimes

		start := time.Now()
		parallelRefresh(e, snapshot, workers)
		if e.buildParallel != nil {
			e.buildParallel(snapshot, workers)
		} else {
			e.build(snapshot)
		}
		pt.Build = time.Since(start)

		start = time.Now()
		queriers := e.queriers()
		order = append(order[:0], queriers...)
		for _, q := range queriers {
			codes[q] = uint32(quant.Code(e.center(snapshot[q])))
		}
		sortutil.ByKey32(order, codes, scratch)

		var cursor atomic.Int64
		var g parutil.Group
		for w := 0; w < workers; w++ {
			w := w
			g.Go(func() {
				var pairs int64
				var hash uint64
				// Per-worker result buffers: each claimed block drains
				// through the buffered kernel with no shared state, and
				// the buffers reach steady-state capacity within a tick.
				var buf, offsets []uint32
				var rects []geom.Rect
				for {
					lo := int(cursor.Add(queryBlock)) - queryBlock
					if lo >= len(order) {
						break
					}
					hi := lo + queryBlock
					if hi > len(order) {
						hi = len(order)
					}
					block := order[lo:hi]
					switch opts.Kernel {
					case KernelEmit:
						for _, q := range block {
							r := e.queryRect(q)
							e.query(r, func(id uint32) {
								pairs++
								hash = MixPair(hash, q, id)
							})
						}
					case KernelBatch:
						// A claimed block is a contiguous run of the
						// Morton order — exactly the batch shape the
						// kernel wants.
						rects = rects[:0]
						for _, q := range block {
							rects = append(rects, e.queryRect(q))
						}
						offsets, buf = e.queryBatch(rects, offsets, buf)
						for i, q := range block {
							for _, id := range buf[offsets[i]:offsets[i+1]] {
								pairs++
								hash = MixPair(hash, q, id)
							}
						}
					default: // KernelAuto, KernelAppend
						for _, q := range block {
							buf = e.queryAppend(e.queryRect(q), buf[:0])
							for _, id := range buf {
								pairs++
								hash = MixPair(hash, q, id)
							}
						}
					}
				}
				parts[w].pairs = pairs
				parts[w].hash = hash
			})
		}
		g.Wait()
		pt.Query = time.Since(start)
		res.Queries += int64(len(queriers))
		for w := range parts {
			res.Pairs += parts[w].pairs
			res.Hash += parts[w].hash
		}

		start = time.Now()
		updates := int64(e.updatePhase(snapshot, workers))
		res.Updates += updates
		pt.Update = time.Since(start)

		to.tick(pt, int64(len(queriers)), updates)
		res.Totals.add(pt)
		if opts.KeepPerTick {
			res.PerTick = append(res.PerTick, pt)
		}
	}
	to.pairs.Add(res.Pairs)
	return res
}

// parallelRefresh is the snapshot refresh fanned out over contiguous
// shards.
func parallelRefresh[P any](e *engine[P], dst []P, workers int) {
	if len(dst) < parallelRefreshMin || workers <= 1 {
		e.refresh(dst, 0, len(dst))
		return
	}
	parutil.ForEachShard(len(dst), workers, func(_, lo, hi int) {
		e.refresh(dst, lo, hi)
	})
}
