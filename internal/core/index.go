// Package core implements the iterated spatial join framework of Sowell et
// al. (PVLDB 2013) that the paper's experiments run inside: discrete
// ticks, each with a build phase, a query phase, and an update phase,
// timed separately.
//
// The techniques under study belong to the framework's "static index
// nested loop join" category: a static index over the current positions is
// built at the start of every tick, the join is computed by probing that
// index once per querier, and updates are batched and applied at the end
// of the tick so all queries observe the state as of the previous tick.
//
// Queries run through one of three kernels (querykernel.go): the classic
// per-result callback (Index.Query), the buffered append
// (QueryAppender.QueryAppend, zero allocations per query at steady
// state), and the CSR-shaped batch (BatchQuerier.QueryBatch). The
// buffered kernels are optional capabilities detected via QueryAppendOf
// / QueryBatchOf, so wrappers (epoch, shard, tune) forward them and
// out-of-tree indexes fall back to a callback adapter; Options.Kernel
// selects the kernel a driver run uses. All kernels must report
// identical result sets — only speed may differ.
package core

import "repro/internal/geom"

// Index is the contract every spatial join technique implements.
//
// The framework follows the secondary-index assumption of the original
// study: indexes store object IDs (or pointers to ID-holding entries) and
// read coordinates from the base snapshot passed to Build; they never own
// or update the base data.
type Index interface {
	// Name identifies the technique in reports.
	Name() string

	// Build (re)constructs the index over the snapshot pts, where object
	// i is at pts[i]. The slice remains valid and unchanged until the next
	// Build call, so implementations may retain it.
	Build(pts []geom.Point)

	// Query reports the ID of every object whose position lies in r, in
	// unspecified order, by calling emit once per match.
	Query(r geom.Rect, emit func(id uint32))

	// Update informs the index that object id moved from old to new
	// during the update phase. Techniques that are rebuilt from the
	// snapshot every tick may simply buffer or ignore this; in-place
	// structures (the grids) relocate the entry. Coordinates visible
	// through the snapshot are refreshed by the driver before the next
	// Build.
	Update(id uint32, old, new geom.Point)
}

// ParallelBuilder is an optional interface for indexes whose Build can
// shard the snapshot across worker goroutines. RunParallel uses it when
// present; the result must be indistinguishable from Build(pts) to every
// subsequent Query/Update call. workers <= 0 selects GOMAXPROCS.
type ParallelBuilder interface {
	BuildParallel(pts []geom.Point, workers int)
}

// BatchUpdater is an optional interface for indexes that can apply a whole
// tick's update batch at once — typically by partitioning the moves by
// target cell and fanning them out over workers. The batch contains at
// most one move per object ID. The result must be indistinguishable from
// calling Update(m.ID, m.Old, m.New) for each move in order.
type BatchUpdater interface {
	UpdateBatch(moves []geom.Move, workers int)
	// CanBatchUpdates reports whether UpdateBatch would take a path
	// that actually differs from per-move Update calls for a batch of n
	// moves; drivers skip batch assembly when it returns false.
	CanBatchUpdates(n int) bool
}

// BoxIndex is the contract spatial join techniques over extended objects
// (rectangles/MBRs) implement. It mirrors Index with the object geometry
// widened from a point to an axis-aligned rectangle: the snapshot is one
// MBR per object, and a range query reports every object whose MBR
// intersects the query rectangle.
//
// The same secondary-index assumption applies: implementations store
// object IDs and read extents from the snapshot passed to Build.
type BoxIndex interface {
	// Name identifies the technique in reports.
	Name() string

	// Build (re)constructs the index over the snapshot rects, where
	// object i has MBR rects[i]. The slice remains valid and unchanged
	// until the next Build call, so implementations may retain it.
	Build(rects []geom.Rect)

	// Query reports the ID of every object whose MBR intersects r
	// (closed rectangles, so touching edges match), in unspecified
	// order, by calling emit EXACTLY ONCE per matching object.
	// Duplicate-free emission is part of the contract: techniques that
	// replicate objects across partitions must deduplicate internally
	// (e.g. by the reference-point method) rather than leave it to the
	// caller.
	Query(r geom.Rect, emit func(id uint32))

	// Update informs the index that object id's MBR moved from old to
	// new during the update phase.
	Update(id uint32, old, new geom.Rect)
}

// BoxParallelBuilder is ParallelBuilder for box indexes: an optional
// sharded Build whose result must be indistinguishable from Build(rects)
// to every subsequent Query/Update call. workers <= 0 selects GOMAXPROCS.
type BoxParallelBuilder interface {
	BuildParallel(rects []geom.Rect, workers int)
}

// BoxBatchUpdater is BatchUpdater for box indexes: an optional bulk path
// applying a whole tick's MBR moves at once. The batch contains at most
// one move per object ID and the result must be indistinguishable from
// calling Update(m.ID, m.Old, m.New) for each move in order.
type BoxBatchUpdater interface {
	UpdateBatch(moves []geom.BoxMove, workers int)
	// CanBatchUpdates reports whether UpdateBatch would take a path that
	// actually differs from per-move Update calls for a batch of n
	// moves; drivers skip batch assembly when it returns false.
	CanBatchUpdates(n int) bool
}

// Counter is an optional interface for indexes that can report their
// cardinality, used by invariant checks in tests.
type Counter interface {
	// Len returns the number of entries currently indexed.
	Len() int
}

// MemoryReporter is an optional interface for indexes that can estimate
// their memory footprint in bytes. The paper's Section 3.1 derives
// per-point footprints analytically; this hook lets benches confirm them.
type MemoryReporter interface {
	// MemoryBytes estimates the index-owned heap footprint.
	MemoryBytes() int64
}

// InvariantChecker is an optional interface for indexes that can audit
// their own structural invariants (CSR offset monotonicity, class
// sub-span partitioning, slack/overflow accounting, STR packing, ...).
// The epoch publisher calls it before publishing a shadow buffer, and the
// fault-injection harness calls it after every injected fault to prove
// containment. A nil return means the structure is internally consistent;
// the error describes the first violation found. Implementations may be
// O(n) — callers treat this as a validation pass, not a fast path.
type InvariantChecker interface {
	CheckInvariants() error
}

// WorkloadHints describes the observable per-tick workload mix, for
// factories that tune or select an index from it (the `auto` technique
// in internal/tune). All fields are hints: zero values mean "unknown"
// and consumers must fall back to sensible defaults. Static factories
// ignore them entirely.
type WorkloadHints struct {
	// QuerySize is the side length of the square range-query windows.
	QuerySize float32
	// Queriers and Updaters are the fractions of objects querying and
	// updating per tick.
	Queriers, Updaters float64
	// Ticks is how many ticks the index will live through (the build
	// cost is paid once per tick regardless, but a hint of 1 marks a
	// one-shot join where update costs never materialize).
	Ticks int
}

// Params carries the information factories need to size an index for a
// workload. Space bounds matter for the grids and the KD-trie; NumPoints
// lets implementations pre-size arenas (for box workloads it is the
// number of objects, i.e. MBRs).
type Params struct {
	Bounds    geom.Rect
	NumPoints int
	// Hints optionally describes the workload mix for adaptive
	// factories; the zero value means "unknown".
	Hints WorkloadHints
	// Shards requests a region-sharded engine's grid side (Shards x
	// Shards regions, internal/shard). 0 lets the selector's shard-count
	// ladder choose; 1 is a single region (unsharded behavior behind the
	// sharded API). Non-sharded factories ignore it.
	Shards int
}

// Factory constructs a fresh index instance for the given parameters.
type Factory func(p Params) Index

// BoxFactory constructs a fresh box index instance for the given
// parameters.
type BoxFactory func(p Params) BoxIndex
