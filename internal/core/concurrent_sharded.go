package core

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/parutil"
	"repro/internal/workload"
)

// This file holds the sharded variant of the concurrent tick driver:
// the engine under test is a composition of independently published
// per-region epochs (internal/shard), so a query observes one
// (epoch, digest) pair PER SHARD it touches and the consistency oracle
// is kept per shard. Forcing such an engine through the single-epoch
// driver would flag false violations — shards legitimately publish at
// different times, including ticks where only some shards had routed
// moves or one shard's publish failed while the rest advanced.

// ShardedEpochIndex is the region-sharded epoch-published point engine
// contract (implemented by shard.Concurrent). Queries are safe to call
// concurrently with ApplyBatch; ApplyBatch is single-writer.
type ShardedEpochIndex interface {
	Name() string
	// Build initializes every shard's wrapper over the snapshot and
	// publishes each shard's epoch 0.
	Build(pts []geom.Point)
	// ApplyBatch routes one tick of moves to the affected shards and
	// publishes them in parallel. A non-nil error means at least one
	// shard failed to publish; the others may have advanced, and the
	// caller merges the whole batch into the next tick (replay-safe).
	ApplyBatch(moves []geom.Move) error
	// Query fans out to the shards overlapping r, calling observe once
	// per touched shard with the (epoch, digest) pair that shard's probe
	// saw. The emitted id stream is duplicate-free across shards.
	Query(r geom.Rect, emit func(id uint32), observe func(shard int, epoch, digest uint64))
	// NumShards reports the shard count (valid after Build).
	NumShards() int
	// ShardEpoch returns shard i's live epoch number and digest.
	ShardEpoch(i int) (uint64, uint64)
	Stats() EpochStats
}

// ShardedEpochBoxIndex is ShardedEpochIndex over rectangles
// (implemented by shard.BoxConcurrent).
type ShardedEpochBoxIndex interface {
	Name() string
	Build(rects []geom.Rect)
	ApplyBatch(moves []geom.BoxMove) error
	Query(r geom.Rect, emit func(id uint32), observe func(shard int, epoch, digest uint64))
	NumShards() int
	ShardEpoch(i int) (uint64, uint64)
	Stats() EpochStats
}

// shardEpochKey identifies one shard's published epoch in the oracle
// and observation maps.
type shardEpochKey struct {
	shard int
	epoch uint64
}

// shardedConcurrentEngine adapts one object class to the sharded
// concurrent loop, mirroring concurrentEngine[M].
type shardedConcurrentEngine[M any] struct {
	name        string
	ticks       int
	queriers    func() []uint32
	queryRect   func(q uint32) geom.Rect
	fetchBatch  func() []M
	commitBatch func()
	apply       func(moves []M) error
	// queryAppend drains one query into the caller's reused buffer,
	// reporting each touched shard's (epoch, digest) through observe —
	// the buffered kernel every reader worker runs (native via
	// ShardedEpochQueryAppender, else the adapter built by
	// shardedEpochAppendOf).
	queryAppend func(r geom.Rect, buf []uint32, observe func(shard int, ep, dg uint64)) []uint32
	numShards   func() int
	shardEpoch  func(i int) (uint64, uint64)
	stats       func() EpochStats
}

// shardedEpochAppendOf returns the buffered fan-out kernel of a sharded
// epoch engine: the native QueryAppend when the engine implements
// ShardedEpochQueryAppender, else an adapter over the callback Query.
func shardedEpochAppendOf(x any, query func(r geom.Rect, emit func(id uint32), observe func(shard int, ep, dg uint64))) func(r geom.Rect, buf []uint32, observe func(shard int, ep, dg uint64)) []uint32 {
	if qa, ok := x.(ShardedEpochQueryAppender); ok {
		return qa.QueryAppend
	}
	return func(r geom.Rect, buf []uint32, observe func(shard int, ep, dg uint64)) []uint32 {
		query(r, func(id uint32) { buf = append(buf, id) }, observe)
		return buf
	}
}

// runConcurrentSharded is runConcurrent with per-shard consistency
// accounting. The oracle records EVERY shard's live (epoch, digest)
// after EVERY tick — including failed ones, because a tick where shard
// A published and shard B exhausted retries is a valid engine state:
// A's new epoch must be accepted, B's old epoch keeps serving.
func runConcurrentSharded[M any](e *shardedConcurrentEngine[M], opts ConcurrentOptions) *ConcurrentResult {
	readers := opts.Readers
	if readers <= 0 {
		readers = runtime.GOMAXPROCS(0) - 1
	}
	if readers < 1 {
		readers = 1
	}
	ticks := e.ticks
	if opts.Ticks > 0 && opts.Ticks < ticks {
		ticks = opts.Ticks
	}
	res := &ConcurrentResult{Technique: e.name, Ticks: ticks, Readers: readers}
	co := newConcObs(opts.Obs)
	latHist := co.latHist()

	type readerState struct {
		lat   latRecorder
		seen  map[shardEpochKey]uint64
		pairs int64
		hash  uint64
		bad   int64
	}
	states := make([]*readerState, readers)
	for w := range states {
		states[w] = &readerState{
			lat:  latRecorder{hist: latHist},
			seen: make(map[shardEpochKey]uint64, ticks+1),
		}
	}

	oracle := make(map[shardEpochKey]uint64, ticks+1)
	recordOracle := func() {
		for i := 0; i < e.numShards(); i++ {
			ep, dg := e.shardEpoch(i)
			oracle[shardEpochKey{i, ep}] = dg
		}
	}
	recordOracle()

	var pending []M
	start := time.Now()
	for t := 0; t < ticks; t++ {
		ts := co.reg.Enter(co.tick)
		queriers := e.queriers()
		batch := e.fetchBatch()
		moves := batch
		if len(pending) > 0 {
			moves = append(pending, batch...)
		}

		// parutil.GoErr contains an updater panic as a failed tick (the
		// readers must drain and the loop must carry the batch) instead of
		// letting a raw goroutine kill the process.
		mv := moves
		updDone := parutil.GoErr(func() error {
			sp := co.reg.Enter(co.apply)
			err := e.apply(mv)
			co.reg.Exit(sp)
			return err
		})

		var cursor atomic.Int64
		var g parutil.Group
		for w := 0; w < readers; w++ {
			st := states[w]
			g.Go(func() {
				// Per-worker reused result buffer: the hot path allocates
				// nothing at steady state.
				var buf []uint32
				observe := func(shard int, ep, dg uint64) {
					k := shardEpochKey{shard, ep}
					if prev, ok := st.seen[k]; ok && prev != dg {
						st.bad++
					} else {
						st.seen[k] = dg
					}
				}
				for {
					lo := int(cursor.Add(queryBlock)) - queryBlock
					if lo >= len(queriers) {
						break
					}
					hi := lo + queryBlock
					if hi > len(queriers) {
						hi = len(queriers)
					}
					for _, q := range queriers[lo:hi] {
						r := e.queryRect(q)
						qs := time.Now()
						buf = e.queryAppend(r, buf[:0], observe)
						for _, id := range buf {
							st.pairs++
							st.hash = MixPair(st.hash, q, id)
						}
						st.lat.record(time.Since(qs))
					}
				}
			})
		}
		g.Wait()
		err := <-updDone
		e.commitBatch()
		if err != nil {
			res.FailedTicks++
			co.failed.Inc()
			pending = append([]M(nil), moves...)
		} else {
			pending = nil
		}
		// Shards publish independently; some advanced even on a failed
		// tick, so the oracle snapshot happens unconditionally.
		recordOracle()
		res.Queries += int64(len(queriers))
		res.Updates += int64(len(batch))
		co.ticks.Inc()
		co.queries.Add(int64(len(queriers)))
		co.updates.Add(int64(len(batch)))
		co.reg.Exit(ts)
	}
	res.Elapsed = time.Since(start)

	recs := make([]*latRecorder, 0, readers)
	for _, st := range states {
		res.Pairs += st.pairs
		res.Hash += st.hash
		res.Violations += st.bad
		for k, d := range st.seen {
			if want, ok := oracle[k]; !ok || want != d {
				res.Violations++
			}
		}
		recs = append(recs, &st.lat)
	}
	res.QueryP50, res.QueryP95, res.QueryP99 = latPercentiles(recs, latHist)
	co.violations.Set(res.Violations)
	res.Stats = e.stats()
	return res
}

// RunConcurrentSharded executes the iterated spatial join of a
// region-sharded epoch-published point engine over src with queries and
// updates overlapped per tick, validating each query's per-shard
// (epoch, digest) observations against per-shard publish oracles.
func RunConcurrentSharded(x ShardedEpochIndex, src workload.Source, opts ConcurrentOptions) *ConcurrentResult {
	obs.Instrument(x, opts.Obs)
	cfg := src.Config()
	snap := make([]geom.Point, len(src.Objects()))
	refreshSnapshot(snap, src.Objects())
	x.Build(snap)

	var batch []workload.Update
	var moves []geom.Move
	e := &shardedConcurrentEngine[geom.Move]{
		name:      x.Name(),
		ticks:     cfg.Ticks,
		queriers:  src.Queriers,
		queryRect: src.QueryRect,
		fetchBatch: func() []geom.Move {
			batch = src.Updates()
			moves = moves[:0]
			for _, u := range batch {
				moves = append(moves, geom.Move{ID: u.ID, Old: snap[u.ID], New: u.Pos})
			}
			return moves
		},
		commitBatch: func() {
			src.ApplyUpdates(batch)
			for _, u := range batch {
				snap[u.ID] = u.Pos
			}
		},
		apply:       x.ApplyBatch,
		queryAppend: shardedEpochAppendOf(x, x.Query),
		numShards:   x.NumShards,
		shardEpoch:  x.ShardEpoch,
		stats:       x.Stats,
	}
	return runConcurrentSharded(e, opts)
}

// RunBoxesConcurrentSharded is RunConcurrentSharded for region-sharded
// epoch-published box engines.
func RunBoxesConcurrentSharded(x ShardedEpochBoxIndex, src workload.BoxSource, opts ConcurrentOptions) *ConcurrentResult {
	obs.Instrument(x, opts.Obs)
	cfg := src.Config()
	snap := make([]geom.Rect, src.NumBoxes())
	src.RefreshRects(snap, 0, len(snap))
	x.Build(snap)

	var batch []workload.BoxUpdate
	var moves []geom.BoxMove
	e := &shardedConcurrentEngine[geom.BoxMove]{
		name:      x.Name(),
		ticks:     cfg.Ticks,
		queriers:  src.Queriers,
		queryRect: src.QueryRect,
		fetchBatch: func() []geom.BoxMove {
			batch = src.Updates()
			moves = moves[:0]
			for _, u := range batch {
				moves = append(moves, geom.BoxMove{ID: u.ID, Old: snap[u.ID], New: u.Rect})
			}
			return moves
		},
		commitBatch: func() {
			src.ApplyUpdates(batch)
			for _, u := range batch {
				snap[u.ID] = u.Rect
			}
		},
		apply:       x.ApplyBatch,
		queryAppend: shardedEpochAppendOf(x, x.Query),
		numShards:   x.NumShards,
		shardEpoch:  x.ShardEpoch,
		stats:       x.Stats,
	}
	return runConcurrentSharded(e, opts)
}
