package core

import (
	"fmt"
	"testing"

	"repro/internal/grid"
	"repro/internal/rtree"
	"repro/internal/workload"
)

func testBoxConfig() workload.BoxConfig {
	cfg := workload.DefaultUniformBoxes()
	cfg.NumPoints = 700
	cfg.Ticks = 10
	cfg.SpaceSize = 2000
	cfg.MaxSpeed = 50
	cfg.QuerySize = 150
	cfg.MinSide = 5
	cfg.MaxSide = 240
	return cfg
}

// boxLineup instantiates every BoxIndex implementation for the given
// workload: the brute-force oracle, the CSR box grid and its two-layer
// class-partitioned variant at several granularities, and the STR box
// R-tree at several fanouts.
func boxLineup(cfg workload.BoxConfig) []BoxIndex {
	return []BoxIndex{
		NewBruteForceBoxes(),
		grid.MustNewBoxGrid(8, cfg.Bounds(), cfg.NumPoints),
		grid.MustNewBoxGrid(32, cfg.Bounds(), cfg.NumPoints),
		grid.MustNewBoxGrid2L(8, cfg.Bounds(), cfg.NumPoints),
		grid.MustNewBoxGrid2L(32, cfg.Bounds(), cfg.NumPoints),
		rtree.MustNewBoxTree(4),
		rtree.MustNewBoxTree(rtree.DefaultFanout),
	}
}

// TestBoxJoinDigestMatrix is the acceptance-criterion property test:
// every BoxIndex implementation, under the sequential and the parallel
// driver, across workload kinds and extent distributions, must produce
// the identical (pairs, digest) join result. The brute-force oracle is
// duplicate-free by construction, so digest equality also proves zero
// duplicate emissions from the replicating grid.
func TestBoxJoinDigestMatrix(t *testing.T) {
	configs := []workload.BoxConfig{
		testBoxConfig(),
		func() workload.BoxConfig {
			c := testBoxConfig()
			c.Config.Kind = workload.Gaussian
			c.Hotspots = 5
			c.Extent = workload.ExtentGaussian
			return c
		}(),
		func() workload.BoxConfig {
			c := testBoxConfig()
			c.Config.Kind = workload.Simulation
			c.Hotspots = 4
			return c
		}(),
	}
	for _, cfg := range configs {
		t.Run(fmt.Sprintf("%s-%s", cfg.Kind, cfg.Extent), func(t *testing.T) {
			// The reference result: brute force under the sequential
			// driver on a fresh (deterministic) generator.
			ref := RunBoxes(NewBruteForceBoxes(), workload.MustNewBoxGenerator(cfg), Options{})
			if ref.Pairs == 0 {
				t.Fatal("reference run found no pairs; workload too sparse to be meaningful")
			}
			for _, idx := range boxLineup(cfg) {
				res := RunBoxes(idx, workload.MustNewBoxGenerator(cfg), Options{})
				if res.Pairs != ref.Pairs || res.Hash != ref.Hash {
					t.Errorf("sequential %s: (%d, %#x), want (%d, %#x)",
						res.Technique, res.Pairs, res.Hash, ref.Pairs, ref.Hash)
				}
			}
			for _, workers := range []int{2, 4} {
				for _, idx := range boxLineup(cfg) {
					res := RunBoxesParallel(idx, workload.MustNewBoxGenerator(cfg), Options{}, workers)
					if res.Pairs != ref.Pairs || res.Hash != ref.Hash {
						t.Errorf("parallel(%d) %s: (%d, %#x), want (%d, %#x)",
							workers, res.Technique, res.Pairs, res.Hash, ref.Pairs, ref.Hash)
					}
				}
			}
		})
	}
}

// TestBoxJoinDuplicateFreeEmission drives the full tick loop with pair
// collection on and verifies no (querier, found) pair is reported twice
// within a tick — the end-to-end form of the grid's duplicate-emission
// regression test.
func TestBoxJoinDuplicateFreeEmission(t *testing.T) {
	cfg := testBoxConfig()
	// Large extents relative to the space so MBRs span many cells.
	cfg.MinSide = 200
	cfg.MaxSide = 900
	cfg.Ticks = 4
	type pair struct{ q, id uint32 }
	seen := make(map[pair]int)
	idx := grid.MustNewBoxGrid(16, cfg.Bounds(), cfg.NumPoints)
	res := RunBoxes(idx, workload.MustNewBoxGenerator(cfg), Options{
		CollectPairs: func(q, id uint32) {
			seen[pair{q, id}]++
		},
	})
	// Each tick queries a fresh map would need per-tick delimiting; the
	// workload issues each querier at most once per tick, so a pair can
	// legitimately repeat across ticks but at most cfg.Ticks times.
	for p, n := range seen {
		if n > cfg.Ticks {
			t.Fatalf("pair (%d, %d) reported %d times over %d ticks", p.q, p.id, n, cfg.Ticks)
		}
	}
	// Cross-check against the oracle digest: duplicates would shift it.
	ref := RunBoxes(NewBruteForceBoxes(), workload.MustNewBoxGenerator(cfg), Options{})
	if res.Pairs != ref.Pairs || res.Hash != ref.Hash {
		t.Fatalf("box grid digest (%d, %#x) disagrees with oracle (%d, %#x)",
			res.Pairs, res.Hash, ref.Pairs, ref.Hash)
	}
}

// TestBoxBatchUpdaterEngaged confirms the parallel driver actually takes
// the batched update path at realistic batch sizes (guarding against the
// gate silently disabling it).
func TestBoxBatchUpdaterEngaged(t *testing.T) {
	cfg := testBoxConfig()
	cfg.NumPoints = 6000
	bg := grid.MustNewBoxGrid(32, cfg.Bounds(), cfg.NumPoints)
	var batcher BoxBatchUpdater = bg
	if !batcher.CanBatchUpdates(cfg.NumPoints / 2) {
		t.Fatalf("CanBatchUpdates(%d) = false; parallel ticks would never batch", cfg.NumPoints/2)
	}
	ref := RunBoxes(NewBruteForceBoxes(), workload.MustNewBoxGenerator(cfg), Options{})
	res := RunBoxesParallel(bg, workload.MustNewBoxGenerator(cfg), Options{}, 4)
	if res.Pairs != ref.Pairs || res.Hash != ref.Hash {
		t.Fatalf("batched parallel run digest (%d, %#x) disagrees with oracle (%d, %#x)",
			res.Pairs, res.Hash, ref.Pairs, ref.Hash)
	}
}
