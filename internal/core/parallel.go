package core

import (
	"repro/internal/obs"
	"repro/internal/workload"
)

// RunParallel executes the iterated join like Run but fans every phase of
// the tick out over the given number of worker goroutines (0 selects
// GOMAXPROCS); see runTicksParallel for the schedule. Indexes
// implementing ParallelBuilder build by sharded counting sort, and
// BatchUpdater implementations apply each tick's update batch partitioned
// by target cell across workers.
func RunParallel(idx Index, src workload.Source, opts Options, workers int) *Result {
	obs.Instrument(idx, opts.Obs)
	return runTicksParallel(pointEngine(idx, src), opts, workers)
}
