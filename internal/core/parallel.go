package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/parutil"
	"repro/internal/sortutil"
	"repro/internal/workload"
)

// mortonBits is the per-axis resolution of the querier scheduling codes.
// 16 bits is far finer than any grid the study uses, so queriers that
// sort together share cells at every granularity.
const mortonBits = 16

// queryBlock is the unit of the work-stealing querier schedule: workers
// claim contiguous blocks of the Morton-sorted querier order, so each
// block's queries touch neighbouring cells while the atomic cursor keeps
// the load balanced under spatial skew.
const queryBlock = 64

// parallelRefreshMin gates the parallel snapshot refresh; below this the
// copy is memory-bandwidth-trivial and goroutine fork/join dominates.
const parallelRefreshMin = 1 << 14

// padded keeps each worker's accumulator on its own cache line. Workers
// accumulate into locals and write here once per tick, but without the
// padding those final writes (and the main goroutine's reads) still
// false-share 16-byte neighbours.
type padded struct {
	pairs int64
	hash  uint64
	_     [48]byte
}

// RunParallel executes the iterated join like Run but fans every phase of
// the tick out over the given number of worker goroutines (0 selects
// GOMAXPROCS). This is an extension beyond the paper, whose study is
// single-threaded.
//
//   - build: the snapshot refresh is copied in parallel shards, and
//     indexes implementing ParallelBuilder (the CSR grid) build by
//     sharded counting sort; others build sequentially as in Run.
//   - query: the static index is immutable between Build and the first
//     Update, so queriers partition trivially. Queriers are sorted by the
//     Morton code of their position and workers claim contiguous blocks
//     of that order through an atomic cursor: each worker sweeps the grid
//     in cache-friendly Z-order while skew cannot idle anyone.
//   - update: indexes implementing BatchUpdater (the CSR grid) apply the
//     whole batch partitioned by target cell across workers; others
//     update sequentially as in Run.
//
// The order-independent result digest makes the outcome comparable with
// sequential runs bit for bit.
func RunParallel(idx Index, src workload.Source, opts Options, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return Run(idx, src, opts)
	}
	if opts.CollectPairs != nil {
		// Pair collection is inherently ordered; fall back to the
		// sequential driver rather than interleave callbacks.
		return Run(idx, src, opts)
	}
	cfg := src.Config()
	ticks := opts.Ticks
	if ticks <= 0 || ticks > cfg.Ticks {
		ticks = cfg.Ticks
	}
	res := &Result{Technique: idx.Name(), Ticks: ticks}
	if opts.KeepPerTick {
		res.PerTick = make([]PhaseTimes, 0, ticks)
	}
	numObjects := len(src.Objects())
	snapshot := make([]geom.Point, numObjects)

	builder, _ := idx.(ParallelBuilder)
	batcher, _ := idx.(BatchUpdater)

	quant := geom.NewQuantizer(cfg.Bounds(), mortonBits)
	// At 16 bits per axis a Morton code fits in 32 bits, so the cheaper
	// 4-pass radix sort applies.
	codes := make([]uint32, numObjects)
	order := make([]uint32, 0, numObjects)
	scratch := make([]uint32, numObjects)
	var moves []geom.Move

	parts := make([]padded, workers)

	for t := 0; t < ticks; t++ {
		var pt PhaseTimes

		start := time.Now()
		parallelRefresh(snapshot, src.Objects(), workers)
		if builder != nil {
			builder.BuildParallel(snapshot, workers)
		} else {
			idx.Build(snapshot)
		}
		pt.Build = time.Since(start)

		start = time.Now()
		queriers := src.Queriers()
		order = append(order[:0], queriers...)
		for _, q := range queriers {
			codes[q] = uint32(quant.Code(snapshot[q]))
		}
		sortutil.ByKey32(order, codes, scratch)

		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var pairs int64
				var hash uint64
				for {
					lo := int(cursor.Add(queryBlock)) - queryBlock
					if lo >= len(order) {
						break
					}
					hi := lo + queryBlock
					if hi > len(order) {
						hi = len(order)
					}
					for _, q := range order[lo:hi] {
						r := src.QueryRect(q)
						idx.Query(r, func(id uint32) {
							pairs++
							hash = mixPair(hash, q, id)
						})
					}
				}
				parts[w].pairs = pairs
				parts[w].hash = hash
			}(w)
		}
		wg.Wait()
		pt.Query = time.Since(start)
		res.Queries += int64(len(queriers))
		for w := range parts {
			res.Pairs += parts[w].pairs
			res.Hash += parts[w].hash
		}

		start = time.Now()
		batch := src.Updates()
		if batcher != nil && batcher.CanBatchUpdates(len(batch)) {
			moves = moves[:0]
			for _, u := range batch {
				moves = append(moves, geom.Move{ID: u.ID, Old: snapshot[u.ID], New: u.Pos})
			}
			batcher.UpdateBatch(moves, workers)
		} else {
			for _, u := range batch {
				idx.Update(u.ID, snapshot[u.ID], u.Pos)
			}
		}
		src.ApplyUpdates(batch)
		pt.Update = time.Since(start)
		res.Updates += int64(len(batch))

		res.Totals.add(pt)
		if opts.KeepPerTick {
			res.PerTick = append(res.PerTick, pt)
		}
	}
	return res
}

// parallelRefresh is refreshSnapshot fanned out over contiguous shards.
func parallelRefresh(dst []geom.Point, objs []workload.Object, workers int) {
	if len(objs) < parallelRefreshMin || workers <= 1 {
		refreshSnapshot(dst, objs)
		return
	}
	parutil.ForEachShard(len(objs), workers, func(_, lo, hi int) {
		refreshSnapshot(dst[lo:hi], objs[lo:hi])
	})
}
