package core

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/workload"
)

// RunParallel executes the iterated join like Run but fans the query
// phase out over the given number of worker goroutines (0 selects
// GOMAXPROCS). This is an extension beyond the paper, whose study is
// single-threaded: the static index is immutable between Build and the
// first Update, so queriers partition trivially. Build and update phases
// stay sequential, exactly as in Run, and the order-independent result
// digest makes the outcome comparable with sequential runs bit for bit.
func RunParallel(idx Index, src workload.Source, opts Options, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return Run(idx, src, opts)
	}
	if opts.CollectPairs != nil {
		// Pair collection is inherently ordered; fall back to the
		// sequential driver rather than interleave callbacks.
		return Run(idx, src, opts)
	}
	cfg := src.Config()
	ticks := opts.Ticks
	if ticks <= 0 || ticks > cfg.Ticks {
		ticks = cfg.Ticks
	}
	res := &Result{Technique: idx.Name(), Ticks: ticks}
	if opts.KeepPerTick {
		res.PerTick = make([]PhaseTimes, 0, ticks)
	}
	snapshot := make([]geom.Point, len(src.Objects()))

	type partial struct {
		pairs int64
		hash  uint64
	}
	parts := make([]partial, workers)

	for t := 0; t < ticks; t++ {
		var pt PhaseTimes

		start := time.Now()
		refreshSnapshot(snapshot, src.Objects())
		idx.Build(snapshot)
		pt.Build = time.Since(start)

		start = time.Now()
		queriers := src.Queriers()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var local partial
				// Strided partitioning balances the spatial skew of
				// consecutive IDs across workers.
				for i := w; i < len(queriers); i += workers {
					q := queriers[i]
					r := src.QueryRect(q)
					idx.Query(r, func(id uint32) {
						local.pairs++
						local.hash = mixPair(local.hash, q, id)
					})
				}
				parts[w] = local
			}(w)
		}
		wg.Wait()
		pt.Query = time.Since(start)
		res.Queries += int64(len(queriers))
		for w := range parts {
			res.Pairs += parts[w].pairs
			res.Hash += parts[w].hash
		}

		start = time.Now()
		batch := src.Updates()
		for _, u := range batch {
			idx.Update(u.ID, snapshot[u.ID], u.Pos)
		}
		src.ApplyUpdates(batch)
		pt.Update = time.Since(start)
		res.Updates += int64(len(batch))

		res.Totals.add(pt)
		if opts.KeepPerTick {
			res.PerTick = append(res.PerTick, pt)
		}
	}
	return res
}
