package core

import (
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// This file binds the drivers to internal/obs: the per-tick phase
// spans of the stop-the-world loop, the per-query latency and
// apply-phase spans of the concurrent loop, and the bounded latency
// recorder that replaced the unbounded exact-sample retention (ISSUE 10
// satellite). All instruments come from Options.Obs and no-op when it
// is nil — see internal/obs/README.md for the hot-path contract and
// the instrument name table.

// tickObs is the stop-the-world drivers' instrument set. The zero
// value (nil registry) makes every record a nil-check.
type tickObs struct {
	build, query, update    *obs.Histogram
	ticks, queries, updates *obs.Counter
	pairs                   *obs.Counter
}

func newTickObs(r *obs.Registry) tickObs {
	return tickObs{
		build:   r.Histogram("core.tick.build_ns"),
		query:   r.Histogram("core.tick.query_ns"),
		update:  r.Histogram("core.tick.update_ns"),
		ticks:   r.Counter("core.ticks"),
		queries: r.Counter("core.queries"),
		updates: r.Counter("core.updates"),
		pairs:   r.Counter("core.pairs"),
	}
}

// tick folds one completed tick's phase times and counts in.
func (o *tickObs) tick(pt PhaseTimes, queries, updates int64) {
	o.build.Record(int64(pt.Build))
	o.query.Record(int64(pt.Query))
	o.update.Record(int64(pt.Update))
	o.ticks.Inc()
	o.queries.Add(queries)
	o.updates.Add(updates)
}

// concObs is the concurrent drivers' instrument set.
type concObs struct {
	reg         *obs.Registry
	tick, apply *obs.Histogram
	query       *obs.Histogram
	ticks       *obs.Counter
	queries     *obs.Counter
	updates     *obs.Counter
	failed      *obs.Counter
	violations  *obs.Gauge
}

func newConcObs(r *obs.Registry) concObs {
	return concObs{
		reg:        r,
		tick:       r.Histogram("core.concurrent.tick_ns"),
		apply:      r.Histogram("core.concurrent.apply_ns"),
		query:      r.Histogram("core.concurrent.query_ns"),
		ticks:      r.Counter("core.concurrent.ticks"),
		queries:    r.Counter("core.concurrent.queries"),
		updates:    r.Counter("core.concurrent.updates"),
		failed:     r.Counter("core.concurrent.failed_ticks"),
		violations: r.Gauge("core.concurrent.violations"),
	}
}

// latHist returns the per-query latency histogram the readers record
// into. It exists even with no registry attached: the histogram is what
// bounds latency memory on long runs, not an optional extra.
func (o *concObs) latHist() *obs.Histogram {
	if o.query != nil {
		return o.query
	}
	return obs.NewHistogram()
}

// maxExactLatSamples caps each reader's exact per-query latency
// samples. Short runs stay under it and report exact interpolated
// percentiles; past it the reader stops retaining samples (the shared
// obs histogram keeps every observation in constant memory) and the
// percentiles come from Histogram.Quantile, which agrees with the
// exact path within one bucket width. A var, not a const, so tests can
// force the histogram path with small workloads.
var maxExactLatSamples = 1 << 14

// latRecorder is one reader's latency collection: every observation
// feeds the shared histogram; the first maxExactLatSamples are also
// retained exactly.
type latRecorder struct {
	hist    *obs.Histogram
	samples []time.Duration
	dropped int64
}

// record is called on the reader hot loop.
func (l *latRecorder) record(d time.Duration) {
	l.hist.Record(int64(d))
	if len(l.samples) < maxExactLatSamples {
		l.samples = append(l.samples, d)
	} else {
		l.dropped++
	}
}

// latPercentiles merges the readers' recorders into p50/p95/p99: the
// exact interpolated percentiles when every sample was retained, the
// histogram estimate once any reader overflowed its cap.
func latPercentiles(recs []*latRecorder, hist *obs.Histogram) (p50, p95, p99 time.Duration) {
	var dropped int64
	total := 0
	for _, l := range recs {
		dropped += l.dropped
		total += len(l.samples)
	}
	if dropped > 0 {
		return time.Duration(hist.Quantile(0.50)),
			time.Duration(hist.Quantile(0.95)),
			time.Duration(hist.Quantile(0.99))
	}
	lat := make([]float64, 0, total)
	for _, l := range recs {
		for _, d := range l.samples {
			lat = append(lat, float64(d))
		}
	}
	qs := stats.Percentiles(lat, 0.50, 0.95, 0.99)
	return time.Duration(qs[0]), time.Duration(qs[1]), time.Duration(qs[2])
}
