package core_test

// External test package: the concurrent driver's contract is exercised
// through internal/epoch, which imports core — an in-package test would
// cycle.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/faultutil"
	"repro/internal/grid"
	"repro/internal/workload"
)

func concurrentTestConfig() workload.Config {
	cfg := workload.DefaultUniform()
	cfg.NumPoints = 800
	cfg.Ticks = 10
	cfg.SpaceSize = 2000
	cfg.MaxSpeed = 40
	cfg.QuerySize = 120
	return cfg
}

func newEpochGrid(cfg workload.Config) *epoch.Index {
	return epoch.NewIndex(func() core.Index {
		return grid.MustNew(grid.CSR(), cfg.Bounds(), cfg.NumPoints)
	}, epoch.Options{})
}

// TestRunConcurrentContract checks the service-mode driver's guarantees
// on a clean run: every tick publishes, no query observes an
// unpublished epoch, and the latency series is well-formed.
func TestRunConcurrentContract(t *testing.T) {
	cfg := concurrentTestConfig()
	src, err := workload.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := newEpochGrid(cfg)
	res := core.RunConcurrent(x, src, core.ConcurrentOptions{Readers: 3})

	if res.Violations != 0 {
		t.Fatalf("%d queries observed an unpublished epoch", res.Violations)
	}
	if res.FailedTicks != 0 {
		t.Fatalf("FailedTicks = %d on a clean run", res.FailedTicks)
	}
	if res.Ticks != cfg.Ticks {
		t.Fatalf("Ticks = %d, want %d", res.Ticks, cfg.Ticks)
	}
	if res.Stats.Epochs != uint64(cfg.Ticks) {
		t.Fatalf("published %d epochs, want %d", res.Stats.Epochs, cfg.Ticks)
	}
	if res.Stats.Degraded != 0 || res.Stats.PanicsContained != 0 {
		t.Fatalf("clean run degraded: %+v", res.Stats)
	}
	if res.Queries == 0 || res.Updates == 0 || res.Pairs == 0 {
		t.Fatalf("empty run: %+v", res)
	}
	if res.QueryP50 <= 0 || res.QueryP50 > res.QueryP95 || res.QueryP95 > res.QueryP99 {
		t.Fatalf("malformed latency series: p50=%v p95=%v p99=%v",
			res.QueryP50, res.QueryP95, res.QueryP99)
	}
	if res.Readers != 3 {
		t.Fatalf("Readers = %d, want 3", res.Readers)
	}
}

// TestRunConcurrentDegraded injects a panic into the first tick's apply:
// the driver must ride through the wrapper's in-tick recovery with no
// failed ticks and no contract violations.
func TestRunConcurrentDegraded(t *testing.T) {
	cfg := concurrentTestConfig()
	src, err := workload.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := epoch.NewIndex(func() core.Index {
		return grid.MustNew(grid.CSR(), cfg.Bounds(), cfg.NumPoints)
	}, epoch.Options{Injector: faultutil.MustNew(5, "apply:panic*1")})
	res := core.RunConcurrent(x, src, core.ConcurrentOptions{Readers: 2})

	if res.Violations != 0 {
		t.Fatalf("%d queries observed an unpublished epoch", res.Violations)
	}
	if res.FailedTicks != 0 {
		t.Fatalf("in-tick recovery should not fail the tick, got %d", res.FailedTicks)
	}
	if res.Stats.Degraded == 0 || res.Stats.PanicsContained == 0 {
		t.Fatalf("fault did not register: %+v", res.Stats)
	}
	if res.Stats.Epochs != uint64(cfg.Ticks) {
		t.Fatalf("published %d epochs, want %d", res.Stats.Epochs, cfg.Ticks)
	}
}

// TestRunConcurrentCarryOver exhausts the wrapper's retries on the first
// tick; the driver must carry the failed batch into the next tick, keep
// serving valid epochs throughout, and finish one epoch short.
func TestRunConcurrentCarryOver(t *testing.T) {
	cfg := concurrentTestConfig()
	src, err := workload.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := epoch.NewIndex(func() core.Index {
		return grid.MustNew(grid.CSR(), cfg.Bounds(), cfg.NumPoints)
	}, epoch.Options{
		Injector:   faultutil.MustNew(5, "apply:panic*1, build:panic*2"),
		MaxRetries: 1,
	})
	res := core.RunConcurrent(x, src, core.ConcurrentOptions{Readers: 2})

	if res.Violations != 0 {
		t.Fatalf("%d queries observed an unpublished epoch", res.Violations)
	}
	if res.FailedTicks == 0 {
		t.Fatal("expected at least one failed tick")
	}
	if got, want := res.Stats.Epochs+uint64(res.FailedTicks), uint64(cfg.Ticks); got != want {
		t.Fatalf("epochs(%d) + failed(%d) = %d, want %d ticks",
			res.Stats.Epochs, res.FailedTicks, got, want)
	}
	if res.Stats.PanicsContained == 0 {
		t.Fatalf("faults did not register: %+v", res.Stats)
	}
}

// TestRunBoxesConcurrentContract is the box-side clean-run gate.
func TestRunBoxesConcurrentContract(t *testing.T) {
	cfg := workload.DefaultUniformBoxes()
	cfg.NumPoints = 700
	cfg.Ticks = 8
	cfg.SpaceSize = 2000
	cfg.MaxSpeed = 50
	cfg.QuerySize = 150
	cfg.MinSide = 5
	cfg.MaxSide = 120
	src, err := workload.NewBoxGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := epoch.NewBoxIndex(func() core.BoxIndex {
		return grid.MustNewBoxGrid2L(16, cfg.Bounds(), cfg.NumPoints)
	}, epoch.Options{})
	res := core.RunBoxesConcurrent(x, src, core.ConcurrentOptions{Readers: 3})

	if res.Violations != 0 {
		t.Fatalf("%d queries observed an unpublished epoch", res.Violations)
	}
	if res.FailedTicks != 0 {
		t.Fatalf("FailedTicks = %d on a clean run", res.FailedTicks)
	}
	if res.Stats.Epochs != uint64(cfg.Ticks) {
		t.Fatalf("published %d epochs, want %d", res.Stats.Epochs, cfg.Ticks)
	}
	if res.Pairs == 0 || res.Queries == 0 {
		t.Fatalf("empty run: %+v", res)
	}
}
