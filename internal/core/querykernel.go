package core

import (
	"fmt"

	"repro/internal/geom"
)

// This file defines the buffered query capabilities: optional interfaces
// every index family implements natively so the hot query path appends
// result IDs into a caller-reused buffer instead of paying a
// non-inlinable indirect call per result (the emit closure of
// Index.Query / BoxIndex.Query). The capability-detection helpers below
// let drivers and wrappers bind the fastest kernel an index offers and
// fall back to a callback adapter otherwise, so layering (epoch, shard,
// tune) never silently changes results — only speed.

// QueryAppender is the buffered query capability, shared by point and
// box indexes (the geometry difference lives in Build/Update, not in
// result reporting).
type QueryAppender interface {
	// QueryAppend appends the ID of every match of r to buf and returns
	// the extended buffer, exactly as Query would have emitted them
	// (same set, unspecified order, duplicate-free for box indexes).
	// The result aliases buf's backing array when capacity suffices:
	// steady-state callers reuse one buffer across queries and see zero
	// allocations. buf may be nil.
	QueryAppend(r geom.Rect, buf []uint32) []uint32
}

// BatchQuerier is the multi-query capability: one call answers a whole
// batch of range queries into a single CSR-shaped result. Callers pass
// Morton-ordered batches (the drivers' query schedule already is), so
// consecutive queries touch neighbouring cells while they are
// cache-resident — the per-query kernel setup amortizes across the run
// instead of re-touching cold cells query-major.
type BatchQuerier interface {
	// QueryBatch answers rects[i] for every i, reusing offsets and buf
	// as scratch. It returns (offsets, buf) with len(offsets) ==
	// len(rects)+1 and the matches of rects[i] in
	// buf[offsets[i]:offsets[i+1]].
	QueryBatch(rects []geom.Rect, offsets []uint32, buf []uint32) ([]uint32, []uint32)
}

// QueryAppendOf returns the buffered query kernel of idx: the native
// QueryAppend when idx implements QueryAppender, else a fallback
// adapter over the given callback query. The adapter is correct but
// slow (it pays the indirect call per result and a closure allocation
// per query); every in-tree family implements the capability natively,
// so the fallback only covers out-of-tree indexes.
func QueryAppendOf(idx any, query func(r geom.Rect, emit func(id uint32))) func(r geom.Rect, buf []uint32) []uint32 {
	if qa, ok := idx.(QueryAppender); ok {
		return qa.QueryAppend
	}
	return func(r geom.Rect, buf []uint32) []uint32 {
		query(r, func(id uint32) { buf = append(buf, id) })
		return buf
	}
}

// QueryBatchOf returns the batch query kernel of idx: the native
// QueryBatch when implemented, else the generic loop over the buffered
// kernel from QueryAppendOf.
func QueryBatchOf(idx any, query func(r geom.Rect, emit func(id uint32))) func(rects []geom.Rect, offsets, buf []uint32) ([]uint32, []uint32) {
	if bq, ok := idx.(BatchQuerier); ok {
		return bq.QueryBatch
	}
	qa := QueryAppendOf(idx, query)
	return func(rects []geom.Rect, offsets, buf []uint32) ([]uint32, []uint32) {
		return AppendBatch(qa, rects, offsets, buf)
	}
}

// AppendBatch is the canonical QueryBatch construction from a buffered
// kernel: answer the rects in order, recording a CSR offset after each.
// Families whose batch kernel is "the append kernel, amortized by the
// caller's Morton order" implement QueryBatch with this.
func AppendBatch(qa func(r geom.Rect, buf []uint32) []uint32, rects []geom.Rect, offsets, buf []uint32) ([]uint32, []uint32) {
	offsets = append(offsets[:0], 0)
	buf = buf[:0]
	for _, r := range rects {
		buf = qa(r, buf)
		offsets = append(offsets, uint32(len(buf)))
	}
	return offsets, buf
}

// QueryKernel selects which query kernel a driver uses.
type QueryKernel int

const (
	// KernelAuto picks the fastest kernel the index offers: the
	// buffered append path (native or adapted). The default.
	KernelAuto QueryKernel = iota
	// KernelEmit forces the classic per-result callback path.
	KernelEmit
	// KernelAppend forces the buffered QueryAppend path.
	KernelAppend
	// KernelBatch forces the multi-query QueryBatch path.
	KernelBatch
)

// String returns the flag spelling of the kernel.
func (k QueryKernel) String() string {
	switch k {
	case KernelEmit:
		return "emit"
	case KernelAppend:
		return "append"
	case KernelBatch:
		return "batch"
	default:
		return "auto"
	}
}

// ParseQueryKernel parses a -querykernel flag value.
func ParseQueryKernel(s string) (QueryKernel, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "emit":
		return KernelEmit, nil
	case "append":
		return KernelAppend, nil
	case "batch":
		return KernelBatch, nil
	}
	return KernelAuto, fmt.Errorf("unknown query kernel %q (want auto, emit, append, or batch)", s)
}

// EpochQueryAppender is QueryAppender for epoch-published indexes, whose
// queries additionally report the (epoch, digest) they observed.
type EpochQueryAppender interface {
	QueryAppend(r geom.Rect, buf []uint32) ([]uint32, uint64, uint64)
}

// ShardedEpochQueryAppender is QueryAppender for the per-shard
// epoch-published engines: the buffered analogue of
// ShardedEpochIndex.Query, reporting each touched shard's observation
// through observe.
type ShardedEpochQueryAppender interface {
	QueryAppend(r geom.Rect, buf []uint32, observe func(shard int, epoch, digest uint64)) []uint32
}
