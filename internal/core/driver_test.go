package core

import (
	"strings"
	"testing"

	"repro/internal/binsearch"
	"repro/internal/crtree"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/kdtrie"
	"repro/internal/rtree"
	"repro/internal/workload"
)

func testConfig() workload.Config {
	cfg := workload.DefaultUniform()
	cfg.NumPoints = 800
	cfg.Ticks = 12
	cfg.SpaceSize = 2000
	cfg.MaxSpeed = 40
	cfg.QuerySize = 120
	return cfg
}

// lineup instantiates every technique of the study for the given
// workload, including the whole grid ablation chain.
func lineup(cfg workload.Config) []Index {
	p := Params{Bounds: cfg.Bounds(), NumPoints: cfg.NumPoints}
	idxs := []Index{
		NewBruteForce(),
		binsearch.New(),
		rtree.MustNew(rtree.DefaultFanout),
		crtree.MustNew(crtree.DefaultFanout),
		kdtrie.MustNew(p.Bounds, kdtrie.DefaultBits),
	}
	for _, gc := range grid.AblationChain() {
		idxs = append(idxs, grid.MustNew(gc, p.Bounds, p.NumPoints))
	}
	return idxs
}

func TestAllTechniquesProduceIdenticalJoinResults(t *testing.T) {
	for _, cfg := range []workload.Config{testConfig(), func() workload.Config {
		c := testConfig()
		c.Kind = workload.Gaussian
		c.Hotspots = 4
		return c
	}(), func() workload.Config {
		c := testConfig()
		c.Kind = workload.Simulation
		c.Hotspots = 5
		return c
	}()} {
		t.Run(cfg.Kind.String(), func(t *testing.T) {
			trace, err := workload.Record(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var refPairs int64
			var refHash uint64
			for i, idx := range lineup(cfg) {
				res := Run(idx, workload.NewPlayer(trace), Options{})
				if res.Ticks != cfg.Ticks {
					t.Fatalf("%s: ran %d ticks, want %d", idx.Name(), res.Ticks, cfg.Ticks)
				}
				if res.Pairs == 0 {
					t.Fatalf("%s: join produced no pairs; workload too sparse to compare", idx.Name())
				}
				if i == 0 {
					refPairs, refHash = res.Pairs, res.Hash
					continue
				}
				if res.Pairs != refPairs || res.Hash != refHash {
					t.Errorf("%s: result digest (%d, %#x) differs from oracle (%d, %#x)",
						idx.Name(), res.Pairs, res.Hash, refPairs, refHash)
				}
			}
		})
	}
}

func TestRunCountsQueriesAndUpdates(t *testing.T) {
	cfg := testConfig()
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantQ, wantU := int64(0), int64(0)
	for _, tt := range trace.Ticks {
		wantQ += int64(len(tt.Queriers))
		wantU += int64(len(tt.Updates))
	}
	res := Run(NewBruteForce(), workload.NewPlayer(trace), Options{})
	if res.Queries != wantQ {
		t.Fatalf("Queries = %d, want %d", res.Queries, wantQ)
	}
	if res.Updates != wantU {
		t.Fatalf("Updates = %d, want %d", res.Updates, wantU)
	}
}

func TestRunTicksOption(t *testing.T) {
	cfg := testConfig()
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(NewBruteForce(), workload.NewPlayer(trace), Options{Ticks: 3})
	if res.Ticks != 3 {
		t.Fatalf("Ticks = %d, want 3", res.Ticks)
	}
	// Requesting more ticks than the workload has is clamped.
	res = Run(NewBruteForce(), workload.NewPlayer(trace), Options{Ticks: 10000})
	if res.Ticks != cfg.Ticks {
		t.Fatalf("Ticks = %d, want %d", res.Ticks, cfg.Ticks)
	}
}

func TestRunKeepPerTick(t *testing.T) {
	cfg := testConfig()
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(NewBruteForce(), workload.NewPlayer(trace), Options{KeepPerTick: true})
	if len(res.PerTick) != cfg.Ticks {
		t.Fatalf("PerTick has %d entries, want %d", len(res.PerTick), cfg.Ticks)
	}
	var sum PhaseTimes
	for _, pt := range res.PerTick {
		sum.add(pt)
	}
	if sum != res.Totals {
		t.Fatalf("per-tick sum %+v != totals %+v", sum, res.Totals)
	}
}

func TestCollectPairsSeesEveryPair(t *testing.T) {
	cfg := testConfig()
	cfg.Ticks = 3
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	res := Run(NewBruteForce(), workload.NewPlayer(trace), Options{
		CollectPairs: func(q, f uint32) { n++ },
	})
	if n != res.Pairs {
		t.Fatalf("collector saw %d pairs, result says %d", n, res.Pairs)
	}
}

func TestSelfPairsIncluded(t *testing.T) {
	// A querier always lies inside its own query square, so the join
	// result must contain the reflexive pair.
	cfg := testConfig()
	cfg.Ticks = 1
	cfg.Updaters = 0
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	self := make(map[uint32]bool)
	Run(NewBruteForce(), workload.NewPlayer(trace), Options{
		CollectPairs: func(q, f uint32) {
			if q == f {
				self[q] = true
			}
		},
	})
	for _, q := range trace.Ticks[0].Queriers {
		if !self[q] {
			t.Fatalf("querier %d missing its reflexive pair", q)
		}
	}
}

func TestQueriesSeePreviousTickState(t *testing.T) {
	// Construct a two-object workload by hand: object 1 moves far away in
	// tick 0's update phase. Tick 0 queries must see the old position,
	// tick 1 queries the new one.
	cfg := workload.Config{
		Kind: workload.Uniform, Seed: 1, Ticks: 2, NumPoints: 2,
		SpaceSize: 1000, MaxSpeed: 10, QuerySize: 100, Queriers: 1, Updaters: 0,
	}
	tr := &workload.Trace{
		Config: cfg,
		Initial: []workload.Object{
			{Pos: geom.Pt(100, 100)},
			{Pos: geom.Pt(120, 120)},
		},
		Ticks: []workload.TickTrace{
			{Queriers: []uint32{0}, Updates: []workload.Update{{ID: 1, Pos: geom.Pt(900, 900)}}},
			{Queriers: []uint32{0}},
		},
	}
	// Brute force scans IDs in order, so the expected emission sequence
	// is fully determined: tick 0 finds {0, 1} (object 1 still at its
	// pre-update position), tick 1 finds only {0}.
	var found []uint32
	Run(NewBruteForce(), workload.NewPlayer(tr), Options{
		CollectPairs: func(q, f uint32) { found = append(found, f) },
	})
	want := []uint32{0, 1, 0}
	if len(found) != len(want) {
		t.Fatalf("emission sequence %v, want %v", found, want)
	}
	for i := range want {
		if found[i] != want[i] {
			t.Fatalf("emission sequence %v, want %v", found, want)
		}
	}
}

func TestResultString(t *testing.T) {
	cfg := testConfig()
	cfg.Ticks = 2
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(NewBruteForce(), workload.NewPlayer(trace), Options{})
	s := res.String()
	if !strings.Contains(s, "Brute Force") || !strings.Contains(s, "pairs") {
		t.Fatalf("String() = %q", s)
	}
	if res.AvgTick() <= 0 {
		t.Fatal("AvgTick must be positive")
	}
	empty := &Result{}
	if empty.AvgTick() != 0 || empty.AvgBuild() != 0 {
		t.Fatal("zero-tick result averages must be 0")
	}
}

func TestPhaseTimesTotal(t *testing.T) {
	p := PhaseTimes{Build: 1, Query: 2, Update: 3}
	if p.Total() != 6 {
		t.Fatalf("Total = %d", p.Total())
	}
}

func TestGridMaintainedInPlaceStaysConsistent(t *testing.T) {
	// The grids are the only techniques whose Update does real work; a
	// long run with many updates must keep the structure's cardinality
	// intact every tick.
	cfg := testConfig()
	cfg.Ticks = 30
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, gc := range grid.AblationChain() {
		g := grid.MustNew(gc, cfg.Bounds(), cfg.NumPoints)
		Run(g, workload.NewPlayer(trace), Options{})
		if g.Len() != cfg.NumPoints {
			t.Fatalf("%s: %d entries after run, want %d", g.Name(), g.Len(), cfg.NumPoints)
		}
	}
}
