package core

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/workload"
)

func TestRunParallelMatchesSequential(t *testing.T) {
	cfg := testConfig()
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range lineup(cfg) {
		seq := Run(idx, workload.NewPlayer(trace), Options{})
		for _, workers := range []int{1, 2, 3, 8} {
			par := RunParallel(idx, workload.NewPlayer(trace), Options{}, workers)
			if par.Pairs != seq.Pairs || par.Hash != seq.Hash {
				t.Fatalf("%s with %d workers: digest (%d, %#x) != sequential (%d, %#x)",
					idx.Name(), workers, par.Pairs, par.Hash, seq.Pairs, seq.Hash)
			}
			if par.Queries != seq.Queries || par.Updates != seq.Updates {
				t.Fatalf("%s with %d workers: phase counts diverge", idx.Name(), workers)
			}
		}
	}
}

func TestRunParallelDefaultWorkers(t *testing.T) {
	cfg := testConfig()
	cfg.Ticks = 3
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx := grid.MustNew(grid.CPSTuned(), cfg.Bounds(), cfg.NumPoints)
	seq := Run(idx, workload.NewPlayer(trace), Options{})
	par := RunParallel(idx, workload.NewPlayer(trace), Options{}, 0) // GOMAXPROCS
	if par.Pairs != seq.Pairs || par.Hash != seq.Hash {
		t.Fatal("default worker count diverges from sequential")
	}
}

func TestRunParallelKeepPerTick(t *testing.T) {
	cfg := testConfig()
	cfg.Ticks = 4
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx := grid.MustNew(grid.CPSTuned(), cfg.Bounds(), cfg.NumPoints)
	res := RunParallel(idx, workload.NewPlayer(trace), Options{KeepPerTick: true}, 4)
	if len(res.PerTick) != 4 {
		t.Fatalf("PerTick has %d entries", len(res.PerTick))
	}
	var sum PhaseTimes
	for _, pt := range res.PerTick {
		sum.add(pt)
	}
	if sum != res.Totals {
		t.Fatal("per-tick sum != totals")
	}
}

func TestRunParallelCollectPairsFallsBack(t *testing.T) {
	// Pair collection forces the sequential path; results must still be
	// complete.
	cfg := testConfig()
	cfg.Ticks = 2
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx := grid.MustNew(grid.CPSTuned(), cfg.Bounds(), cfg.NumPoints)
	var collected int64
	res := RunParallel(idx, workload.NewPlayer(trace), Options{
		CollectPairs: func(q, f uint32) { collected++ },
	}, 4)
	if collected != res.Pairs {
		t.Fatalf("collector saw %d of %d pairs", collected, res.Pairs)
	}
}

func TestRunParallelTicksOption(t *testing.T) {
	cfg := testConfig()
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx := grid.MustNew(grid.CPSTuned(), cfg.Bounds(), cfg.NumPoints)
	res := RunParallel(idx, workload.NewPlayer(trace), Options{Ticks: 5}, 2)
	if res.Ticks != 5 {
		t.Fatalf("Ticks = %d, want 5", res.Ticks)
	}
}
