package core

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/workload"
)

func TestRunParallelMatchesSequential(t *testing.T) {
	cfg := testConfig()
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range lineup(cfg) {
		seq := Run(idx, workload.NewPlayer(trace), Options{})
		for _, workers := range []int{1, 2, 3, 8} {
			par := RunParallel(idx, workload.NewPlayer(trace), Options{}, workers)
			if par.Pairs != seq.Pairs || par.Hash != seq.Hash {
				t.Fatalf("%s with %d workers: digest (%d, %#x) != sequential (%d, %#x)",
					idx.Name(), workers, par.Pairs, par.Hash, seq.Pairs, seq.Hash)
			}
			if par.Queries != seq.Queries || par.Updates != seq.Updates {
				t.Fatalf("%s with %d workers: phase counts diverge", idx.Name(), workers)
			}
		}
	}
}

// TestRunParallelDigestMatrix is the ISSUE's digest-equality matrix:
// Run and RunParallel must produce identical (Pairs, Hash) for every
// grid layout × scan algorithm combination, including the CSR layout
// whose build, query scheduling, and update phases all take the parallel
// paths (ParallelBuilder, Morton-ordered scheduling, BatchUpdater).
func TestRunParallelDigestMatrix(t *testing.T) {
	cfg := testConfig()
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	layouts := []grid.Layout{
		grid.LayoutLinked, grid.LayoutInline, grid.LayoutInlineXY,
		grid.LayoutIntrusive, grid.LayoutCSR,
	}
	scans := []grid.Scan{grid.ScanFull, grid.ScanRange}
	var refPairs int64
	var refHash uint64
	first := true
	for _, layout := range layouts {
		for _, scan := range scans {
			gc := grid.Config{Layout: layout, Scan: scan, BS: 8, CPS: 16}
			t.Run(gc.DisplayName(), func(t *testing.T) {
				idx := grid.MustNew(gc, cfg.Bounds(), cfg.NumPoints)
				seq := Run(idx, workload.NewPlayer(trace), Options{})
				if first {
					refPairs, refHash = seq.Pairs, seq.Hash
					first = false
				} else if seq.Pairs != refPairs || seq.Hash != refHash {
					t.Fatalf("sequential digest (%d, %#x) differs from reference (%d, %#x)",
						seq.Pairs, seq.Hash, refPairs, refHash)
				}
				for _, workers := range []int{2, 4, 8} {
					idx := grid.MustNew(gc, cfg.Bounds(), cfg.NumPoints)
					par := RunParallel(idx, workload.NewPlayer(trace), Options{}, workers)
					if par.Pairs != refPairs || par.Hash != refHash {
						t.Fatalf("workers=%d digest (%d, %#x) != sequential (%d, %#x)",
							workers, par.Pairs, par.Hash, refPairs, refHash)
					}
				}
			})
		}
	}
}

// TestRunParallelCSRFullWorkload forces the batched-update threshold: a
// workload large enough that UpdateBatch takes its sharded parallel path,
// compared against the sequential inline-layout reference — the ISSUE's
// headline acceptance pairing.
func TestRunParallelCSRFullWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("large workload")
	}
	cfg := testConfig()
	cfg.NumPoints = 12000
	cfg.Ticks = 4
	cfg.SpaceSize = 8000
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inline := grid.MustNew(grid.CPSTuned(), cfg.Bounds(), cfg.NumPoints)
	seq := Run(inline, workload.NewPlayer(trace), Options{})
	csr := grid.MustNew(grid.CSR(), cfg.Bounds(), cfg.NumPoints)
	par := RunParallel(csr, workload.NewPlayer(trace), Options{}, 4)
	if par.Pairs != seq.Pairs || par.Hash != seq.Hash {
		t.Fatalf("parallel CSR digest (%d, %#x) != sequential inline (%d, %#x)",
			par.Pairs, par.Hash, seq.Pairs, seq.Hash)
	}
	if par.Updates != seq.Updates || par.Queries != seq.Queries {
		t.Fatal("phase counts diverge")
	}
}

func TestRunParallelDefaultWorkers(t *testing.T) {
	cfg := testConfig()
	cfg.Ticks = 3
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx := grid.MustNew(grid.CPSTuned(), cfg.Bounds(), cfg.NumPoints)
	seq := Run(idx, workload.NewPlayer(trace), Options{})
	par := RunParallel(idx, workload.NewPlayer(trace), Options{}, 0) // GOMAXPROCS
	if par.Pairs != seq.Pairs || par.Hash != seq.Hash {
		t.Fatal("default worker count diverges from sequential")
	}
}

func TestRunParallelKeepPerTick(t *testing.T) {
	cfg := testConfig()
	cfg.Ticks = 4
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx := grid.MustNew(grid.CPSTuned(), cfg.Bounds(), cfg.NumPoints)
	res := RunParallel(idx, workload.NewPlayer(trace), Options{KeepPerTick: true}, 4)
	if len(res.PerTick) != 4 {
		t.Fatalf("PerTick has %d entries", len(res.PerTick))
	}
	var sum PhaseTimes
	for _, pt := range res.PerTick {
		sum.add(pt)
	}
	if sum != res.Totals {
		t.Fatal("per-tick sum != totals")
	}
}

func TestRunParallelCollectPairsFallsBack(t *testing.T) {
	// Pair collection forces the sequential path; results must still be
	// complete.
	cfg := testConfig()
	cfg.Ticks = 2
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx := grid.MustNew(grid.CPSTuned(), cfg.Bounds(), cfg.NumPoints)
	var collected int64
	res := RunParallel(idx, workload.NewPlayer(trace), Options{
		CollectPairs: func(q, f uint32) { collected++ },
	}, 4)
	if collected != res.Pairs {
		t.Fatalf("collector saw %d of %d pairs", collected, res.Pairs)
	}
}

func TestRunParallelTicksOption(t *testing.T) {
	cfg := testConfig()
	trace, err := workload.Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx := grid.MustNew(grid.CPSTuned(), cfg.Bounds(), cfg.NumPoints)
	res := RunParallel(idx, workload.NewPlayer(trace), Options{Ticks: 5}, 2)
	if res.Ticks != 5 {
		t.Fatalf("Ticks = %d, want 5", res.Ticks)
	}
}
