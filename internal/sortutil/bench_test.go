package sortutil

import (
	"sort"
	"testing"

	"repro/internal/xrand"
)

// The radix sorts sit on the per-tick rebuild path of three techniques;
// these benchmarks compare them against the stdlib comparison sort they
// replace.

func BenchmarkByKey32(b *testing.B) {
	r := xrand.New(1)
	n := 50000
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	ids := make([]uint32, n)
	scratch := make([]uint32, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ids {
			ids[j] = uint32(j)
		}
		ByKey32(ids, keys, scratch)
	}
}

func BenchmarkByKey64(b *testing.B) {
	r := xrand.New(2)
	n := 50000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = r.Uint64() & 0xfff // morton-code-like small range
	}
	ids := make([]uint32, n)
	scratch := make([]uint32, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ids {
			ids[j] = uint32(j)
		}
		ByKey64(ids, keys, scratch)
	}
}

func BenchmarkStdlibSortSlice(b *testing.B) {
	r := xrand.New(3)
	n := 50000
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	ids := make([]uint32, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ids {
			ids[j] = uint32(j)
		}
		sort.Slice(ids, func(x, y int) bool { return keys[ids[x]] < keys[ids[y]] })
	}
}
