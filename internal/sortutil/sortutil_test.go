package sortutil

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestFloat32KeyOrder(t *testing.T) {
	values := []float32{
		float32(math.Inf(-1)), -1e30, -100, -1.5, -1, -math.SmallestNonzeroFloat32,
		0, math.SmallestNonzeroFloat32, 0.5, 1, 1.5, 100, 1e30, float32(math.Inf(1)),
	}
	for i := 1; i < len(values); i++ {
		a, b := values[i-1], values[i]
		if !(Float32Key(a) < Float32Key(b)) {
			t.Errorf("key order broken: key(%g) >= key(%g)", a, b)
		}
	}
}

func TestPropFloat32KeyMonotone(t *testing.T) {
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		switch {
		case a < b:
			return Float32Key(a) < Float32Key(b)
		case a > b:
			return Float32Key(a) > Float32Key(b)
		default:
			return Float32Key(a) == Float32Key(b) ||
				// -0 and +0 compare equal as floats but map to adjacent keys.
				(a == 0 && b == 0)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestByKey32MatchesSortSlice(t *testing.T) {
	r := xrand.New(1)
	for _, n := range []int{0, 1, 2, 3, 10, 255, 256, 1000, 4096} {
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = r.Uint32()
		}
		ids := make([]uint32, n)
		want := make([]uint32, n)
		for i := range ids {
			ids[i] = uint32(i)
			want[i] = uint32(i)
		}
		scratch := make([]uint32, n)
		ByKey32(ids, keys, scratch)
		sort.SliceStable(want, func(i, j int) bool { return keys[want[i]] < keys[want[j]] })
		for i := range ids {
			if ids[i] != want[i] {
				t.Fatalf("n=%d: mismatch at %d: got %d want %d", n, i, ids[i], want[i])
			}
		}
	}
}

func TestByKey32Stable(t *testing.T) {
	// All-equal keys: order must be preserved.
	n := 100
	keys := make([]uint32, n)
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i)
	}
	ByKey32(ids, keys, make([]uint32, n))
	for i := range ids {
		if ids[i] != uint32(i) {
			t.Fatalf("stability broken at %d: %d", i, ids[i])
		}
	}
}

func TestByKey64MatchesSortSlice(t *testing.T) {
	r := xrand.New(2)
	for _, n := range []int{0, 1, 2, 17, 512, 3000} {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = r.Uint64()
		}
		ids := make([]uint32, n)
		want := make([]uint32, n)
		for i := range ids {
			ids[i] = uint32(i)
			want[i] = uint32(i)
		}
		ByKey64(ids, keys, make([]uint32, n))
		sort.SliceStable(want, func(i, j int) bool { return keys[want[i]] < keys[want[j]] })
		for i := range ids {
			if ids[i] != want[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
	}
}

func TestByKey64SmallKeyRange(t *testing.T) {
	// Keys confined to one byte exercise the skip-pass path.
	r := xrand.New(3)
	n := 1000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(r.Intn(7))
	}
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i)
	}
	ByKey64(ids, keys, make([]uint32, n))
	for i := 1; i < n; i++ {
		if keys[ids[i-1]] > keys[ids[i]] {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestByKey32SubsetOfIDs(t *testing.T) {
	// ids need not cover [0, len(keys)): sort a subset.
	keys := []uint32{50, 40, 30, 20, 10}
	ids := []uint32{0, 2, 4}
	ByKey32(ids, keys, make([]uint32, 3))
	want := []uint32{4, 2, 0}
	for i := range ids {
		if ids[i] != want[i] {
			t.Fatalf("subset sort = %v, want %v", ids, want)
		}
	}
}

func TestPropByKey32SortsAnyInput(t *testing.T) {
	f := func(raw []uint32) bool {
		keys := raw
		ids := make([]uint32, len(keys))
		for i := range ids {
			ids[i] = uint32(i)
		}
		ByKey32(ids, keys, make([]uint32, len(ids)))
		seen := make(map[uint32]bool, len(ids))
		for i := range ids {
			if seen[ids[i]] {
				return false // permutation broken
			}
			seen[ids[i]] = true
			if i > 0 && keys[ids[i-1]] > keys[ids[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBounds32(t *testing.T) {
	keys := []uint32{10, 20, 20, 20, 30}
	cases := []struct {
		key    uint32
		lo, hi int
	}{
		{5, 0, 0},
		{10, 0, 1},
		{15, 1, 1},
		{20, 1, 4},
		{25, 4, 4},
		{30, 4, 5},
		{35, 5, 5},
	}
	for _, c := range cases {
		if got := LowerBound32(keys, c.key); got != c.lo {
			t.Errorf("LowerBound32(%d) = %d, want %d", c.key, got, c.lo)
		}
		if got := UpperBound32(keys, c.key); got != c.hi {
			t.Errorf("UpperBound32(%d) = %d, want %d", c.key, got, c.hi)
		}
	}
}

func TestBounds64(t *testing.T) {
	keys := []uint64{1, 1, 2, 5, 5, 5, 9}
	if got := LowerBound64(keys, 5); got != 3 {
		t.Errorf("LowerBound64(5) = %d, want 3", got)
	}
	if got := UpperBound64(keys, 5); got != 6 {
		t.Errorf("UpperBound64(5) = %d, want 6", got)
	}
	if got := LowerBound64(keys, 0); got != 0 {
		t.Errorf("LowerBound64(0) = %d, want 0", got)
	}
	if got := UpperBound64(keys, 10); got != 7 {
		t.Errorf("UpperBound64(10) = %d, want 7", got)
	}
	if got := LowerBound64(nil, 1); got != 0 {
		t.Errorf("LowerBound64(nil) = %d, want 0", got)
	}
}

func TestPropBoundsBracketRun(t *testing.T) {
	r := xrand.New(4)
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(200)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(r.Intn(20))
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		key := uint64(r.Intn(25))
		lo, hi := LowerBound64(keys, key), UpperBound64(keys, key)
		if lo > hi {
			t.Fatalf("lo %d > hi %d", lo, hi)
		}
		for i := 0; i < lo; i++ {
			if keys[i] >= key {
				t.Fatalf("keys[%d]=%d >= %d before lo", i, keys[i], key)
			}
		}
		for i := lo; i < hi; i++ {
			if keys[i] != key {
				t.Fatalf("keys[%d]=%d != %d inside run", i, keys[i], key)
			}
		}
		for i := hi; i < n; i++ {
			if keys[i] <= key {
				t.Fatalf("keys[%d]=%d <= %d after hi", i, keys[i], key)
			}
		}
	}
}
