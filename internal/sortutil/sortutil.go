// Package sortutil provides the key-based radix sorts the index-building
// paths share. Index builds run once per tick in the iterated join
// framework, so build cost is on the measured path; an LSD radix sort
// keeps it linear, allocation-free in steady state (callers pass scratch
// buffers), and bit-for-bit deterministic across runs and platforms.
package sortutil

import "math"

// Float32Key maps a float32 onto a uint32 whose unsigned order matches
// the float order (IEEE-754 total order for finite values: negatives
// reversed, sign bit flipped for positives).
func Float32Key(f float32) uint32 {
	b := math.Float32bits(f)
	if b&0x80000000 != 0 {
		return ^b
	}
	return b | 0x80000000
}

// ByKey32 sorts ids so that keys[ids[i]] is non-decreasing, where the key
// of id v is keys[v]. scratch must be at least len(ids) long; it is used
// as the ping-pong buffer. The sort is stable.
func ByKey32(ids []uint32, keys []uint32, scratch []uint32) {
	if len(ids) < 2 {
		return
	}
	src, dst := ids, scratch[:len(ids)]
	var counts [4][256]int
	for _, id := range src {
		k := keys[id]
		counts[0][k&0xff]++
		counts[1][k>>8&0xff]++
		counts[2][k>>16&0xff]++
		counts[3][k>>24]++
	}
	for pass := 0; pass < 4; pass++ {
		c := &counts[pass]
		shift := 8 * uint(pass)
		// Skip passes where every key shares the same byte.
		if c[keys[src[0]]>>shift&0xff] == len(src) {
			continue
		}
		pos := 0
		var offsets [256]int
		for b := 0; b < 256; b++ {
			offsets[b] = pos
			pos += c[b]
		}
		for _, id := range src {
			b := keys[id] >> shift & 0xff
			dst[offsets[b]] = id
			offsets[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &ids[0] {
		copy(ids, src)
	}
}

// ByKey64 sorts ids so that keys[ids[i]] is non-decreasing for uint64
// keys (e.g. Z-order codes). scratch must be at least len(ids) long. The
// sort is stable.
func ByKey64(ids []uint32, keys []uint64, scratch []uint32) {
	if len(ids) < 2 {
		return
	}
	src, dst := ids, scratch[:len(ids)]
	for pass := 0; pass < 8; pass++ {
		shift := 8 * uint(pass)
		var counts [256]int
		allSame := true
		first := keys[src[0]] >> shift & 0xff
		for _, id := range src {
			b := keys[id] >> shift & 0xff
			counts[b]++
			allSame = allSame && b == first
		}
		if allSame {
			continue
		}
		pos := 0
		var offsets [256]int
		for b := 0; b < 256; b++ {
			offsets[b] = pos
			pos += counts[b]
		}
		for _, id := range src {
			b := keys[id] >> shift & 0xff
			dst[offsets[b]] = id
			offsets[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &ids[0] {
		copy(ids, src)
	}
}

// LowerBound32 returns the smallest index i in sorted keys with
// keys[i] >= key.
func LowerBound32(keys []uint32, key uint32) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// UpperBound32 returns the smallest index i in sorted keys with
// keys[i] > key.
func UpperBound32(keys []uint32, key uint32) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// LowerBound64 returns the smallest index i in sorted keys with
// keys[i] >= key.
func LowerBound64(keys []uint64, key uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// UpperBound64 returns the smallest index i in sorted keys with
// keys[i] > key.
func UpperBound64(keys []uint64, key uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
