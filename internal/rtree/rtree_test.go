package rtree

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/xrand"
)

var testBounds = geom.R(0, 0, 1000, 1000)

func randomPoints(r *xrand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(r.Range(0, 1000), r.Range(0, 1000))
	}
	return pts
}

func bruteQuery(pts []geom.Point, r geom.Rect) map[uint32]bool {
	want := make(map[uint32]bool)
	for i := range pts {
		if pts[i].In(r) {
			want[uint32(i)] = true
		}
	}
	return want
}

func collect(t *testing.T, tr *Tree, r geom.Rect) map[uint32]bool {
	t.Helper()
	got := make(map[uint32]bool)
	tr.Query(r, func(id uint32) {
		if got[id] {
			t.Fatalf("duplicate emission of %d", id)
		}
		got[id] = true
	})
	return got
}

func TestNewRejectsBadFanout(t *testing.T) {
	for _, f := range []int{-1, 0, 1} {
		if _, err := New(f); err == nil {
			t.Errorf("fanout %d accepted", f)
		}
	}
	if _, err := New(2); err != nil {
		t.Fatal(err)
	}
}

func TestQueryMatchesBruteForce(t *testing.T) {
	r := xrand.New(1)
	for _, fanout := range []int{2, 4, 16, 64} {
		for _, n := range []int{0, 1, 2, 15, 16, 17, 100, 3000} {
			pts := randomPoints(r, n)
			tr := MustNew(fanout)
			tr.Build(pts)
			if tr.Len() != n {
				t.Fatalf("fanout=%d n=%d: Len=%d", fanout, n, tr.Len())
			}
			for i := 0; i < 30; i++ {
				q := geom.Square(geom.Pt(r.Range(-50, 1050), r.Range(-50, 1050)), r.Range(1, 400))
				got := collect(t, tr, q)
				want := bruteQuery(pts, q)
				if len(got) != len(want) {
					t.Fatalf("fanout=%d n=%d query %d: got %d want %d", fanout, n, i, len(got), len(want))
				}
				for id := range want {
					if !got[id] {
						t.Fatalf("fanout=%d n=%d query %d: missing %d", fanout, n, i, id)
					}
				}
			}
		}
	}
}

func TestRootMBRContainsAllPoints(t *testing.T) {
	r := xrand.New(2)
	pts := randomPoints(r, 1000)
	tr := MustNew(16)
	tr.Build(pts)
	mbr := tr.MBR()
	for i, p := range pts {
		if !p.In(mbr) {
			t.Fatalf("point %d %v outside root MBR %v", i, p, mbr)
		}
	}
}

func TestNodeMBRInvariant(t *testing.T) {
	// Every node's MBR must contain the MBRs of its children (internal)
	// or its points (leaf).
	r := xrand.New(3)
	pts := randomPoints(r, 2000)
	tr := MustNew(8)
	tr.Build(pts)
	for i := range tr.nodes {
		nd := &tr.nodes[i]
		if nd.leaf {
			for _, id := range tr.entries[nd.first : nd.first+nd.count] {
				if !pts[id].In(nd.mbr) {
					t.Fatalf("leaf %d: point %d outside MBR", i, id)
				}
			}
		} else {
			for c := nd.first; c < nd.first+nd.count; c++ {
				if !nd.mbr.ContainsRect(tr.nodes[c].mbr) {
					t.Fatalf("node %d: child %d MBR pokes out", i, c)
				}
			}
		}
	}
}

func TestEveryEntryInExactlyOneLeaf(t *testing.T) {
	r := xrand.New(4)
	pts := randomPoints(r, 777)
	tr := MustNew(16)
	tr.Build(pts)
	seen := make([]int, len(pts))
	for i := range tr.nodes {
		nd := &tr.nodes[i]
		if !nd.leaf {
			continue
		}
		for _, id := range tr.entries[nd.first : nd.first+nd.count] {
			seen[id]++
		}
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("entry %d appears in %d leaves", id, c)
		}
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr := MustNew(16)
	tr.Build(randomPoints(xrand.New(5), 16))
	if h := tr.Height(); h != 1 {
		t.Fatalf("16 points, fanout 16: height %d, want 1", h)
	}
	tr.Build(randomPoints(xrand.New(5), 17))
	if h := tr.Height(); h != 2 {
		t.Fatalf("17 points, fanout 16: height %d, want 2", h)
	}
	tr.Build(randomPoints(xrand.New(5), 50000))
	if h := tr.Height(); h < 4 || h > 5 {
		t.Fatalf("50K points, fanout 16: height %d, want 4..5", h)
	}
}

func TestNodesFull(t *testing.T) {
	// STR packing must fill every leaf except possibly the last to
	// capacity.
	r := xrand.New(6)
	pts := randomPoints(r, 1000)
	tr := MustNew(16)
	tr.Build(pts)
	underfull := 0
	leaves := 0
	for i := range tr.nodes {
		nd := &tr.nodes[i]
		if nd.leaf {
			leaves++
			if int(nd.count) < tr.fanout {
				underfull++
			}
		}
	}
	if underfull > 1 {
		t.Fatalf("%d of %d leaves underfull; STR must pack", underfull, leaves)
	}
}

func TestRebuildDiscardsOldPoints(t *testing.T) {
	r := xrand.New(7)
	tr := MustNew(16)
	tr.Build(randomPoints(r, 500))
	pts := randomPoints(r, 100)
	tr.Build(pts)
	if tr.Len() != 100 {
		t.Fatalf("Len after rebuild = %d", tr.Len())
	}
	got := collect(t, tr, testBounds)
	if len(got) != 100 {
		t.Fatalf("rebuild leaked entries: %d results", len(got))
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	tr := MustNew(16)
	tr.Build(nil)
	if tr.Height() != 0 || tr.Len() != 0 {
		t.Fatal("empty tree must have height 0")
	}
	n := 0
	tr.Query(testBounds, func(uint32) { n++ })
	if n != 0 {
		t.Fatal("empty tree emitted results")
	}
	// All points identical.
	same := make([]geom.Point, 100)
	for i := range same {
		same[i] = geom.Pt(5, 5)
	}
	tr.Build(same)
	if got := collect(t, tr, geom.Square(geom.Pt(5, 5), 1)); len(got) != 100 {
		t.Fatalf("colocated points: found %d of 100", len(got))
	}
	if got := collect(t, tr, geom.R(6, 6, 10, 10)); len(got) != 0 {
		t.Fatalf("query beside colocated points returned %d", len(got))
	}
}

func TestUpdateIsNoOpUntilRebuild(t *testing.T) {
	r := xrand.New(8)
	pts := randomPoints(r, 50)
	tr := MustNew(8)
	tr.Build(pts)
	before := collect(t, tr, testBounds)
	tr.Update(3, pts[3], geom.Pt(0, 0))
	after := collect(t, tr, testBounds)
	if len(before) != len(after) {
		t.Fatal("Update changed a static tree")
	}
}

func TestPropQueryNeverMissesKnownPoint(t *testing.T) {
	r := xrand.New(9)
	pts := randomPoints(r, 500)
	tr := MustNew(16)
	tr.Build(pts)
	f := func(idx uint16, side float32) bool {
		id := uint32(idx) % uint32(len(pts))
		if math.IsNaN(float64(side)) || math.IsInf(float64(side), 0) {
			return true
		}
		if side < 0 {
			side = -side
		}
		side = 1 + float32(math.Mod(float64(side), 500))
		q := geom.Square(pts[id], side)
		found := false
		tr.Query(q, func(got uint32) {
			if got == id {
				found = true
			}
		})
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryBytesPositive(t *testing.T) {
	tr := MustNew(16)
	tr.Build(randomPoints(xrand.New(10), 1000))
	if tr.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes must be positive for a populated tree")
	}
}
