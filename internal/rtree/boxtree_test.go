package rtree

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/xrand"
)

// randomBoxes generates n rects in bounds with sides in [minSide,
// maxSide], including degenerate (point) rects when minSide is 0.
func randomBoxes(r *xrand.Rand, n int, bounds geom.Rect, minSide, maxSide float32) []geom.Rect {
	out := make([]geom.Rect, n)
	for i := range out {
		cx := r.Range(bounds.MinX, bounds.MaxX)
		cy := r.Range(bounds.MinY, bounds.MaxY)
		hw := r.Range(minSide, maxSide) / 2
		hh := r.Range(minSide, maxSide) / 2
		out[i] = geom.Rect{MinX: cx - hw, MinY: cy - hh, MaxX: cx + hw, MaxY: cy + hh}
	}
	return out
}

// bruteBoxQuery is the oracle: IDs of all rects intersecting r, sorted.
func bruteBoxQuery(rects []geom.Rect, r geom.Rect) []uint32 {
	var out []uint32
	for i := range rects {
		if rects[i].Intersects(r) {
			out = append(out, uint32(i))
		}
	}
	return out
}

// collectBoxQuery runs one query, failing the test on any duplicate
// emission (part of the BoxIndex contract), and returns the sorted IDs.
func collectBoxQuery(t *testing.T, bt *BoxTree, r geom.Rect) []uint32 {
	t.Helper()
	seen := make(map[uint32]int)
	var out []uint32
	bt.Query(r, func(id uint32) {
		seen[id]++
		out = append(out, id)
	})
	for id, n := range seen {
		if n > 1 {
			t.Fatalf("query %v emitted id %d %d times (duplicate-free contract)", r, id, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func boxTestQueries(r *xrand.Rand, n int, bounds geom.Rect) []geom.Rect {
	queries := make([]geom.Rect, 0, n+4)
	for i := 0; i < n; i++ {
		cx := r.Range(bounds.MinX, bounds.MaxX)
		cy := r.Range(bounds.MinY, bounds.MaxY)
		side := r.Range(1, bounds.Width()/3)
		queries = append(queries, geom.Square(geom.Pt(cx, cy), side))
	}
	// Edge cases: the whole space, a query poking outside it, a
	// degenerate point query, and a sliver.
	queries = append(queries,
		bounds,
		bounds.Expand(bounds.Width()/4),
		geom.Pt((bounds.MinX+bounds.MaxX)/2, (bounds.MinY+bounds.MaxY)/2).Rect(),
		geom.R(bounds.MinX+1, bounds.MinY+1, bounds.MinX+2, bounds.MinY+2),
	)
	return queries
}

func TestNewBoxTreeRejectsBadFanout(t *testing.T) {
	for _, f := range []int{-3, 0, 1} {
		if _, err := NewBoxTree(f); err == nil {
			t.Errorf("fanout %d must be rejected", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewBoxTree(1) must panic")
		}
	}()
	MustNewBoxTree(1)
}

func TestBoxTreeMatchesBruteForce(t *testing.T) {
	bounds := geom.R(0, 0, 1000, 1000)
	rng := xrand.New(7)
	for _, tc := range []struct {
		name             string
		n                int
		minSide, maxSide float32
		fanout           int
	}{
		{"small boxes", 500, 0, 40, 16},
		{"mixed sizes", 400, 0, 300, 16},
		{"huge boxes", 60, 200, 900, 4},
		{"degenerate points", 300, 0, 0, 16},
		{"tiny fanout", 400, 0, 120, 2},
		{"wide fanout", 400, 0, 120, 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rects := randomBoxes(rng, tc.n, bounds, tc.minSide, tc.maxSide)
			bt := MustNewBoxTree(tc.fanout)
			bt.Build(rects)
			if bt.Len() != tc.n {
				t.Fatalf("Len = %d, want %d", bt.Len(), tc.n)
			}
			for _, q := range boxTestQueries(rng, 50, bounds) {
				got := collectBoxQuery(t, bt, q)
				want := bruteBoxQuery(rects, q)
				if !equalIDs(got, want) {
					t.Fatalf("query %v: got %d ids, want %d", q, len(got), len(want))
				}
			}
		})
	}
}

// checkSTRInvariants verifies the packing invariants of a bulk-loaded or
// refit tree via the exported CheckInvariants audit, plus the
// test-context fact the audit cannot know: the tree indexes exactly the
// rects snapshot.
func checkSTRInvariants(t *testing.T, bt *BoxTree, rects []geom.Rect) {
	t.Helper()
	if bt.Len() != len(rects) {
		t.Fatalf("tree holds %d entries, snapshot has %d", bt.Len(), len(rects))
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBoxTreeSTRPackingInvariants(t *testing.T) {
	bounds := geom.R(0, 0, 2000, 2000)
	rng := xrand.New(17)
	for _, n := range []int{1, 2, 15, 16, 17, 255, 256, 257, 3000} {
		rects := randomBoxes(rng, n, bounds, 0, 150)
		bt := MustNewBoxTree(16)
		bt.Build(rects)
		checkSTRInvariants(t, bt, rects)
	}
}

func TestBoxTreeParallelBuildBitIdentical(t *testing.T) {
	bounds := geom.R(0, 0, 4000, 4000)
	rng := xrand.New(11)
	// Above the gate so the parallel path actually runs.
	rects := randomBoxes(rng, 6000, bounds, 0, 200)

	seq := MustNewBoxTree(16)
	seq.Build(rects)
	for _, workers := range []int{2, 3, 8} {
		par := MustNewBoxTree(16)
		par.BuildParallel(rects, workers)
		if len(par.nodes) != len(seq.nodes) {
			t.Fatalf("workers=%d: %d nodes, want %d", workers, len(par.nodes), len(seq.nodes))
		}
		for i := range seq.nodes {
			if seq.nodes[i] != par.nodes[i] || seq.parents[i] != par.parents[i] {
				t.Fatalf("workers=%d: node %d differs: %+v vs %+v",
					workers, i, par.nodes[i], seq.nodes[i])
			}
		}
		for k := range seq.entries {
			if seq.entries[k] != par.entries[k] || seq.entryRects[k] != par.entryRects[k] {
				t.Fatalf("workers=%d: entry slot %d differs", workers, k)
			}
		}
		for id := range seq.slots {
			if seq.slots[id] != par.slots[id] {
				t.Fatalf("workers=%d: slots[%d] = %d, want %d",
					workers, id, par.slots[id], seq.slots[id])
			}
		}
		for l := range seq.leafPos {
			if seq.leafPos[l] != par.leafPos[l] {
				t.Fatalf("workers=%d: leafPos[%d] differs", workers, l)
			}
		}
	}
}

// moveBoxes returns a moved copy of rects: roughly half the objects
// translated (and sometimes resized) by random offsets.
func moveBoxes(r *xrand.Rand, rects []geom.Rect, maxShift float32) ([]geom.Rect, []geom.BoxMove) {
	out := append([]geom.Rect(nil), rects...)
	var moves []geom.BoxMove
	for i := range out {
		if r.Bool(0.5) {
			continue
		}
		dx := r.Range(-maxShift, maxShift)
		dy := r.Range(-maxShift, maxShift)
		grow := r.Range(0, maxShift/4)
		nr := geom.Rect{
			MinX: out[i].MinX + dx, MinY: out[i].MinY + dy,
			MaxX: out[i].MaxX + dx + grow, MaxY: out[i].MaxY + dy + grow,
		}
		moves = append(moves, geom.BoxMove{ID: uint32(i), Old: out[i], New: nr})
		out[i] = nr
	}
	return out, moves
}

func TestBoxTreeUpdateMatchesRebuild(t *testing.T) {
	bounds := geom.R(0, 0, 1000, 1000)
	rng := xrand.New(23)
	rects := randomBoxes(rng, 800, bounds, 0, 120)
	bt := MustNewBoxTree(16)
	bt.Build(rects)

	moved, moves := moveBoxes(rng, rects, 200)
	for _, m := range moves {
		bt.Update(m.ID, m.Old, m.New)
	}
	// The refit tree must answer queries over the moved population
	// exactly like a fresh build would.
	for _, q := range boxTestQueries(rng, 40, bounds) {
		got := collectBoxQuery(t, bt, q)
		want := bruteBoxQuery(moved, q)
		if !equalIDs(got, want) {
			t.Fatalf("after updates, query %v: got %d ids, want %d", q, len(got), len(want))
		}
	}
	checkSTRInvariants(t, bt, moved)
	if bt.Len() != len(rects) {
		t.Fatalf("Len = %d after updates, want %d", bt.Len(), len(rects))
	}
}

// TestBoxTreeRebuildFallbackEngages drives enough update cycles without
// an interleaved Build to cross the dirtiness threshold and verifies the
// self-rebuild both happened and preserved correctness.
func TestBoxTreeRebuildFallbackEngages(t *testing.T) {
	bounds := geom.R(0, 0, 1000, 1000)
	rng := xrand.New(29)
	rects := randomBoxes(rng, 300, bounds, 0, 80)
	bt := MustNewBoxTree(8)
	bt.Build(rects)

	cur := rects
	rebuilt := false
	for cycle := 0; cycle < 5; cycle++ {
		moved, moves := moveBoxes(rng, cur, 150)
		before := bt.refitted
		for _, m := range moves {
			bt.Update(m.ID, m.Old, m.New)
		}
		if bt.refitted < before {
			rebuilt = true
		}
		cur = moved
		for _, q := range boxTestQueries(rng, 15, bounds) {
			got := collectBoxQuery(t, bt, q)
			want := bruteBoxQuery(cur, q)
			if !equalIDs(got, want) {
				t.Fatalf("cycle %d: query %v: got %d ids, want %d", cycle, q, len(got), len(want))
			}
		}
	}
	if !rebuilt {
		t.Fatalf("refitted reached %d over 5 half-population cycles without a rebuild (threshold %d)",
			bt.refitted, bt.rebuildAt())
	}
	checkSTRInvariants(t, bt, cur)
}

func TestBoxTreeUpdateBatchMatchesSequentialUpdates(t *testing.T) {
	bounds := geom.R(0, 0, 4000, 4000)
	rng := xrand.New(31)
	rects := randomBoxes(rng, 12000, bounds, 0, 200)

	seq := MustNewBoxTree(16)
	seq.Build(rects)
	par := MustNewBoxTree(16)
	par.Build(rects)

	moved, moves := moveBoxes(rng, rects, 50)
	// Keep the batch under the dirtiness threshold so the refit path
	// (not the rebuild) is what's compared.
	if len(moves) < minBoxTreeBatch {
		t.Fatalf("only %d moves; need >= %d for the batched path", len(moves), minBoxTreeBatch)
	}
	if !par.CanBatchUpdates(len(moves)) {
		t.Fatalf("CanBatchUpdates(%d) = false", len(moves))
	}
	for _, m := range moves {
		seq.Update(m.ID, m.Old, m.New)
	}
	par.UpdateBatch(moves, 4)

	for i := range seq.nodes {
		if seq.nodes[i].mbr != par.nodes[i].mbr {
			t.Fatalf("node %d MBR differs after batch vs sequential refit", i)
		}
	}
	for _, q := range boxTestQueries(rng, 30, bounds) {
		got := collectBoxQuery(t, par, q)
		want := bruteBoxQuery(moved, q)
		if !equalIDs(got, want) {
			t.Fatalf("batch updates disagree with oracle on query %v", q)
		}
	}
}

// TestBoxTreeUpdateBatchRebuildFallback crosses the dirtiness threshold
// in one batch and verifies the sharded rebuild path answers correctly.
func TestBoxTreeUpdateBatchRebuildFallback(t *testing.T) {
	bounds := geom.R(0, 0, 4000, 4000)
	rng := xrand.New(37)
	rects := randomBoxes(rng, 6000, bounds, 0, 200)
	bt := MustNewBoxTree(16)
	bt.Build(rects)

	// Move every object: one batch >= the threshold.
	moved := make([]geom.Rect, len(rects))
	moves := make([]geom.BoxMove, len(rects))
	for i := range rects {
		dx, dy := rng.Range(-300, 300), rng.Range(-300, 300)
		nr := geom.Rect{
			MinX: rects[i].MinX + dx, MinY: rects[i].MinY + dy,
			MaxX: rects[i].MaxX + dx, MaxY: rects[i].MaxY + dy,
		}
		moved[i] = nr
		moves[i] = geom.BoxMove{ID: uint32(i), Old: rects[i], New: nr}
	}
	bt.UpdateBatch(moves, 4)
	if bt.refitted != 0 {
		t.Fatalf("full-population batch did not take the rebuild path (refitted=%d)", bt.refitted)
	}
	checkSTRInvariants(t, bt, moved)
	for _, q := range boxTestQueries(rng, 30, bounds) {
		got := collectBoxQuery(t, bt, q)
		want := bruteBoxQuery(moved, q)
		if !equalIDs(got, want) {
			t.Fatalf("post-rebuild query %v: got %d ids, want %d", q, len(got), len(want))
		}
	}
}

func TestBoxTreeEmptyAndDegenerate(t *testing.T) {
	bt := MustNewBoxTree(16)
	bt.Build(nil)
	if bt.Len() != 0 || bt.Height() != 0 {
		t.Fatalf("empty tree: Len=%d Height=%d", bt.Len(), bt.Height())
	}
	bt.Query(geom.R(0, 0, 100, 100), func(id uint32) {
		t.Fatalf("empty tree emitted %d", id)
	})
	if bt.MBR() != (geom.Rect{}) {
		t.Fatalf("empty tree MBR = %v", bt.MBR())
	}

	one := []geom.Rect{geom.R(5, 5, 10, 10)}
	bt.Build(one)
	if bt.Len() != 1 || bt.Height() != 1 {
		t.Fatalf("singleton tree: Len=%d Height=%d", bt.Len(), bt.Height())
	}
	got := collectBoxQuery(t, bt, geom.R(0, 0, 6, 6))
	if !equalIDs(got, []uint32{0}) {
		t.Fatalf("singleton query got %v", got)
	}
	if bt.MBR() != one[0] {
		t.Fatalf("singleton MBR = %v, want %v", bt.MBR(), one[0])
	}
}

func TestBoxTreeHeightAndMemory(t *testing.T) {
	bounds := geom.R(0, 0, 1000, 1000)
	rects := randomBoxes(xrand.New(3), 5000, bounds, 0, 50)
	bt := MustNewBoxTree(16)
	bt.Build(rects)
	// 5000 entries at fanout 16: 313 leaves, 20 level-1 nodes, 2
	// level-2, 1 root = height 4.
	if h := bt.Height(); h != 4 {
		t.Fatalf("Height = %d, want 4", h)
	}
	if bt.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes must be positive")
	}
	if bt.Fanout() != 16 {
		t.Fatalf("Fanout = %d", bt.Fanout())
	}
}

// FuzzBoxTreeMatchesOracle drives BoxTree and the brute-force oracle
// through fuzzer-chosen build -> query -> update -> query cycles and
// fails on any digest divergence — the box-tree mirror of the grid's
// oracle checks. Run as a plain test it covers the seed corpus;
// `go test -fuzz=FuzzBoxTreeMatchesOracle ./internal/rtree` explores
// further.
func FuzzBoxTreeMatchesOracle(f *testing.F) {
	f.Add(uint64(1), uint16(300), uint8(16), uint8(2), uint8(120))
	f.Add(uint64(7), uint16(40), uint8(2), uint8(3), uint8(0))
	f.Add(uint64(42), uint16(900), uint8(64), uint8(1), uint8(255))
	f.Add(uint64(99), uint16(1), uint8(5), uint8(4), uint8(40))
	f.Fuzz(func(t *testing.T, seed uint64, nObjs uint16, fanByte, cycles, sideByte uint8) {
		n := int(nObjs)
		if n == 0 {
			return
		}
		fanout := 2 + int(fanByte)%63
		rng := xrand.New(seed)
		bounds := geom.R(0, 0, 2000, 2000)
		rects := randomBoxes(rng, n, bounds, 0, 1+float32(sideByte)*3)

		bt := MustNewBoxTree(fanout)
		oracle := core.NewBruteForceBoxes()
		bt.BuildParallel(rects, 1+int(seed%4))
		oracle.Build(rects)

		digest := func(idx core.BoxIndex, queriers []geom.Rect) (int, uint64) {
			var pairs int
			var h uint64
			for q, r := range queriers {
				idx.Query(r, func(id uint32) {
					pairs++
					h = core.MixPair(h, uint32(q), id)
				})
			}
			return pairs, h
		}
		cyc := 1 + int(cycles)%4
		cur := rects
		for c := 0; c < cyc; c++ {
			queriers := boxTestQueries(rng, 12, bounds)
			wantPairs, wantHash := digest(oracle, queriers)
			gotPairs, gotHash := digest(bt, queriers)
			if gotPairs != wantPairs || gotHash != wantHash {
				t.Fatalf("cycle %d pre-update: (%d, %#x), oracle (%d, %#x) [seed=%d n=%d fanout=%d]",
					c, gotPairs, gotHash, wantPairs, wantHash, seed, n, fanout)
			}

			moved, moves := moveBoxes(rng, cur, 400)
			for _, m := range moves {
				bt.Update(m.ID, m.Old, m.New)
			}
			// The oracle reads the snapshot it retains; hand it the
			// moved one (its Update is a no-op by design).
			oracle.Build(moved)
			cur = moved

			wantPairs, wantHash = digest(oracle, queriers)
			gotPairs, gotHash = digest(bt, queriers)
			if gotPairs != wantPairs || gotHash != wantHash {
				t.Fatalf("cycle %d post-update: (%d, %#x), oracle (%d, %#x) [seed=%d n=%d fanout=%d]",
					c, gotPairs, gotHash, wantPairs, wantHash, seed, n, fanout)
			}
		}
	})
}
