// Package rtree implements the R-tree technique of the study: a static
// R-tree (Guttman, SIGMOD 1984) bulk-loaded per tick with the
// Sort-Tile-Recursive packing of Leutenegger, Lopez & Edgington (ICDE
// 1997), optimized for main memory as in the original framework.
//
// STR packing for points: with n points and fanout f, the leaf level has
// p = ceil(n/f) leaves arranged in a roughly sqrt(p) x sqrt(p) tiling —
// points are sorted by x, cut into vertical slabs, each slab sorted by y
// and cut into runs of f. Upper levels pack the same way over node
// centres. The result is a fully packed, low-overlap static tree, which
// is why it is competitive in the study.
//
// The tree is stored as flat arrays (one node record per node, entries in
// leaf order), so a per-tick rebuild is a handful of radix sorts and a
// single sequential pass — no per-node allocation.
package rtree

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/sortutil"
)

// DefaultFanout is the node capacity used when none is configured. The
// original study tuned main-memory R-tree node sizes to the cache-line
// regime (a few hundred bytes per node); 16 entries x 20 bytes sits in
// that regime and is the sweep optimum in our harness.
const DefaultFanout = 16

// Tree is a static, STR-packed R-tree over a point snapshot. It
// implements core.Index.
type Tree struct {
	fanout int
	pts    []geom.Point

	// entries is the permutation of object IDs in leaf order.
	entries []uint32
	// nodes holds all tree nodes, leaves first, then each upper level;
	// root is the last node (when the tree is non-empty).
	nodes []node
	root  int32

	// build scratch, reused across ticks
	scratchIDs  []uint32
	scratchKeys []uint32
	levelIdx    []uint32
	levelNodes  []node
}

// node is one R-tree node. Leaves address a contiguous run of entries;
// internal nodes address a contiguous run of child nodes (STR packs
// children consecutively, so no child pointer array is needed).
type node struct {
	mbr   geom.Rect
	first int32 // first entry (leaf) or first child node index (internal)
	count int32
	leaf  bool
}

// New returns a tree with the given fanout (entries per node).
func New(fanout int) (*Tree, error) {
	if fanout < 2 {
		return nil, fmt.Errorf("rtree: fanout must be >= 2, got %d", fanout)
	}
	return &Tree{fanout: fanout, root: -1}, nil
}

// MustNew is New for known-good fanouts; it panics on error.
func MustNew(fanout int) *Tree {
	t, err := New(fanout)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements core.Index.
func (t *Tree) Name() string { return "R-Tree" }

// Fanout returns the node capacity.
func (t *Tree) Fanout() int { return t.fanout }

// Len implements core.Counter.
func (t *Tree) Len() int { return len(t.entries) }

// Height returns the number of levels (0 for an empty tree).
func (t *Tree) Height() int {
	if t.root < 0 {
		return 0
	}
	h := 1
	for n := t.nodes[t.root]; !n.leaf; n = t.nodes[n.first] {
		h++
	}
	return h
}

// Build implements core.Index with STR bulk loading.
func (t *Tree) Build(pts []geom.Point) {
	t.pts = pts
	n := len(pts)
	t.nodes = t.nodes[:0]
	t.entries = resizeU32(t.entries, n)
	t.root = -1
	if n == 0 {
		return
	}

	// Leaf level: STR tiling of the point set.
	for i := range t.entries {
		t.entries[i] = uint32(i)
	}
	t.scratchIDs = resizeU32(t.scratchIDs, n)
	t.scratchKeys = resizeU32(t.scratchKeys, n)
	keys := t.scratchKeys
	for i := range pts {
		keys[i] = sortutil.Float32Key(pts[i].X)
	}
	sortutil.ByKey32(t.entries, keys, t.scratchIDs)

	slabSize := strSlabSize(n, t.fanout)

	for i := range pts {
		keys[i] = sortutil.Float32Key(pts[i].Y)
	}
	for start := 0; start < n; start += slabSize {
		end := start + slabSize
		if end > n {
			end = n
		}
		sortutil.ByKey32(t.entries[start:end], keys, t.scratchIDs)
	}

	// Pack leaves over the tiled entry order.
	for start := 0; start < n; start += t.fanout {
		end := start + t.fanout
		if end > n {
			end = n
		}
		mbr := pointMBR(pts, t.entries[start:end])
		t.nodes = append(t.nodes, node{mbr: mbr, first: int32(start), count: int32(end - start), leaf: true})
	}

	// Upper levels: STR-pack the previous level by node centres until one
	// node remains.
	levelStart := 0
	levelCount := len(t.nodes)
	for levelCount > 1 {
		nextStart := len(t.nodes)
		t.packLevel(levelStart, levelCount)
		levelStart = nextStart
		levelCount = len(t.nodes) - nextStart
	}
	t.root = int32(len(t.nodes) - 1)
}

// packLevel packs nodes [start, start+count) into parents appended to
// t.nodes. Children of one parent must be contiguous, so the level is
// reordered in place by the STR tiling before parents are emitted.
func (t *Tree) packLevel(start, count int) {
	idx := resizeU32(t.levelIdx, count)
	t.levelIdx = idx
	keys := resizeU32(t.scratchKeys, count)
	t.scratchKeys = keys
	scratch := resizeU32(t.scratchIDs, count)
	t.scratchIDs = scratch
	reordered := resizeNodes(t.levelNodes, count)
	t.levelNodes = reordered

	level := t.nodes[start : start+count]
	strTileOrder(level, strSlabSize(count, t.fanout), idx, keys, scratch, reordered)

	for s := 0; s < count; s += t.fanout {
		e := s + t.fanout
		if e > count {
			e = count
		}
		mbr := level[s].mbr
		for _, nd := range level[s+1 : e] {
			mbr = mbr.Union(nd.mbr)
		}
		t.nodes = append(t.nodes, node{mbr: mbr, first: int32(start + s), count: int32(e - s)})
	}
}

// strSlabSize returns the STR tile width (in items) for packing count
// items into fanout-sized groups: with p = ceil(count/fanout) groups,
// the tiling uses ceil(sqrt(p)) vertical slabs of ceil(sqrt(p))*fanout
// items each (Leutenegger et al., ICDE 1997).
func strSlabSize(count, fanout int) int {
	groups := (count + fanout - 1) / fanout
	slabs := int(math.Ceil(math.Sqrt(float64(groups))))
	return slabs * fanout
}

// strTileOrder reorders one whole tree level in place into STR tile
// order: by MBR centre-x into vertical slabs of slabSize nodes, then by
// centre-y within each slab. idx, keys, scratch, and reorder are
// caller-owned scratch of at least len(level); the machinery is shared
// by the point tree and the box tree so the packing discipline is
// written once.
func strTileOrder(level []node, slabSize int, idx, keys, scratch []uint32, reorder []node) {
	count := len(level)
	for i := range idx[:count] {
		idx[i] = uint32(i)
	}
	for i, nd := range level {
		keys[i] = sortutil.Float32Key(nd.mbr.Center().X)
	}
	sortutil.ByKey32(idx[:count], keys, scratch)

	for i, nd := range level {
		keys[i] = sortutil.Float32Key(nd.mbr.Center().Y)
	}
	for s := 0; s < count; s += slabSize {
		e := s + slabSize
		if e > count {
			e = count
		}
		sortutil.ByKey32(idx[s:e], keys, scratch)
	}

	// Apply the permutation to the level (copy out, then back in order).
	for i, j := range idx[:count] {
		reorder[i] = level[j]
	}
	copy(level, reorder[:count])
}

// Query implements core.Index with an explicit-stack traversal. Nodes
// fully contained in r report their subtree without per-point tests.
func (t *Tree) Query(r geom.Rect, emit func(id uint32)) {
	if t.root < 0 {
		return
	}
	// Worst-case occupancy is height*(fanout-1)+1; 256 covers any
	// realistic configuration (fanout <= 64, height <= 5).
	var stack [256]int32
	top := 0
	stack[top] = t.root
	top++
	for top > 0 {
		top--
		nd := &t.nodes[stack[top]]
		if nd.leaf {
			if r.ContainsRect(nd.mbr) {
				for _, id := range t.entries[nd.first : nd.first+nd.count] {
					emit(id)
				}
			} else {
				for _, id := range t.entries[nd.first : nd.first+nd.count] {
					if t.pts[id].In(r) {
						emit(id)
					}
				}
			}
			continue
		}
		for c := nd.first; c < nd.first+nd.count; c++ {
			if r.Intersects(t.nodes[c].mbr) {
				if top == len(stack) {
					// Beyond any realistic height*fanout; fall back to
					// recursion rather than overflow.
					t.queryRec(c, r, emit)
					continue
				}
				stack[top] = c
				top++
			}
		}
	}
}

func (t *Tree) queryRec(ni int32, r geom.Rect, emit func(id uint32)) {
	nd := &t.nodes[ni]
	if nd.leaf {
		for _, id := range t.entries[nd.first : nd.first+nd.count] {
			if t.pts[id].In(r) {
				emit(id)
			}
		}
		return
	}
	for c := nd.first; c < nd.first+nd.count; c++ {
		if r.Intersects(t.nodes[c].mbr) {
			t.queryRec(c, r, emit)
		}
	}
}

// QueryAppend implements core.QueryAppender: the explicit-stack
// traversal of Query with results appended into buf. A leaf fully
// contained in r contributes its entry run as one bulk copy.
//
//joinlint:hotpath
func (t *Tree) QueryAppend(r geom.Rect, buf []uint32) []uint32 {
	if t.root < 0 {
		return buf
	}
	var stack [256]int32
	top := 0
	stack[top] = t.root
	top++
	for top > 0 {
		top--
		nd := &t.nodes[stack[top]]
		if nd.leaf {
			if r.ContainsRect(nd.mbr) {
				buf = append(buf, t.entries[nd.first:nd.first+nd.count]...)
			} else {
				buf = t.appendLeafFiltered(nd, r, buf)
			}
			continue
		}
		for c := nd.first; c < nd.first+nd.count; c++ {
			if r.Intersects(t.nodes[c].mbr) {
				if top == len(stack) {
					buf = t.queryRecAppend(c, r, buf)
					continue
				}
				stack[top] = c
				top++
			}
		}
	}
	return buf
}

// appendLeafFiltered is the buffered boundary-leaf filter, branchless
// like the grid stores' (see csrStore.appendFilterCell for the sign
// trick): every entry is stored unconditionally and the write cursor
// advances by the sign bit of the containment test, so the
// unpredictable hit/miss pattern of a partially covered leaf costs no
// branch mispredictions.
//
//joinlint:hotpath
//joinlint:bce
func (t *Tree) appendLeafFiltered(nd *node, r geom.Rect, buf []uint32) []uint32 {
	seg := t.entries[nd.first : nd.first+nd.count]
	pts := t.pts
	k := len(buf)
	buf = append(buf, seg...) // reserve; survivors overwrite in place
	for _, id := range seg {
		p := pts[id]
		m := math.Float32bits(p.X-r.MinX) | math.Float32bits(r.MaxX-p.X) |
			math.Float32bits(p.Y-r.MinY) | math.Float32bits(r.MaxY-p.Y)
		buf[k] = id
		k += 1 - int(m>>31)
	}
	return buf[:k]
}

//joinlint:hotpath
func (t *Tree) queryRecAppend(ni int32, r geom.Rect, buf []uint32) []uint32 {
	nd := &t.nodes[ni]
	if nd.leaf {
		return t.appendLeafFiltered(nd, r, buf)
	}
	for c := nd.first; c < nd.first+nd.count; c++ {
		if r.Intersects(t.nodes[c].mbr) {
			buf = t.queryRecAppend(c, r, buf)
		}
	}
	return buf
}

// QueryBatch implements core.BatchQuerier (sequential append kernel;
// batching pays off through the caller's Morton ordering, which keeps
// consecutive traversals on overlapping node paths).
func (t *Tree) QueryBatch(rects []geom.Rect, offsets, buf []uint32) ([]uint32, []uint32) {
	offsets = append(offsets[:0], 0)
	buf = buf[:0]
	for _, r := range rects {
		buf = t.QueryAppend(r, buf)
		offsets = append(offsets, uint32(len(buf)))
	}
	return offsets, buf
}

// Update implements core.Index. Static category: the move is picked up by
// the next per-tick rebuild from the refreshed snapshot; nothing to do
// beyond the framework's base-table write.
func (t *Tree) Update(id uint32, old, new geom.Point) {}

// MemoryBytes implements core.MemoryReporter.
func (t *Tree) MemoryBytes() int64 {
	const nodeBytes = 28 // 4 float32 MBR + first + count + leaf flag, packed
	return int64(len(t.nodes))*nodeBytes + int64(len(t.entries))*4
}

// MBR returns the root bounding rectangle (zero Rect when empty).
func (t *Tree) MBR() geom.Rect {
	if t.root < 0 {
		return geom.Rect{}
	}
	return t.nodes[t.root].mbr
}

func pointMBR(pts []geom.Point, ids []uint32) geom.Rect {
	r := pts[ids[0]].Rect()
	for _, id := range ids[1:] {
		r = r.Stretch(pts[id])
	}
	return r
}

func resizeU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func resizeNodes(s []node, n int) []node {
	if cap(s) < n {
		return make([]node, n)
	}
	return s[:n]
}
