// This file extends the STR R-tree to extended objects: BoxTree is a
// static, bulk-loaded R-tree over MBRs implementing core.BoxIndex — the
// second real contender (after the grid family) for the box join, the
// pairing Tsitsigkos et al. study as partition-based grids vs STR-packed
// R-trees.
//
// STR over rectangles is the point packing with the sort keys widened to
// MBR centres: sort by centre-x into vertical slabs, centre-y within
// each slab, pack fanout-sized leaf runs, then tile the upper levels
// over node centres exactly like the point tree (the strTileOrder /
// strSlabSize machinery is shared, not forked). Unlike the replicating
// grids each object appears in exactly one leaf, so queries are
// duplicate-free with no reference-point test — the overlap-free-packing
// vs replication trade the window-join sweeps measure.
//
// Leaf entry MBRs are inlined in an arena parallel to the entry IDs
// (entryRects), so the query path never dereferences the base table —
// the same discipline as the classed grid — and in-place updates can
// patch coordinates without touching the retained snapshot.
package rtree

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/geom"
	"repro/internal/parutil"
	"repro/internal/sortutil"
)

// minParallelBoxTreeBuild gates the sharded build; below this population
// the fork/join overhead beats the win.
const minParallelBoxTreeBuild = 4096

// minBoxTreeBatch gates the batched update path the same way.
const minBoxTreeBatch = 2048

// BoxTree is a static, STR bulk-loaded R-tree over an MBR snapshot. It
// implements core.BoxIndex, core.BoxParallelBuilder, core.BoxBatchUpdater,
// core.Counter, and core.MemoryReporter.
//
// Between bulk loads the tree supports in-place moves by bottom-up MBR
// refit: the moved entry's inlined rectangle is patched and the exact
// MBRs of its leaf and ancestors are recomputed until one is unchanged.
// Refits keep every node MBR an exact cover of its subtree, but they do
// not re-pack, so sustained drift degrades the tiling; past a dirtiness
// threshold (one refit per object since the last load) the tree rebuilds
// itself from the patched coordinates instead.
type BoxTree struct {
	fanout int
	rects  []geom.Rect // the retained snapshot

	// entries is the permutation of object IDs in leaf order;
	// entryRects inlines each entry's current MBR next to it, and slots
	// is the inverse permutation (slots[id] = entry slot of id).
	entries    []uint32
	entryRects []geom.Rect
	slots      []uint32

	// nodes holds all tree nodes: the leaf level first (tile-reordered),
	// then each upper level; root is the last node. parents[i] is the
	// node index of i's parent (-1 for the root); leafPos[r] is the node
	// index of the leaf owning entry run r (runs are fanout-sized, so
	// run r covers entries [r*fanout, ...) — the level tiling reorders
	// leaf nodes but never the entry arena).
	nodes   []node
	parents []int32
	leafPos []int32
	root    int32
	leaves  int

	// refitted counts in-place moves since the last bulk load — the
	// dirtiness that triggers the rebuild fallback.
	refitted int

	// build scratch, reused across ticks
	scratchIDs  []uint32
	scratchKeys []uint32
	levelIdx    []uint32
	levelNodes  []node
	slabScratch [][]uint32  // per-worker slab-sort ping-pong buffers
	curScratch  []geom.Rect // rebuild materialization of patched coords
	dirtyNodes  []bool      // batched-refit worklist
}

// NewBoxTree returns a box tree with the given fanout (entries per node).
func NewBoxTree(fanout int) (*BoxTree, error) {
	if fanout < 2 {
		return nil, fmt.Errorf("rtree: fanout must be >= 2, got %d", fanout)
	}
	return &BoxTree{fanout: fanout, root: -1}, nil
}

// MustNewBoxTree is NewBoxTree for known-good fanouts; it panics on error.
func MustNewBoxTree(fanout int) *BoxTree {
	t, err := NewBoxTree(fanout)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements core.BoxIndex.
func (t *BoxTree) Name() string { return fmt.Sprintf("boxrtree-str(fanout=%d)", t.fanout) }

// Fanout returns the node capacity.
func (t *BoxTree) Fanout() int { return t.fanout }

// Len implements core.Counter.
func (t *BoxTree) Len() int { return len(t.entries) }

// Height returns the number of levels (0 for an empty tree).
func (t *BoxTree) Height() int {
	if t.root < 0 {
		return 0
	}
	h := 1
	for n := t.nodes[t.root]; !n.leaf; n = t.nodes[n.first] {
		h++
	}
	return h
}

// MBR returns the root bounding rectangle (zero Rect when empty).
func (t *BoxTree) MBR() geom.Rect {
	if t.root < 0 {
		return geom.Rect{}
	}
	return t.nodes[t.root].mbr
}

// prepare sizes the snapshot-dependent state for a bulk load and
// computes the node budget: one fully packed level per ceil-division by
// fanout, leaves first. Arenas are retained across builds, so
// steady-state builds allocate nothing.
func (t *BoxTree) prepare(rects []geom.Rect) {
	t.rects = rects
	t.refitted = 0
	n := len(rects)
	t.entries = resizeU32(t.entries, n)
	t.entryRects = resizeRects(t.entryRects, n)
	t.slots = resizeU32(t.slots, n)
	if n == 0 {
		t.nodes = t.nodes[:0]
		t.root = -1
		t.leaves = 0
		return
	}
	t.leaves = (n + t.fanout - 1) / t.fanout
	total := 0
	for c := t.leaves; ; c = (c + t.fanout - 1) / t.fanout {
		total += c
		if c == 1 {
			break
		}
	}
	t.nodes = resizeNodes(t.nodes, total)
	t.parents = resizeI32(t.parents, total)
	t.leafPos = resizeI32(t.leafPos, t.leaves)
	t.scratchIDs = resizeU32(t.scratchIDs, n)
	t.scratchKeys = resizeU32(t.scratchKeys, n)
	t.levelIdx = resizeU32(t.levelIdx, t.leaves)
	t.levelNodes = resizeNodes(t.levelNodes, t.leaves)
}

// fillKeysX/fillKeysY compute the STR sort key of objects [lo, hi):
// the order-preserving uint32 image of the MBR centre coordinate. The
// key of object i lands in scratchKeys[i] (ByKey32 keys are indexed by
// ID, so the fill shards trivially).
func (t *BoxTree) fillKeysX(rects []geom.Rect, lo, hi int) {
	for i := lo; i < hi; i++ {
		t.entries[i] = uint32(i)
		t.scratchKeys[i] = sortutil.Float32Key(rects[i].MinX + rects[i].MaxX)
	}
}

func (t *BoxTree) fillKeysY(rects []geom.Rect, lo, hi int) {
	for i := lo; i < hi; i++ {
		t.scratchKeys[i] = sortutil.Float32Key(rects[i].MinY + rects[i].MaxY)
	}
}

// packLeaves packs leaf runs [lo, hi): one sweep per leaf inlines the
// run's coordinates into the entry arena and accumulates the leaf MBR.
// Distinct leaves touch disjoint state, so the parallel build shards it.
func (t *BoxTree) packLeaves(rects []geom.Rect, lo, hi int) {
	n := len(t.entries)
	for l := lo; l < hi; l++ {
		s := l * t.fanout
		e := s + t.fanout
		if e > n {
			e = n
		}
		mbr := rects[t.entries[s]]
		t.entryRects[s] = mbr
		for k := s + 1; k < e; k++ {
			rc := rects[t.entries[k]]
			t.entryRects[k] = rc
			mbr = mbr.Union(rc)
		}
		t.nodes[l] = node{mbr: mbr, first: int32(s), count: int32(e - s), leaf: true}
	}
}

// fillSlots records the inverse permutation for entries [lo, hi).
func (t *BoxTree) fillSlots(lo, hi int) {
	for k := lo; k < hi; k++ {
		t.slots[t.entries[k]] = uint32(k)
	}
}

// packUpper tiles the upper levels over node centres until one node
// remains, then indexes the (reordered) leaf level by entry run. Upper
// levels hold ~n/fanout nodes, so this stays sequential even in the
// sharded build.
func (t *BoxTree) packUpper() {
	levelStart, levelCount := 0, t.leaves
	next := t.leaves
	for levelCount > 1 {
		level := t.nodes[levelStart : levelStart+levelCount]
		strTileOrder(level, strSlabSize(levelCount, t.fanout),
			t.levelIdx, t.scratchKeys, t.scratchIDs, t.levelNodes)
		// The reorder moved this level's records, so the parent links of
		// the level BELOW (set when this level was emitted) point at the
		// old positions; each record carries its child range, so one walk
		// re-points them.
		for p, nd := range level {
			if nd.leaf {
				break // leaf level: entries below, nothing to re-point
			}
			for c := nd.first; c < nd.first+nd.count; c++ {
				t.parents[c] = int32(levelStart + p)
			}
		}
		parent := next
		for s := 0; s < levelCount; s += t.fanout {
			e := s + t.fanout
			if e > levelCount {
				e = levelCount
			}
			mbr := level[s].mbr
			for _, nd := range level[s+1 : e] {
				mbr = mbr.Union(nd.mbr)
			}
			t.nodes[parent] = node{mbr: mbr, first: int32(levelStart + s), count: int32(e - s)}
			for c := s; c < e; c++ {
				t.parents[levelStart+c] = int32(parent)
			}
			parent++
		}
		levelStart, levelCount = next, parent-next
		next = parent
	}
	t.root = int32(levelStart)
	t.parents[t.root] = -1
	for p := 0; p < t.leaves; p++ {
		t.leafPos[int(t.nodes[p].first)/t.fanout] = int32(p)
	}
}

// Build implements core.BoxIndex with STR bulk loading over MBR centres.
func (t *BoxTree) Build(rects []geom.Rect) {
	t.prepare(rects)
	n := len(rects)
	if n == 0 {
		return
	}
	t.fillKeysX(rects, 0, n)
	sortutil.ByKey32(t.entries, t.scratchKeys, t.scratchIDs)
	t.fillKeysY(rects, 0, n)
	slabSize := strSlabSize(n, t.fanout)
	for start := 0; start < n; start += slabSize {
		end := start + slabSize
		if end > n {
			end = n
		}
		sortutil.ByKey32(t.entries[start:end], t.scratchKeys, t.scratchIDs)
	}
	t.packLeaves(rects, 0, t.leaves)
	t.fillSlots(0, n)
	t.packUpper()
}

// BuildParallel implements core.BoxParallelBuilder: the sharded variant
// of Build. The key fills, the per-slab y-sorts (disjoint sub-ranges of
// the x-sorted entry order, one ping-pong buffer per worker), the leaf
// packing, and the inverse-permutation fill all shard; the global x
// radix sort and the small upper levels stay sequential. Every sharded
// stage writes the same values to the same slots as its sequential
// counterpart, so the resulting tree is bit-identical to Build's.
func (t *BoxTree) BuildParallel(rects []geom.Rect, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(rects) < minParallelBoxTreeBuild {
		t.Build(rects)
		return
	}
	t.prepare(rects)
	n := len(rects)
	parutil.ForEachShard(n, workers, func(_, lo, hi int) {
		t.fillKeysX(rects, lo, hi)
	})
	sortutil.ByKey32(t.entries, t.scratchKeys, t.scratchIDs)
	parutil.ForEachShard(n, workers, func(_, lo, hi int) {
		t.fillKeysY(rects, lo, hi)
	})

	slabSize := strSlabSize(n, t.fanout)
	nSlabs := (n + slabSize - 1) / slabSize
	if len(t.slabScratch) < workers {
		t.slabScratch = append(t.slabScratch, make([][]uint32, workers-len(t.slabScratch))...)
	}
	for w := 0; w < workers; w++ {
		if cap(t.slabScratch[w]) < slabSize {
			t.slabScratch[w] = make([]uint32, slabSize)
		}
	}
	parutil.ForEachShard(nSlabs, workers, func(w, lo, hi int) {
		scratch := t.slabScratch[w][:cap(t.slabScratch[w])]
		for s := lo; s < hi; s++ {
			a := s * slabSize
			b := a + slabSize
			if b > n {
				b = n
			}
			sortutil.ByKey32(t.entries[a:b], t.scratchKeys, scratch)
		}
	})

	parutil.ForEachShard(t.leaves, workers, func(_, lo, hi int) {
		t.packLeaves(rects, lo, hi)
	})
	parutil.ForEachShard(n, workers, func(_, lo, hi int) {
		t.fillSlots(lo, hi)
	})
	t.packUpper()
}

// Query implements core.BoxIndex with an explicit-stack traversal over
// the inlined entry MBRs; the base table is never dereferenced. Leaves
// whose MBR is contained in r report their run without per-entry tests
// (entry rects are covered by the leaf MBR, so all intersect r). Each
// object lives in exactly one leaf, so emission is duplicate-free by
// construction.
func (t *BoxTree) Query(r geom.Rect, emit func(id uint32)) {
	if t.root < 0 {
		return
	}
	// Worst-case occupancy is height*(fanout-1)+1; 256 covers any
	// realistic configuration (fanout <= 64, height <= 5).
	var stack [256]int32
	top := 0
	stack[top] = t.root
	top++
	for top > 0 {
		top--
		nd := &t.nodes[stack[top]]
		if nd.leaf {
			if r.ContainsRect(nd.mbr) {
				for _, id := range t.entries[nd.first : nd.first+nd.count] {
					emit(id)
				}
			} else {
				for k := nd.first; k < nd.first+nd.count; k++ {
					if t.entryRects[k].Intersects(r) {
						emit(t.entries[k])
					}
				}
			}
			continue
		}
		for c := nd.first; c < nd.first+nd.count; c++ {
			if r.Intersects(t.nodes[c].mbr) {
				if top == len(stack) {
					// Beyond any realistic height*fanout; fall back to
					// recursion rather than overflow.
					t.queryRec(c, r, emit)
					continue
				}
				stack[top] = c
				top++
			}
		}
	}
}

func (t *BoxTree) queryRec(ni int32, r geom.Rect, emit func(id uint32)) {
	nd := &t.nodes[ni]
	if nd.leaf {
		for k := nd.first; k < nd.first+nd.count; k++ {
			if t.entryRects[k].Intersects(r) {
				emit(t.entries[k])
			}
		}
		return
	}
	for c := nd.first; c < nd.first+nd.count; c++ {
		if r.Intersects(t.nodes[c].mbr) {
			t.queryRec(c, r, emit)
		}
	}
}

// QueryAppend implements core.QueryAppender: the explicit-stack
// traversal of Query with results appended into buf. A leaf fully
// contained in r contributes its entry run as one bulk copy.
//
//joinlint:hotpath
func (t *BoxTree) QueryAppend(r geom.Rect, buf []uint32) []uint32 {
	if t.root < 0 {
		return buf
	}
	var stack [256]int32
	top := 0
	stack[top] = t.root
	top++
	for top > 0 {
		top--
		nd := &t.nodes[stack[top]]
		if nd.leaf {
			if r.ContainsRect(nd.mbr) {
				buf = append(buf, t.entries[nd.first:nd.first+nd.count]...)
			} else {
				buf = t.appendLeafFiltered(nd, r, buf)
			}
			continue
		}
		for c := nd.first; c < nd.first+nd.count; c++ {
			if r.Intersects(t.nodes[c].mbr) {
				if top == len(stack) {
					buf = t.queryRecAppend(c, r, buf)
					continue
				}
				stack[top] = c
				top++
			}
		}
	}
	return buf
}

// appendLeafFiltered is the buffered boundary-leaf filter, branchless
// like Tree.appendLeafFiltered: the rect-overlap test MaxX >= r.MinX &&
// MinX <= r.MaxX && MaxY >= r.MinY && MinY <= r.MaxY reduces to the OR
// of four differences' IEEE sign bits.
//
//joinlint:hotpath
//joinlint:bce
func (t *BoxTree) appendLeafFiltered(nd *node, r geom.Rect, buf []uint32) []uint32 {
	seg := t.entries[nd.first : nd.first+nd.count]
	rcs := t.entryRects[nd.first : nd.first+nd.count]
	k := len(buf)
	buf = append(buf, seg...) // reserve; survivors overwrite in place
	for j, id := range seg {
		rc := rcs[j]
		m := math.Float32bits(rc.MaxX-r.MinX) | math.Float32bits(r.MaxX-rc.MinX) |
			math.Float32bits(rc.MaxY-r.MinY) | math.Float32bits(r.MaxY-rc.MinY)
		buf[k] = id
		k += 1 - int(m>>31)
	}
	return buf[:k]
}

//joinlint:hotpath
func (t *BoxTree) queryRecAppend(ni int32, r geom.Rect, buf []uint32) []uint32 {
	nd := &t.nodes[ni]
	if nd.leaf {
		return t.appendLeafFiltered(nd, r, buf)
	}
	for c := nd.first; c < nd.first+nd.count; c++ {
		if r.Intersects(t.nodes[c].mbr) {
			buf = t.queryRecAppend(c, r, buf)
		}
	}
	return buf
}

// QueryBatch implements core.BatchQuerier (sequential append kernel; see
// Tree.QueryBatch).
func (t *BoxTree) QueryBatch(rects []geom.Rect, offsets, buf []uint32) ([]uint32, []uint32) {
	offsets = append(offsets[:0], 0)
	buf = buf[:0]
	for _, r := range rects {
		buf = t.QueryAppend(r, buf)
		offsets = append(offsets, uint32(len(buf)))
	}
	return offsets, buf
}

// refitNode recomputes node ni's exact MBR from its children (entry
// rects for a leaf, child MBRs otherwise), reporting whether it changed.
func (t *BoxTree) refitNode(ni int32) bool {
	nd := &t.nodes[ni]
	var mbr geom.Rect
	if nd.leaf {
		mbr = t.entryRects[nd.first]
		for k := nd.first + 1; k < nd.first+nd.count; k++ {
			mbr = mbr.Union(t.entryRects[k])
		}
	} else {
		mbr = t.nodes[nd.first].mbr
		for c := nd.first + 1; c < nd.first+nd.count; c++ {
			mbr = mbr.Union(t.nodes[c].mbr)
		}
	}
	if mbr == nd.mbr {
		return false
	}
	nd.mbr = mbr
	return true
}

// refitFrom recomputes exact MBRs from node ni up towards the root,
// stopping at the first unchanged node (its ancestors are exact covers
// of unchanged values, so they are still exact).
func (t *BoxTree) refitFrom(ni int32) {
	for ni >= 0 && t.refitNode(ni) {
		ni = t.parents[ni]
	}
}

// rebuildAt is the dirtiness threshold of the rebuild fallback: one
// refit per object since the last bulk load. The per-tick driver
// rebuilds every tick and never reaches it; sustained in-place update
// cycles (no interleaved Build) re-pack once drift has eroded the
// tiling.
func (t *BoxTree) rebuildAt() int { return len(t.entries) }

// rebuildFromEntries re-packs the tree from the patched entry
// coordinates: the current MBR of every object is scattered back to an
// ID-indexed scratch snapshot and bulk-loaded.
func (t *BoxTree) rebuildFromEntries(workers int) {
	cur := resizeRects(t.curScratch, len(t.entries))
	t.curScratch = cur
	for k, id := range t.entries {
		cur[id] = t.entryRects[k]
	}
	if workers > 1 {
		t.BuildParallel(cur, workers)
	} else {
		t.Build(cur)
	}
}

// Update implements core.BoxIndex: patch the moved entry's inlined MBR
// and refit its leaf and ancestors bottom-up (O(fanout * height) exact
// recomputes); past the dirtiness threshold, fall back to a rebuild.
func (t *BoxTree) Update(id uint32, old, new geom.Rect) {
	k := t.slots[id]
	t.entryRects[k] = new
	t.refitFrom(t.leafPos[int(k)/t.fanout])
	t.refitted++
	if t.refitted >= t.rebuildAt() {
		t.rebuildFromEntries(1)
	}
}

// CanBatchUpdates implements core.BoxBatchUpdater: the batched path pays
// off only for batches large enough to beat its setup.
func (t *BoxTree) CanBatchUpdates(n int) bool { return n >= minBoxTreeBatch }

// UpdateBatch implements core.BoxBatchUpdater. Coordinate patches shard
// across workers (slots are per-object, and a batch holds at most one
// move per object). The refit then runs as one bottom-up sweep: dirty
// leaves are marked, and nodes are recomputed in ascending node index
// order — children always precede parents in the arena, so each node is
// refit exactly once, after all its dirty children. MBRs are exact
// recomputes, so the final tree is the same one per-move Update calls
// produce. When the batch crosses the dirtiness threshold the refit is
// skipped entirely in favour of a sharded rebuild from the patched
// coordinates.
func (t *BoxTree) UpdateBatch(moves []geom.BoxMove, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(moves) < minBoxTreeBatch {
		for i := range moves {
			t.Update(moves[i].ID, moves[i].Old, moves[i].New)
		}
		return
	}
	parutil.ForEachShard(len(moves), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			t.entryRects[t.slots[moves[i].ID]] = moves[i].New
		}
	})
	t.refitted += len(moves)
	if t.refitted >= t.rebuildAt() {
		t.rebuildFromEntries(workers)
		return
	}

	if cap(t.dirtyNodes) < len(t.nodes) {
		t.dirtyNodes = make([]bool, len(t.nodes))
	}
	dirty := t.dirtyNodes[:len(t.nodes)]
	for i := range moves {
		dirty[t.leafPos[int(t.slots[moves[i].ID])/t.fanout]] = true
	}
	for ni := range dirty {
		if !dirty[ni] {
			continue
		}
		dirty[ni] = false
		if t.refitNode(int32(ni)) {
			if p := t.parents[ni]; p >= 0 {
				dirty[p] = true
			}
		}
	}
}

// MemoryBytes implements core.MemoryReporter: nodes, entry arena with
// inlined coordinates, inverse permutation, parent/leaf indexes, and
// retained scratch.
func (t *BoxTree) MemoryBytes() int64 {
	const nodeBytes = 28 // 4 float32 MBR + first + count + leaf flag, packed
	total := int64(len(t.nodes)) * nodeBytes
	total += int64(cap(t.entries)+cap(t.slots)) * 4
	total += int64(cap(t.entryRects)+cap(t.curScratch)) * 16
	total += int64(cap(t.parents)+cap(t.leafPos)) * 4
	total += int64(cap(t.scratchIDs)+cap(t.scratchKeys)+cap(t.levelIdx)) * 4
	total += int64(cap(t.levelNodes)) * nodeBytes
	for _, s := range t.slabScratch {
		total += int64(cap(s)) * 4
	}
	total += int64(cap(t.dirtyNodes))
	return total
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func resizeRects(s []geom.Rect, n int) []geom.Rect {
	if cap(s) < n {
		return make([]geom.Rect, n)
	}
	return s[:n]
}
