package rtree

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

// QueryAppend promises zero heap traffic per query at steady state: the
// traversal stack is a fixed array and results land in the caller's
// reused buffer. These tests run in the race-test CI job too, so the
// guarantee holds under the race detector's instrumentation.

func assertZeroAllocAppend(t *testing.T, name string, qa func(r geom.Rect, buf []uint32) []uint32, rects []geom.Rect) {
	t.Helper()
	var buf []uint32
	for _, r := range rects {
		buf = qa(r, buf[:0])
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		buf = qa(rects[i%len(rects)], buf[:0])
		i++
	})
	if allocs != 0 {
		t.Errorf("%s: QueryAppend allocates %.1f times per query at steady state, want 0", name, allocs)
	}
}

func TestTreeQueryAppendZeroAlloc(t *testing.T) {
	wcfg := workload.DefaultUniform()
	wcfg.NumPoints = 4000
	wcfg.SpaceSize = 6000
	wcfg.Ticks = 1
	gen := workload.MustNewGenerator(wcfg)
	pts := gen.Positions(nil)
	queriers := gen.Queriers()
	rects := make([]geom.Rect, 0, len(queriers))
	for _, q := range queriers {
		rects = append(rects, gen.QueryRect(q))
	}

	tr := MustNew(DefaultFanout)
	tr.Build(pts)
	assertZeroAllocAppend(t, tr.Name(), tr.QueryAppend, rects)
}

func TestBoxTreeQueryAppendZeroAlloc(t *testing.T) {
	wcfg := workload.DefaultUniformBoxes()
	wcfg.NumPoints = 4000
	wcfg.SpaceSize = 6000
	wcfg.Ticks = 1
	gen := workload.MustNewBoxGenerator(wcfg)
	boxes := gen.Rects(nil)
	queriers := gen.Queriers()
	rects := make([]geom.Rect, 0, len(queriers))
	for _, q := range queriers {
		rects = append(rects, gen.QueryRect(q))
	}

	bt := MustNewBoxTree(DefaultFanout)
	bt.Build(boxes)
	assertZeroAllocAppend(t, bt.Name(), bt.QueryAppend, rects)
}
