package rtree

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/testutil"
)

// TestAdversarialPatterns runs the shared differential suite: every
// point pattern x every adversarial query, validated against the
// brute-force oracle, across several fanouts.
func TestAdversarialPatterns(t *testing.T) {
	bounds := geom.R(0, 0, 1000, 1000)
	for _, fanout := range []int{2, 16, 64} {
		tr := MustNew(fanout)
		if f := testutil.CheckAgainstOracle(tr, uint64(fanout), 1200, bounds); f != nil {
			t.Fatalf("fanout %d: %v", fanout, f)
		}
	}
}
