package rtree

import "fmt"

// CheckInvariants implements core.InvariantChecker: the exported version
// of the STR packing audit the tests have always run, so the epoch
// publisher and the fault-injection harness can verify a tree before
// publishing it. It checks that the root is the last node, every node
// count is in (0, fanout], leaf entry runs start at fanout multiples and
// tile the entry arena exactly once, the slots/entries permutations are
// inverse, leafPos and parents agree with the arena layout, every parent
// MBR covers its children, and the root has no parent.
func (t *BoxTree) CheckInvariants() error {
	n := len(t.entries)
	if n == 0 {
		if t.root != -1 {
			return fmt.Errorf("rtree: empty tree has root %d", t.root)
		}
		return nil
	}
	if len(t.slots) != n || len(t.entryRects) != n {
		return fmt.Errorf("rtree: %d entries but %d slots, %d entryRects",
			n, len(t.slots), len(t.entryRects))
	}
	if int(t.root) != len(t.nodes)-1 {
		return fmt.Errorf("rtree: root %d is not the last node (%d nodes)", t.root, len(t.nodes))
	}
	covered := make([]uint8, n)
	leafSeen := 0
	for ni := range t.nodes {
		nd := &t.nodes[ni]
		if nd.count <= 0 || int(nd.count) > t.fanout {
			return fmt.Errorf("rtree: node %d has count %d (fanout %d)", ni, nd.count, t.fanout)
		}
		if !nd.leaf {
			for c := nd.first; c < nd.first+nd.count; c++ {
				if int(c) >= len(t.nodes) {
					return fmt.Errorf("rtree: node %d child %d beyond node arena", ni, c)
				}
				if !nd.mbr.ContainsRect(t.nodes[c].mbr) {
					return fmt.Errorf("rtree: node %d MBR %v does not cover child %d MBR %v",
						ni, nd.mbr, c, t.nodes[c].mbr)
				}
				if t.parents[c] != int32(ni) {
					return fmt.Errorf("rtree: child %d has parent %d, want %d", c, t.parents[c], ni)
				}
			}
			continue
		}
		leafSeen++
		if ni >= t.leaves {
			return fmt.Errorf("rtree: leaf node %d beyond the leaf level (%d leaves)", ni, t.leaves)
		}
		if int(nd.first)%t.fanout != 0 {
			return fmt.Errorf("rtree: leaf %d starts mid-run at entry %d", ni, nd.first)
		}
		if t.leafPos[int(nd.first)/t.fanout] != int32(ni) {
			return fmt.Errorf("rtree: leafPos[%d] = %d, want %d",
				int(nd.first)/t.fanout, t.leafPos[int(nd.first)/t.fanout], ni)
		}
		for k := nd.first; k < nd.first+nd.count; k++ {
			if int(k) >= n {
				return fmt.Errorf("rtree: leaf %d entry slot %d beyond arena", ni, k)
			}
			id := t.entries[k]
			if int(id) >= n {
				return fmt.Errorf("rtree: slot %d holds id %d beyond population %d", k, id, n)
			}
			if covered[id] != 0 {
				return fmt.Errorf("rtree: object %d appears in more than one leaf run", id)
			}
			covered[id] = 1
			if t.slots[id] != uint32(k) {
				return fmt.Errorf("rtree: slots[%d] = %d, want %d", id, t.slots[id], k)
			}
			if !nd.mbr.ContainsRect(t.entryRects[k]) {
				return fmt.Errorf("rtree: leaf %d MBR %v does not cover entry %d rect %v",
					ni, nd.mbr, id, t.entryRects[k])
			}
		}
	}
	if leafSeen != t.leaves {
		return fmt.Errorf("rtree: %d leaf nodes, want %d", leafSeen, t.leaves)
	}
	for id, c := range covered {
		if c != 1 {
			return fmt.Errorf("rtree: object %d missing from the leaf level", id)
		}
	}
	if t.parents[t.root] != -1 {
		return fmt.Errorf("rtree: root parent = %d, want -1", t.parents[t.root])
	}
	return nil
}
