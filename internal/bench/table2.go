package bench

import (
	"repro/internal/core"
	"repro/internal/crtree"
	"repro/internal/grid"
	"repro/internal/kdtrie"
	"repro/internal/rtree"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table 2 breaks the default workload (50% queries and updates, 50K
// points) into per-phase averages for the three tree-style indexes and
// the whole Simple Grid ablation chain.

func init() {
	register(Experiment{
		ID:    "tab2",
		Title: "Table 2: Breakdown — 50% queries and updates, 50K points",
		PaperShape: "grid builds are several times cheaper than tree builds; the " +
			"original grid's query time is ~5-6x the trees'; each ablation row " +
			"improves on the previous; the final +cps tuned row has the lowest " +
			"query time of all techniques",
		Run: runTable2,
	})
}

func runTable2(cfg Config) (Artifact, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	wcfg := workload.DefaultUniform()
	wcfg.Seed = cfg.Seed
	wcfg.Ticks = scaledTicks(workload.DefaultTicks, cfg)
	trace, err := workload.Record(wcfg)
	if err != nil {
		return nil, err
	}
	p := core.Params{Bounds: wcfg.Bounds(), NumPoints: wcfg.NumPoints}

	rows := []struct {
		name string
		idx  core.Index
	}{
		{"R-Tree", rtree.MustNew(rtree.DefaultFanout)},
		{"CR-Tree", crtree.MustNew(crtree.DefaultFanout)},
		{"Lin. KD-Trie", kdtrie.MustNew(p.Bounds, kdtrie.DefaultBits)},
		{"Simple Grid", grid.MustNew(grid.Original(), p.Bounds, p.NumPoints)},
		{"+restructured", grid.MustNew(grid.Restructured(), p.Bounds, p.NumPoints)},
		{"+querying", grid.MustNew(grid.Querying(), p.Bounds, p.NumPoints)},
		{"+bs tuned", grid.MustNew(grid.BSTuned(), p.Bounds, p.NumPoints)},
		{"+cps tuned", grid.MustNew(grid.CPSTuned(), p.Bounds, p.NumPoints)},
	}

	table := stats.NewTable(
		"Breakdown: 50% queries and updates, 50K points",
		"Method", "Build (s)", "Query (s)", "Update (s)",
	)
	var refPairs int64
	var refHash uint64
	for i, row := range rows {
		build, query, update, res := runBreakdown(trace, row.idx)
		if i == 0 {
			refPairs, refHash = res.Pairs, res.Hash
		} else if res.Pairs != refPairs || res.Hash != refHash {
			return nil, errDigest(row.name, rows[0].name)
		}
		table.AddRow(row.name, fmtSecs(build), fmtSecs(query), fmtSecs(update))
	}
	return table, nil
}

func errDigest(got, want string) error {
	return &digestError{got: got, want: want}
}

type digestError struct{ got, want string }

func (e *digestError) Error() string {
	return "bench: " + e.got + " join digest disagrees with " + e.want
}
