package bench

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table 3 profiles the Simple Grid before and after the
// re-implementation on the default workload. The paper reads CPU
// performance counters; here the instrumented implementations replay the
// identical workload through the memsim cache-hierarchy model (see
// DESIGN.md, substitution table).

func init() {
	register(Experiment{
		ID:    "tab3",
		Title: "Table 3: Profiling — 50% queries and updates, 50K points",
		PaperShape: "huge improvements across all counters: the paper measures " +
			"171B -> 37B instructions (4.6x), 8786M -> 1091M L1 misses (8x), " +
			"6148M -> 747M L2 (8.2x), 325M -> 67M L3 (4.9x), CPI 1.32 -> 1.13",
		Run: runTable3,
	})
}

func runTable3(cfg Config) (Artifact, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	wcfg := workload.DefaultUniform()
	wcfg.Seed = cfg.Seed
	wcfg.Ticks = scaledTicks(workload.DefaultTicks, cfg)
	trace, err := workload.Record(wcfg)
	if err != nil {
		return nil, err
	}
	hier := memsim.DefaultHierarchy()
	before, err := memsim.ProfileGrid(memsim.PaperBefore(), trace, hier, 0)
	if err != nil {
		return nil, err
	}
	after, err := memsim.ProfileGrid(memsim.PaperAfter(), trace, hier, 0)
	if err != nil {
		return nil, err
	}
	if before.Pairs != after.Pairs {
		return nil, fmt.Errorf("bench: before/after grids computed different joins (%d vs %d pairs)",
			before.Pairs, after.Pairs)
	}
	table := stats.NewTable(
		"Profiling (simulated memory hierarchy): 50% queries and updates, 50K points",
		"Simple Grid", "CPI", "Total INS", "L1 Misses", "L2 Misses", "L3 Misses",
	)
	addProfileRow(table, "Before", before.Profile)
	addProfileRow(table, "After", after.Profile)
	b, a := before.Profile, after.Profile
	table.AddRow("Ratio",
		fmt.Sprintf("%.2fx", ratio(b.CPI, a.CPI)),
		fmt.Sprintf("%.1fx", ratio(float64(b.Instructions), float64(a.Instructions))),
		fmt.Sprintf("%.1fx", ratio(float64(b.L1Misses), float64(a.L1Misses))),
		fmt.Sprintf("%.1fx", ratio(float64(b.L2Misses), float64(a.L2Misses))),
		fmt.Sprintf("%.1fx", ratio(float64(b.L3Misses), float64(a.L3Misses))),
	)
	return table, nil
}

func addProfileRow(t *stats.Table, name string, p memsim.Profile) {
	t.AddRow(name,
		fmt.Sprintf("%.2f", p.CPI),
		fmt.Sprintf("%d", p.Instructions),
		fmt.Sprintf("%d", p.L1Misses),
		fmt.Sprintf("%d", p.L2Misses),
		fmt.Sprintf("%d", p.L3Misses),
	)
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
