package bench

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestExtensionsRegistered(t *testing.T) {
	exts := AllExtensions()
	if len(exts) != 6 {
		t.Fatalf("have %d extensions, want 6", len(exts))
	}
	for _, id := range []string{"ext-mem", "ext-xy", "ext-par", "ext-handles", "ext-hilbert", "ext-csr"} {
		e, ok := ExtensionByID(id)
		if !ok {
			t.Fatalf("extension %s missing", id)
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("extension %s incomplete", id)
		}
	}
	if _, ok := ExtensionByID("ext-nope"); ok {
		t.Fatal("ExtensionByID found a ghost")
	}
	// Extensions must not leak into the paper registry.
	for _, e := range All() {
		if strings.HasPrefix(e.ID, "ext-") {
			t.Fatalf("extension %s leaked into the paper registry", e.ID)
		}
	}
}

func TestExtMemoryFootprint(t *testing.T) {
	e, _ := ExtensionByID("ext-mem")
	art, err := e.Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tb, ok := art.(*stats.Table)
	if !ok {
		t.Fatalf("artifact is %T", art)
	}
	if len(tb.RowsDat) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.RowsDat))
	}
	// Row 0 is the original, row 1 the restructured variant at the same
	// tuning: bytes/point must drop substantially (Section 3.1).
	orig, err := strconv.ParseFloat(tb.RowsDat[0][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	refac, err := strconv.ParseFloat(tb.RowsDat[1][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	if orig < 2*refac {
		t.Fatalf("restructuring saved too little: %.1f -> %.1f bytes/point", orig, refac)
	}
}

func TestExtParallelScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size data run")
	}
	e, _ := ExtensionByID("ext-par")
	art, err := e.Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	s, ok := art.(*stats.Series)
	if !ok {
		t.Fatalf("artifact is %T", art)
	}
	if len(s.Xs) < 3 || s.Xs[0] != 1 {
		t.Fatalf("worker axis = %v", s.Xs)
	}
	for _, y := range s.Lines[0].Ys {
		if y <= 0 {
			t.Fatal("non-positive tick time")
		}
	}
}

func TestExtCSR(t *testing.T) {
	e, ok := ExtensionByID("ext-csr")
	if !ok {
		t.Fatal("ext-csr missing")
	}
	// The run itself digest-checks all four configurations against each
	// other; a row count mismatch or digest divergence surfaces as err.
	art, err := e.Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tb, ok := art.(*stats.Table)
	if !ok {
		t.Fatalf("artifact is %T", art)
	}
	if len(tb.RowsDat) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.RowsDat))
	}
}

func TestExtInlineXY(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size data sweep")
	}
	e, _ := ExtensionByID("ext-xy")
	art, err := e.Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	s := art.(*stats.Series)
	if len(s.Lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(s.Lines))
	}
	if s.Line("+inline xy") == nil || s.Line("+cps tuned (ids only)") == nil {
		t.Fatal("line names wrong")
	}
}
