package bench

import (
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figure 1 tunes the ORIGINAL Simple Grid on the default uniform
// workload: (a) bucket size has no effect; (b) cells per side is
// U-shaped with the optimum at a coarse 13x13 grid.

func init() {
	register(Experiment{
		ID:    "fig1a",
		Title: "Figure 1a: Tuning Original Simple Grid — entries per bucket",
		PaperShape: "flat line: varying bs from 4 to 32 has no effect on the original " +
			"implementation (optimum bs=4)",
		Run: func(cfg Config) (Artifact, error) {
			return gridTuningSweep(cfg, tuningSweep{
				xLabel: "Entries per Bucket",
				xs:     []int{4, 8, 12, 16, 20, 24, 28, 32},
				config: func(x int) grid.Config {
					c := grid.Original()
					c.BS = x
					return c
				},
			})
		},
	})
	register(Experiment{
		ID:    "fig1b",
		Title: "Figure 1b: Tuning Original Simple Grid — grid cells per side",
		PaperShape: "U-shaped: fine grids are crippled by the full-directory scan of " +
			"Algorithm 1; optimum cps=13",
		Run: func(cfg Config) (Artifact, error) {
			return gridTuningSweep(cfg, tuningSweep{
				xLabel: "Grid cells per side",
				xs:     []int{4, 8, 13, 16, 20, 24, 28, 32},
				config: func(x int) grid.Config {
					c := grid.Original()
					c.CPS = x
					return c
				},
			})
		},
	})
	register(Experiment{
		ID:    "fig5a",
		Title: "Figure 5a: Tuning Refactored Simple Grid — entries per bucket",
		PaperShape: "bs now matters: larger buckets exploit data locality; optimum " +
			"around bs=20",
		Run: func(cfg Config) (Artifact, error) {
			return gridTuningSweep(cfg, tuningSweep{
				xLabel: "Entries per Bucket",
				xs:     []int{2, 4, 8, 12, 16, 20, 24, 28, 32},
				config: func(x int) grid.Config {
					c := grid.Querying() // structural + query refactoring applied
					c.BS = x
					return c
				},
			})
		},
	})
	register(Experiment{
		ID:    "fig5b",
		Title: "Figure 5b: Tuning Refactored Simple Grid — grid cells per side",
		PaperShape: "monotone improvement toward fine grids, flattening around the " +
			"optimum cps=64: Algorithm 2 no longer penalizes granularity",
		Run: func(cfg Config) (Artifact, error) {
			return gridTuningSweep(cfg, tuningSweep{
				xLabel: "Grid cells per side",
				xs:     []int{4, 8, 16, 32, 48, 64, 96, 128},
				config: func(x int) grid.Config {
					c := grid.Querying()
					c.BS = grid.RefactoredBS
					c.CPS = x
					return c
				},
			})
		},
	})
}

// tuningSweep describes a one-parameter sweep of a single grid variant.
type tuningSweep struct {
	xLabel string
	xs     []int
	config func(x int) grid.Config
}

func gridTuningSweep(cfg Config, sw tuningSweep) (Artifact, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	wcfg := workload.DefaultUniform()
	wcfg.Seed = cfg.Seed
	wcfg.Ticks = scaledTicks(workload.DefaultTicks, cfg)
	trace, err := workload.Record(wcfg)
	if err != nil {
		return nil, err
	}
	series := &stats.Series{
		Title:  "Avg. Time per Tick vs " + sw.xLabel,
		XLabel: sw.xLabel,
		YLabel: "Avg. Time per Tick (s)",
	}
	ys := make([]float64, 0, len(sw.xs))
	for _, x := range sw.xs {
		gc := sw.config(x)
		gc.Name = "" // derived names would all collide; sweep is one line
		g, err := grid.New(gc, wcfg.Bounds(), wcfg.NumPoints)
		if err != nil {
			return nil, err
		}
		res := core.Run(g, workload.NewPlayer(trace), core.Options{})
		series.Xs = append(series.Xs, float64(x))
		ys = append(ys, res.AvgTick().Seconds())
	}
	if err := series.AddLine("Avg. Time per Tick (s)", ys); err != nil {
		return nil, err
	}
	return series, nil
}
