package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/binsearch"
	"repro/internal/core"
	"repro/internal/crtree"
	"repro/internal/grid"
	"repro/internal/kdtrie"
	"repro/internal/rtree"
	"repro/internal/shard"
	"repro/internal/tune"
)

// NamedTechnique couples a CLI-addressable key with a description and an
// index factory, for the command-line tools.
type NamedTechnique struct {
	Key         string
	Description string
	Make        core.Factory
}

var namedTechniques = []NamedTechnique{
	{
		Key:         "brute",
		Description: "full-scan oracle (no index); correctness baseline",
		Make:        func(p core.Params) core.Index { return core.NewBruteForce() },
	},
	{
		Key:         "binsearch",
		Description: "Binary Search baseline: sort by x, binary-search the query range",
		Make:        func(p core.Params) core.Index { return binsearch.New() },
	},
	{
		Key:         "rtree",
		Description: "STR-packed R-tree (Guttman 1984 / Leutenegger et al. 1997)",
		Make:        func(p core.Params) core.Index { return rtree.MustNew(rtree.DefaultFanout) },
	},
	{
		Key:         "crtree",
		Description: "CR-tree with quantized relative MBRs (Kim et al. 2001)",
		Make:        func(p core.Params) core.Index { return crtree.MustNew(crtree.DefaultFanout) },
	},
	{
		Key:         "kdtrie",
		Description: "Linearized KD-trie / throwaway index (Dittrich et al. 2009)",
		Make:        func(p core.Params) core.Index { return kdtrie.MustNew(p.Bounds, kdtrie.DefaultBits) },
	},
	{
		Key:         "grid",
		Description: "Simple Grid, original implementation (Fig. 3a, Algorithm 1, bs=4 cps=13)",
		Make:        gridFactory(grid.Original),
	},
	{
		Key:         "grid-restructured",
		Description: "Simple Grid after the structural refactoring (Fig. 3b)",
		Make:        gridFactory(grid.Restructured),
	},
	{
		Key:         "grid-querying",
		Description: "Simple Grid after structural + query refactoring (Algorithm 2)",
		Make:        gridFactory(grid.Querying),
	},
	{
		Key:         "grid-bs",
		Description: "refactored Simple Grid with retuned bucket size (bs=20)",
		Make:        gridFactory(grid.BSTuned),
	},
	{
		Key:         "grid-tuned",
		Description: "fully tuned refactored Simple Grid (bs=20, cps=64) — the paper's winner",
		Make:        gridFactory(grid.CPSTuned),
	},
	{
		Key:         "grid-intrusive",
		Description: "ablation: intrusive-list grid with O(1) handle-based updates (u-grid design)",
		Make: func(p core.Params) core.Index {
			cfg := grid.CPSTuned()
			cfg.Layout = grid.LayoutIntrusive
			cfg.Name = "+intrusive"
			return grid.MustNew(cfg, p.Bounds, p.NumPoints)
		},
	},
	{
		Key:         "grid-csr",
		Description: "extension: tuned grid with the contiguous CSR layout (counting-sort build, dense cell segments)",
		Make:        gridFactory(grid.CSR),
	},
	{
		Key:         "grid-xy",
		Description: "extension: refactored grid with coordinates inlined in buckets",
		Make: func(p core.Params) core.Index {
			cfg := grid.CPSTuned()
			cfg.Layout = grid.LayoutInlineXY
			cfg.Name = "+inline xy"
			return grid.MustNew(cfg, p.Bounds, p.NumPoints)
		},
	},
	{
		Key:         "grid-csrxy",
		Description: "extension: CSR grid with coordinates inlined next to the IDs (no base-table dereference on filtered cells)",
		Make:        gridFactory(grid.CSRXY),
	},
	{
		Key:         "auto",
		Description: "adaptive: samples the first snapshot and picks inline/csr/csrxy + a tuned cps from a calibrated cost model (internal/tune)",
		Make:        tune.AutoFactory,
	},
	{
		Key:         "shard-auto",
		Description: "region-sharded engine: space split into per-region independently tuned indexes with parallel fan-out/merge routing (internal/shard; shard count from the tune ladder or -shards)",
		Make:        shard.AutoFactory,
	},
}

func gridFactory(preset func() grid.Config) core.Factory {
	return func(p core.Params) core.Index {
		return grid.MustNew(preset(), p.Bounds, p.NumPoints)
	}
}

// NamedBoxTechnique is NamedTechnique for the box-join (MBR) lineup.
type NamedBoxTechnique struct {
	Key         string
	Description string
	Make        core.BoxFactory
}

var namedBoxTechniques = []NamedBoxTechnique{
	{
		Key:         "boxbrute",
		Description: "full-scan box-join oracle (no index); correctness baseline",
		Make:        func(p core.Params) core.BoxIndex { return core.NewBruteForceBoxes() },
	},
	{
		Key:         "boxgrid-csr",
		Description: "CSR rectangle grid: per-cell MBR replication, counting-sort build, reference-point dedup",
		Make: func(p core.Params) core.BoxIndex {
			return grid.MustNewBoxGrid(grid.DefaultBoxCPS, p.Bounds, p.NumPoints)
		},
	},
	{
		Key:         "boxgrid-2l",
		Description: "two-layer classed rectangle grid: A/B/C/D class sub-spans, no per-candidate dedup, inlined coordinates",
		Make: func(p core.Params) core.BoxIndex {
			return grid.MustNewBoxGrid2L(grid.DefaultBoxCPS, p.Bounds, p.NumPoints)
		},
	},
	{
		Key:         "boxrtree",
		Description: "STR bulk-loaded box R-tree (Leutenegger et al. 1997): overlap-free packing, no replication, bottom-up MBR refit updates",
		Make: func(p core.Params) core.BoxIndex {
			return rtree.MustNewBoxTree(rtree.DefaultFanout)
		},
	},
	{
		Key:         "boxauto",
		Description: "adaptive: samples the first MBR snapshot and picks boxcsr/boxcsr2l/boxrtree + tuned cps or fanout from a calibrated cost model (internal/tune)",
		Make:        tune.AutoBoxFactory,
	},
	{
		Key:         "boxshard-auto",
		Description: "region-sharded box engine: per-region replicated MBRs with boundary-ownership dedup and per-region tuned inner indexes (internal/shard)",
		Make:        shard.AutoBoxFactory,
	},
}

// Layout-key parsing and structure construction shared by the
// command-line tools (spatialjoin, sweep, gridbench), so each layout —
// including "auto" — is registered exactly once.

// PointLayoutKeys lists the -layout keys NewPointLayout accepts.
func PointLayoutKeys() string {
	return "linked, inline, inline-xy, intrusive, csr, csr-xy, auto"
}

// ParsePointLayout maps a -layout key to the grid layout. Both the
// sweep spellings (inline-xy, csr-xy) and the bench-series spellings
// (inlinexy, csrxy) are accepted. "auto" is NOT a grid layout; use
// NewPointLayout for it.
func ParsePointLayout(key string) (grid.Layout, error) {
	switch key {
	case "linked":
		return grid.LayoutLinked, nil
	case "inline":
		return grid.LayoutInline, nil
	case "inline-xy", "inlinexy":
		return grid.LayoutInlineXY, nil
	case "intrusive":
		return grid.LayoutIntrusive, nil
	case "csr":
		return grid.LayoutCSR, nil
	case "csr-xy", "csrxy":
		return grid.LayoutCSRXY, nil
	default:
		return 0, fmt.Errorf("unknown layout %q (have %s)", key, PointLayoutKeys())
	}
}

// QueryKernelKeys lists the -querykernel keys ParseQueryKernel accepts.
func QueryKernelKeys() string { return "auto, emit, append, batch" }

// ParseQueryKernel maps a -querykernel key to the tick driver's query
// kernel (core.Options.Kernel). The command-line tools (sweep,
// profilegrid) all parse the flag through here so the spellings stay in
// one place; the mapping itself lives in core next to the kernels.
func ParseQueryKernel(key string) (core.QueryKernel, error) {
	return core.ParseQueryKernel(key)
}

// ParseScan maps a -scan key to the query algorithm.
func ParseScan(key string) (grid.Scan, error) {
	switch key {
	case "full":
		return grid.ScanFull, nil
	case "range":
		return grid.ScanRange, nil
	default:
		return 0, fmt.Errorf("unknown scan %q (have full, range)", key)
	}
}

// NewPointLayout constructs the point index a -layout key names: one of
// the grid layouts at the given (scan, bs, cps), or the adaptive index
// for "auto" (which tunes scan and cps itself and reads the workload
// hints from p).
func NewPointLayout(key, scan string, bs, cps int, p core.Params) (core.Index, error) {
	if key == "auto" {
		return tune.NewAuto(p), nil
	}
	lay, err := ParsePointLayout(key)
	if err != nil {
		return nil, err
	}
	sc, err := ParseScan(scan)
	if err != nil {
		return nil, err
	}
	return grid.New(grid.Config{Layout: lay, Scan: sc, BS: bs, CPS: cps}, p.Bounds, p.NumPoints)
}

// BoxLayoutKeys lists the -boxlayout keys NewBoxLayout accepts.
func BoxLayoutKeys() string { return "csr, 2l, rtree, auto" }

// KnownBoxLayout reports whether key is a valid -boxlayout key, for
// upfront flag validation.
func KnownBoxLayout(key string) bool {
	switch key {
	case "csr", "2l", "rtree", "auto":
		return true
	}
	return false
}

// NewBoxLayout constructs the box structure a -boxlayout key names.
// param is the structural parameter: grid cells-per-side for csr/2l,
// fanout for rtree; ignored by auto (which tunes its own and reads the
// workload hints from p).
func NewBoxLayout(key string, param int, p core.Params) (core.BoxIndex, error) {
	switch key {
	case "csr":
		return grid.NewBoxGrid(param, p.Bounds, p.NumPoints)
	case "2l":
		return grid.NewBoxGrid2L(param, p.Bounds, p.NumPoints)
	case "rtree":
		return rtree.NewBoxTree(param)
	case "auto":
		return tune.NewAutoBox(p), nil
	default:
		return nil, fmt.Errorf("unknown box layout %q (have %s)", key, BoxLayoutKeys())
	}
}

// BoxTechniques returns every CLI-addressable box technique, sorted by
// key.
func BoxTechniques() []NamedBoxTechnique {
	out := make([]NamedBoxTechnique, len(namedBoxTechniques))
	copy(out, namedBoxTechniques)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// BoxTechniqueByKey resolves a CLI key to its box factory.
func BoxTechniqueByKey(key string) (NamedBoxTechnique, error) {
	for _, t := range namedBoxTechniques {
		if t.Key == key {
			return t, nil
		}
	}
	keys := make([]string, 0, len(namedBoxTechniques))
	for _, t := range namedBoxTechniques {
		keys = append(keys, t.Key)
	}
	return NamedBoxTechnique{}, fmt.Errorf("unknown box technique %q (have: %s)", key, strings.Join(keys, ", "))
}

// Techniques returns every CLI-addressable technique, sorted by key.
func Techniques() []NamedTechnique {
	out := make([]NamedTechnique, len(namedTechniques))
	copy(out, namedTechniques)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// TechniqueByKey resolves a CLI key to its factory.
func TechniqueByKey(key string) (NamedTechnique, error) {
	for _, t := range namedTechniques {
		if t.Key == key {
			return t, nil
		}
	}
	keys := make([]string, 0, len(namedTechniques))
	for _, t := range namedTechniques {
		keys = append(keys, t.Key)
	}
	return NamedTechnique{}, fmt.Errorf("unknown technique %q (have: %s)", key, strings.Join(keys, ", "))
}
