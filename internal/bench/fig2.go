package bench

import (
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figure 2 compares the static-index techniques on three workload sweeps;
// Figure 4 runs the identical sweeps over the Simple Grid ablation chain.
// Both share the sweep machinery below.

func init() {
	register(Experiment{
		ID:    "fig2a",
		Title: "Figure 2a: Static indices — scaling the query rate",
		PaperShape: "Simple Grid (original) worst everywhere, above even Binary Search; " +
			"R-Tree, CR-Tree and Linearized KD-Trie cluster at the bottom; all grow " +
			"roughly linearly with the query fraction",
		Run: func(cfg Config) (Artifact, error) {
			return sweepExperiment(cfg, staticLineup(), queryRateSweep())
		},
	})
	register(Experiment{
		ID:    "fig2b",
		Title: "Figure 2b: Static indices — scaling the number of hotspots",
		PaperShape: "few hotspots mean extreme skew and large result sets: every " +
			"technique is slowest at 1 hotspot and improves as load spreads; Simple " +
			"Grid (original) stays worst across the sweep",
		Run: func(cfg Config) (Artifact, error) {
			return sweepExperiment(cfg, staticLineup(), hotspotSweep())
		},
	})
	register(Experiment{
		ID:    "fig2c",
		Title: "Figure 2c: Static indices — scaling the number of points",
		PaperShape: "costs grow superlinearly with density (result sets grow too); " +
			"Simple Grid (original) worst at every population size",
		Run: func(cfg Config) (Artifact, error) {
			return sweepExperiment(cfg, staticLineup(), pointsSweep())
		},
	})
	register(Experiment{
		ID:    "fig4a",
		Title: "Figure 4a: Simple Grid ablation — scaling the query rate",
		PaperShape: "each refinement at or below the previous line; +cps tuned lowest " +
			"(~6x below Original at the default workload)",
		Run: func(cfg Config) (Artifact, error) {
			return sweepExperiment(cfg, gridLineup(), queryRateSweep())
		},
	})
	register(Experiment{
		ID:    "fig4b",
		Title: "Figure 4b: Simple Grid ablation — scaling the number of hotspots",
		PaperShape: "same ordering under the Gaussian workload: the ablation chain " +
			"improves monotonically, +cps tuned lowest",
		Run: func(cfg Config) (Artifact, error) {
			return sweepExperiment(cfg, gridLineup(), hotspotSweep())
		},
	})
	register(Experiment{
		ID:    "fig4c",
		Title: "Figure 4c: Simple Grid ablation — scaling the number of points",
		PaperShape: "gap between Original and +cps tuned widens with population; " +
			"ordering preserved at every size",
		Run: func(cfg Config) (Artifact, error) {
			return sweepExperiment(cfg, gridLineup(), pointsSweep())
		},
	})
}

// sweep describes one x-axis of Figures 2 and 4.
type sweep struct {
	xLabel string
	xs     []float64
	// configure derives the workload for one x value.
	configure func(x float64, cfg Config) workload.Config
}

func queryRateSweep() sweep {
	return sweep{
		xLabel: "Fraction of points issuing queries",
		xs:     []float64{0.1, 0.3, 0.5, 0.7, 0.9},
		configure: func(x float64, cfg Config) workload.Config {
			w := workload.DefaultUniform()
			w.Seed = cfg.Seed
			w.Queriers = x
			w.Ticks = scaledTicks(workload.DefaultTicks, cfg)
			return w
		},
	}
}

func hotspotSweep() sweep {
	return sweep{
		xLabel: "Number of Hotspots",
		xs:     []float64{1, 10, 100, 1000},
		configure: func(x float64, cfg Config) workload.Config {
			w := workload.DefaultGaussian()
			w.Seed = cfg.Seed
			w.Hotspots = int(x)
			w.Ticks = scaledTicks(workload.DefaultGaussTicks, cfg)
			return w
		},
	}
}

func pointsSweep() sweep {
	return sweep{
		xLabel: "Num. of Points",
		xs:     []float64{10000, 30000, 50000, 70000, 90000},
		configure: func(x float64, cfg Config) workload.Config {
			w := workload.DefaultUniform()
			w.Seed = cfg.Seed
			w.NumPoints = int(x)
			w.Ticks = scaledTicks(workload.DefaultTicks, cfg)
			return w
		},
	}
}

// sweepExperiment runs every lineup technique across the sweep and
// assembles the figure's series.
func sweepExperiment(cfg Config, lineup []technique, sw sweep) (Artifact, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	series := &stats.Series{
		Title:  "Avg. Time per Tick vs " + sw.xLabel,
		XLabel: sw.xLabel,
		YLabel: "Avg. Time per Tick (s)",
		Xs:     sw.xs,
	}
	lines := make([][]float64, len(lineup))
	for i := range lines {
		lines[i] = make([]float64, len(sw.xs))
	}
	for xi, x := range sw.xs {
		secs, err := runAvgTick(sw.configure(x, cfg), lineup, cfg)
		if err != nil {
			return nil, err
		}
		for i, s := range secs {
			lines[i][xi] = s
		}
	}
	for i, tech := range lineup {
		if err := series.AddLine(tech.name, lines[i]); err != nil {
			return nil, err
		}
	}
	return series, nil
}
