package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

// The kernel digest matrix: every family must report the identical
// result set through all three query kernels — the classic per-result
// callback (Query), the buffered append (QueryAppend), and the batched
// CSR form (QueryBatch) — on contrasting workloads. Digests are
// order-insensitive (core.MixPair folds commutatively), so layouts are
// free to reorder results; they are not free to drop, duplicate, or
// invent them.

// kernelPointWorkloads returns three contrasting point snapshots:
// uniform at the default query extent, clustered (Gaussian hotspots),
// and uniform with coarse queries that cover whole cells (the regime
// where the contained-cell bulk-copy fast path actually fires).
func kernelPointWorkloads() map[string]workload.Config {
	uniform := workload.DefaultUniform()
	uniform.NumPoints = 3000
	uniform.SpaceSize = 6000
	uniform.Ticks = 1

	gauss := workload.DefaultGaussian()
	gauss.NumPoints = 3000
	gauss.SpaceSize = 6000
	gauss.Ticks = 1

	coarse := uniform
	coarse.QuerySize = 1200

	return map[string]workload.Config{"uniform": uniform, "gauss": gauss, "coarse": coarse}
}

// kernelQueries snapshots one tick's query set. Generator.Queriers()
// draws fresh randomness per call, so the matrix must capture the set
// once and replay it against every technique.
func kernelQueries(queriers []uint32, rectOf func(id uint32) geom.Rect) ([]uint32, []geom.Rect) {
	qs := append([]uint32(nil), queriers...)
	rects := make([]geom.Rect, len(qs))
	for i, q := range qs {
		rects[i] = rectOf(q)
	}
	return qs, rects
}

// kernelDigests reports the order-insensitive fold of every query
// through each of the three kernels. buf and offsets are reused across
// calls on purpose — the matrix doubles as an aliasing check for
// buffer reuse.
func kernelDigests(idx interface {
	Query(r geom.Rect, emit func(id uint32))
}, queriers []uint32, rects []geom.Rect) map[string]uint64 {
	qa := core.QueryAppendOf(idx, idx.Query)
	qb := core.QueryBatchOf(idx, idx.Query)

	var emitD uint64
	for i, q := range queriers {
		q := q
		idx.Query(rects[i], func(id uint32) { emitD = core.MixPair(emitD, q, id) })
	}

	var appendD uint64
	var buf []uint32
	for i, q := range queriers {
		buf = qa(rects[i], buf[:0])
		for _, id := range buf {
			appendD = core.MixPair(appendD, q, id)
		}
	}

	var batchD uint64
	offsets, flat := qb(rects, nil, buf[:0])
	for i, q := range queriers {
		for _, id := range flat[offsets[i]:offsets[i+1]] {
			batchD = core.MixPair(batchD, q, id)
		}
	}

	return map[string]uint64{"emit": emitD, "append": appendD, "batch": batchD}
}

func TestKernelDigestMatrixPoints(t *testing.T) {
	for wname, wcfg := range kernelPointWorkloads() {
		gen, err := workload.NewGenerator(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		pts := gen.Positions(nil)
		queriers, rects := kernelQueries(gen.Queriers(), gen.QueryRect)
		p := core.Params{Bounds: wcfg.Bounds(), NumPoints: wcfg.NumPoints}

		// The brute-force oracle anchors the whole workload: every
		// technique × kernel cell must land on this digest.
		oracle := core.NewBruteForce()
		oracle.Build(pts)
		want := kernelDigests(oracle, queriers, rects)["emit"]

		for _, tech := range Techniques() {
			idx := tech.Make(p)
			idx.Build(pts)
			for kernel, got := range kernelDigests(idx, queriers, rects) {
				if got != want {
					t.Errorf("%s/%s/%s: digest %x, oracle %x", wname, tech.Key, kernel, got, want)
				}
			}
		}
	}
}

// kernelBoxWorkloads mirrors kernelPointWorkloads for the MBR lineup.
func kernelBoxWorkloads() map[string]workload.BoxConfig {
	uniform := workload.DefaultUniformBoxes()
	uniform.NumPoints = 2500
	uniform.SpaceSize = 6000
	uniform.Ticks = 1

	gauss := workload.DefaultGaussianBoxes()
	gauss.NumPoints = 2500
	gauss.SpaceSize = 6000
	gauss.Ticks = 1

	coarse := uniform
	coarse.QuerySize = 1200

	return map[string]workload.BoxConfig{"uniform": uniform, "gauss": gauss, "coarse": coarse}
}

func TestKernelDigestMatrixBoxes(t *testing.T) {
	for wname, wcfg := range kernelBoxWorkloads() {
		gen, err := workload.NewBoxGenerator(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		boxes := gen.Rects(nil)
		queriers, rects := kernelQueries(gen.Queriers(), gen.QueryRect)
		p := core.Params{Bounds: wcfg.Bounds(), NumPoints: wcfg.NumPoints}

		oracle := core.NewBruteForceBoxes()
		oracle.Build(boxes)
		want := kernelDigests(oracle, queriers, rects)["emit"]

		for _, tech := range BoxTechniques() {
			idx := tech.Make(p)
			idx.Build(boxes)
			for kernel, got := range kernelDigests(idx, queriers, rects) {
				if got != want {
					t.Errorf("%s/%s/%s: digest %x, oracle %x", wname, tech.Key, kernel, got, want)
				}
			}
		}
	}
}

// TestDriverKernelHashesAgree runs the full tick driver under every
// forced query kernel and demands identical (pairs, hash) results: the
// kernel flag may only change speed, never answers. shard-auto routes
// queries through the parallel fan-out/merge driver, so the matrix
// covers the sequential and parallel execution paths.
func TestDriverKernelHashesAgree(t *testing.T) {
	wcfg := workload.DefaultUniform()
	wcfg.NumPoints = 3000
	wcfg.SpaceSize = 6000
	wcfg.Ticks = 2
	trace, err := workload.Record(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	kernels := []core.QueryKernel{core.KernelAuto, core.KernelEmit, core.KernelAppend, core.KernelBatch}
	for _, key := range []string{"grid-csr", "auto", "shard-auto"} {
		tech, err := TechniqueByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		var wantPairs int64
		var wantHash uint64
		for i, kernel := range kernels {
			idx := tech.Make(core.Params{Bounds: wcfg.Bounds(), NumPoints: wcfg.NumPoints})
			res := core.Run(idx, workload.NewPlayer(trace), core.Options{Kernel: kernel})
			if i == 0 {
				wantPairs, wantHash = res.Pairs, res.Hash
				continue
			}
			if res.Pairs != wantPairs || res.Hash != wantHash {
				t.Errorf("%s kernel=%s: pairs=%d hash=%x, want pairs=%d hash=%x",
					key, kernel, res.Pairs, res.Hash, wantPairs, wantHash)
			}
		}
	}
}
