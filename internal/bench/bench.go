// Package bench is the experiment harness: one registered experiment per
// table and figure of the paper's evaluation, each regenerating the same
// rows or series the paper reports (as text tables and CSV rather than
// plots).
//
// Experiments run at a configurable Scale. Scale 1.0 uses the paper's
// exact parameters (Table 1); smaller scales shorten the runs by reducing
// the tick count while leaving the data sizes — and therefore the cache
// behaviour the paper is about — untouched.
package bench

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/binsearch"
	"repro/internal/core"
	"repro/internal/crtree"
	"repro/internal/grid"
	"repro/internal/kdtrie"
	"repro/internal/rtree"
	"repro/internal/workload"
)

// Config controls an experiment run.
type Config struct {
	// Scale in (0, 1] multiplies the per-experiment tick counts. 1.0
	// reproduces the paper's runs; 0.1 gives a quick pass with identical
	// data sizes.
	Scale float64
	// Seed feeds the workload generator; the paper's comparisons hold
	// for any fixed seed.
	Seed uint64
	// Parallel switches the driver to RunParallel with GOMAXPROCS
	// workers, parallelizing the whole tick (snapshot refresh, build
	// and update for indexes with parallel paths, and the query phase).
	// Off for paper-faithful single-threaded runs.
	Parallel bool
}

// DefaultConfig runs quickly while preserving all data sizes.
func DefaultConfig() Config { return Config{Scale: 0.1, Seed: 1} }

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	if c.Scale <= 0 || c.Scale > 1 {
		return fmt.Errorf("bench: scale must be in (0,1], got %g", c.Scale)
	}
	return nil
}

// Artifact is what an experiment produces: a stats.Series or stats.Table.
type Artifact interface {
	Format() string
	CSV() string
}

// Experiment regenerates one table or figure.
type Experiment struct {
	// ID is the experiment key (e.g. "fig2a", "tab3").
	ID string
	// Title names the artifact as the paper does.
	Title string
	// PaperShape states the qualitative result the paper reports, which
	// EXPERIMENTS.md checks the regenerated artifact against.
	PaperShape string
	// Run executes the experiment.
	Run func(cfg Config) (Artifact, error)
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns every experiment in paper order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

// order fixes paper order: figures 1, 2, table 2, figure 4, 5, table 3.
func order(id string) int {
	for i, k := range []string{"fig1a", "fig1b", "fig2a", "fig2b", "fig2c", "tab2", "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "tab3"} {
		if k == id {
			return i
		}
	}
	return 100
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// scaledTicks applies the run scale to a paper tick count, keeping at
// least two ticks so averages remain meaningful.
func scaledTicks(paper int, cfg Config) int {
	t := int(float64(paper)*cfg.Scale + 0.5)
	if t < 2 {
		t = 2
	}
	if t > paper {
		t = paper
	}
	return t
}

// technique couples a display name with an index factory.
type technique struct {
	name string
	make core.Factory
}

// staticLineup is the paper's Figure 2 lineup: the Binary Search baseline
// plus the four static indexes, with Simple Grid in its original
// implementation.
func staticLineup() []technique {
	return []technique{
		{"Binary Search", func(p core.Params) core.Index { return binsearch.New() }},
		{"R-Tree", func(p core.Params) core.Index { return rtree.MustNew(rtree.DefaultFanout) }},
		{"CR-Tree", func(p core.Params) core.Index { return crtree.MustNew(crtree.DefaultFanout) }},
		{"Linearized KD-Trie", func(p core.Params) core.Index { return kdtrie.MustNew(p.Bounds, kdtrie.DefaultBits) }},
		{"Simple Grid", func(p core.Params) core.Index { return grid.MustNew(grid.Original(), p.Bounds, p.NumPoints) }},
	}
}

// gridLineup is the Figure 4 lineup: the ablation chain of Simple Grid
// implementations. The paper labels the first line "Original".
func gridLineup() []technique {
	names := []string{"Original", "+restructured", "+querying", "+bs tuned", "+cps tuned"}
	out := make([]technique, 0, 5)
	for i, gc := range grid.AblationChain() {
		gc := gc
		out = append(out, technique{names[i], func(p core.Params) core.Index {
			return grid.MustNew(gc, p.Bounds, p.NumPoints)
		}})
	}
	return out
}

// runAvgTick materializes the workload once and measures each technique's
// average wall time per tick on the identical trace, returning seconds in
// lineup order. All runs are verified to produce the same join digest —
// an experiment whose techniques disagree is aborted.
func runAvgTick(wcfg workload.Config, lineup []technique, cfg Config) ([]float64, error) {
	trace, err := workload.Record(wcfg)
	if err != nil {
		return nil, err
	}
	secs := make([]float64, len(lineup))
	var refPairs int64
	var refHash uint64
	for i, tech := range lineup {
		idx := tech.make(core.Params{Bounds: wcfg.Bounds(), NumPoints: wcfg.NumPoints})
		var res *core.Result
		if cfg.Parallel {
			res = core.RunParallel(idx, workload.NewPlayer(trace), core.Options{}, 0)
		} else {
			res = core.Run(idx, workload.NewPlayer(trace), core.Options{})
		}
		if i == 0 {
			refPairs, refHash = res.Pairs, res.Hash
		} else if res.Pairs != refPairs || res.Hash != refHash {
			return nil, fmt.Errorf("bench: %s join digest (%d, %#x) disagrees with %s (%d, %#x)",
				tech.name, res.Pairs, res.Hash, lineup[0].name, refPairs, refHash)
		}
		secs[i] = res.AvgTick().Seconds()
	}
	return secs, nil
}

// runBreakdown measures one technique's per-phase averages.
func runBreakdown(trace *workload.Trace, idx core.Index) (build, query, update float64, res *core.Result) {
	res = core.Run(idx, workload.NewPlayer(trace), core.Options{})
	return res.AvgBuild().Seconds(), res.AvgQuery().Seconds(), res.AvgUpdate().Seconds(), res
}

// fmtSecs renders seconds the way the paper's tables do.
func fmtSecs(s float64) string { return fmt.Sprintf("%.4f", s) }

// fmtDur renders a duration in seconds.
func fmtDur(d time.Duration) string { return fmtSecs(d.Seconds()) }
