package bench

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// tiny returns the fastest config that still exercises full-size data
// (scale only shrinks tick counts, never data sizes).
func tiny() Config { return Config{Scale: 0.02, Seed: 1} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1a", "fig1b", "fig2a", "fig2b", "fig2c",
		"tab2", "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "tab3",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("position %d: %s, want %s (paper order)", i, all[i].ID, id)
		}
	}
	for _, e := range all {
		if e.Title == "" || e.PaperShape == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
		if _, ok := ByID(e.ID); !ok {
			t.Errorf("%s: ByID lookup failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID found a non-existent experiment")
	}
}

func TestConfigValidate(t *testing.T) {
	for _, s := range []float64{0, -1, 1.5} {
		if err := (Config{Scale: s}).Validate(); err == nil {
			t.Errorf("scale %g accepted", s)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScaledTicks(t *testing.T) {
	cfg := Config{Scale: 0.1}
	if got := scaledTicks(100, cfg); got != 10 {
		t.Fatalf("scaledTicks(100, 0.1) = %d", got)
	}
	if got := scaledTicks(100, Config{Scale: 0.001}); got != 2 {
		t.Fatalf("minimum must be 2 ticks, got %d", got)
	}
	if got := scaledTicks(100, Config{Scale: 1}); got != 100 {
		t.Fatalf("full scale must keep all ticks, got %d", got)
	}
}

func TestLineups(t *testing.T) {
	sl := staticLineup()
	if len(sl) != 5 {
		t.Fatalf("static lineup has %d techniques", len(sl))
	}
	wantStatic := []string{"Binary Search", "R-Tree", "CR-Tree", "Linearized KD-Trie", "Simple Grid"}
	for i, tech := range sl {
		if tech.name != wantStatic[i] {
			t.Errorf("static[%d] = %s, want %s", i, tech.name, wantStatic[i])
		}
	}
	gl := gridLineup()
	wantGrid := []string{"Original", "+restructured", "+querying", "+bs tuned", "+cps tuned"}
	for i, tech := range gl {
		if tech.name != wantGrid[i] {
			t.Errorf("grid[%d] = %s, want %s", i, tech.name, wantGrid[i])
		}
	}
}

func TestFig1aRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size data sweep")
	}
	e, _ := ByID("fig1a")
	art, err := e.Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	s, ok := art.(*stats.Series)
	if !ok {
		t.Fatalf("fig1a artifact is %T, want *stats.Series", art)
	}
	if len(s.Xs) != 8 || len(s.Lines) != 1 {
		t.Fatalf("fig1a shape: %d xs, %d lines", len(s.Xs), len(s.Lines))
	}
	for _, y := range s.Lines[0].Ys {
		if y <= 0 {
			t.Fatal("non-positive tick time")
		}
	}
	if !strings.Contains(art.Format(), "Entries per Bucket") {
		t.Fatal("Format missing axis label")
	}
	if !strings.Contains(art.CSV(), ",") {
		t.Fatal("CSV malformed")
	}
}

func TestTab2Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size data run")
	}
	e, _ := ByID("tab2")
	art, err := e.Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tb, ok := art.(*stats.Table)
	if !ok {
		t.Fatalf("tab2 artifact is %T, want *stats.Table", art)
	}
	if len(tb.RowsDat) != 8 {
		t.Fatalf("tab2 has %d rows, want 8", len(tb.RowsDat))
	}
	out := art.Format()
	for _, name := range []string{"R-Tree", "CR-Tree", "Lin. KD-Trie", "Simple Grid",
		"+restructured", "+querying", "+bs tuned", "+cps tuned"} {
		if !strings.Contains(out, name) {
			t.Fatalf("tab2 missing row %q:\n%s", name, out)
		}
	}
}

func TestFig4aOrderingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size data sweep")
	}
	// The paper's central claim at the default workload column (x=0.5):
	// the final +cps tuned variant must be several times faster than the
	// Original, and the refinements must not make things dramatically
	// worse at any step.
	e, _ := ByID("fig4a")
	art, err := e.Run(Config{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := art.(*stats.Series)
	orig := s.Line("Original")
	final := s.Line("+cps tuned")
	if orig == nil || final == nil {
		t.Fatal("fig4a lines missing")
	}
	// Column index of x=0.5 (default workload).
	xi := -1
	for i, x := range s.Xs {
		if x == 0.5 {
			xi = i
		}
	}
	if xi < 0 {
		t.Fatal("x=0.5 column missing")
	}
	if final.Ys[xi]*2 > orig.Ys[xi] {
		t.Errorf("+cps tuned (%.4fs) must be >= 2x faster than Original (%.4fs) at the default workload",
			final.Ys[xi], orig.Ys[xi])
	}
	for _, l := range s.Lines {
		for i, y := range l.Ys {
			if y <= 0 {
				t.Fatalf("%s has non-positive time at x=%g", l.Name, s.Xs[i])
			}
		}
	}
}

func TestTab3Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size memory simulation")
	}
	e, _ := ByID("tab3")
	art, err := e.Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tb := art.(*stats.Table)
	if len(tb.RowsDat) != 3 { // Before, After, Ratio
		t.Fatalf("tab3 has %d rows", len(tb.RowsDat))
	}
	out := art.Format()
	for _, want := range []string{"Before", "After", "CPI", "L1 Misses"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tab3 missing %q:\n%s", want, out)
		}
	}
}

func TestSweepDefinitions(t *testing.T) {
	q := queryRateSweep()
	if len(q.xs) != 5 || q.xs[0] != 0.1 || q.xs[4] != 0.9 {
		t.Fatalf("query rate sweep = %v", q.xs)
	}
	h := hotspotSweep()
	if len(h.xs) != 4 || h.xs[0] != 1 || h.xs[3] != 1000 {
		t.Fatalf("hotspot sweep = %v", h.xs)
	}
	p := pointsSweep()
	if len(p.xs) != 5 || p.xs[0] != 10000 || p.xs[4] != 90000 {
		t.Fatalf("points sweep = %v", p.xs)
	}
	// Each sweep's workload must validate at every x.
	cfg := tiny()
	for _, sw := range []sweep{q, h, p} {
		for _, x := range sw.xs {
			w := sw.configure(x, cfg)
			if err := w.Validate(); err != nil {
				t.Fatalf("%s at x=%g: %v", sw.xLabel, x, err)
			}
		}
	}
}

func TestRunAvgTickRejectsBadScale(t *testing.T) {
	e, _ := ByID("fig2a")
	if _, err := e.Run(Config{Scale: 0}); err == nil {
		t.Fatal("invalid scale accepted")
	}
}
