package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

// lossyIndex wraps the oracle but drops every 100th result — the kind of
// subtle bug the harness's digest cross-check exists to catch.
type lossyIndex struct {
	inner core.Index
	n     int
}

func (l *lossyIndex) Name() string                      { return "lossy" }
func (l *lossyIndex) Build(pts []geom.Point)            { l.inner.Build(pts) }
func (l *lossyIndex) Update(id uint32, o, n geom.Point) {}
func (l *lossyIndex) Query(r geom.Rect, emit func(id uint32)) {
	l.inner.Query(r, func(id uint32) {
		l.n++
		if l.n%100 == 0 {
			return
		}
		emit(id)
	})
}

func TestRunAvgTickCatchesWrongResults(t *testing.T) {
	wcfg := workload.DefaultUniform()
	wcfg.NumPoints = 2000
	wcfg.SpaceSize = 4000
	wcfg.Ticks = 2
	lineup := []technique{
		{"oracle", func(p core.Params) core.Index { return core.NewBruteForce() }},
		{"lossy", func(p core.Params) core.Index { return &lossyIndex{inner: core.NewBruteForce()} }},
	}
	_, err := runAvgTick(wcfg, lineup, Config{Scale: 1, Seed: 1})
	if err == nil {
		t.Fatal("lossy technique slipped past the digest check")
	}
	if !strings.Contains(err.Error(), "lossy") {
		t.Fatalf("error does not name the culprit: %v", err)
	}
}

func TestDigestErrorMessage(t *testing.T) {
	err := errDigest("A", "B")
	if !strings.Contains(err.Error(), "A") || !strings.Contains(err.Error(), "B") {
		t.Fatalf("digest error unhelpful: %v", err)
	}
}
