package bench

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/kdtrie"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Extension experiments go beyond the paper's artifacts: ablations of
// design choices DESIGN.md calls out and the parallel-query extension.
// They live in their own registry so the paper registry keeps exactly
// one entry per published table/figure.

var extensions []Experiment

func registerExt(e Experiment) { extensions = append(extensions, e) }

// AllExtensions returns the beyond-paper experiments.
func AllExtensions() []Experiment {
	out := make([]Experiment, len(extensions))
	copy(out, extensions)
	return out
}

// ExtensionByID returns the extension experiment with the given ID.
func ExtensionByID(id string) (Experiment, bool) {
	for _, e := range extensions {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func init() {
	registerExt(Experiment{
		ID:    "ext-mem",
		Title: "Extension: per-point memory footprint of the grid layouts (Section 3.1 analysis)",
		PaperShape: "the paper derives 32 extra bytes/point for the original structure at " +
			"bs=4 and 12 bytes/point after restructuring; the Go constants differ " +
			"(documented in internal/grid) but the large reduction must hold",
		Run: runMemoryFootprint,
	})
	registerExt(Experiment{
		ID:    "ext-xy",
		Title: "Extension: inlining coordinates into buckets (the refinement Section 3.1 declines)",
		PaperShape: "storing x,y next to the IDs removes the base-table dereference on " +
			"filtered cells; the paper predicts a further gain but keeps the " +
			"secondary-index assumption instead",
		Run: runInlineXY,
	})
	registerExt(Experiment{
		ID:    "ext-par",
		Title: "Extension: parallel query phase (beyond the single-threaded study)",
		PaperShape: "not in the paper (single-threaded study); the static index is " +
			"immutable during the query phase, so queriers partition across cores",
		Run: runParallelScaling,
	})
	registerExt(Experiment{
		ID:    "ext-handles",
		Title: "Extension: update cost by grid layout — bucketed removal vs O(1) handles",
		PaperShape: "explains the Table 2 update-column deviation documented in " +
			"EXPERIMENTS.md: the original framework's grid updates were ~116ns, " +
			"implying O(1) node handles (the u-grid design of reference [8]); the " +
			"intrusive layout reproduces that, the pure Figure 3a layout pays a " +
			"list search",
		Run: runHandleAblation,
	})
	registerExt(Experiment{
		ID:    "ext-csr",
		Title: "Extension: CSR (contiguous counting-sort) layout vs inline buckets, sequential and parallel",
		PaperShape: "not in the paper; related work (Tsitsigkos et al.) shows a " +
			"partition-based contiguous layout built by counting sort beats " +
			"chained buckets — dense cell segments remove pointer chasing from " +
			"queries and the build shards across cores",
		Run: runCSRAblation,
	})
	registerExt(Experiment{
		ID:    "ext-hilbert",
		Title: "Extension: KD-trie linearization — Z-order vs Hilbert curve",
		PaperShape: "not in the paper; the kd-split derivation yields Z-order, the " +
			"Hilbert curve is the better-locality alternative — measured, Hilbert " +
			"loses ~20-45%: its iterative encode dominates the rebuild-every-tick " +
			"regime while per-cell binary search hides the locality gain",
		Run: runHilbertAblation,
	})
}

// runHandleAblation measures the per-phase breakdown of three grid
// layouts at identical tuning, isolating the update path: the pure
// Figure 3a linked layout (list-search removal), the refactored inline
// layout (head-fill removal), and the intrusive handle layout (O(1)
// unlink).
func runHandleAblation(cfg Config) (Artifact, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	wcfg := workload.DefaultUniform()
	wcfg.Seed = cfg.Seed
	wcfg.Ticks = scaledTicks(workload.DefaultTicks, cfg)
	trace, err := workload.Record(wcfg)
	if err != nil {
		return nil, err
	}
	layouts := []grid.Config{
		{Name: "linked (Fig. 3a)", Layout: grid.LayoutLinked, Scan: grid.ScanRange, BS: grid.OriginalBS, CPS: grid.OriginalCPS},
		{Name: "inline (Fig. 3b)", Layout: grid.LayoutInline, Scan: grid.ScanRange, BS: grid.OriginalBS, CPS: grid.OriginalCPS},
		{Name: "intrusive handles", Layout: grid.LayoutIntrusive, Scan: grid.ScanRange, BS: grid.OriginalBS, CPS: grid.OriginalCPS},
	}
	table := stats.NewTable(
		"Update-path ablation at bs=4, cps=13 (Algorithm 2 queries)",
		"Layout", "Build (s)", "Query (s)", "Update (s)",
	)
	var refPairs int64
	var refHash uint64
	for i, lc := range layouts {
		g, err := grid.New(lc, wcfg.Bounds(), wcfg.NumPoints)
		if err != nil {
			return nil, err
		}
		build, query, update, res := runBreakdown(trace, g)
		if i == 0 {
			refPairs, refHash = res.Pairs, res.Hash
		} else if res.Pairs != refPairs || res.Hash != refHash {
			return nil, errDigest(lc.Name, layouts[0].Name)
		}
		table.AddRow(lc.Name, fmtSecs(build), fmtSecs(query), fmtSecs(update))
	}
	return table, nil
}

// runCSRAblation measures the per-phase breakdown of the tuned inline
// grid against the CSR layout, sequentially and with the fully parallel
// tick pipeline (sharded build, Morton-scheduled queries, batched
// updates), verifying all four runs agree on the join digest.
func runCSRAblation(cfg Config) (Artifact, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	wcfg := workload.DefaultUniform()
	wcfg.Seed = cfg.Seed
	wcfg.Ticks = scaledTicks(workload.DefaultTicks, cfg)
	trace, err := workload.Record(wcfg)
	if err != nil {
		return nil, err
	}
	rows := []struct {
		name     string
		gc       grid.Config
		parallel bool
	}{
		{"inline (bs=20, cps=64)", grid.CPSTuned(), false},
		{"csr (cps=64)", grid.CSR(), false},
		{"inline, parallel ticks", grid.CPSTuned(), true},
		{"csr, parallel ticks", grid.CSR(), true},
	}
	table := stats.NewTable(
		"CSR layout vs inline buckets at cps=64 (sequential and parallel tick pipeline)",
		"Configuration", "Build (s)", "Query (s)", "Update (s)",
	)
	var refPairs int64
	var refHash uint64
	for i, row := range rows {
		g, err := grid.New(row.gc, wcfg.Bounds(), wcfg.NumPoints)
		if err != nil {
			return nil, err
		}
		var res *core.Result
		if row.parallel {
			res = core.RunParallel(g, workload.NewPlayer(trace), core.Options{}, 0)
		} else {
			res = core.Run(g, workload.NewPlayer(trace), core.Options{})
		}
		if i == 0 {
			refPairs, refHash = res.Pairs, res.Hash
		} else if res.Pairs != refPairs || res.Hash != refHash {
			return nil, errDigest(row.name, rows[0].name)
		}
		table.AddRow(row.name,
			fmtSecs(res.AvgBuild().Seconds()),
			fmtSecs(res.AvgQuery().Seconds()),
			fmtSecs(res.AvgUpdate().Seconds()))
	}
	return table, nil
}

// runHilbertAblation compares the two linearizations across the
// query-rate sweep.
func runHilbertAblation(cfg Config) (Artifact, error) {
	lineup := []technique{
		{"Z-order", func(p core.Params) core.Index {
			return kdtrie.MustNewWithCurve(p.Bounds, kdtrie.DefaultBits, kdtrie.CurveZOrder)
		}},
		{"Hilbert", func(p core.Params) core.Index {
			return kdtrie.MustNewWithCurve(p.Bounds, kdtrie.DefaultBits, kdtrie.CurveHilbert)
		}},
	}
	return sweepExperiment(cfg, lineup, queryRateSweep())
}

// runMemoryFootprint builds each layout over the default population and
// reports measured bytes per point next to the analytical footprint.
func runMemoryFootprint(cfg Config) (Artifact, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	wcfg := workload.DefaultUniform()
	wcfg.Seed = cfg.Seed
	gen, err := workload.NewGenerator(wcfg)
	if err != nil {
		return nil, err
	}
	pts := gen.Positions(nil)

	table := stats.NewTable(
		fmt.Sprintf("Grid memory footprint over %d points", len(pts)),
		"Configuration", "Total Bytes", "Bytes/Point", "Directory Bytes",
	)
	for _, gc := range []grid.Config{
		grid.Original(),
		grid.Restructured(),
		grid.BSTuned(),
		grid.CPSTuned(),
	} {
		g, err := grid.New(gc, wcfg.Bounds(), wcfg.NumPoints)
		if err != nil {
			return nil, err
		}
		g.Build(pts)
		total := g.MemoryBytes()
		var dirBytes int64
		if gc.Layout == grid.LayoutLinked {
			dirBytes = int64(gc.CPS * gc.CPS * 16)
		} else {
			dirBytes = int64(gc.CPS * gc.CPS * 4)
		}
		table.AddRow(
			gc.DisplayName(),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%.1f", float64(total)/float64(len(pts))),
			fmt.Sprintf("%d", dirBytes),
		)
	}
	return table, nil
}

// runInlineXY compares the adopted IDs-only refactored grid with the
// coordinates-inlined variant across the query-rate sweep.
func runInlineXY(cfg Config) (Artifact, error) {
	xy := grid.CPSTuned()
	xy.Layout = grid.LayoutInlineXY
	xy.Name = "+inline xy"
	lineup := []technique{
		{"+cps tuned (ids only)", gridFactory(grid.CPSTuned)},
		{"+inline xy", func(p core.Params) core.Index {
			return grid.MustNew(xy, p.Bounds, p.NumPoints)
		}},
	}
	return sweepExperiment(cfg, lineup, queryRateSweep())
}

// runParallelScaling measures the tuned grid's per-tick time at 1, 2, 4
// and GOMAXPROCS workers on the default workload.
func runParallelScaling(cfg Config) (Artifact, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	wcfg := workload.DefaultUniform()
	wcfg.Seed = cfg.Seed
	wcfg.Ticks = scaledTicks(workload.DefaultTicks, cfg)
	trace, err := workload.Record(wcfg)
	if err != nil {
		return nil, err
	}
	workerCounts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		workerCounts = append(workerCounts, p)
	}
	series := &stats.Series{
		Title:  "Parallel query phase: tuned Simple Grid",
		XLabel: "workers",
		YLabel: "Avg. Time per Tick (s)",
	}
	var ys []float64
	var refPairs int64
	var refHash uint64
	for i, w := range workerCounts {
		idx := grid.MustNew(grid.CPSTuned(), wcfg.Bounds(), wcfg.NumPoints)
		res := core.RunParallel(idx, workload.NewPlayer(trace), core.Options{}, w)
		if i == 0 {
			refPairs, refHash = res.Pairs, res.Hash
		} else if res.Pairs != refPairs || res.Hash != refHash {
			return nil, fmt.Errorf("bench: parallel run with %d workers changed the join result", w)
		}
		series.Xs = append(series.Xs, float64(w))
		ys = append(ys, res.AvgTick().Seconds())
	}
	if err := series.AddLine("Avg. Time per Tick (s)", ys); err != nil {
		return nil, err
	}
	return series, nil
}
