package binsearch

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/xrand"
)

var testBounds = geom.R(0, 0, 1000, 1000)

func randomPoints(r *xrand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(r.Range(0, 1000), r.Range(0, 1000))
	}
	return pts
}

func bruteQuery(pts []geom.Point, r geom.Rect) map[uint32]bool {
	want := make(map[uint32]bool)
	for i := range pts {
		if pts[i].In(r) {
			want[uint32(i)] = true
		}
	}
	return want
}

func collect(t *testing.T, ix *Index, r geom.Rect) map[uint32]bool {
	t.Helper()
	got := make(map[uint32]bool)
	ix.Query(r, func(id uint32) {
		if got[id] {
			t.Fatalf("duplicate emission of %d", id)
		}
		got[id] = true
	})
	return got
}

func TestQueryMatchesBruteForce(t *testing.T) {
	r := xrand.New(1)
	for _, n := range []int{0, 1, 2, 100, 5000} {
		pts := randomPoints(r, n)
		ix := New()
		ix.Build(pts)
		if ix.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, ix.Len())
		}
		for i := 0; i < 40; i++ {
			q := geom.Square(geom.Pt(r.Range(-50, 1050), r.Range(-50, 1050)), r.Range(1, 400))
			got := collect(t, ix, q)
			want := bruteQuery(pts, q)
			if len(got) != len(want) {
				t.Fatalf("n=%d query %d: got %d want %d", n, i, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("n=%d query %d: missing %d", n, i, id)
				}
			}
		}
	}
}

func TestSortedByX(t *testing.T) {
	r := xrand.New(2)
	pts := randomPoints(r, 3000)
	ix := New()
	ix.Build(pts)
	for i := 1; i < len(ix.ids); i++ {
		if pts[ix.ids[i-1]].X > pts[ix.ids[i]].X {
			t.Fatalf("not sorted by x at %d", i)
		}
		if ix.xs[i-1] > ix.xs[i] {
			t.Fatalf("key array not sorted at %d", i)
		}
	}
}

func TestNarrowXSlice(t *testing.T) {
	// A query that is tall and narrow exercises the x-range scan: only
	// points within the x band should even be touched.
	pts := []geom.Point{
		geom.Pt(100, 500), geom.Pt(200, 500), geom.Pt(300, 500),
		geom.Pt(200, 100), geom.Pt(200, 900),
	}
	ix := New()
	ix.Build(pts)
	got := collect(t, ix, geom.R(150, 0, 250, 1000))
	if len(got) != 3 || !got[1] || !got[3] || !got[4] {
		t.Fatalf("narrow slice got %v, want {1,3,4}", got)
	}
}

func TestRebuildDiscardsOldPoints(t *testing.T) {
	r := xrand.New(3)
	ix := New()
	ix.Build(randomPoints(r, 1000))
	ix.Build(randomPoints(r, 5))
	if got := collect(t, ix, testBounds); len(got) != 5 {
		t.Fatalf("rebuild leaked: %d", len(got))
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := New()
	ix.Build(nil)
	n := 0
	ix.Query(testBounds, func(uint32) { n++ })
	if n != 0 {
		t.Fatal("empty index emitted results")
	}
}

func TestColocated(t *testing.T) {
	same := make([]geom.Point, 77)
	for i := range same {
		same[i] = geom.Pt(400, 400)
	}
	ix := New()
	ix.Build(same)
	if got := collect(t, ix, geom.Square(geom.Pt(400, 400), 2)); len(got) != 77 {
		t.Fatalf("colocated: %d of 77", len(got))
	}
}

func TestPropQueryNeverMissesKnownPoint(t *testing.T) {
	r := xrand.New(4)
	pts := randomPoints(r, 600)
	ix := New()
	ix.Build(pts)
	f := func(idx uint16, side float32) bool {
		id := uint32(idx) % uint32(len(pts))
		if math.IsNaN(float64(side)) || math.IsInf(float64(side), 0) {
			return true
		}
		if side < 0 {
			side = -side
		}
		side = 1 + float32(math.Mod(float64(side), 500))
		found := false
		ix.Query(geom.Square(pts[id], side), func(got uint32) {
			if got == id {
				found = true
			}
		})
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateNoOp(t *testing.T) {
	r := xrand.New(5)
	pts := randomPoints(r, 100)
	ix := New()
	ix.Build(pts)
	before := len(collect(t, ix, testBounds))
	ix.Update(0, pts[0], geom.Pt(1, 1))
	if after := len(collect(t, ix, testBounds)); after != before {
		t.Fatal("Update changed a per-tick-sorted baseline")
	}
}
