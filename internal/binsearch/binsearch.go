// Package binsearch implements the study's baseline technique, Binary
// Search: the data points are sorted by one coordinate, and the join is
// computed with a nested loop that binary-searches the sorted coordinate
// for each query and scans the matching x-range, filtering on y.
//
// The paper highlights that the original Simple Grid implementation fell
// behind even this baseline — which is what makes the baseline worth
// keeping around.
package binsearch

import (
	"repro/internal/geom"
	"repro/internal/sortutil"
)

// Index is the Binary Search baseline. It implements core.Index.
type Index struct {
	pts []geom.Point
	// ids sorted by x coordinate; xs[i] is the sortable key of
	// pts[ids[i]].X, kept aligned for cache-friendly binary search and
	// range scan.
	ids []uint32
	xs  []uint32

	scratchIDs []uint32
	keyByID    []uint32
}

// New returns an empty baseline index.
func New() *Index { return &Index{} }

// Name implements core.Index.
func (ix *Index) Name() string { return "Binary Search" }

// Len implements core.Counter.
func (ix *Index) Len() int { return len(ix.ids) }

// Build implements core.Index: radix-sort the IDs by x.
func (ix *Index) Build(pts []geom.Point) {
	ix.pts = pts
	n := len(pts)
	ix.ids = resizeU32(ix.ids, n)
	ix.xs = resizeU32(ix.xs, n)
	ix.scratchIDs = resizeU32(ix.scratchIDs, n)
	ix.keyByID = resizeU32(ix.keyByID, n)
	for i := range pts {
		ix.ids[i] = uint32(i)
		ix.keyByID[i] = sortutil.Float32Key(pts[i].X)
	}
	sortutil.ByKey32(ix.ids, ix.keyByID, ix.scratchIDs)
	for i, id := range ix.ids {
		ix.xs[i] = ix.keyByID[id]
	}
}

// Query implements core.Index: binary search the x-range, scan it, filter
// on y.
func (ix *Index) Query(r geom.Rect, emit func(id uint32)) {
	lo := sortutil.LowerBound32(ix.xs, sortutil.Float32Key(r.MinX))
	hi := sortutil.UpperBound32(ix.xs, sortutil.Float32Key(r.MaxX))
	if hi < lo {
		// Inverted or NaN-cornered rectangles match nothing.
		return
	}
	for _, id := range ix.ids[lo:hi] {
		y := ix.pts[id].Y
		if y >= r.MinY && y <= r.MaxY {
			emit(id)
		}
	}
}

// Update implements core.Index: re-sorted from the snapshot every tick.
func (ix *Index) Update(id uint32, old, new geom.Point) {}

// MemoryBytes implements core.MemoryReporter.
func (ix *Index) MemoryBytes() int64 {
	return int64(len(ix.ids))*4 + int64(len(ix.xs))*4
}

func resizeU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}
