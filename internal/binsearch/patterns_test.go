package binsearch

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/testutil"
)

// TestAdversarialPatterns runs the shared differential suite. The
// baseline's x-range scan must handle duplicated keys (colocated and
// vertical-line patterns put thousands of points at one x).
func TestAdversarialPatterns(t *testing.T) {
	bounds := geom.R(0, 0, 1000, 1000)
	if f := testutil.CheckAgainstOracle(New(), 99, 1500, bounds); f != nil {
		t.Fatal(f)
	}
}
