package joinlint

import (
	"go/ast"
	"go/types"
)

// Determinism checks functions annotated //joinlint:deterministic —
// the build/fold paths feeding the chained epoch digests, whose whole
// value rests on every replica of the computation producing the same
// bits. Epoch digests are compared across goroutines, runs, and
// machines (the digest-matrix tests assert sequential == parallel ==
// sharded), so these paths may not:
//
//   - range over maps — iteration order differs per run and would fold
//     a different permutation into an order-sensitive digest;
//   - read the wall clock (time.Now/Since/Until) — two replicas fold
//     different timestamps;
//   - call the global math/rand source — unseeded and shared, so
//     concurrent callers interleave nondeterministically (a locally
//     seeded *rand.Rand is fine and is what the workload generators
//     use);
//   - receive from channels or select — the value observed depends on
//     goroutine scheduling.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "//joinlint:deterministic functions must not iterate maps, read the clock, use global rand, or observe goroutine ordering",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := p.funcDirective(fn, dirDeterministic); !ok {
				continue
			}
			p.checkDeterministicBody(fn)
		}
	}
}

func (p *Pass) checkDeterministicBody(fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					p.Reportf(n.Pos(), "map iteration in a digest-feeding path: order differs per run, so the folded digest would too; iterate a sorted slice instead")
				}
			}
		case *ast.CallExpr:
			switch pkg := calleePackage(p.Info, n); pkg {
			case "time":
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					switch sel.Sel.Name {
					case "Now", "Since", "Until":
						p.Reportf(n.Pos(), "time.%s in a digest-feeding path: replicas fold different timestamps; pass timings through explicit parameters outside the fold", sel.Sel.Name)
					}
				}
			case "math/rand", "math/rand/v2", "crypto/rand":
				p.Reportf(n.Pos(), "%s call in a digest-feeding path: the global source is unseeded/shared; thread a locally seeded *rand.Rand through instead", pkg)
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				p.Reportf(n.Pos(), "channel receive in a digest-feeding path: the observed value depends on goroutine scheduling")
			}
		case *ast.SelectStmt:
			p.Reportf(n.Pos(), "select in a digest-feeding path: case choice depends on goroutine scheduling")
		}
		return true
	})
}
