package joinlint

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// canned -gcflags=-m output: package headers, analysis notes, and two
// real allocations.
const cannedEscapeOutput = `# repro/internal/grid
internal/grid/csr.go:370:42: leaking param: buf to result ~r0 level=0
internal/grid/csr.go:370:13: st does not escape
internal/grid/grid.go:620:25: r does not escape
internal/grid/hypothetical.go:42:9: &scratch{} escapes to heap
internal/grid/hypothetical.go:50:2: moved to heap: buf
# repro/internal/rtree
internal/rtree/rtree.go:300:30: leaking param: buf to result ~r0 level=0
`

const cannedBCEOutput = `# repro/internal/grid
internal/grid/csr.go:380:15: Found IsInBounds
internal/grid/csr.go:385:20: Found IsSliceInBounds
internal/grid/csr.go:390:11: Proved IsInBounds
`

func TestParseCompilerDiagnostics(t *testing.T) {
	diags := ParseCompilerDiagnostics([]byte(cannedEscapeOutput))
	if len(diags) != 6 {
		t.Fatalf("parsed %d diagnostics, want 6 (package headers must be skipped): %v", len(diags), diags)
	}
	first := diags[0]
	if first.File != "internal/grid/csr.go" || first.Line != 370 || first.Col != 42 {
		t.Errorf("first diagnostic = %+v", first)
	}
	if !strings.HasPrefix(first.Message, "leaking param") {
		t.Errorf("first message = %q", first.Message)
	}
}

func TestEscapeClassification(t *testing.T) {
	cases := []struct {
		msg  string
		want bool
	}{
		{"leaking param: buf to result ~r0 level=0", false},
		{"st does not escape", false},
		{"&scratch{} escapes to heap", true},
		{"moved to heap: buf", true},
		{"func literal escapes to heap", true},
		{"inlining call to release", false},
	}
	for _, tc := range cases {
		if got := IsHeapEscape(CompilerDiag{Message: tc.msg}); got != tc.want {
			t.Errorf("IsHeapEscape(%q) = %v, want %v", tc.msg, got, tc.want)
		}
	}
}

func TestBoundsCheckClassification(t *testing.T) {
	cases := []struct {
		msg  string
		want bool
	}{
		{"Found IsInBounds", true},
		{"Found IsSliceInBounds", true},
		{"Proved IsInBounds", false},
		{"moved to heap: buf", false},
	}
	for _, tc := range cases {
		if got := IsBoundsCheck(CompilerDiag{Message: tc.msg}); got != tc.want {
			t.Errorf("IsBoundsCheck(%q) = %v, want %v", tc.msg, got, tc.want)
		}
	}
}

func TestAttribute(t *testing.T) {
	funcs := []*FuncProbe{
		{Package: "p", Func: "hot", File: "internal/grid/hypothetical.go", StartLine: 40, EndLine: 55, Hotpath: true, Escapes: []string{}},
		{Package: "p", Func: "other", File: "internal/grid/hypothetical.go", StartLine: 60, EndLine: 70, Hotpath: true, Escapes: []string{}},
		{Package: "p", Func: "notHot", File: "internal/grid/csr.go", StartLine: 360, EndLine: 400, Hotpath: false, Escapes: []string{}},
	}
	attribute(funcs, ParseCompilerDiagnostics([]byte(cannedEscapeOutput)),
		func(f *FuncProbe) bool { return f.Hotpath },
		IsHeapEscape,
		func(f *FuncProbe, s string) { f.Escapes = append(f.Escapes, s) })

	if len(funcs[0].Escapes) != 2 {
		t.Errorf("hot: %d escapes attributed, want 2: %v", len(funcs[0].Escapes), funcs[0].Escapes)
	}
	if len(funcs[1].Escapes) != 0 {
		t.Errorf("other (outside line range): %v", funcs[1].Escapes)
	}
	if len(funcs[2].Escapes) != 0 {
		t.Errorf("notHot (not picked): %v", funcs[2].Escapes)
	}
}

func TestEscapeGateVerdicts(t *testing.T) {
	r := &ProbeReport{Functions: []*FuncProbe{
		{Package: "p", Func: "clean", Hotpath: true, Escapes: []string{}},
		{Package: "p", Func: "dirty", Hotpath: true, Escapes: []string{"f.go:1: moved to heap: buf"}},
		{Package: "p", Func: "bceOnly", BCE: true, Escapes: []string{"f.go:2: x escapes to heap"}},
	}}
	errs := EscapeGate(r)
	if len(errs) != 1 {
		t.Fatalf("EscapeGate returned %d errors, want 1: %v", len(errs), errs)
	}
	if !strings.Contains(errs[0].Error(), "dirty") {
		t.Errorf("error names wrong function: %v", errs[0])
	}
}

func TestBCEGateVerdicts(t *testing.T) {
	r := &ProbeReport{Functions: []*FuncProbe{
		{Package: "p", Func: "atBaseline", BCE: true, BoundsChecks: []string{"a", "b"}},
		{Package: "p", Func: "regressed", BCE: true, BoundsChecks: []string{"a", "b", "c"}},
		{Package: "p", Func: "improved", BCE: true, BoundsChecks: []string{}},
		{Package: "p", Func: "unpinned", BCE: true, BoundsChecks: []string{}},
	}}
	baseline := BCEBaseline{
		"p.atBaseline": 2,
		"p.regressed":  2,
		"p.improved":   1,
		"p.stale":      4,
	}
	errs, improved := BCEGate(r, baseline)
	var errText []string
	for _, e := range errs {
		errText = append(errText, e.Error())
	}
	all := strings.Join(errText, "\n")
	if len(errs) != 3 {
		t.Fatalf("BCEGate returned %d errors, want 3 (regression, unpinned, stale):\n%s", len(errs), all)
	}
	for _, needle := range []string{"p.regressed retained 3", "p.unpinned has no baseline entry", "baseline entry p.stale matches no"} {
		if !strings.Contains(all, needle) {
			t.Errorf("missing error %q in:\n%s", needle, all)
		}
	}
	if len(improved) != 1 || !strings.Contains(improved[0], "p.improved") {
		t.Errorf("improved = %v, want one entry for p.improved", improved)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	r := &ProbeReport{Functions: []*FuncProbe{
		{Package: "p", Func: "a", BCE: true, BoundsChecks: []string{"x", "y"}},
		{Package: "p", Func: "b", BCE: true, BoundsChecks: []string{}},
		{Package: "p", Func: "hotOnly", Hotpath: true},
	}}
	path := filepath.Join(t.TempDir(), "bce.json")
	if err := WriteBCEBaseline(path, r); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBCEBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 2 || b["p.a"] != 2 || b["p.b"] != 0 {
		t.Errorf("round-tripped baseline = %v", b)
	}
	if errs, _ := BCEGate(r, b); len(errs) != 0 {
		t.Errorf("freshly written baseline must gate clean, got %v", errs)
	}
}

// TestCollectAnnotated checks the real tree's annotation census: the
// known kernels are found with the right flags and module-root-relative
// files.
func TestCollectAnnotated(t *testing.T) {
	root, err := ModuleRoot("")
	if err != nil {
		t.Fatal(err)
	}
	funcs, pkgs, err := CollectAnnotated(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]*FuncProbe{}
	for _, f := range funcs {
		byKey[f.Key()] = f
	}
	appendRow := byKey["repro/internal/grid.(*csrStore).appendRow"]
	if appendRow == nil {
		t.Fatal("(*csrStore).appendRow not collected")
	}
	if !appendRow.Hotpath || !appendRow.BCE {
		t.Errorf("appendRow flags = hotpath:%v bce:%v, want both", appendRow.Hotpath, appendRow.BCE)
	}
	if appendRow.File != filepath.Join("internal", "grid", "csr.go") {
		t.Errorf("appendRow.File = %q, want module-root-relative path", appendRow.File)
	}
	if appendRow.StartLine <= 0 || appendRow.EndLine < appendRow.StartLine {
		t.Errorf("bad line range %d-%d", appendRow.StartLine, appendRow.EndLine)
	}
	digest := byKey["repro/internal/epoch.FoldMoves"]
	if digest != nil {
		t.Errorf("FoldMoves is deterministic-only and must not be probe-collected, got %+v", digest)
	}
	wantPkgs := map[string]bool{}
	for _, p := range pkgs {
		wantPkgs[p] = true
	}
	for _, p := range []string{"repro/internal/grid", "repro/internal/rtree", "repro/internal/shard", "repro/internal/tune", "repro/internal/core"} {
		if !wantPkgs[p] {
			t.Errorf("package %s carries annotations but was not collected (got %v)", p, pkgs)
		}
	}
}

// TestProbeGatesOnRealTree runs both compiler probes for real (cached
// builds keep this fast after the first run) and asserts the in-repo
// contract: hotpath kernels allocation-free, BCE counts at baseline.
func TestProbeGatesOnRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds annotated packages with diagnostic flags; skipped in -short")
	}
	root, err := ModuleRoot("")
	if err != nil {
		t.Fatal(err)
	}
	report, err := Probe(root, []string{"./..."}, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if errs := EscapeGate(report); len(errs) != 0 {
		for _, e := range errs {
			t.Error(e)
		}
	}
	baseline, err := LoadBCEBaseline(filepath.Join(root, "internal", "joinlint", "bce_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if errs, _ := BCEGate(report, baseline); len(errs) != 0 {
		for _, e := range errs {
			t.Error(e)
		}
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"bounds_checks"`)) {
		t.Error("JSON summary missing bounds_checks field")
	}
}
