// Package joinlint holds the project's static analyzers and
// compiler-probe gates: go vet-class tooling that enforces, at lint
// time, the structural contracts the paper's "implementation matters"
// findings rest on. Each analyzer pins a discipline a runtime test
// family currently guards —
//
//   - capforward turns the per-wrapper capability tests (QueryAppend /
//     QueryBatch / BuildParallel / UpdateBatch forwarding) into a
//     compile-time guarantee for every future wrapper;
//   - containedgo keeps parallel sections routed through
//     parutil.Group / ForEachShard / GoErr so a worker panic is
//     contained instead of killing the process;
//   - hotpath forbids the per-result indirection and hidden-allocation
//     patterns (interface boxing, escaping closures, defer, map
//     iteration, fmt/log) in the annotated query kernels;
//   - determinism keeps digest-feeding build/fold paths free of map
//     iteration order, wall-clock reads, and unseeded randomness.
//
// Two compiler probes complement the AST analyzers (probe.go): the
// escape gate parses `go build -gcflags=-m` and fails if any
// //joinlint:hotpath function heap-allocates, and the BCE gate parses
// `-gcflags=-d=ssa/check_bce` and pins the bounds-check count of the
// //joinlint:bce loops against a checked-in baseline.
//
// The framework below is a deliberately small stdlib-only analogue of
// golang.org/x/tools/go/analysis (this module builds offline with no
// third-party dependencies): an Analyzer is a named Run function over a
// type-checked Pass, and diagnostics are plain positions + messages.
// cmd/joinlint wires every analyzer and both probes into one CLI.
package joinlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to
// the real framework if the dependency ever becomes available.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //joinlint:allow suppression directives.
	Name string
	// Doc is the one-line contract the analyzer enforces.
	Doc string
	// Run analyzes one package and reports findings through the pass.
	Run func(*Pass)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{CapForward, ContainedGo, HotPath, Determinism}
}

// ByName returns the analyzers selected by names, or All() when names
// is empty. Unknown names are an error.
func ByName(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return All(), nil
	}
	var sel []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range All() {
			if a.Name == n {
				sel = append(sel, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("joinlint: unknown analyzer %q", n)
		}
	}
	return sel, nil
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// directives indexes every //joinlint: comment by file and line
	// (see directive.go).
	directives directiveIndex
	diags      *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless a suppression directive
// covers that line (a //joinlint:allow <analyzer> <reason> — or, for
// containedgo, //joinlint:uncontained <reason> — on the same line or
// the line immediately above).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether a directive on the diagnostic's line (or
// the line above it) allows this analyzer's findings there.
func (p *Pass) suppressed(pos token.Position) bool {
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, d := range p.directives.at(pos.Filename, line) {
			if d.suppresses(p.Analyzer.Name) {
				return true
			}
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg.Directives == nil {
			pkg.Directives = parseDirectives(pkg.Fset, pkg.Files)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Pkg,
				Info:       pkg.Info,
				directives: pkg.Directives,
				diags:      &diags,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
