package joinlint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //joinlint: directive grammar. Directives are ordinary line
// comments and take effect on their own line and the line below (so
// both trailing and preceding placement work):
//
//	//joinlint:hotpath            — marks a function as a hot query
//	                                kernel: the hotpath analyzer checks
//	                                its body and the escape gate pins it
//	                                allocation-free.
//	//joinlint:bce                — marks a function whose inner loops'
//	                                bounds-check count the BCE gate pins
//	                                against the checked-in baseline.
//	//joinlint:deterministic      — marks a digest-feeding build/fold
//	                                path for the determinism analyzer.
//	//joinlint:uncontained <why>  — allows a raw go statement or bare
//	                                sync.WaitGroup that containedgo
//	                                would otherwise flag. The reason is
//	                                mandatory.
//	//joinlint:allow <name> <why> — suppresses analyzer <name>'s
//	                                findings on the covered lines. The
//	                                reason is mandatory.
const directivePrefix = "//joinlint:"

// directive names that annotate (rather than suppress).
const (
	dirHotPath       = "hotpath"
	dirBCE           = "bce"
	dirDeterministic = "deterministic"
	dirUncontained   = "uncontained"
	dirAllow         = "allow"
)

// Directive is one parsed //joinlint: comment.
type Directive struct {
	Name string // "hotpath", "bce", "deterministic", "uncontained", "allow"
	Args string // everything after the name, trimmed
	Pos  token.Position
}

// suppresses reports whether this directive silences findings of the
// named analyzer: uncontained covers containedgo, and allow covers the
// analyzer it names. A missing reason never suppresses — the analyzers
// flag it instead, so an undocumented escape hatch cannot exist.
func (d Directive) suppresses(analyzer string) bool {
	switch d.Name {
	case dirUncontained:
		return analyzer == containedGoName && d.Args != ""
	case dirAllow:
		name, reason, _ := strings.Cut(d.Args, " ")
		return name == analyzer && strings.TrimSpace(reason) != ""
	}
	return false
}

// directiveIndex maps file -> line -> directives on that line.
type directiveIndex map[string]map[int][]Directive

func (ix directiveIndex) at(file string, line int) []Directive {
	return ix[file][line]
}

// parseDirectives scans every comment in the files for //joinlint:
// directives.
func parseDirectives(fset *token.FileSet, files []*ast.File) directiveIndex {
	ix := make(directiveIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				name, args, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				byLine := ix[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]Directive)
					ix[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], Directive{
					Name: name,
					Args: strings.TrimSpace(args),
					Pos:  pos,
				})
			}
		}
	}
	return ix
}

// funcDirective returns the annotation directive of the given name
// attached to fn: in its doc comment, or on the line of (or just
// above) the func keyword.
func (p *Pass) funcDirective(fn *ast.FuncDecl, name string) (Directive, bool) {
	return funcDirective(p.Fset, p.directives, fn, name)
}

func funcDirective(fset *token.FileSet, ix directiveIndex, fn *ast.FuncDecl, name string) (Directive, bool) {
	pos := fset.Position(fn.Pos())
	lines := []int{pos.Line, pos.Line - 1}
	if fn.Doc != nil {
		for l := fset.Position(fn.Doc.Pos()).Line; l < pos.Line; l++ {
			lines = append(lines, l)
		}
	}
	for _, line := range lines {
		for _, d := range ix.at(pos.Filename, line) {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}
