package joinlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// parutilPath is the one package allowed to fork goroutines directly:
// it owns the containment primitives everything else must go through.
const parutilPath = "repro/internal/parutil"

// ContainedGo enforces panic containment on every parallel section: a
// panic on a bare goroutine cannot be recovered by any ancestor frame —
// it kills the whole process, and with a bare sync.WaitGroup the
// missing Done deadlocks every sibling. parutil.Group, ForEachShard,
// and GoErr recover worker panics and re-deliver them on the caller's
// goroutine, which is what lets the epoch publisher degrade a tick
// instead of dying (PR 6's crash-containment contract). Raw go
// statements and bare sync.WaitGroup values are therefore forbidden
// outside parutil; genuinely fire-and-forget cases carry a
// //joinlint:uncontained <reason> directive.
// containedGoName is referenced by Directive.suppresses; a named
// constant avoids an initialization cycle through the analyzer value.
const containedGoName = "containedgo"

var ContainedGo = &Analyzer{
	Name: containedGoName,
	Doc:  "fork/join must route through parutil (Group, ForEachShard, GoErr); no raw go statements or bare sync.WaitGroup",
	Run:  runContainedGo,
}

func runContainedGo(p *Pass) {
	if p.Pkg.Path() == parutilPath || strings.HasSuffix(p.Pkg.Path(), "/parutil") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(),
					"raw go statement: a worker panic here kills the process; route the fork through parutil.Group/ForEachShard (fork+join) or parutil.GoErr (fork now, join later), or document why containment is impossible with //joinlint:uncontained <reason>")
			case *ast.Field:
				p.checkWaitGroup(n.Type)
			case *ast.ValueSpec:
				if n.Type != nil {
					p.checkWaitGroup(n.Type)
				}
			case *ast.CompositeLit:
				if n.Type != nil {
					p.checkWaitGroup(n.Type)
				}
			}
			return true
		})
	}
}

// checkWaitGroup flags a declared sync.WaitGroup. The type is resolved
// through go/types, so aliases and embedded forms are caught and
// same-named types from other packages are not.
func (p *Pass) checkWaitGroup(expr ast.Expr) {
	t := p.Info.TypeOf(expr)
	if t == nil {
		return
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			p.Reportf(expr.Pos(),
				"bare sync.WaitGroup: one panicking worker deadlocks every Wait sibling; use parutil.Group (panic-containing fork/join) or suppress with //joinlint:uncontained <reason>")
		}
	}
}
