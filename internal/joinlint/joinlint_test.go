package joinlint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the backtick-quoted patterns of a `// want ...`
// expectation comment.
var wantRe = regexp.MustCompile("`([^`]*)`")

// expectation is one expected diagnostic: a pattern anchored to a line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// collectWants parses every `// want` comment of the fixture package
// into expectations.
func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				pats := wantRe.FindAllStringSubmatch(text, -1)
				if len(pats) == 0 {
					t.Fatalf("%s:%d: want comment without backtick-quoted patterns", pos.Filename, pos.Line)
				}
				for _, m := range pats {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over a testdata package and matches
// the diagnostics against the fixture's want comments, analysistest
// style: every diagnostic must be expected, every expectation must
// fire.
func checkFixture(t *testing.T, name string, analyzer *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", name)
	pkg, err := NewLoader().LoadDir(dir, "repro/internal/joinlint/testdata/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{analyzer})
	wants := collectWants(t, pkg)

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func TestCapForwardFixture(t *testing.T)  { checkFixture(t, "capforward", CapForward) }
func TestContainedGoFixture(t *testing.T) { checkFixture(t, "containedgo", ContainedGo) }
func TestHotPathFixture(t *testing.T)     { checkFixture(t, "hotpath", HotPath) }
func TestDeterminismFixture(t *testing.T) { checkFixture(t, "determinism", Determinism) }

// TestCapForwardFlagsMissingQueryAppend pins the acceptance case by
// name: a wrapper that stores an inner index and forwards Query but not
// QueryAppend must be flagged for core.QueryAppender specifically.
func TestCapForwardFlagsMissingQueryAppend(t *testing.T) {
	pkg, err := NewLoader().LoadDir(filepath.Join("testdata", "capforward"), "repro/internal/joinlint/testdata/capforward")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{CapForward})
	for _, d := range diags {
		if strings.Contains(d.Message, "BrokenWrap") && strings.Contains(d.Message, "core.QueryAppender") {
			return
		}
	}
	t.Fatalf("capforward did not flag BrokenWrap for missing core.QueryAppender; got %d diagnostics: %v", len(diags), diags)
}

// TestRealTreeIsClean is the in-repo contract: the production packages
// carry no joinlint findings. (The same invariant the CI lint job
// enforces via cmd/joinlint; duplicating it here keeps plain `go test`
// sufficient to catch regressions.)
func TestRealTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := ModuleRoot("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader().Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	diags := RunAnalyzers(pkgs, All())
	for _, d := range diags {
		t.Errorf("finding in production tree: %s", d)
	}
}

// TestDirectiveParsing pins the grammar corner cases.
func TestDirectiveParsing(t *testing.T) {
	pkg, err := NewLoader().LoadDir(filepath.Join("testdata", "hotpath"), "repro/internal/joinlint/testdata/hotpath")
	if err != nil {
		t.Fatal(err)
	}
	var annotated []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := funcDirective(pkg.Fset, pkg.Directives, fn, dirHotPath); ok {
				annotated = append(annotated, fn.Name.Name)
			}
		}
	}
	want := []string{"deferred", "closes", "rangesMap", "logs", "stamps", "boxesArg", "boxesDecl", "boxesAssign", "boxesReturn", "boxesComposite", "clean", "suppressed"}
	if fmt.Sprint(annotated) != fmt.Sprint(want) {
		t.Errorf("annotated functions = %v, want %v", annotated, want)
	}
}

func TestSuppression(t *testing.T) {
	cases := []struct {
		d        Directive
		analyzer string
		want     bool
	}{
		{Directive{Name: "uncontained", Args: "some reason"}, "containedgo", true},
		{Directive{Name: "uncontained", Args: ""}, "containedgo", false},
		{Directive{Name: "uncontained", Args: "some reason"}, "hotpath", false},
		{Directive{Name: "allow", Args: "hotpath measured exception"}, "hotpath", true},
		{Directive{Name: "allow", Args: "hotpath"}, "hotpath", false}, // no reason
		{Directive{Name: "allow", Args: "hotpath reason"}, "determinism", false},
		{Directive{Name: "hotpath", Args: ""}, "hotpath", false}, // annotation, not suppression
	}
	for _, tc := range cases {
		if got := tc.d.suppresses(tc.analyzer); got != tc.want {
			t.Errorf("(%q %q).suppresses(%q) = %v, want %v", tc.d.Name, tc.d.Args, tc.analyzer, got, tc.want)
		}
	}
}
