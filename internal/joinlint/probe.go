package joinlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file holds the two compiler-probe gates. They do not inspect
// the AST for violations: they ask the real compiler. The escape gate
// parses `go build -gcflags=-m` and fails if any //joinlint:hotpath
// function heap-allocates — proving the zero-alloc contract from the
// compiler's own escape analysis, in agreement with (but without
// running) the AllocsPerRun tests. The BCE gate parses
// `go build -gcflags=-d=ssa/check_bce` and pins the bounds-check count
// of every //joinlint:bce function against a checked-in baseline, so a
// refactor that quietly re-introduces a check into a hand-optimized
// CSR or class-span inner loop fails CI instead of surfacing as a
// bench regression hours later.

// FuncProbe is the probe result for one annotated function. File is
// module-root-relative; the JSON stream is the machine-readable
// summary future bench PRs diff to see which hot loops are still
// check- and allocation-free.
type FuncProbe struct {
	Package   string `json:"package"`
	Func      string `json:"func"`
	File      string `json:"file"`
	StartLine int    `json:"start_line"`
	EndLine   int    `json:"end_line"`
	Hotpath   bool   `json:"hotpath"`
	BCE       bool   `json:"bce"`
	// Escapes holds one "file:line: message" per heap escape the
	// compiler reported inside the function (hotpath functions only).
	Escapes []string `json:"escapes"`
	// BoundsChecks holds one "file:line: message" per bounds check the
	// compiler could not eliminate (bce functions only).
	BoundsChecks []string `json:"bounds_checks"`
}

// Key identifies the function in baselines: "package.func".
func (f *FuncProbe) Key() string { return f.Package + "." + f.Func }

// ProbeReport aggregates a gate run.
type ProbeReport struct {
	// Packages are the import paths carrying at least one annotation —
	// the set the probe builds rebuilt with diagnostic flags.
	Packages  []string     `json:"packages"`
	Functions []*FuncProbe `json:"functions"`
}

// WriteJSON emits the machine-readable summary.
func (r *ProbeReport) WriteJSON(w *bytes.Buffer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CompilerDiag is one parsed file:line:col diagnostic from the
// compiler's stderr.
type CompilerDiag struct {
	File    string
	Line    int
	Col     int
	Message string
}

var diagRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// ParseCompilerDiagnostics extracts every file:line:col diagnostic from
// raw `go build` output, skipping package headers ("# repro/...") and
// indented explanation lines (-m=2 style).
func ParseCompilerDiagnostics(out []byte) []CompilerDiag {
	var diags []CompilerDiag
	for _, line := range strings.Split(string(out), "\n") {
		m := diagRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		diags = append(diags, CompilerDiag{File: m[1], Line: ln, Col: col, Message: m[4]})
	}
	return diags
}

// IsHeapEscape reports whether a -gcflags=-m diagnostic records a heap
// allocation: "x escapes to heap" or "moved to heap: x". Lines like
// "leaking param: buf" or "x does not escape" are analysis notes, not
// allocations, and are excluded.
func IsHeapEscape(d CompilerDiag) bool {
	return strings.Contains(d.Message, "escapes to heap") ||
		strings.HasPrefix(d.Message, "moved to heap:")
}

// IsBoundsCheck reports whether a -d=ssa/check_bce diagnostic records a
// retained bounds check ("Found IsInBounds" / "Found IsSliceInBounds").
func IsBoundsCheck(d CompilerDiag) bool {
	return strings.HasPrefix(d.Message, "Found Is")
}

// CollectAnnotated parses the packages matching patterns (no
// type-checking — the probes only need positions) and returns a probe
// entry for every function annotated //joinlint:hotpath or
// //joinlint:bce, plus the sorted set of import paths carrying at
// least one annotation. dir is the module root ("" for the working
// directory); File fields come back relative to it, matching the
// compiler's diagnostic paths.
func CollectAnnotated(dir string, patterns []string) ([]*FuncProbe, []string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if dir == "" {
		dir = "."
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	var funcs []*FuncProbe
	pkgSet := map[string]bool{}
	for _, lp := range listed {
		for _, name := range lp.GoFiles {
			path := filepath.Join(lp.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, nil, err
			}
			ix := parseDirectives(fset, []*ast.File{f})
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				_, hot := funcDirective(fset, ix, fn, dirHotPath)
				_, bce := funcDirective(fset, ix, fn, dirBCE)
				if !hot && !bce {
					continue
				}
				rel, err := filepath.Rel(absDir, path)
				if err != nil {
					rel = path
				}
				funcs = append(funcs, &FuncProbe{
					Package:      lp.ImportPath,
					Func:         funcDisplayName(fn),
					File:         rel,
					StartLine:    fset.Position(fn.Pos()).Line,
					EndLine:      fset.Position(fn.End()).Line,
					Hotpath:      hot,
					BCE:          bce,
					Escapes:      []string{},
					BoundsChecks: []string{},
				})
				pkgSet[lp.ImportPath] = true
			}
		}
	}
	pkgs := make([]string, 0, len(pkgSet))
	for p := range pkgSet {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	sort.Slice(funcs, func(i, j int) bool {
		if funcs[i].File != funcs[j].File {
			return funcs[i].File < funcs[j].File
		}
		return funcs[i].StartLine < funcs[j].StartLine
	})
	return funcs, pkgs, nil
}

// funcDisplayName renders "(*Grid).QueryAppend" / "csrStore.appendRow"
// / "FoldMoves" from a declaration.
func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	recv := fn.Recv.List[0].Type
	return "(" + typeExprString(recv) + ")." + fn.Name.Name
}

func typeExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + typeExprString(e.X)
	case *ast.IndexExpr: // generic receiver T[P]
		return typeExprString(e.X)
	case *ast.IndexListExpr:
		return typeExprString(e.X)
	default:
		return fmt.Sprintf("%T", e)
	}
}

// runCompilerProbe rebuilds pkgs with the given -gcflags value and
// returns the combined diagnostics output. The build cache replays
// compiler diagnostics, so repeated gate runs stay fast.
func runCompilerProbe(dir, gcflags string, pkgs []string) ([]byte, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	args := append([]string{"build", "-gcflags=" + gcflags}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=%s: %v\n%s", gcflags, err, out)
	}
	return out, nil
}

// attribute appends each matching diagnostic to the annotated function
// whose line range contains it. pick selects the annotation kind, and
// classify the diagnostic kind.
func attribute(funcs []*FuncProbe, diags []CompilerDiag, pick func(*FuncProbe) bool, classify func(CompilerDiag) bool, sink func(*FuncProbe, string)) {
	for _, d := range diags {
		if !classify(d) {
			continue
		}
		for _, f := range funcs {
			if !pick(f) || f.File != d.File || d.Line < f.StartLine || d.Line > f.EndLine {
				continue
			}
			sink(f, fmt.Sprintf("%s:%d: %s", d.File, d.Line, d.Message))
		}
	}
}

// Probe runs the requested compiler probes over every annotated
// function reachable from patterns and returns the attributed report.
// dir must be the module root so the compiler's relative diagnostic
// paths line up with the collected files.
func Probe(dir string, patterns []string, escapes, bce bool) (*ProbeReport, error) {
	funcs, pkgs, err := CollectAnnotated(dir, patterns)
	if err != nil {
		return nil, err
	}
	if escapes {
		out, err := runCompilerProbe(dir, "-m", pkgs)
		if err != nil {
			return nil, err
		}
		attribute(funcs, ParseCompilerDiagnostics(out),
			func(f *FuncProbe) bool { return f.Hotpath },
			IsHeapEscape,
			func(f *FuncProbe, s string) { f.Escapes = append(f.Escapes, s) })
	}
	if bce {
		out, err := runCompilerProbe(dir, "-d=ssa/check_bce", pkgs)
		if err != nil {
			return nil, err
		}
		attribute(funcs, ParseCompilerDiagnostics(out),
			func(f *FuncProbe) bool { return f.BCE },
			IsBoundsCheck,
			func(f *FuncProbe, s string) { f.BoundsChecks = append(f.BoundsChecks, s) })
	}
	return &ProbeReport{Packages: pkgs, Functions: funcs}, nil
}

// EscapeGate returns one error per //joinlint:hotpath function that
// heap-allocates. An empty result is the proof the zero-alloc kernels
// rely on: no hidden allocation can have crept into any annotated
// kernel, however it is called.
func EscapeGate(r *ProbeReport) []error {
	var errs []error
	for _, f := range r.Functions {
		if !f.Hotpath || len(f.Escapes) == 0 {
			continue
		}
		errs = append(errs, fmt.Errorf("escape gate: %s %s heap-allocates (%d escapes):\n\t%s",
			f.Package, f.Func, len(f.Escapes), strings.Join(f.Escapes, "\n\t")))
	}
	return errs
}

// BCEBaseline pins each //joinlint:bce function's allowed bounds-check
// count: "package.func" -> count.
type BCEBaseline map[string]int

// LoadBCEBaseline reads the checked-in baseline.
func LoadBCEBaseline(path string) (BCEBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b BCEBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("joinlint: parsing BCE baseline %s: %v", path, err)
	}
	return b, nil
}

// WriteBCEBaseline regenerates the baseline from a report.
func WriteBCEBaseline(path string, r *ProbeReport) error {
	b := BCEBaseline{}
	for _, f := range r.Functions {
		if f.BCE {
			b[f.Key()] = len(f.BoundsChecks)
		}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BCEGate compares a report against the baseline: more bounds checks
// than pinned is a regression, an unpinned annotated function needs a
// baseline entry (run with -write-bce-baseline), and an improvement is
// reported so the baseline can be tightened.
func BCEGate(r *ProbeReport, baseline BCEBaseline) (errs []error, improved []string) {
	for _, f := range r.Functions {
		if !f.BCE {
			continue
		}
		want, ok := baseline[f.Key()]
		n := len(f.BoundsChecks)
		switch {
		case !ok:
			errs = append(errs, fmt.Errorf("bce gate: %s has no baseline entry; run cmd/joinlint -bce -write-bce-baseline and commit the result", f.Key()))
		case n > want:
			errs = append(errs, fmt.Errorf("bce gate: %s retained %d bounds checks, baseline pins %d:\n\t%s",
				f.Key(), n, want, strings.Join(f.BoundsChecks, "\n\t")))
		case n < want:
			improved = append(improved, fmt.Sprintf("%s: %d bounds checks, baseline allows %d (tighten the baseline)", f.Key(), n, want))
		}
	}
	// A stale baseline entry (function renamed or de-annotated) fails
	// too: otherwise the pin silently stops pinning anything.
	current := map[string]bool{}
	for _, f := range r.Functions {
		if f.BCE {
			current[f.Key()] = true
		}
	}
	var stale []string
	for k := range baseline {
		if !current[k] {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	for _, k := range stale {
		errs = append(errs, fmt.Errorf("bce gate: baseline entry %s matches no //joinlint:bce function; remove it or restore the annotation", k))
	}
	return errs, improved
}
