package joinlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	PkgPath    string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Filenames  []string
	Pkg        *types.Package
	Info       *types.Info
	Directives directiveIndex
}

// Loader parses and type-checks packages with a shared FileSet and a
// shared source importer, so every load in a process reuses the
// already-checked dependency graph (the source importer caches by
// import path). Type-checking runs from source via go/importer's
// "source" compiler, which resolves module-local import paths through
// the go command — the process working directory must therefore be
// inside the module (cmd/joinlint chdirs to the module root).
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader with a fresh FileSet and source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// goList runs `go list -json` for the patterns in dir and returns the
// decoded package metadata.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,Name,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists the packages matching patterns (relative to dir, "" for
// the working directory) and returns them parsed and type-checked.
// Test files are out of scope: the contracts joinlint enforces are
// production-code disciplines, and tests legitimately use raw
// goroutines (race stress) and maps (oracles).
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		pkg, err := l.check(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package rooted at dir
// (every non-test .go file), under the given import path. Used by the
// analyzer tests to load fixture packages from testdata, which go list
// refuses to enumerate.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	list, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var files []string
	for _, f := range list {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("joinlint: no Go files in %s", dir)
	}
	return l.check(pkgPath, dir, files)
}

func (l *Loader) check(pkgPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("joinlint: type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath:    pkgPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Filenames:  filenames,
		Pkg:        tpkg,
		Info:       info,
		Directives: parseDirectives(l.Fset, files),
	}, nil
}

// ModuleRoot returns the directory of the main module's go.mod,
// resolved from dir ("" for the working directory).
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}
