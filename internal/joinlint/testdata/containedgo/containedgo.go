// Package containedgo is the containedgo analyzer fixture: raw go
// statements and bare sync.WaitGroups, flagged unless carrying a
// reasoned //joinlint:uncontained directive.
package containedgo

import "sync"

func work() {}

func rawGo() {
	go work() // want `raw go statement`
}

func rawWaitGroup() {
	var wg sync.WaitGroup // want `bare sync\.WaitGroup`
	wg.Add(1)
	go func() { // want `raw go statement`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

type holder struct {
	wg sync.WaitGroup // want `bare sync\.WaitGroup`
}

// allowedTrailing suppresses with a trailing directive and a reason.
func allowedTrailing() {
	go work() //joinlint:uncontained fixture: deliberate fire-and-forget
}

// allowedAbove suppresses with the directive on the line above.
func allowedAbove() {
	//joinlint:uncontained fixture: deliberate fire-and-forget
	go work()
}

// missingReason does not suppress: an undocumented escape hatch is
// itself a violation.
func missingReason() {
	//joinlint:uncontained
	go work() // want `raw go statement`
}

// wrongDirective does not suppress containedgo findings.
func wrongDirective() {
	//joinlint:allow hotpath fixture: wrong analyzer name
	go work() // want `raw go statement`
}
