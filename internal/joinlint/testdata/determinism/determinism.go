// Package determinism is the determinism analyzer fixture:
// digest-feeding paths reading nondeterministic state, plus clean and
// unannotated controls.
package determinism

import (
	"math/rand"
	"time"
)

//joinlint:deterministic
func foldsMap(m map[uint32]uint64) uint64 {
	var d uint64
	for _, v := range m { // want `map iteration in a digest-feeding path`
		d ^= v
	}
	return d
}

//joinlint:deterministic
func stamps() int64 {
	return time.Now().UnixNano() // want `time\.Now in a digest-feeding path`
}

//joinlint:deterministic
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in a digest-feeding path`
}

//joinlint:deterministic
func jitters(d uint64) uint64 {
	return d ^ rand.Uint64() // want `math/rand call in a digest-feeding path`
}

//joinlint:deterministic
func receives(ch chan uint64) uint64 {
	return <-ch // want `channel receive in a digest-feeding path`
}

//joinlint:deterministic
func selects(a, b chan uint64) uint64 {
	select { // want `select in a digest-feeding path`
	case v := <-a: // want `channel receive in a digest-feeding path`
		return v
	case v := <-b: // want `channel receive in a digest-feeding path`
		return v
	}
}

// clean folds sorted slices with a seeded local source: all fine.
//
//joinlint:deterministic
func clean(vals []uint64, rng *rand.Rand) uint64 {
	var d uint64
	for _, v := range vals {
		d = d*31 + v
	}
	return d ^ rng.Uint64()
}

// unannotated may read whatever it likes.
func unannotated(m map[uint32]uint64) uint64 {
	var d uint64
	for _, v := range m {
		d ^= v
	}
	return d ^ uint64(time.Now().UnixNano()) ^ rand.Uint64()
}
