// Package capforward is the capforward analyzer fixture: wrapper types
// around inner indexes, some forwarding every optional capability and
// some deliberately broken. The `// want` comments are the expected
// diagnostics; the fixture runner in joinlint_test.go matches them.
package capforward

import (
	"repro/internal/core"
	"repro/internal/geom"
)

// BrokenWrap satisfies core.Index and stores an inner index but
// forwards no optional capability: the analyzer must demand all four.
type BrokenWrap struct { // want `BrokenWrap satisfies core\.Index .* core\.QueryAppender` `BrokenWrap satisfies core\.Index .* core\.BatchQuerier` `BrokenWrap satisfies core\.Index .* core\.ParallelBuilder` `BrokenWrap satisfies core\.Index .* core\.BatchUpdater`
	inner core.Index
}

func (w *BrokenWrap) Name() string                          { return "broken" }
func (w *BrokenWrap) Build(pts []geom.Point)                { w.inner.Build(pts) }
func (w *BrokenWrap) Query(r geom.Rect, emit func(uint32))  { w.inner.Query(r, emit) }
func (w *BrokenWrap) Update(id uint32, old, new geom.Point) { w.inner.Update(id, old, new) }

// GoodWrap forwards every capability the Index contract obliges.
type GoodWrap struct {
	inner core.Index
	app   func(r geom.Rect, buf []uint32) []uint32
}

func (w *GoodWrap) Name() string                          { return "good" }
func (w *GoodWrap) Build(pts []geom.Point)                { w.inner.Build(pts) }
func (w *GoodWrap) Query(r geom.Rect, emit func(uint32))  { w.inner.Query(r, emit) }
func (w *GoodWrap) Update(id uint32, old, new geom.Point) { w.inner.Update(id, old, new) }
func (w *GoodWrap) QueryAppend(r geom.Rect, buf []uint32) []uint32 {
	return w.app(r, buf)
}
func (w *GoodWrap) QueryBatch(rects []geom.Rect, offsets, buf []uint32) ([]uint32, []uint32) {
	return core.AppendBatch(w.app, rects, offsets, buf)
}
func (w *GoodWrap) BuildParallel(pts []geom.Point, workers int) { w.inner.Build(pts) }
func (w *GoodWrap) CanBatchUpdates(n int) bool                  { return false }
func (w *GoodWrap) UpdateBatch(moves []geom.Move, workers int)  {}

// FactoryWrap hides the inner index behind a factory func field (the
// epoch wrapper's erasure pattern); the analyzer must still see it as a
// wrapper. It forwards everything except QueryAppend.
type FactoryWrap struct { // want `FactoryWrap satisfies core\.Index .* core\.QueryAppender`
	newInner func() core.Index
}

func (w *FactoryWrap) Name() string                          { return "factory" }
func (w *FactoryWrap) Build(pts []geom.Point)                {}
func (w *FactoryWrap) Query(r geom.Rect, emit func(uint32))  {}
func (w *FactoryWrap) Update(id uint32, old, new geom.Point) {}
func (w *FactoryWrap) QueryBatch(rects []geom.Rect, offsets, buf []uint32) ([]uint32, []uint32) {
	return offsets, buf
}
func (w *FactoryWrap) BuildParallel(pts []geom.Point, workers int) {}
func (w *FactoryWrap) CanBatchUpdates(n int) bool                  { return false }
func (w *FactoryWrap) UpdateBatch(moves []geom.Move, workers int)  {}

// nestedRegion holds the inner index one struct level down (the shard
// engine's shape).
type nestedRegion struct {
	idx core.Index
}

// NestedWrap must be recognised as a wrapper through the nested region
// struct. It forwards everything except QueryAppend.
type NestedWrap struct { // want `NestedWrap satisfies core\.Index .* core\.QueryAppender`
	regs []nestedRegion
}

func (w *NestedWrap) Name() string                          { return "nested" }
func (w *NestedWrap) Build(pts []geom.Point)                {}
func (w *NestedWrap) Query(r geom.Rect, emit func(uint32))  {}
func (w *NestedWrap) Update(id uint32, old, new geom.Point) {}
func (w *NestedWrap) QueryBatch(rects []geom.Rect, offsets, buf []uint32) ([]uint32, []uint32) {
	return offsets, buf
}
func (w *NestedWrap) BuildParallel(pts []geom.Point, workers int) {}
func (w *NestedWrap) CanBatchUpdates(n int) bool                  { return false }
func (w *NestedWrap) UpdateBatch(moves []geom.Move, workers int)  {}

// Standalone satisfies core.Index but stores no inner index — not a
// wrapper, so missing capabilities are fine (it may genuinely not have
// faster paths).
type Standalone struct {
	pts []geom.Point
}

func (s *Standalone) Name() string                          { return "standalone" }
func (s *Standalone) Build(pts []geom.Point)                { s.pts = pts }
func (s *Standalone) Query(r geom.Rect, emit func(uint32))  {}
func (s *Standalone) Update(id uint32, old, new geom.Point) {}

// brokenUnexported stores an inner index and misses capabilities, but
// is unexported: internal plumbing types are out of scope.
type brokenUnexported struct {
	inner core.Index
}

func (w *brokenUnexported) Name() string                          { return "unexported" }
func (w *brokenUnexported) Build(pts []geom.Point)                {}
func (w *brokenUnexported) Query(r geom.Rect, emit func(uint32))  {}
func (w *brokenUnexported) Update(id uint32, old, new geom.Point) {}

var (
	_ core.Index = (*BrokenWrap)(nil)
	_ core.Index = (*GoodWrap)(nil)
	_ core.Index = (*FactoryWrap)(nil)
	_ core.Index = (*NestedWrap)(nil)
	_ core.Index = (*Standalone)(nil)
	_ core.Index = (*brokenUnexported)(nil)
)
