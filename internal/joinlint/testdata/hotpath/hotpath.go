// Package hotpath is the hotpath analyzer fixture: annotated kernels
// containing each forbidden construct, plus clean and unannotated
// controls.
package hotpath

import (
	"fmt"
	"time"
)

type store struct {
	ids  []uint32
	byID map[uint32]uint32
}

func release() {}

func sinkAny(v any) {}

//joinlint:hotpath
func deferred(st *store) {
	defer release() // want `defer on the hot path`
	release()
}

//joinlint:hotpath
func closes(st *store, buf []uint32) []uint32 {
	grab := func(id uint32) { // want `closure on the hot path`
		buf = append(buf, id)
	}
	grab(1)
	return buf
}

//joinlint:hotpath
func rangesMap(st *store) uint32 {
	var n uint32
	for _, v := range st.byID { // want `map iteration on the hot path`
		n += v
	}
	for _, id := range st.ids { // slice iteration is fine
		n += id
	}
	return n
}

//joinlint:hotpath
func logs(st *store) {
	fmt.Println(len(st.ids)) // want `fmt call on the hot path`
}

//joinlint:hotpath
func stamps(st *store) int64 {
	t := time.Now() // want `time.Now on the hot path`
	return t.UnixNano() + int64(len(st.ids))
}

//joinlint:hotpath
func boxesArg(n int) {
	sinkAny(n) // want `interface boxing on the hot path`
}

//joinlint:hotpath
func boxesDecl(n int) {
	var v any = n // want `interface boxing on the hot path`
	_ = v
}

//joinlint:hotpath
func boxesAssign(n int) {
	var v any
	v = n // want `interface boxing on the hot path`
	_ = v
}

//joinlint:hotpath
func boxesReturn(n int) any {
	return n // want `interface boxing on the hot path`
}

//joinlint:hotpath
func boxesComposite(n int) []any {
	return []any{n} // want `interface boxing on the hot path`
}

// clean is a correct kernel: slice scans, appends, an
// immediately-invoked literal, and interface-to-interface moves.
//
//joinlint:hotpath
func clean(st *store, buf []uint32, v any) []uint32 {
	func() { buf = append(buf, 0) }()
	w := v // interface-to-interface: no new box
	_ = w
	for _, id := range st.ids {
		buf = append(buf, id)
	}
	return buf
}

// unannotated may do all of it: the contract is opt-in.
func unannotated(st *store) {
	defer release()
	for range st.byID {
	}
	fmt.Println(len(st.ids))
}

// suppressed documents a measured exception.
//
//joinlint:hotpath
func suppressed(st *store) {
	defer release() //joinlint:allow hotpath fixture: measured, amortized by the caller
	release()
}
