package joinlint

import (
	"go/types"
)

// corePath is the package defining the index contracts and optional
// capabilities.
const corePath = "repro/internal/core"

// CapForward enforces the wrapper-forwarding contract: any exported
// type that satisfies one of the index contracts AND stores an inner
// index (directly, through nested structs, or behind a factory func
// field) must also implement every optional capability that contract
// defines. A wrapper that forwards Query but not QueryAppend silently
// re-introduces the per-result callback on the hot path for every
// driver that layers it — exactly the regression PR 8 measured at
// 1.4-2.2x — so the forwarding is checked at lint time for all future
// wrappers, not just the ones with hand-written capability tests.
var CapForward = &Analyzer{
	Name: "capforward",
	Doc:  "index wrappers must forward every optional capability (QueryAppender, BatchQuerier, ParallelBuilder, BatchUpdater, epoch-observing flavours)",
	Run:  runCapForward,
}

// capContract is one index contract and the capabilities it obliges a
// wrapper to forward.
type capContract struct {
	name     string // contract interface name in core
	required []string
}

// capContracts maps each contract to its obligatory capabilities; the
// names resolve against core's scope at analysis time so the analyzer
// and the contract can never drift apart.
var capContracts = []capContract{
	{"Index", []string{"QueryAppender", "BatchQuerier", "ParallelBuilder", "BatchUpdater"}},
	{"BoxIndex", []string{"QueryAppender", "BatchQuerier", "BoxParallelBuilder", "BoxBatchUpdater"}},
	{"EpochIndex", []string{"EpochQueryAppender"}},
	{"EpochBoxIndex", []string{"EpochQueryAppender"}},
	{"ShardedEpochIndex", []string{"ShardedEpochQueryAppender"}},
	{"ShardedEpochBoxIndex", []string{"ShardedEpochQueryAppender"}},
}

func runCapForward(p *Pass) {
	core := findCore(p.Pkg)
	if core == nil {
		return // package out of the index ecosystem
	}
	ifaces := coreInterfaces(core)
	if len(ifaces) == 0 {
		return
	}
	// innerIfaces are the contracts whose presence in a field marks a
	// type as a wrapper.
	var innerIfaces []*types.Interface
	for _, c := range capContracts {
		if i := ifaces[c.name]; i != nil {
			innerIfaces = append(innerIfaces, i)
		}
	}
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !obj.Exported() || obj.IsAlias() {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
			continue
		}
		if !storesInnerIndex(named, innerIfaces, make(map[types.Type]bool), 0) {
			continue
		}
		ptr := types.NewPointer(named)
		for _, c := range capContracts {
			trigger := ifaces[c.name]
			if trigger == nil || !types.Implements(ptr, trigger) {
				continue
			}
			for _, req := range c.required {
				cap := ifaces[req]
				if cap == nil {
					continue
				}
				if !types.Implements(ptr, cap) {
					p.Reportf(obj.Pos(),
						"%s satisfies core.%s and stores an inner index, but does not forward core.%s (%s): wrappers must forward every optional capability so layering never silently drops the buffered/parallel paths",
						name, c.name, req, methodNames(cap))
				}
			}
		}
	}
}

// findCore returns the core package's *types.Package: the analyzed
// package itself when it IS core, else the direct import.
func findCore(pkg *types.Package) *types.Package {
	if pkg.Path() == corePath {
		return pkg
	}
	for _, imp := range pkg.Imports() {
		if imp.Path() == corePath {
			return imp
		}
	}
	return nil
}

// coreInterfaces resolves every contract and capability name used by
// capContracts in core's scope.
func coreInterfaces(core *types.Package) map[string]*types.Interface {
	ifaces := make(map[string]*types.Interface)
	add := func(name string) {
		if obj := core.Scope().Lookup(name); obj != nil {
			if i, ok := obj.Type().Underlying().(*types.Interface); ok {
				ifaces[name] = i
			}
		}
	}
	for _, c := range capContracts {
		add(c.name)
		for _, r := range c.required {
			add(r)
		}
	}
	return ifaces
}

// storesInnerIndex reports whether t (a named struct type) holds an
// inner index: a field whose type satisfies one of the index
// contracts, a func-typed field producing one (the factory pattern the
// epoch wrapper uses), or — recursively, up to 4 structs deep — a
// field of a struct type that does (the shard engine stores regions
// that each hold their tuned inner index).
func storesInnerIndex(t types.Type, contracts []*types.Interface, visited map[types.Type]bool, depth int) bool {
	if depth > 4 || visited[t] {
		return false
	}
	visited[t] = true
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := unwrapElem(st.Field(i).Type())
		if isIndexLike(ft, contracts) {
			return true
		}
		if sig, ok := ft.Underlying().(*types.Signature); ok {
			for r := 0; r < sig.Results().Len(); r++ {
				if isIndexLike(unwrapElem(sig.Results().At(r).Type()), contracts) {
					return true
				}
			}
			continue
		}
		if _, ok := ft.Underlying().(*types.Struct); ok {
			if storesInnerIndex(ft, contracts, visited, depth+1) {
				return true
			}
		}
	}
	return false
}

// unwrapElem strips pointers, slices, arrays, and map values down to
// the element type a container field ultimately stores.
func unwrapElem(t types.Type) types.Type {
	for {
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		default:
			return t
		}
	}
}

// isIndexLike reports whether t satisfies any of the index contracts
// (checking both t and *t for named non-interface types).
func isIndexLike(t types.Type, contracts []*types.Interface) bool {
	for _, c := range contracts {
		if types.Implements(t, c) {
			return true
		}
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			if types.Implements(types.NewPointer(t), c) {
				return true
			}
		}
	}
	return false
}

// methodNames lists an interface's method names for diagnostics.
func methodNames(i *types.Interface) string {
	s := ""
	for m := 0; m < i.NumMethods(); m++ {
		if m > 0 {
			s += ", "
		}
		s += i.Method(m).Name()
	}
	return s
}
