package joinlint

import (
	"go/ast"
	"go/types"
)

// HotPath checks the bodies of functions annotated //joinlint:hotpath —
// the QueryAppend/QueryBatch kernels and their per-row helpers, where
// the paper's order-of-magnitude wins live. The forbidden constructs
// are the ones that silently re-introduce per-result indirection or
// hidden allocation:
//
//   - interface boxing (a concrete value converted, passed, assigned,
//     or returned as an interface) — allocates and adds an indirect
//     call; exactly the per-result emit overhead PR 8 removed;
//   - closures (func literals) — capture forces heap escapes and the
//     call is never inlined; immediately-invoked literals are allowed
//     since they compile to plain blocks;
//   - defer — adds per-call bookkeeping to a function executed millions
//     of times per tick;
//   - map iteration — unpredictable memory order and per-bucket
//     branches on a path built around dense sequential scans;
//   - fmt/log calls — box every operand and take locks.
//
// The runtime counterpart is the AllocsPerRun pin in the zeroalloc
// tests; the compile-time counterpart for allocations the analyzer
// cannot see is the escape gate (probe.go), which proves the same
// functions heap-allocation-free from the compiler's own -m output.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//joinlint:hotpath functions must not box interfaces, close over variables, defer, iterate maps, or call fmt/log",
	Run:  runHotPath,
}

func runHotPath(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := p.funcDirective(fn, dirHotPath); !ok {
				continue
			}
			p.checkHotPathBody(fn)
		}
	}
}

func (p *Pass) checkHotPathBody(fn *ast.FuncDecl) {
	sig, _ := p.Info.Defs[fn.Name].Type().(*types.Signature)
	// immediatelyInvoked marks func literals appearing as the callee of
	// a call expression: those compile to inlined blocks, not closures.
	immediatelyInvoked := map[*ast.FuncLit]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := call.Fun.(*ast.FuncLit); ok {
				immediatelyInvoked[lit] = true
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			p.Reportf(n.Pos(), "defer on the hot path: per-call bookkeeping in a kernel; hoist cleanup to the caller or drop the annotation")
		case *ast.FuncLit:
			if !immediatelyInvoked[n] {
				p.Reportf(n.Pos(), "closure on the hot path: captured variables escape to the heap and the indirect call defeats inlining; pass data explicitly, or resolve the closure once at build time (see core.QueryAppendOf)")
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					p.Reportf(n.Pos(), "map iteration on the hot path: per-bucket branching and unpredictable memory order in a kernel built around dense scans")
				}
			}
		case *ast.CallExpr:
			p.checkHotPathCall(n)
		case *ast.AssignStmt:
			if n.Tok.String() == "=" && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if dst := p.Info.TypeOf(n.Lhs[i]); dst != nil {
						p.checkBoxing(dst, n.Rhs[i], "assignment")
					}
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				if dst := p.Info.TypeOf(n.Type); dst != nil {
					for _, v := range n.Values {
						p.checkBoxing(dst, v, "declaration")
					}
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && sig.Results().Len() == len(n.Results) {
				for i, res := range n.Results {
					p.checkBoxing(sig.Results().At(i).Type(), res, "return")
				}
			}
		case *ast.CompositeLit:
			p.checkCompositeBoxing(n)
		}
		return true
	})
}

// checkHotPathCall flags fmt/log calls, interface-boxing conversions,
// and concrete arguments passed to interface parameters.
func (p *Pass) checkHotPathCall(call *ast.CallExpr) {
	if pkg := calleePackage(p.Info, call); pkg == "fmt" || pkg == "log" || pkg == "log/slog" {
		p.Reportf(call.Pos(), "%s call on the hot path: boxes every operand and formats/locks per result", pkg)
		return
	}
	if calleePackage(p.Info, call) == "time" && calleeName(call) == "Now" {
		p.Reportf(call.Pos(), "time.Now on the hot path: a vDSO call (tens of ns) per result; take timestamps at the kernel boundary or through the caller-supplied clock hook (obs.Registry.SetClock)")
		return
	}
	// Conversion to an interface type: any(x), error(x), ...
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		p.checkBoxing(tv.Type, call.Args[0], "conversion")
		return
	}
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // builtin (append, len, ...) — no interface params
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var dst types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no boxing here
			}
			dst = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			dst = params.At(i).Type()
		default:
			continue
		}
		p.checkBoxing(dst, arg, "argument")
	}
}

// checkCompositeBoxing flags concrete values stored into interface
// slots of a composite literal ([]any{v}, map[K]any{...}, struct with
// interface fields).
func (p *Pass) checkCompositeBoxing(lit *ast.CompositeLit) {
	t := p.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		for _, el := range lit.Elts {
			p.checkBoxing(u.Elem(), stripKeyValue(el), "composite literal element")
		}
	case *types.Array:
		for _, el := range lit.Elts {
			p.checkBoxing(u.Elem(), stripKeyValue(el), "composite literal element")
		}
	case *types.Map:
		for _, el := range lit.Elts {
			p.checkBoxing(u.Elem(), stripKeyValue(el), "composite literal element")
		}
	case *types.Struct:
		for i, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok {
					for f := 0; f < u.NumFields(); f++ {
						if u.Field(f).Name() == key.Name {
							p.checkBoxing(u.Field(f).Type(), kv.Value, "composite literal field")
						}
					}
				}
			} else if i < u.NumFields() {
				p.checkBoxing(u.Field(i).Type(), el, "composite literal field")
			}
		}
	}
}

func stripKeyValue(e ast.Expr) ast.Expr {
	if kv, ok := e.(*ast.KeyValueExpr); ok {
		return kv.Value
	}
	return e
}

// checkBoxing reports when a concrete-typed src lands in an
// interface-typed dst.
func (p *Pass) checkBoxing(dst types.Type, src ast.Expr, context string) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := p.Info.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() {
		return
	}
	st := tv.Type
	if _, ok := st.Underlying().(*types.Interface); ok {
		return // interface-to-interface, no new box
	}
	p.Reportf(src.Pos(), "interface boxing on the hot path (%s converts %s to %s): allocates and adds an indirect call per result — the overhead the buffered kernels exist to avoid", context, st, dst)
}

// calleeName returns the selector name of a qualified call
// (time.Now -> "Now"), or "" for everything else.
func calleeName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// calleePackage returns the import path of the package a qualified
// call targets (fmt.Sprintf -> "fmt"), or "" for everything else.
func calleePackage(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
