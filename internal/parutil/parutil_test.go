package parutil

import (
	"sync/atomic"
	"testing"
)

func TestForEachShardCoversRangeExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {7, 3}, {100, 1}, {100, 7}, {5, 16}, {64, 0},
	} {
		seen := make([]int32, tc.n)
		var calls atomic.Int32
		ForEachShard(tc.n, tc.workers, func(w, lo, hi int) {
			calls.Add(1)
			if lo >= hi {
				t.Errorf("n=%d workers=%d: empty shard [%d,%d)", tc.n, tc.workers, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d workers=%d: index %d visited %d times", tc.n, tc.workers, i, c)
			}
		}
		if tc.n == 0 && calls.Load() != 0 {
			t.Fatal("empty range spawned shards")
		}
	}
}

func TestForEachShardDeterministicBoundaries(t *testing.T) {
	// Shard w must always cover [w*ceil(n/workers), ...): the CSR build
	// relies on this to keep parallel builds bit-identical.
	ForEachShard(10, 3, func(w, lo, hi int) {
		if lo != w*4 {
			t.Errorf("shard %d starts at %d, want %d", w, lo, w*4)
		}
	})
}
