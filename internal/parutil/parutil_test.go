package parutil

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachShardCoversRangeExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {7, 3}, {100, 1}, {100, 7}, {5, 16}, {64, 0},
	} {
		seen := make([]int32, tc.n)
		var calls atomic.Int32
		ForEachShard(tc.n, tc.workers, func(w, lo, hi int) {
			calls.Add(1)
			if lo >= hi {
				t.Errorf("n=%d workers=%d: empty shard [%d,%d)", tc.n, tc.workers, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d workers=%d: index %d visited %d times", tc.n, tc.workers, i, c)
			}
		}
		if tc.n == 0 && calls.Load() != 0 {
			t.Fatal("empty range spawned shards")
		}
	}
}

func TestForEachShardDeterministicBoundaries(t *testing.T) {
	// Shard w must always cover [w*ceil(n/workers), ...): the CSR build
	// relies on this to keep parallel builds bit-identical.
	ForEachShard(10, 3, func(w, lo, hi int) {
		if lo != w*4 {
			t.Errorf("shard %d starts at %d, want %d", w, lo, w*4)
		}
	})
}

// TestForEachShardPanicContained is the crash-containment regression:
// before the Group rewrite, a panic in one shard killed the whole test
// process (no recover can catch a panic on another goroutine). Now the
// panic must surface on the CALLING goroutine as a *WorkerPanic with the
// worker's stack, all sibling shards must still run to completion, and
// nothing may deadlock.
func TestForEachShardPanicContained(t *testing.T) {
	var ran atomic.Int32
	var rec any
	func() {
		defer func() { rec = recover() }()
		ForEachShard(64, 8, func(w, lo, hi int) {
			if w == 3 {
				panic("shard 3 exploded")
			}
			ran.Add(1)
		})
	}()
	wp, ok := rec.(*WorkerPanic)
	if !ok {
		t.Fatalf("recovered %T (%v), want *WorkerPanic", rec, rec)
	}
	if wp.Value != "shard 3 exploded" {
		t.Errorf("panic value = %v, want the shard's", wp.Value)
	}
	if !strings.Contains(string(wp.Stack), "parutil") {
		t.Errorf("worker stack not captured:\n%s", wp.Stack)
	}
	if !strings.Contains(wp.Error(), "shard 3 exploded") {
		t.Errorf("Error() = %q lacks the panic value", wp.Error())
	}
	if got := ran.Load(); got != 7 {
		t.Errorf("%d sibling shards completed, want 7", got)
	}
}

// TestGroupFirstPanicWins: multiple panicking workers must surface
// exactly one WorkerPanic after every worker finished.
func TestGroupFirstPanicWins(t *testing.T) {
	var g Group
	var done atomic.Int32
	for i := 0; i < 4; i++ {
		i := i
		g.Go(func() {
			defer done.Add(1)
			panic(i)
		})
	}
	var rec any
	func() {
		defer func() { rec = recover() }()
		g.Wait()
	}()
	if done.Load() != 4 {
		t.Fatalf("%d workers finished, want 4", done.Load())
	}
	wp, ok := rec.(*WorkerPanic)
	if !ok {
		t.Fatalf("recovered %T, want *WorkerPanic", rec)
	}
	if v, ok := wp.Value.(int); !ok || v < 0 || v > 3 {
		t.Errorf("panic value = %v, want one of the workers'", wp.Value)
	}
}

// TestGroupNoDeadlockUnderPanic: a slow healthy sibling must not be
// abandoned — Wait returns (panicking) only after it completed.
func TestGroupNoDeadlockUnderPanic(t *testing.T) {
	var g Group
	var slowDone atomic.Bool
	g.Go(func() { panic("fast crash") })
	g.Go(func() {
		time.Sleep(20 * time.Millisecond)
		slowDone.Store(true)
	})
	var rec any
	func() {
		defer func() { rec = recover() }()
		g.Wait()
	}()
	if rec == nil {
		t.Fatal("Wait did not re-panic")
	}
	if !slowDone.Load() {
		t.Fatal("Wait returned before the healthy sibling completed")
	}
}

func TestGroupCleanRun(t *testing.T) {
	var g Group
	var n atomic.Int32
	for i := 0; i < 8; i++ {
		g.Go(func() { n.Add(1) })
	}
	g.Wait() // must not panic
	if n.Load() != 8 {
		t.Fatalf("ran %d, want 8", n.Load())
	}
}

// TestGoErr: normal returns deliver fn's error; a panic is delivered as
// a *WorkerPanic error instead of killing the process.
func TestGoErr(t *testing.T) {
	if err := <-GoErr(func() error { return nil }); err != nil {
		t.Fatalf("clean fn delivered %v, want nil", err)
	}
	want := errors.New("boom")
	if err := <-GoErr(func() error { return want }); err != want {
		t.Fatalf("failing fn delivered %v, want %v", err, want)
	}
	err := <-GoErr(func() error { panic("crash") })
	wp, ok := err.(*WorkerPanic)
	if !ok {
		t.Fatalf("panicking fn delivered %T, want *WorkerPanic", err)
	}
	if wp.Value != "crash" {
		t.Errorf("panic value = %v, want crash", wp.Value)
	}
	if len(wp.Stack) == 0 {
		t.Error("worker stack not captured")
	}
}
