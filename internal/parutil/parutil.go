// Package parutil holds the small fork/join primitives the parallel
// build, update, and snapshot paths share.
//
// Crash containment: a panic on a worker goroutine would normally kill
// the whole process — no recover in any ancestor frame can catch it, and
// a missing wg.Done would deadlock every sibling. Both fork/join
// primitives here (Group and ForEachShard) therefore recover panics
// inside the worker, let every sibling run to completion, and re-panic
// the FIRST captured panic on the calling goroutine as a *WorkerPanic
// carrying the worker's stack. The caller (or anything above it, e.g.
// the epoch publisher's containment barrier) can then recover it like
// any ordinary panic, with the original stack preserved for the report.
package parutil

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// WorkerPanic wraps a panic captured on a fork/join worker goroutine. It
// is re-panicked on the calling goroutine after all siblings complete,
// so it is recoverable where a raw worker panic is not. It implements
// error so containment layers can hand it up as one.
type WorkerPanic struct {
	// Value is the original panic value.
	Value any
	// Stack is the worker goroutine's stack at the point of the panic.
	Stack []byte
}

// Error implements error.
func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("panic on worker goroutine: %v\n%s", p.Value, p.Stack)
}

// Group is a fork/join barrier with crash containment: Go runs fn on its
// own goroutine, Wait blocks until every fn returned, and if any fn
// panicked, Wait re-panics the first captured *WorkerPanic on the
// caller's goroutine. Unlike sync.WaitGroup with bare goroutines, one
// crashing worker can neither kill the process nor leave siblings (or
// the caller) blocked forever. The zero value is ready to use; a Group
// must not be reused after Wait returns via panic.
type Group struct {
	wg    sync.WaitGroup
	panic atomic.Pointer[WorkerPanic]
}

// Go runs fn on a new goroutine, capturing a panic instead of letting it
// take down the process.
func (g *Group) Go(fn func()) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() {
			if v := recover(); v != nil {
				// Keep only the first panic; concurrent seconds lose the
				// race and are dropped (they are almost always the same
				// fault replicated per shard).
				g.panic.CompareAndSwap(nil, &WorkerPanic{Value: v, Stack: debug.Stack()})
			}
		}()
		fn()
	}()
}

// Wait blocks until all Go'd functions returned, then re-panics the
// first captured worker panic, if any.
func (g *Group) Wait() {
	g.wg.Wait()
	if p := g.panic.Load(); p != nil {
		panic(p)
	}
}

// GoErr runs fn on a new goroutine with crash containment and delivers
// its outcome on the returned 1-buffered channel: fn's error on normal
// return, or a *WorkerPanic (as an error) if fn panicked. It is the
// fork half of a fork/join where the join happens later and elsewhere —
// the concurrent tick drivers' updater goroutine, which must keep the
// reader workers alive while ApplyBatch runs and surface a crash as a
// failed tick rather than a dead process. The caller must receive from
// the channel exactly once.
func GoErr(fn func() error) <-chan error {
	done := make(chan error, 1)
	go func() {
		defer func() {
			if v := recover(); v != nil {
				done <- &WorkerPanic{Value: v, Stack: debug.Stack()}
			}
		}()
		done <- fn()
	}()
	return done
}

// ForEachShard splits [0, n) into one contiguous chunk per worker and
// runs fn(w, lo, hi) on its own goroutine for each non-empty chunk,
// returning after all complete. Chunk w covers [w*ceil(n/workers), ...),
// so shard boundaries depend only on n and workers — callers relying on
// deterministic shard assignment (the CSR counting-sort build) get it.
//
// A panicking shard does not kill the process or deadlock the siblings:
// see the package comment.
func ForEachShard(n, workers int, fn func(w, lo, hi int)) {
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	var g Group
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		w, lo, hi := w, lo, hi
		g.Go(func() { fn(w, lo, hi) })
	}
	g.Wait()
}
