// Package parutil holds the small fork/join primitives the parallel
// build, update, and snapshot paths share.
package parutil

import "sync"

// ForEachShard splits [0, n) into one contiguous chunk per worker and
// runs fn(w, lo, hi) on its own goroutine for each non-empty chunk,
// returning after all complete. Chunk w covers [w*ceil(n/workers), ...),
// so shard boundaries depend only on n and workers — callers relying on
// deterministic shard assignment (the CSR counting-sort build) get it.
func ForEachShard(n, workers int, fn func(w, lo, hi int)) {
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
