package stats

import (
	"fmt"
	"strings"
)

// Series is one figure's worth of data: a shared x-axis and one line per
// technique, mirroring how the paper's plots are structured ("Avg. Time
// per Tick" over some swept parameter).
type Series struct {
	Title  string
	XLabel string
	YLabel string
	Xs     []float64
	Lines  []Line
}

// Line is a single named curve over the series' x-axis.
type Line struct {
	Name string
	Ys   []float64
}

// AddLine appends a curve; the number of points must match the x-axis.
func (s *Series) AddLine(name string, ys []float64) error {
	if len(ys) != len(s.Xs) {
		return fmt.Errorf("stats: line %q has %d points, series has %d x values", name, len(ys), len(s.Xs))
	}
	s.Lines = append(s.Lines, Line{Name: name, Ys: append([]float64(nil), ys...)})
	return nil
}

// Line returns the named curve, or nil.
func (s *Series) Line(name string) *Line {
	for i := range s.Lines {
		if s.Lines[i].Name == name {
			return &s.Lines[i]
		}
	}
	return nil
}

// Format renders the series as an aligned text table: one row per x
// value, one column per line. This is the harness's substitute for the
// paper's plots — same numbers, textual form.
func (s *Series) Format() string {
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "# %s\n", s.Title)
	}
	if s.YLabel != "" {
		fmt.Fprintf(&b, "# y: %s\n", s.YLabel)
	}
	header := make([]string, 0, len(s.Lines)+1)
	header = append(header, s.XLabel)
	for _, l := range s.Lines {
		header = append(header, l.Name)
	}
	rows := make([][]string, 0, len(s.Xs)+1)
	rows = append(rows, header)
	for i, x := range s.Xs {
		row := make([]string, 0, len(s.Lines)+1)
		row = append(row, trimFloat(x))
		for _, l := range s.Lines {
			row = append(row, fmt.Sprintf("%.4f", l.Ys[i]))
		}
		rows = append(rows, row)
	}
	writeAligned(&b, rows)
	return b.String()
}

// CSV renders the series as comma-separated values with a header row.
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(s.XLabel))
	for _, l := range s.Lines {
		b.WriteByte(',')
		b.WriteString(csvEscape(l.Name))
	}
	b.WriteByte('\n')
	for i, x := range s.Xs {
		b.WriteString(trimFloat(x))
		for _, l := range s.Lines {
			fmt.Fprintf(&b, ",%g", l.Ys[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table is a generic titled grid of cells with a header, used for the
// paper's Tables 2 and 3.
type Table struct {
	Title   string
	Header  []string
	RowsDat [][]string
}

// NewTable creates a table with the given header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.RowsDat = append(t.RowsDat, row)
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	rows := make([][]string, 0, len(t.RowsDat)+1)
	rows = append(rows, t.Header)
	rows = append(rows, t.RowsDat...)
	writeAligned(&b, rows)
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	for i, h := range t.Header {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvEscape(h))
	}
	b.WriteByte('\n')
	for _, row := range t.RowsDat {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func writeAligned(b *strings.Builder, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range rows {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%g", x)
	return s
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
