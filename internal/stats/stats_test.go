package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestAggBasics(t *testing.T) {
	var a Agg
	if a.N() != 0 || a.Mean() != 0 || a.Min() != 0 || a.Max() != 0 || a.Var() != 0 {
		t.Fatal("empty aggregate must be all zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Mean() != 5 {
		t.Fatalf("Mean = %g, want 5", a.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(a.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %g, want %g", a.Var(), 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g", a.Min(), a.Max())
	}
}

func TestAggSingle(t *testing.T) {
	var a Agg
	a.Add(42)
	if a.Mean() != 42 || a.Min() != 42 || a.Max() != 42 || a.Var() != 0 {
		t.Fatalf("single-element aggregate wrong: %+v", a)
	}
}

func TestAggMergeMatchesSequential(t *testing.T) {
	r := xrand.New(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Float64()*100 - 50
	}
	var whole Agg
	for _, x := range xs {
		whole.Add(x)
	}
	var left, right Agg
	for _, x := range xs[:300] {
		left.Add(x)
	}
	for _, x := range xs[300:] {
		right.Add(x)
	}
	left.Merge(right)
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), whole.N())
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-9 {
		t.Fatalf("merged mean %g vs %g", left.Mean(), whole.Mean())
	}
	if math.Abs(left.Var()-whole.Var()) > 1e-9 {
		t.Fatalf("merged var %g vs %g", left.Var(), whole.Var())
	}
	if left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatal("merged min/max wrong")
	}
}

func TestAggMergeEmpty(t *testing.T) {
	var a, b Agg
	a.Add(1)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 {
		t.Fatal("merge with empty changed N")
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 1 {
		t.Fatal("merge into empty broken")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50}, {-1, 10}, {2, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	// p=0.875 over 5 elements: position 3.5, midway between 40 and 50.
	if got := Percentile(xs, 0.875); got != 45 {
		t.Errorf("interpolated percentile = %g, want 45", got)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile must be 0")
	}
	if Percentile([]float64{7}, 0.9) != 7 {
		t.Error("singleton percentile must be the element")
	}
	if Median(xs) != 30 {
		t.Error("median wrong")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestMeanAndHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean broken")
	}
	if Speedup(6, 3) != "2.00x" {
		t.Fatalf("Speedup = %s", Speedup(6, 3))
	}
	if Speedup(1, 0) != "inf" {
		t.Fatal("Speedup by zero must be inf")
	}
	if ArgminIndex([]float64{3, 1, 2}) != 1 {
		t.Fatal("ArgminIndex broken")
	}
	if ArgminIndex(nil) != -1 {
		t.Fatal("ArgminIndex(nil) must be -1")
	}
}

func TestPropAggMeanWithinBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var a Agg
		ok := false
		for _, x := range raw {
			// Differences of near-MaxFloat64 values overflow; the
			// aggregator targets tick times, not the float64 extremes.
			if math.IsNaN(x) || math.Abs(x) > 1e307 {
				continue
			}
			a.Add(x)
			ok = true
		}
		if !ok {
			return true
		}
		// Tolerance must scale with magnitude: Welford is stable but not
		// exact, and quick generates values near MaxFloat64.
		tol := (math.Abs(a.Min())+math.Abs(a.Max()))*1e-12 + 1e-9
		return a.Mean() >= a.Min()-tol && a.Mean() <= a.Max()+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesFormat(t *testing.T) {
	s := &Series{Title: "Fig X", XLabel: "n", YLabel: "seconds", Xs: []float64{1, 2, 3}}
	if err := s.AddLine("a", []float64{0.1, 0.2, 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddLine("b", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddLine("short", []float64{1}); err == nil {
		t.Fatal("mismatched line accepted")
	}
	out := s.Format()
	for _, want := range []string{"Fig X", "seconds", "n", "a", "b", "0.1000", "3.0000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	if s.Line("a") == nil || s.Line("zzz") != nil {
		t.Fatal("Line lookup broken")
	}
}

func TestSeriesCSV(t *testing.T) {
	s := &Series{XLabel: "x", Xs: []float64{1, 2}}
	_ = s.AddLine("with,comma", []float64{0.5, 1.5})
	csv := s.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), csv)
	}
	if lines[0] != `x,"with,comma"` {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if lines[1] != "1,0.5" {
		t.Fatalf("CSV row = %q", lines[1])
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tb := NewTable("Table 2", "Method", "Build (s)", "Query (s)")
	tb.AddRow("R-Tree", "0.008", "0.098")
	tb.AddRow("Simple Grid", "0.0019") // short row padded
	out := tb.Format()
	for _, want := range []string{"Table 2", "Method", "R-Tree", "0.098", "Simple Grid"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "Method,Build (s),Query (s)\n") {
		t.Fatalf("CSV header wrong: %q", csv)
	}
	if !strings.Contains(csv, "Simple Grid,0.0019,\n") {
		t.Fatalf("padded row missing: %q", csv)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "bbbb")
	tb.AddRow("xxxxx", "y")
	out := tb.Format()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	// Column 2 must start at the same offset in both lines.
	if strings.Index(lines[0], "bbbb") != strings.Index(lines[1], "y") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}
