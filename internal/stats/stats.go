// Package stats provides the numeric aggregation and plain-text reporting
// used by the experiment harness: streaming moments (Welford), quantiles,
// and the Series/Table formatters that print the same rows and series the
// paper's figures and tables report.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Agg accumulates streaming summary statistics using Welford's algorithm,
// which is numerically stable for long runs of small tick times.
type Agg struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the aggregate.
func (a *Agg) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations.
func (a *Agg) N() int64 { return a.n }

// Mean returns the arithmetic mean (0 when empty).
func (a *Agg) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance (0 with fewer than two
// observations).
func (a *Agg) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Stddev returns the sample standard deviation.
func (a *Agg) Stddev() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest observation (0 when empty).
func (a *Agg) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest observation (0 when empty).
func (a *Agg) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}

// Merge combines another aggregate into a (parallel aggregation).
func (a *Agg) Merge(b Agg) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics. It does not modify xs. Callers
// needing several quantiles of the same slice should use Percentiles,
// which sorts once.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

// Percentiles returns the p-quantile of xs for each p in ps, sorting the
// copied slice exactly once — the multi-quantile companion of Percentile
// for latency reporting, where p50/p95/p99 are read off the same sample.
// It does not modify xs.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = quantileSorted(sorted, p)
	}
	return out
}

// quantileSorted reads the p-quantile off an already-sorted slice.
func quantileSorted(sorted []float64, p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 0.5) }

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Speedup formats the ratio a/b as "N.NNx"; it guards the divide.
func Speedup(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// ArgminIndex returns the index of the smallest element (-1 when empty).
func ArgminIndex(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}
