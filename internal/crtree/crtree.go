// Package crtree implements the CR-tree technique of the study (Kim, Cha
// & Kwon, "Optimizing Multidimensional Index Trees for Main Memory
// Access", SIGMOD 2001), the cache-conscious R-tree variant.
//
// The CR-tree's idea: an internal node stores its children's MBRs as
// Quantized Relative MBRs (QRMBRs) — each child rectangle is expressed
// relative to the node's own reference MBR and quantized to a few bits
// per coordinate (8 here). A child record shrinks from 16+ bytes of
// float coordinates to 4 bytes, so a cache line holds ~4x more entries
// and the tree gets wider for the same node byte-budget. Quantization is
// conservative (floor the mins, ceil the maxes), so QRMBRs always
// enclose the exact child MBRs: queries may descend into a few false
// positives but never miss results.
//
// The skeleton (STR bulk load per tick, flat arrays, contiguous
// children) matches internal/rtree so that the comparison between the
// two isolates exactly the node-compression difference, the same
// methodology the study uses.
package crtree

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/sortutil"
)

// DefaultFanout is the default node capacity. The CR-tree's fanout can be
// larger than the R-tree's for the same cache budget because child
// records are 4 bytes; 32 is the sweep optimum in our harness.
const DefaultFanout = 32

// qBits is the quantization resolution per coordinate.
const qBits = 8

// qMax is the largest quantized cell index.
const qMax = (1 << qBits) - 1

// Tree is a static, STR-packed CR-tree over a point snapshot. It
// implements core.Index.
type Tree struct {
	fanout int
	pts    []geom.Point

	entries []uint32
	nodes   []node
	// qmbrs holds one 4-byte QRMBR per child of each internal node,
	// indexed by the parent's first child offset: the QRMBR of child
	// nodes[c] inside parent nd lives at qmbrs[c] (same index space as
	// nodes, one record per node except the root).
	qmbrs []qrmbr
	root  int32

	scratchIDs  []uint32
	scratchKeys []uint32
	levelIdx    []uint32
	levelNodes  []node
}

// node is one CR-tree node. The exact MBR is kept because it is the
// reference rectangle quantization is relative to; children are
// addressed as a contiguous run.
type node struct {
	mbr   geom.Rect
	first int32
	count int32
	leaf  bool
}

// qrmbr is a child MBR quantized relative to its parent's reference MBR.
type qrmbr struct {
	minX, minY, maxX, maxY uint8
}

// New returns a tree with the given fanout.
func New(fanout int) (*Tree, error) {
	if fanout < 2 {
		return nil, fmt.Errorf("crtree: fanout must be >= 2, got %d", fanout)
	}
	return &Tree{fanout: fanout, root: -1}, nil
}

// MustNew is New for known-good fanouts; it panics on error.
func MustNew(fanout int) *Tree {
	t, err := New(fanout)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements core.Index.
func (t *Tree) Name() string { return "CR-Tree" }

// Fanout returns the node capacity.
func (t *Tree) Fanout() int { return t.fanout }

// Len implements core.Counter.
func (t *Tree) Len() int { return len(t.entries) }

// Build implements core.Index: STR packing identical to the R-tree, plus
// a QRMBR computation pass per internal level.
func (t *Tree) Build(pts []geom.Point) {
	t.pts = pts
	n := len(pts)
	t.nodes = t.nodes[:0]
	t.entries = resizeU32(t.entries, n)
	t.root = -1
	if n == 0 {
		return
	}

	for i := range t.entries {
		t.entries[i] = uint32(i)
	}
	t.scratchIDs = resizeU32(t.scratchIDs, n)
	t.scratchKeys = resizeU32(t.scratchKeys, n)
	keys := t.scratchKeys
	for i := range pts {
		keys[i] = sortutil.Float32Key(pts[i].X)
	}
	sortutil.ByKey32(t.entries, keys, t.scratchIDs)

	leaves := (n + t.fanout - 1) / t.fanout
	slabs := int(math.Ceil(math.Sqrt(float64(leaves))))
	slabSize := slabs * t.fanout
	for i := range pts {
		keys[i] = sortutil.Float32Key(pts[i].Y)
	}
	for start := 0; start < n; start += slabSize {
		end := start + slabSize
		if end > n {
			end = n
		}
		sortutil.ByKey32(t.entries[start:end], keys, t.scratchIDs)
	}

	for start := 0; start < n; start += t.fanout {
		end := start + t.fanout
		if end > n {
			end = n
		}
		mbr := pointMBR(pts, t.entries[start:end])
		t.nodes = append(t.nodes, node{mbr: mbr, first: int32(start), count: int32(end - start), leaf: true})
	}

	levelStart := 0
	levelCount := len(t.nodes)
	for levelCount > 1 {
		nextStart := len(t.nodes)
		t.packLevel(levelStart, levelCount)
		levelStart = nextStart
		levelCount = len(t.nodes) - nextStart
	}
	t.root = int32(len(t.nodes) - 1)

	// Quantize every child MBR relative to its parent's reference MBR.
	t.qmbrs = resizeQ(t.qmbrs, len(t.nodes))
	for pi := range t.nodes {
		p := &t.nodes[pi]
		if p.leaf {
			continue
		}
		for c := p.first; c < p.first+p.count; c++ {
			t.qmbrs[c] = quantize(t.nodes[c].mbr, p.mbr)
		}
	}
}

func (t *Tree) packLevel(start, count int) {
	idx := resizeU32(t.levelIdx, count)
	t.levelIdx = idx
	for i := range idx {
		idx[i] = uint32(i)
	}
	keys := resizeU32(t.scratchKeys, count)
	t.scratchKeys = keys
	scratch := resizeU32(t.scratchIDs, count)
	t.scratchIDs = scratch

	level := t.nodes[start : start+count]
	for i, nd := range level {
		keys[i] = sortutil.Float32Key(nd.mbr.Center().X)
	}
	sortutil.ByKey32(idx, keys, scratch)

	parents := (count + t.fanout - 1) / t.fanout
	slabs := int(math.Ceil(math.Sqrt(float64(parents))))
	slabSize := slabs * t.fanout
	for i, nd := range level {
		keys[i] = sortutil.Float32Key(nd.mbr.Center().Y)
	}
	for s := 0; s < count; s += slabSize {
		e := s + slabSize
		if e > count {
			e = count
		}
		sortutil.ByKey32(idx[s:e], keys, scratch)
	}

	reordered := resizeNodes(t.levelNodes, count)
	t.levelNodes = reordered
	for i, j := range idx {
		reordered[i] = level[j]
	}
	copy(level, reordered)

	for s := 0; s < count; s += t.fanout {
		e := s + t.fanout
		if e > count {
			e = count
		}
		mbr := level[s].mbr
		for _, nd := range level[s+1 : e] {
			mbr = mbr.Union(nd.mbr)
		}
		t.nodes = append(t.nodes, node{mbr: mbr, first: int32(start + s), count: int32(e - s)})
	}
}

// quantize maps child onto the 256x256 lattice spanned by ref,
// conservatively: mins floored, maxes ceiled, so the QRMBR encloses
// child.
func quantize(child, ref geom.Rect) qrmbr {
	w := float64(ref.Width())
	h := float64(ref.Height())
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	sx := 256 / w
	sy := 256 / h
	return qrmbr{
		minX: qFloor(float64(child.MinX-ref.MinX) * sx),
		minY: qFloor(float64(child.MinY-ref.MinY) * sy),
		maxX: qCeil(float64(child.MaxX-ref.MinX) * sx),
		maxY: qCeil(float64(child.MaxY-ref.MinY) * sy),
	}
}

// quantizeQuery maps the query rectangle onto the same lattice with the
// opposite rounding (mins ceiled down by flooring the comparison side),
// i.e. the query is rounded outward too, so no true intersection is
// missed.
func quantizeQuery(r, ref geom.Rect) qrmbr {
	w := float64(ref.Width())
	h := float64(ref.Height())
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	sx := 256 / w
	sy := 256 / h
	return qrmbr{
		minX: qFloor(float64(r.MinX-ref.MinX) * sx),
		minY: qFloor(float64(r.MinY-ref.MinY) * sy),
		maxX: qCeil(float64(r.MaxX-ref.MinX) * sx),
		maxY: qCeil(float64(r.MaxY-ref.MinY) * sy),
	}
}

func qFloor(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= qMax {
		return qMax
	}
	return uint8(v)
}

func qCeil(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	c := math.Ceil(v)
	if c >= qMax {
		return qMax
	}
	return uint8(c)
}

func (a qrmbr) intersects(b qrmbr) bool {
	return a.minX <= b.maxX && b.minX <= a.maxX && a.minY <= b.maxY && b.minY <= a.maxY
}

// Query implements core.Index. Intersection tests against children run
// entirely in the quantized domain — the point of the CR-tree.
func (t *Tree) Query(r geom.Rect, emit func(id uint32)) {
	if t.root < 0 {
		return
	}
	var stack [256]int32
	top := 0
	stack[top] = t.root
	top++
	for top > 0 {
		top--
		nd := &t.nodes[stack[top]]
		if nd.leaf {
			if r.ContainsRect(nd.mbr) {
				for _, id := range t.entries[nd.first : nd.first+nd.count] {
					emit(id)
				}
			} else {
				for _, id := range t.entries[nd.first : nd.first+nd.count] {
					if t.pts[id].In(r) {
						emit(id)
					}
				}
			}
			continue
		}
		if !r.Intersects(nd.mbr) {
			continue
		}
		q := quantizeQuery(r, nd.mbr)
		for c := nd.first; c < nd.first+nd.count; c++ {
			if q.intersects(t.qmbrs[c]) {
				if top == len(stack) {
					t.queryRec(c, r, emit)
					continue
				}
				stack[top] = c
				top++
			}
		}
	}
}

func (t *Tree) queryRec(ni int32, r geom.Rect, emit func(id uint32)) {
	nd := &t.nodes[ni]
	if nd.leaf {
		for _, id := range t.entries[nd.first : nd.first+nd.count] {
			if t.pts[id].In(r) {
				emit(id)
			}
		}
		return
	}
	if !r.Intersects(nd.mbr) {
		return
	}
	q := quantizeQuery(r, nd.mbr)
	for c := nd.first; c < nd.first+nd.count; c++ {
		if q.intersects(t.qmbrs[c]) {
			t.queryRec(c, r, emit)
		}
	}
}

// Update implements core.Index: static category, rebuilt per tick.
func (t *Tree) Update(id uint32, old, new geom.Point) {}

// MemoryBytes implements core.MemoryReporter. Compared to the R-tree the
// per-child MBR cost drops from 16 to 4 bytes.
func (t *Tree) MemoryBytes() int64 {
	const nodeBytes = 28
	return int64(len(t.nodes))*nodeBytes + int64(len(t.qmbrs))*4 + int64(len(t.entries))*4
}

func pointMBR(pts []geom.Point, ids []uint32) geom.Rect {
	r := pts[ids[0]].Rect()
	for _, id := range ids[1:] {
		r = r.Stretch(pts[id])
	}
	return r
}

func resizeU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func resizeNodes(s []node, n int) []node {
	if cap(s) < n {
		return make([]node, n)
	}
	return s[:n]
}

func resizeQ(s []qrmbr, n int) []qrmbr {
	if cap(s) < n {
		return make([]qrmbr, n)
	}
	return s[:n]
}
