package crtree

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/testutil"
)

// TestAdversarialPatterns runs the shared differential suite against the
// brute-force oracle. QRMBR quantization must never lose a result on any
// pattern, including boundary-aligned and colocated points.
func TestAdversarialPatterns(t *testing.T) {
	bounds := geom.R(0, 0, 1000, 1000)
	for _, fanout := range []int{2, 8, 32} {
		tr := MustNew(fanout)
		if f := testutil.CheckAgainstOracle(tr, uint64(fanout), 1200, bounds); f != nil {
			t.Fatalf("fanout %d: %v", fanout, f)
		}
	}
}
