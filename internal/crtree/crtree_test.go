package crtree

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/xrand"
)

var testBounds = geom.R(0, 0, 1000, 1000)

func randomPoints(r *xrand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(r.Range(0, 1000), r.Range(0, 1000))
	}
	return pts
}

func bruteQuery(pts []geom.Point, r geom.Rect) map[uint32]bool {
	want := make(map[uint32]bool)
	for i := range pts {
		if pts[i].In(r) {
			want[uint32(i)] = true
		}
	}
	return want
}

func collect(t *testing.T, tr *Tree, r geom.Rect) map[uint32]bool {
	t.Helper()
	got := make(map[uint32]bool)
	tr.Query(r, func(id uint32) {
		if got[id] {
			t.Fatalf("duplicate emission of %d", id)
		}
		got[id] = true
	})
	return got
}

func TestNewRejectsBadFanout(t *testing.T) {
	for _, f := range []int{-3, 0, 1} {
		if _, err := New(f); err == nil {
			t.Errorf("fanout %d accepted", f)
		}
	}
}

func TestQueryMatchesBruteForce(t *testing.T) {
	r := xrand.New(1)
	for _, fanout := range []int{2, 8, 32} {
		for _, n := range []int{0, 1, 31, 32, 33, 1000, 4000} {
			pts := randomPoints(r, n)
			tr := MustNew(fanout)
			tr.Build(pts)
			for i := 0; i < 30; i++ {
				q := geom.Square(geom.Pt(r.Range(-50, 1050), r.Range(-50, 1050)), r.Range(1, 400))
				got := collect(t, tr, q)
				want := bruteQuery(pts, q)
				if len(got) != len(want) {
					t.Fatalf("fanout=%d n=%d query %d: got %d want %d", fanout, n, i, len(got), len(want))
				}
				for id := range want {
					if !got[id] {
						t.Fatalf("fanout=%d n=%d query %d: missing %d", fanout, n, i, id)
					}
				}
			}
		}
	}
}

func TestQRMBRConservative(t *testing.T) {
	// Every child's QRMBR, dequantized, must contain the child's exact
	// MBR: quantization may only widen.
	r := xrand.New(2)
	pts := randomPoints(r, 3000)
	tr := MustNew(16)
	tr.Build(pts)
	for pi := range tr.nodes {
		p := &tr.nodes[pi]
		if p.leaf {
			continue
		}
		for c := p.first; c < p.first+p.count; c++ {
			q := tr.qmbrs[c]
			child := tr.nodes[c].mbr
			exact := quantize(child, p.mbr)
			// The stored QRMBR is the conservative quantization itself.
			if q != exact {
				t.Fatalf("node %d child %d: stored %+v, recomputed %+v", pi, c, q, exact)
			}
			// Conservativeness: quantizing any point of the child's MBR
			// into the parent frame must stay within the QRMBR bounds.
			corners := []geom.Point{
				{X: child.MinX, Y: child.MinY},
				{X: child.MaxX, Y: child.MaxY},
			}
			for _, pt := range corners {
				pq := quantize(geom.Rect{MinX: pt.X, MinY: pt.Y, MaxX: pt.X, MaxY: pt.Y}, p.mbr)
				if pq.minX < q.minX || pq.maxX > q.maxX || pq.minY < q.minY || pq.maxY > q.maxY {
					t.Fatalf("node %d child %d: corner %v escapes QRMBR", pi, c, pt)
				}
			}
		}
	}
}

func TestQuantizeKnownValues(t *testing.T) {
	ref := geom.R(0, 0, 256, 256)
	q := quantize(geom.R(0, 0, 256, 256), ref)
	if q.minX != 0 || q.minY != 0 || q.maxX != 255 || q.maxY != 255 {
		t.Fatalf("full-ref quantization = %+v", q)
	}
	q = quantize(geom.R(1, 1, 2, 2), ref)
	if q.minX != 1 || q.maxX != 2 {
		t.Fatalf("unit quantization = %+v", q)
	}
	// Degenerate reference must not divide by zero.
	q = quantize(geom.R(5, 5, 5, 5), geom.R(5, 5, 5, 5))
	if q.maxX < q.minX || q.maxY < q.minY {
		t.Fatalf("degenerate quantization inverted: %+v", q)
	}
}

func TestPropQuantizedIntersectionNeverFalseNegative(t *testing.T) {
	ref := geom.R(0, 0, 1000, 1000)
	f := func(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2 float32) bool {
		a := geom.R(clamp(ax1), clamp(ay1), clamp(ax2), clamp(ay2))
		b := geom.R(clamp(bx1), clamp(by1), clamp(bx2), clamp(by2))
		if !a.Intersects(b) {
			return true // only false negatives are forbidden
		}
		qa := quantize(a, ref)
		qb := quantizeQuery(b, ref)
		return qa.intersects(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func clamp(v float32) float32 {
	if v < 0 {
		v = -v
	}
	for v > 1000 {
		v /= 10
	}
	return v
}

func TestCRTreeAgreesWithConfigurations(t *testing.T) {
	// Different fanouts must produce identical result sets.
	r := xrand.New(3)
	pts := randomPoints(r, 2500)
	a := MustNew(8)
	b := MustNew(32)
	a.Build(pts)
	b.Build(pts)
	for i := 0; i < 50; i++ {
		q := geom.Square(geom.Pt(r.Range(0, 1000), r.Range(0, 1000)), r.Range(1, 300))
		ga := collect(t, a, q)
		gb := collect(t, b, q)
		if len(ga) != len(gb) {
			t.Fatalf("query %d: fanout 8 found %d, fanout 32 found %d", i, len(ga), len(gb))
		}
	}
}

func TestEmptyAndColocated(t *testing.T) {
	tr := MustNew(32)
	tr.Build(nil)
	n := 0
	tr.Query(testBounds, func(uint32) { n++ })
	if n != 0 {
		t.Fatal("empty tree emitted results")
	}
	same := make([]geom.Point, 200)
	for i := range same {
		same[i] = geom.Pt(777, 777)
	}
	tr.Build(same)
	if got := collect(t, tr, geom.Square(geom.Pt(777, 777), 2)); len(got) != 200 {
		t.Fatalf("colocated: found %d of 200", len(got))
	}
}

func TestRebuildDiscardsOldPoints(t *testing.T) {
	r := xrand.New(4)
	tr := MustNew(32)
	tr.Build(randomPoints(r, 1000))
	tr.Build(randomPoints(r, 10))
	if tr.Len() != 10 {
		t.Fatalf("Len = %d after rebuild", tr.Len())
	}
	if got := collect(t, tr, testBounds); len(got) != 10 {
		t.Fatalf("rebuild leaked: %d results", len(got))
	}
}

func TestMemorySmallerThanRTreeEquivalent(t *testing.T) {
	// The compression argument: per-child MBR cost must be 4 bytes, so a
	// CR-tree node array is much smaller than exact-MBR nodes would be.
	r := xrand.New(5)
	pts := randomPoints(r, 10000)
	tr := MustNew(32)
	tr.Build(pts)
	// entries (4B each) + nodes + qmbrs; the qmbr share must be small.
	if tr.MemoryBytes() > int64(len(pts))*40 {
		t.Fatalf("CR-tree footprint implausibly large: %d bytes for %d points", tr.MemoryBytes(), len(pts))
	}
}
