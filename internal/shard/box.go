package shard

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/parutil"
	"repro/internal/tune"
)

var (
	_ core.BoxIndex           = (*BoxIndex)(nil)
	_ core.BoxParallelBuilder = (*BoxIndex)(nil)
	_ core.BoxBatchUpdater    = (*BoxIndex)(nil)
	_ core.Counter            = (*BoxIndex)(nil)
	_ core.MemoryReporter     = (*BoxIndex)(nil)
	_ core.InvariantChecker   = (*BoxIndex)(nil)
	_ core.QueryAppender      = (*BoxIndex)(nil)
	_ core.BatchQuerier       = (*BoxIndex)(nil)
	_ core.BoxIndex           = (*boxRegion)(nil)
	_ core.InvariantChecker   = (*boxRegion)(nil)
	_ core.QueryAppender      = (*boxRegion)(nil)
)

// boxRegion is one shard of the box engine. Unlike points, MBRs
// replicate: the region holds a replica of every box overlapping it,
// and its standalone Query dedups by the boundary-ownership rule (emit
// only when the reference point of query∩MBR falls in this region). The
// router skips that test for single-region queries, where it is always
// true.
type boxRegion struct {
	lat    *lattice
	cx, cy int
	sid    int
	frame  geom.Rect
	hints  core.WorkloadHints
	park   geom.Rect
	ins    *instruments

	choice tune.Choice
	chosen bool
	inner  core.BoxIndex
	// innerAppend is the inner's buffered query kernel (native when the
	// chosen family supports core.QueryAppender).
	innerAppend func(r geom.Rect, buf []uint32) []uint32

	lidOf   []uint32
	owner   []uint32
	rects   []geom.Rect // lid -> the replica's full (global) MBR
	free    []uint32
	live    int
	members []uint32
}

func newBoxRegion(lat *lattice, cx, cy int, hints core.WorkloadHints, ins *instruments) *boxRegion {
	frame := lat.regionFrame(cx, cy)
	c := frame.Center()
	return &boxRegion{
		lat:   lat,
		cx:    cx,
		cy:    cy,
		sid:   cy*lat.side + cx,
		frame: frame,
		hints: hints,
		park:  geom.Rect{MinX: c.X, MinY: c.Y, MaxX: c.X, MaxY: c.Y},
		ins:   ins,
	}
}

// Name implements core.BoxIndex.
func (s *boxRegion) Name() string {
	if s.inner != nil {
		return fmt.Sprintf("region(%d,%d %s)", s.cx, s.cy, s.inner.Name())
	}
	return fmt.Sprintf("region(%d,%d)", s.cx, s.cy)
}

// overlaps reports whether r's lattice span covers this region — the
// replica-membership rule.
func (s *boxRegion) overlaps(r geom.Rect) bool {
	x0, y0, x1, y1 := s.lat.spanOf(r)
	return s.cx >= x0 && s.cx <= x1 && s.cy >= y0 && s.cy <= y1
}

// OwnsRect implements epoch.RectOwner: whether this region is the
// reporting owner for a self-query of r — the reference point of r∩r is
// r's min corner.
func (s *boxRegion) OwnsRect(r geom.Rect) bool {
	return s.lat.idOf(r.MinX, r.MinY) == s.sid
}

// Build implements core.BoxIndex over a FULL snapshot (self-scan form
// for the epoch composition); the router routes once and calls
// buildMembers.
func (s *boxRegion) Build(all []geom.Rect) {
	s.members = s.members[:0]
	for id := range all {
		if s.overlaps(all[id]) {
			s.members = append(s.members, uint32(id))
		}
	}
	s.buildMembers(all, s.members)
}

func (s *boxRegion) buildMembers(all []geom.Rect, members []uint32) {
	if len(s.lidOf) != len(all) {
		s.lidOf = make([]uint32, len(all))
	}
	n := len(members)
	capa := n + n/8 + 8
	if cap(s.rects) < capa {
		s.rects = make([]geom.Rect, capa)
		s.owner = make([]uint32, capa)
	}
	s.rects = s.rects[:capa]
	s.owner = s.owner[:capa]
	for i, gid := range members {
		s.rects[i] = all[gid]
		s.owner[i] = gid
		s.lidOf[gid] = uint32(i)
	}
	s.free = s.free[:0]
	for i := capa - 1; i >= n; i-- {
		s.rects[i] = s.park
		s.owner[i] = NONE
		s.free = append(s.free, uint32(i))
	}
	s.live = n
	if !s.chosen {
		st := tune.SampleBoxes(s.rects[:n], s.frame, s.hints)
		s.choice = tune.ChooseBox(st)
		s.chosen = true
		s.inner = s.choice.NewBoxIndex(core.Params{Bounds: s.frame, NumPoints: capa, Hints: s.hints})
		s.innerAppend = core.QueryAppendOf(s.inner, s.inner.Query)
	}
	s.inner.Build(s.rects)
}

// lidFor returns id's live replica slot in this region, or NONE — the
// same validated lookup as pointRegion.lidFor (lidOf is not reset
// between builds; the owner table disambiguates stale entries).
func (s *boxRegion) lidFor(id uint32) uint32 {
	if lid := s.lidOf[id]; int(lid) < len(s.owner) && s.owner[lid] == id {
		return lid
	}
	return NONE
}

// Query implements core.BoxIndex standalone: always applies the
// boundary-ownership dedup, so a fan-out union over regions is
// exactly-once. The router uses query(r, emit, false) when the window
// cannot straddle regions.
func (s *boxRegion) Query(r geom.Rect, emit func(id uint32)) {
	s.query(r, emit, true)
}

func (s *boxRegion) query(r geom.Rect, emit func(id uint32), dedup bool) {
	owner := s.owner
	if !dedup {
		s.inner.Query(r, func(lid uint32) {
			if g := owner[lid]; g != NONE {
				emit(g)
			}
		})
		return
	}
	rects := s.rects
	var filtered int64
	s.inner.Query(r, func(lid uint32) {
		g := owner[lid]
		if g == NONE {
			return
		}
		rx, ry := refPoint(r, rects[lid])
		if s.lat.idOf(rx, ry) == s.sid {
			emit(g)
		} else {
			filtered++
		}
	})
	if filtered > 0 {
		s.ins.dedupFiltered.Add(filtered)
	}
}

// QueryAppend implements core.QueryAppender standalone (dedup always
// on): the inner appends local slots to the tail of buf, and the region
// compacts that tail in place through the owner and boundary-ownership
// filters.
//
//joinlint:hotpath
func (s *boxRegion) QueryAppend(r geom.Rect, buf []uint32) []uint32 {
	return s.queryAppend(r, buf, true)
}

//joinlint:hotpath
func (s *boxRegion) queryAppend(r geom.Rect, buf []uint32, dedup bool) []uint32 {
	tail := len(buf)
	buf = s.innerAppend(r, buf)
	owner := s.owner
	w := tail
	if !dedup {
		for _, lid := range buf[tail:] {
			if g := owner[lid]; g != NONE {
				buf[w] = g
				w++
			}
		}
		return buf[:w]
	}
	rects := s.rects
	var filtered int64
	for _, lid := range buf[tail:] {
		g := owner[lid]
		if g == NONE {
			continue
		}
		rx, ry := refPoint(r, rects[lid])
		if s.lat.idOf(rx, ry) == s.sid {
			buf[w] = g
			w++
		} else {
			filtered++
		}
	}
	if filtered > 0 {
		s.ins.dedupFiltered.Add(filtered)
	}
	return buf[:w]
}

// Update implements core.BoxIndex for all four replica-membership
// cases (the region's tables are the authority).
func (s *boxRegion) Update(id uint32, _, new geom.Rect) {
	lid := s.lidFor(id)
	inNew := s.overlaps(new)
	switch {
	case lid != NONE && inNew:
		s.inner.Update(lid, s.rects[lid], new)
		s.rects[lid] = new
	case lid != NONE: // replica leaves this region
		s.inner.Update(lid, s.rects[lid], s.park)
		s.rects[lid] = s.park
		s.owner[lid] = NONE
		s.lidOf[id] = NONE
		s.free = append(s.free, lid)
		s.live--
		s.ins.parked.Inc()
	case inNew: // replica enters this region
		if len(s.free) == 0 {
			s.grow()
		}
		lid = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.inner.Update(lid, s.rects[lid], new)
		s.rects[lid] = new
		s.owner[lid] = id
		s.lidOf[id] = lid
		s.live++
		s.ins.revived.Inc()
	}
}

func (s *boxRegion) grow() {
	old := len(s.rects)
	add := old/4 + 8
	for i := 0; i < add; i++ {
		s.rects = append(s.rects, s.park)
		s.owner = append(s.owner, NONE)
		s.free = append(s.free, uint32(old+i))
	}
	s.inner.Build(s.rects)
}

// CheckInvariants implements core.InvariantChecker.
func (s *boxRegion) CheckInvariants() error {
	if len(s.rects) != len(s.owner) {
		return fmt.Errorf("shard: region(%d,%d) arena %d vs owner %d", s.cx, s.cy, len(s.rects), len(s.owner))
	}
	if s.live+len(s.free) != len(s.rects) {
		return fmt.Errorf("shard: region(%d,%d) live %d + free %d != cap %d", s.cx, s.cy, s.live, len(s.free), len(s.rects))
	}
	liveSeen := 0
	for lid, g := range s.owner {
		if g == NONE {
			if s.rects[lid] != s.park {
				return fmt.Errorf("shard: region(%d,%d) dead slot %d not parked", s.cx, s.cy, lid)
			}
			continue
		}
		liveSeen++
		if int(g) >= len(s.lidOf) || s.lidOf[g] != uint32(lid) {
			return fmt.Errorf("shard: region(%d,%d) slot %d owner %d not inverse-mapped", s.cx, s.cy, lid, g)
		}
		if !s.overlaps(s.rects[lid]) {
			return fmt.Errorf("shard: region(%d,%d) replica %d at %v does not overlap region", s.cx, s.cy, g, s.rects[lid])
		}
	}
	if liveSeen != s.live {
		return fmt.Errorf("shard: region(%d,%d) counted %d live, tracked %d", s.cx, s.cy, liveSeen, s.live)
	}
	if c, ok := s.inner.(core.Counter); ok && c.Len() != len(s.rects) {
		return fmt.Errorf("shard: region(%d,%d) inner holds %d entries, arena %d", s.cx, s.cy, c.Len(), len(s.rects))
	}
	if ic, ok := s.inner.(core.InvariantChecker); ok {
		if err := ic.CheckInvariants(); err != nil {
			return fmt.Errorf("shard: region(%d,%d) inner: %w", s.cx, s.cy, err)
		}
	}
	return nil
}

func (s *boxRegion) memoryBytes() int64 {
	b := int64(len(s.lidOf)+len(s.owner)+len(s.free))*4 + int64(len(s.rects))*16
	if mr, ok := s.inner.(core.MemoryReporter); ok {
		b += mr.MemoryBytes()
	}
	return b
}

// BoxIndex is the region-sharded box engine: a core.BoxIndex router
// over side x side boxRegions with replica-based membership and
// boundary-ownership dedup.
type BoxIndex struct {
	hints core.WorkloadHints
	side  int
	lat   lattice
	regs  []*boxRegion
	ins   instruments

	members [][]uint32
	route   [][]uint32 // per-worker x per-region parallel routing scratch
	batches [][]geom.BoxMove
	bounds  geom.Rect
	n       int
}

// NewBox constructs a sharded box engine with an explicit region-grid
// side (>= 1).
func NewBox(p core.Params, side int) *BoxIndex {
	if side < 1 {
		side = 1
	}
	tune.Calibrate()
	return &BoxIndex{hints: p.Hints, side: side, bounds: p.Bounds, n: p.NumPoints}
}

// NewAutoBox constructs a sharded box engine whose region-grid side is
// chosen by the tune shard-count ladder (p.Shards overrides).
func NewAutoBox(p core.Params) *BoxIndex {
	tune.Calibrate()
	return &BoxIndex{hints: p.Hints, side: p.Shards, bounds: p.Bounds, n: p.NumPoints}
}

// AutoBoxFactory is the core.BoxFactory for NewAutoBox (lineup key
// "boxshard-auto").
func AutoBoxFactory(p core.Params) core.BoxIndex { return NewAutoBox(p) }

// Name implements core.BoxIndex.
func (x *BoxIndex) Name() string {
	if x.side < 1 {
		return "boxshard[auto]"
	}
	return "box" + regionName(x.side)
}

// Side returns the region-grid side (0 before an auto first build).
func (x *BoxIndex) Side() int { return x.side }

// Regions returns per-region population and tuning choices.
func (x *BoxIndex) Regions() []RegionInfo {
	out := make([]RegionInfo, 0, len(x.regs))
	for _, s := range x.regs {
		out = append(out, RegionInfo{CX: s.cx, CY: s.cy, Frame: s.frame, Live: s.live, Choice: s.choice})
	}
	return out
}

func (x *BoxIndex) ensure(all []geom.Rect) {
	if x.regs != nil {
		return
	}
	if x.side < 1 {
		st := tune.SampleBoxes(all, x.bounds, x.hints)
		x.side = tune.ChooseShardSide(st, runtime.GOMAXPROCS(0))
	}
	x.lat = newLattice(x.bounds, x.side)
	x.ins.side.Set(int64(x.side))
	x.regs = make([]*boxRegion, x.side*x.side)
	for cy := 0; cy < x.side; cy++ {
		for cx := 0; cx < x.side; cx++ {
			x.regs[cy*x.side+cx] = newBoxRegion(&x.lat, cx, cy, x.hints, &x.ins)
		}
	}
	x.members = make([][]uint32, len(x.regs))
	x.batches = make([][]geom.BoxMove, len(x.regs))
}

// Build implements core.BoxIndex: one routing pass replicates each MBR
// into the member list of every region it overlaps, then the regions
// build.
func (x *BoxIndex) Build(all []geom.Rect) { x.buildWith(all, 1) }

// BuildParallel implements core.BoxParallelBuilder (work-stealing over
// regions; identical result to Build).
func (x *BoxIndex) BuildParallel(all []geom.Rect, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	x.buildWith(all, workers)
}

func (x *BoxIndex) buildWith(all []geom.Rect, workers int) {
	x.ensure(all)
	side := x.lat.side
	nr := len(x.regs)
	if workers > 1 && nr > 1 && len(all) >= 8192 {
		// Parallel replication routing: per-worker private sublists,
		// concatenated per region in worker order (identical member order
		// to the sequential pass — see Index.buildWith).
		if len(x.route) != workers*nr {
			x.route = make([][]uint32, workers*nr)
		}
		chunk := (len(all) + workers - 1) / workers
		var g parutil.Group
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(all) {
				hi = len(all)
			}
			sub := x.route[w*nr : (w+1)*nr]
			g.Go(func() {
				for i := range sub {
					sub[i] = sub[i][:0]
				}
				for id := lo; id < hi; id++ {
					x0, y0, x1, y1 := x.lat.spanOf(all[id])
					for cy := y0; cy <= y1; cy++ {
						row := cy * side
						for cx := x0; cx <= x1; cx++ {
							sub[row+cx] = append(sub[row+cx], uint32(id))
						}
					}
				}
			})
		}
		g.Wait()
		x.forEachRegion(workers, func(i int) {
			m := x.members[i][:0]
			for w := 0; w < workers; w++ {
				m = append(m, x.route[w*nr+i]...)
			}
			x.members[i] = m
			x.regs[i].buildMembers(all, m)
		})
		return
	}
	for i := range x.members {
		x.members[i] = x.members[i][:0]
	}
	for id := range all {
		x0, y0, x1, y1 := x.lat.spanOf(all[id])
		for cy := y0; cy <= y1; cy++ {
			row := cy * side
			for cx := x0; cx <= x1; cx++ {
				x.members[row+cx] = append(x.members[row+cx], uint32(id))
			}
		}
	}
	x.forEachRegion(workers, func(i int) {
		x.regs[i].buildMembers(all, x.members[i])
	})
}

func (x *BoxIndex) forEachRegion(workers int, fn func(i int)) {
	forEachStealing(len(x.regs), workers, fn)
}

// Query implements core.BoxIndex: fan out to the overlapped regions.
// Single-region windows skip the boundary-ownership test (the reference
// point of any candidate intersection lies inside the window and hence
// the region); multi-region windows apply it per candidate so each
// replica reports exactly once.
func (x *BoxIndex) Query(r geom.Rect, emit func(id uint32)) {
	x0, y0, x1, y1 := x.lat.spanOf(r)
	x.ins.fanout.Record(int64((x1 - x0 + 1) * (y1 - y0 + 1)))
	if x0 == x1 && y0 == y1 {
		x.regs[y0*x.lat.side+x0].query(r, emit, false)
		return
	}
	for cy := y0; cy <= y1; cy++ {
		row := cy * x.lat.side
		for cx := x0; cx <= x1; cx++ {
			x.regs[row+cx].query(r, emit, true)
		}
	}
}

// QueryAppend implements core.QueryAppender: the buffered fan-out with
// the same single-region dedup skip as Query. Boundary-ownership makes
// region contributions disjoint, so the buffer needs no post-merge.
//
//joinlint:hotpath
func (x *BoxIndex) QueryAppend(r geom.Rect, buf []uint32) []uint32 {
	x0, y0, x1, y1 := x.lat.spanOf(r)
	x.ins.fanout.Record(int64((x1 - x0 + 1) * (y1 - y0 + 1)))
	if x0 == x1 && y0 == y1 {
		return x.regs[y0*x.lat.side+x0].queryAppend(r, buf, false)
	}
	for cy := y0; cy <= y1; cy++ {
		row := cy * x.lat.side
		for cx := x0; cx <= x1; cx++ {
			buf = x.regs[row+cx].queryAppend(r, buf, true)
		}
	}
	return buf
}

// QueryBatch implements core.BatchQuerier (sequential append kernel
// over the caller's Morton-ordered batch).
func (x *BoxIndex) QueryBatch(rects []geom.Rect, offsets, buf []uint32) ([]uint32, []uint32) {
	offsets = append(offsets[:0], 0)
	buf = buf[:0]
	for _, r := range rects {
		buf = x.QueryAppend(r, buf)
		offsets = append(offsets, uint32(len(buf)))
	}
	return offsets, buf
}

// Update implements core.BoxIndex: every region in the union of the old
// and new spans adjusts its replica (add, move, or park).
func (x *BoxIndex) Update(id uint32, old, new geom.Rect) {
	ox0, oy0, ox1, oy1 := x.lat.spanOf(old)
	nx0, ny0, nx1, ny1 := x.lat.spanOf(new)
	ux0, uy0, ux1, uy1 := ox0, oy0, ox1, oy1
	if nx0 < ux0 {
		ux0 = nx0
	}
	if ny0 < uy0 {
		uy0 = ny0
	}
	if nx1 > ux1 {
		ux1 = nx1
	}
	if ny1 > uy1 {
		uy1 = ny1
	}
	for cy := uy0; cy <= uy1; cy++ {
		inOldY := cy >= oy0 && cy <= oy1
		inNewY := cy >= ny0 && cy <= ny1
		row := cy * x.lat.side
		for cx := ux0; cx <= ux1; cx++ {
			inOld := inOldY && cx >= ox0 && cx <= ox1
			inNew := inNewY && cx >= nx0 && cx <= nx1
			if inOld || inNew {
				x.regs[row+cx].Update(id, old, new)
			}
		}
	}
}

// CanBatchUpdates implements core.BoxBatchUpdater.
func (x *BoxIndex) CanBatchUpdates(n int) bool {
	return len(x.regs) > 1 && n >= 64
}

// UpdateBatch implements core.BoxBatchUpdater: route each move to every
// affected region, then regions apply their lists in parallel (see
// Index.UpdateBatch for why this is identical to per-move application).
func (x *BoxIndex) UpdateBatch(moves []geom.BoxMove, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for i := range x.batches {
		x.batches[i] = x.batches[i][:0]
	}
	side := x.lat.side
	for _, m := range moves {
		ox0, oy0, ox1, oy1 := x.lat.spanOf(m.Old)
		nx0, ny0, nx1, ny1 := x.lat.spanOf(m.New)
		ux0, uy0, ux1, uy1 := ox0, oy0, ox1, oy1
		if nx0 < ux0 {
			ux0 = nx0
		}
		if ny0 < uy0 {
			uy0 = ny0
		}
		if nx1 > ux1 {
			ux1 = nx1
		}
		if ny1 > uy1 {
			uy1 = ny1
		}
		for cy := uy0; cy <= uy1; cy++ {
			inOldY := cy >= oy0 && cy <= oy1
			inNewY := cy >= ny0 && cy <= ny1
			row := cy * side
			for cx := ux0; cx <= ux1; cx++ {
				inOld := inOldY && cx >= ox0 && cx <= ox1
				inNew := inNewY && cx >= nx0 && cx <= nx1
				if inOld || inNew {
					x.batches[row+cx] = append(x.batches[row+cx], m)
				}
			}
		}
	}
	x.forEachRegion(workers, func(i int) {
		reg := x.regs[i]
		for _, m := range x.batches[i] {
			reg.Update(m.ID, m.Old, m.New)
		}
	})
}

// Len implements core.Counter: live replicas across regions (objects
// counted once per overlapped region, mirroring BoxGrid's Len
// semantics of entries stored).
func (x *BoxIndex) Len() int {
	n := 0
	for _, s := range x.regs {
		n += s.live
	}
	return n
}

// ReplicationFactor reports live replicas per object.
func (x *BoxIndex) ReplicationFactor() float64 {
	if len(x.regs) == 0 || len(x.regs[0].lidOf) == 0 {
		return 1
	}
	return float64(x.Len()) / float64(len(x.regs[0].lidOf))
}

// MemoryBytes implements core.MemoryReporter.
func (x *BoxIndex) MemoryBytes() int64 {
	var b int64
	for _, s := range x.regs {
		b += s.memoryBytes()
	}
	return b
}

// CheckInvariants implements core.InvariantChecker: per-region
// invariants plus the replica-set rule (each id's replicas are exactly
// the regions its current MBR overlaps — verified per region already,
// so here just that every id has at least one replica).
func (x *BoxIndex) CheckInvariants() error {
	for _, s := range x.regs {
		if err := s.CheckInvariants(); err != nil {
			return err
		}
	}
	if len(x.regs) > 0 {
		for id := range x.regs[0].lidOf {
			replicas := 0
			for _, s := range x.regs {
				if s.lidFor(uint32(id)) != NONE {
					replicas++
				}
			}
			if replicas == 0 {
				return fmt.Errorf("shard: box %d has no replica in any region", id)
			}
		}
	}
	return nil
}
