package shard

import "repro/internal/obs"

// instruments is the shard engines' instrument set. Each router
// (Index, BoxIndex, Concurrent, BoxConcurrent) owns one value and
// every region holds a pointer to its router's set, so per-region
// events aggregate into engine-level series. All fields stay nil until
// Instrument binds a registry — every record below is then a nil-check
// no-op, per the internal/obs hot-path contract.
type instruments struct {
	// fanout observes the number of regions each query touched.
	fanout *obs.Histogram
	// dedupFiltered counts box candidates dropped by the
	// boundary-ownership test (a replica reporting from a region that
	// does not own the intersection's reference point).
	dedupFiltered *obs.Counter
	// parked and revived count the two halves of cross-region
	// migrations (source parks the slot, destination revives one).
	parked, revived *obs.Counter
	// side reports the region-grid side once the first build fixes it.
	side *obs.Gauge
}

func (i *instruments) bind(r *obs.Registry) {
	if r == nil {
		return
	}
	i.fanout = r.Histogram("shard.query_fanout")
	i.dedupFiltered = r.Counter("shard.dedup_filtered")
	i.parked = r.Counter("shard.parked")
	i.revived = r.Counter("shard.revived")
	i.side = r.Gauge("shard.side")
}

// Instrument implements obs.Instrumentable for the stop-the-world
// point router.
func (x *Index) Instrument(r *obs.Registry) {
	x.ins.bind(r)
	if x.side >= 1 {
		x.ins.side.Set(int64(x.side))
	}
}

// Instrument implements obs.Instrumentable for the stop-the-world box
// router.
func (x *BoxIndex) Instrument(r *obs.Registry) {
	x.ins.bind(r)
	if x.side >= 1 {
		x.ins.side.Set(int64(x.side))
	}
}

// Instrument implements obs.Instrumentable for the sharded epoch
// composition: the router binds its own fan-out/migration series and
// keeps the registry to hand to each per-region epoch wrapper at
// Build, so the wrappers' lifecycle events aggregate into the shared
// "epoch.*" series.
func (x *Concurrent) Instrument(r *obs.Registry) {
	x.reg = r
	x.ins.bind(r)
	for _, sh := range x.shards {
		sh.Instrument(r)
	}
}

// Instrument implements obs.Instrumentable for the sharded box epoch
// composition.
func (x *BoxConcurrent) Instrument(r *obs.Registry) {
	x.reg = r
	x.ins.bind(r)
	for _, sh := range x.shards {
		sh.Instrument(r)
	}
}
