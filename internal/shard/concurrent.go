package shard

import (
	"errors"
	"runtime"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/tune"
)

// The epoch compositions satisfy the sharded concurrent driver's
// contracts.
var (
	_ core.ShardedEpochIndex         = (*Concurrent)(nil)
	_ core.ShardedEpochBoxIndex      = (*BoxConcurrent)(nil)
	_ core.ShardedEpochQueryAppender = (*Concurrent)(nil)
	_ core.ShardedEpochQueryAppender = (*BoxConcurrent)(nil)
)

// Concurrent is the region-sharded engine for the concurrent
// (queries-during-updates) regime: every region is wrapped in its own
// epoch.Index publication, so shards validate, publish, and degrade
// independently — an injected fault poisons one region's publish while
// the other shards keep advancing, and the per-shard publish barrier
// replaces one global stop-the-world swap. Queries fan out exactly like
// the stop-the-world router and report each shard's (epoch, digest)
// observation for the driver's per-shard oracle check; per-shard
// digests fold into one composite via epoch.CompositeDigest.
type Concurrent struct {
	hints  core.WorkloadHints
	opts   epoch.Options
	side   int
	lat    lattice
	shards []*epoch.Index
	reg    *obs.Registry
	ins    instruments

	batches [][]geom.Move
	errs    []error
	bounds  geom.Rect
}

// NewConcurrent builds the sharded epoch composition. side comes from
// p.Shards; 0 defers to the tune shard-count ladder at Build.
func NewConcurrent(p core.Params, opts epoch.Options) *Concurrent {
	tune.Calibrate()
	return &Concurrent{hints: p.Hints, opts: opts, side: p.Shards, bounds: p.Bounds}
}

// Name implements core.ShardedEpochIndex.
func (x *Concurrent) Name() string {
	if x.side < 1 {
		return "epoch(shard[auto])"
	}
	return "epoch(" + regionName(x.side) + ")"
}

// NumShards implements core.ShardedEpochIndex (valid after Build).
func (x *Concurrent) NumShards() int { return len(x.shards) }

// Build implements core.ShardedEpochIndex: each region's epoch wrapper
// builds over the FULL snapshot (the region self-scans for its
// members), in parallel across shards.
func (x *Concurrent) Build(pts []geom.Point) {
	if x.shards == nil {
		if x.side < 1 {
			st := tune.SamplePoints(pts, x.bounds, x.hints)
			x.side = tune.ChooseShardSide(st, runtime.GOMAXPROCS(0))
		}
		x.lat = newLattice(x.bounds, x.side)
		x.ins.side.Set(int64(x.side))
		x.shards = make([]*epoch.Index, x.side*x.side)
		for cy := 0; cy < x.side; cy++ {
			for cx := 0; cx < x.side; cx++ {
				cx, cy := cx, cy
				sh := epoch.NewIndex(func() core.Index {
					return newPointRegion(&x.lat, cx, cy, x.hints, &x.ins)
				}, x.opts)
				sh.Instrument(x.reg)
				x.shards[cy*x.side+cx] = sh
			}
		}
		x.batches = make([][]geom.Move, len(x.shards))
		x.errs = make([]error, len(x.shards))
	}
	forEachStealing(len(x.shards), runtime.GOMAXPROCS(0), func(i int) {
		x.shards[i].Build(pts)
	})
}

// ApplyBatch implements core.ShardedEpochIndex: moves route to the
// shards owning their old and new positions (a migration reaches both),
// then the affected shards apply and publish in parallel. A shard with
// no routed moves skips the tick entirely — its live epoch stays valid.
// On error the OTHER shards still published; the driver records every
// shard's epoch after every tick and merges the whole batch into the
// next tick, which is safe because regions treat replayed moves as
// no-ops (the id table, not the passed old position, is the authority).
func (x *Concurrent) ApplyBatch(moves []geom.Move) error {
	for i := range x.batches {
		x.batches[i] = x.batches[i][:0]
	}
	for _, m := range moves {
		s1 := x.lat.idOf(m.Old.X, m.Old.Y)
		s2 := x.lat.idOf(m.New.X, m.New.Y)
		x.batches[s1] = append(x.batches[s1], m)
		if s2 != s1 {
			x.batches[s2] = append(x.batches[s2], m)
		}
	}
	forEachStealing(len(x.shards), runtime.GOMAXPROCS(0), func(i int) {
		if len(x.batches[i]) == 0 {
			x.errs[i] = nil
			return
		}
		_, x.errs[i] = x.shards[i].ApplyBatch(x.batches[i])
	})
	return errors.Join(x.errs...)
}

// Query implements core.ShardedEpochIndex: fan out to the overlapped
// regions, reporting each shard's (epoch, digest) observation. Shard
// results are disjoint by ownership, so the merged stream is
// duplicate-free.
func (x *Concurrent) Query(r geom.Rect, emit func(id uint32), observe func(shard int, epoch, digest uint64)) {
	x0, y0, x1, y1 := x.lat.spanOf(r)
	x.ins.fanout.Record(int64((x1 - x0 + 1) * (y1 - y0 + 1)))
	for cy := y0; cy <= y1; cy++ {
		row := cy * x.lat.side
		for cx := x0; cx <= x1; cx++ {
			sid := row + cx
			ep, dg := x.shards[sid].Query(r, emit)
			observe(sid, ep, dg)
		}
	}
}

// QueryAppend implements core.ShardedEpochQueryAppender: the buffered
// fan-out. Each shard's contribution appends under that shard's epoch
// pin, with its (epoch, digest) observation reported through observe.
func (x *Concurrent) QueryAppend(r geom.Rect, buf []uint32, observe func(shard int, epoch, digest uint64)) []uint32 {
	x0, y0, x1, y1 := x.lat.spanOf(r)
	x.ins.fanout.Record(int64((x1 - x0 + 1) * (y1 - y0 + 1)))
	for cy := y0; cy <= y1; cy++ {
		row := cy * x.lat.side
		for cx := x0; cx <= x1; cx++ {
			sid := row + cx
			var ep, dg uint64
			buf, ep, dg = x.shards[sid].QueryAppend(r, buf)
			observe(sid, ep, dg)
		}
	}
	return buf
}

// ShardEpoch implements core.ShardedEpochIndex: shard i's live epoch
// number and digest.
func (x *Concurrent) ShardEpoch(i int) (uint64, uint64) { return x.shards[i].Epoch() }

// Composite folds the live per-shard digests into one engine-level
// digest (position-salted, so swapped shard states change it).
func (x *Concurrent) Composite() uint64 {
	parts := make([]uint64, len(x.shards))
	for i, sh := range x.shards {
		_, parts[i] = sh.Epoch()
	}
	return epoch.CompositeDigest(parts)
}

// Stats implements core.ShardedEpochIndex: lifecycle counters summed
// across shards.
func (x *Concurrent) Stats() core.EpochStats {
	var t core.EpochStats
	for _, sh := range x.shards {
		s := sh.Stats()
		t.Epochs += s.Epochs
		t.Degraded += s.Degraded
		t.Retries += s.Retries
		t.PanicsContained += s.PanicsContained
	}
	return t
}

// BoxConcurrent is Concurrent over rectangles: per-region
// epoch.BoxIndex publications with replica routing (a move reaches
// every shard in the union of its old and new spans) and
// boundary-ownership dedup inside each region's standalone Query.
type BoxConcurrent struct {
	hints  core.WorkloadHints
	opts   epoch.Options
	side   int
	lat    lattice
	shards []*epoch.BoxIndex
	reg    *obs.Registry
	ins    instruments

	batches [][]geom.BoxMove
	errs    []error
	bounds  geom.Rect
}

// NewBoxConcurrent builds the sharded box epoch composition. side comes
// from p.Shards; 0 defers to the tune shard-count ladder at Build.
func NewBoxConcurrent(p core.Params, opts epoch.Options) *BoxConcurrent {
	tune.Calibrate()
	return &BoxConcurrent{hints: p.Hints, opts: opts, side: p.Shards, bounds: p.Bounds}
}

// Name implements core.ShardedEpochBoxIndex.
func (x *BoxConcurrent) Name() string {
	if x.side < 1 {
		return "epoch(boxshard[auto])"
	}
	return "epoch(box" + regionName(x.side) + ")"
}

// NumShards implements core.ShardedEpochBoxIndex (valid after Build).
func (x *BoxConcurrent) NumShards() int { return len(x.shards) }

// Build implements core.ShardedEpochBoxIndex.
func (x *BoxConcurrent) Build(rects []geom.Rect) {
	if x.shards == nil {
		if x.side < 1 {
			st := tune.SampleBoxes(rects, x.bounds, x.hints)
			x.side = tune.ChooseShardSide(st, runtime.GOMAXPROCS(0))
		}
		x.lat = newLattice(x.bounds, x.side)
		x.ins.side.Set(int64(x.side))
		x.shards = make([]*epoch.BoxIndex, x.side*x.side)
		for cy := 0; cy < x.side; cy++ {
			for cx := 0; cx < x.side; cx++ {
				cx, cy := cx, cy
				sh := epoch.NewBoxIndex(func() core.BoxIndex {
					return newBoxRegion(&x.lat, cx, cy, x.hints, &x.ins)
				}, x.opts)
				sh.Instrument(x.reg)
				x.shards[cy*x.side+cx] = sh
			}
		}
		x.batches = make([][]geom.BoxMove, len(x.shards))
		x.errs = make([]error, len(x.shards))
	}
	forEachStealing(len(x.shards), runtime.GOMAXPROCS(0), func(i int) {
		x.shards[i].Build(rects)
	})
}

// ApplyBatch implements core.ShardedEpochBoxIndex; semantics match
// Concurrent.ApplyBatch with span-union routing.
func (x *BoxConcurrent) ApplyBatch(moves []geom.BoxMove) error {
	for i := range x.batches {
		x.batches[i] = x.batches[i][:0]
	}
	side := x.lat.side
	for _, m := range moves {
		ox0, oy0, ox1, oy1 := x.lat.spanOf(m.Old)
		nx0, ny0, nx1, ny1 := x.lat.spanOf(m.New)
		ux0, uy0, ux1, uy1 := ox0, oy0, ox1, oy1
		if nx0 < ux0 {
			ux0 = nx0
		}
		if ny0 < uy0 {
			uy0 = ny0
		}
		if nx1 > ux1 {
			ux1 = nx1
		}
		if ny1 > uy1 {
			uy1 = ny1
		}
		for cy := uy0; cy <= uy1; cy++ {
			inOldY := cy >= oy0 && cy <= oy1
			inNewY := cy >= ny0 && cy <= ny1
			row := cy * side
			for cx := ux0; cx <= ux1; cx++ {
				inOld := inOldY && cx >= ox0 && cx <= ox1
				inNew := inNewY && cx >= nx0 && cx <= nx1
				if inOld || inNew {
					x.batches[row+cx] = append(x.batches[row+cx], m)
				}
			}
		}
	}
	forEachStealing(len(x.shards), runtime.GOMAXPROCS(0), func(i int) {
		if len(x.batches[i]) == 0 {
			x.errs[i] = nil
			return
		}
		_, x.errs[i] = x.shards[i].ApplyBatch(x.batches[i])
	})
	return errors.Join(x.errs...)
}

// Query implements core.ShardedEpochBoxIndex. Every region dedups by
// boundary ownership (replicas straddling shards report from exactly
// one), so the merged stream is duplicate-free.
func (x *BoxConcurrent) Query(r geom.Rect, emit func(id uint32), observe func(shard int, epoch, digest uint64)) {
	x0, y0, x1, y1 := x.lat.spanOf(r)
	x.ins.fanout.Record(int64((x1 - x0 + 1) * (y1 - y0 + 1)))
	for cy := y0; cy <= y1; cy++ {
		row := cy * x.lat.side
		for cx := x0; cx <= x1; cx++ {
			sid := row + cx
			ep, dg := x.shards[sid].Query(r, emit)
			observe(sid, ep, dg)
		}
	}
}

// QueryAppend implements core.ShardedEpochQueryAppender (see
// Concurrent.QueryAppend; regions dedup by boundary ownership).
func (x *BoxConcurrent) QueryAppend(r geom.Rect, buf []uint32, observe func(shard int, epoch, digest uint64)) []uint32 {
	x0, y0, x1, y1 := x.lat.spanOf(r)
	x.ins.fanout.Record(int64((x1 - x0 + 1) * (y1 - y0 + 1)))
	for cy := y0; cy <= y1; cy++ {
		row := cy * x.lat.side
		for cx := x0; cx <= x1; cx++ {
			sid := row + cx
			var ep, dg uint64
			buf, ep, dg = x.shards[sid].QueryAppend(r, buf)
			observe(sid, ep, dg)
		}
	}
	return buf
}

// ShardEpoch implements core.ShardedEpochBoxIndex.
func (x *BoxConcurrent) ShardEpoch(i int) (uint64, uint64) { return x.shards[i].Epoch() }

// Composite folds the live per-shard digests into one engine-level
// digest.
func (x *BoxConcurrent) Composite() uint64 {
	parts := make([]uint64, len(x.shards))
	for i, sh := range x.shards {
		_, parts[i] = sh.Epoch()
	}
	return epoch.CompositeDigest(parts)
}

// Stats implements core.ShardedEpochBoxIndex.
func (x *BoxConcurrent) Stats() core.EpochStats {
	var t core.EpochStats
	for _, sh := range x.shards {
		s := sh.Stats()
		t.Epochs += s.Epochs
		t.Degraded += s.Degraded
		t.Retries += s.Retries
		t.PanicsContained += s.PanicsContained
	}
	return t
}
