package shard

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/parutil"
	"repro/internal/tune"
)

// The router satisfies the full optional-capability surface so the
// drivers' parallel and batch paths engage, and each region satisfies
// the contracts the epoch wrapper probes.
var (
	_ core.Index            = (*Index)(nil)
	_ core.ParallelBuilder  = (*Index)(nil)
	_ core.BatchUpdater     = (*Index)(nil)
	_ core.Counter          = (*Index)(nil)
	_ core.MemoryReporter   = (*Index)(nil)
	_ core.InvariantChecker = (*Index)(nil)
	_ core.QueryAppender    = (*Index)(nil)
	_ core.BatchQuerier     = (*Index)(nil)
	_ core.Index            = (*pointRegion)(nil)
	_ core.InvariantChecker = (*pointRegion)(nil)
	_ core.QueryAppender    = (*pointRegion)(nil)
)

// pointRegion is one shard of the point engine: a compacted local
// arena (positions, owner ids, free list) in front of a tune-selected
// inner index over local slot ids. It also implements core.Index
// standalone — Build self-partitions a full snapshot — which is the
// form the epoch wrapper consumes in the concurrent composition.
type pointRegion struct {
	lat    *lattice
	cx, cy int
	sid    int
	frame  geom.Rect
	hints  core.WorkloadHints
	park   geom.Point
	ins    *instruments

	choice tune.Choice
	chosen bool
	inner  core.Index
	// innerAppend is the inner's buffered query kernel (native when the
	// chosen family supports core.QueryAppender), bound once alongside
	// the inner at first build.
	innerAppend func(r geom.Rect, buf []uint32) []uint32

	// lidOf maps global id -> local slot (NONE when not a member);
	// owner is the inverse (NONE for parked slots); pts holds each
	// slot's position (the park position for dead slots).
	lidOf   []uint32
	owner   []uint32
	pts     []geom.Point
	free    []uint32
	live    int
	members []uint32 // build scratch
}

func newPointRegion(lat *lattice, cx, cy int, hints core.WorkloadHints, ins *instruments) *pointRegion {
	frame := lat.regionFrame(cx, cy)
	return &pointRegion{
		lat:   lat,
		cx:    cx,
		cy:    cy,
		sid:   cy*lat.side + cx,
		frame: frame,
		hints: hints,
		park:  frame.Center(),
		ins:   ins,
	}
}

// Name implements core.Index.
func (s *pointRegion) Name() string {
	if s.inner != nil {
		return fmt.Sprintf("region(%d,%d %s)", s.cx, s.cy, s.inner.Name())
	}
	return fmt.Sprintf("region(%d,%d)", s.cx, s.cy)
}

// OwnsPoint implements epoch.PointOwner: whether this region owns an
// object at position p.
func (s *pointRegion) OwnsPoint(p geom.Point) bool {
	return s.lat.idOf(p.X, p.Y) == s.sid
}

// Build implements core.Index over a FULL snapshot: the region scans it
// for members and indexes only those. The router avoids the per-region
// scan by routing once and calling buildMembers directly.
func (s *pointRegion) Build(all []geom.Point) {
	s.members = s.members[:0]
	for id := range all {
		if s.lat.idOf(all[id].X, all[id].Y) == s.sid {
			s.members = append(s.members, uint32(id))
		}
	}
	s.buildMembers(all, s.members)
}

// buildMembers (re)builds the region over the given member ids of the
// full snapshot. The first build samples the members and picks the
// inner family via internal/tune; later builds reuse the choice (and
// the inner's arenas).
func (s *pointRegion) buildMembers(all []geom.Point, members []uint32) {
	if len(s.lidOf) != len(all) {
		s.lidOf = make([]uint32, len(all))
	}
	n := len(members)
	capa := n + n/8 + 8 // parked-slot slack for immigration before a regrow
	if cap(s.pts) < capa {
		s.pts = make([]geom.Point, capa)
		s.owner = make([]uint32, capa)
	}
	s.pts = s.pts[:capa]
	s.owner = s.owner[:capa]
	for i, gid := range members {
		s.pts[i] = all[gid]
		s.owner[i] = gid
		s.lidOf[gid] = uint32(i)
	}
	s.free = s.free[:0]
	for i := capa - 1; i >= n; i-- {
		s.pts[i] = s.park
		s.owner[i] = NONE
		s.free = append(s.free, uint32(i))
	}
	s.live = n
	if !s.chosen {
		st := tune.SamplePoints(s.pts[:n], s.frame, s.hints)
		s.choice = tune.ChoosePoint(st)
		s.chosen = true
		s.inner = s.choice.NewPointIndex(core.Params{Bounds: s.frame, NumPoints: capa, Hints: s.hints})
		s.innerAppend = core.QueryAppendOf(s.inner, s.inner.Query)
	}
	s.inner.Build(s.pts)
}

// lidFor returns id's live slot in this region, or NONE. lidOf entries
// are NOT reset between builds (a full reset costs side^2*n per tick
// across regions), so a hit is validated against the owner table: owner
// slots only ever hold current member ids, and members get a fresh
// lidOf entry at every build, so a stale entry can never validate.
// (NONE compares >= len(owner), so no separate sentinel check.)
func (s *pointRegion) lidFor(id uint32) uint32 {
	if lid := s.lidOf[id]; int(lid) < len(s.owner) && s.owner[lid] == id {
		return lid
	}
	return NONE
}

// Query implements core.Index: the inner emits local slots, the region
// translates to global ids and filters parked slots. Points partition
// exactly across regions, so no dedup test is needed.
func (s *pointRegion) Query(r geom.Rect, emit func(id uint32)) {
	owner := s.owner
	s.inner.Query(r, func(lid uint32) {
		if g := owner[lid]; g != NONE {
			emit(g)
		}
	})
}

// QueryAppend implements core.QueryAppender: the inner appends local
// slots to the tail of buf, then the region compacts that tail in place
// — translating slots to global ids and dropping parked slots — so the
// whole path does zero allocations once buf has capacity.
//
//joinlint:hotpath
func (s *pointRegion) QueryAppend(r geom.Rect, buf []uint32) []uint32 {
	tail := len(buf)
	buf = s.innerAppend(r, buf)
	owner := s.owner
	w := tail
	for _, lid := range buf[tail:] {
		if g := owner[lid]; g != NONE {
			buf[w] = g
			w++
		}
	}
	return buf[:w]
}

// Update implements core.Index for any of the four membership cases;
// the region's own tables are the authority, the passed old position is
// only trusted by the router for routing.
func (s *pointRegion) Update(id uint32, _, new geom.Point) {
	lid := s.lidFor(id)
	inNew := s.lat.idOf(new.X, new.Y) == s.sid
	switch {
	case lid != NONE && inNew: // in-place
		s.inner.Update(lid, s.pts[lid], new)
		s.pts[lid] = new
	case lid != NONE: // emigration: park the slot
		s.inner.Update(lid, s.pts[lid], s.park)
		s.pts[lid] = s.park
		s.owner[lid] = NONE
		s.lidOf[id] = NONE
		s.free = append(s.free, lid)
		s.live--
		s.ins.parked.Inc()
	case inNew: // immigration: revive a parked slot
		if len(s.free) == 0 {
			s.grow()
		}
		lid = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.inner.Update(lid, s.pts[lid], new)
		s.pts[lid] = new
		s.owner[lid] = id
		s.lidOf[id] = lid
		s.live++
		s.ins.revived.Inc()
	}
}

// grow extends the arena with parked slots and rebuilds the inner —
// region-local, so a parallel batch hitting one region's capacity never
// touches another shard.
func (s *pointRegion) grow() {
	old := len(s.pts)
	add := old/4 + 8
	for i := 0; i < add; i++ {
		s.pts = append(s.pts, s.park)
		s.owner = append(s.owner, NONE)
		s.free = append(s.free, uint32(old+i))
	}
	s.inner.Build(s.pts)
}

// CheckInvariants implements core.InvariantChecker: arena/owner/free
// accounting, the ownership invariant (every live member's position
// maps to this region), and the inner index's own invariants.
func (s *pointRegion) CheckInvariants() error {
	if len(s.pts) != len(s.owner) {
		return fmt.Errorf("shard: region(%d,%d) arena %d vs owner %d", s.cx, s.cy, len(s.pts), len(s.owner))
	}
	if s.live+len(s.free) != len(s.pts) {
		return fmt.Errorf("shard: region(%d,%d) live %d + free %d != cap %d", s.cx, s.cy, s.live, len(s.free), len(s.pts))
	}
	liveSeen := 0
	for lid, g := range s.owner {
		if g == NONE {
			if s.pts[lid] != s.park {
				return fmt.Errorf("shard: region(%d,%d) dead slot %d not parked", s.cx, s.cy, lid)
			}
			continue
		}
		liveSeen++
		if int(g) >= len(s.lidOf) || s.lidOf[g] != uint32(lid) {
			return fmt.Errorf("shard: region(%d,%d) slot %d owner %d not inverse-mapped", s.cx, s.cy, lid, g)
		}
		if s.lat.idOf(s.pts[lid].X, s.pts[lid].Y) != s.sid {
			return fmt.Errorf("shard: region(%d,%d) member %d at %v outside region", s.cx, s.cy, g, s.pts[lid])
		}
	}
	if liveSeen != s.live {
		return fmt.Errorf("shard: region(%d,%d) counted %d live, tracked %d", s.cx, s.cy, liveSeen, s.live)
	}
	if c, ok := s.inner.(core.Counter); ok && c.Len() != len(s.pts) {
		return fmt.Errorf("shard: region(%d,%d) inner holds %d entries, arena %d", s.cx, s.cy, c.Len(), len(s.pts))
	}
	if ic, ok := s.inner.(core.InvariantChecker); ok {
		if err := ic.CheckInvariants(); err != nil {
			return fmt.Errorf("shard: region(%d,%d) inner: %w", s.cx, s.cy, err)
		}
	}
	return nil
}

func (s *pointRegion) memoryBytes() int64 {
	b := int64(len(s.lidOf)+len(s.owner)+len(s.free))*4 + int64(len(s.pts))*8
	if mr, ok := s.inner.(core.MemoryReporter); ok {
		b += mr.MemoryBytes()
	}
	return b
}

// Index is the region-sharded point engine: a core.Index router over
// side x side pointRegions. See the package comment for the ownership,
// routing, and merge rules.
type Index struct {
	hints core.WorkloadHints
	side  int // 0 until the ladder picks at first build (auto mode)
	lat   lattice
	regs  []*pointRegion
	ins   instruments

	members [][]uint32    // per-region build routing scratch
	route   [][]uint32    // per-worker x per-region parallel routing scratch
	batches [][]geom.Move // per-region update routing scratch
	bounds  geom.Rect
	n       int
}

// New constructs a sharded point engine with an explicit region-grid
// side (>= 1). Tune calibration is forced here so the per-shard family
// selection at first build stays outside any timed region.
func New(p core.Params, side int) *Index {
	if side < 1 {
		side = 1
	}
	tune.Calibrate()
	x := &Index{hints: p.Hints, side: side, bounds: p.Bounds, n: p.NumPoints}
	return x
}

// NewAuto constructs a sharded point engine whose region-grid side is
// chosen by the tune shard-count ladder: from p.Shards when set, else
// from the first build snapshot's sampled statistics.
func NewAuto(p core.Params) *Index {
	tune.Calibrate()
	return &Index{hints: p.Hints, side: p.Shards, bounds: p.Bounds, n: p.NumPoints}
}

// AutoFactory is the core.Factory for NewAuto (lineup key "shard-auto").
func AutoFactory(p core.Params) core.Index { return NewAuto(p) }

// Name implements core.Index.
func (x *Index) Name() string {
	if x.side < 1 {
		return "shard[auto]"
	}
	return regionName(x.side)
}

// Side returns the region-grid side (0 before an auto first build).
func (x *Index) Side() int { return x.side }

// Regions returns per-region population and tuning choices for
// reporting (valid after the first build).
type RegionInfo struct {
	CX, CY int
	Frame  geom.Rect
	Live   int
	Choice tune.Choice
}

func (x *Index) Regions() []RegionInfo {
	out := make([]RegionInfo, 0, len(x.regs))
	for _, s := range x.regs {
		out = append(out, RegionInfo{CX: s.cx, CY: s.cy, Frame: s.frame, Live: s.live, Choice: s.choice})
	}
	return out
}

// ensure fixes the lattice at first build (running the shard-count
// ladder over the snapshot when the side was not requested explicitly)
// and allocates the regions.
func (x *Index) ensure(all []geom.Point) {
	if x.regs != nil {
		return
	}
	if x.side < 1 {
		st := tune.SamplePoints(all, x.bounds, x.hints)
		x.side = tune.ChooseShardSide(st, runtime.GOMAXPROCS(0))
	}
	x.lat = newLattice(x.bounds, x.side)
	x.ins.side.Set(int64(x.side))
	x.regs = make([]*pointRegion, x.side*x.side)
	for cy := 0; cy < x.side; cy++ {
		for cx := 0; cx < x.side; cx++ {
			x.regs[cy*x.side+cx] = newPointRegion(&x.lat, cx, cy, x.hints, &x.ins)
		}
	}
	x.members = make([][]uint32, len(x.regs))
	x.batches = make([][]geom.Move, len(x.regs))
}

// Build implements core.Index: one routing pass partitions the snapshot
// by owning region, then each region builds its arena and inner index.
func (x *Index) Build(all []geom.Point) { x.buildWith(all, 1) }

// BuildParallel implements core.ParallelBuilder: regions are striped
// across workers with work-stealing. Region builds are independent and
// deterministic, so the result is identical to Build.
func (x *Index) BuildParallel(all []geom.Point, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	x.buildWith(all, workers)
}

func (x *Index) buildWith(all []geom.Point, workers int) {
	x.ensure(all)
	nr := len(x.regs)
	if workers > 1 && nr > 1 && len(all) >= 8192 {
		// Route in parallel: each worker partitions one contiguous chunk
		// of the snapshot into private per-region sublists, then each
		// region concatenates its sublists in worker order — preserving
		// the sequential path's global id order, so the result (and every
		// downstream digest) is identical to Build.
		if len(x.route) != workers*nr {
			x.route = make([][]uint32, workers*nr)
		}
		chunk := (len(all) + workers - 1) / workers
		var g parutil.Group
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(all) {
				hi = len(all)
			}
			sub := x.route[w*nr : (w+1)*nr]
			g.Go(func() {
				for i := range sub {
					sub[i] = sub[i][:0]
				}
				for id := lo; id < hi; id++ {
					s := x.lat.idOf(all[id].X, all[id].Y)
					sub[s] = append(sub[s], uint32(id))
				}
			})
		}
		g.Wait()
		x.forEachRegion(workers, func(i int) {
			m := x.members[i][:0]
			for w := 0; w < workers; w++ {
				m = append(m, x.route[w*nr+i]...)
			}
			x.members[i] = m
			x.regs[i].buildMembers(all, m)
		})
		return
	}
	for i := range x.members {
		x.members[i] = x.members[i][:0]
	}
	for id := range all {
		s := x.lat.idOf(all[id].X, all[id].Y)
		x.members[s] = append(x.members[s], uint32(id))
	}
	x.forEachRegion(workers, func(i int) {
		x.regs[i].buildMembers(all, x.members[i])
	})
}

// forEachRegion runs fn(i) for every region via the shared
// work-stealing striper.
func (x *Index) forEachRegion(workers int, fn func(i int)) {
	forEachStealing(len(x.regs), workers, fn)
}

// Query implements core.Index: clip the window to the lattice span and
// fan out to the overlapped regions. A single query touches few regions
// (usually one), so the fan-out runs inline on the caller's goroutine —
// batch parallelism comes from the driver striping queriers across
// workers, and region results are disjoint by ownership.
func (x *Index) Query(r geom.Rect, emit func(id uint32)) {
	x0, y0, x1, y1 := x.lat.spanOf(r)
	x.ins.fanout.Record(int64((x1 - x0 + 1) * (y1 - y0 + 1)))
	for cy := y0; cy <= y1; cy++ {
		row := cy * x.lat.side
		for cx := x0; cx <= x1; cx++ {
			x.regs[row+cx].Query(r, emit)
		}
	}
}

// QueryAppend implements core.QueryAppender: the buffered fan-out.
// Region results are disjoint by ownership, so concatenating the
// per-region appends into one buffer needs no dedup.
//
//joinlint:hotpath
func (x *Index) QueryAppend(r geom.Rect, buf []uint32) []uint32 {
	x0, y0, x1, y1 := x.lat.spanOf(r)
	x.ins.fanout.Record(int64((x1 - x0 + 1) * (y1 - y0 + 1)))
	for cy := y0; cy <= y1; cy++ {
		row := cy * x.lat.side
		for cx := x0; cx <= x1; cx++ {
			buf = x.regs[row+cx].QueryAppend(r, buf)
		}
	}
	return buf
}

// QueryBatch implements core.BatchQuerier (sequential append kernel
// over the caller's Morton-ordered batch).
func (x *Index) QueryBatch(rects []geom.Rect, offsets, buf []uint32) ([]uint32, []uint32) {
	offsets = append(offsets[:0], 0)
	buf = buf[:0]
	for _, r := range rects {
		buf = x.QueryAppend(r, buf)
		offsets = append(offsets, uint32(len(buf)))
	}
	return offsets, buf
}

// Update implements core.Index: route by the old and new positions'
// owning regions; a cross-region move is a remove (park) in the source
// and an insert (revive) in the destination.
func (x *Index) Update(id uint32, old, new geom.Point) {
	s1 := x.lat.idOf(old.X, old.Y)
	s2 := x.lat.idOf(new.X, new.Y)
	x.regs[s1].Update(id, old, new)
	if s2 != s1 {
		x.regs[s2].Update(id, old, new)
	}
}

// CanBatchUpdates implements core.BatchUpdater.
func (x *Index) CanBatchUpdates(n int) bool {
	return len(x.regs) > 1 && n >= 64
}

// UpdateBatch implements core.BatchUpdater: one routing pass partitions
// the moves by affected region (a migrating move lands in both its
// source and destination lists), then regions apply their lists in
// parallel. Each region sees exactly its own moves in batch order and
// touches only private state, so the result is identical to per-move
// Update application — the two-phase remove/insert happens per move
// with no cross-shard locking.
func (x *Index) UpdateBatch(moves []geom.Move, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for i := range x.batches {
		x.batches[i] = x.batches[i][:0]
	}
	for _, m := range moves {
		s1 := x.lat.idOf(m.Old.X, m.Old.Y)
		s2 := x.lat.idOf(m.New.X, m.New.Y)
		x.batches[s1] = append(x.batches[s1], m)
		if s2 != s1 {
			x.batches[s2] = append(x.batches[s2], m)
		}
	}
	x.forEachRegion(workers, func(i int) {
		reg := x.regs[i]
		for _, m := range x.batches[i] {
			reg.Update(m.ID, m.Old, m.New)
		}
	})
}

// Len implements core.Counter: total live members across regions.
func (x *Index) Len() int {
	n := 0
	for _, s := range x.regs {
		n += s.live
	}
	return n
}

// MemoryBytes implements core.MemoryReporter.
func (x *Index) MemoryBytes() int64 {
	var b int64
	for _, s := range x.regs {
		b += s.memoryBytes()
	}
	return b
}

// CheckInvariants implements core.InvariantChecker: every region's own
// invariants plus global disjoint ownership (each id lives in at most
// one region).
func (x *Index) CheckInvariants() error {
	for _, s := range x.regs {
		if err := s.CheckInvariants(); err != nil {
			return err
		}
	}
	if len(x.regs) > 1 && len(x.regs[0].lidOf) > 0 {
		for id := range x.regs[0].lidOf {
			owners := 0
			for _, s := range x.regs {
				if s.lidFor(uint32(id)) != NONE {
					owners++
				}
			}
			if owners > 1 {
				return fmt.Errorf("shard: id %d owned by %d regions", id, owners)
			}
		}
	}
	return nil
}
