// Package shard implements the region-sharded multi-index engine: the
// space is partitioned into a side x side lattice of square regions,
// each region owning its own independently built and tuned index
// (family and parameters chosen per shard by internal/tune, so a skewed
// shard can take the R-tree while uniform shards take the classed
// grid), behind the ordinary core.Index / core.BoxIndex contracts so
// every driver, oracle test, and bench runs unchanged.
//
// # Ownership and duplicate-free merge
//
// Points partition exactly: an object belongs to the unique region
// containing its position (half-open region edges, out-of-space
// positions clamped into the border regions — the same mapping the
// grids use for cells). A query fans out to the regions its window
// overlaps and each region reports only its own members, so the merged
// stream is duplicate-free by construction.
//
// Boxes replicate: an MBR is inserted into every region it overlaps,
// and a query straddling several regions would see the same object once
// per replica. The merge dedups by boundary ownership, mirroring the
// reference-point method the CSR box grid uses per cell: for each
// candidate the reporting region computes the reference point of
// query∩MBR (the intersection's min corner) and emits only when that
// point falls in its own region. Exactly one overlapped region owns the
// reference point, and that region always overlaps the query, so every
// matching object is emitted exactly once. Queries whose window lies
// within a single region skip the test entirely — the reference point
// of any candidate intersection is inside the window and therefore
// inside the region.
//
// # Updates and cross-shard migration
//
// In-place moves delegate to the owning region's inner index. A move
// that crosses a region border is a two-phase remove/insert: the source
// region parks the entry (relocating it to a reserved in-region park
// position and clearing its owner, so queries filter it out) and pushes
// the slot onto a free list; the destination revives a parked slot via
// a plain inner Update. Both phases touch only region-private state, so
// a batch routed by region applies across shards in parallel with no
// locking — each region sees exactly its own moves in batch order,
// making the parallel result identical to per-move application. When a
// region's free list runs dry its arena grows by a parked-slot slack
// and the inner index is rebuilt (region-local, amortized).
//
// # Epoch composition
//
// For the concurrent (queries-during-updates) regime each region is
// wrapped in its own epoch.Index publication, so shards publish
// independently and concurrent reads scale with shard count instead of
// serializing on one publish barrier. Per-shard digests fold into a
// composite via epoch.CompositeDigest; the sharded concurrent driver
// (core.RunConcurrentSharded) validates each query's per-shard
// (epoch, digest) observations against per-shard publish oracles.
package shard

import (
	"fmt"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/parutil"
)

// NONE marks an empty slot mapping (no local id / no owner).
const NONE = ^uint32(0)

// lattice maps geometry to the side x side region grid. All membership,
// routing, and dedup decisions go through this one mapping so they can
// never disagree: half-open region edges, NaN and out-of-space
// coordinates clamped into the border regions (the grids' cell-mapping
// convention).
type lattice struct {
	side   int
	bounds geom.Rect
	inv    float32 // regions per unit of space
}

func newLattice(bounds geom.Rect, side int) lattice {
	return lattice{
		side:   side,
		bounds: bounds,
		inv:    float32(side) / bounds.Width(),
	}
}

func (l *lattice) axis(d, min float32) int {
	f := (d - min) * l.inv
	if !(f > 0) { // NaN or <= 0
		return 0
	}
	c := int(f)
	if c >= l.side {
		c = l.side - 1
	}
	return c
}

// cellOf returns the region coordinates owning position (x, y).
func (l *lattice) cellOf(x, y float32) (int, int) {
	return l.axis(x, l.bounds.MinX), l.axis(y, l.bounds.MinY)
}

// idOf returns the region index owning position (x, y).
func (l *lattice) idOf(x, y float32) int {
	cx, cy := l.cellOf(x, y)
	return cy*l.side + cx
}

// spanOf returns the inclusive region-coordinate span r overlaps.
func (l *lattice) spanOf(r geom.Rect) (x0, y0, x1, y1 int) {
	x0 = l.axis(r.MinX, l.bounds.MinX)
	y0 = l.axis(r.MinY, l.bounds.MinY)
	x1 = l.axis(r.MaxX, l.bounds.MinX)
	y1 = l.axis(r.MaxY, l.bounds.MinY)
	return
}

// regionFrame returns the square indexing frame of region (cx, cy). The
// frame anchors the region's inner index; ownership always goes through
// cellOf, so a frame a float-rounding hair narrower or wider than the
// ideal tile is harmless (inner grids clamp and filter by exact
// coordinates). The frame must be exactly square for the grid families,
// so the side is nudged up until both axes round identically.
func (l *lattice) regionFrame(cx, cy int) geom.Rect {
	w := l.bounds.Width() / float32(l.side)
	x0 := l.bounds.MinX + float32(cx)*w
	y0 := l.bounds.MinY + float32(cy)*w
	r := geom.Rect{MinX: x0, MinY: y0, MaxX: x0 + w, MaxY: y0 + w}
	for i := 0; i < 8 && r.Width() != r.Height(); i++ {
		s := r.Width()
		if r.Height() > s {
			s = r.Height()
		}
		r.MaxX, r.MaxY = x0+s, y0+s
	}
	if r.Width() != r.Height() {
		// Pathological rounding: fall back to the full (square) space.
		return l.bounds
	}
	return r
}

// refPoint returns the reference point of the intersection of query
// window r and candidate MBR b (callers guarantee they intersect): the
// intersection's min corner, the same rule grid.BoxGrid applies per
// cell.
func refPoint(r, b geom.Rect) (float32, float32) {
	x := r.MinX
	if b.MinX > x {
		x = b.MinX
	}
	y := r.MinY
	if b.MinY > y {
		y = b.MinY
	}
	return x, y
}

func regionName(side int) string {
	return fmt.Sprintf("shard[%dx%d]", side, side)
}

// forEachStealing runs fn(i) for i in [0, n), striping the indices
// across a worker pool with an atomic work-stealing cursor when
// workers > 1 (parutil.Group contains worker panics). Sequential when
// workers <= 1, so single-threaded drivers pay no goroutine overhead.
func forEachStealing(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var g parutil.Group
	for w := 0; w < workers; w++ {
		g.Go(func() {
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		})
	}
	g.Wait()
}
