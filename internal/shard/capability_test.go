package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/geom"
	"repro/internal/workload"
)

// The buffered-kernel capabilities are optional interfaces, so a
// wrapper that forgets to forward them silently downgrades every query
// to the per-result callback path — correct, but the exact slowdown
// this PR removes. These tests pin the forwarding at runtime: the
// engines must still satisfy the capabilities after construction, and
// the forwarded kernels must report the same result sets as Query.

func TestPointEngineCapabilities(t *testing.T) {
	cfg := testPointConfig()
	p := core.Params{Bounds: cfg.Bounds(), NumPoints: cfg.NumPoints}
	var idx core.Index = New(p, 2)
	if _, ok := idx.(core.QueryAppender); !ok {
		t.Fatalf("%T does not forward core.QueryAppender", idx)
	}
	if _, ok := idx.(core.BatchQuerier); !ok {
		t.Fatalf("%T does not forward core.BatchQuerier", idx)
	}

	gen := workload.MustNewGenerator(cfg)
	idx.Build(gen.Positions(nil))
	rects := queryRects(gen.Queriers(), gen.QueryRect)
	assertKernelsAgree(t, "shard.Index", idx.Query, idx.(core.QueryAppender).QueryAppend, rects)
	assertZeroAllocSteadyState(t, "shard.Index", idx.(core.QueryAppender).QueryAppend, rects)
}

func TestBoxEngineCapabilities(t *testing.T) {
	cfg := testBoxConfig()
	p := core.Params{Bounds: cfg.Bounds(), NumPoints: cfg.NumPoints}
	var idx core.BoxIndex = NewBox(p, 2)
	if _, ok := idx.(core.QueryAppender); !ok {
		t.Fatalf("%T does not forward core.QueryAppender", idx)
	}
	if _, ok := idx.(core.BatchQuerier); !ok {
		t.Fatalf("%T does not forward core.BatchQuerier", idx)
	}

	gen := workload.MustNewBoxGenerator(cfg)
	idx.Build(gen.Rects(nil))
	rects := queryRects(gen.Queriers(), gen.QueryRect)
	assertKernelsAgree(t, "shard.BoxIndex", idx.Query, idx.(core.QueryAppender).QueryAppend, rects)
	assertZeroAllocSteadyState(t, "shard.BoxIndex", idx.(core.QueryAppender).QueryAppend, rects)
}

// The concurrent engines report per-shard (epoch, digest) observations,
// so their buffered kernel is the sharded-epoch flavour, not the plain
// QueryAppender.
func TestConcurrentEngineCapabilities(t *testing.T) {
	cfg := testPointConfig()
	p := core.Params{Bounds: cfg.Bounds(), NumPoints: cfg.NumPoints, Shards: 2}
	var c core.ShardedEpochIndex = NewConcurrent(p, epoch.Options{})
	qa, ok := c.(core.ShardedEpochQueryAppender)
	if !ok {
		t.Fatalf("%T does not forward core.ShardedEpochQueryAppender", c)
	}

	gen := workload.MustNewGenerator(cfg)
	c.Build(gen.Positions(nil))
	rects := queryRects(gen.Queriers(), gen.QueryRect)
	emitQ := func(r geom.Rect, emit func(id uint32)) {
		c.Query(r, emit, observeNop)
	}
	appendQ := func(r geom.Rect, buf []uint32) []uint32 {
		return qa.QueryAppend(r, buf, observeNop)
	}
	assertKernelsAgree(t, "shard.Concurrent", emitQ, appendQ, rects)
	assertZeroAllocSteadyState(t, "shard.Concurrent", appendQ, rects)
}

func TestBoxConcurrentEngineCapabilities(t *testing.T) {
	cfg := testBoxConfig()
	p := core.Params{Bounds: cfg.Bounds(), NumPoints: cfg.NumPoints, Shards: 2}
	var c core.ShardedEpochBoxIndex = NewBoxConcurrent(p, epoch.Options{})
	qa, ok := c.(core.ShardedEpochQueryAppender)
	if !ok {
		t.Fatalf("%T does not forward core.ShardedEpochQueryAppender", c)
	}

	gen := workload.MustNewBoxGenerator(cfg)
	c.Build(gen.Rects(nil))
	rects := queryRects(gen.Queriers(), gen.QueryRect)
	emitQ := func(r geom.Rect, emit func(id uint32)) {
		c.Query(r, emit, observeNop)
	}
	appendQ := func(r geom.Rect, buf []uint32) []uint32 {
		return qa.QueryAppend(r, buf, observeNop)
	}
	assertKernelsAgree(t, "shard.BoxConcurrent", emitQ, appendQ, rects)
	assertZeroAllocSteadyState(t, "shard.BoxConcurrent", appendQ, rects)
}

func observeNop(shard int, epoch, digest uint64) {}

func queryRects(queriers []uint32, rectOf func(id uint32) geom.Rect) []geom.Rect {
	rects := make([]geom.Rect, len(queriers))
	for i, q := range queriers {
		rects[i] = rectOf(q)
	}
	return rects
}

// assertKernelsAgree folds both kernels' result sets into
// order-insensitive digests and demands equality per query.
func assertKernelsAgree(t *testing.T, name string,
	query func(r geom.Rect, emit func(id uint32)),
	queryAppend func(r geom.Rect, buf []uint32) []uint32,
	rects []geom.Rect) {
	t.Helper()
	var buf []uint32
	for i, r := range rects {
		var want uint64
		wantN := 0
		query(r, func(id uint32) { want = core.MixPair(want, 0, id); wantN++ })
		buf = queryAppend(r, buf[:0])
		var got uint64
		for _, id := range buf {
			got = core.MixPair(got, 0, id)
		}
		if got != want || len(buf) != wantN {
			t.Fatalf("%s query %d: QueryAppend digest %x (%d ids), Query digest %x (%d ids)",
				name, i, got, len(buf), want, wantN)
		}
	}
}

// assertZeroAllocSteadyState warms the reused buffer to the workload's
// high-water mark, then requires allocation-free queries.
func assertZeroAllocSteadyState(t *testing.T, name string,
	queryAppend func(r geom.Rect, buf []uint32) []uint32, rects []geom.Rect) {
	t.Helper()
	var buf []uint32
	for _, r := range rects {
		buf = queryAppend(r, buf[:0])
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		buf = queryAppend(rects[i%len(rects)], buf[:0])
		i++
	})
	if allocs != 0 {
		t.Errorf("%s: QueryAppend allocates %.1f times per query at steady state, want 0", name, allocs)
	}
}
