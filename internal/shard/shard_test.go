package shard

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/faultutil"
	"repro/internal/geom"
	"repro/internal/workload"
)

func testPointConfig() workload.Config {
	cfg := workload.DefaultUniform()
	cfg.NumPoints = 900
	cfg.Ticks = 8
	cfg.SpaceSize = 2000
	cfg.MaxSpeed = 120 // fast movers cross region borders often
	cfg.QuerySize = 260
	return cfg
}

func testBoxConfig() workload.BoxConfig {
	cfg := workload.DefaultUniformBoxes()
	cfg.NumPoints = 700
	cfg.Ticks = 8
	cfg.SpaceSize = 2000
	cfg.MaxSpeed = 100
	cfg.QuerySize = 200
	cfg.MinSide = 5
	cfg.MaxSide = 300 // extents wide enough to straddle several regions
	return cfg
}

func pointConfigs() map[string]workload.Config {
	uni := testPointConfig()
	gauss := testPointConfig()
	gauss.Kind = workload.Gaussian
	gauss.Hotspots = 5
	return map[string]workload.Config{"uniform": uni, "gauss": gauss}
}

// TestShardDigestMatrix is the acceptance-criterion matrix for the
// point engine: across shard counts (1, 4, 16 regions), workload kinds,
// and the sequential and parallel drivers, the sharded engine must
// produce the bit-identical (pairs, digest) join result as the
// brute-force oracle and the unsharded adaptive index.
func TestShardDigestMatrix(t *testing.T) {
	for kind, cfg := range pointConfigs() {
		p := core.Params{Bounds: cfg.Bounds(), NumPoints: cfg.NumPoints}
		ref := core.Run(core.NewBruteForce(), workload.MustNewGenerator(cfg), core.Options{})
		unsharded := core.Run(New(p, 1), workload.MustNewGenerator(cfg), core.Options{})
		if unsharded.Pairs != ref.Pairs || unsharded.Hash != ref.Hash {
			t.Fatalf("%s: unsharded (side=1) diverges from oracle: pairs %d vs %d hash %x vs %x",
				kind, unsharded.Pairs, ref.Pairs, unsharded.Hash, ref.Hash)
		}
		for _, side := range []int{2, 4} {
			seq := core.Run(New(p, side), workload.MustNewGenerator(cfg), core.Options{})
			par := core.RunParallel(New(p, side), workload.MustNewGenerator(cfg), core.Options{}, 4)
			for _, res := range []*core.Result{seq, par} {
				if res.Pairs != ref.Pairs || res.Hash != ref.Hash {
					t.Errorf("%s side=%d %s: pairs %d vs %d hash %x vs %x",
						kind, side, res.Technique, res.Pairs, ref.Pairs, res.Hash, ref.Hash)
				}
			}
		}
	}
}

// TestShardBoxDigestMatrix is TestShardDigestMatrix for the replicating
// box engine. Digest equality against the duplicate-free oracle also
// proves the boundary-ownership dedup emits exactly once per replica
// set.
func TestShardBoxDigestMatrix(t *testing.T) {
	cfg := testBoxConfig()
	p := core.Params{Bounds: cfg.Bounds(), NumPoints: cfg.NumPoints}
	ref := core.RunBoxes(core.NewBruteForceBoxes(), workload.MustNewBoxGenerator(cfg), core.Options{})
	for _, side := range []int{1, 2, 4} {
		seq := core.RunBoxes(NewBox(p, side), workload.MustNewBoxGenerator(cfg), core.Options{})
		par := core.RunBoxesParallel(NewBox(p, side), workload.MustNewBoxGenerator(cfg), core.Options{}, 4)
		for _, res := range []*core.Result{seq, par} {
			if res.Pairs != ref.Pairs || res.Hash != ref.Hash {
				t.Errorf("side=%d %s: pairs %d vs %d hash %x vs %x",
					side, res.Technique, res.Pairs, ref.Pairs, res.Hash, ref.Hash)
			}
		}
	}
}

// TestShardAutoMatchesOracle covers the auto path (shard count from the
// tune ladder) end to end through the factories the bench lineup
// registers.
func TestShardAutoMatchesOracle(t *testing.T) {
	cfg := testPointConfig()
	p := core.Params{Bounds: cfg.Bounds(), NumPoints: cfg.NumPoints}
	ref := core.Run(core.NewBruteForce(), workload.MustNewGenerator(cfg), core.Options{})
	res := core.Run(AutoFactory(p), workload.MustNewGenerator(cfg), core.Options{})
	if res.Pairs != ref.Pairs || res.Hash != ref.Hash {
		t.Fatalf("shard-auto diverges from oracle: pairs %d vs %d", res.Pairs, ref.Pairs)
	}
	bcfg := testBoxConfig()
	bp := core.Params{Bounds: bcfg.Bounds(), NumPoints: bcfg.NumPoints}
	bref := core.RunBoxes(core.NewBruteForceBoxes(), workload.MustNewBoxGenerator(bcfg), core.Options{})
	bres := core.RunBoxes(AutoBoxFactory(bp), workload.MustNewBoxGenerator(bcfg), core.Options{})
	if bres.Pairs != bref.Pairs || bres.Hash != bref.Hash {
		t.Fatalf("boxshard-auto diverges from oracle: pairs %d vs %d", bres.Pairs, bref.Pairs)
	}
	// An explicit Shards request must override the ladder.
	p.Shards = 2
	if x := NewAuto(p); x.Side() != 2 {
		t.Fatalf("Params.Shards=2 ignored: side=%d", x.Side())
	}
}

// TestShardConcurrentSharded runs the per-shard epoch composition under
// the sharded concurrent driver: overlapped queries and updates, every
// query's per-shard (epoch, digest) observations validated against
// per-shard publish oracles. Any violation or failed tick is a bug.
func TestShardConcurrentSharded(t *testing.T) {
	for _, side := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("point-side=%d", side), func(t *testing.T) {
			cfg := testPointConfig()
			p := core.Params{Bounds: cfg.Bounds(), NumPoints: cfg.NumPoints, Shards: side}
			x := NewConcurrent(p, epoch.Options{})
			res := core.RunConcurrentSharded(x, workload.MustNewGenerator(cfg), core.ConcurrentOptions{Readers: 3})
			if res.Violations != 0 {
				t.Fatalf("%d per-shard epoch violations", res.Violations)
			}
			if res.FailedTicks != 0 {
				t.Fatalf("%d failed ticks without fault injection", res.FailedTicks)
			}
			if x.NumShards() != side*side {
				t.Fatalf("NumShards=%d want %d", x.NumShards(), side*side)
			}
			if x.Composite() == 0 {
				t.Fatal("composite digest is zero")
			}
		})
		t.Run(fmt.Sprintf("box-side=%d", side), func(t *testing.T) {
			cfg := testBoxConfig()
			p := core.Params{Bounds: cfg.Bounds(), NumPoints: cfg.NumPoints, Shards: side}
			x := NewBoxConcurrent(p, epoch.Options{})
			res := core.RunBoxesConcurrentSharded(x, workload.MustNewBoxGenerator(cfg), core.ConcurrentOptions{Readers: 3})
			if res.Violations != 0 {
				t.Fatalf("%d per-shard epoch violations", res.Violations)
			}
			if res.FailedTicks != 0 {
				t.Fatalf("%d failed ticks without fault injection", res.FailedTicks)
			}
		})
	}
}

// TestShardConcurrentContainsFaults proves the crash-containment story
// composes: a fault injected into ONE region's publish pipeline degrades
// that shard (carried batch, failed tick) while the composition keeps
// serving and no per-shard consistency violation appears.
func TestShardConcurrentContainsFaults(t *testing.T) {
	cfg := testPointConfig()
	p := core.Params{Bounds: cfg.Bounds(), NumPoints: cfg.NumPoints, Shards: 2}
	x := NewConcurrent(p, epoch.Options{
		Injector:   faultutil.MustNew(7, "apply:panic*2, build:panic*2"),
		MaxRetries: 1,
	})
	res := core.RunConcurrentSharded(x, workload.MustNewGenerator(cfg), core.ConcurrentOptions{Readers: 2})
	if res.Violations != 0 {
		t.Fatalf("%d violations under fault injection — degraded shards must still be consistent", res.Violations)
	}
	if res.FailedTicks == 0 {
		t.Fatal("injector armed but no tick failed; containment path untested")
	}
	if s := x.Stats(); s.Degraded == 0 {
		t.Fatalf("no shard recorded degradation: %+v", s)
	}
}

// TestBoundaryStraddlingExactlyOnce is the boundary property test:
// objects and query windows placed EXACTLY on region borders (the
// worst case for ownership and dedup) must each be reported exactly
// once per matching query, for both engines, at several shard counts.
func TestBoundaryStraddlingExactlyOnce(t *testing.T) {
	const space = 1024
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: space, MaxY: space}
	for _, side := range []int{2, 4} {
		step := float32(space) / float32(side)
		// Points on every border intersection, border midline, and a few
		// interior spots; some exactly on the outer edge.
		clamp := func(v float32) float32 {
			if v > space {
				return space
			}
			return v
		}
		var pts []geom.Point
		for i := 0; i <= side; i++ {
			for j := 0; j <= side; j++ {
				pts = append(pts,
					geom.Point{X: clamp(float32(i) * step), Y: clamp(float32(j) * step)},
					geom.Point{X: clamp(float32(i) * step), Y: clamp(float32(j)*step + step/2)},
					geom.Point{X: clamp(float32(i)*step + step/3), Y: clamp(float32(j) * step)})
			}
		}
		// Query windows centred on borders and corners, spanning 2 and 4
		// regions, plus one covering everything.
		var queries []geom.Rect
		for i := 1; i < side; i++ {
			c := float32(i) * step
			queries = append(queries,
				geom.Rect{MinX: c - 10, MinY: 0, MaxX: c + 10, MaxY: space},
				geom.Rect{MinX: 0, MinY: c - 10, MaxX: space, MaxY: c + 10},
				geom.Rect{MinX: c - step/2, MinY: c - step/2, MaxX: c + step/2, MaxY: c + step/2},
				geom.Rect{MinX: c, MinY: c, MaxX: c, MaxY: c}) // degenerate: exactly the corner
		}
		queries = append(queries, bounds)

		t.Run(fmt.Sprintf("point-side=%d", side), func(t *testing.T) {
			x := New(core.Params{Bounds: bounds, NumPoints: len(pts)}, side)
			x.Build(pts)
			brute := core.NewBruteForce()
			brute.Build(pts)
			assertSameEmissions(t, queries, x.Query, brute.Query)
		})
		t.Run(fmt.Sprintf("box-side=%d", side), func(t *testing.T) {
			// Boxes centred on borders/corners so every replica set
			// straddles regions; some span a full region row.
			var rects []geom.Rect
			for _, p := range pts {
				rects = append(rects,
					geom.Rect{MinX: p.X - 20, MinY: p.Y - 20, MaxX: p.X + 20, MaxY: p.Y + 20},
					geom.Rect{MinX: p.X - step, MinY: p.Y - 5, MaxX: p.X + step, MaxY: p.Y + 5})
			}
			x := NewBox(core.Params{Bounds: bounds, NumPoints: len(rects)}, side)
			x.Build(rects)
			brute := core.NewBruteForceBoxes()
			brute.Build(rects)
			assertSameEmissions(t, queries, x.Query, brute.Query)
		})
	}
}

// assertSameEmissions checks that got emits exactly the same id multiset
// as want for every query — same membership AND no duplicates.
func assertSameEmissions(t *testing.T, queries []geom.Rect, got, want func(geom.Rect, func(uint32))) {
	t.Helper()
	for qi, q := range queries {
		counts := map[uint32]int{}
		got(q, func(id uint32) { counts[id]++ })
		wantSet := map[uint32]bool{}
		want(q, func(id uint32) { wantSet[id] = true })
		for id, c := range counts {
			if c != 1 {
				t.Errorf("query %d %v: id %d emitted %d times", qi, q, id, c)
			}
			if !wantSet[id] {
				t.Errorf("query %d %v: id %d emitted but not a match", qi, q, id)
			}
		}
		for id := range wantSet {
			if counts[id] == 0 {
				t.Errorf("query %d %v: id %d missing", qi, q, id)
			}
		}
	}
}

// TestShardMigrationAndGrowth drives every object across region borders
// repeatedly — far more immigration than the build-time slack — to
// force region-local arena growth, checking invariants and query
// equivalence throughout.
func TestShardMigrationAndGrowth(t *testing.T) {
	const space = 800
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: space, MaxY: space}
	n := 300
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float32(i%20) * 40, Y: float32(i/20) * 40}
	}
	x := New(core.Params{Bounds: bounds, NumPoints: n}, 4)
	x.Build(pts)
	brute := core.NewBruteForce()

	shift := func(p geom.Point, dx, dy float32) geom.Point {
		q := geom.Point{X: p.X + dx, Y: p.Y + dy}
		if q.X < 0 {
			q.X += space
		}
		if q.X >= space {
			q.X -= space
		}
		if q.Y < 0 {
			q.Y += space
		}
		if q.Y >= space {
			q.Y -= space
		}
		return q
	}
	for round := 0; round < 6; round++ {
		// Herd everything toward one corner region, then scatter — the
		// corner region's arena must grow past its slack.
		for i := range pts {
			var next geom.Point
			if round%2 == 0 {
				next = geom.Point{X: float32(i%17) * 3, Y: float32(i/17) * 3}
			} else {
				next = shift(pts[i], float32(round*97%space), float32(round*53%space))
			}
			x.Update(uint32(i), pts[i], next)
			pts[i] = next
		}
		if err := x.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := x.Len(); got != n {
			t.Fatalf("round %d: Len=%d want %d", round, got, n)
		}
		brute.Build(pts)
		assertSameEmissions(t, []geom.Rect{
			{MinX: 0, MinY: 0, MaxX: 60, MaxY: 60},
			{MinX: 150, MinY: 150, MaxX: 450, MaxY: 450},
			bounds,
		}, x.Query, brute.Query)
	}
}

// TestShardBatchMatchesSequential proves UpdateBatch (parallel,
// two-phase routed) is indistinguishable from per-move Update calls.
func TestShardBatchMatchesSequential(t *testing.T) {
	cfg := testPointConfig()
	p := core.Params{Bounds: cfg.Bounds(), NumPoints: cfg.NumPoints}
	src := workload.MustNewGenerator(cfg)
	pts := make([]geom.Point, cfg.NumPoints)
	for i, o := range src.Objects() {
		pts[i] = o.Pos
	}
	a := New(p, 4)
	b := New(p, 4)
	a.Build(pts)
	b.Build(pts)
	if !a.CanBatchUpdates(100) {
		t.Fatal("sharded engine should take the batch path")
	}
	for tick := 0; tick < 5; tick++ {
		ups := src.Updates()
		moves := make([]geom.Move, len(ups))
		for i, u := range ups {
			moves[i] = geom.Move{ID: u.ID, Old: pts[u.ID], New: u.Pos}
		}
		for _, m := range moves {
			a.Update(m.ID, m.Old, m.New)
		}
		b.UpdateBatch(moves, 4)
		src.ApplyUpdates(ups)
		for _, u := range ups {
			pts[u.ID] = u.Pos
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		assertSameEmissions(t, []geom.Rect{
			{MinX: 100, MinY: 100, MaxX: 700, MaxY: 700},
			cfg.Bounds(),
		}, b.Query, a.Query)
	}
}
