package grid

import (
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// queryIDs collects one grid query, sorted.
func queryIDs(g *Grid, r geom.Rect) []uint32 {
	var out []uint32
	g.Query(r, func(id uint32) { out = append(out, id) })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// parallelBuildConfigs covers every bucket layout (the CSR layout has
// its own bit-identity test in csr_test.go) under both scan algorithms.
func parallelBuildConfigs() []Config {
	return []Config{
		{Layout: LayoutInline, Scan: ScanRange, BS: 4, CPS: 16},
		{Layout: LayoutInline, Scan: ScanFull, BS: 20, CPS: 8},
		{Layout: LayoutInlineXY, Scan: ScanRange, BS: 7, CPS: 16},
		{Layout: LayoutLinked, Scan: ScanRange, BS: 4, CPS: 16},
		{Layout: LayoutLinked, Scan: ScanFull, BS: 3, CPS: 8},
		{Layout: LayoutIntrusive, Scan: ScanRange, BS: 4, CPS: 16},
	}
}

// TestBucketLayoutParallelBuildMatchesSequential: for every bucket
// layout, a parallel build must be indistinguishable from a sequential
// one to Query (same result sets), Len, and CellCount.
func TestBucketLayoutParallelBuildMatchesSequential(t *testing.T) {
	bounds := geom.R(0, 0, 3000, 3000)
	rng := xrand.New(5)
	// Above minParallelBuild so the spliced path actually runs.
	pts := randomPoints(rng, 6000, bounds)
	queries := make([]geom.Rect, 0, 60)
	for i := 0; i < 56; i++ {
		c := geom.Pt(rng.Range(0, 3000), rng.Range(0, 3000))
		queries = append(queries, geom.Square(c, rng.Range(10, 700)))
	}
	queries = append(queries, bounds, bounds.Expand(100),
		geom.R(0, 0, 1, 1), geom.R(2999, 2999, 3000, 3000))

	for _, cfg := range parallelBuildConfigs() {
		for _, workers := range []int{2, 3, 8} {
			seq := MustNew(cfg, bounds, len(pts))
			seq.Build(pts)
			par := MustNew(cfg, bounds, len(pts))
			par.BuildParallel(pts, workers)

			if par.Len() != seq.Len() {
				t.Fatalf("%s workers=%d: Len %d, want %d", cfg.DisplayName(), workers, par.Len(), seq.Len())
			}
			for i := 0; i < 50; i++ {
				p := pts[rng.Intn(len(pts))]
				if par.CellCount(p) != seq.CellCount(p) {
					t.Fatalf("%s workers=%d: CellCount(%v) %d, want %d",
						cfg.DisplayName(), workers, p, par.CellCount(p), seq.CellCount(p))
				}
			}
			for _, q := range queries {
				got := queryIDs(par, q)
				want := queryIDs(seq, q)
				if len(got) != len(want) {
					t.Fatalf("%s workers=%d query %v: %d ids, want %d",
						cfg.DisplayName(), workers, q, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s workers=%d query %v: id sets differ at %d",
							cfg.DisplayName(), workers, q, i)
					}
				}
			}
		}
	}
}

// TestBucketLayoutParallelBuildThenUpdate: in-place maintenance must
// keep working on a parallel-built grid (the chains it produced are
// fill-irregular; removeAt/insertAt must not care).
func TestBucketLayoutParallelBuildThenUpdate(t *testing.T) {
	bounds := geom.R(0, 0, 3000, 3000)
	rng := xrand.New(17)
	pts := randomPoints(rng, 6000, bounds)

	for _, cfg := range parallelBuildConfigs() {
		seq := MustNew(cfg, bounds, len(pts))
		seq.Build(pts)
		par := MustNew(cfg, bounds, len(pts))
		par.BuildParallel(pts, 4)

		moved := append([]geom.Point(nil), pts...)
		for i := 0; i < len(moved); i += 3 {
			np := geom.Pt(rng.Range(0, 3000), rng.Range(0, 3000))
			seq.Update(uint32(i), moved[i], np)
			par.Update(uint32(i), moved[i], np)
			moved[i] = np
		}
		// Both grids read coordinates through the original snapshot, so
		// compare structurally: same residents per probed cell.
		for i := 0; i < 200; i++ {
			p := moved[rng.Intn(len(moved))]
			if par.CellCount(p) != seq.CellCount(p) {
				t.Fatalf("%s: after updates CellCount(%v) %d, want %d",
					cfg.DisplayName(), p, par.CellCount(p), seq.CellCount(p))
			}
		}
		if par.Len() != seq.Len() {
			t.Fatalf("%s: Len %d after updates, want %d", cfg.DisplayName(), par.Len(), seq.Len())
		}
	}
}

// TestParallelBuildSmallPopulationFallsBack: below the gate the
// sequential path must be taken (and stay correct).
func TestParallelBuildSmallPopulationFallsBack(t *testing.T) {
	bounds := geom.R(0, 0, 100, 100)
	rng := xrand.New(3)
	pts := randomPoints(rng, 200, bounds)
	for _, cfg := range parallelBuildConfigs() {
		g := MustNew(cfg, bounds, len(pts))
		g.BuildParallel(pts, 8)
		if g.Len() != len(pts) {
			t.Fatalf("%s: Len %d, want %d", cfg.DisplayName(), g.Len(), len(pts))
		}
		got := queryIDs(g, bounds)
		if len(got) != len(pts) {
			t.Fatalf("%s: whole-space query returned %d ids, want %d", cfg.DisplayName(), len(got), len(pts))
		}
	}
}
