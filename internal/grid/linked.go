package grid

import "repro/internal/geom"

// linkedStore reproduces the original Simple Grid structure of Figure 3a.
//
// The grid directory is a contiguous array of (counter, pointer) cells:
// the integer counts the objects stored in the cell, the pointer
// references a singly-linked list of buckets. Each bucket holds a
// doubly-linked list of entry nodes, and each node points at the actual
// data entry. Reaching an entry's coordinates therefore costs
// cell -> bucket -> node -> data, the extra indirection hop the paper
// blames for much of the original implementation's cache-miss bill.
//
// Nodes and buckets are recycled through arenas and freelists so that
// per-tick rebuilds do not allocate in steady state (the C++ original
// used custom allocators the same way); the pointer-chasing access
// pattern is what matters and is preserved.
type linkedStore struct {
	bs    int
	cells []linkedCell

	nodeArena   []entryNode
	nodeFree    *entryNode
	bucketArena []linkedBucket
	bucketFree  *linkedBucket
	entries     int
	pts         []geom.Point

	// Parallel-build scratch (see parbuild.go), retained across builds.
	par        chainScratch
	chains     []chainPtrs
	bucketBase []uint32
}

// linkedCell is the original 16-byte directory cell: the count (the
// "unnecessary integer" removed by the refactoring) plus the bucket
// pointer.
type linkedCell struct {
	count int32
	head  *linkedBucket
}

// linkedBucket matches the original 32-byte bucket: chain pointer, entry
// count, and the head of the doubly-linked entry list.
type linkedBucket struct {
	next  *linkedBucket
	count int32
	head  *entryNode
}

// entryNode matches the original 24-byte doubly-linked list node holding
// a pointer to the data entry. Go needs the entry ID alongside the data
// pointer (C++ recovered it from the record layout), which pads the node
// to 32 bytes; the indirection structure — the part that drives the
// memory behaviour — is identical.
type entryNode struct {
	prev, next *entryNode
	ptr        *geom.Point
	id         uint32
}

func newLinkedStore(cells, bs, numPoints int) *linkedStore {
	st := &linkedStore{
		bs:    bs,
		cells: make([]linkedCell, cells),
	}
	if numPoints > 0 {
		st.nodeArena = make([]entryNode, 0, numPoints)
		st.bucketArena = make([]linkedBucket, 0, numPoints/bs+cells)
	}
	return st
}

func (st *linkedStore) reset(pts []geom.Point) {
	for i := range st.cells {
		st.cells[i] = linkedCell{}
	}
	// Recycle wholesale: forget freelists and reuse the arenas from the
	// start. Arena nodes keep stale pointers until overwritten by insert,
	// which is fine because cells were just cleared.
	st.nodeArena = st.nodeArena[:0]
	st.nodeFree = nil
	st.bucketArena = st.bucketArena[:0]
	st.bucketFree = nil
	st.entries = 0
	st.pts = pts
}

func (st *linkedStore) allocNode() *entryNode {
	if n := st.nodeFree; n != nil {
		st.nodeFree = n.next
		*n = entryNode{}
		return n
	}
	if len(st.nodeArena) < cap(st.nodeArena) {
		st.nodeArena = st.nodeArena[:len(st.nodeArena)+1]
		n := &st.nodeArena[len(st.nodeArena)-1]
		*n = entryNode{}
		return n
	}
	// Arena exhausted (population grew): allocate individually. Appending
	// to the arena instead would move it and invalidate live pointers.
	return &entryNode{}
}

func (st *linkedStore) freeNode(n *entryNode) {
	n.prev, n.ptr = nil, nil
	n.next = st.nodeFree
	st.nodeFree = n
}

func (st *linkedStore) allocBucket() *linkedBucket {
	if b := st.bucketFree; b != nil {
		st.bucketFree = b.next
		*b = linkedBucket{}
		return b
	}
	if len(st.bucketArena) < cap(st.bucketArena) {
		st.bucketArena = st.bucketArena[:len(st.bucketArena)+1]
		b := &st.bucketArena[len(st.bucketArena)-1]
		*b = linkedBucket{}
		return b
	}
	return &linkedBucket{}
}

func (st *linkedStore) freeBucket(b *linkedBucket) {
	b.head = nil
	b.next = st.bucketFree
	st.bucketFree = b
}

func (st *linkedStore) insertAt(c int, id uint32, p geom.Point) {
	// The node references the data entry through the base snapshot, per
	// the secondary-index assumption; p itself is only used by layouts
	// that inline coordinates.
	ptr := &st.pts[id]
	cell := &st.cells[c]
	b := cell.head
	if b == nil || b.count >= int32(st.bs) {
		nb := st.allocBucket()
		nb.next = b
		cell.head = nb
		b = nb
	}
	n := st.allocNode()
	n.id = id
	n.ptr = ptr
	n.next = b.head
	if b.head != nil {
		b.head.prev = n
	}
	b.head = n
	b.count++
	cell.count++
	st.entries++
}

func (st *linkedStore) removeAt(c int, id uint32) bool {
	cell := &st.cells[c]
	var prevB *linkedBucket
	for b := cell.head; b != nil; b = b.next {
		for n := b.head; n != nil; n = n.next {
			if n.id != id {
				continue
			}
			if n.prev != nil {
				n.prev.next = n.next
			} else {
				b.head = n.next
			}
			if n.next != nil {
				n.next.prev = n.prev
			}
			st.freeNode(n)
			b.count--
			cell.count--
			st.entries--
			if b.count == 0 {
				if prevB != nil {
					prevB.next = b.next
				} else {
					cell.head = b.next
				}
				st.freeBucket(b)
			}
			return true
		}
		prevB = b
	}
	return false
}

func (st *linkedStore) scanCell(c int, emit func(id uint32)) {
	for b := st.cells[c].head; b != nil; b = b.next {
		for n := b.head; n != nil; n = n.next {
			emit(n.id)
		}
	}
}

func (st *linkedStore) filterCell(c int, r geom.Rect, emit func(id uint32)) {
	for b := st.cells[c].head; b != nil; b = b.next {
		for n := b.head; n != nil; n = n.next {
			if n.ptr.In(r) {
				emit(n.id)
			}
		}
	}
}

// appendRow is the whole-row buffered kernel of the store interface:
// direct per-cell calls on the concrete store, no interface dispatch.
func (st *linkedStore) appendRow(r geom.Rect, base, xmin, xmax int, containsY bool, xs []float32, buf []uint32) []uint32 {
	x0 := xs[xmin]
	for cx := xmin; cx <= xmax; cx++ {
		x1 := xs[cx+1]
		c := base + cx
		if containsY && r.MinX <= x0 && x1 <= r.MaxX {
			buf = st.appendCell(c, buf)
		} else if x0 <= r.MaxX && r.MinX <= x1 {
			buf = st.appendFilterCell(c, r, buf)
		}
		x0 = x1
	}
	return buf
}

// appendCell is scanCell buffered. The node walk is unchanged — the
// original structure's pointer chasing is the point of this layout —
// only the per-result callback is gone.
func (st *linkedStore) appendCell(c int, buf []uint32) []uint32 {
	for b := st.cells[c].head; b != nil; b = b.next {
		for n := b.head; n != nil; n = n.next {
			buf = append(buf, n.id)
		}
	}
	return buf
}

// appendFilterCell is filterCell buffered.
func (st *linkedStore) appendFilterCell(c int, r geom.Rect, buf []uint32) []uint32 {
	for b := st.cells[c].head; b != nil; b = b.next {
		for n := b.head; n != nil; n = n.next {
			if n.ptr.In(r) {
				buf = append(buf, n.id)
			}
		}
	}
	return buf
}

func (st *linkedStore) cellCount(c int) int { return int(st.cells[c].count) }

func (st *linkedStore) totalEntries() int { return st.entries }

// memoryBytes reports the structure's footprint using the node/bucket
// sizes of this implementation (32-byte nodes, 32-byte buckets, 16-byte
// directory cells), mirroring the n*(24+32/bs) + directory analysis of
// Section 3.1 with Go's sizes.
func (st *linkedStore) memoryBytes() int64 {
	const (
		cellBytes   = 16
		bucketBytes = 32
		nodeBytes   = 32
	)
	buckets := 0
	for i := range st.cells {
		for b := st.cells[i].head; b != nil; b = b.next {
			buckets++
		}
	}
	return int64(len(st.cells))*cellBytes + int64(buckets)*bucketBytes + int64(st.entries)*nodeBytes
}
