package grid

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/parutil"
)

// BoxGrid is the CSR grid generalized to extended objects: a uniform
// cps x cps grid over a fixed square space indexing rectangles (MBRs)
// instead of points, following the two-layer space-oriented partitioning
// of Tsitsigkos et al. adapted to this repository's counting-sort CSR
// layout.
//
// Replication: an MBR overlapping k cells appears in all k of them. The
// build is the same two-pass counting sort as the point CSR store with
// the per-point "+1 to one cell" widened to "+1 to every cell of the
// rect's cell span"; the arena therefore holds sum-of-replicas entries
// (the replication factor is reported by ReplicationFactor).
//
// Dedup on emit: replication would make a query report an object once
// per shared cell, so only one cell — the REFERENCE CELL, the first cell
// of the overlap between the query's span and the object's span (the
// cell containing the bottom-left corner of query∩MBR) — may emit it.
// Because both spans are cell ranges, that test is two integer
// comparisons per candidate, with no visited-set allocation and no
// post-pass: Query emits each intersecting object exactly once, in
// unspecified order.
//
// BoxGrid implements core.BoxIndex, core.BoxParallelBuilder,
// core.BoxBatchUpdater, core.Counter, and core.MemoryReporter.
type BoxGrid struct {
	cps      int
	cells    int
	bounds   geom.Rect
	cellSize float32
	mapper   cellMapper

	starts []uint32 // len cells+1; segment capacity of c is starts[c+1]-starts[c]
	counts []uint32 // live entries in each cell's dense segment
	ids    []uint32 // one contiguous arena of replicated entry IDs

	overflow [][]uint32 // per-cell post-build inserts that found no slack

	boxes int         // number of indexed objects (not replicas)
	rects []geom.Rect // the retained snapshot

	// spans caches each object's cell span (recomputed on Update), so
	// queries dedup without touching float coordinates and updates know
	// which cells to edit.
	spans []cellSpan

	shardCounts [][]uint32 // build scratch: per-worker count arrays
	moveSpans   []cellSpan // batch-update scratch: old/new spans per move
	// pairs is the batch-update scratch: (cell, move) pairs counting-
	// sorted by owning shard (see spanpairs.go).
	pairs spanPairs
	// queries counts query-kernel entries (nil until Instrument).
	queries *obs.Counter
}

// cellSpan is an inclusive cell range [x0,x1]x[y0,y1]. uint16 covers any
// practical cps (the directory itself is cps² cells).
type cellSpan struct {
	x0, x1, y0, y1 uint16
}

// spanOf maps a rectangle to its inclusive cell span, clamping extents on
// or outside the space boundary into the outermost cells exactly like the
// point mapping does.
func (m cellMapper) spanOf(r geom.Rect) cellSpan {
	return cellSpan{
		x0: uint16(m.axisCell(r.MinX - m.minX)),
		x1: uint16(m.axisCell(r.MaxX - m.minX)),
		y0: uint16(m.axisCell(r.MinY - m.minY)),
		y1: uint16(m.axisCell(r.MaxY - m.minY)),
	}
}

// DefaultBoxCPS is the default granularity for box grids: the paper's
// tuned point value, at which the default box workload replicates each
// MBR into ~2 cells.
const DefaultBoxCPS = RefactoredCPS

// MaxBoxCPS is the finest granularity the box grids accept: cell
// coordinates must fit the uint16 span encoding. Exported so parameter
// tuners (internal/tune) can clamp against the same limit.
const MaxBoxCPS = 1 << 16

// maxBoxCPS keeps cell coordinates within the uint16 span encoding.
const maxBoxCPS = MaxBoxCPS

// validateBoxGridParams is the shared parameter validation of the box
// grid constructors.
func validateBoxGridParams(cps int, bounds geom.Rect) error {
	switch {
	case cps <= 0:
		return fmt.Errorf("grid: cells per side must be positive, got %d", cps)
	case cps > maxBoxCPS:
		return fmt.Errorf("grid: cells per side %d exceeds the box grid limit %d", cps, maxBoxCPS)
	case !bounds.Valid() || bounds.Width() <= 0 || bounds.Height() <= 0:
		return fmt.Errorf("grid: invalid bounds %v", bounds)
	case bounds.Width() != bounds.Height():
		return fmt.Errorf("grid: space must be square, got %v", bounds)
	}
	return nil
}

// NewBoxGrid constructs a box grid for the given space. numBoxes sizes
// the arenas; it is a hint, not a limit.
func NewBoxGrid(cps int, bounds geom.Rect, numBoxes int) (*BoxGrid, error) {
	if err := validateBoxGridParams(cps, bounds); err != nil {
		return nil, err
	}
	bg := &BoxGrid{
		cps:      cps,
		cells:    cps * cps,
		bounds:   bounds,
		cellSize: bounds.Width() / float32(cps),
	}
	bg.mapper = cellMapper{
		minX:    bounds.MinX,
		minY:    bounds.MinY,
		invCell: 1 / bg.cellSize,
		cps:     cps,
	}
	bg.starts = make([]uint32, bg.cells+1)
	bg.counts = make([]uint32, bg.cells)
	bg.overflow = make([][]uint32, bg.cells)
	if numBoxes > 0 {
		bg.ids = make([]uint32, 0, 2*numBoxes)
		bg.spans = make([]cellSpan, 0, numBoxes)
	}
	return bg, nil
}

// MustNewBoxGrid is NewBoxGrid for known-good parameters; it panics on
// error.
func MustNewBoxGrid(cps int, bounds geom.Rect, numBoxes int) *BoxGrid {
	bg, err := NewBoxGrid(cps, bounds, numBoxes)
	if err != nil {
		panic(err)
	}
	return bg
}

// Name implements core.BoxIndex.
func (bg *BoxGrid) Name() string { return fmt.Sprintf("boxgrid-csr(cps=%d)", bg.cps) }

// CPS returns the grid granularity.
func (bg *BoxGrid) CPS() int { return bg.cps }

// Bounds returns the indexed space.
func (bg *BoxGrid) Bounds() geom.Rect { return bg.bounds }

// spanOf maps a rectangle to its inclusive cell span.
func (bg *BoxGrid) spanOf(r geom.Rect) cellSpan { return bg.mapper.spanOf(r) }

// prepare sizes the snapshot-dependent state for a bulk build.
func (bg *BoxGrid) prepare(rects []geom.Rect) {
	bg.rects = rects
	bg.boxes = len(rects)
	for c, of := range bg.overflow {
		if len(of) > 0 {
			bg.overflow[c] = of[:0]
		}
	}
	if cap(bg.spans) < len(rects) {
		bg.spans = make([]cellSpan, len(rects))
	} else {
		bg.spans = bg.spans[:len(rects)]
	}
}

// sizeArena grows the ID arena to hold total replicas.
func (bg *BoxGrid) sizeArena(total uint32) {
	if cap(bg.ids) < int(total) {
		bg.ids = make([]uint32, total)
	} else {
		bg.ids = bg.ids[:total]
	}
}

// Build implements core.BoxIndex: the two-pass counting sort over cell
// spans. Pass 1 computes every object's span and counts one slot per
// overlapped cell; the exclusive prefix sum fixes the segments; pass 2
// replicates each ID into all its cells. Arenas are retained across
// builds, so steady-state builds allocate nothing.
func (bg *BoxGrid) Build(rects []geom.Rect) {
	bg.prepare(rects)
	counts := bg.counts
	for i := range counts {
		counts[i] = 0
	}
	cps := bg.cps
	for i := range rects {
		s := bg.spanOf(rects[i])
		bg.spans[i] = s
		for cy := int(s.y0); cy <= int(s.y1); cy++ {
			row := counts[cy*cps+int(s.x0) : cy*cps+int(s.x1)+1]
			for j := range row {
				row[j]++
			}
		}
	}
	// Exclusive prefix sum into starts; counts becomes the scatter
	// cursor.
	var sum uint32
	for c := range counts {
		bg.starts[c] = sum
		sum += counts[c]
		counts[c] = 0
	}
	bg.starts[len(counts)] = sum
	bg.sizeArena(sum)
	for i := range rects {
		s := bg.spans[i]
		for cy := int(s.y0); cy <= int(s.y1); cy++ {
			base := cy * cps
			for cx := int(s.x0); cx <= int(s.x1); cx++ {
				c := base + cx
				bg.ids[bg.starts[c]+counts[c]] = uint32(i)
				counts[c]++
			}
		}
	}
}

// minParallelBoxBuild gates the sharded build; below this population the
// fork/join overhead beats the win.
const minParallelBoxBuild = 4096

// BuildParallel implements core.BoxParallelBuilder: the sharded variant
// of Build. Workers count their contiguous chunk of rects into private
// count arrays, the global prefix sum turns them into per-worker scatter
// bases, and each worker replicates its chunk into its disjoint ranges.
// Within a cell, entries appear in ascending ID order — exactly the
// layout the sequential Build produces, so the arena is bit-identical.
func (bg *BoxGrid) BuildParallel(rects []geom.Rect, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(rects) < minParallelBoxBuild {
		bg.Build(rects)
		return
	}
	bg.prepare(rects)
	cells := bg.cells
	cps := bg.cps
	if len(bg.shardCounts) < workers {
		bg.shardCounts = make([][]uint32, workers)
	}
	for w := 0; w < workers; w++ {
		if len(bg.shardCounts[w]) < cells {
			bg.shardCounts[w] = make([]uint32, cells)
		} else {
			sc := bg.shardCounts[w][:cells]
			for i := range sc {
				sc[i] = 0
			}
		}
	}

	parutil.ForEachShard(len(rects), workers, func(w, lo, hi int) {
		sc := bg.shardCounts[w][:cells]
		for i := lo; i < hi; i++ {
			s := bg.spanOf(rects[i])
			bg.spans[i] = s
			for cy := int(s.y0); cy <= int(s.y1); cy++ {
				row := sc[cy*cps+int(s.x0) : cy*cps+int(s.x1)+1]
				for j := range row {
					row[j]++
				}
			}
		}
	})

	// Merge: global exclusive prefix sum across (cell, worker) in worker
	// order, rewriting each shard count into that shard's scatter base.
	var sum uint32
	for c := 0; c < cells; c++ {
		bg.starts[c] = sum
		for w := 0; w < workers; w++ {
			n := bg.shardCounts[w][c]
			bg.shardCounts[w][c] = sum
			sum += n
		}
	}
	bg.starts[cells] = sum
	bg.sizeArena(sum)

	parutil.ForEachShard(len(rects), workers, func(w, lo, hi int) {
		sc := bg.shardCounts[w][:cells]
		for i := lo; i < hi; i++ {
			s := bg.spans[i]
			for cy := int(s.y0); cy <= int(s.y1); cy++ {
				base := cy * cps
				for cx := int(s.x0); cx <= int(s.x1); cx++ {
					c := base + cx
					bg.ids[sc[c]] = uint32(i)
					sc[c]++
				}
			}
		}
	})

	for c := 0; c < cells; c++ {
		bg.counts[c] = bg.starts[c+1] - bg.starts[c]
	}
}

// Query implements core.BoxIndex: visit the cells overlapping r and
// report every object whose MBR intersects r, exactly once.
//
// Per candidate id in cell (cx, cy) the reference-cell test emits only
// when (cx, cy) is the first cell shared by the query's span and the
// object's span — max(query.x0, span.x0) and likewise for y — so an
// object replicated across k visited cells passes in exactly one of
// them, with no visited set and no float arithmetic. The geometric
// intersection test then confirms the match: replication proves the
// object's span touches the cell, and axisCell rounding means even a
// cell fully covered by r can hold a replica whose rect misses r by an
// ulp, so unlike the point grid no cell skips the filter — the contract
// is digest-identical agreement with the brute-force oracle.
func (bg *BoxGrid) Query(r geom.Rect, emit func(id uint32)) {
	bg.queries.Inc()
	// The query's span comes from the same mapping as the cached object
	// spans — the dedup test depends on the two never diverging.
	q := bg.spanOf(r)
	cps := bg.cps
	for cy := int(q.y0); cy <= int(q.y1); cy++ {
		base := cy * cps
		for cx := int(q.x0); cx <= int(q.x1); cx++ {
			bg.emitCell(base+cx, uint16(cx), uint16(cy), q.x0, q.y0, r, emit)
		}
	}
}

// QueryAppend implements core.QueryAppender: the same span walk as
// Query with the dedup-and-intersect loop appending into buf.
func (bg *BoxGrid) QueryAppend(r geom.Rect, buf []uint32) []uint32 {
	bg.queries.Inc()
	q := bg.spanOf(r)
	cps := bg.cps
	for cy := int(q.y0); cy <= int(q.y1); cy++ {
		base := cy * cps
		for cx := int(q.x0); cx <= int(q.x1); cx++ {
			buf = bg.appendCell(base+cx, uint16(cx), uint16(cy), q.x0, q.y0, r, buf)
		}
	}
	return buf
}

// QueryBatch implements core.BatchQuerier (append kernel over the
// caller's Morton-ordered batch; see Grid.QueryBatch).
func (bg *BoxGrid) QueryBatch(rects []geom.Rect, offsets, buf []uint32) ([]uint32, []uint32) {
	offsets = append(offsets[:0], 0)
	buf = buf[:0]
	for _, r := range rects {
		buf = bg.QueryAppend(r, buf)
		offsets = append(offsets, uint32(len(buf)))
	}
	return offsets, buf
}

// refCell reports whether (cx, cy) is the reference cell for an object
// with span s under a query whose span starts at (qx0, qy0): the first
// cell the two spans share.
func refCell(s cellSpan, cx, cy, qx0, qy0 uint16) bool {
	rx := s.x0
	if qx0 > rx {
		rx = qx0
	}
	ry := s.y0
	if qy0 > ry {
		ry = qy0
	}
	return cx == rx && cy == ry
}

// emitCell reports cell c's residents that pass the reference-cell dedup
// and intersect r. The dedup test runs first: for replicated objects it
// rejects all but one cell before any coordinate load.
func (bg *BoxGrid) emitCell(c int, cx, cy, qx0, qy0 uint16, r geom.Rect, emit func(id uint32)) {
	b := bg.starts[c]
	for _, id := range bg.ids[b : b+bg.counts[c]] {
		if refCell(bg.spans[id], cx, cy, qx0, qy0) && bg.rects[id].Intersects(r) {
			emit(id)
		}
	}
	for _, id := range bg.overflow[c] {
		if refCell(bg.spans[id], cx, cy, qx0, qy0) && bg.rects[id].Intersects(r) {
			emit(id)
		}
	}
}

// appendCell is emitCell buffered: the same dedup-then-intersect loop
// over the dense segment and the overflow, appending survivors.
func (bg *BoxGrid) appendCell(c int, cx, cy, qx0, qy0 uint16, r geom.Rect, buf []uint32) []uint32 {
	b := bg.starts[c]
	for _, id := range bg.ids[b : b+bg.counts[c]] {
		if refCell(bg.spans[id], cx, cy, qx0, qy0) && bg.rects[id].Intersects(r) {
			buf = append(buf, id)
		}
	}
	for _, id := range bg.overflow[c] {
		if refCell(bg.spans[id], cx, cy, qx0, qy0) && bg.rects[id].Intersects(r) {
			buf = append(buf, id)
		}
	}
	return buf
}

// Update implements core.BoxIndex: remove the entry from every cell of
// its old span and insert it into every cell of the new one, reusing
// segment slack first and falling back to the per-cell overflow — the
// same maintenance discipline as the point CSR store, replicated across
// the span.
func (bg *BoxGrid) Update(id uint32, old, new geom.Rect) {
	os := bg.spans[id]
	ns := bg.spanOf(new)
	cps := bg.cps
	for cy := int(os.y0); cy <= int(os.y1); cy++ {
		base := cy * cps
		for cx := int(os.x0); cx <= int(os.x1); cx++ {
			if !bg.removeLocal(base+cx, id) {
				// The replica must exist: Build placed one in every
				// span cell and the workload issues at most one update
				// per object per tick.
				panic(fmt.Sprintf("grid: box update of unknown entry %d at %v", id, old))
			}
		}
	}
	bg.spans[id] = ns
	for cy := int(ns.y0); cy <= int(ns.y1); cy++ {
		base := cy * cps
		for cx := int(ns.x0); cx <= int(ns.x1); cx++ {
			bg.insertLocal(base+cx, id)
		}
	}
}

// insertLocal adds one replica of id to cell c (slack first, then
// overflow). It only touches cell-c state, so distinct cells may be
// processed concurrently.
func (bg *BoxGrid) insertLocal(c int, id uint32) {
	base, n := bg.starts[c], bg.counts[c]
	if base+n < bg.starts[c+1] {
		bg.ids[base+n] = id
		bg.counts[c] = n + 1
		return
	}
	bg.overflow[c] = append(bg.overflow[c], id)
}

// removeLocal deletes one replica of id from cell c, reporting whether
// it was present. It only touches cell-c state.
func (bg *BoxGrid) removeLocal(c int, id uint32) bool {
	base, n := bg.starts[c], bg.counts[c]
	seg := bg.ids[base : base+n]
	for j, v := range seg {
		if v != id {
			continue
		}
		if of := bg.overflow[c]; len(of) > 0 {
			// Refill the hole from overflow to keep the dense segment
			// full.
			seg[j] = of[len(of)-1]
			bg.overflow[c] = of[:len(of)-1]
		} else {
			seg[j] = seg[n-1]
			bg.counts[c] = n - 1
		}
		return true
	}
	of := bg.overflow[c]
	for j, v := range of {
		if v != id {
			continue
		}
		of[j] = of[len(of)-1]
		bg.overflow[c] = of[:len(of)-1]
		return true
	}
	return false
}

// CanBatchUpdates implements core.BoxBatchUpdater: the sharded path pays
// off only for batches large enough to beat the fork/join overhead.
func (bg *BoxGrid) CanBatchUpdates(n int) bool { return n >= minParallelMoves }

// UpdateBatch implements core.BoxBatchUpdater. A move touches every cell
// of its old and new span, so the batch is expanded into (cell, move)
// pairs counting-sorted by owning shard (cell % workers), the same
// discipline as the point grid's bucketByShard: all removals first, a
// barrier, then all insertions, each worker walking only its own pair
// run. Per-cell state is never touched by two workers, a replica is
// never inserted before the removal pass finished, and within a cell
// pairs stay in batch order, so the result is indistinguishable from
// per-move Update calls.
func (bg *BoxGrid) UpdateBatch(moves []geom.BoxMove, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(moves) < minParallelMoves {
		for i := range moves {
			bg.Update(moves[i].ID, moves[i].Old, moves[i].New)
		}
		return
	}

	// Scratch layout: old span then new span per move. Old spans are
	// snapshotted from the live table because nothing mutates until the
	// spans of every move are fixed.
	need := 2 * len(moves)
	if cap(bg.moveSpans) < need {
		bg.moveSpans = make([]cellSpan, need)
	} else {
		bg.moveSpans = bg.moveSpans[:need]
	}
	oldSpans := bg.moveSpans[:len(moves)]
	newSpans := bg.moveSpans[len(moves):]
	parutil.ForEachShard(len(moves), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			oldSpans[i] = bg.spans[moves[i].ID]
			newSpans[i] = bg.spanOf(moves[i].New)
		}
	})

	var missing atomic.Int64
	missing.Store(-1)
	bg.pairs.run(oldSpans, bg.cps, workers, func(c int, i uint32) {
		if !bg.removeLocal(c, moves[i].ID) {
			missing.CompareAndSwap(-1, int64(i))
		}
	})
	if i := missing.Load(); i >= 0 {
		// Same contract as Update: the replica must exist.
		panic(fmt.Sprintf("grid: box update of unknown entry %d at %v",
			moves[i].ID, moves[i].Old))
	}

	// Record the new spans between the passes: reads are done, inserts
	// have not started.
	for i := range moves {
		bg.spans[moves[i].ID] = newSpans[i]
	}

	bg.pairs.run(newSpans, bg.cps, workers, func(c int, i uint32) {
		bg.insertLocal(c, moves[i].ID)
	})
}

// Len implements core.Counter: the number of indexed objects, not
// replicas.
func (bg *BoxGrid) Len() int { return bg.boxes }

// Replicas returns the total number of (object, cell) entries currently
// in the dense arena and overflow.
func (bg *BoxGrid) Replicas() int {
	total := 0
	for c := range bg.counts {
		total += int(bg.counts[c]) + len(bg.overflow[c])
	}
	return total
}

// ReplicationFactor returns replicas per object — the space/dedup cost
// of the cell size relative to the MBR extents (1.0 means no MBR spans
// a cell boundary).
func (bg *BoxGrid) ReplicationFactor() float64 {
	if bg.boxes == 0 {
		return 0
	}
	return float64(bg.Replicas()) / float64(bg.boxes)
}

// MemoryBytes implements core.MemoryReporter: directory, arena, span
// cache, overflow capacity, and retained build scratch.
func (bg *BoxGrid) MemoryBytes() int64 {
	total := int64(len(bg.starts)+len(bg.counts)+cap(bg.ids)) * 4
	total += int64(cap(bg.spans)) * 8
	total += int64(len(bg.overflow)) * 24
	for _, of := range bg.overflow {
		total += int64(cap(of)) * 4
	}
	for _, sc := range bg.shardCounts {
		total += int64(cap(sc)) * 4
	}
	total += int64(cap(bg.moveSpans)) * 8
	return total
}
