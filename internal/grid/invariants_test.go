package grid

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/xrand"
)

var (
	_ core.InvariantChecker = (*Grid)(nil)
	_ core.InvariantChecker = (*BoxGrid)(nil)
	_ core.InvariantChecker = (*BoxGrid2L)(nil)
)

// moveSome applies k random in-place moves to pts through the index and
// the base table together (the secondary-index contract).
func moveSome(r *xrand.Rand, g *Grid, pts []geom.Point, k int) {
	for j := 0; j < k; j++ {
		id := uint32(r.Intn(len(pts)))
		np := geom.Pt(r.Range(testBounds.MinX, testBounds.MaxX), r.Range(testBounds.MinY, testBounds.MaxY))
		g.Update(id, pts[id], np)
		pts[id] = np
	}
}

func TestGridCheckInvariantsAcrossLayouts(t *testing.T) {
	r := xrand.New(99)
	for _, cfg := range allConfigs() {
		t.Run(cfg.DisplayName(), func(t *testing.T) {
			pts := randomPoints(r, 800, testBounds)
			g := MustNew(cfg, testBounds, len(pts))
			g.Build(pts)
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("after build: %v", err)
			}
			moveSome(r, g, pts, 300)
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("after updates: %v", err)
			}
		})
	}
}

// TestGridCheckInvariantsDetectsCorruption proves the audit is not a
// rubber stamp: hand-corrupt CSR state and expect a named violation.
func TestGridCheckInvariantsDetectsCorruption(t *testing.T) {
	r := xrand.New(7)
	pts := randomPoints(r, 500, testBounds)

	t.Run("count exceeds capacity", func(t *testing.T) {
		g := MustNew(CSR(), testBounds, len(pts))
		g.Build(pts)
		// Inflate a live count past its segment capacity.
		for c := range g.csr.counts {
			if g.csr.counts[c] > 0 {
				g.csr.counts[c] = g.csr.starts[c+1] - g.csr.starts[c] + 1
				break
			}
		}
		if err := g.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "capacity") {
			t.Fatalf("corrupt count not detected: %v", err)
		}
	})

	t.Run("misplaced entry", func(t *testing.T) {
		g := MustNew(CSR(), testBounds, len(pts))
		g.Build(pts)
		// Move an object in the base table without telling the index.
		pts2 := append([]geom.Point(nil), pts...)
		g.Build(pts2)
		pts2[0] = geom.Pt(testBounds.MaxX-1, testBounds.MaxY-1)
		if err := g.CheckInvariants(); err == nil {
			t.Fatal("stale cell placement not detected")
		}
	})

	t.Run("xy arena divergence", func(t *testing.T) {
		g := MustNew(CSRXY(), testBounds, len(pts))
		g.Build(pts)
		g.csr.xy[0]++
		if err := g.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "diverge") {
			t.Fatalf("torn coordinate write not detected: %v", err)
		}
	})
}

func TestBoxGridCheckInvariants(t *testing.T) {
	r := xrand.New(21)
	rects := randomBoxes(r, 600, testBounds, 0, 40)
	bg := MustNewBoxGrid(32, testBounds, len(rects))
	bg.Build(rects)
	if err := bg.CheckInvariants(); err != nil {
		t.Fatalf("after build: %v", err)
	}
	for j := 0; j < 200; j++ {
		id := uint32(r.Intn(len(rects)))
		nr := randomBoxes(r, 1, testBounds, 0, 40)[0]
		bg.Update(id, rects[id], nr)
		rects[id] = nr
	}
	if err := bg.CheckInvariants(); err != nil {
		t.Fatalf("after updates: %v", err)
	}

	// Corruption: retarget a replica to an id whose span excludes the cell.
	for c := 0; c < bg.cells; c++ {
		base, n := bg.starts[c], bg.counts[c]
		if n == 0 {
			continue
		}
		id := bg.ids[base]
		s := bg.spans[id]
		if int(s.x1)-int(s.x0) == bg.cps-1 && int(s.y1)-int(s.y0) == bg.cps-1 {
			continue // spans everything; pick another cell
		}
		// Duplicate the replica into the count: breaks the per-id tally.
		bg.counts[c] = n - 1
		if err := bg.CheckInvariants(); err == nil {
			t.Fatal("dropped replica not detected")
		}
		bg.counts[c] = n
		break
	}
}

func TestBoxGrid2LCheckInvariants(t *testing.T) {
	r := xrand.New(22)
	rects := randomBoxes(r, 600, testBounds, 0, 40)
	bg := MustNewBoxGrid2L(32, testBounds, len(rects))
	bg.Build(rects)
	if err := bg.CheckInvariants(); err != nil {
		t.Fatalf("after build: %v", err)
	}
	for j := 0; j < 200; j++ {
		id := uint32(r.Intn(len(rects)))
		nr := randomBoxes(r, 1, testBounds, 0, 40)[0]
		bg.Update(id, rects[id], nr)
		rects[id] = nr
	}
	if err := bg.CheckInvariants(); err != nil {
		t.Fatalf("after updates: %v", err)
	}

	// Corruption: swap two class run ends so the partition inverts.
	for c := 0; c < bg.cells; c++ {
		a, b := bg.ends[bg.endIdx(c, 0)], bg.ends[bg.endIdx(c, 1)]
		if a == b {
			continue
		}
		bg.ends[bg.endIdx(c, 0)], bg.ends[bg.endIdx(c, 1)] = b, a
		if err := bg.CheckInvariants(); err == nil {
			t.Fatal("inverted class runs not detected")
		}
		bg.ends[bg.endIdx(c, 0)], bg.ends[bg.endIdx(c, 1)] = a, b
		break
	}
}
