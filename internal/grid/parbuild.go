package grid

import (
	"math"

	"repro/internal/geom"
	"repro/internal/parutil"
)

// This file implements parallel bulk builds for the bucket layouts
// (inline, linked, intrusive), lifting the sequential fallback the CSR
// layout never had: each worker builds private per-cell chains over its
// contiguous chunk of the snapshot, and a sequential merge splices the
// per-worker chains per cell — a pointer relink per (worker, cell), no
// entry is ever moved. The resulting grid differs from the sequential
// build only in chain order and bucket fill (each worker chain keeps its
// own partial head bucket), both of which the store contracts leave
// unspecified; queries, updates, and digests are indistinguishable.
//
// The inline and linked layouts pre-size their arenas exactly with a
// counting pass (the same discipline as the CSR build), so workers
// bump-allocate from disjoint regions and the build allocates nothing in
// steady state. The intrusive layout has one node per object ID and
// needs no sizing pass at all.

// spliceBuildStore is the capability Grid.BuildParallel dispatches on
// for non-CSR layouts.
type spliceBuildStore interface {
	buildParallel(pts []geom.Point, m cellMapper, workers int)
}

var (
	_ spliceBuildStore = (*inlineStore)(nil)
	_ spliceBuildStore = (*linkedStore)(nil)
	_ spliceBuildStore = (*intrusiveStore)(nil)
)

// chainScratch holds the retained scratch of the counting pass shared by
// the inline and linked parallel builds.
type chainScratch struct {
	cellOf      []uint32   // per-point cell index
	shardCounts [][]uint32 // per-worker per-cell population
}

// count caches every point's cell in cellOf and tallies per-worker
// per-cell populations, sharding the snapshot into contiguous chunks
// (the same shard boundaries ForEachShard will produce again for the
// insertion pass).
func (s *chainScratch) count(pts []geom.Point, m cellMapper, cells, workers int) {
	if cap(s.cellOf) < len(pts) {
		s.cellOf = make([]uint32, len(pts))
	} else {
		s.cellOf = s.cellOf[:len(pts)]
	}
	if len(s.shardCounts) < workers {
		s.shardCounts = make([][]uint32, workers)
	}
	for w := 0; w < workers; w++ {
		if len(s.shardCounts[w]) < cells {
			s.shardCounts[w] = make([]uint32, cells)
		} else {
			sc := s.shardCounts[w][:cells]
			for i := range sc {
				sc[i] = 0
			}
		}
	}
	parutil.ForEachShard(len(pts), workers, func(w, lo, hi int) {
		sc := s.shardCounts[w][:cells]
		for i := lo; i < hi; i++ {
			c := uint32(m.cellIndexFor(pts[i]))
			s.cellOf[i] = c
			sc[c]++
		}
	})
}

// headTail32 is one worker's private chain table: head and tail bucket
// offset (or node ID) per cell.
type headTail32 struct {
	head, tail []uint32
}

func resizeHeadTails(tables []headTail32, workers, cells int) []headTail32 {
	if len(tables) < workers {
		tables = append(tables, make([]headTail32, workers-len(tables))...)
	}
	for w := 0; w < workers; w++ {
		if len(tables[w].head) < cells {
			tables[w].head = make([]uint32, cells)
			tables[w].tail = make([]uint32, cells)
		}
	}
	return tables
}

// ---- inline layout ----

func (st *inlineStore) buildParallel(pts []geom.Point, m cellMapper, workers int) {
	st.reset(pts)
	st.par.count(pts, m, len(st.cells), workers)
	cells := len(st.cells)
	st.chains = resizeHeadTails(st.chains, workers, cells)

	// Exact arena sizing: worker w needs ceil(cnt/bs) buckets per cell.
	// The same loop resets the chain tables (nilOff heads) so workers
	// with empty chunks leave no stale state for the splice.
	bs := uint32(st.bs)
	if cap(st.slotBase) < workers+1 {
		st.slotBase = make([]uint32, workers+1)
	} else {
		st.slotBase = st.slotBase[:workers+1]
	}
	var totalBuckets uint32
	for w := 0; w < workers; w++ {
		st.slotBase[w] = totalBuckets * uint32(st.slots)
		sc := st.par.shardCounts[w][:cells]
		heads := st.chains[w].head[:cells]
		for c, cnt := range sc {
			heads[c] = nilOff
			totalBuckets += (cnt + bs - 1) / bs
		}
	}
	st.slotBase[workers] = totalBuckets * uint32(st.slots)

	need := int(totalBuckets) * st.slots
	if cap(st.arena) < need {
		st.arena = make([]uint32, need)
	} else {
		st.arena = st.arena[:need]
	}

	parutil.ForEachShard(len(pts), workers, func(w, lo, hi int) {
		arena := st.arena
		heads := st.chains[w].head
		tails := st.chains[w].tail
		cursor := st.slotBase[w]
		for i := lo; i < hi; i++ {
			c := st.par.cellOf[i]
			off := heads[c]
			if off == nilOff || arena[off+1] >= bs {
				nb := cursor
				cursor += uint32(st.slots)
				arena[nb] = off
				arena[nb+1] = 0
				if off == nilOff {
					tails[c] = nb
				}
				heads[c] = nb
				off = nb
			}
			n := arena[off+1]
			arena[off+2+n] = uint32(i)
			if st.withXY {
				xy := off + 2 + bs + 2*n
				p := pts[i]
				arena[xy] = math.Float32bits(p.X)
				arena[xy+1] = math.Float32bits(p.Y)
			}
			arena[off+1] = n + 1
		}
	})

	// Splice: per cell, link the worker chains in worker order. Each
	// chain's tail (its first-allocated bucket) already terminates with
	// the previous chain head it was seeded with — nilOff — so one write
	// per non-empty (worker, cell) pair stitches the full chain.
	for c := 0; c < cells; c++ {
		prevTail := nilOff
		for w := 0; w < workers; w++ {
			head := st.chains[w].head[c]
			if head == nilOff {
				continue
			}
			if prevTail == nilOff {
				st.cells[c] = head
			} else {
				st.arena[prevTail] = head
			}
			prevTail = st.chains[w].tail[c]
		}
	}

	st.next = st.slotBase[workers]
	st.live = int(totalBuckets)
	st.entries = len(pts)
}

// ---- linked layout ----

func (st *linkedStore) buildParallel(pts []geom.Point, m cellMapper, workers int) {
	st.reset(pts)
	st.par.count(pts, m, len(st.cells), workers)
	cells := len(st.cells)

	// One node per point, addressed by point index, so workers write
	// disjoint arena entries with no allocation protocol at all.
	if cap(st.nodeArena) < len(pts) {
		st.nodeArena = make([]entryNode, len(pts))
	} else {
		st.nodeArena = st.nodeArena[:len(pts)]
	}

	// Exact bucket sizing, like the inline layout.
	bs := uint32(st.bs)
	if cap(st.bucketBase) < workers+1 {
		st.bucketBase = make([]uint32, workers+1)
	} else {
		st.bucketBase = st.bucketBase[:workers+1]
	}
	st.chains = resizeChainPtrs(st.chains, workers, cells)
	var totalBuckets uint32
	for w := 0; w < workers; w++ {
		st.bucketBase[w] = totalBuckets
		sc := st.par.shardCounts[w][:cells]
		heads := st.chains[w].head[:cells]
		for c, cnt := range sc {
			heads[c] = nil
			totalBuckets += (cnt + bs - 1) / bs
		}
	}
	st.bucketBase[workers] = totalBuckets
	if cap(st.bucketArena) < int(totalBuckets) {
		st.bucketArena = make([]linkedBucket, totalBuckets)
	} else {
		st.bucketArena = st.bucketArena[:totalBuckets]
	}

	parutil.ForEachShard(len(pts), workers, func(w, lo, hi int) {
		heads := st.chains[w].head
		tails := st.chains[w].tail
		cursor := st.bucketBase[w]
		for i := lo; i < hi; i++ {
			c := st.par.cellOf[i]
			b := heads[c]
			if b == nil || b.count >= int32(st.bs) {
				nb := &st.bucketArena[cursor]
				cursor++
				*nb = linkedBucket{next: b}
				if b == nil {
					tails[c] = nb
				}
				heads[c] = nb
				b = nb
			}
			n := &st.nodeArena[i]
			*n = entryNode{id: uint32(i), ptr: &pts[i], next: b.head}
			if b.head != nil {
				b.head.prev = n
			}
			b.head = n
			b.count++
		}
	})

	for c := 0; c < cells; c++ {
		var prevTail *linkedBucket
		var total int32
		for w := 0; w < workers; w++ {
			head := st.chains[w].head[c]
			if head == nil {
				continue
			}
			if prevTail == nil {
				st.cells[c].head = head
			} else {
				prevTail.next = head
			}
			prevTail = st.chains[w].tail[c]
			total += int32(st.par.shardCounts[w][c])
		}
		st.cells[c].count = total
	}

	st.entries = len(pts)
}

// chainPtrs is headTail32 with bucket pointers instead of offsets.
type chainPtrs struct {
	head, tail []*linkedBucket
}

func resizeChainPtrs(tables []chainPtrs, workers, cells int) []chainPtrs {
	if len(tables) < workers {
		tables = append(tables, make([]chainPtrs, workers-len(tables))...)
	}
	for w := 0; w < workers; w++ {
		if len(tables[w].head) < cells {
			tables[w].head = make([]*linkedBucket, cells)
			tables[w].tail = make([]*linkedBucket, cells)
		}
	}
	return tables
}

// ---- intrusive layout ----

func (st *intrusiveStore) buildParallel(pts []geom.Point, m cellMapper, workers int) {
	// No sizing pass: exactly one node per object ID, written in full by
	// its owning worker, so the reset's unlink-marking loop is redundant
	// too.
	if cap(st.nodes) < len(pts) {
		st.nodes = make([]iNode, len(pts))
	}
	st.nodes = st.nodes[:len(pts)]
	st.pts = pts
	cells := len(st.cells)
	st.chains = resizeHeadTails(st.chains, workers, cells)
	for w := 0; w < workers; w++ {
		heads := st.chains[w].head[:cells]
		for c := range heads {
			heads[c] = nilOff // bit pattern of nilID in the uint32 table
		}
	}

	parutil.ForEachShard(len(pts), workers, func(w, lo, hi int) {
		heads := st.chains[w].head
		tails := st.chains[w].tail
		for i := lo; i < hi; i++ {
			c := uint32(m.cellIndexFor(pts[i]))
			head := heads[c]
			st.nodes[i] = iNode{prev: nilID, next: int32(head), cell: int32(c)}
			if int32(head) != nilID {
				st.nodes[head].prev = int32(i)
			} else {
				tails[c] = uint32(i)
			}
			heads[c] = uint32(i)
		}
	})

	for c := 0; c < cells; c++ {
		prevTail := nilID
		first := nilID
		for w := 0; w < workers; w++ {
			head := int32(st.chains[w].head[c])
			if head == nilID {
				continue
			}
			if prevTail == nilID {
				first = head
			} else {
				st.nodes[prevTail].next = head
				st.nodes[head].prev = prevTail
			}
			prevTail = int32(st.chains[w].tail[c])
		}
		st.cells[c] = first
	}

	st.entries = len(pts)
}
