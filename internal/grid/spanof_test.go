package grid

import (
	"testing"

	"repro/internal/geom"
)

// testMapper builds the cell mapping of a cps x cps box grid over
// bounds, exactly as the box grid constructors do.
func testMapper(cps int, bounds geom.Rect) cellMapper {
	return cellMapper{
		minX:    bounds.MinX,
		minY:    bounds.MinY,
		invCell: 1 / (bounds.Width() / float32(cps)),
		cps:     cps,
	}
}

// TestSpanOfClampsOutsideSpace is the boundary regression test for the
// uint16 span encoding: rects entirely outside the space on each side —
// including coordinates so large that the float -> int conversion in the
// cell mapping would overflow — must clamp into the outermost cells with
// x0 <= x1 and y0 <= y1. An inverted span would make Build index the
// object into zero cells, and the next Update of it would panic.
func TestSpanOfClampsOutsideSpace(t *testing.T) {
	bounds := geom.R(0, 0, 1000, 1000)
	const cps = 16
	m := testMapper(cps, bounds)
	const huge = 1e30 // far beyond the space AND beyond int range after scaling
	cases := []struct {
		name string
		r    geom.Rect
	}{
		{"entirely left", geom.R(-500, 100, -100, 200)},
		{"entirely right", geom.R(1100, 100, 1500, 200)},
		{"entirely below", geom.R(100, -500, 200, -100)},
		{"entirely above", geom.R(100, 1100, 200, 1500)},
		{"far left overflow", geom.R(-huge, 100, -huge/2, 200)},
		{"far right overflow", geom.R(huge/2, 100, huge, 200)},
		{"far below overflow", geom.R(100, -huge, 200, -huge/2)},
		{"far above overflow", geom.R(100, huge/2, 200, huge)},
		{"in-range min, overflowing max", geom.R(500, 500, huge, huge)},
		{"overflowing min, in-range max", geom.R(-huge, -huge, 500, 500)},
		{"spanning overflow on both ends", geom.R(-huge, -huge, huge, huge)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := m.spanOf(tc.r)
			if s.x0 > s.x1 || s.y0 > s.y1 {
				t.Fatalf("spanOf(%v) = %+v: inverted span", tc.r, s)
			}
			if int(s.x1) >= cps || int(s.y1) >= cps {
				t.Fatalf("spanOf(%v) = %+v: cell beyond cps=%d", tc.r, s, cps)
			}
		})
	}

	// The clamped spans must still land in the outermost cells on the
	// correct side, like the point mapping does.
	if s := m.spanOf(geom.R(-500, 100, -100, 200)); s.x0 != 0 || s.x1 != 0 {
		t.Fatalf("entirely-left rect clamped to columns [%d, %d], want [0, 0]", s.x0, s.x1)
	}
	if s := m.spanOf(geom.R(1100, 100, 1500, 200)); s.x0 != cps-1 || s.x1 != cps-1 {
		t.Fatalf("entirely-right rect clamped to columns [%d, %d], want [%d, %d]",
			s.x0, s.x1, cps-1, cps-1)
	}
	if s := m.spanOf(geom.R(huge/2, 100, huge, 200)); s.x0 != cps-1 || s.x1 != cps-1 {
		t.Fatalf("far-right rect clamped to columns [%d, %d], want [%d, %d]",
			s.x0, s.x1, cps-1, cps-1)
	}
}

// TestSpanOfMaxCPSRoundTrips pins the uint16 encoding at its limit:
// at cps == maxBoxCPS exactly, the outermost cell index 65535 must
// survive the round trip through cellSpan, and the constructors must
// accept the limit while rejecting one past it.
func TestSpanOfMaxCPSRoundTrips(t *testing.T) {
	bounds := geom.R(0, 0, 65536, 65536) // cell size exactly 1
	m := testMapper(maxBoxCPS, bounds)
	corner := geom.R(65535.5, 65535.5, 70000, 70000)
	s := m.spanOf(corner)
	want := uint16(maxBoxCPS - 1) // 65535
	if s.x0 != want || s.x1 != want || s.y0 != want || s.y1 != want {
		t.Fatalf("corner span = %+v, want all %d", s, want)
	}
	full := m.spanOf(bounds)
	if full.x0 != 0 || full.y0 != 0 || full.x1 != want || full.y1 != want {
		t.Fatalf("whole-space span = %+v, want [0, %d] on both axes", full, want)
	}

	if err := validateBoxGridParams(maxBoxCPS, bounds); err != nil {
		t.Fatalf("cps == maxBoxCPS rejected: %v", err)
	}
	if err := validateBoxGridParams(maxBoxCPS+1, bounds); err == nil {
		t.Fatal("cps == maxBoxCPS+1 accepted")
	}
}

// TestBoxGridSurvivesOutsideSpaceObjects drives the full index paths
// (build, query, update) with objects far outside the space, the
// end-to-end form of the clamp regression.
func TestBoxGridSurvivesOutsideSpaceObjects(t *testing.T) {
	bounds := geom.R(0, 0, 1000, 1000)
	const huge = 1e30
	rects := []geom.Rect{
		geom.R(100, 100, 200, 200),
		geom.R(-huge, 450, -huge/2, 550), // far left
		geom.R(huge/2, 450, huge, 550),   // far right
		geom.R(450, -huge, 550, -huge/2), // far below
		geom.R(450, huge/2, 550, huge),   // far above
		geom.R(-huge, -huge, huge, huge), // covers everything
		geom.R(900, 900, huge, huge),     // in-range min, overflowing max
		geom.R(-huge, -huge, 50, 50),     // overflowing min, in-range max
	}
	type boxUnderTest interface {
		boxQuerier
		Build([]geom.Rect)
		Update(id uint32, old, new geom.Rect)
		Len() int
	}
	for _, mk := range []func() boxUnderTest{
		func() boxUnderTest { return MustNewBoxGrid(16, bounds, len(rects)) },
		func() boxUnderTest { return MustNewBoxGrid2L(16, bounds, len(rects)) },
	} {
		bg := mk()
		bg.Build(rects)
		if bg.Len() != len(rects) {
			t.Fatalf("Len = %d, want %d", bg.Len(), len(rects))
		}
		queries := []geom.Rect{
			bounds,
			geom.R(400, 400, 600, 600),
			geom.R(-huge, -huge, huge, huge),
			geom.R(0, 0, 1, 1),
		}
		for _, q := range queries {
			got := collectQuery(t, bg, q)
			want := bruteBoxQuery(rects, q)
			if !equalIDs(got, want) {
				t.Fatalf("query %v: got %v, want %v", q, got, want)
			}
		}
		// Move an outside object back in and an inside one far out; the
		// clamped spans must stay consistent so removal finds every
		// replica. Queries read extents from the retained snapshot, so
		// hand the structures the moved one (as the driver's refresh
		// would).
		moved := append([]geom.Rect(nil), rects...)
		bg.Update(1, rects[1], geom.R(300, 300, 350, 350))
		moved[1] = geom.R(300, 300, 350, 350)
		bg.Update(0, rects[0], geom.R(huge/2, -huge, huge, -huge/2))
		moved[0] = geom.R(huge/2, -huge, huge, -huge/2)
		switch g := bg.(type) {
		case *BoxGrid:
			g.rects = moved
		case *BoxGrid2L:
			g.rects = moved
		}
		for _, q := range queries {
			got := collectQuery(t, bg, q)
			want := bruteBoxQuery(moved, q)
			if !equalIDs(got, want) {
				t.Fatalf("post-update query %v: got %v, want %v", q, got, want)
			}
		}
	}
}
