package grid

import (
	"math"

	"repro/internal/geom"
)

// LayoutCSRXY: the CSR layout with coordinates inlined next to the IDs.
//
// The paper's Section 3.1 mentions — and declines — storing each entry's
// coordinates beside its ID so that filtering a cell never dereferences
// the base table; LayoutInlineXY replays that refinement on the bucketed
// layout. This file replays it on the contiguous layout: the build
// scatters x,y into a float32 arena parallel to the ID arena (slot k owns
// xy[2k], xy[2k+1]), so a filtered cell is two sequential streams — IDs
// and coordinates — with zero random access. Updates keep the arena
// coherent (insertLocal/removeLocal move coordinate pairs alongside IDs,
// overflow entries carry their coordinates in overflowXY), and the
// sharded parallel build writes coordinates in the same disjoint ranges
// as the IDs, preserving the bit-identical-arena guarantee.
//
// The cost is the doubled arena (12 bytes per entry instead of 4) and
// the loss of the secondary-index property: coordinates are duplicated
// into the index, which is why the paper declines the refinement and why
// it stays an opt-in layout here.

// filterCellXY is filterCell against the inlined coordinate arena: the
// containment predicate reads xy[2k], xy[2k+1] instead of pts[id], so the
// base table is never touched.
func (st *csrStore) filterCellXY(c int, r geom.Rect, emit func(id uint32)) {
	base := st.starts[c]
	n := st.counts[c]
	ids := st.ids[base : base+n]
	xy := st.xy[2*base : 2*(base+n)]
	for j, id := range ids {
		x, y := xy[2*j], xy[2*j+1]
		if x >= r.MinX && x <= r.MaxX && y >= r.MinY && y <= r.MaxY {
			emit(id)
		}
	}
	oxy := st.overflowXY[c]
	for j, id := range st.overflow[c] {
		x, y := oxy[2*j], oxy[2*j+1]
		if x >= r.MinX && x <= r.MaxX && y >= r.MinY && y <= r.MaxY {
			emit(id)
		}
	}
}

// appendRowXY is csrStore.appendRow against the inlined coordinate
// arena: contained cells merge into contiguous whole-segment copies
// exactly as in the plain CSR row kernel (containment needs no
// coordinates at all), and boundary cells filter against the xy streams
// instead of the base table.
//
//joinlint:hotpath
//joinlint:bce
func (st *csrStore) appendRowXY(r geom.Rect, base, xmin, xmax int, containsY bool, xs []float32, buf []uint32) []uint32 {
	ids, starts, counts := st.ids, st.starts, st.counts
	var runLo, runHi uint32
	x0 := xs[xmin]
	for cx := xmin; cx <= xmax; cx++ {
		x1 := xs[cx+1]
		c := base + cx
		if containsY && r.MinX <= x0 && x1 <= r.MaxX {
			b := starts[c]
			if runHi != b {
				if runHi > runLo {
					buf = append(buf, ids[runLo:runHi]...)
				}
				runLo = b
			}
			runHi = b + counts[c]
			if of := st.overflow[c]; len(of) > 0 {
				buf = append(buf, of...)
			}
		} else if x0 <= r.MaxX && r.MinX <= x1 {
			b := starts[c]
			n := counts[c]
			seg := ids[b : b+n]
			xy := st.xy[2*b : 2*(b+n)]
			// Branchless compaction over the two sequential streams (see
			// csrStore.appendFilterCell for the sign trick): with the
			// coordinates inlined this loop never touches memory outside
			// the two arenas and never mispredicts.
			k := len(buf)
			buf = append(buf, seg...) // reserve; survivors overwrite in place
			for j, id := range seg {
				x, y := xy[2*j], xy[2*j+1]
				m := math.Float32bits(x-r.MinX) | math.Float32bits(r.MaxX-x) |
					math.Float32bits(y-r.MinY) | math.Float32bits(r.MaxY-y)
				buf[k] = id
				k += 1 - int(m>>31)
			}
			buf = buf[:k]
			oxy := st.overflowXY[c]
			for j, id := range st.overflow[c] {
				x, y := oxy[2*j], oxy[2*j+1]
				if x >= r.MinX && x <= r.MaxX && y >= r.MinY && y <= r.MaxY {
					buf = append(buf, id)
				}
			}
		}
		x0 = x1
	}
	if runHi > runLo {
		buf = append(buf, ids[runLo:runHi]...)
	}
	return buf
}
