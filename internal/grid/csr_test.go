package grid

// White-box tests of the CSR (contiguous counting-sort) backend: parallel
// build determinism, the slack/overflow update mechanics, the batched
// parallel update path, and the Counter/MemoryBytes invariants.

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

func csrOf(t testing.TB, g *Grid) *csrStore {
	t.Helper()
	cs, ok := g.st.(*csrStore)
	if !ok {
		t.Fatalf("store is %T, want *csrStore", g.st)
	}
	return cs
}

func TestCSRParallelBuildBitIdentical(t *testing.T) {
	r := xrand.New(21)
	pts := randomPoints(r, 20000, testBounds)
	seq := MustNew(CSR(), testBounds, len(pts))
	seq.Build(pts)
	for _, workers := range []int{2, 3, 7, 16} {
		par := MustNew(CSR(), testBounds, len(pts))
		par.BuildParallel(pts, workers)
		ss, ps := csrOf(t, seq), csrOf(t, par)
		if len(ss.ids) != len(ps.ids) {
			t.Fatalf("workers=%d: arena length %d != %d", workers, len(ps.ids), len(ss.ids))
		}
		for i := range ss.ids {
			if ss.ids[i] != ps.ids[i] {
				t.Fatalf("workers=%d: arena diverges at %d: %d != %d",
					workers, i, ps.ids[i], ss.ids[i])
			}
		}
		for c := range ss.starts {
			if ss.starts[c] != ps.starts[c] {
				t.Fatalf("workers=%d: starts diverge at cell %d", workers, c)
			}
		}
	}
}

func TestCSRSegmentsAreSortedByID(t *testing.T) {
	// The counting sort is stable over ascending input IDs, so every cell
	// segment must hold its IDs in ascending order — the property that
	// makes sequential and parallel builds bit-identical.
	r := xrand.New(22)
	pts := randomPoints(r, 5000, testBounds)
	g := MustNew(CSR(), testBounds, len(pts))
	g.Build(pts)
	cs := csrOf(t, g)
	for c := 0; c < g.cells; c++ {
		seg := cs.ids[cs.starts[c] : cs.starts[c]+cs.counts[c]]
		for j := 1; j < len(seg); j++ {
			if seg[j-1] >= seg[j] {
				t.Fatalf("cell %d segment not ascending at %d: %v", c, j, seg)
			}
		}
	}
}

func TestCSROverflowInsertAndRefill(t *testing.T) {
	// Build fixes segment capacities; an insert into a full cell must land
	// in overflow, stay visible to scans, and be drained back into the
	// segment by the next removal.
	cfg := Config{Layout: LayoutCSR, Scan: ScanRange, BS: 1, CPS: 2}
	g := MustNew(cfg, geom.R(0, 0, 100, 100), 4)
	pts := []geom.Point{geom.Pt(10, 10), geom.Pt(20, 20), geom.Pt(80, 80)}
	g.Build(pts) // cell 0 holds {0,1}, capacity 2; cell 3 holds {2}
	cs := csrOf(t, g)

	// Move entry 2 into cell 0: no slack there, must overflow.
	g.Update(2, geom.Pt(80, 80), geom.Pt(30, 30))
	if len(cs.overflow[0]) != 1 || cs.overflow[0][0] != 2 {
		t.Fatalf("overflow[0] = %v, want [2]", cs.overflow[0])
	}
	if got := g.CellCount(geom.Pt(10, 10)); got != 3 {
		t.Fatalf("cell count = %d, want 3", got)
	}
	seen := map[uint32]bool{}
	cs.scanCell(0, func(id uint32) { seen[id] = true })
	if len(seen) != 3 {
		t.Fatalf("scan saw %v", seen)
	}

	// Removing a segment entry must refill the hole from overflow.
	if !cs.removeAt(0, 1) {
		t.Fatal("remove(1) failed")
	}
	if len(cs.overflow[0]) != 0 {
		t.Fatalf("overflow not drained: %v", cs.overflow[0])
	}
	if cs.counts[0] != 2 {
		t.Fatalf("segment count = %d, want 2", cs.counts[0])
	}
	// And the next build clears any remaining overflow state.
	g.Build(pts)
	if len(cs.overflow[0]) != 0 || g.Len() != 3 {
		t.Fatal("build did not reset overflow")
	}
}

func TestCSRUpdateBatchMatchesSequential(t *testing.T) {
	r := xrand.New(23)
	pts := randomPoints(r, 8000, testBounds)
	moves := make([]geom.Move, 0, 4000)
	perm := r.Perm(len(pts))
	for _, id := range perm[:4000] {
		moves = append(moves, geom.Move{
			ID:  uint32(id),
			Old: pts[id],
			New: geom.Pt(r.Range(0, 1000), r.Range(0, 1000)),
		})
	}
	seq := MustNew(CSR(), testBounds, len(pts))
	seq.Build(pts)
	for _, m := range moves {
		seq.Update(m.ID, m.Old, m.New)
	}
	for _, workers := range []int{2, 4, 8} {
		par := MustNew(CSR(), testBounds, len(pts))
		par.Build(pts)
		par.UpdateBatch(moves, workers)
		if par.Len() != seq.Len() {
			t.Fatalf("workers=%d: Len %d != %d", workers, par.Len(), seq.Len())
		}
		// Membership per cell must agree exactly.
		ps, ss := csrOf(t, par), csrOf(t, seq)
		for c := 0; c < par.cells; c++ {
			got := map[uint32]bool{}
			ps.scanCell(c, func(id uint32) { got[id] = true })
			want := map[uint32]bool{}
			ss.scanCell(c, func(id uint32) { want[id] = true })
			if len(got) != len(want) {
				t.Fatalf("workers=%d cell %d: %d entries, want %d", workers, c, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("workers=%d cell %d: missing %d", workers, c, id)
				}
			}
		}
	}
}

func TestCSRUpdateBatchUnknownEntryPanics(t *testing.T) {
	pts := randomPoints(xrand.New(24), minParallelMoves*2, testBounds)
	g := MustNew(CSR(), testBounds, len(pts))
	g.Build(pts)
	moves := make([]geom.Move, minParallelMoves)
	for i := range moves {
		moves[i] = geom.Move{ID: uint32(i), Old: pts[i], New: pts[i]}
	}
	// Corrupt one move's old position so the removal misses.
	moves[7].ID = uint32(len(pts) + 5)
	defer func() {
		if recover() == nil {
			t.Fatal("UpdateBatch with unknown entry did not panic")
		}
	}()
	g.UpdateBatch(moves, 4)
}

func TestCSRCounterAndMemoryInvariants(t *testing.T) {
	// The ISSUE's invariant pair: Len() tracks every insert/remove, and
	// MemoryBytes() equals the documented formula — directory
	// (starts+counts) + ID arena + retained scratch + overflow capacity —
	// and never shrinks below 4 bytes per live entry.
	r := xrand.New(25)
	pts := randomPoints(r, 3000, testBounds)
	g := MustNew(CSR(), testBounds, len(pts))
	g.Build(pts)
	cs := csrOf(t, g)

	formula := func() int64 {
		total := int64(len(cs.starts)+len(cs.counts)+cap(cs.ids)+cap(cs.cellOf)) * 4
		total += int64(len(cs.overflow)) * 24 // per-cell overflow slice headers
		for _, of := range cs.overflow {
			total += int64(cap(of)) * 4
		}
		for _, sc := range cs.shardCounts {
			total += int64(cap(sc)) * 4
		}
		return total
	}

	check := func(stage string, wantLen int) {
		t.Helper()
		if g.Len() != wantLen {
			t.Fatalf("%s: Len = %d, want %d", stage, g.Len(), wantLen)
		}
		got := g.MemoryBytes()
		if got != formula() {
			t.Fatalf("%s: MemoryBytes = %d, formula = %d", stage, got, formula())
		}
		if got < int64(4*g.Len()) {
			t.Fatalf("%s: MemoryBytes %d below 4 bytes/entry floor", stage, got)
		}
	}

	check("after build", len(pts))
	for i := 0; i < 500; i++ {
		id := uint32(r.Intn(len(pts)))
		to := geom.Pt(r.Range(0, 1000), r.Range(0, 1000))
		g.Update(id, pts[id], to)
		pts[id] = to
	}
	check("after updates", len(pts))
	g.BuildParallel(pts, 4)
	check("after parallel rebuild", len(pts))

	// Cell counts must sum to Len in both representations.
	total := 0
	for c := 0; c < g.cells; c++ {
		total += cs.cellCount(c)
	}
	if total != g.Len() {
		t.Fatalf("cell counts sum to %d, Len = %d", total, g.Len())
	}
}
