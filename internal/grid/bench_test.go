package grid

import (
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// Micro-benchmarks for the grid's three operations across layouts.
// bench_test.go at the repository root measures whole ticks; these
// isolate the per-operation costs that Section 3 reasons about.

func benchPoints(n int) []geom.Point {
	r := xrand.New(1)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(r.Range(0, 1000), r.Range(0, 1000))
	}
	return pts
}

func benchLayouts() []Config {
	return []Config{
		{Name: "linked", Layout: LayoutLinked, Scan: ScanRange, BS: 4, CPS: 13},
		{Name: "inline", Layout: LayoutInline, Scan: ScanRange, BS: 20, CPS: 64},
		{Name: "inline-xy", Layout: LayoutInlineXY, Scan: ScanRange, BS: 20, CPS: 64},
		{Name: "intrusive", Layout: LayoutIntrusive, Scan: ScanRange, BS: 1, CPS: 64},
		{Name: "csr", Layout: LayoutCSR, Scan: ScanRange, BS: 1, CPS: 64},
	}
}

// csrContenders pits the paper's winning inline configuration against the
// CSR layout at the paper tuning (bs=20, cps=64) and at a much finer grid
// (cps=256) where cells hold only a couple of entries each — the regime
// where chained buckets waste most of each cache line and contiguity
// matters most.
func csrContenders() []Config {
	return []Config{
		{Name: "inline/cps=64", Layout: LayoutInline, Scan: ScanRange, BS: RefactoredBS, CPS: 64},
		{Name: "csr/cps=64", Layout: LayoutCSR, Scan: ScanRange, BS: 1, CPS: 64},
		{Name: "inline/cps=256", Layout: LayoutInline, Scan: ScanRange, BS: RefactoredBS, CPS: 256},
		{Name: "csr/cps=256", Layout: LayoutCSR, Scan: ScanRange, BS: 1, CPS: 256},
	}
}

func BenchmarkCSRBuild(b *testing.B) {
	pts := benchPoints(50000)
	for _, cfg := range csrContenders() {
		b.Run(cfg.Name, func(b *testing.B) {
			g := MustNew(cfg, testBounds, len(pts))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Build(pts)
			}
		})
	}
}

func BenchmarkCSRBuildParallel(b *testing.B) {
	pts := benchPoints(50000)
	cfg := Config{Name: "csr", Layout: LayoutCSR, Scan: ScanRange, BS: 1, CPS: 64}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			g := MustNew(cfg, testBounds, len(pts))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.BuildParallel(pts, workers)
			}
		})
	}
}

func BenchmarkCSRQuery(b *testing.B) {
	pts := benchPoints(50000)
	r := xrand.New(2)
	queries := make([]geom.Rect, 256)
	for i := range queries {
		queries[i] = geom.Square(geom.Pt(r.Range(0, 1000), r.Range(0, 1000)), 18)
	}
	for _, cfg := range csrContenders() {
		b.Run(cfg.Name, func(b *testing.B) {
			g := MustNew(cfg, testBounds, len(pts))
			g.Build(pts)
			n := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Query(queries[i%len(queries)], func(uint32) { n++ })
			}
			if n == 0 {
				b.Fatal("no results")
			}
		})
	}
}

func BenchmarkCSRUpdate(b *testing.B) {
	pts := benchPoints(50000)
	r := xrand.New(3)
	// Rebuild every half-population of updates, mirroring the framework's
	// one-tick update load between builds (the CSR slack/overflow design
	// assumes that regime; unbounded churn without rebuilds would grow
	// overflow beyond anything the driver produces).
	const updatesPerBuild = 25000
	for _, cfg := range csrContenders() {
		b.Run(cfg.Name, func(b *testing.B) {
			// Each config gets its own copy so earlier sub-benchmarks'
			// moves cannot drift the data later configs measure on.
			local := append([]geom.Point(nil), pts...)
			g := MustNew(cfg, testBounds, len(local))
			g.Build(local)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%updatesPerBuild == 0 {
					b.StopTimer()
					g.Build(local)
					b.StartTimer()
				}
				id := uint32(r.Intn(len(local)))
				to := geom.Pt(r.Range(0, 1000), r.Range(0, 1000))
				g.Update(id, local[id], to)
				local[id] = to
			}
		})
	}
}

func BenchmarkGridBuild(b *testing.B) {
	pts := benchPoints(50000)
	for _, cfg := range benchLayouts() {
		b.Run(cfg.Name, func(b *testing.B) {
			g := MustNew(cfg, testBounds, len(pts))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Build(pts)
			}
		})
	}
}

func BenchmarkGridQuery(b *testing.B) {
	pts := benchPoints(50000)
	r := xrand.New(2)
	queries := make([]geom.Rect, 256)
	for i := range queries {
		queries[i] = geom.Square(geom.Pt(r.Range(0, 1000), r.Range(0, 1000)), 18)
	}
	for _, cfg := range benchLayouts() {
		b.Run(cfg.Name, func(b *testing.B) {
			g := MustNew(cfg, testBounds, len(pts))
			g.Build(pts)
			n := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Query(queries[i%len(queries)], func(uint32) { n++ })
			}
			if n == 0 {
				b.Fatal("no results")
			}
		})
	}
}

func BenchmarkGridUpdate(b *testing.B) {
	pts := benchPoints(50000)
	r := xrand.New(3)
	for _, cfg := range benchLayouts() {
		b.Run(cfg.Name, func(b *testing.B) {
			g := MustNew(cfg, testBounds, len(pts))
			g.Build(pts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := uint32(r.Intn(len(pts)))
				to := geom.Pt(r.Range(0, 1000), r.Range(0, 1000))
				g.Update(id, pts[id], to)
				pts[id] = to
			}
		})
	}
}

func BenchmarkGridScanAlgorithms(b *testing.B) {
	// Algorithm 1 vs Algorithm 2 on the identical structure (Section
	// 3.2's isolated comparison).
	pts := benchPoints(50000)
	q := geom.Square(geom.Pt(500, 500), 18)
	for _, scan := range []Scan{ScanFull, ScanRange} {
		b.Run(fmt.Sprintf("%v", scan), func(b *testing.B) {
			g := MustNew(Config{Layout: LayoutInline, Scan: scan, BS: 4, CPS: 13}, testBounds, len(pts))
			g.Build(pts)
			n := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Query(q, func(uint32) { n++ })
			}
		})
	}
}
