package grid

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// Micro-benchmarks for the grid's three operations across layouts.
// bench_test.go at the repository root measures whole ticks; these
// isolate the per-operation costs that Section 3 reasons about.

func benchPoints(n int) []geom.Point {
	r := xrand.New(1)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(r.Range(0, 1000), r.Range(0, 1000))
	}
	return pts
}

func benchLayouts() []Config {
	return []Config{
		{Name: "linked", Layout: LayoutLinked, Scan: ScanRange, BS: 4, CPS: 13},
		{Name: "inline", Layout: LayoutInline, Scan: ScanRange, BS: 20, CPS: 64},
		{Name: "inline-xy", Layout: LayoutInlineXY, Scan: ScanRange, BS: 20, CPS: 64},
		{Name: "intrusive", Layout: LayoutIntrusive, Scan: ScanRange, BS: 1, CPS: 64},
		{Name: "csr", Layout: LayoutCSR, Scan: ScanRange, BS: 1, CPS: 64},
	}
}

// csrContenders pits the paper's winning inline configuration against the
// CSR layout at the paper tuning (bs=20, cps=64) and at a much finer grid
// (cps=256) where cells hold only a couple of entries each — the regime
// where chained buckets waste most of each cache line and contiguity
// matters most.
func csrContenders() []Config {
	return []Config{
		{Name: "inline/cps=64", Layout: LayoutInline, Scan: ScanRange, BS: RefactoredBS, CPS: 64},
		{Name: "csr/cps=64", Layout: LayoutCSR, Scan: ScanRange, BS: 1, CPS: 64},
		{Name: "csrxy/cps=64", Layout: LayoutCSRXY, Scan: ScanRange, BS: 1, CPS: 64},
		{Name: "inline/cps=256", Layout: LayoutInline, Scan: ScanRange, BS: RefactoredBS, CPS: 256},
		{Name: "csr/cps=256", Layout: LayoutCSR, Scan: ScanRange, BS: 1, CPS: 256},
		{Name: "csrxy/cps=256", Layout: LayoutCSRXY, Scan: ScanRange, BS: 1, CPS: 256},
	}
}

func BenchmarkCSRBuild(b *testing.B) {
	pts := benchPoints(50000)
	for _, cfg := range csrContenders() {
		b.Run(cfg.Name, func(b *testing.B) {
			g := MustNew(cfg, testBounds, len(pts))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Build(pts)
			}
		})
	}
}

func BenchmarkCSRBuildParallel(b *testing.B) {
	pts := benchPoints(50000)
	cfg := Config{Name: "csr", Layout: LayoutCSR, Scan: ScanRange, BS: 1, CPS: 64}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			g := MustNew(cfg, testBounds, len(pts))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.BuildParallel(pts, workers)
			}
		})
	}
}

func BenchmarkCSRQuery(b *testing.B) {
	pts := benchPoints(50000)
	r := xrand.New(2)
	queries := make([]geom.Rect, 256)
	for i := range queries {
		queries[i] = geom.Square(geom.Pt(r.Range(0, 1000), r.Range(0, 1000)), 18)
	}
	for _, cfg := range csrContenders() {
		b.Run(cfg.Name, func(b *testing.B) {
			g := MustNew(cfg, testBounds, len(pts))
			g.Build(pts)
			n := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Query(queries[i%len(queries)], func(uint32) { n++ })
			}
			if n == 0 {
				b.Fatal("no results")
			}
		})
	}
}

func BenchmarkCSRUpdate(b *testing.B) {
	pts := benchPoints(50000)
	r := xrand.New(3)
	// Rebuild every half-population of updates, mirroring the framework's
	// one-tick update load between builds (the CSR slack/overflow design
	// assumes that regime; unbounded churn without rebuilds would grow
	// overflow beyond anything the driver produces).
	const updatesPerBuild = 25000
	for _, cfg := range csrContenders() {
		b.Run(cfg.Name, func(b *testing.B) {
			// Each config gets its own copy so earlier sub-benchmarks'
			// moves cannot drift the data later configs measure on.
			local := append([]geom.Point(nil), pts...)
			g := MustNew(cfg, testBounds, len(local))
			g.Build(local)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%updatesPerBuild == 0 {
					b.StopTimer()
					g.Build(local)
					b.StartTimer()
				}
				id := uint32(r.Intn(len(local)))
				to := geom.Pt(r.Range(0, 1000), r.Range(0, 1000))
				g.Update(id, local[id], to)
				local[id] = to
			}
		})
	}
}

func BenchmarkGridBuild(b *testing.B) {
	pts := benchPoints(50000)
	for _, cfg := range benchLayouts() {
		b.Run(cfg.Name, func(b *testing.B) {
			g := MustNew(cfg, testBounds, len(pts))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Build(pts)
			}
		})
	}
}

func BenchmarkGridQuery(b *testing.B) {
	pts := benchPoints(50000)
	r := xrand.New(2)
	queries := make([]geom.Rect, 256)
	for i := range queries {
		queries[i] = geom.Square(geom.Pt(r.Range(0, 1000), r.Range(0, 1000)), 18)
	}
	for _, cfg := range benchLayouts() {
		b.Run(cfg.Name, func(b *testing.B) {
			g := MustNew(cfg, testBounds, len(pts))
			g.Build(pts)
			n := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Query(queries[i%len(queries)], func(uint32) { n++ })
			}
			if n == 0 {
				b.Fatal("no results")
			}
		})
	}
}

func BenchmarkGridUpdate(b *testing.B) {
	pts := benchPoints(50000)
	r := xrand.New(3)
	for _, cfg := range benchLayouts() {
		b.Run(cfg.Name, func(b *testing.B) {
			g := MustNew(cfg, testBounds, len(pts))
			g.Build(pts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := uint32(r.Intn(len(pts)))
				to := geom.Pt(r.Range(0, 1000), r.Range(0, 1000))
				g.Update(id, pts[id], to)
				pts[id] = to
			}
		})
	}
}

// benchBoxes mirrors the default box workload's shape scaled to the
// bench space: extents around 1/150 of the space side, the regime where
// each MBR replicates into ~2 cells at cps=64 and ~7 at cps=256.
func benchBoxes(n int) []geom.Rect {
	r := xrand.New(9)
	return randomBoxes(r, n, testBounds, 2, 12)
}

// boxIndexUnderBench is the slice of the box-grid API the benchmarks
// drive, shared by BoxGrid and BoxGrid2L.
type boxIndexUnderBench interface {
	Build([]geom.Rect)
	Query(geom.Rect, func(uint32))
	Update(uint32, geom.Rect, geom.Rect)
}

// BenchmarkBoxQuery pits the PR 2 reference-point grid against the
// two-layer classed grid — the per-candidate dedup test and base-table
// dereference vs class sub-spans over the inlined arena.
func BenchmarkBoxQuery(b *testing.B) {
	rects := benchBoxes(50000)
	r := xrand.New(4)
	queries := make([]geom.Rect, 256)
	for i := range queries {
		queries[i] = geom.Square(geom.Pt(r.Range(0, 1000), r.Range(0, 1000)), 18)
	}
	for _, cps := range []int{64, 256} {
		for _, bi := range []struct {
			name string
			make func(cps int) boxIndexUnderBench
		}{
			{"boxcsr", func(cps int) boxIndexUnderBench { return MustNewBoxGrid(cps, testBounds, len(rects)) }},
			{"boxcsr2l", func(cps int) boxIndexUnderBench { return MustNewBoxGrid2L(cps, testBounds, len(rects)) }},
		} {
			b.Run(fmt.Sprintf("%s/cps=%d", bi.name, cps), func(b *testing.B) {
				bg := bi.make(cps)
				bg.Build(rects)
				n := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bg.Query(queries[i%len(queries)], func(uint32) { n++ })
				}
				if n == 0 {
					b.Fatal("no results")
				}
			})
		}
	}
}

// BenchmarkBoxBuild measures the class-refined counting sort against the
// plain one (the acceptance bound: classed build within 1.2x).
func BenchmarkBoxBuild(b *testing.B) {
	rects := benchBoxes(50000)
	for _, cps := range []int{64, 256} {
		b.Run(fmt.Sprintf("boxcsr/cps=%d", cps), func(b *testing.B) {
			bg := MustNewBoxGrid(cps, testBounds, len(rects))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bg.Build(rects)
			}
		})
		b.Run(fmt.Sprintf("boxcsr2l/cps=%d", cps), func(b *testing.B) {
			bg := MustNewBoxGrid2L(cps, testBounds, len(rects))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bg.Build(rects)
			}
		})
	}
}

// querySwitched is the un-hoisted reference the class-dispatch
// micro-bench compares against: one loop over each cell's whole segment
// with a per-candidate class switch, instead of four tight sub-loops
// over the class sub-spans. Results are identical; only the dispatch
// placement differs.
func (bg *BoxGrid2L) querySwitched(r geom.Rect, emit func(id uint32)) {
	q := bg.mapper.spanOf(r)
	cps := bg.cps
	qx0, qx1 := int(q.x0), int(q.x1)
	qy0, qy1 := int(q.y0), int(q.y1)
	for cy := qy0; cy <= qy1; cy++ {
		firstRow, lastRow := cy == qy0, cy == qy1
		loY, hiY := float32(-boxInf), float32(boxInf)
		if firstRow {
			loY = r.MinY
		}
		if lastRow {
			hiY = r.MaxY
		}
		base := cy * cps
		for cx := qx0; cx <= qx1; cx++ {
			c := base + cx
			firstCol, lastCol := cx == qx0, cx == qx1
			loX, hiX := float32(-boxInf), float32(boxInf)
			if firstCol {
				loX = r.MinX
			}
			if lastCol {
				hiX = r.MaxX
			}
			for k := bg.starts[c]; k < bg.ends[bg.endIdx(c, 3)]; k++ {
				var class int
				switch {
				case k < bg.ends[bg.endIdx(c, 0)]:
					class = 0
				case k < bg.ends[bg.endIdx(c, 1)]:
					class = 1
				case k < bg.ends[bg.endIdx(c, 2)]:
					class = 2
				default:
					class = 3
				}
				rc := bg.rcts[k]
				switch class {
				case 0:
					if rc.MaxX >= loX && rc.MinX <= hiX && rc.MaxY >= loY && rc.MinY <= hiY {
						emit(bg.ids[k])
					}
				case 1:
					if firstCol && rc.MaxX >= r.MinX && rc.MaxY >= loY && rc.MinY <= hiY {
						emit(bg.ids[k])
					}
				case 2:
					if firstRow && rc.MaxY >= r.MinY && rc.MaxX >= loX && rc.MinX <= hiX {
						emit(bg.ids[k])
					}
				default:
					if firstCol && firstRow && rc.MaxX >= r.MinX && rc.MaxY >= r.MinY {
						emit(bg.ids[k])
					}
				}
			}
			if of := bg.overflow[c]; len(of) != 0 {
				ofr := bg.overflowR[c]
				for j, id := range of {
					if refCell(bg.spans[id], uint16(cx), uint16(cy), q.x0, q.y0) && ofr[j].Intersects(r) {
						emit(id)
					}
				}
			}
		}
	}
}

// BenchmarkBoxClassDispatch isolates the satellite claim: hoisting the
// class dispatch out of the inner loop (four tight sub-loops) vs a
// per-candidate switch over the identical structure.
func BenchmarkBoxClassDispatch(b *testing.B) {
	rects := benchBoxes(50000)
	r := xrand.New(4)
	queries := make([]geom.Rect, 256)
	for i := range queries {
		queries[i] = geom.Square(geom.Pt(r.Range(0, 1000), r.Range(0, 1000)), 18)
	}
	bg := MustNewBoxGrid2L(256, testBounds, len(rects))
	bg.Build(rects)

	// The two emission strategies must agree before being timed.
	for _, q := range queries[:16] {
		var hoisted, switched []uint32
		bg.Query(q, func(id uint32) { hoisted = append(hoisted, id) })
		bg.querySwitched(q, func(id uint32) { switched = append(switched, id) })
		sort.Slice(hoisted, func(i, j int) bool { return hoisted[i] < hoisted[j] })
		sort.Slice(switched, func(i, j int) bool { return switched[i] < switched[j] })
		if !equalIDs(hoisted, switched) {
			b.Fatalf("switched dispatch disagrees on %v", q)
		}
	}

	b.Run("subloops", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			bg.Query(queries[i%len(queries)], func(uint32) { n++ })
		}
	})
	b.Run("switched", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			bg.querySwitched(queries[i%len(queries)], func(uint32) { n++ })
		}
	})
}

func BenchmarkGridScanAlgorithms(b *testing.B) {
	// Algorithm 1 vs Algorithm 2 on the identical structure (Section
	// 3.2's isolated comparison).
	pts := benchPoints(50000)
	q := geom.Square(geom.Pt(500, 500), 18)
	for _, scan := range []Scan{ScanFull, ScanRange} {
		b.Run(fmt.Sprintf("%v", scan), func(b *testing.B) {
			g := MustNew(Config{Layout: LayoutInline, Scan: scan, BS: 4, CPS: 13}, testBounds, len(pts))
			g.Build(pts)
			n := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Query(q, func(uint32) { n++ })
			}
		})
	}
}
