package grid

import "repro/internal/obs"

// Instrumentation of the grid families: one "grid.queries" counter
// incremented at the query kernel boundary (the Query/QueryAppend
// entry), never inside the BCE'd scan loops — the counter must not
// perturb the bounds-check baseline the joinlint gate pins. A nil
// counter (no registry attached) is a nil-check no-op per the
// internal/obs hot-path contract.

// Instrument implements obs.Instrumentable for the point grid.
func (g *Grid) Instrument(r *obs.Registry) {
	g.queries = r.Counter("grid.queries")
}

// Instrument implements obs.Instrumentable for the CSR box grid.
func (bg *BoxGrid) Instrument(r *obs.Registry) {
	bg.queries = r.Counter("grid.queries")
}

// Instrument implements obs.Instrumentable for the two-layer classed
// box grid.
func (bg *BoxGrid2L) Instrument(r *obs.Registry) {
	bg.queries = r.Counter("grid.queries")
}
