package grid

import "repro/internal/parutil"

// spanPairs is the sharded span-expansion pass shared by the batched
// update paths of the box grids: a batch of cell spans (one per move) is
// expanded into (cell, move) pairs counting-sorted by owning shard
// (cell % workers), and each shard's contiguous pair run is applied on
// its own goroutine. Within a shard, pairs keep batch order (and span
// order within a move), so per-cell processing is deterministic, and no
// cell is ever touched by two workers. The scratch slices are retained
// across calls, so steady-state batches allocate nothing.
type spanPairs struct {
	cell, move, off []uint32
}

// run expands spans into pairs and invokes apply(cell, moveIndex) for
// each, sharded by cell ownership across workers.
func (sp *spanPairs) run(spans []cellSpan, cps, workers int, apply func(c int, move uint32)) {
	if cap(sp.off) < workers+1 {
		sp.off = make([]uint32, workers+1)
	} else {
		sp.off = sp.off[:workers+1]
	}
	off := sp.off
	for w := range off {
		off[w] = 0
	}
	for i := range spans {
		s := spans[i]
		for cy := int(s.y0); cy <= int(s.y1); cy++ {
			base := cy * cps
			for cx := int(s.x0); cx <= int(s.x1); cx++ {
				off[(base+cx)%workers+1]++
			}
		}
	}
	for w := 0; w < workers; w++ {
		off[w+1] += off[w]
	}
	total := int(off[workers])
	if cap(sp.cell) < total {
		sp.cell = make([]uint32, total)
		sp.move = make([]uint32, total)
	} else {
		sp.cell = sp.cell[:total]
		sp.move = sp.move[:total]
	}
	for i := range spans {
		s := spans[i]
		for cy := int(s.y0); cy <= int(s.y1); cy++ {
			base := cy * cps
			for cx := int(s.x0); cx <= int(s.x1); cx++ {
				c := base + cx
				sh := c % workers
				k := off[sh]
				sp.cell[k] = uint32(c)
				sp.move[k] = uint32(i)
				off[sh] = k + 1
			}
		}
	}
	// off[w] now holds end(w) == start(w+1); shift right to restore
	// exclusive starts (the bucketByShard trick).
	copy(off[1:], off[:workers])
	off[0] = 0

	var g parutil.Group
	for w := 0; w < workers; w++ {
		lo, hi := off[w], off[w+1]
		if lo == hi {
			continue
		}
		g.Go(func() {
			for k := lo; k < hi; k++ {
				apply(int(sp.cell[k]), sp.move[k])
			}
		})
	}
	g.Wait()
}
