package grid

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/xrand"
)

// FuzzQueryAppendBufferReuse drives the buffered kernels with hostile
// buffer states: non-empty prefixes that must be preserved, buffers
// reused (aliased) across queries and layouts, and QueryBatch scratch
// recycled between calls. The properties checked:
//
//  1. QueryAppend only appends — buf[:len(buf)] is untouched.
//  2. The appended set matches Query's emissions (order-insensitive
//     digest), regardless of the incoming buffer's length or capacity.
//  3. A buffer that has already been through other queries (aliasing
//     the same backing array) never contaminates later results.
func FuzzQueryAppendBufferReuse(f *testing.F) {
	f.Add(uint64(1), uint16(300), float32(0.3), float32(0.4), float32(0.2), uint8(0))
	f.Add(uint64(7), uint16(1000), float32(0.0), float32(0.9), float32(0.8), uint8(4))
	f.Add(uint64(42), uint16(50), float32(0.5), float32(0.5), float32(0.05), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, qx, qy, qs float32, layoutPick uint8) {
		if n == 0 {
			n = 1
		}
		layouts := []Layout{LayoutLinked, LayoutInline, LayoutInlineXY, LayoutIntrusive, LayoutCSR, LayoutCSRXY}
		lay := layouts[int(layoutPick)%len(layouts)]
		const space = 1000
		bounds := geom.Rect{MaxX: space, MaxY: space}
		rng := xrand.New(seed)
		pts := make([]geom.Point, int(n))
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float32() * space, Y: rng.Float32() * space}
		}
		g := MustNew(Config{Layout: lay, Scan: ScanRange, BS: 8, CPS: 16}, bounds, len(pts))
		g.Build(pts)

		clampQ := func(v float32) float32 {
			if v < 0 {
				v = -v
			}
			for v > 1 {
				v /= 2
			}
			return v
		}
		r := geom.Square(geom.Point{X: clampQ(qx) * space, Y: clampQ(qy) * space}, clampQ(qs)*space)

		var want uint64
		wantN := 0
		g.Query(r, func(id uint32) { want = core.MixPair(want, 0, id); wantN++ })

		// A dirty prefix the kernel must preserve verbatim.
		prefix := []uint32{0xdeadbeef, 0xcafebabe, 7}
		buf := make([]uint32, len(prefix), len(prefix)+wantN/2+1)
		copy(buf, prefix)
		buf = g.QueryAppend(r, buf)
		for i, v := range prefix {
			if buf[i] != v {
				t.Fatalf("%s: QueryAppend clobbered buf[%d]: %x, want %x", g.Name(), i, buf[i], v)
			}
		}
		var got uint64
		for _, id := range buf[len(prefix):] {
			got = core.MixPair(got, 0, id)
		}
		if got != want || len(buf)-len(prefix) != wantN {
			t.Fatalf("%s: QueryAppend digest %x (%d ids), Query digest %x (%d ids)",
				g.Name(), got, len(buf)-len(prefix), want, wantN)
		}

		// Reuse the same backing array across a second, different query —
		// stale survivors from the first pass must not leak through.
		r2 := geom.Square(geom.Point{X: clampQ(qy) * space, Y: clampQ(qx) * space}, clampQ(qs)*space/2)
		var want2 uint64
		wantN2 := 0
		g.Query(r2, func(id uint32) { want2 = core.MixPair(want2, 0, id); wantN2++ })
		buf = g.QueryAppend(r2, buf[:0])
		var got2 uint64
		for _, id := range buf {
			got2 = core.MixPair(got2, 0, id)
		}
		if got2 != want2 || len(buf) != wantN2 {
			t.Fatalf("%s: reused-buffer QueryAppend digest %x (%d ids), Query digest %x (%d ids)",
				g.Name(), got2, len(buf), want2, wantN2)
		}

		// QueryBatch over both rects with recycled scratch must agree with
		// the per-query kernels.
		offsets, flat := g.QueryBatch([]geom.Rect{r, r2}, nil, buf[:0])
		var b1, b2 uint64
		for _, id := range flat[offsets[0]:offsets[1]] {
			b1 = core.MixPair(b1, 0, id)
		}
		for _, id := range flat[offsets[1]:offsets[2]] {
			b2 = core.MixPair(b2, 0, id)
		}
		if b1 != want || b2 != want2 {
			t.Fatalf("%s: QueryBatch digests %x/%x, want %x/%x", g.Name(), b1, b2, want, want2)
		}
	})
}
