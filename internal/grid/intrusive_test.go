package grid

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/testutil"
	"repro/internal/xrand"
)

func intrusiveCfg() Config {
	return Config{Name: "intrusive", Layout: LayoutIntrusive, Scan: ScanRange, BS: 1, CPS: 32}
}

func TestIntrusiveMatchesBruteForce(t *testing.T) {
	r := xrand.New(41)
	pts := randomPoints(r, 3000, testBounds)
	g := MustNew(intrusiveCfg(), testBounds, len(pts))
	g.Build(pts)
	if g.Len() != len(pts) {
		t.Fatalf("Len = %d", g.Len())
	}
	for i := 0; i < 60; i++ {
		q := geom.Square(geom.Pt(r.Range(-50, 1050), r.Range(-50, 1050)), r.Range(1, 300))
		sameSet(t, collect(g, q), bruteQuery(pts, q), "query "+itoa(i))
	}
}

func TestIntrusiveAdversarialPatterns(t *testing.T) {
	g := MustNew(intrusiveCfg(), testBounds, 1200)
	if f := testutil.CheckAgainstOracle(g, 23, 1200, testBounds); f != nil {
		t.Fatal(f)
	}
}

func TestIntrusiveUpdates(t *testing.T) {
	r := xrand.New(43)
	pts := randomPoints(r, 500, testBounds)
	g := MustNew(intrusiveCfg(), testBounds, len(pts))
	g.Build(pts)
	for i := 0; i < 2000; i++ {
		id := uint32(r.Intn(len(pts)))
		to := geom.Pt(r.Range(0, 1000), r.Range(0, 1000))
		g.Update(id, pts[id], to)
		pts[id] = to
	}
	if g.Len() != len(pts) {
		t.Fatalf("Len after churn = %d", g.Len())
	}
	// Structure must still answer correctly after heavy churn (pts was
	// mutated in place, so the retained snapshot already reflects moves).
	q := geom.Square(geom.Pt(500, 500), 600)
	sameSet(t, collect(g, q), bruteQuery(pts, q), "post-churn query")
}

func TestIntrusiveRemoveUnknownFails(t *testing.T) {
	g := MustNew(intrusiveCfg(), testBounds, 2)
	g.Build([]geom.Point{geom.Pt(1, 1), geom.Pt(2, 2)})
	st := g.st.(*intrusiveStore)
	if st.removeAt(0, 99) {
		t.Fatal("removal of unknown id succeeded")
	}
	if st.removeAt(0, 0) != true {
		t.Fatal("removal of known id failed")
	}
	if st.removeAt(0, 0) {
		t.Fatal("double removal succeeded")
	}
	if st.totalEntries() != 1 {
		t.Fatalf("entries = %d", st.totalEntries())
	}
}

func TestIntrusiveListInvariants(t *testing.T) {
	r := xrand.New(47)
	pts := randomPoints(r, 800, testBounds)
	g := MustNew(intrusiveCfg(), testBounds, len(pts))
	g.Build(pts)
	st := g.st.(*intrusiveStore)
	// Every cell list must be consistent: prev/next symmetric, cell
	// fields matching, total count matching.
	total := 0
	for c := range st.cells {
		prev := nilID
		for id := st.cells[c]; id != nilID; id = st.nodes[id].next {
			n := st.nodes[id]
			if n.prev != prev {
				t.Fatalf("cell %d: node %d prev=%d want %d", c, id, n.prev, prev)
			}
			if n.cell != int32(c) {
				t.Fatalf("cell %d: node %d claims cell %d", c, id, n.cell)
			}
			prev = int32(id)
			total++
		}
	}
	if total != len(pts) {
		t.Fatalf("linked total %d != %d", total, len(pts))
	}
}

func TestIntrusiveMemoryBytes(t *testing.T) {
	g := MustNew(intrusiveCfg(), testBounds, 1000)
	g.Build(make([]geom.Point, 1000))
	want := int64(32*32*4 + 1000*12)
	if got := g.MemoryBytes(); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
}
