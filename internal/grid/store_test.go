package grid

// White-box tests of the two storage backends: arena reuse, freelists,
// bucket chain shapes, and the memory accounting the paper's Section 3.1
// analysis rests on.

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

func TestInlineStoreBucketChains(t *testing.T) {
	st := newInlineStore(1, 3, 0, false) // one cell, bs=3
	pts := make([]geom.Point, 10)
	st.reset(pts)
	for i := uint32(0); i < 10; i++ {
		st.insertAt(0, i, geom.Pt(0, 0))
	}
	if st.cellCount(0) != 10 {
		t.Fatalf("cell count = %d", st.cellCount(0))
	}
	// 10 entries at bs=3: buckets hold 1,3,3,3 from head to tail (head
	// partially filled, the rest exactly full).
	counts := []uint32{}
	for b := st.cells[0]; b != nilOff; b = st.arena[b] {
		counts = append(counts, st.arena[b+1])
	}
	if len(counts) != 4 {
		t.Fatalf("expected 4 buckets, got %d", len(counts))
	}
	if counts[0] != 1 {
		t.Fatalf("head bucket has %d entries, want 1", counts[0])
	}
	for i := 1; i < 4; i++ {
		if counts[i] != 3 {
			t.Fatalf("bucket %d has %d entries, want full (3)", i, counts[i])
		}
	}
}

func TestInlineStoreRemoveKeepsTailFull(t *testing.T) {
	st := newInlineStore(1, 4, 0, false)
	st.reset(make([]geom.Point, 9))
	for i := uint32(0); i < 9; i++ {
		st.insertAt(0, i, geom.Pt(0, 0))
	}
	// Remove an entry from a tail bucket: the hole must be filled from
	// the head bucket, and non-head buckets must stay exactly full.
	if !st.removeAt(0, 2) {
		t.Fatal("entry 2 not found")
	}
	seen := map[uint32]bool{}
	bucketIdx := 0
	for b := st.cells[0]; b != nilOff; b = st.arena[b] {
		n := st.arena[b+1]
		if bucketIdx > 0 && n != 4 {
			t.Fatalf("tail bucket %d underfull: %d", bucketIdx, n)
		}
		for j := uint32(0); j < n; j++ {
			id := st.arena[b+2+j]
			if seen[id] {
				t.Fatalf("duplicate id %d after remove", id)
			}
			seen[id] = true
		}
		bucketIdx++
	}
	if len(seen) != 8 || seen[2] {
		t.Fatalf("wrong survivor set: %v", seen)
	}
}

func TestInlineStoreFreelistReuse(t *testing.T) {
	st := newInlineStore(2, 2, 0, false)
	st.reset(make([]geom.Point, 8))
	for i := uint32(0); i < 4; i++ {
		st.insertAt(0, i, geom.Pt(0, 0))
	}
	allocatedBefore := st.next
	// Empty cell 0 entirely: its two buckets go to the freelist.
	for i := uint32(0); i < 4; i++ {
		if !st.removeAt(0, i) {
			t.Fatalf("missing %d", i)
		}
	}
	if st.live != 0 {
		t.Fatalf("live buckets = %d after emptying", st.live)
	}
	// Refill cell 1: allocation must come from the freelist, not bump.
	for i := uint32(4); i < 8; i++ {
		st.insertAt(1, i, geom.Pt(0, 0))
	}
	if st.next != allocatedBefore {
		t.Fatalf("bump cursor advanced (%d -> %d) despite freelist", allocatedBefore, st.next)
	}
	if st.cellCount(1) != 4 {
		t.Fatalf("cell 1 count = %d", st.cellCount(1))
	}
}

func TestInlineStoreArenaGrowth(t *testing.T) {
	// Start with capacity hint 0 and insert enough to force arena
	// regrowth; offsets must stay valid.
	st := newInlineStore(4, 2, 0, false)
	st.reset(make([]geom.Point, 1000))
	for i := uint32(0); i < 1000; i++ {
		st.insertAt(int(i)%4, i, geom.Pt(0, 0))
	}
	total := 0
	for c := 0; c < 4; c++ {
		total += st.cellCount(c)
	}
	if total != 1000 {
		t.Fatalf("entries after growth = %d", total)
	}
	if st.totalEntries() != 1000 {
		t.Fatalf("totalEntries = %d", st.totalEntries())
	}
}

func TestInlineStoreXYRoundtrip(t *testing.T) {
	st := newInlineStore(1, 4, 0, true)
	pts := []geom.Point{geom.Pt(1, 2), geom.Pt(3, 4), geom.Pt(5, 6)}
	st.reset(pts)
	for i := range pts {
		st.insertAt(0, uint32(i), pts[i])
	}
	// filterCellXY reads coordinates from the bucket, not the base:
	// corrupt the base to prove it.
	pts[0] = geom.Pt(999, 999)
	found := map[uint32]bool{}
	st.filterCell(0, geom.R(0, 0, 10, 10), func(id uint32) { found[id] = true })
	if !found[0] || !found[1] || !found[2] {
		t.Fatalf("xy filtering lost entries: %v", found)
	}
}

func TestLinkedStoreArenaExhaustionFallsBack(t *testing.T) {
	// Capacity hint below the real population: the arena runs out and
	// individual allocation takes over without corrupting the lists.
	st := newLinkedStore(4, 2, 8)
	pts := make([]geom.Point, 100)
	st.reset(pts)
	for i := uint32(0); i < 100; i++ {
		st.insertAt(int(i)%4, i, pts[i])
	}
	if st.totalEntries() != 100 {
		t.Fatalf("entries = %d", st.totalEntries())
	}
	seen := map[uint32]bool{}
	for c := 0; c < 4; c++ {
		st.scanCell(c, func(id uint32) {
			if seen[id] {
				t.Fatalf("duplicate %d", id)
			}
			seen[id] = true
		})
	}
	if len(seen) != 100 {
		t.Fatalf("scan found %d of 100", len(seen))
	}
}

func TestLinkedStoreFreelistReuse(t *testing.T) {
	st := newLinkedStore(1, 4, 64)
	pts := make([]geom.Point, 64)
	st.reset(pts)
	for i := uint32(0); i < 64; i++ {
		st.insertAt(0, i, pts[i])
	}
	arenaLen := len(st.nodeArena)
	for i := uint32(0); i < 32; i++ {
		if !st.removeAt(0, i) {
			t.Fatalf("missing %d", i)
		}
	}
	for i := uint32(0); i < 32; i++ {
		st.insertAt(0, i, pts[i])
	}
	if len(st.nodeArena) != arenaLen {
		t.Fatalf("node arena grew (%d -> %d) despite freelist", arenaLen, len(st.nodeArena))
	}
	if st.totalEntries() != 64 {
		t.Fatalf("entries = %d", st.totalEntries())
	}
}

func TestLinkedStoreRemoveMiddleOfList(t *testing.T) {
	st := newLinkedStore(1, 8, 8)
	pts := make([]geom.Point, 5)
	st.reset(pts)
	for i := uint32(0); i < 5; i++ {
		st.insertAt(0, i, pts[i])
	}
	// List order is 4,3,2,1,0 (prepend); remove the middle node (2).
	if !st.removeAt(0, 2) {
		t.Fatal("entry 2 not found")
	}
	var order []uint32
	st.scanCell(0, func(id uint32) { order = append(order, id) })
	want := []uint32{4, 3, 1, 0}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// Doubly-linked invariants: forward/backward consistency.
	b := st.cells[0].head
	for n := b.head; n != nil; n = n.next {
		if n.next != nil && n.next.prev != n {
			t.Fatal("broken prev link")
		}
	}
}

func TestLinkedStoreEmptyBucketUnlinked(t *testing.T) {
	st := newLinkedStore(1, 2, 8)
	pts := make([]geom.Point, 4)
	st.reset(pts)
	for i := uint32(0); i < 4; i++ {
		st.insertAt(0, i, pts[i])
	}
	// Two buckets of two. Drain the head bucket (ids 3, 2).
	st.removeAt(0, 3)
	st.removeAt(0, 2)
	buckets := 0
	for b := st.cells[0].head; b != nil; b = b.next {
		buckets++
		if b.count == 0 {
			t.Fatal("empty bucket left in chain")
		}
	}
	if buckets != 1 {
		t.Fatalf("bucket count = %d, want 1", buckets)
	}
	if st.cellCount(0) != 2 {
		t.Fatalf("cell count = %d", st.cellCount(0))
	}
}

func TestMemoryBytesFormulas(t *testing.T) {
	// Section 3.1: original consumes n(24+32/bs) plus 16 bytes per
	// directory cell in C++; our Go nodes are 32B (documented), so the
	// expected figure is n(32+32/bs) + cells*16. The refactored arena is
	// 4 bytes per slot with (2+bs) slots per bucket plus 4 per cell.
	r := xrand.New(5)
	n := 4096
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(r.Range(0, 1000), r.Range(0, 1000))
	}
	orig := MustNew(Config{Layout: LayoutLinked, Scan: ScanFull, BS: 4, CPS: 13}, testBounds, n)
	orig.Build(pts)
	gotO := orig.MemoryBytes()
	minO := int64(n * 32) // at least the nodes
	if gotO < minO {
		t.Fatalf("original footprint %d below node floor %d", gotO, minO)
	}
	ref := MustNew(Config{Layout: LayoutInline, Scan: ScanRange, BS: 4, CPS: 13}, testBounds, n)
	ref.Build(pts)
	gotR := ref.MemoryBytes()
	// Each entry occupies one 4-byte slot; buckets add 2 slots each.
	if gotR < int64(n*4) {
		t.Fatalf("refactored footprint %d below entry floor %d", gotR, n*4)
	}
	// The headline claim: large reduction (paper: 32 -> 12 bytes/point at
	// bs=4; our Go constants differ but the factor must be substantial).
	if float64(gotO)/float64(gotR) < 2.5 {
		t.Fatalf("footprint reduction too small: %d -> %d", gotO, gotR)
	}
}
